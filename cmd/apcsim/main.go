// Command apcsim regenerates the tables and figures of the AgilePkgC
// paper (MICRO 2022) from the simulator and runs declarative scenario
// files — single machines or load-balanced fleets (a "cluster" block;
// see README.md "Scenario schema reference") — against it.
//
// Usage:
//
//	apcsim [flags] list                     enumerate registered experiments
//	apcsim [flags] run <experiment>...      run experiments (or "all")
//	apcsim [flags] scenario <file.json>...  run declarative scenario files
//	apcsim [flags] <experiment>...          shorthand for "run"
//
// Flags:
//
//	-duration 2s   virtual measurement window per operating point
//	-seed 1        random seed for all generators
//	-parallel N    max sweep points simulated concurrently
//	-csv dir       write per-experiment CSV series into dir
//	-json dir      write machine-readable JSON results into dir
//
// The experiment set is self-registering: `apcsim list` is the registry,
// not a hand-maintained table.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"agilepkgc/internal/experiments"
	"agilepkgc/internal/scenario"
	"agilepkgc/internal/sim"
)

func main() {
	duration := flag.Duration("duration", 2*time.Second,
		"virtual measurement window per operating point")
	seed := flag.Uint64("seed", 1, "random seed for all generators")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"max sweep points simulated concurrently (1 = serial; results are identical either way)")
	csvDir := flag.String("csv", "", "directory to write per-experiment CSV series into")
	jsonDir := flag.String("json", "", "directory to write machine-readable JSON results into")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: apcsim [flags] list | run <experiment>... | scenario <file.json>... | <experiment>...\n")
		fmt.Fprintf(os.Stderr, "experiments: %v all\n", experiments.Names())
		flag.PrintDefaults()
	}
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	opt := experiments.Options{
		Duration:    sim.Duration(duration.Nanoseconds()),
		Seed:        *seed,
		Parallelism: *parallel,
	}
	out := outputs{csvDir: *csvDir, jsonDir: *jsonDir}
	if err := out.prepare(); err != nil {
		fatal(err)
	}

	switch args[0] {
	case "list":
		if len(args) != 1 {
			flag.Usage()
			os.Exit(2)
		}
		list()
	case "run":
		if len(args) < 2 {
			flag.Usage()
			os.Exit(2)
		}
		runExperiments(args[1:], opt, &out)
	case "scenario":
		if len(args) < 2 {
			flag.Usage()
			os.Exit(2)
		}
		runScenarios(args[1:], opt, &out)
	default:
		// Shorthand: `apcsim all`, `apcsim fig7 table1`.
		runExperiments(args, opt, &out)
	}
}

// list prints the registry in canonical order.
func list() {
	width := 0
	for _, name := range experiments.Names() {
		if len(name) > width {
			width = len(name)
		}
	}
	for _, e := range experiments.All() {
		fmt.Printf("%-*s  %s\n", width, e.Name(), e.Describe())
	}
}

// runExperiments resolves names against the registry and runs each one.
func runExperiments(names []string, opt experiments.Options, out *outputs) {
	if len(names) == 1 && names[0] == "all" {
		names = experiments.Names()
	}
	for _, name := range names {
		exp, ok := experiments.Lookup(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "apcsim: unknown experiment %q\n", name)
			flag.Usage()
			os.Exit(2)
		}
		start := time.Now()
		res, err := exp.Run(opt)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		fmt.Println(res.Report())
		fmt.Printf("[%s completed in %v wall time]\n\n", name, time.Since(start).Round(time.Millisecond))
		if err := out.write(name, opt, res); err != nil {
			fatal(err)
		}
	}
}

// runScenarios loads every file, rejects output-name collisions up
// front (a later scenario would silently clobber an earlier one's CSV
// and JSON files), then runs each scenario.
func runScenarios(files []string, opt experiments.Options, out *outputs) {
	var scs []scenario.Scenario
	for _, path := range files {
		loaded, err := scenario.LoadFile(path)
		if err != nil {
			fatal(err)
		}
		scs = append(scs, loaded...)
	}
	seen := map[string]string{}
	for _, sc := range scs {
		name := sanitize(sc.Name)
		if prev, dup := seen[name]; dup {
			fatal(fmt.Errorf("scenarios %q and %q would write the same output files (%s.*) — rename one", prev, sc.Name, name))
		}
		seen[name] = sc.Name
	}
	for _, sc := range scs {
		start := time.Now()
		res, err := sc.Run(opt)
		if err != nil {
			fatal(err)
		}
		fmt.Println(res.Report())
		fmt.Printf("[%s completed in %v wall time]\n\n", sc.Name, time.Since(start).Round(time.Millisecond))
		// Record the options the scenario actually ran under (its
		// duration_ms/seed overrides applied), not the CLI defaults.
		if err := out.write(sanitize(sc.Name), sc.EffectiveOptions(opt), res); err != nil {
			fatal(err)
		}
	}
}

// outputs writes the optional CSV and JSON artifacts next to the text
// reports.
type outputs struct {
	csvDir  string
	jsonDir string
}

func (o *outputs) prepare() error {
	for _, dir := range []string{o.csvDir, o.jsonDir} {
		if dir == "" {
			continue
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return nil
}

func (o *outputs) write(name string, opt experiments.Options, res experiments.Result) error {
	if o.csvDir != "" {
		if cw, ok := res.(experiments.CSVWriter); ok {
			path := filepath.Join(o.csvDir, name+".csv")
			if err := writeCSVFile(path, cw); err != nil {
				return err
			}
			fmt.Printf("[wrote %s]\n\n", path)
		}
	}
	if o.jsonDir != "" {
		path := filepath.Join(o.jsonDir, name+".json")
		if err := writeJSONFile(path, name, opt, res); err != nil {
			return err
		}
		fmt.Printf("[wrote %s]\n\n", path)
	}
	return nil
}

// writeCSVFile exports one result's data series. The close error is
// checked so a full disk is reported instead of swallowed.
func writeCSVFile(path string, w experiments.CSVWriter) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return w.WriteCSV(f)
}

// jsonEnvelope is the machine-readable form of one run: the experiment
// or scenario name, the options it ran under, and the full result
// struct.
type jsonEnvelope struct {
	Name    string              `json:"name"`
	Options experiments.Options `json:"options"`
	Result  any                 `json:"result"`
}

// writeJSONFile emits the machine-readable result, propagating the
// close error like writeCSVFile.
func writeJSONFile(path, name string, opt experiments.Options, res experiments.Result) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(jsonEnvelope{Name: name, Options: opt, Result: res})
}

// sanitize makes a scenario name safe as a filename.
func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		default:
			return '-'
		}
	}, name)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "apcsim: %v\n", err)
	os.Exit(1)
}
