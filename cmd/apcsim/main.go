// Command apcsim regenerates the tables and figures of the AgilePkgC
// paper (MICRO 2022) from the simulator.
//
// Usage:
//
//	apcsim [-duration 2s] [-seed 1] [-parallel N] [-csv dir] <experiment>...
//	apcsim all
//
// Experiments: table1 table2 sec54 sec55 eq1 fig5 fig6 fig7 fig8 fig9
// area sensitivity batching remote all
//
// With -csv, experiments that produce data series additionally write
// <dir>/<experiment>.csv for external plotting.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"agilepkgc/internal/experiments"
	"agilepkgc/internal/sim"
)

var experimentOrder = []string{
	"table1", "table2", "sec54", "sec55", "eq1",
	"fig5", "fig6", "fig7", "fig8", "fig9", "area", "sensitivity", "batching", "remote",
}

// result bundles an experiment's text report with its optional CSV
// exporter.
type result struct {
	report string
	csv    experiments.CSVWriter
}

var runners = map[string]func(experiments.Options) result{
	"table1": func(o experiments.Options) result { return result{report: experiments.Table1(o).String()} },
	"table2": func(o experiments.Options) result { return result{report: experiments.Table2(o).String()} },
	"sec54":  func(o experiments.Options) result { return result{report: experiments.Sec54(o).String()} },
	"sec55":  func(o experiments.Options) result { return result{report: experiments.Sec55(o).String()} },
	"eq1":    func(o experiments.Options) result { return result{report: experiments.Eq1(o).String()} },
	"fig5": func(o experiments.Options) result {
		r := experiments.Fig5(o, nil)
		return result{report: r.String(), csv: r}
	},
	"fig6": func(o experiments.Options) result {
		r := experiments.Fig6(o, nil)
		return result{report: r.String(), csv: r}
	},
	"fig7": func(o experiments.Options) result {
		r := experiments.Fig7(o, nil)
		return result{report: r.String(), csv: r}
	},
	"fig8": func(o experiments.Options) result {
		r := experiments.Fig8(o)
		return result{report: r.String(), csv: r}
	},
	"fig9": func(o experiments.Options) result {
		r := experiments.Fig9(o)
		return result{report: r.String(), csv: r}
	},
	"area": func(o experiments.Options) result {
		return result{report: experiments.Area(experiments.DefaultAreaModel()).String()}
	},
	"sensitivity": func(o experiments.Options) result {
		return result{report: experiments.Sensitivity(o).String()}
	},
	"batching": func(o experiments.Options) result {
		r := experiments.Batching(o, 0, nil)
		return result{report: r.String(), csv: r}
	},
	"remote": func(o experiments.Options) result {
		r := experiments.Remote(o, 0, nil)
		return result{report: r.String(), csv: r}
	},
}

func main() {
	duration := flag.Duration("duration", 2*time.Second,
		"virtual measurement window per operating point")
	seed := flag.Uint64("seed", 1, "random seed for all generators")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"max sweep points simulated concurrently (1 = serial; results are identical either way)")
	csvDir := flag.String("csv", "", "directory to write per-experiment CSV series into")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: apcsim [flags] <experiment>...\n")
		fmt.Fprintf(os.Stderr, "experiments: %v all\n", experimentOrder)
		flag.PrintDefaults()
	}
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if len(args) == 1 && args[0] == "all" {
		args = experimentOrder
	}

	opt := experiments.Options{
		Duration:    sim.Duration(duration.Nanoseconds()),
		Seed:        *seed,
		Parallelism: *parallel,
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "apcsim: %v\n", err)
			os.Exit(1)
		}
	}

	for _, name := range args {
		runner, ok := runners[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "apcsim: unknown experiment %q\n", name)
			flag.Usage()
			os.Exit(2)
		}
		start := time.Now()
		res := runner(opt)
		fmt.Println(res.report)
		fmt.Printf("[%s completed in %v wall time]\n\n", name, time.Since(start).Round(time.Millisecond))

		if *csvDir != "" && res.csv != nil {
			path := filepath.Join(*csvDir, name+".csv")
			if err := writeCSVFile(path, res.csv); err != nil {
				fmt.Fprintf(os.Stderr, "apcsim: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("[wrote %s]\n\n", path)
		}
	}
}

func writeCSVFile(path string, w experiments.CSVWriter) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return w.WriteCSV(f)
}
