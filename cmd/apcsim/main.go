// Command apcsim regenerates the tables and figures of the AgilePkgC
// paper (MICRO 2022) from the simulator and runs declarative scenario
// files — single machines or load-balanced fleets (a "cluster" block;
// see README.md "Scenario schema reference") — against it.
//
// Usage:
//
//	apcsim [flags] list                     enumerate registered experiments
//	apcsim [flags] run <experiment>...      run experiments (or "all")
//	apcsim [flags] scenario <file.json>...  run declarative scenario files
//	apcsim [flags] <experiment>...          shorthand for "run"
//
// Flags:
//
//	-duration 2s      virtual measurement window per operating point
//	-seed 1           random seed for all generators
//	-parallel N       max sweep points simulated concurrently
//	-csv dir          write per-experiment CSV series into dir
//	-json dir         write machine-readable JSON results into dir
//	-cpuprofile file  write a CPU profile of the run to file
//	-memprofile file  write a heap profile taken after the run to file
//
// The experiment set is self-registering: `apcsim list` is the registry,
// not a hand-maintained table.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"agilepkgc/internal/experiments"
	"agilepkgc/internal/scenario"
	"agilepkgc/internal/sim"
)

// errUsage marks a command-line mistake after the usage text has
// already been printed; main exits 2 for it without repeating the
// message, matching the old flag.ExitOnError behavior.
var errUsage = errors.New("usage")

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		if errors.Is(err, errUsage) {
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "apcsim: %v\n", err)
		os.Exit(1)
	}
}

// run executes the whole command against w, so the CI smoke test can
// drive it in-process (the same pattern as cmd/apctop); only flag
// parsing stays in the flag package's hands (ContinueOnError, so bad
// flags surface as an error, not an exit).
func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("apcsim", flag.ContinueOnError)
	fs.SetOutput(w)
	duration := fs.Duration("duration", 2*time.Second,
		"virtual measurement window per operating point")
	seed := fs.Uint64("seed", 1, "random seed for all generators")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0),
		"max sweep points simulated concurrently (1 = serial; results are identical either way)")
	csvDir := fs.String("csv", "", "directory to write per-experiment CSV series into")
	jsonDir := fs.String("json", "", "directory to write machine-readable JSON results into")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile taken after the run to this file")
	fs.Usage = func() {
		fmt.Fprintf(w, "usage: apcsim [flags] list | run <experiment>... | scenario <file.json>... | <experiment>...\n")
		fmt.Fprintf(w, "experiments: %v all\n", experiments.Names())
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			// -h printed the usage; that is success, not an error.
			return nil
		}
		return errUsage
	}

	args = fs.Args()
	if len(args) == 0 {
		fs.Usage()
		return errUsage
	}

	opt := experiments.Options{
		Duration:    sim.Duration(duration.Nanoseconds()),
		Seed:        *seed,
		Parallelism: *parallel,
	}
	out := outputs{w: w, csvDir: *csvDir, jsonDir: *jsonDir}
	if err := out.prepare(); err != nil {
		return err
	}
	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}

	switch args[0] {
	case "list":
		if len(args) != 1 {
			stopProfiles()
			fs.Usage()
			return errUsage
		}
		err = list(w)
	case "run":
		if len(args) < 2 {
			stopProfiles()
			fs.Usage()
			return errUsage
		}
		err = runExperiments(w, fs, args[1:], opt, &out)
	case "scenario":
		if len(args) < 2 {
			stopProfiles()
			fs.Usage()
			return errUsage
		}
		err = runScenarios(w, args[1:], opt, &out)
	default:
		// Shorthand: `apcsim all`, `apcsim fig7 table1`.
		err = runExperiments(w, fs, args, opt, &out)
	}
	if perr := stopProfiles(); err == nil {
		err = perr
	}
	return err
}

// startProfiles arms the requested pprof outputs around the actual
// simulation work and returns the function that finishes them: it stops
// the CPU profile and, after a final GC so the heap numbers reflect
// live steady-state memory rather than collectible garbage, snapshots
// the allocation profile.
func startProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	done := false
	return func() error {
		if done {
			return nil
		}
		done = true
		var err error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			err = cpuFile.Close()
		}
		if memPath != "" {
			f, ferr := os.Create(memPath)
			if ferr != nil {
				if err == nil {
					err = ferr
				}
				return err
			}
			runtime.GC()
			if werr := pprof.WriteHeapProfile(f); werr != nil && err == nil {
				err = fmt.Errorf("memprofile: %w", werr)
			}
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		return err
	}, nil
}

// list prints the registry in canonical order.
func list(w io.Writer) error {
	width := 0
	for _, name := range experiments.Names() {
		if len(name) > width {
			width = len(name)
		}
	}
	for _, e := range experiments.All() {
		fmt.Fprintf(w, "%-*s  %s\n", width, e.Name(), e.Describe())
	}
	return nil
}

// runExperiments resolves names against the registry and runs each one.
func runExperiments(w io.Writer, fs *flag.FlagSet, names []string, opt experiments.Options, out *outputs) error {
	if len(names) == 1 && names[0] == "all" {
		names = experiments.Names()
	}
	for _, name := range names {
		exp, ok := experiments.Lookup(name)
		if !ok {
			fmt.Fprintf(w, "apcsim: unknown experiment %q\n", name)
			fs.Usage()
			return errUsage
		}
		start := time.Now()
		res, err := exp.Run(opt)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Fprintln(w, res.Report())
		fmt.Fprintf(w, "[%s completed in %v wall time]\n\n", name, time.Since(start).Round(time.Millisecond))
		if err := out.write(name, opt, res); err != nil {
			return err
		}
	}
	return nil
}

// runScenarios loads every file, rejects output-name collisions up
// front (a later scenario would silently clobber an earlier one's CSV
// and JSON files), then runs each scenario.
func runScenarios(w io.Writer, files []string, opt experiments.Options, out *outputs) error {
	var scs []scenario.Scenario
	for _, path := range files {
		loaded, err := scenario.LoadFile(path)
		if err != nil {
			return err
		}
		scs = append(scs, loaded...)
	}
	seen := map[string]string{}
	for _, sc := range scs {
		name := sanitize(sc.Name)
		if prev, dup := seen[name]; dup {
			return fmt.Errorf("scenarios %q and %q would write the same output files (%s.*) — rename one", prev, sc.Name, name)
		}
		seen[name] = sc.Name
	}
	for _, sc := range scs {
		start := time.Now()
		res, err := sc.Run(opt)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, res.Report())
		fmt.Fprintf(w, "[%s completed in %v wall time]\n\n", sc.Name, time.Since(start).Round(time.Millisecond))
		// Record the options the scenario actually ran under (its
		// duration_ms/seed overrides applied), not the CLI defaults.
		if err := out.write(sanitize(sc.Name), sc.EffectiveOptions(opt), res); err != nil {
			return err
		}
	}
	return nil
}

// outputs writes the optional CSV and JSON artifacts next to the text
// reports.
type outputs struct {
	w       io.Writer
	csvDir  string
	jsonDir string
}

func (o *outputs) prepare() error {
	for _, dir := range []string{o.csvDir, o.jsonDir} {
		if dir == "" {
			continue
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return nil
}

func (o *outputs) write(name string, opt experiments.Options, res experiments.Result) error {
	if o.csvDir != "" {
		if cw, ok := res.(experiments.CSVWriter); ok {
			path := filepath.Join(o.csvDir, name+".csv")
			if err := writeCSVFile(path, cw); err != nil {
				return err
			}
			fmt.Fprintf(o.w, "[wrote %s]\n\n", path)
		}
	}
	if o.jsonDir != "" {
		path := filepath.Join(o.jsonDir, name+".json")
		if err := writeJSONFile(path, name, opt, res); err != nil {
			return err
		}
		fmt.Fprintf(o.w, "[wrote %s]\n\n", path)
	}
	return nil
}

// writeCSVFile exports one result's data series. The close error is
// checked so a full disk is reported instead of swallowed.
func writeCSVFile(path string, w experiments.CSVWriter) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return w.WriteCSV(f)
}

// jsonEnvelope is the machine-readable form of one run: the experiment
// or scenario name, the options it ran under, and the full result
// struct.
type jsonEnvelope struct {
	Name    string              `json:"name"`
	Options experiments.Options `json:"options"`
	Result  any                 `json:"result"`
}

// writeJSONFile emits the machine-readable result, propagating the
// close error like writeCSVFile.
func writeJSONFile(path, name string, opt experiments.Options, res experiments.Result) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(jsonEnvelope{Name: name, Options: opt, Result: res})
}

// sanitize makes a scenario name safe as a filename.
func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		default:
			return '-'
		}
	}, name)
}
