package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSmokeList drives the registry listing in-process, the same
// pattern as cmd/apctop's smoke test.
func TestSmokeList(t *testing.T) {
	var b strings.Builder
	if err := run(&b, []string{"list"}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"table1", "area", "fault-resilience"} {
		if !strings.Contains(b.String(), name) {
			t.Errorf("list output missing experiment %q:\n%s", name, b.String())
		}
	}
}

// TestSmokeRunExperiment runs the cheapest registered experiment end to
// end, including the CSV/JSON artifact writers.
func TestSmokeRunExperiment(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	err := run(&b, []string{"-duration", "10ms", "-json", dir, "run", "area"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "area overhead") {
		t.Errorf("area report missing:\n%s", b.String())
	}
	if _, err := os.Stat(filepath.Join(dir, "area.json")); err != nil {
		t.Errorf("JSON artifact not written: %v", err)
	}
}

// TestSmokeScenarioWithProfiles covers the scenario subcommand and the
// -cpuprofile/-memprofile hooks: a short scenario sweep must succeed
// and leave non-empty pprof files behind.
func TestSmokeScenarioWithProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var b strings.Builder
	err := run(&b, []string{
		"-duration", "10ms", "-parallel", "1",
		"-cpuprofile", cpu, "-memprofile", mem,
		"scenario", filepath.Join("..", "..", "examples", "scenarios", "tick-rate.json"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "memcached-tick-rate") {
		t.Errorf("scenario report missing:\n%s", b.String())
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Errorf("profile not written: %v", err)
			continue
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

// TestHelpIsNotAnError: -h prints usage and succeeds.
func TestHelpIsNotAnError(t *testing.T) {
	var b strings.Builder
	if err := run(&b, []string{"-h"}); err != nil {
		t.Fatalf("-h returned %v", err)
	}
	if !strings.Contains(b.String(), "usage: apcsim") {
		t.Errorf("-h did not print usage:\n%s", b.String())
	}
}

// TestUsageErrors: every command-line mistake surfaces as errUsage
// (exit status 2) after printing the usage text, and never panics.
func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"-no-such-flag"},
		{"run"},
		{"scenario"},
		{"list", "extra"},
		{"no-such-experiment"},
	} {
		var b strings.Builder
		if err := run(&b, args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
