package main

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"agilepkgc/internal/workload/replay"
)

// runOK drives the in-process entry point and fails the test on error.
func runOK(t *testing.T, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := run(&buf, args); err != nil {
		t.Fatalf("run(%v): %v\noutput:\n%s", args, err, buf.String())
	}
	return buf.String()
}

func TestSynthDeterministic(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.trace")
	b := filepath.Join(dir, "b.trace")
	c := filepath.Join(dir, "c.trace")
	args := []string{"synth", "-service", "memcached-bursty", "-qps", "30000",
		"-burstiness", "8", "-seed", "7", "-duration", "20ms"}
	out := runOK(t, append(args, "-o", a)...)
	if !strings.Contains(out, "records") {
		t.Errorf("synth output %q does not report a record count", out)
	}
	runOK(t, append(args, "-o", b)...)
	runOK(t, append([]string{args[0], args[1], args[2], args[3], args[4], args[5],
		args[6], "-seed", "8", args[9], args[10]}, "-o", c)...)

	da, _ := os.ReadFile(a)
	db, _ := os.ReadFile(b)
	dc, _ := os.ReadFile(c)
	if !bytes.Equal(da, db) {
		t.Error("equal seeds produced different traces")
	}
	if bytes.Equal(da, dc) {
		t.Error("different seeds produced identical traces")
	}
	hdr, recs, err := replay.Decode(da)
	if err != nil {
		t.Fatalf("synthesized trace does not decode: %v", err)
	}
	if hdr.Count == 0 || len(recs) == 0 {
		t.Error("synthesized trace is empty")
	}
	if hdr.Name != "memcached-bursty-30000qps" {
		t.Errorf("trace name %q", hdr.Name)
	}
}

func TestConvertDumpRoundTrip(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "log.csv")
	const log = `ts_us,service_us,conn,mem
0,16,0,4
10.5,12,3,4
10.5,50.25,7,2
500,9,1,4
`
	if err := os.WriteFile(csv, []byte(log), 0o644); err != nil {
		t.Fatal(err)
	}
	trace := filepath.Join(dir, "log.trace")
	out := runOK(t, "convert", "-o", trace, "-name", "prod-log", csv)
	if !strings.Contains(out, "4 records") || !strings.Contains(out, "8 connections") {
		t.Errorf("convert output %q does not report 4 records over 8 connections", out)
	}

	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	hdr, recs, err := replay.Decode(data)
	if err != nil {
		t.Fatalf("converted trace does not decode: %v", err)
	}
	if hdr.Name != "prod-log" || hdr.Count != 4 || hdr.Connections != 8 || hdr.MemAccesses != 4 {
		t.Errorf("converted header %+v", hdr)
	}
	// Derived QPS: 4 records over 500us = 8000/s.
	if hdr.MeanQPS != 8000 {
		t.Errorf("derived mean QPS %g, want 8000", hdr.MeanQPS)
	}

	// dump emits the same log back (modulo the header comments), so
	// converting the dump reproduces the trace bytes.
	dump := runOK(t, "dump", trace)
	if !strings.Contains(dump, "# workload: prod-log") || !strings.Contains(dump, csvHeader) {
		t.Errorf("dump output missing header:\n%s", dump)
	}
	csv2 := filepath.Join(dir, "log2.csv")
	if err := os.WriteFile(csv2, []byte(dump[strings.Index(dump, csvHeader):]), 0o644); err != nil {
		t.Fatal(err)
	}
	trace2 := filepath.Join(dir, "log2.trace")
	runOK(t, "convert", "-o", trace2, "-name", "prod-log", csv2)
	data2, err := os.ReadFile(trace2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Error("dump | convert did not round-trip the trace bytes")
	}
	_ = recs
}

func TestConvertRejects(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	out := filepath.Join(dir, "out.trace")
	cases := []struct {
		name, content, msg string
	}{
		{"empty", "", "header line"},
		{"bad header", "time,svc\n", "want"},
		{"no records", csvHeader + "\n", "nothing to convert"},
		{"short row", csvHeader + "\n1,2,3\n", "want 4"},
		{"negative ts", csvHeader + "\n-1,2,3,4\n", "malformed"},
		{"unsorted", csvHeader + "\n10,2,0,0\n5,2,0,0\n", "sorted"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var buf bytes.Buffer
			err := run(&buf, []string{"convert", "-o", out, "-name", "x", write(c.name+".csv", c.content)})
			if err == nil || !strings.Contains(err.Error(), c.msg) {
				t.Errorf("convert = %v, want error mentioning %q", err, c.msg)
			}
		})
	}
}

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{},                        // no command
		{"frobnicate"},            // unknown command
		{"synth"},                 // missing -o
		{"synth", "-bogus"},       // unknown flag
		{"synth", "-o", "x", "y"}, // stray positional
		{"convert", "-o", "x"},    // missing -name and input
		{"dump"},                  // missing input
		{"dump", "a", "b"},        // too many inputs
		{"synth", "-o", "x", "-service", "nosuch"},
		{"synth", "-o", "x", "-duration", "-1s"},
	}
	for _, args := range cases {
		var buf bytes.Buffer
		if err := run(&buf, args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
	// Usage mistakes specifically map to errUsage (exit 2), not errors.
	var buf bytes.Buffer
	if err := run(&buf, []string{"synth"}); !errors.Is(err, errUsage) {
		t.Errorf("missing -o = %v, want errUsage", err)
	}
	if err := run(&buf, []string{"help"}); err != nil {
		t.Errorf("help = %v", err)
	}
}
