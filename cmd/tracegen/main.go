// Command tracegen produces and inspects binary arrival traces in the
// format internal/workload/replay defines (DESIGN.md §10). It is the
// authoring side of the replay subsystem: synth records a synthetic
// generator's exact stream deterministically from a seed, convert turns
// a CSV arrival log into the binary format, and dump renders a binary
// trace back to the same CSV for inspection.
//
// Usage:
//
//	tracegen synth   -o out.trace [-service memcached] [-qps N] ...
//	tracegen convert -o out.trace -name NAME in.csv
//	tracegen dump    file.trace
//
// The CSV schema (both convert's input and dump's output) is one
// header line then one arrival per line:
//
//	ts_us,service_us,conn,mem
//
// Timestamps are microseconds from the trace origin, fractional values
// allowed; conn is the zero-based connection index; mem the request's
// per-window memory access count. convert derives the header's summary
// meta from the data: mean QPS from count over span, service mean from
// the sample mean, connections from max conn + 1, mem accesses from
// the max mem column.
//
// A trace synthesized with `tracegen synth` and replayed through a
// scenario's workload.trace block reproduces the equivalent synthetic
// scenario byte for byte at equal -warmup/-duration — the parity
// contract TestReplayMatchesSynthetic enforces.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"agilepkgc/internal/sim"
	"agilepkgc/internal/workload"
	"agilepkgc/internal/workload/replay"
)

// errUsage marks a command-line mistake after the usage text has been
// printed; main exits 2 for it, like cmd/apcsim.
var errUsage = errors.New("usage")

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		if errors.Is(err, errUsage) {
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage: tracegen <command> [flags]

  synth    synthesize a trace from a workload generator (deterministic per seed)
  convert  convert a ts_us,service_us,conn,mem CSV log to a binary trace
  dump     print a binary trace's header and records as CSV

Run "tracegen <command> -h" for the command's flags.
`)
}

// run executes the whole command against w so the smoke tests can drive
// it in-process.
func run(w io.Writer, args []string) error {
	if len(args) == 0 {
		usage(w)
		return errUsage
	}
	switch args[0] {
	case "synth":
		return runSynth(w, args[1:])
	case "convert":
		return runConvert(w, args[1:])
	case "dump":
		return runDump(w, args[1:])
	case "-h", "-help", "--help", "help":
		usage(w)
		return nil
	default:
		fmt.Fprintf(w, "tracegen: unknown command %q\n", args[0])
		usage(w)
		return errUsage
	}
}

// errHelp marks an explicit -h: the usage was printed and the command
// is done, successfully.
var errHelp = errors.New("help")

// parseFlags finishes a flag set the shared way: -h is errHelp (the
// caller returns success), anything else malformed is errUsage.
func parseFlags(fs *flag.FlagSet, args []string) error {
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return errHelp
		}
		return errUsage
	}
	return nil
}

// runSynth records a synthetic generator into a trace file. The
// service/rate flags mirror the scenario schema's workload block, so a
// synthesized trace slots into the scenario the flags describe.
func runSynth(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("tracegen synth", flag.ContinueOnError)
	fs.SetOutput(w)
	out := fs.String("o", "", "output trace file (required)")
	service := fs.String("service", "memcached", "workload kind: memcached, memcached-bursty, mysql, kafka")
	qps := fs.Float64("qps", 40000, "aggregate arrival rate (memcached kinds)")
	burstiness := fs.Float64("burstiness", 8, "burst peak-to-mean ratio (memcached-bursty)")
	load := fs.Float64("load", 0.16, "per-core utilization (mysql, kafka)")
	cores := fs.Int("cores", 8, "core count the load flag is scaled by (mysql, kafka)")
	seed := fs.Uint64("seed", 1, "random seed; equal seeds produce equal traces")
	warmup := fs.Duration("warmup", 0, "settle window recorded before the measured stream (0 = the runner's default for -duration)")
	duration := fs.Duration("duration", 2*time.Second, "measured window to record")
	switch err := parseFlags(fs, args); {
	case errors.Is(err, errHelp):
		return nil
	case err != nil:
		return err
	case len(fs.Args()) > 0 || *out == "":
		fs.Usage()
		return errUsage
	}
	spec, err := resolveSpec(*service, *qps, *burstiness, *load, *cores)
	if err != nil {
		return err
	}
	dur := sim.Duration(duration.Nanoseconds())
	if dur <= 0 {
		return fmt.Errorf("synth: non-positive -duration %v", duration)
	}
	warm := sim.Duration(warmup.Nanoseconds())
	if warm < 0 {
		return fmt.Errorf("synth: negative -warmup %v", warmup)
	}
	if warm == 0 {
		warm = defaultWarmup(dur)
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	hdr, err := replay.Synthesize(f, spec, *seed, warm, dur)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s: %d records of %s over %v (seed %d)\n",
		*out, hdr.Count, hdr.Name, time.Duration(warm+dur), *seed)
	return nil
}

// defaultWarmup mirrors experiments.Options.Warmup so a bare
// `tracegen synth -duration 2s` records the window a scenario run at
// -duration 2s replays. (Restated rather than imported: cmd binaries
// depend on the replay and workload layers only.)
func defaultWarmup(d sim.Duration) sim.Duration {
	warm := d / 10
	if warm > 50*sim.Millisecond {
		warm = 50 * sim.Millisecond
	}
	return warm
}

// resolveSpec maps the synth flags to a workload spec, mirroring the
// scenario layer's service names.
func resolveSpec(service string, qps, burstiness, load float64, cores int) (workload.Spec, error) {
	switch service {
	case "memcached":
		if qps <= 0 {
			return workload.Spec{}, fmt.Errorf("synth: memcached needs -qps > 0")
		}
		return workload.Memcached(qps), nil
	case "memcached-bursty":
		if qps <= 0 || burstiness < 1 {
			return workload.Spec{}, fmt.Errorf("synth: memcached-bursty needs -qps > 0 and -burstiness >= 1")
		}
		return workload.MemcachedBursty(qps, burstiness), nil
	case "mysql", "kafka":
		if load <= 0 || load > 1 || cores <= 0 {
			return workload.Spec{}, fmt.Errorf("synth: %s needs -load in (0,1] and -cores > 0", service)
		}
		if service == "mysql" {
			return workload.MySQL(load, cores), nil
		}
		return workload.Kafka(load, cores), nil
	default:
		return workload.Spec{}, fmt.Errorf("synth: unknown -service %q (memcached, memcached-bursty, mysql, kafka)", service)
	}
}

// runConvert turns a CSV arrival log into a binary trace.
func runConvert(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("tracegen convert", flag.ContinueOnError)
	fs.SetOutput(w)
	out := fs.String("o", "", "output trace file (required)")
	name := fs.String("name", "", "workload name recorded in the header (required)")
	switch err := parseFlags(fs, args); {
	case errors.Is(err, errHelp):
		return nil
	case err != nil:
		return err
	case len(fs.Args()) != 1 || *out == "" || *name == "":
		fs.Usage()
		return errUsage
	}
	in, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer in.Close()
	recs, meta, err := readCSV(in, *name)
	if err != nil {
		return fmt.Errorf("%s: %w", fs.Arg(0), err)
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	hdr, err := writeAll(f, meta, recs)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s: %d records, %.1f mean QPS, %d connections\n",
		*out, hdr.Count, hdr.MeanQPS, hdr.Connections)
	return nil
}

func writeAll(ws io.WriteSeeker, meta replay.Meta, recs []replay.Record) (replay.Header, error) {
	wr, err := replay.NewWriter(ws, meta)
	if err != nil {
		return replay.Header{}, err
	}
	for i, rec := range recs {
		if err := wr.Append(rec); err != nil {
			return replay.Header{}, fmt.Errorf("record %d: %w", i, err)
		}
	}
	return wr.Close()
}

// csvHeader is the dump output and convert input schema.
const csvHeader = "ts_us,service_us,conn,mem"

// readCSV parses the arrival log and derives the header meta from the
// data itself: mean QPS from count over span, service mean from the
// sample mean, connections from the widest index seen.
func readCSV(r io.Reader, name string) ([]replay.Record, replay.Meta, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 64<<10)
	if !sc.Scan() {
		return nil, replay.Meta{}, fmt.Errorf("empty input — want a %q header line", csvHeader)
	}
	if got := strings.TrimSpace(sc.Text()); got != csvHeader {
		return nil, replay.Meta{}, fmt.Errorf("line 1: header %q, want %q", got, csvHeader)
	}
	var (
		recs    []replay.Record
		svcSum  float64
		maxConn uint32
		maxMem  uint32
		line    = 1
	)
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) != 4 {
			return nil, replay.Meta{}, fmt.Errorf("line %d: %d fields, want 4 (%s)", line, len(fields), csvHeader)
		}
		tsUS, err1 := strconv.ParseFloat(strings.TrimSpace(fields[0]), 64)
		svcUS, err2 := strconv.ParseFloat(strings.TrimSpace(fields[1]), 64)
		conn, err3 := strconv.ParseUint(strings.TrimSpace(fields[2]), 10, 32)
		mem, err4 := strconv.ParseUint(strings.TrimSpace(fields[3]), 10, 32)
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil ||
			tsUS < 0 || svcUS < 0 || math.IsNaN(tsUS) || math.IsInf(tsUS, 0) ||
			math.IsNaN(svcUS) || math.IsInf(svcUS, 0) {
			return nil, replay.Meta{}, fmt.Errorf("line %d: malformed record %q", line, text)
		}
		rec := replay.Record{
			TS:      sim.Time(tsUS * float64(sim.Microsecond)),
			Service: sim.Duration(svcUS * float64(sim.Microsecond)),
			Conn:    uint32(conn),
			Mem:     uint32(mem),
		}
		if len(recs) > 0 && rec.TS < recs[len(recs)-1].TS {
			return nil, replay.Meta{}, fmt.Errorf("line %d: timestamp %gus before its predecessor — the log must be sorted", line, tsUS)
		}
		recs = append(recs, rec)
		svcSum += svcUS * 1e-6
		if rec.Conn > maxConn {
			maxConn = rec.Conn
		}
		if rec.Mem > maxMem {
			maxMem = rec.Mem
		}
	}
	if err := sc.Err(); err != nil {
		return nil, replay.Meta{}, err
	}
	if len(recs) == 0 {
		return nil, replay.Meta{}, fmt.Errorf("no records — nothing to convert")
	}
	meta := replay.Meta{
		Name:        name,
		ServiceMean: svcSum / float64(len(recs)),
		Connections: int(maxConn) + 1,
		MemAccesses: int(maxMem),
	}
	if span := recs[len(recs)-1].TS - recs[0].TS; span > 0 {
		meta.MeanQPS = float64(len(recs)) / (float64(span) / float64(sim.Second))
	} else {
		meta.MeanQPS = float64(len(recs))
	}
	return recs, meta, nil
}

// runDump prints a trace's header as comments and its records as the
// convert CSV schema, so dump | convert round-trips.
func runDump(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("tracegen dump", flag.ContinueOnError)
	fs.SetOutput(w)
	switch err := parseFlags(fs, args); {
	case errors.Is(err, errHelp):
		return nil
	case err != nil:
		return err
	case len(fs.Args()) != 1:
		fs.Usage()
		return errUsage
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	rd, err := replay.NewReader(f)
	if err != nil {
		return err
	}
	hdr := rd.Header()
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# workload: %s\n", hdr.Name)
	fmt.Fprintf(bw, "# records: %d, span: %v .. %v\n", hdr.Count, hdr.FirstTS, hdr.LastTS)
	fmt.Fprintf(bw, "# mean_qps: %g, service_mean_s: %g, connections: %d, mem_accesses: %d\n",
		hdr.MeanQPS, hdr.ServiceMean, hdr.Connections, hdr.MemAccesses)
	fmt.Fprintln(bw, csvHeader)
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(bw, "%g,%g,%d,%d\n",
			float64(rec.TS)/float64(sim.Microsecond),
			float64(rec.Service)/float64(sim.Microsecond),
			rec.Conn, rec.Mem)
	}
	return bw.Flush()
}
