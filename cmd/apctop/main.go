// Command apctop is a powertop-style observer for the simulated server:
// it runs a workload on a chosen configuration and reports per-interval
// power and residency — reading *only* the emulated RAPL MSRs and
// residency counters (internal/msr), the same interface the real tools
// use, rather than the simulator's native accounting.
//
// Usage:
//
//	apctop [-config cpc1a|cshallow|cdeep] [-qps 20000] [-intervals 10]
//	       [-interval 100ms]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"agilepkgc/internal/msr"
	"agilepkgc/internal/pmu"
	"agilepkgc/internal/server"
	"agilepkgc/internal/sim"
	"agilepkgc/internal/soc"
	"agilepkgc/internal/workload"
)

// readoutHeader is the MSR-readout column header; the smoke test
// (main_test.go) asserts one interval of output starts with it.
const readoutHeader = "interval   pkg-W    dram-W   CC1-res%   PC1A-res%  served"

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "apctop: %v\n", err)
		os.Exit(1)
	}
}

// run executes the whole observer against w, so the CI smoke test can
// drive it in-process; only flag parsing stays in the flag package's
// hands (ContinueOnError, so bad flags surface as an error, not an
// exit).
func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("apctop", flag.ContinueOnError)
	fs.SetOutput(w)
	configName := fs.String("config", "cpc1a", "system configuration: cshallow, cdeep, cpc1a")
	qps := fs.Float64("qps", 20000, "memcached request rate (0 = idle)")
	intervals := fs.Int("intervals", 10, "number of reporting intervals")
	interval := fs.Duration("interval", 100*time.Millisecond, "virtual time per interval")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			// -h printed the usage; that is success, not an error.
			return nil
		}
		return err
	}

	var kind soc.ConfigKind
	switch strings.ToLower(*configName) {
	case "cshallow":
		kind = soc.Cshallow
	case "cdeep":
		kind = soc.Cdeep
	case "cpc1a":
		kind = soc.CPC1A
	default:
		return fmt.Errorf("unknown config %q", *configName)
	}
	if *intervals < 1 {
		return fmt.Errorf("intervals must be at least 1 (got %d)", *intervals)
	}
	if *interval <= 0 {
		return fmt.Errorf("interval must be positive (got %v)", *interval)
	}

	sys := soc.New(soc.DefaultConfig(kind))
	mon := msr.NewMonitor(sys)
	var srv *server.Server
	if *qps > 0 {
		srv = server.New(sys, server.DefaultConfig(), workload.Memcached(*qps))
	}

	var readErr error
	read := func(addr uint32, core int) uint64 {
		v, err := mon.Read(addr, core)
		if err != nil && readErr == nil {
			readErr = err
		}
		return v
	}

	fmt.Fprintf(w, "apctop: %s, %s, %.0f QPS, %d x %v intervals\n\n",
		kind, sys.Cores[0].Governor(), *qps, *intervals, *interval)
	fmt.Fprintln(w, readoutHeader)

	dt := sim.Duration((*interval).Nanoseconds())
	var servedPrev uint64
	for i := 0; i < *intervals; i++ {
		pkg0 := read(msr.MSRPkgEnergyStatus, 0)
		dram0 := read(msr.MSRDramEnergyStatus, 0)
		var cc10 uint64
		for c := range sys.Cores {
			cc10 += read(msr.MSRCoreC1Residency, c)
		}
		pc1a0 := sim.Duration(0)
		if sys.APMU != nil {
			pc1a0 = sys.APMU.Residency(pmu.PC1A)
		}

		if srv != nil {
			srv.Run(dt)
		} else {
			sys.Engine.Run(sys.Engine.Now() + dt)
		}

		pkg1 := read(msr.MSRPkgEnergyStatus, 0)
		dram1 := read(msr.MSRDramEnergyStatus, 0)
		var cc11 uint64
		for c := range sys.Cores {
			cc11 += read(msr.MSRCoreC1Residency, c)
		}
		if readErr != nil {
			return readErr
		}
		wall := dt.Seconds()
		pkgW := msr.EnergyDelta(pkg0, pkg1) / wall
		dramW := msr.EnergyDelta(dram0, dram1) / wall
		cc1Res := float64(cc11-cc10) / msr.TSCHz / wall / float64(len(sys.Cores))

		pc1aRes := 0.0
		if sys.APMU != nil {
			pc1aRes = (sys.APMU.Residency(pmu.PC1A) - pc1a0).Seconds() / wall
		}
		served := uint64(0)
		if srv != nil {
			served = srv.Served() - servedPrev
			servedPrev = srv.Served()
		}
		fmt.Fprintf(w, "%-9d  %6.2f   %6.2f   %7.1f    %7.1f    %d\n",
			i, pkgW, dramW, cc1Res*100, pc1aRes*100, served)
	}
	return nil
}
