package main

import (
	"strings"
	"testing"
)

// TestSmokeOneInterval is the CI gate that keeps apctop from rotting
// silently (it used to have no tests at all, so only `go build ./...`
// ever touched it): run one short interval on every configuration and
// check the MSR-readout header plus a data row come out.
func TestSmokeOneInterval(t *testing.T) {
	for _, cfg := range []string{"cpc1a", "cshallow", "cdeep"} {
		var b strings.Builder
		err := run(&b, []string{"-config", cfg, "-intervals", "1", "-interval", "10ms"})
		if err != nil {
			t.Fatalf("%s: %v", cfg, err)
		}
		out := b.String()
		if !strings.Contains(out, readoutHeader) {
			t.Errorf("%s: output missing the MSR-readout header %q:\n%s", cfg, readoutHeader, out)
		}
		lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
		last := lines[len(lines)-1]
		if !strings.HasPrefix(last, "0 ") {
			t.Errorf("%s: missing interval-0 data row, got %q", cfg, last)
		}
		if !strings.Contains(lines[0], "apctop: "+map[string]string{
			"cpc1a": "C_PC1A", "cshallow": "Cshallow", "cdeep": "Cdeep"}[cfg]) {
			t.Errorf("%s: banner does not name the configuration: %q", cfg, lines[0])
		}
	}
}

// TestSmokeIdle covers the qps=0 path (no server, raw engine time).
func TestSmokeIdle(t *testing.T) {
	var b strings.Builder
	if err := run(&b, []string{"-qps", "0", "-intervals", "1", "-interval", "5ms"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), readoutHeader) {
		t.Errorf("idle run missing header:\n%s", b.String())
	}
}

// TestHelpIsNotAnError: -h prints usage and succeeds, matching the
// conventional flag.ExitOnError exit status of 0.
func TestHelpIsNotAnError(t *testing.T) {
	var b strings.Builder
	if err := run(&b, []string{"-h"}); err != nil {
		t.Fatalf("-h returned %v", err)
	}
	if !strings.Contains(b.String(), "Usage of apctop") {
		t.Errorf("-h did not print usage:\n%s", b.String())
	}
}

func TestRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-config", "znver5"},
		{"-intervals", "0"},
		{"-interval", "-1ms"},
		{"-no-such-flag"},
	} {
		if err := run(&strings.Builder{}, args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
