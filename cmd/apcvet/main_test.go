package main

import (
	"bytes"
	"strings"
	"testing"

	"agilepkgc/internal/analysis"
)

// TestHelpListsAllPasses locks the -help surface: every registered
// pass appears in the usage text, so a pass cannot be added without
// its contract being discoverable.
func TestHelpListsAllPasses(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(&stdout, &stderr, []string{"-help"}); code != 0 {
		t.Fatalf("run(-help) = %d, want 0\nstderr:\n%s", code, stderr.String())
	}
	for _, a := range analysis.All() {
		if !strings.Contains(stderr.String(), a.Name) {
			t.Errorf("-help output does not mention the %s pass:\n%s", a.Name, stderr.String())
		}
	}
}

// TestCleanPackageExitsZero smoke-tests the multichecker end to end
// over a real module package (resolved by import path, so the test's
// working directory inside cmd/apcvet does not matter).
func TestCleanPackageExitsZero(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(&stdout, &stderr, []string{"agilepkgc/internal/sim"}); code != 0 {
		t.Fatalf("run over internal/sim = %d, want 0\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean package produced diagnostics:\n%s", stdout.String())
	}
}

// TestBadPatternExitsTwo: load failures are exit 2 (distinct from
// "invariant violated", exit 1), so CI can tell a broken build from a
// broken invariant.
func TestBadPatternExitsTwo(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(&stdout, &stderr, []string{"agilepkgc/internal/no-such-package"}); code != 2 {
		t.Fatalf("run over a nonexistent package = %d, want 2\nstderr:\n%s", code, stderr.String())
	}
}
