// Command apcvet is the repo's own vet: a multichecker of the four
// project-specific static-invariant passes in internal/analysis —
//
//	determinism  no wall-clock, global-RNG, env reads, or
//	             order-dependent map iteration in internal packages
//	noalloc      //apcvet:noalloc hot paths contain no allocating
//	             constructs (the compile-time face of the runtime
//	             alloc gate)
//	poolsafe     //apcvet:pooled records are never touched after
//	             release, and their callbacks capture only the record
//	seededrng    every RNG stream is Options.Seed-rooted with a
//	             distinct salt, never a bare literal
//
// Usage:
//
//	go run ./cmd/apcvet [packages]    (default ./...)
//	go run ./cmd/apcvet -help
//
// apcvet self-hosts: `go run ./cmd/apcvet ./...` must exit 0 on this
// repository, and `make lint` / the CI lint job enforce exactly that.
// Diagnostics print as file:line:col: message (pass); the exit status
// is 1 when any diagnostic fires, 2 on load/type-check errors. The
// annotation grammar (//apcvet:noalloc, pooled, poolput, and the
// ordered/alloc/poolok suppressions) is documented in DESIGN.md §12;
// malformed annotations are themselves diagnostics, so a typo cannot
// silently disable a check.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"agilepkgc/internal/analysis"
)

func main() {
	os.Exit(run(os.Stdout, os.Stderr, os.Args[1:]))
}

func run(stdout, stderr io.Writer, args []string) int {
	fs := flag.NewFlagSet("apcvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: apcvet [packages]  (default ./...)\n\npasses:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.LoadModule(".", patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "apcvet: %v\n", err)
		return 2
	}
	diags, err := analysis.Run(pkgs, analysis.All())
	if err != nil {
		fmt.Fprintf(stderr, "apcvet: %v\n", err)
		return 2
	}
	if len(diags) == 0 {
		return 0
	}
	cwd, _ := os.Getwd()
	for _, d := range diags {
		pos := pkgs[0].Fset.Position(d.Pos)
		name := pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && len(rel) < len(name) {
				name = rel
			}
		}
		fmt.Fprintf(stdout, "%s:%d:%d: %s (%s)\n", name, pos.Line, pos.Column, d.Message, d.Pass)
	}
	fmt.Fprintf(stderr, "apcvet: %d invariant violation(s)\n", len(diags))
	return 1
}
