GO ?= go

.PHONY: all build test vet fmt ci race bench clean

all: build test vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# fmt fails if any file needs gofmt.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi

# The full CI gate: formatting, static checks, a build of every package
# (including the examples/ programs, which have no tests), and the test
# suite — once natively and once under the race detector, so the
# parallel-sweep race-cleanliness claim is enforced, not asserted. The
# test suite also locks the golden reports and parses every
# examples/scenarios/*.json (TestExampleScenariosParse), so a schema
# change that orphans the shipped examples fails here.
ci: fmt vet build test race

# The whole module under the race detector (~1 min on one CPU).
race:
	$(GO) test -race ./...

# Full benchmark suite: benchstat-comparable text in bench.txt plus a
# machine-readable snapshot in BENCH_pr2.json recording the perf
# trajectory.
bench:
	scripts/bench.sh

clean:
	rm -f bench.txt
