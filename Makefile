GO ?= go

.PHONY: all build test vet race bench clean

all: build test vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The parallel sweep runner and anything it touches, under the race
# detector.
race:
	$(GO) test -race ./internal/experiments/ ./internal/sim/

# Full benchmark suite: benchstat-comparable text in bench.txt plus a
# machine-readable snapshot in BENCH_pr1.json recording the perf
# trajectory.
bench:
	scripts/bench.sh

clean:
	rm -f bench.txt
