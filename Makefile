GO ?= go

.PHONY: all build test vet fmt ci race bench clean

all: build test vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# fmt fails if any file needs gofmt.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi

# The full CI gate: formatting, static checks, a build of every package
# (including the examples/ programs, which have no tests), and the test
# suite with the golden-report and scenario checks.
ci: fmt vet build test

# The parallel sweep runner and anything it touches, under the race
# detector.
race:
	$(GO) test -race ./internal/experiments/ ./internal/scenario/ ./internal/sim/

# Full benchmark suite: benchstat-comparable text in bench.txt plus a
# machine-readable snapshot in BENCH_pr2.json recording the perf
# trajectory.
bench:
	scripts/bench.sh

clean:
	rm -f bench.txt
