GO ?= go

.PHONY: all build test vet fmt lint ci race bench benchgate clean

all: build test vet

# build compiles every package and then explicitly links every command
# binary, so a main-package-only breakage (apctop once had no tests
# and was exercised by nothing but the package walk) fails this target
# by name. The apctop smoke test (cmd/apctop/main_test.go) additionally
# runs one observer interval under `make test`.
build:
	$(GO) build ./...
	$(GO) build -o /dev/null ./cmd/apcsim
	$(GO) build -o /dev/null ./cmd/apctop
	$(GO) build -o /dev/null ./cmd/tracegen

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# fmt fails if any file needs gofmt.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi

# lint always runs apcvet — the repo's own invariant suite needs
# nothing beyond the Go toolchain, so unlike the external analyzers
# below it has no "not installed" escape hatch — and then runs the
# deeper external analyzers when they are installed, skipping them
# with a pointer when they are not, so `make ci` stays runnable on a
# fresh checkout. The GitHub workflow installs both tools before
# running ci, so the skip never fires there — absent-locally is
# tolerated, absent-in-CI is not.
lint:
	$(GO) run ./cmd/apcvet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "lint: govulncheck not installed, skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

# The full CI gate: formatting, static checks, a build of every package
# (including the examples/ programs, which have no tests), and the test
# suite — once natively and once under the race detector, so the
# parallel-sweep race-cleanliness claim is enforced, not asserted. The
# test suite also locks the golden reports and parses every
# examples/scenarios/*.json (TestExampleScenariosParse), so a schema
# change that orphans the shipped examples fails here.
ci: fmt vet lint build test race

# The whole module under the race detector (~1 min on one CPU).
race:
	$(GO) test -race ./...

# Full benchmark suite: benchstat-comparable text in bench.txt plus a
# machine-readable snapshot (BENCH_pr9.json by default; pass the next
# PR's name as the second bench.sh argument) recording the perf
# trajectory.
bench:
	scripts/bench.sh

# The alloc-regression gate: reruns the suite into bench-gate.json and
# fails if any benchmark allocates more per op than the committed
# BENCH_pr9.json baseline (ns/op drift only warns). CI runs this on
# every push.
benchgate:
	scripts/benchgate.sh

clean:
	rm -f bench.txt
