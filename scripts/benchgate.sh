#!/bin/sh
# benchgate.sh [new.json] [baseline.json] — the alloc-regression gate.
#
# Compares a fresh benchmark snapshot (bench.sh's JSON output) against
# the committed per-PR baseline and:
#
#   - FAILS (exit 1) if any benchmark's allocs/op rose above the
#     baseline. Allocation counts are deterministic — unlike ns/op they
#     do not wobble with machine load — so any increase is a genuine
#     hot-path regression (a pooled object escaping, a slice rebuilt per
#     point) and the gate can be exact.
#   - WARNS on ns/op drift beyond ±30%. Time is machine-dependent
#     (shared CI runners wobble ±15% run to run), so speed is reported,
#     not enforced; read the warnings against the uploaded bench.txt.
#   - FAILS (exit 1) when a baseline benchmark is missing from the new
#     snapshot, so coverage cannot silently shrink. A deliberately
#     retired benchmark must be removed from the baseline in the same
#     PR that deletes it.
#
# With no first argument the suite is run first (scripts/bench.sh all)
# into bench-gate.json. The baseline defaults to this PR's committed
# snapshot; after a deliberate perf change, regenerate it with
# `scripts/bench.sh all BENCH_pr9.json` and commit the diff.
set -e
cd "$(dirname "$0")/.."

NEW="${1:-}"
BASE="${2:-BENCH_pr9.json}"

if [ -z "$NEW" ]; then
	NEW=bench-gate.json
	scripts/bench.sh all "$NEW"
fi
for f in "$NEW" "$BASE"; do
	if [ ! -f "$f" ]; then
		echo "benchgate: missing snapshot $f" >&2
		exit 2
	fi
done

# Each snapshot line is one record:
#   {"name": "BenchmarkX", "ns_op": 123.4, "b_op": 16, "allocs_op": 2}
# awk pulls the fields by key, keeps the first file as the baseline,
# then compares the second against it.
awk -v base="$BASE" -v new="$NEW" '
function field(s, key,    pre) {
	pre = "\"" key "\": "
	if (match(s, pre "[-+0-9.eE]+")) {
		return substr(s, RSTART + length(pre), RLENGTH - length(pre))
	}
	return ""
}
function record(s) {
	name = field(s, "name")
	if (name != "") return 1
	if (match(s, /"name": "[^"]+"/)) {
		name = substr(s, RSTART + 9, RLENGTH - 10)
		return 1
	}
	return 0
}
FNR == 1 { filenum++ }
/"name"/ {
	if (!record($0)) next
	if (filenum == 1) {
		bns[name] = field($0, "ns_op")
		ballocs[name] = field($0, "allocs_op")
		seenbase[name] = 1
	} else {
		nns[name] = field($0, "ns_op")
		nallocs[name] = field($0, "allocs_op")
		seennew[name] = 1
	}
}
END {
	fail = 0
	for (n in seenbase) {
		if (!(n in seennew)) {
			printf "benchgate: FAIL %s in %s but missing from %s\n", n, base, new
			fail = 1
			continue
		}
		if (ballocs[n] != "" && nallocs[n] != "" && nallocs[n] + 0 > ballocs[n] + 0) {
			printf "benchgate: FAIL %s allocs/op %s -> %s (baseline %s)\n", n, ballocs[n], nallocs[n], base
			fail = 1
		}
		if (bns[n] + 0 > 0) {
			drift = nns[n] / bns[n] - 1
			if (drift > 0.30 || drift < -0.30) {
				printf "benchgate: WARN %s ns/op %s -> %s (%+.0f%%)\n", n, bns[n], nns[n], drift * 100
			}
		}
	}
	if (fail) {
		print "benchgate: gate failed — see FAIL lines above"
		exit 1
	}
	print "benchgate: OK — no allocs/op regressions vs " base
}
' "$BASE" "$NEW"
