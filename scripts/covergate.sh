#!/bin/sh
# covergate.sh [outdir] — the per-package coverage floor.
#
# Runs `go test -coverprofile` for each gated package, renders an HTML
# report per package into the output directory (default ./cover; CI
# uploads it as an artifact), and FAILS (exit 1) if any package's total
# statement coverage falls below the floor. The gate covers the
# packages where a silent coverage slide is most expensive — the
# cluster layer's routing/graph machinery, the scenario loader's
# validation surface, and the workload generators the determinism
# contract leans on — not the whole module, so the floor can be
# meaningful rather than diluted by thin glue packages.
set -e
cd "$(dirname "$0")/.."

OUT="${1:-cover}"
FLOOR=70
mkdir -p "$OUT"

fail=0
for pkg in $(go list ./internal/cluster ./internal/scenario ./internal/workload/...); do
	name=$(echo "$pkg" | tr '/' '_')
	profile="$OUT/$name.out"
	go test -coverprofile="$profile" "$pkg" >/dev/null
	pct=$(go tool cover -func="$profile" | awk '/^total:/ { sub(/%/, "", $NF); print $NF }')
	go tool cover -html="$profile" -o "$OUT/$name.html"
	if awk -v p="$pct" -v f="$FLOOR" 'BEGIN { exit !(p + 0 < f + 0) }'; then
		echo "covergate: FAIL $pkg ${pct}% < ${FLOOR}%"
		fail=1
	else
		echo "covergate: OK $pkg ${pct}% >= ${FLOOR}%"
	fi
done

if [ "$fail" -ne 0 ]; then
	echo "covergate: coverage floor violated — see FAIL lines above"
	exit 1
fi
echo "covergate: every gated package at or above ${FLOOR}%"
