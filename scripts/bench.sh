#!/bin/sh
# bench.sh [sim|all] [snapshot.json] — run the benchmark suite and
# snapshot the results.
#
# Writes:
#   bench.txt      raw `go test -bench` output, benchstat-comparable
#                  (benchstat old.txt bench.txt)
#   snapshot.json  parsed {name, ns_op, b_op, allocs_op} records; the
#                  second argument names the file (default
#                  BENCH_pr9.json, this PR's perf-trajectory snapshot —
#                  earlier PRs' snapshots stay committed as
#                  BENCH_pr<N>.json; bump the default each PR so `make
#                  bench` never clobbers a previous PR's snapshot)
set -e
cd "$(dirname "$0")/.."

MODE="${1:-all}"
OUT=bench.txt
SNAP="${2:-BENCH_pr9.json}"

case "$MODE" in
sim)
	PKGS=./internal/sim/
	;;
all)
	PKGS="./internal/sim/ ."
	;;
*)
	echo "usage: $0 [sim|all] [snapshot.json]" >&2
	exit 2
	;;
esac

go test -run=XXX -bench=. -benchmem -benchtime=1s $PKGS | tee "$OUT"

# Parse "BenchmarkName  N  ns/op  B/op  allocs/op [metrics...]" lines
# into a JSON array.
awk '
BEGIN { print "["; first = 1 }
/^Benchmark/ {
	name = $1; sub(/-[0-9]+$/, "", name)
	ns = ""; bop = ""; allocs = ""
	for (i = 2; i <= NF; i++) {
		if ($i == "ns/op")     ns = $(i-1)
		if ($i == "B/op")      bop = $(i-1)
		if ($i == "allocs/op") allocs = $(i-1)
	}
	if (ns == "") next
	if (!first) printf ",\n"
	first = 0
	printf "  {\"name\": \"%s\", \"ns_op\": %s", name, ns
	if (bop != "")    printf ", \"b_op\": %s", bop
	if (allocs != "") printf ", \"allocs_op\": %s", allocs
	printf "}"
}
END { print "\n]" }
' "$OUT" > "$SNAP"

echo "wrote $OUT and $SNAP"
