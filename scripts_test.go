package agilepkgc_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// benchgate runs scripts/benchgate.sh against two snapshot fixtures and
// returns its combined output and exit code.
func benchgate(t *testing.T, baseline, fresh string) (string, int) {
	t.Helper()
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.json")
	newPath := filepath.Join(dir, "new.json")
	for path, body := range map[string]string{basePath: baseline, newPath: fresh} {
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	cmd := exec.Command("sh", "scripts/benchgate.sh", newPath, basePath)
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	exitErr, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("benchgate.sh did not run: %v\n%s", err, out)
	}
	return string(out), exitErr.ExitCode()
}

// TestBenchgate pins the alloc-regression gate's verdicts, most
// importantly that a baseline benchmark missing from the fresh snapshot
// is a hard failure — a silently shrunken suite must not pass CI.
func TestBenchgate(t *testing.T) {
	const baseline = `[
  {"name": "BenchmarkA", "ns_op": 100, "b_op": 0, "allocs_op": 0},
  {"name": "BenchmarkB", "ns_op": 200, "b_op": 16, "allocs_op": 2}
]`
	cases := []struct {
		name     string
		fresh    string
		wantExit int
		want     string
	}{
		{"clean pass", `[
  {"name": "BenchmarkA", "ns_op": 105, "b_op": 0, "allocs_op": 0},
  {"name": "BenchmarkB", "ns_op": 190, "b_op": 16, "allocs_op": 2}
]`, 0, "benchgate: OK"},
		{"missing benchmark fails", `[
  {"name": "BenchmarkA", "ns_op": 105, "b_op": 0, "allocs_op": 0}
]`, 1, "FAIL BenchmarkB"},
		{"alloc regression fails", `[
  {"name": "BenchmarkA", "ns_op": 105, "b_op": 24, "allocs_op": 1},
  {"name": "BenchmarkB", "ns_op": 190, "b_op": 16, "allocs_op": 2}
]`, 1, "FAIL BenchmarkA allocs/op 0 -> 1"},
		{"new benchmark passes", `[
  {"name": "BenchmarkA", "ns_op": 105, "b_op": 0, "allocs_op": 0},
  {"name": "BenchmarkB", "ns_op": 190, "b_op": 16, "allocs_op": 2},
  {"name": "BenchmarkC", "ns_op": 999, "b_op": 0, "allocs_op": 0}
]`, 0, "benchgate: OK"},
		{"ns drift only warns", `[
  {"name": "BenchmarkA", "ns_op": 300, "b_op": 0, "allocs_op": 0},
  {"name": "BenchmarkB", "ns_op": 190, "b_op": 16, "allocs_op": 2}
]`, 0, "WARN BenchmarkA ns/op"},
	}
	for _, c := range cases {
		out, code := benchgate(t, baseline, c.fresh)
		if code != c.wantExit {
			t.Errorf("%s: exit %d, want %d\n%s", c.name, code, c.wantExit, out)
		}
		if !strings.Contains(out, c.want) {
			t.Errorf("%s: output missing %q:\n%s", c.name, c.want, out)
		}
	}
}
