package agilepkgc_test

// One benchmark per table/figure of the paper's evaluation. Each bench
// runs the corresponding experiment end to end and reports the headline
// quantity as a custom metric, so `go test -bench=. -benchmem` both
// exercises the harness and prints the reproduced results:
//
//	BenchmarkTable1  — watts per package C-state, PC6/PC1A speedup
//	BenchmarkTable2  — state-availability matrix
//	BenchmarkSec54   — component power deltas
//	BenchmarkSec55   — PC1A transition latency
//	BenchmarkEq1     — analytic savings model
//	BenchmarkFig5    — Cshallow vs Cdeep latency
//	BenchmarkFig6    — PC1A opportunity
//	BenchmarkFig7    — PC1A savings and impact
//	BenchmarkFig8    — MySQL
//	BenchmarkFig9    — Kafka
//	BenchmarkArea    — die-area budget

import (
	"runtime"
	"testing"

	"agilepkgc/internal/cluster"
	"agilepkgc/internal/experiments"
	"agilepkgc/internal/server"
	"agilepkgc/internal/sim"
	"agilepkgc/internal/soc"
	"agilepkgc/internal/workload"
	"agilepkgc/internal/workload/replay"
)

// benchOptions keeps per-iteration virtual time moderate so the full
// bench suite completes quickly while still exercising every flow.
// Sweeps run serially so per-figure numbers are comparable across
// machines; the *Parallel variants below measure the fan-out speedup.
func benchOptions() experiments.Options {
	return experiments.Options{Duration: 100 * sim.Millisecond, Seed: 1, Parallelism: 1}
}

// benchParallelOptions fans sweep points across all CPUs.
func benchParallelOptions() experiments.Options {
	o := benchOptions()
	o.Parallelism = runtime.GOMAXPROCS(0)
	return o
}

func BenchmarkTable1(b *testing.B) {
	b.ReportAllocs()
	var r *experiments.Table1Result
	for i := 0; i < b.N; i++ {
		r = experiments.Table1(benchOptions())
	}
	b.ReportMetric(r.PC1ASoC, "PC1A-SoC-W")
	b.ReportMetric(r.PC0IdleSoC, "PC0idle-SoC-W")
	b.ReportMetric(r.Speedup(), "PC6/PC1A-speedup-x")
}

func BenchmarkTable2(b *testing.B) {
	b.ReportAllocs()
	var rows int
	for i := 0; i < b.N; i++ {
		rows = len(experiments.Table2(benchOptions()).Rows)
	}
	b.ReportMetric(float64(rows), "states")
}

func BenchmarkSec54(b *testing.B) {
	b.ReportAllocs()
	var r *experiments.Sec54Result
	for i := 0; i < b.N; i++ {
		r = experiments.Sec54(benchOptions())
	}
	b.ReportMetric(r.PcoresDiff, "Pcores-diff-W")
	b.ReportMetric(r.PIOsDiff, "PIOs-diff-W")
	b.ReportMetric(r.PsocPC1A, "Psoc-PC1A-W")
}

func BenchmarkSec55(b *testing.B) {
	b.ReportAllocs()
	var r *experiments.Sec55Result
	for i := 0; i < b.N; i++ {
		r = experiments.Sec55(benchOptions())
	}
	b.ReportMetric(float64(r.Total), "PC1A-entry+exit-ns")
	b.ReportMetric(r.Speedup, "speedup-x")
}

func BenchmarkEq1(b *testing.B) {
	b.ReportAllocs()
	var r *experiments.Eq1Result
	for i := 0; i < b.N; i++ {
		r = experiments.Eq1(benchOptions())
	}
	b.ReportMetric(r.Idle.SavingsFrac*100, "idle-savings-%")
	b.ReportMetric(r.At5pct.SavingsFrac*100, "savings@5%-%")
}

func BenchmarkFig5(b *testing.B) {
	b.ReportAllocs()
	var r *experiments.Fig5Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig5(benchOptions(), []float64{4000, 50000, 300000})
	}
	low := r.Points[0]
	b.ReportMetric(low.DeepMean/low.ShallowMean, "Cdeep/Cshallow-mean@4K-x")
	hi := r.Points[2]
	b.ReportMetric(hi.DeepP99/hi.ShallowP99, "Cdeep/Cshallow-p99@300K-x")
}

func BenchmarkFig6(b *testing.B) {
	b.ReportAllocs()
	var r *experiments.Fig6Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig6(benchOptions(), []float64{4000, 50000})
	}
	b.ReportMetric(r.Points[0].AllIdleCensored*100, "PC1A-opportunity@4K-%")
	b.ReportMetric(r.Points[1].AllIdleCensored*100, "PC1A-opportunity@50K-%")
}

func BenchmarkFig7(b *testing.B) {
	b.ReportAllocs()
	var r *experiments.Fig7Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig7(benchOptions(), []float64{4000, 50000})
	}
	b.ReportMetric(r.Idle.SavingsVsShallow*100, "idle-savings-%")
	b.ReportMetric(r.Points[0].SavingsFrac*100, "savings@4K-%")
	b.ReportMetric(r.Points[1].SavingsFrac*100, "savings@50K-%")
	b.ReportMetric(r.Points[1].ImpactFrac*100, "latency-impact@50K-%")
}

// BenchmarkFig5Parallel / BenchmarkFig7Parallel are the same sweeps as
// their serial counterparts with points fanned across all CPUs; the
// ns/op ratio against the serial bench is the sweep-layer speedup, and
// the results are bit-identical (TestSerialParallelBitIdentical).
func BenchmarkFig5Parallel(b *testing.B) {
	b.ReportAllocs()
	var r *experiments.Fig5Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig5(benchParallelOptions(), []float64{4000, 50000, 300000})
	}
	low := r.Points[0]
	b.ReportMetric(low.DeepMean/low.ShallowMean, "Cdeep/Cshallow-mean@4K-x")
}

func BenchmarkFig7Parallel(b *testing.B) {
	b.ReportAllocs()
	var r *experiments.Fig7Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig7(benchParallelOptions(), []float64{4000, 50000})
	}
	b.ReportMetric(r.Idle.SavingsVsShallow*100, "idle-savings-%")
	b.ReportMetric(r.Points[1].SavingsFrac*100, "savings@50K-%")
}

func BenchmarkFig8(b *testing.B) {
	b.ReportAllocs()
	var r *experiments.WorkloadResult
	for i := 0; i < b.N; i++ {
		r = experiments.Fig8(benchOptions())
	}
	b.ReportMetric(r.Points[0].PowerReduction*100, "reduction@low-%")
	b.ReportMetric(r.Points[len(r.Points)-1].PowerReduction*100, "reduction@high-%")
}

func BenchmarkFig9(b *testing.B) {
	b.ReportAllocs()
	var r *experiments.WorkloadResult
	for i := 0; i < b.N; i++ {
		r = experiments.Fig9(benchOptions())
	}
	b.ReportMetric(r.Points[0].PowerReduction*100, "reduction@low-%")
	b.ReportMetric(r.Points[1].PowerReduction*100, "reduction@high-%")
}

func BenchmarkSensitivity(b *testing.B) {
	b.ReportAllocs()
	var r *experiments.SensitivityResult
	for i := 0; i < b.N; i++ {
		r = experiments.Sensitivity(benchOptions())
	}
	b.ReportMetric(r.Ablations[0].IdleSavings*100, "full-APC-idle-savings-%")
	b.ReportMetric(float64(r.PLLOffExit)/float64(r.PLLOnExit), "PLL-relock-exit-penalty-x")
}

func BenchmarkBatchingExtension(b *testing.B) {
	b.ReportAllocs()
	var r *experiments.BatchingResult
	for i := 0; i < b.N; i++ {
		r = experiments.Batching(benchOptions(), 50000, experiments.DefaultBatchingEpochs)
	}
	off, on := r.Points[0], r.Points[len(r.Points)-1]
	b.ReportMetric(off.SavingsFrac*100, "savings-unbatched-%")
	b.ReportMetric(on.SavingsFrac*100, "savings-batched-%")
}

func BenchmarkArea(b *testing.B) {
	b.ReportAllocs()
	var r experiments.AreaResult
	for i := 0; i < b.N; i++ {
		experiments.AreaInto(&r, experiments.DefaultAreaModel())
	}
	b.ReportMetric(r.Total*100, "die-area-%")
}

// benchmarkFleetRouting measures the balancer's hot path: one
// iteration advances a live 8-server power_aware fleet by 1 ms of
// virtual time (~300 routed requests plus every machine event behind
// them). The three variants bound the PR 5 controller's cost — the
// drain decision is a per-arrival scan and the feedback recompute is
// one engine event per epoch, so Drain/Feedback must stay within a few
// percent of the static baseline (the BENCH_pr5.json snapshot records
// the comparison).
func benchmarkFleetRouting(b *testing.B, hold, epoch sim.Duration, faults cluster.FaultConfig) {
	b.ReportAllocs()
	members := make([]cluster.MemberConfig, 8)
	for i := range members {
		scfg := server.DefaultConfig()
		scfg.Seed = 1
		members[i] = cluster.MemberConfig{SoC: soc.DefaultConfig(soc.CPC1A), Server: scfg}
	}
	fl, err := cluster.New(cluster.Config{
		Policy:        cluster.PowerAware,
		P99Target:     300 * sim.Microsecond,
		Topology:      cluster.Flat(8),
		DrainHold:     hold,
		FeedbackEpoch: epoch,
		Faults:        faults,
		Members:       members,
	}, workload.MemcachedBursty(300000, 8), 1)
	if err != nil {
		b.Fatal(err)
	}
	fl.Run(sim.Millisecond) // prime the pipeline outside the timer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fl.Run(sim.Millisecond)
	}
	b.ReportMetric(float64(fl.Generated())/float64(b.N+1), "req/iter")
}

// BenchmarkFleetRouting doubles as the disabled-fault-path baseline:
// the PR 6 route hook is one nil check, so this number must stay within
// a few percent of the BENCH_pr5.json snapshot.
func BenchmarkFleetRouting(b *testing.B) { benchmarkFleetRouting(b, 0, 0, cluster.FaultConfig{}) }

func BenchmarkFleetRoutingDrain(b *testing.B) {
	benchmarkFleetRouting(b, 1000*sim.Microsecond, 0, cluster.FaultConfig{})
}

func BenchmarkFleetRoutingFeedback(b *testing.B) {
	benchmarkFleetRouting(b, 1000*sim.Microsecond, 1000*sim.Microsecond, cluster.FaultConfig{})
}

// BenchmarkFleetRoutingFaults prices the full fault stack: crash
// injection, per-request timeout timers, bounded retries and hedging on
// every routed request.
func BenchmarkFleetRoutingFaults(b *testing.B) {
	benchmarkFleetRouting(b, 0, 0, cluster.FaultConfig{
		MTBF:           20 * sim.Millisecond,
		MTTR:           2 * sim.Millisecond,
		RequestTimeout: 2 * sim.Millisecond,
		MaxRetries:     2,
		HedgeDelay:     500 * sim.Microsecond,
	})
}

// BenchmarkFleetRoutingTiered prices the service-graph layer: the same
// 8-server power_aware front fleet as BenchmarkFleetRouting, with a
// 4-server mysql backend behind a lossy fan-out edge. One iteration
// advances the shared engine by 1 ms — front routing plus the miss
// decision, TTL fill-table lookup, fan-out emission and join
// bookkeeping on every front response, plus the backend fleet's own
// routing. The delta against BenchmarkFleetRouting is the per-request
// graph tax, and the allocs/op gate pins it at zero.
func BenchmarkFleetRoutingTiered(b *testing.B) {
	b.ReportAllocs()
	tier := func(n int, target sim.Duration, spec workload.Spec) cluster.TierConfig {
		members := make([]cluster.MemberConfig, n)
		for i := range members {
			scfg := server.DefaultConfig()
			scfg.Seed = 1
			members[i] = cluster.MemberConfig{SoC: soc.DefaultConfig(soc.CPC1A), Server: scfg}
		}
		return cluster.TierConfig{
			Name: spec.Name,
			Cluster: cluster.Config{
				Policy:    cluster.PowerAware,
				P99Target: target,
				Topology:  cluster.Flat(n),
				Members:   members,
			},
			Spec: spec,
		}
	}
	g, err := cluster.NewGraph(cluster.GraphConfig{
		Tiers: []cluster.TierConfig{
			tier(8, 300*sim.Microsecond, workload.MemcachedBursty(300000, 8)),
			tier(4, 2*sim.Millisecond, workload.MySQL(0.1, 4)),
		},
		Edges: []cluster.EdgeConfig{
			{From: 0, To: 1, HitRatio: 0.8, TTL: 500 * sim.Microsecond, Fanout: 2},
		},
	}, 1)
	if err != nil {
		b.Fatal(err)
	}
	// The long prime fills the join pool and the backend's heavy-tailed
	// latency histograms, same as the tiered allocs gate.
	g.Run(20 * sim.Millisecond)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Run(sim.Millisecond)
	}
	b.ReportMetric(float64(g.TierFleet(0).Generated())/float64(b.N+20), "req/iter")
}

// BenchmarkFleetRoutingReplay prices the recorded-arrival hot path: the
// same 8-server power_aware fleet as BenchmarkFleetRouting, driven by a
// looping in-memory recording of the identical bursty stream instead of
// the live generator. The delta against BenchmarkFleetRouting is the
// cost of streamed decode + absolute-time scheduling, and the allocs/op
// gate pins it at zero like the synthetic path.
func BenchmarkFleetRoutingReplay(b *testing.B) {
	b.ReportAllocs()
	var buf replay.MemBuffer
	if _, err := replay.Synthesize(&buf, workload.MemcachedBursty(300000, 8), 1, 0, 20*sim.Millisecond); err != nil {
		b.Fatal(err)
	}
	if _, err := buf.Seek(0, 0); err != nil {
		b.Fatal(err)
	}
	rd, err := replay.NewReader(&buf)
	if err != nil {
		b.Fatal(err)
	}
	rp, err := replay.New(rd, replay.Options{Loop: true})
	if err != nil {
		b.Fatal(err)
	}
	members := make([]cluster.MemberConfig, 8)
	for i := range members {
		scfg := server.DefaultConfig()
		scfg.Seed = 1
		members[i] = cluster.MemberConfig{SoC: soc.DefaultConfig(soc.CPC1A), Server: scfg}
	}
	fl, err := cluster.New(cluster.Config{
		Policy:    cluster.PowerAware,
		P99Target: 300 * sim.Microsecond,
		Topology:  cluster.Flat(8),
		Members:   members,
		NewSource: func(eng *sim.Engine, _ workload.Spec, _ uint64, sink func(*workload.Request)) workload.Source {
			if err := rp.Bind(eng, sink); err != nil {
				b.Fatal(err)
			}
			return rp
		},
	}, rd.Header().Spec(), 1)
	if err != nil {
		b.Fatal(err)
	}
	fl.Run(sim.Millisecond) // prime the pipeline outside the timer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fl.Run(sim.Millisecond)
	}
	b.ReportMetric(float64(fl.Generated())/float64(b.N+1), "req/iter")
}
