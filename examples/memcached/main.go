// Memcached sweep: the paper's headline experiment. Serve the ETC-style
// key-value workload across the low-load band on the Cshallow baseline
// and the CPC1A system, and report power savings and latency impact —
// the data behind paper Fig. 7.
package main

import (
	"fmt"

	"agilepkgc/internal/pmu"
	"agilepkgc/internal/server"
	"agilepkgc/internal/sim"
	"agilepkgc/internal/soc"
	"agilepkgc/internal/workload"
)

func main() {
	const window = 500 * sim.Millisecond
	fmt.Println("QPS     Cshallow    C_PC1A     saving   PC1A-res   mean-lat-impact")

	for _, qps := range []float64{0, 4000, 10000, 20000, 50000, 100000} {
		shW, shLat := run(soc.Cshallow, qps, window)
		apW, apLat := run(soc.CPC1A, qps, window)
		saving := (shW - apW) / shW

		// PC1A residency needs its own instrumented run.
		res := pc1aResidency(qps, window)

		impact := "-"
		if qps > 0 {
			impact = fmt.Sprintf("%+.4f%%", (apLat-shLat)/shLat*100)
		}
		fmt.Printf("%-6.0f  %6.1fW     %6.1fW    %5.1f%%   %5.1f%%     %s\n",
			qps, shW, apW, saving*100, res*100, impact)
	}
}

// run serves Memcached at qps on a fresh system and returns average
// SoC+DRAM watts and mean latency.
func run(kind soc.ConfigKind, qps float64, window sim.Duration) (watts, meanLat float64) {
	sys := soc.New(soc.DefaultConfig(kind))
	if qps == 0 {
		snap := sys.Meter.Snapshot()
		sys.Engine.Run(window)
		return snap.AverageTotal(), 0
	}
	srv := server.New(sys, server.DefaultConfig(), workload.Memcached(qps))
	srv.Run(window / 5) // warmup
	snap := sys.Meter.Snapshot()
	srv.Run(window)
	return snap.AverageTotal(), srv.Latencies().Mean()
}

func pc1aResidency(qps float64, window sim.Duration) float64 {
	sys := soc.New(soc.DefaultConfig(soc.CPC1A))
	if qps > 0 {
		srv := server.New(sys, server.DefaultConfig(), workload.Memcached(qps))
		srv.Run(window)
	} else {
		sys.Engine.Run(window)
	}
	return float64(sys.APMU.Residency(pmu.PC1A)) / float64(sys.Engine.Now())
}
