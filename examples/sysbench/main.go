// Closed-loop sysbench: drive MySQL-style OLTP through synchronous
// client threads (the way the paper's sysbench clients actually behave)
// instead of an open-loop rate, and sweep the thread count. Closed-loop
// load self-throttles, so the PC1A opportunity shifts with concurrency
// rather than arrival rate.
package main

import (
	"fmt"

	"agilepkgc/internal/pmu"
	"agilepkgc/internal/server"
	"agilepkgc/internal/sim"
	"agilepkgc/internal/soc"
	"agilepkgc/internal/workload"
)

func main() {
	const window = 500 * sim.Millisecond
	fmt.Println("threads  completed   tps      mean-lat   PC1A-res   power")

	for _, threads := range []int{4, 16, 64} {
		sys := soc.New(soc.DefaultConfig(soc.CPC1A))
		srv := server.NewClosedLoop(sys, server.DefaultConfig())
		cl := workload.SysbenchOLTP(sys.Engine, threads, 2e-3, 1, srv.Submit)

		cl.Start()
		snap := sys.Meter.Snapshot()
		srv.Run(window)
		cl.Stop()
		srv.Run(20 * sim.Millisecond) // drain

		tps := float64(cl.Completed()) / window.Seconds()
		res := float64(sys.APMU.Residency(pmu.PC1A)) / float64(sys.Engine.Now())
		fmt.Printf("%-7d  %-9d  %-7.0f  %-8.1fus %6.1f%%    %5.1fW\n",
			threads, cl.Completed(), tps,
			srv.Latencies().Mean()*1e6, res*100, snap.AverageTotal())
	}
	fmt.Println("\nMore threads -> more concurrency -> less full-system idleness -> less PC1A.")
}
