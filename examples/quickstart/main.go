// Quickstart: assemble an AgilePkgC (CPC1A) server, let it idle into
// PC1A, then drive a burst of Memcached load and watch the package
// C-state, power and latency respond.
package main

import (
	"fmt"

	"agilepkgc/internal/pmu"
	"agilepkgc/internal/server"
	"agilepkgc/internal/sim"
	"agilepkgc/internal/soc"
	"agilepkgc/internal/workload"
)

func main() {
	// A 10-core Skylake-class server with the APC architecture.
	sys := soc.New(soc.DefaultConfig(soc.CPC1A))

	// Let it idle: all cores sit in CC1, so the APMU drops the package
	// into PC1A within tens of nanoseconds.
	sys.Engine.Run(10 * sim.Millisecond)
	fmt.Printf("after 10ms idle:   state=%-5v  SoC=%5.1fW  DRAM=%4.2fW\n",
		sys.PackageState(), sys.SoCPower(), sys.DRAMPower())
	fmt.Printf("PC1A residency so far: %.1f%%\n",
		100*float64(sys.APMU.Residency(pmu.PC1A))/float64(sys.Engine.Now()))

	// Now serve Memcached at 50K QPS for 200ms of virtual time.
	srv := server.New(sys, server.DefaultConfig(), workload.Memcached(50000))
	snap := sys.Meter.Snapshot()
	srv.Run(200 * sim.Millisecond)

	fmt.Printf("\nafter 200ms at 50K QPS:\n")
	fmt.Printf("  served:        %d requests\n", srv.Served())
	fmt.Printf("  mean latency:  %.1fus (incl. 117us network)\n", srv.Latencies().Mean()*1e6)
	fmt.Printf("  p99 latency:   %.1fus\n", srv.Latencies().Quantile(0.99)*1e6)
	fmt.Printf("  avg power:     %.1fW (SoC+DRAM)\n", snap.AverageTotal())
	fmt.Printf("  PC1A entries:  %d\n", sys.APMU.Entries(pmu.PC1A))
	fmt.Printf("  state now:     %v (drained back to idle)\n", sys.PackageState())
}
