// Ablation: quantify each of APC's techniques by disabling them one at a
// time — what does PC1A save without CLM retention, without DRAM
// CKE-off, without IO standby? And what would PC1A's exit cost if it
// powered PLLs off the way PC6 does?
package main

import (
	"fmt"

	"agilepkgc/internal/clock"
	"agilepkgc/internal/sim"
	"agilepkgc/internal/soc"
)

func main() {
	idleWatts := func(cfg soc.Config) float64 {
		s := soc.New(cfg)
		s.Engine.Run(10 * sim.Millisecond)
		return s.TotalPower()
	}

	baselineShallow := idleWatts(soc.DefaultConfig(soc.Cshallow))
	full := idleWatts(soc.DefaultConfig(soc.CPC1A))

	noCLMR := soc.DefaultConfig(soc.CPC1A)
	noCLMR.NoCLMRetention = true
	noCKE := soc.DefaultConfig(soc.CPC1A)
	noCKE.NoCKEOff = true
	noIO := soc.DefaultConfig(soc.CPC1A)
	noIO.NoIOStandby = true

	fmt.Println("Idle SoC+DRAM power with one APC technique removed:")
	fmt.Printf("  %-28s %6.1fW   (savings vs Cshallow: %4.1f%%)\n", "Cshallow baseline", baselineShallow, 0.0)
	for _, row := range []struct {
		name string
		w    float64
	}{
		{"full APC (PC1A)", full},
		{"without CLMR (retention)", idleWatts(noCLMR)},
		{"without DRAM CKE-off", idleWatts(noCKE)},
		{"without IO standby (L0s)", idleWatts(noIO)},
	} {
		fmt.Printf("  %-28s %6.1fW   (savings vs Cshallow: %4.1f%%)\n",
			row.name, row.w, (baselineShallow-row.w)/baselineShallow*100)
	}

	// The PLL trade: keeping 8 ADPLLs locked costs 56 mW but saves a
	// multi-microsecond relock on every exit.
	pllCost := 8 * clock.ADPLLPowerWatts
	fmt.Printf("\nPLLs-on cost: %.0f mW of idle power\n", pllCost*1000)
	fmt.Printf("PLLs-off cost: +%v exit latency (relock), i.e. PC1A exit %v -> %v\n",
		clock.DefaultRelockLatency, 150*sim.Nanosecond,
		150*sim.Nanosecond+clock.DefaultRelockLatency)
	fmt.Println("=> 56 mW buys a >20x faster exit: the paper's fourth technique.")
}
