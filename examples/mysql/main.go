// MySQL OLTP: paper Fig. 8. Evaluate the sysbench-style transactional
// workload at the paper's low/mid/high loads (8%, 16%, 42%) and report
// baseline residencies and the CPC1A power reduction.
package main

import (
	"fmt"

	"agilepkgc/internal/cpu"
	"agilepkgc/internal/server"
	"agilepkgc/internal/sim"
	"agilepkgc/internal/soc"
	"agilepkgc/internal/trace"
	"agilepkgc/internal/workload"
)

func main() {
	const window = 500 * sim.Millisecond
	fmt.Println("load    QPS     CC0     CC1     all-idle   Cshallow   C_PC1A    reduction")

	for _, load := range []float64{0.08, 0.16, 0.42} {
		spec := workload.MySQL(load, 10)

		// Cshallow baseline with residency tracing.
		shSys := soc.New(soc.DefaultConfig(soc.Cshallow))
		shSrv := server.New(shSys, server.DefaultConfig(), spec)
		tr := trace.New(shSys.Engine, shSys.Cores)
		shSnap := shSys.Meter.Snapshot()
		shSrv.Run(window)
		tr.Finalize()
		shW := shSnap.AverageTotal()

		// CPC1A.
		apSys := soc.New(soc.DefaultConfig(soc.CPC1A))
		apSrv := server.New(apSys, server.DefaultConfig(), spec)
		apSnap := apSys.Meter.Snapshot()
		apSrv.Run(window)
		apW := apSnap.AverageTotal()

		fmt.Printf("%4.0f%%  %6.0f  %5.1f%%  %5.1f%%   %6.1f%%    %6.1fW    %6.1fW    %5.1f%%\n",
			load*100, spec.MeanQPS(),
			tr.MeanResidency(cpu.CC0)*100, tr.MeanResidency(cpu.CC1)*100,
			tr.AllIdleFraction()*100, shW, apW, (shW-apW)/shW*100)
	}
	fmt.Println("\npaper Fig. 8: all-idle 20-37% across loads; power reduction 7-14%")
}
