// Kafka streaming: paper Fig. 9. Evaluate the bursty event-streaming
// workload at the paper's low/high loads (8%, 16%) and report the PC1A
// opportunity and power reduction.
package main

import (
	"fmt"

	"agilepkgc/internal/pmu"
	"agilepkgc/internal/server"
	"agilepkgc/internal/sim"
	"agilepkgc/internal/soc"
	"agilepkgc/internal/trace"
	"agilepkgc/internal/workload"
)

func main() {
	const window = 500 * sim.Millisecond
	fmt.Println("load    QPS     all-idle  PC1A-res   Cshallow   C_PC1A   reduction")

	for _, load := range []float64{0.08, 0.16} {
		spec := workload.Kafka(load, 10)

		shSys := soc.New(soc.DefaultConfig(soc.Cshallow))
		shSrv := server.New(shSys, server.DefaultConfig(), spec)
		tr := trace.New(shSys.Engine, shSys.Cores)
		shSnap := shSys.Meter.Snapshot()
		shSrv.Run(window)
		tr.Finalize()
		shW := shSnap.AverageTotal()

		apSys := soc.New(soc.DefaultConfig(soc.CPC1A))
		apSrv := server.New(apSys, server.DefaultConfig(), spec)
		apSnap := apSys.Meter.Snapshot()
		apSrv.Run(window)
		apW := apSnap.AverageTotal()
		res := float64(apSys.APMU.Residency(pmu.PC1A)) / float64(apSys.Engine.Now())

		fmt.Printf("%4.0f%%  %6.0f   %6.1f%%   %6.1f%%    %6.1fW    %5.1fW    %5.1f%%\n",
			load*100, spec.MeanQPS(), tr.AllIdleFraction()*100, res*100,
			shW, apW, (shW-apW)/shW*100)
	}
	fmt.Println("\npaper Fig. 9: PC1A residency 15-47%; power reduction 9-19%")
}
