// Package agilepkgc is a discrete-event simulation reproduction of
// "AgilePkgC: An Agile System Idle State Architecture for Energy
// Proportional Datacenter Servers" (MICRO 2022).
//
// The library models a Skylake-class server SoC (cores and C-states, IO
// links and L-states, DRAM power modes, FIVR power delivery, PLL clocking)
// plus the paper's contribution — the APMU hardware FSM implementing the
// PC1A agile package C-state — and regenerates every table and figure of
// the paper's evaluation. See README.md for a tour and DESIGN.md for the
// architecture and calibration.
package agilepkgc
