// Package agilepkgc is a discrete-event simulation reproduction of
// "AgilePkgC: An Agile System Idle State Architecture for Energy
// Proportional Datacenter Servers" (MICRO 2022).
//
// Latency-critical servers idle 60–70% of the time but almost never get
// to use deep package C-states: entry and exit are too slow for
// microsecond-scale request gaps. The paper's answer, reproduced here,
// is PC1A — an agile package C-state run by a small dedicated hardware
// FSM (the APMU) that harvests only the fast-entry/fast-exit savings
// (CLM retention voltage, DRAM CKE-off, IO link standby, PLLs kept
// locked) so the whole round trip costs ~200 ns instead of tens of
// microseconds.
//
// # Layer map
//
// Everything runs on one deterministic discrete-event engine; each
// layer below builds on the ones above it:
//
//	internal/sim          the engine: pooled, allocation-free, strict
//	                      (time, sequence) event order
//	internal/clock        PLLs and relock latencies
//	internal/pdn          FIVR power delivery and voltage ramps
//	internal/cpu          cores, core C-states, idle governors
//	internal/ios          PCIe/DMI/UPI links and their L-states
//	internal/dram         memory controllers, CKE power-down, self-refresh
//	internal/uncore       CLM (cache/LLC module) retention
//	internal/pmu          global PMU: the legacy PC2/PC6 flows
//	internal/core         the APMU FSM implementing PC1A
//	internal/soc          assembles the above into the paper's three
//	                      evaluated configurations (Cshallow, Cdeep, CPC1A)
//	internal/power        piecewise-constant power/energy accounting
//	internal/workload     Memcached/MySQL/Kafka open-loop streams and a
//	                      closed-loop sysbench client, behind a Source
//	                      seam that also admits recorded streams
//	internal/workload/replay
//	                      the binary arrival-trace format: a fuzzed
//	                      zero-copy decoder, a deterministic recorder,
//	                      and a Replay source that reproduces a
//	                      recorded stream byte-identically to the
//	                      generator that made it
//	internal/server       the software stack of one service instance:
//	                      NIC DMA, kernel overhead, core dispatch,
//	                      client-observed latency
//	internal/cluster      fleets: N servers on one shared engine behind
//	                      a load balancer with power-aware and
//	                      rack-affinity routing over a multi-rack
//	                      topology (ToR hops, per-rack power zones),
//	                      plus balancer dynamics — a hysteretic drain
//	                      controller and a p99-driven SLA feedback loop
//	                      over the packing caps — and fault injection
//	                      with failure recovery: crashes, brownouts and
//	                      ToR partitions answered by timeouts, bounded
//	                      retries, hedged requests and load shedding,
//	                      and multi-tier service graphs: fleets wired
//	                      by lossy cache edges (hit ratio, TTL,
//	                      fan-out) with misses cascading downstream on
//	                      the same engine
//	internal/trace        C-state residency tracing, idle-period stats,
//	                      VCD dump
//	internal/stats        histograms, P² quantiles, distributions, RNG
//	internal/experiments  the self-registering registry of paper
//	                      artifacts plus the parallel sweep runner
//	internal/scenario     declarative JSON scenarios over all of the
//	                      above
//
// # Entry points
//
// cmd/apcsim regenerates any subset of the paper's evaluation
// (`apcsim list`, `apcsim run all`, `apcsim scenario file.json`),
// cmd/apctop is a live TUI over a simulated machine's MSR/PMU readout
// surfaces, and cmd/tracegen authors and inspects the binary arrival
// traces that scenarios replay (`tracegen synth|convert|dump`). The
// examples/ directory holds small programmatic drivers.
//
// Every run is reproducible: same seed, bit-identical traces, at any
// parallelism. README.md is the tour; DESIGN.md documents the engine
// internals, the registry/scenario architecture, the cluster layer and
// the power-model calibration.
package agilepkgc
