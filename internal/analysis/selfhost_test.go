package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"sync"
	"testing"

	"agilepkgc/internal/analysis"
)

// loadOnce shares one module load (go list -export over ./...) between
// the self-hosting test and the facts-coverage test.
var loadOnce struct {
	sync.Once
	pkgs []*analysis.Package
	err  error
}

func modulePkgs(t *testing.T) []*analysis.Package {
	t.Helper()
	loadOnce.Do(func() {
		loadOnce.pkgs, loadOnce.err = analysis.LoadModule("../..", "./...")
	})
	if loadOnce.err != nil {
		t.Fatalf("loading module packages: %v", loadOnce.err)
	}
	return loadOnce.pkgs
}

// TestSelfHost is the suite's keystone: the module must be clean under
// all four passes. A diagnostic here means either the code broke an
// invariant or a pass grew a false positive — both block CI.
func TestSelfHost(t *testing.T) {
	pkgs := modulePkgs(t)
	if len(pkgs) == 0 {
		t.Fatal("module load returned no packages")
	}
	diags, err := analysis.Run(pkgs, analysis.All())
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, d := range diags {
		pos := pkgs[0].Fset.Position(d.Pos)
		t.Errorf("%s: [%s] %s", pos, d.Pass, d.Message)
	}
}

// TestHotPathFactsCoverage pins the annotation rollout: the functions
// the steady-state alloc gates exercise (fleet routing, fault
// recovery, graph joins, replay decode, pooled sources) must stay
// marked //apcvet:noalloc, and the pool lifecycle entry points must
// stay marked pooled/poolput. Deleting an annotation silently shrinks
// what apcvet checks; this test makes that loud.
func TestHotPathFactsCoverage(t *testing.T) {
	facts := analysis.BuildFacts(modulePkgs(t))
	noalloc := []string{
		"agilepkgc/internal/cluster.(Fleet).route",
		"agilepkgc/internal/cluster.(Fleet).pick",
		"agilepkgc/internal/cluster.(Fleet).putRouted",
		"agilepkgc/internal/cluster.(Fleet).onComplete",
		"agilepkgc/internal/cluster.(Fleet).recomputeCaps",
		"agilepkgc/internal/cluster.(faultState).route",
		"agilepkgc/internal/cluster.(faultState).complete",
		"agilepkgc/internal/cluster.(Graph).resolve",
		"agilepkgc/internal/cluster.(Graph).putJoin",
		"agilepkgc/internal/workload.(Generator).emit",
		"agilepkgc/internal/workload.(PushSource).Emit",
		"agilepkgc/internal/workload/replay.(Reader).Next",
		"agilepkgc/internal/workload/replay.(Reader).decode",
		"agilepkgc/internal/workload/replay.(Replay).emit",
	}
	for _, key := range noalloc {
		if !facts.NoAlloc[key] {
			t.Errorf("hot-path function %s is not annotated //apcvet:noalloc", key)
		}
	}
	pooled := []string{
		"agilepkgc/internal/cluster.routedReq",
		"agilepkgc/internal/cluster.logicalReq",
		"agilepkgc/internal/cluster.attempt",
		"agilepkgc/internal/cluster.joinReq",
		"agilepkgc/internal/workload.Request",
	}
	for _, key := range pooled {
		if !facts.Pooled[key] {
			t.Errorf("free-listed record type %s is not annotated //apcvet:pooled", key)
		}
	}
	poolput := []string{
		"agilepkgc/internal/cluster.(Fleet).putRouted",
		"agilepkgc/internal/cluster.(faultState).freeLogical",
		"agilepkgc/internal/cluster.(faultState).freeAttempt",
		"agilepkgc/internal/cluster.(Graph).putJoin",
		"agilepkgc/internal/workload.(Generator).Release",
		"agilepkgc/internal/workload.(PushSource).Release",
		"agilepkgc/internal/workload/replay.(Replay).Release",
	}
	for _, key := range poolput {
		if !facts.PoolPut[key] {
			t.Errorf("pool release point %s is not annotated //apcvet:poolput", key)
		}
	}
	for _, pkg := range []string{
		"agilepkgc/internal/cluster",
		"agilepkgc/internal/workload",
		"agilepkgc/internal/workload/replay",
	} {
		if !facts.InNoAllocDomain(pkg) {
			t.Errorf("package %s dropped out of the noalloc annotation domain", pkg)
		}
	}
}

// TestAnnotationGrammar locks the marker grammar errors: unknown
// verbs, markers with arguments, suppressions without justifications,
// and verb/declaration-kind mismatches all surface as AnnErrs (which
// Run reports under the "annotation" pseudo-pass).
func TestAnnotationGrammar(t *testing.T) {
	const src = `package p

//apcvet:bogus something
func a() {}

//apcvet:noalloc because it is hot
func b() {}

func c(m map[int]int) {
	//apcvet:ordered
	for range m {
	}
}

//apcvet:pooled
func d() {}

//apcvet:noalloc
type q struct{}
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "grammar.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	ann := analysis.ParseAnnotations(fset, "example.com/p", []*ast.File{file})
	wants := []string{
		"unknown apcvet annotation verb bogus",
		"apcvet:noalloc takes no argument",
		"apcvet:ordered needs a justification",
		"apcvet:pooled marks a type, not a function",
		"apcvet:noalloc marks a function, not a type",
	}
	for _, want := range wants {
		found := false
		for _, e := range ann.Errs {
			if strings.Contains(e.Msg, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("expected a grammar error containing %q; got %v", want, msgs(ann.Errs))
		}
	}
	if len(ann.Errs) != len(wants) {
		t.Errorf("expected exactly %d grammar errors, got %d: %v", len(wants), len(ann.Errs), msgs(ann.Errs))
	}
}

func msgs(errs []analysis.AnnErr) []string {
	var out []string
	for _, e := range errs {
		out = append(out, e.Msg)
	}
	return out
}
