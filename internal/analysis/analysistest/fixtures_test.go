package analysistest

import (
	"testing"

	"agilepkgc/internal/analysis"
)

// The fixture suites: each directory exercises one pass — violations
// the pass must catch, suppressions it must honor, and clean idioms it
// must leave alone. The import paths are deliberate: the determinism
// pass scopes itself to packages under an internal/ element.
func TestDeterminismFixture(t *testing.T) {
	Run(t, "testdata/determinism", "example.com/fixture/internal/det", []*analysis.Analyzer{analysis.Determinism})
}

func TestNoAllocFixture(t *testing.T) {
	Run(t, "testdata/noalloc", "example.com/fixture/na", []*analysis.Analyzer{analysis.NoAlloc})
}

func TestPoolSafeFixture(t *testing.T) {
	Run(t, "testdata/poolsafe", "example.com/fixture/pool", []*analysis.Analyzer{analysis.PoolSafe})
}

func TestSeededRNGFixture(t *testing.T) {
	Run(t, "testdata/seededrng", "example.com/fixture/rng", []*analysis.Analyzer{analysis.SeededRNG})
}
