// Package analysistest runs apcvet analyzers over fixture packages and
// checks their diagnostics against inline expectations, in the style
// of golang.org/x/tools/go/analysis/analysistest but built on the
// stdlib only (this module vendors no dependencies).
//
// A fixture is a directory of .go files forming one package. Every
// line that should produce diagnostics carries a trailing comment of
// the form
//
//	// want "regexp" "another regexp"
//
// with one quoted regexp per expected diagnostic on that line. The
// harness fails the test for any diagnostic with no matching
// expectation and for any expectation no diagnostic matched — so a
// fixture locks both that violations are caught and that clean idioms
// stay clean.
//
// Fixtures may import standard-library packages only; export data is
// resolved through `go list -export`, exactly like the real loader
// (load.go), so the tests run offline.
package analysistest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"agilepkgc/internal/analysis"
)

// wantRE matches one quoted expectation in a `// want` comment —
// either a double-quoted Go string or a raw backquoted regexp.
var wantRE = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// Run analyzes the fixture package in dir under the given import path
// (the path matters: the determinism pass scopes itself to paths with
// an "internal" element) and checks diagnostics against the fixture's
// `// want` expectations.
func Run(t *testing.T, dir, pkgPath string, analyzers []*analysis.Analyzer) {
	t.Helper()
	fset := token.NewFileSet()
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no fixture files in %s (%v)", dir, err)
	}
	sort.Strings(names)
	var files []*ast.File
	wants := map[string]map[int][]*expectation{}
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		files = append(files, f)
		wants[name] = parseWants(t, name)
	}
	pkg, err := analysis.CheckPackage(fset, pkgPath, files, stdImporter(t, fset, files))
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", dir, err)
	}
	diags, err := analysis.Run([]*analysis.Package{pkg}, analyzers)
	if err != nil {
		t.Fatalf("running analyzers over %s: %v", dir, err)
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if !claim(wants[pos.Filename][pos.Line], d.Message) {
			t.Errorf("%s:%d: unexpected diagnostic (%s): %s", pos.Filename, pos.Line, d.Pass, d.Message)
		}
	}
	for file, byLine := range wants {
		for line, exps := range byLine {
			for _, e := range exps {
				if !e.matched {
					t.Errorf("%s:%d: expected a diagnostic matching %q, got none", file, line, e.re.String())
				}
			}
		}
	}
}

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

// claim marks the first unmatched expectation whose regexp matches the
// message and reports whether one existed.
func claim(exps []*expectation, msg string) bool {
	for _, e := range exps {
		if !e.matched && e.re.MatchString(msg) {
			e.matched = true
			return true
		}
	}
	return false
}

// parseWants extracts `// want "..."` expectations per source line.
// Scanning raw lines (rather than the comment AST) keeps the harness
// independent of how the fixture mixes wants with apcvet markers.
func parseWants(t *testing.T, filename string) map[int][]*expectation {
	t.Helper()
	src, err := os.ReadFile(filename)
	if err != nil {
		t.Fatal(err)
	}
	out := map[int][]*expectation{}
	for i, line := range strings.Split(string(src), "\n") {
		_, rest, ok := strings.Cut(line, "// want ")
		if !ok {
			continue
		}
		for _, m := range wantRE.FindAllString(rest, -1) {
			var pat string
			if m[0] == '`' {
				pat = m[1 : len(m)-1]
			} else {
				var err error
				if pat, err = strconv.Unquote(m); err != nil {
					t.Fatalf("%s:%d: bad want string %s: %v", filename, i+1, m, err)
				}
			}
			re, err := regexp.Compile(pat)
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp %q: %v", filename, i+1, pat, err)
			}
			out[i+1] = append(out[i+1], &expectation{re: re})
		}
	}
	return out
}

// stdImporter resolves the fixture's standard-library imports through
// `go list -export`, mirroring the module loader.
func stdImporter(t *testing.T, fset *token.FileSet, files []*ast.File) types.Importer {
	t.Helper()
	seen := map[string]bool{}
	var paths []string
	for _, f := range files {
		for _, spec := range f.Imports {
			p, err := strconv.Unquote(spec.Path.Value)
			if err != nil || seen[p] {
				continue
			}
			seen[p] = true
			paths = append(paths, p)
		}
	}
	exports := map[string]string{}
	if len(paths) > 0 {
		sort.Strings(paths)
		args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Export"}, paths...)
		cmd := exec.Command("go", args...)
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			t.Fatalf("go list %v: %v\n%s", paths, err, stderr.Bytes())
		}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var p struct{ ImportPath, Export string }
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				t.Fatalf("go list decode: %v", err)
			}
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (fixtures may import the standard library only)", path)
		}
		return os.Open(f)
	})
}
