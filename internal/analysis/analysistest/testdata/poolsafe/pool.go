// Package pool is the poolsafe-pass fixture: use-after-release of a
// pooled record must be flagged, the copy-fields-first discipline and
// terminating-branch puts must stay clean, and record callbacks may
// capture only their owner record.
package pool

//apcvet:pooled
type item struct {
	id     int
	next   *item
	doneFn func()
}

type freelist struct {
	free []*item
	hits int
}

//apcvet:poolput
func (p *freelist) put(it *item) {
	p.free = append(p.free, it)
}

func (p *freelist) useAfterPut(it *item) int {
	p.put(it)
	return it.id // want `it used after being released to the pool`
}

func (p *freelist) copyFirst(it *item) int {
	id := it.id
	p.put(it)
	return id // fields copied before the put: clean
}

func (p *freelist) terminatingBranch(it *item, done bool) int {
	if done {
		p.put(it)
		return 0
	}
	return it.id // clean: the put's branch cannot fall through
}

func (p *freelist) rebind(it *item) {
	for {
		next := it.next
		p.put(it)
		if next == nil {
			return
		}
		it = next // clean: rebound to a different record
	}
}

func (p *freelist) audited(it *item, impossible bool) int {
	p.put(it)
	if impossible {
		return it.id //apcvet:poolok defensive backstop; callers hold the record's last reference
	}
	return 0
}

func (p *freelist) lateClosure(it *item) func() int {
	p.put(it)
	return func() int { return it.id } // want `it used after being released to the pool`
}

func (p *freelist) bindCapturesOutside(it *item) {
	it.doneFn = func() { p.hits = it.id } // want `captures "p"`
}

func (p *freelist) bindOwnerOnly(it *item) {
	it.doneFn = func() { it.id++ } // captures only the record: clean
}

func newItem(p *freelist) *item {
	return &item{
		doneFn: func() { p.hits++ }, // want `callback initialized in a pooled item literal captures "p"`
	}
}
