// Package na is the noalloc-pass fixture: annotated hot paths must
// reject allocating constructs while the amortizing idioms the real
// hot paths use — field appends, capture-free literals, pooled
// warm-up branches under //apcvet:alloc — stay clean.
package na

type rec struct {
	buf  []byte
	vals []int
}

var global []int

//apcvet:noalloc
func hot(r *rec, n int) {
	r.vals = append(r.vals, n)                 // amortizing field append: clean
	global = append(global, n)                 // package-level slice: clean
	r.vals = append(r.vals[:0], r.vals[1:]...) // resliced field append: clean
	xs := []int{1, 2, 3}                       // want `slice literal allocates`
	m := map[string]int{"a": 1}                // want `map literal allocates`
	p := &rec{}                                // want `&composite literal escapes`
	b := make([]byte, n)                       // want `make allocates`
	q := new(rec)                              // want `new allocates`
	var local []int
	local = append(local, n)      // want `append to a non-preallocated \(locally-rooted\) slice`
	f := func() int { return n }  // want `func literal captures n`
	g := func() int { return 42 } // capture-free literal: clean
	helper(n)                     // want `call to example\.com/fixture/na\.helper, which is not annotated`
	audited(n)                    // annotated callee: clean
	_, _, _, _, _, _, _, _ = xs, m, p, b, q, local, f, g
}

func helper(n int) int { return n + 1 }

//apcvet:noalloc
func audited(n int) int { return n + 1 }

type boxer interface{ payload() int }

type fat struct{ a, b, c, d int64 }

func (f fat) payload() int { return int(f.a) }

type thin struct{ a int64 }

func (t *thin) payload() int { return int(t.a) }

//apcvet:noalloc
func boxes(f fat) boxer {
	return f // want `fat value boxed into interface`
}

//apcvet:noalloc
func pointerShaped(t *thin) boxer {
	return t // pointer payload fits the interface word: clean
}

//apcvet:noalloc
func stringCopy(bs []byte) string {
	return string(bs) // want `string conversion from a slice copies`
}

//apcvet:noalloc
func warmup(r *rec) []byte {
	if r.buf == nil {
		r.buf = make([]byte, 64) //apcvet:alloc pool warm-up: runs once per record lifetime, not per request
	}
	return r.buf
}
