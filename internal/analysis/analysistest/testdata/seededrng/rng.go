// Package rng is the seededrng-pass fixture: bare-constant seeds and
// seeds with no visible root in the seed plumbing must be flagged,
// sibling streams in one function need distinct salts, and the
// Fork-from-an-existing-stream pattern stays clean.
package rng

import "math/rand/v2"

func bare() *rand.Rand {
	return rand.New(rand.NewPCG(1, 2)) // want `RNG seeded with the bare constant 1` `RNG seeded with the bare constant 2`
}

func seeded(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b9)) // rooted in the seed plumbing: clean
}

func unrooted(n uint64) *rand.Rand {
	return rand.New(rand.NewPCG(n, n+1)) // want `RNG seed n has no visible root` `RNG seed n\+1 has no visible root`
}

// newStream is a local wrapper: its callers' arguments are seed sites
// too, because the body reaches a rand constructor.
func newStream(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0xa5a5))
}

func fleet(seed uint64) []*rand.Rand {
	return []*rand.Rand{
		newStream(seed ^ 0x01), // distinct salt: clean
		newStream(seed ^ 0x02), // distinct salt: clean
		newStream(seed ^ 0x01), // want `same salt as the site`
	}
}

func forked(r *rand.Rand) *rand.Rand {
	return newStream(r.Uint64()) // derived from an existing stream (Fork): clean
}
