// Package det is the determinism-pass fixture: ambient
// nondeterminism entry points (wall clock, global RNG, environment,
// order-dependent map iteration) must be flagged; order-independent
// map loops, seeded constructors and audited sites must stay clean.
package det

import (
	"fmt"
	"math/rand/v2"
	"os"
	"time"
)

func wallClock() time.Time {
	return time.Now() // want `call to time\.Now: wall-clock read`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `call to time\.Since`
}

func globalRand() int {
	return rand.IntN(10) // want `call to global math/rand/v2\.IntN`
}

func seededConstructor(seed uint64) *rand.Rand {
	// Constructors are exempt here; the seededrng pass vets their seeds.
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b9))
}

func envRead() string {
	return os.Getenv("HOME") // want `call to os\.Getenv: environment read`
}

func orderedAppend(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `appends iteration-dependent values to a slice that outlives the loop`
	}
	return out
}

func orderedFormat(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want `formats iteration-dependent text with fmt\.Printf`
	}
}

func orderedError(m map[string]int) error {
	for k, v := range m {
		if v < 0 {
			return fmt.Errorf("bad key %s", k) // want `formats iteration-dependent text with fmt\.Errorf`
		}
	}
	return nil
}

func orderedReturn(m map[string]int) string {
	for k := range m {
		return k // want `returns a value derived from the iteration variables`
	}
	return ""
}

func orderedConcat(m map[string]int) string {
	out := ""
	for k := range m {
		out += k // want `concatenates iteration-dependent text onto an outer string`
	}
	return out
}

// orderIndependent loops — sums, set building, counting — are clean.
func orderIndependent(m map[string]int) (int, map[string]bool) {
	total := 0
	set := map[string]bool{}
	for k, v := range m {
		total += v
		set[k] = true
	}
	return total, set
}

func auditedOrder(m map[string]int) []string {
	var keys []string
	//apcvet:ordered the caller sorts keys before anything observes them
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
