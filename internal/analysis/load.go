package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// LoadModule loads, parses, and type-checks the module packages
// matching patterns (e.g. "./..."), rooted at dir. Only non-test
// GoFiles are analyzed — the invariants govern shipped simulation
// code; tests are free to use wall clocks and throwaway allocations.
//
// Package loading shells out to `go list -deps -export -json`, which
// resolves the build list and compiles export data into the build
// cache, and type-checks against that export data with the stdlib gc
// importer — the whole pipeline works offline with no dependencies
// beyond the Go toolchain itself.
func LoadModule(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,Module",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	type listPkg struct {
		ImportPath string
		Dir        string
		Export     string
		GoFiles    []string
		Standard   bool
		Module     *struct{ Path string }
	}
	exports := map[string]string{}
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list -json decode: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		// -deps lists the whole build graph; analyze only the module's
		// own packages (dependencies contribute export data only).
		if !p.Standard && p.Module != nil && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	var pkgs []*Package
	for _, t := range targets {
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		pkg, err := CheckPackage(fset, t.ImportPath, files, imp)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", t.ImportPath, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// CheckPackage type-checks parsed files into an analysis-ready
// Package, including its parsed annotations. It is shared by the
// module loader and the analysistest fixture loader.
func CheckPackage(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{
		Path:  path,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
		Ann:   ParseAnnotations(fset, path, files),
	}, nil
}
