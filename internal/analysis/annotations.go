package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The //apcvet: annotation grammar (DESIGN.md §12). Every marker is a
// line comment whose text starts exactly with "apcvet:":
//
//	//apcvet:noalloc
//	    On a function declaration (doc comment or the line directly
//	    above): the function is a steady-state hot path; the noalloc
//	    pass checks its body and every call into it from other
//	    annotated functions.
//
//	//apcvet:pooled
//	    On a type declaration: values of this type are free-listed and
//	    recycled; the poolsafe pass enforces the release discipline on
//	    them.
//
//	//apcvet:poolput
//	    On a function declaration: calling it returns its
//	    pointer-to-pooled parameter(s) to the free list; the argument
//	    must not be touched afterwards in the calling function.
//
//	//apcvet:ordered <justification>
//	    Site suppression for the determinism pass's map-iteration
//	    check: this range is order-independent (or ordering is
//	    restored downstream); say why.
//
//	//apcvet:alloc <justification>
//	    Site suppression for the noalloc pass: an audited allocation
//	    (pool-miss warm-up branch, error path); say why.
//
//	//apcvet:poolok <justification>
//	    Site suppression for the poolsafe pass: an audited
//	    use-after-release report that the free-list contract permits;
//	    say why.
//
// Site suppressions attach to the line they trail, or — when the
// comment stands alone — to the line below. Unknown verbs and missing
// justifications are themselves diagnostics (pass "annotation"), so a
// typo can't silently disable a check.

// Verbs that mark declarations (no justification argument).
const (
	VerbNoAlloc = "noalloc"
	VerbPooled  = "pooled"
	VerbPoolPut = "poolput"
)

// Verbs that suppress one diagnostic site (justification required).
const (
	VerbOrdered = "ordered"
	VerbAllocOK = "alloc"
	VerbPoolOK  = "poolok"
)

// AnnErr is a malformed annotation comment.
type AnnErr struct {
	Pos token.Pos
	Msg string
}

// marker is one parsed //apcvet: comment.
type marker struct {
	verb string
	pos  token.Pos
	line int
}

// Annotations is one package's parsed //apcvet: markers.
type Annotations struct {
	// NoAlloc / PoolPut hold FuncKeys of annotated declarations.
	NoAlloc map[string]bool
	PoolPut map[string]bool
	// Pooled holds "pkgpath.TypeName" for free-listed record types.
	Pooled map[string]bool
	// suppress maps file -> line -> verbs covering that line.
	suppress map[string]map[int]map[string]bool
	// Errs are grammar violations found while parsing.
	Errs []AnnErr
}

// Facts merges every loaded package's annotations so passes can
// resolve cross-package calls against the callee's own markers.
type Facts struct {
	NoAlloc map[string]bool
	PoolPut map[string]bool
	Pooled  map[string]bool
	// noallocPkgs is the set of package paths containing at least one
	// //apcvet:noalloc — the "annotation domain". Calls from a hot
	// path into a domain package must hit an annotated function; calls
	// into packages nobody has audited yet are out of scope (the
	// runtime alloc gate still covers them).
	noallocPkgs map[string]bool
}

// BuildFacts merges package annotation tables.
func BuildFacts(pkgs []*Package) *Facts {
	f := &Facts{
		NoAlloc:     map[string]bool{},
		PoolPut:     map[string]bool{},
		Pooled:      map[string]bool{},
		noallocPkgs: map[string]bool{},
	}
	for _, p := range pkgs {
		for k := range p.Ann.NoAlloc {
			f.NoAlloc[k] = true
			f.noallocPkgs[p.Path] = true
		}
		for k := range p.Ann.PoolPut {
			f.PoolPut[k] = true
		}
		for k := range p.Ann.Pooled {
			f.Pooled[k] = true
		}
	}
	return f
}

// InNoAllocDomain reports whether pkgPath has opted into the noalloc
// call discipline (it declares at least one annotated function).
func (f *Facts) InNoAllocDomain(pkgPath string) bool { return f.noallocPkgs[pkgPath] }

// ParseAnnotations scans a package's files for //apcvet: markers.
func ParseAnnotations(fset *token.FileSet, pkgPath string, files []*ast.File) *Annotations {
	ann := &Annotations{
		NoAlloc:  map[string]bool{},
		PoolPut:  map[string]bool{},
		Pooled:   map[string]bool{},
		suppress: map[string]map[int]map[string]bool{},
	}
	for _, file := range files {
		ann.parseFile(fset, pkgPath, file)
	}
	return ann
}

func (ann *Annotations) parseFile(fset *token.FileSet, pkgPath string, file *ast.File) {
	// First index every marker comment; declaration attachment and
	// site suppression both consume the index.
	var declMarks []marker
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//apcvet:")
			if !ok {
				continue
			}
			verb, why, _ := strings.Cut(text, " ")
			why = strings.TrimSpace(why)
			p := fset.Position(c.Pos())
			switch verb {
			case VerbNoAlloc, VerbPooled, VerbPoolPut:
				if why != "" {
					ann.Errs = append(ann.Errs, AnnErr{c.Pos(),
						"apcvet:" + verb + " takes no argument (suppression verbs take a justification; markers do not)"})
				}
				declMarks = append(declMarks, marker{verb: verb, pos: c.Pos(), line: p.Line})
			case VerbOrdered, VerbAllocOK, VerbPoolOK:
				if why == "" {
					ann.Errs = append(ann.Errs, AnnErr{c.Pos(),
						"apcvet:" + verb + " needs a justification: //apcvet:" + verb + " <why>"})
				}
				ann.suppressLine(p.Filename, p.Line, verb)
				// A standalone marker line also covers the next line.
				ann.suppressLine(p.Filename, p.Line+1, verb)
			default:
				ann.Errs = append(ann.Errs, AnnErr{c.Pos(),
					"unknown apcvet annotation verb " + strings.TrimSpace(verb) + " (known: noalloc, pooled, poolput, ordered, alloc, poolok)"})
			}
		}
	}
	if len(declMarks) == 0 {
		return
	}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			for _, m := range attachedTo(fset, declMarks, d.Doc, d.Pos()) {
				switch m.verb {
				case VerbNoAlloc:
					ann.NoAlloc[declKey(pkgPath, d)] = true
				case VerbPoolPut:
					ann.PoolPut[declKey(pkgPath, d)] = true
				case VerbPooled:
					ann.Errs = append(ann.Errs, AnnErr{m.pos, "apcvet:pooled marks a type, not a function"})
				}
			}
		case *ast.GenDecl:
			if d.Tok != token.TYPE {
				continue
			}
			for _, spec := range d.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil && len(d.Specs) == 1 {
					doc = d.Doc
				}
				for _, m := range attachedTo(fset, declMarks, doc, d.Pos()) {
					switch m.verb {
					case VerbPooled:
						ann.Pooled[pkgPath+"."+ts.Name.Name] = true
					case VerbNoAlloc, VerbPoolPut:
						ann.Errs = append(ann.Errs, AnnErr{m.pos, "apcvet:" + m.verb + " marks a function, not a type"})
					}
				}
			}
		}
	}
}

// attachedTo returns the declaration markers belonging to a decl: any
// marker inside its doc comment group, or on the single line directly
// above the declaration start.
func attachedTo(fset *token.FileSet, marks []marker, doc *ast.CommentGroup, declPos token.Pos) []marker {
	p := fset.Position(declPos)
	var out []marker
	for _, m := range marks {
		inDoc := doc != nil && m.pos >= doc.Pos() && m.pos <= doc.End()
		if inDoc || (fset.Position(m.pos).Filename == p.Filename && m.line == p.Line-1) {
			out = append(out, m)
		}
	}
	return out
}

func (a *Annotations) suppressLine(file string, line int, verb string) {
	byLine := a.suppress[file]
	if byLine == nil {
		byLine = map[int]map[string]bool{}
		a.suppress[file] = byLine
	}
	verbs := byLine[line]
	if verbs == nil {
		verbs = map[string]bool{}
		byLine[line] = verbs
	}
	verbs[verb] = true
}

func (a *Annotations) suppressed(verb string, pos token.Position) bool {
	return a.suppress[pos.Filename][pos.Line][verb]
}
