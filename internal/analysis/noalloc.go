package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoAlloc is the compile-time complement of the runtime alloc gate
// (TestRouteSteadyStateAllocs, scripts/benchgate.sh): functions
// annotated //apcvet:noalloc are steady-state hot paths whose bodies
// must not contain allocating constructs. The pass flags:
//
//   - &T{...}, slice/map/[]T literals, make, new: heap-bound (or
//     escape-prone) construction. Plain value struct literals are
//     allowed — they copy on the stack.
//   - func literals that capture variables: each creation allocates a
//     closure. (Calling an existing func value is free and allowed;
//     the PR 7 pattern — closures created once per pooled record,
//     reused forever — suppresses the creation site with
//     //apcvet:alloc and keeps the per-request path clean.)
//   - append to locally-rooted slices: a fresh backing array per call
//     never amortizes. Appends of the form `x.f = append(x.f, ...)`
//     onto long-lived storage (a field or package variable, e.g. a
//     free list or reused batch buffer) reach steady-state capacity
//     and are allowed — exactly the semantics the runtime gate
//     measures after priming.
//   - conversions that box into an interface (non-pointer-shaped
//     source) and string([]byte/[]rune) conversions.
//   - direct calls to functions that are not themselves annotated
//     //apcvet:noalloc, when the callee's package is in the
//     annotation domain (declares at least one noalloc function).
//     Calls into unaudited packages and dynamic calls (func values,
//     interface methods) are out of scope here — the runtime gate
//     still covers them; the pass enforces what it can prove.
//
// Audited exceptions (pool-miss warm-up branches, error paths)
// suppress with //apcvet:alloc <why>.
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc:  "forbid allocating constructs in //apcvet:noalloc-annotated hot-path functions",
	Run:  runNoAlloc,
}

func runNoAlloc(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if pass.Ann.NoAlloc[declKey(pass.Pkg.Path(), fd)] {
				checkNoAllocBody(pass, fd)
			}
		}
	}
	return nil
}

func checkNoAllocBody(pass *Pass, fd *ast.FuncDecl) {
	na := &noAllocChecker{pass: pass, fd: fd}
	ast.Inspect(fd.Body, na.visit)
}

type noAllocChecker struct {
	pass *Pass
	fd   *ast.FuncDecl
}

func (na *noAllocChecker) visit(n ast.Node) bool {
	pass := na.pass
	switch n := n.(type) {
	case *ast.CompositeLit:
		// Inside a unary & the report lands on the & (handled below);
		// value struct literals are stack copies and fine. Slice, map
		// and array-of-pointer literals allocate backing storage.
		switch t := n.Type.(type) {
		case *ast.ArrayType:
			if t.Len == nil { // []T{...}; [N]T{...} is a stack value
				na.flag(n.Pos(), "slice literal allocates backing storage")
			}
		case *ast.MapType:
			na.flag(n.Pos(), "map literal allocates")
		}
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
				na.flag(n.Pos(), "&composite literal escapes to the heap on the hot path")
			}
		}
	case *ast.FuncLit:
		if caps := captures(pass.Info, n); len(caps) > 0 {
			na.flag(n.Pos(), "func literal captures %s — each creation allocates a closure", caps[0])
		}
		return true // closure bodies run on the hot path too; keep checking inside
	case *ast.CallExpr:
		na.checkCall(n)
	case *ast.AssignStmt:
		for i := range n.Lhs {
			if i < len(n.Rhs) {
				na.checkBox(pass.typeOf(n.Lhs[i]), n.Rhs[i])
			}
		}
	case *ast.ReturnStmt:
		sig := pass.Info.Defs[na.fd.Name].(*types.Func).Signature()
		for i, res := range n.Results {
			if sig.Results() != nil && i < sig.Results().Len() {
				na.checkBox(sig.Results().At(i).Type(), res)
			}
		}
	}
	return true
}

func (na *noAllocChecker) flag(pos token.Pos, format string, args ...any) {
	if na.pass.Suppressed(VerbAllocOK, pos) {
		return
	}
	na.pass.Reportf(pos, format, args...)
}

func (na *noAllocChecker) checkCall(call *ast.CallExpr) {
	pass := na.pass
	if isConversion(pass.Info, call) {
		na.checkConversion(call)
		return
	}
	if b := builtinName(pass.Info, call); b != "" {
		switch b {
		case "append":
			na.checkAppend(call)
		case "make":
			na.flag(call.Pos(), "make allocates on the hot path")
		case "new":
			na.flag(call.Pos(), "new allocates on the hot path")
		}
		// len/cap/copy/delete/min/max/... don't allocate; panic is a
		// failure path.
		return
	}
	fn := calleeFunc(pass.Info, call)
	if fn == nil {
		// Dynamic call: invoking an existing func value or interface
		// method allocates nothing by itself; its body was vetted (or
		// flagged) where the value was created.
		na.checkCallBoxing(call, nil)
		return
	}
	na.checkCallBoxing(call, fn.Signature())
	if fn.Pkg() == nil {
		return // universe-scope (error.Error via embedding, etc.)
	}
	if !pass.Facts.InNoAllocDomain(fn.Pkg().Path()) {
		return // unaudited package: runtime gate territory
	}
	if !pass.Facts.NoAlloc[FuncKey(fn)] {
		na.flag(call.Pos(), "call to %s, which is not annotated //apcvet:noalloc (callee package is in the annotation domain)", FuncKey(fn))
	}
}

// checkAppend allows the amortizing form `long.lived = append(long.lived,
// ...)` and flags everything else.
func (na *noAllocChecker) checkAppend(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	if root := rootIdent(call.Args[0]); root != nil {
		obj := na.pass.Info.Uses[root]
		// A field (selector path, possibly resliced — the compaction
		// idiom `x.live = append(x.live[:i], x.live[i+1:]...)`) or
		// package-level slice is long-lived reusable storage; a plain
		// local append allocates fresh backing every call.
		target := ast.Unparen(call.Args[0])
		if se, ok := target.(*ast.SliceExpr); ok {
			target = ast.Unparen(se.X)
		}
		if _, isSel := target.(*ast.SelectorExpr); isSel {
			return
		}
		if obj != nil && obj.Parent() == na.pass.Pkg.Scope() {
			return
		}
	}
	na.flag(call.Pos(), "append to a non-preallocated (locally-rooted) slice allocates fresh backing storage")
}

// checkConversion flags conversions that must allocate.
func (na *noAllocChecker) checkConversion(call *ast.CallExpr) {
	pass := na.pass
	if len(call.Args) != 1 {
		return
	}
	dst := pass.typeOf(call.Fun)
	src := pass.typeOf(call.Args[0])
	if dst == nil || src == nil {
		return
	}
	if types.IsInterface(dst) {
		na.checkBox(dst, call.Args[0])
		return
	}
	if db, ok := dst.Underlying().(*types.Basic); ok && db.Info()&types.IsString != 0 {
		if _, ok := src.Underlying().(*types.Slice); ok {
			na.flag(call.Pos(), "string conversion from a slice copies and allocates")
		}
	}
}

// checkCallBoxing flags arguments boxed into interface parameters.
func (na *noAllocChecker) checkCallBoxing(call *ast.CallExpr, sig *types.Signature) {
	if sig == nil {
		tv, ok := na.pass.Info.Types[call.Fun]
		if !ok {
			return
		}
		sig, ok = tv.Type.Underlying().(*types.Signature)
		if !ok {
			return
		}
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // passing an existing slice through
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		na.checkBox(pt, arg)
	}
}

// checkBox reports when expr's concrete value is boxed into an
// interface-typed destination (a heap allocation for every
// non-pointer-shaped payload).
func (na *noAllocChecker) checkBox(dst types.Type, expr ast.Expr) {
	if dst == nil || !types.IsInterface(dst) {
		return
	}
	tv, ok := na.pass.Info.Types[expr]
	if !ok || tv.Type == nil {
		return
	}
	src := tv.Type
	if types.IsInterface(src) || pointerShaped(src) {
		return
	}
	if b, ok := src.Underlying().(*types.Basic); ok && (b.Kind() == types.UntypedNil || b.Kind() == types.Invalid) {
		return
	}
	na.flag(expr.Pos(), "%s value boxed into interface %s allocates", src, dst)
}

// captures returns the names of outer variables a func literal closes
// over (excluding package-level objects and its own params/locals).
func captures(info *types.Info, lit *ast.FuncLit) []string {
	var out []string
	seen := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := info.Uses[id].(*types.Var)
		if !ok || seen[obj] || obj.IsField() {
			return true
		}
		if obj.Parent() == nil || obj.Parent().Parent() == types.Universe {
			return true // package-level var
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
			return true // the literal's own param or local
		}
		seen[obj] = true
		out = append(out, obj.Name())
		return true
	})
	return out
}

// typeOf is Info.Types lookup tolerating missing entries.
func (p *Pass) typeOf(e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		if obj := p.Info.Uses[id]; obj != nil {
			return obj.Type()
		}
		if obj := p.Info.Defs[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}
