package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolSafe enforces the free-list lifecycle contract on record types
// annotated //apcvet:pooled (routedReq, logicalReq, attempt, joinReq,
// workload.Request — the PR 7/8/9 pooled hot-path records):
//
//  1. Use-after-release: once a function passes a record to a
//     //apcvet:poolput function (freeLogical, putRouted, Release,
//     ...), no later statement on the same path may read or store the
//     record or its fields — the pool may have already reissued it.
//     The canonical fix is the one the completion paths use: copy the
//     fields you still need into locals *before* the put. Reports are
//     position-based within one function; a report on a genuinely
//     unreachable path suppresses with //apcvet:poolok <why>.
//
//  2. Callback capture discipline: a func literal stored into a field
//     of a pooled record (the reusable completion/transit callbacks)
//     may capture only the record itself, and must resolve everything
//     else — fleet, member, request — through that owner pointer at
//     call time. Capturing any other variable freezes state from the
//     record's *first* lifetime: after Fleet.Reset (or pool reissue)
//     the captured pointer is stale while the record lives on. This
//     is the PR 7 reset contract, now compiler-checked.
var PoolSafe = &Analyzer{
	Name: "poolsafe",
	Doc:  "enforce free-list lifecycle: no use-after-release of //apcvet:pooled records; record callbacks capture only their owner",
	Run:  runPoolSafe,
}

func runPoolSafe(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkUseAfterPut(pass, fd)
		}
		ast.Inspect(file, func(n ast.Node) bool {
			if as, ok := n.(*ast.AssignStmt); ok {
				checkCallbackCaptures(pass, as)
			}
			if cl, ok := n.(*ast.CompositeLit); ok {
				checkLitCallbacks(pass, cl)
			}
			return true
		})
	}
	return nil
}

// pooledElem returns the pooled type's name when t is a pointer to an
// annotated record type (or the record itself), else "".
func pooledElem(facts *Facts, t types.Type) string {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	key := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	if facts.Pooled[key] {
		return named.Obj().Name()
	}
	return ""
}

// putCall describes one release site inside a function body.
type putCall struct {
	call *ast.CallExpr
	obj  types.Object // the released variable
	name string       // pooled type name, for the message
}

// checkUseAfterPut finds poolput calls and flags any later use of the
// released variable in the same function. "Later" is source order,
// refined by reachability: uses outside the put's innermost block are
// only flagged when that block falls through (no terminating
// return/branch/panic between the put and the block's end).
//
// Each func literal body is its own scope: a put inside a callback
// runs when the callback fires, not at the callback's source position,
// so it constrains only the callback's own body — while a callback
// *created* after a put and capturing the released record is flagged
// (it will fire holding a reissued record).
func checkUseAfterPut(pass *Pass, fd *ast.FuncDecl) {
	bodies := []*ast.BlockStmt{fd.Body}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			bodies = append(bodies, lit.Body)
		}
		return true
	})
	for _, b := range bodies {
		checkUseAfterPutIn(pass, b)
	}
}

func checkUseAfterPutIn(pass *Pass, body *ast.BlockStmt) {
	var puts []putCall
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != body {
			return false // nested literal: its puts belong to its own scope
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.Info, call)
		if fn == nil || !pass.Facts.PoolPut[FuncKey(fn)] {
			return true
		}
		sig := fn.Signature()
		for i, arg := range call.Args {
			if i >= sig.Params().Len() && !sig.Variadic() {
				break
			}
			id, ok := ast.Unparen(arg).(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.Info.Uses[id]
			if obj == nil {
				continue
			}
			if name := pooledElem(pass.Facts, obj.Type()); name != "" {
				puts = append(puts, putCall{call: call, obj: obj, name: name})
			}
		}
		return true
	})
	if len(puts) == 0 {
		return
	}
	for _, put := range puts {
		limit := reachLimit(body, put.call)
		// A plain `=` reassignment of the released variable rebinds it to
		// a different record (graph.finish walks the parent chain this
		// way: putJoin(jr); ...; jr = parent). The rebinding ends the
		// constraint: later uses read the new value, and the LHS ident
		// itself is a write, not a read of the stale record.
		rebound := rebindAfter(pass, body, put)
		if rebound < limit {
			limit = rebound
		}
		ast.Inspect(body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if pass.Info.Uses[id] != put.obj || id.Pos() <= put.call.End() || id.End() > limit {
				return true
			}
			if pass.Suppressed(VerbPoolOK, id.Pos()) {
				return true
			}
			pass.Reportf(id.Pos(), "%s used after being released to the pool at %s — copy needed fields into locals before the put (//apcvet:poolok <why> if this path is unreachable)",
				id.Name, pass.Fset.Position(put.call.Pos()))
			return true
		})
	}
}

// rebindAfter returns the position of the first plain `=` assignment
// after the put whose sole effect on the released variable is to
// rebind it (a bare ident on the left-hand side). Uses at or past that
// assignment see the new binding, not the released record.
func rebindAfter(pass *Pass, body *ast.BlockStmt, put putCall) token.Pos {
	rebound := body.End()
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN || as.Pos() <= put.call.End() {
			return true
		}
		for _, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if ok && pass.Info.Uses[id] == put.obj && as.Pos() < rebound {
				rebound = as.Pos()
			}
		}
		return true
	})
	return rebound
}

// reachLimit bounds how far past the put a use is considered
// reachable: to the end of the function normally, but only to the end
// of the put's innermost block when that block cannot fall through
// (its statement list ends, after the put, with a return / branch /
// panic) — the classic `if done { put(r); return }` shape.
func reachLimit(body *ast.BlockStmt, call *ast.CallExpr) token.Pos {
	// Find the chain of blocks enclosing the call.
	var chain []*ast.BlockStmt
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if n.Pos() > call.End() || n.End() < call.Pos() {
			return false
		}
		if b, ok := n.(*ast.BlockStmt); ok {
			chain = append(chain, b)
		}
		return true
	}
	ast.Inspect(body, walk)
	limit := body.End()
	// Innermost block last; if every enclosing block from the
	// innermost up terminates after the put, the limit stays that
	// block's end — otherwise execution can fall through to the rest
	// of the function.
	for i := len(chain) - 1; i > 0; i-- {
		b := chain[i]
		if blockTerminatesAfter(b, call.End()) {
			return b.End()
		}
	}
	return limit
}

// blockTerminatesAfter reports whether the block's statement list,
// restricted to statements at or after pos, ends in a terminating
// statement (return, branch, panic call).
func blockTerminatesAfter(b *ast.BlockStmt, pos token.Pos) bool {
	if len(b.List) == 0 {
		return false
	}
	last := b.List[len(b.List)-1]
	if last.End() < pos {
		return false
	}
	switch s := last.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// checkCallbackCaptures enforces rule 2 on `rec.field = func() {...}`
// assignments.
func checkCallbackCaptures(pass *Pass, as *ast.AssignStmt) {
	for i, rhs := range as.Rhs {
		lit, ok := rhs.(*ast.FuncLit)
		if !ok || i >= len(as.Lhs) {
			continue
		}
		sel, ok := ast.Unparen(as.Lhs[i]).(*ast.SelectorExpr)
		if !ok {
			continue
		}
		ownerID, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok {
			continue
		}
		owner := pass.Info.Uses[ownerID]
		if owner == nil {
			continue
		}
		name := pooledElem(pass.Facts, owner.Type())
		if name == "" {
			continue
		}
		for _, capObj := range captureObjs(pass.Info, lit) {
			if capObj == owner {
				continue
			}
			if pass.Suppressed(VerbPoolOK, lit.Pos()) {
				continue
			}
			pass.Reportf(lit.Pos(), "callback stored in pooled %s.%s captures %q — capture only the record and resolve state through it at call time (the record outlives this %s via the free list)",
				name, sel.Sel.Name, capObj.Name(), capObj.Name())
		}
	}
}

// checkLitCallbacks enforces rule 2 on composite-literal construction
// of pooled records: a callback field initialized in the literal has
// no owner variable yet, so it must capture nothing at all.
func checkLitCallbacks(pass *Pass, cl *ast.CompositeLit) {
	tv, ok := pass.Info.Types[cl]
	if !ok || pooledElem(pass.Facts, tv.Type) == "" {
		return
	}
	for _, el := range cl.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		lit, ok := kv.Value.(*ast.FuncLit)
		if !ok {
			continue
		}
		for _, capObj := range captureObjs(pass.Info, lit) {
			if pass.Suppressed(VerbPoolOK, lit.Pos()) {
				continue
			}
			pass.Reportf(lit.Pos(), "callback initialized in a pooled %s literal captures %q — bind callbacks after construction, capturing only the record",
				pooledElem(pass.Facts, tv.Type), capObj.Name())
		}
	}
}

// captureObjs returns the outer *types.Var objects a func literal
// closes over.
func captureObjs(info *types.Info, lit *ast.FuncLit) []types.Object {
	var out []types.Object
	seen := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := info.Uses[id].(*types.Var)
		if !ok || seen[obj] || obj.IsField() {
			return true
		}
		if obj.Parent() == nil || obj.Parent().Parent() == types.Universe {
			return true
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
			return true
		}
		seen[obj] = true
		out = append(out, obj)
		return true
	})
	return out
}
