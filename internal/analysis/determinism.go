package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Determinism rejects the ambient-nondeterminism entry points in
// non-test files of internal packages — the simulation layers whose
// whole contract is "bit-identical output for identical inputs,
// serial or parallel":
//
//   - time.Now / time.Since / time.Until: wall-clock reads. Simulation
//     time is sim.Time; wall time differs per run and per host.
//   - the global math/rand and math/rand/v2 functions (rand.IntN,
//     rand.Float64, rand.Shuffle, ...): they draw from the
//     process-global, randomly-seeded source. Constructors (rand.New,
//     NewPCG, NewSource, ...) are allowed — the seededrng pass vets
//     their seeds.
//   - os.Getenv / os.LookupEnv / os.Environ: environment reads feeding
//     sim state make results depend on the shell that launched the
//     run. Configuration enters through Options and scenario files.
//   - `for range` over a map whose body observably depends on
//     iteration order: appends to a slice that outlives the loop,
//     formats or writes text, or returns a value derived from the
//     iteration variables (the "first offending key wins" error
//     pattern). Order-independent map loops (sums, set building,
//     deletes) are fine. Audited sites suppress with
//     //apcvet:ordered <why>.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock, global-RNG, env reads, and order-dependent map iteration in internal packages",
	Run:  runDeterminism,
}

// forbiddenCalls maps package path -> function name -> the reason the
// call is nondeterministic.
var forbiddenCalls = map[string]map[string]string{
	"time": {
		"Now":   "wall-clock read; simulation time is engine time",
		"Since": "wall-clock read; simulation time is engine time",
		"Until": "wall-clock read; simulation time is engine time",
	},
	"os": {
		"Getenv":    "environment read feeding sim state; configuration enters through Options/scenario files",
		"LookupEnv": "environment read feeding sim state; configuration enters through Options/scenario files",
		"Environ":   "environment read feeding sim state; configuration enters through Options/scenario files",
	},
}

// randConstructors are the math/rand(/v2) package-level functions that
// do NOT draw from the global source; everything else there does.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true, "NewZipf": true,
}

func runDeterminism(pass *Pass) error {
	if !isInternalPath(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkForbiddenCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkForbiddenCall(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	path, name := fn.Pkg().Path(), fn.Name()
	if why, ok := forbiddenCalls[path][name]; ok {
		pass.Reportf(call.Pos(), "call to %s.%s: %s", path, name, why)
		return
	}
	if (path == "math/rand" || path == "math/rand/v2") && fn.Signature().Recv() == nil && !randConstructors[name] {
		pass.Reportf(call.Pos(), "call to global %s.%s: draws from the process-global source; use a seeded *rand.Rand (stats.NewRNG)", path, name)
	}
}

// checkMapRange flags order-dependent map iteration.
func checkMapRange(pass *Pass, rng *ast.RangeStmt) {
	tv, ok := pass.Info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if pass.Suppressed(VerbOrdered, rng.Pos()) {
		return
	}
	// The range variables: a body effect is order-dependent only when
	// it can distinguish iterations, which in practice means it
	// mentions the key/value vars (directly or through values computed
	// from them — we approximate with direct mention, which covers the
	// real sites and keeps pure "count the entries" loops clean).
	iterVars := map[types.Object]bool{}
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.Info.Defs[id]; obj != nil {
				iterVars[obj] = true
			} else if obj := pass.Info.Uses[id]; obj != nil {
				iterVars[obj] = true
			}
		}
	}
	mentionsIter := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && iterVars[pass.Info.Uses[id]] {
				found = true
			}
			return !found
		})
		return found
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // its body runs later, under its own rules
		case *ast.AssignStmt:
			if reason := orderedAssign(pass, rng, n, mentionsIter); reason != "" {
				reportOrdered(pass, n.Pos(), reason)
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if call, ok := ast.Unparen(res).(*ast.CallExpr); ok && orderedCall(pass, call, mentionsIter) != "" {
					continue // the call inspection reports this one
				}
				if mentionsIter(res) {
					reportOrdered(pass, n.Pos(), "returns a value derived from the iteration variables — which key wins depends on map order")
					break
				}
			}
		case *ast.CallExpr:
			if reason := orderedCall(pass, n, mentionsIter); reason != "" {
				reportOrdered(pass, n.Pos(), reason)
			}
		}
		return true
	})
}

func reportOrdered(pass *Pass, pos token.Pos, reason string) {
	if pass.Suppressed(VerbOrdered, pos) {
		return
	}
	pass.Reportf(pos, "map iteration order leaks into output: %s (sort the keys, or audit and annotate //apcvet:ordered <why>)", reason)
}

// orderedAssign flags `s = append(s, ...iter...)` when s outlives the
// loop, and string concatenation `out += f(iter)` on an outer var.
func orderedAssign(pass *Pass, rng *ast.RangeStmt, as *ast.AssignStmt, mentionsIter func(ast.Expr) bool) string {
	for i, rhs := range as.Rhs {
		if call, ok := rhs.(*ast.CallExpr); ok && builtinName(pass.Info, call) == "append" {
			if appendTargetOutlives(pass, rng, call) && anyMentions(call.Args[1:], mentionsIter) {
				return "appends iteration-dependent values to a slice that outlives the loop"
			}
		}
		if as.Tok == token.ADD_ASSIGN && i < len(as.Lhs) {
			if outerVar(pass, rng, as.Lhs[i]) && mentionsIter(rhs) && isStringType(pass, as.Lhs[i]) {
				return "concatenates iteration-dependent text onto an outer string"
			}
		}
	}
	return ""
}

func anyMentions(exprs []ast.Expr, mentionsIter func(ast.Expr) bool) bool {
	for _, e := range exprs {
		if mentionsIter(e) {
			return true
		}
	}
	return false
}

func isStringType(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// appendTargetOutlives reports whether append's first argument refers
// to storage declared outside the range statement (so the appended
// order survives the loop).
func appendTargetOutlives(pass *Pass, rng *ast.RangeStmt, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	return outerVar(pass, rng, call.Args[0])
}

// outerVar reports whether e is rooted at a variable declared outside
// the range statement (including fields reached through one).
func outerVar(pass *Pass, rng *ast.RangeStmt, e ast.Expr) bool {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = v.X
			continue
		case *ast.IndexExpr:
			e = v.X
			continue
		case *ast.Ident:
			obj := pass.Info.Uses[v]
			if obj == nil {
				obj = pass.Info.Defs[v]
			}
			if obj == nil {
				return false
			}
			return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
		default:
			return false
		}
	}
}

// orderedCall flags text-building and text-writing calls: the fmt
// formatting family, errors.New, and Write* methods on
// strings.Builder / bytes.Buffer — each renders the current iteration
// into an order-sensitive stream.
func orderedCall(pass *Pass, call *ast.CallExpr, mentionsIter func(ast.Expr) bool) string {
	if !anyMentions(call.Args, mentionsIter) {
		return ""
	}
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	switch fn.Pkg().Path() {
	case "fmt":
		if strings.HasPrefix(fn.Name(), "Sprint") || strings.HasPrefix(fn.Name(), "Fprint") ||
			strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Append") || fn.Name() == "Errorf" {
			return "formats iteration-dependent text with fmt." + fn.Name()
		}
	case "errors":
		if fn.Name() == "New" {
			return "builds error text from the iteration variables"
		}
	case "strings", "bytes":
		if recv := fn.Signature().Recv(); recv != nil && strings.HasPrefix(fn.Name(), "Write") {
			t := recv.Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok && (named.Obj().Name() == "Builder" || named.Obj().Name() == "Buffer") {
				return "writes iteration-dependent text into a " + named.Obj().Name()
			}
		}
	}
	return ""
}
