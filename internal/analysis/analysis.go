// Package analysis is the repo's static-invariant suite: four
// project-specific vet-style passes (determinism, noalloc, poolsafe,
// seededrng) over a minimal, dependency-free driver framework built on
// go/ast and go/types. The framework deliberately mirrors the shape of
// golang.org/x/tools/go/analysis — Analyzer, Pass, Diagnostic — but is
// self-contained: the container this repo grows in has no module
// cache, so the suite depends on nothing outside the standard library.
//
// The passes turn the invariants the test suite enforces at runtime
// (bit-identical serial≡parallel sweeps, 0 allocs/op hot paths, pooled
// records that survive Fleet.Reset, Options.Seed-rooted RNG streams)
// into compile-step rejections over the whole module, not just the
// code paths the tests happen to exercise. See DESIGN.md §12 for the
// pass-by-pass contract and the //apcvet: annotation grammar.
//
// cmd/apcvet is the multichecker binary; `make lint` runs it over ./...
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant pass.
type Analyzer struct {
	// Name identifies the pass in diagnostics (e.g. "determinism").
	Name string
	// Doc is the one-paragraph contract shown by `apcvet -help`.
	Doc string
	// Run inspects one package and reports violations via pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Ann holds this package's parsed //apcvet: annotations.
	Ann *Annotations
	// Facts is the module-wide annotation table (every loaded
	// package's annotations merged), so cross-package calls resolve
	// against the callee's own annotations.
	Facts *Facts

	report func(Diagnostic)
}

// Reportf records one diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Pass: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Suppressed reports whether a //apcvet:<verb> suppression comment
// covers pos (trailing on the same line, or alone on the line above).
func (p *Pass) Suppressed(verb string, pos token.Pos) bool {
	return p.Ann.suppressed(verb, p.Fset.Position(pos))
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos     token.Pos
	Pass    string
	Message string
}

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	Ann   *Annotations
}

// Run applies each analyzer to each package and returns every
// diagnostic, sorted by file position. Annotation-grammar errors
// (unknown verbs, missing justifications) collected at load time are
// included under the pseudo-pass "annotation".
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	facts := BuildFacts(pkgs)
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, bad := range pkg.Ann.Errs {
			diags = append(diags, Diagnostic{Pos: bad.Pos, Pass: "annotation", Message: bad.Msg})
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Ann:      pkg.Ann,
				Facts:    facts,
				report:   func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sortDiagnostics(pkgs, diags)
	return diags, nil
}

// sortDiagnostics orders by filename, then offset, then pass name so
// output is deterministic regardless of package walk order. All
// loaders share one token.FileSet, so positions compare globally.
func sortDiagnostics(pkgs []*Package, diags []Diagnostic) {
	if len(pkgs) == 0 {
		return
	}
	fset := pkgs[0].Fset
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Offset != pj.Offset {
			return pi.Offset < pj.Offset
		}
		return diags[i].Pass < diags[j].Pass
	})
}

// All is the full pass suite in canonical order.
func All() []*Analyzer {
	return []*Analyzer{Determinism, NoAlloc, PoolSafe, SeededRNG}
}

// ---- shared helpers used by several passes ----

// calleeFunc resolves a call expression to its static callee, or nil
// when the call is dynamic (func value, interface method) or a type
// conversion / builtin.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			// A method call: dynamic when the method set comes from an
			// interface (the concrete callee is unknowable here).
			if types.IsInterface(sel.Recv()) {
				return nil
			}
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Package-qualified call (pkg.F).
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isConversion reports whether the call expression is a type
// conversion rather than a function call.
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[ast.Unparen(call.Fun)]
	return ok && tv.IsType()
}

// builtinName returns the builtin's name when the call targets a
// language builtin (len, cap, append, ...), else "".
func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// FuncKey names a function for the cross-package annotation table:
// "path.Name" for top-level functions, "path.(Recv).Name" for methods
// (pointer receivers stripped).
func FuncKey(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	if recv := fn.Signature().Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return fmt.Sprintf("%s.(%s).%s", fn.Pkg().Path(), named.Obj().Name(), fn.Name())
		}
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// declKey is FuncKey computed from syntax, for annotation collection.
func declKey(pkgPath string, decl *ast.FuncDecl) string {
	if decl.Recv != nil && len(decl.Recv.List) == 1 {
		t := decl.Recv.List[0].Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		// Generic receivers (T[P]) don't occur in this module; plain
		// idents cover every declared method.
		if id, ok := t.(*ast.Ident); ok {
			return fmt.Sprintf("%s.(%s).%s", pkgPath, id.Name, decl.Name.Name)
		}
	}
	return pkgPath + "." + decl.Name.Name
}

// isInternalPath reports whether the import path has an "internal"
// element — the determinism pass's scope (simulation code; cmd/ and
// examples/ may read the environment or wall clock for CLI purposes).
func isInternalPath(path string) bool {
	for _, seg := range strings.Split(path, "/") {
		if seg == "internal" {
			return true
		}
	}
	return false
}

// rootIdent unwraps selectors, indexes, and parens down to the
// leftmost identifier (nil when the expression is rooted elsewhere,
// e.g. a call result).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.SliceExpr:
			e = v.X
		case *ast.Ident:
			return v
		default:
			return nil
		}
	}
}

// pointerShaped reports whether values of t convert to an interface
// without allocating (the payload already fits the interface word).
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	}
	return false
}
