package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// SeededRNG vets every RNG-stream creation outside _test.go files:
// the math/rand and math/rand/v2 constructors (rand.New, NewPCG,
// NewSource, NewChaCha8) and the module's own seed wrappers —
// functions like stats.NewRNG whose body calls one of those
// constructors directly (discovered from syntax, so a new wrapper is
// vetted automatically).
//
// At each creation site, every integer seed argument must be rooted
// in the run's seed plumbing, never invented at the site:
//
//   - a constant argument ("rand.NewPCG(42, 99)") is a bare literal —
//     the stream is the same for every run regardless of
//     Options.Seed, which silently decouples that subsystem from the
//     seed sweep;
//   - a non-constant argument must mention a seed-named identifier or
//     field (seed, Seed, ...) or be drawn from an existing stream
//     (r.Uint64() — the Fork pattern), so the chain back to
//     Options.Seed is visible at the site;
//   - two sites in the same function must not derive identical
//     streams: the salt (the constant in `seed ^ salt`, or 0 when the
//     seed is passed bare) must be distinct per site, the way
//     faults.go gives its crash / brownout / partition processes
//     three salted streams off one fleet seed.
var SeededRNG = &Analyzer{
	Name: "seededrng",
	Doc:  "RNG streams must derive from Options.Seed-rooted expressions with distinct salts, never bare literals",
	Run:  runSeededRNG,
}

func runSeededRNG(pass *Pass) error {
	wrappers := seedWrappers(pass)
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkSeedSites(pass, wrappers, fd)
		}
	}
	return nil
}

// randConstructor reports whether fn is a math/rand(/v2) stream
// constructor.
func randConstructor(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	if path != "math/rand" && path != "math/rand/v2" {
		return false
	}
	switch fn.Name() {
	case "New", "NewSource", "NewPCG", "NewChaCha8":
		return true
	}
	return false
}

// seedWrappers collects module functions whose bodies call a rand
// constructor directly — call sites of these are seed sites too. The
// scan is cross-package: every loaded package's syntax contributes,
// keyed by FuncKey. For the packages at hand that finds stats.NewRNG;
// a future wrapper enrolls itself by construction.
func seedWrappers(pass *Pass) map[string]bool {
	// Only this package's Info can resolve its own calls, so the body
	// scan covers local wrappers; cross-package wrapper calls are
	// matched by shape instead (isSeedWrapper), keeping the pass
	// independent of package analysis order.
	w := map[string]bool{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			found := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok && randConstructor(calleeFunc(pass.Info, call)) {
					found = true
				}
				return !found
			})
			if found {
				w[declKey(pass.Pkg.Path(), fd)] = true
			}
		}
	}
	return w
}

// isSeedWrapper reports whether the callee forwards a seed into a new
// stream: found in this package's wrapper scan, or — for
// cross-package calls, where the body is out of reach — a top-level
// function that takes an integer and returns a stream type
// (stats.NewRNG's shape), judged from exported type information.
// Functions that merely *plumb* a seed deeper (cluster.New,
// scenario.Run) are not creation sites; their own bodies are vetted
// where they live.
func isSeedWrapper(pass *Pass, wrappers map[string]bool, fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if wrappers[FuncKey(fn)] {
		return true
	}
	if fn.Pkg() == pass.Pkg || fn.Signature().Recv() != nil {
		return false // local functions were scanned directly; methods derive from their stream
	}
	sig := fn.Signature()
	returnsStream := false
	for i := 0; i < sig.Results().Len(); i++ {
		if isRNGType(sig.Results().At(i).Type()) {
			returnsStream = true
		}
	}
	if !returnsStream {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isIntegerType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

func isIntegerType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// seedSite is one integer seed argument at one creation call.
type seedSite struct {
	arg  ast.Expr
	call *ast.CallExpr
}

func checkSeedSites(pass *Pass, wrappers map[string]bool, fd *ast.FuncDecl) {
	var sites []seedSite
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.Info, call)
		if fn == nil {
			return true
		}
		if !randConstructor(fn) && !isSeedWrapper(pass, wrappers, fn) {
			return true
		}
		for _, arg := range call.Args {
			tv, ok := pass.Info.Types[arg]
			if !ok || !isIntegerType(tv.Type) {
				continue // rand.New(rand.NewPCG(...)) — the inner call is its own site
			}
			sites = append(sites, seedSite{arg: arg, call: call})
		}
		return true
	})
	if len(sites) == 0 {
		return
	}
	// Rule 1+2 per site.
	for _, s := range sites {
		tv := pass.Info.Types[s.arg]
		if tv.Value != nil {
			pass.Reportf(s.arg.Pos(), "RNG seeded with the bare constant %s — derive it from the run's Options.Seed (e.g. seed^salt) so the stream follows the seed sweep", tv.Value)
			continue
		}
		if !seedRooted(pass, s.arg) {
			pass.Reportf(s.arg.Pos(), "RNG seed %s has no visible root in the run's seed plumbing — derive it from a seed-named value or an existing stream (Fork)", render(pass.Fset, s.arg))
		}
	}
	// Rule 3: distinct salts per enclosing function.
	salts := map[string][]seedSite{}
	for _, s := range sites {
		if pass.Info.Types[s.arg].Value != nil {
			continue // already reported as a bare constant
		}
		base, salt, ok := splitSalt(pass, s.arg)
		if !ok {
			continue // non-constant salt (per-index derivation etc.) — trusted
		}
		key := base + "^" + salt
		salts[key] = append(salts[key], s)
	}
	for key, group := range salts {
		if len(group) < 2 {
			continue
		}
		base, _, _ := strings.Cut(key, "^")
		for _, s := range group[1:] {
			pass.Reportf(s.arg.Pos(), "RNG stream derived from %s with the same salt as the site at %s — sibling streams in one function need distinct salts or they are identical",
				base, pass.Fset.Position(group[0].arg.Pos()))
		}
	}
}

// seedRooted reports whether the expression visibly chains back to
// seed plumbing: it mentions an identifier or selector whose name
// contains "seed" (case-insensitive), or calls a method on an
// existing RNG stream (*stats.RNG, *rand.Rand, rand.Source).
func seedRooted(pass *Pass, e ast.Expr) bool {
	rooted := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if strings.Contains(strings.ToLower(n.Name), "seed") {
				rooted = true
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if t := pass.typeOf(sel.X); t != nil && isRNGType(t) {
					rooted = true
				}
			}
		}
		return !rooted
	})
	return rooted
}

// isRNGType recognizes existing stream types (deriving a child seed
// from a parent stream keeps the chain to Options.Seed intact).
func isRNGType(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	name := named.Obj().Name()
	if named.Obj().Pkg() == nil {
		return false
	}
	path := named.Obj().Pkg().Path()
	switch {
	case name == "RNG": // the module's stats.RNG wrapper
		return true
	case (path == "math/rand" || path == "math/rand/v2") && (name == "Rand" || name == "PCG" || name == "ChaCha8" || name == "Source"):
		return true
	}
	return false
}

// splitSalt decomposes `base ^ constSalt` (or a bare expression =
// salt 0). It reports ok=false when the salt is not constant.
func splitSalt(pass *Pass, e ast.Expr) (base, salt string, ok bool) {
	if bin, isBin := ast.Unparen(e).(*ast.BinaryExpr); isBin && (bin.Op == token.XOR || bin.Op == token.ADD) {
		if v := pass.Info.Types[bin.Y].Value; v != nil && v.Kind() == constant.Int {
			return render(pass.Fset, bin.X), v.ExactString(), true
		}
		if v := pass.Info.Types[bin.X].Value; v != nil && v.Kind() == constant.Int {
			return render(pass.Fset, bin.Y), v.ExactString(), true
		}
		return "", "", false
	}
	return render(pass.Fset, e), "0", true
}

// render prints an expression compactly for diagnostics and salt-base
// comparison.
func render(fset *token.FileSet, e ast.Expr) string {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		return v.Name
	case *ast.BasicLit:
		return v.Value
	case *ast.SelectorExpr:
		return render(fset, v.X) + "." + v.Sel.Name
	case *ast.BinaryExpr:
		return render(fset, v.X) + v.Op.String() + render(fset, v.Y)
	case *ast.CallExpr:
		return render(fset, v.Fun) + "(...)"
	default:
		return fmt.Sprintf("<expr@%v>", fset.Position(e.Pos()).Line)
	}
}
