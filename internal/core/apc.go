// Package core implements AgilePkgC (APC) — the paper's contribution: a
// hardware agile power management unit (APMU) realizing PC1A, a deep
// package C-state with nanosecond-scale transition latency that the
// system enters as soon as every core is merely in the *shallow* CC1
// idle state.
//
// The APMU is a fast finite-state machine clocked at 500 MHz that
// orchestrates the Fig. 4 flow over the Fig. 3 signal fabric:
//
//	status:  InCC1 (AND over cores), InL0s (AND over IO links),
//	         PwrOk (CLM FIVRs), WakeUp (from the GPMU)
//	control: AllowL0s (to each IO controller), Allow_CKE_OFF (to each
//	         memory controller), Ret (to the CLM FIVRs), ClkGate (to the
//	         CLM clock tree), InPC1A (to the GPMU)
//
// Its three techniques map onto the packages this one composes:
//
//	IOSM — IO standby mode: links to L0s/L0p, DRAM to CKE-off
//	       (internal/ios, internal/dram)
//	CLMR — CHA/LLC/mesh retention with the PLL kept locked
//	       (internal/uncore, internal/pdn, internal/clock)
//	APMU — this package's FSM
package core

import (
	"fmt"

	"agilepkgc/internal/cpu"
	"agilepkgc/internal/dram"
	"agilepkgc/internal/ios"
	"agilepkgc/internal/pmu"
	"agilepkgc/internal/signal"
	"agilepkgc/internal/sim"
	"agilepkgc/internal/uncore"
)

// Config parameterizes the APMU hardware.
type Config struct {
	// ClockHz is the APMU FSM clock (paper: 500 MHz, 2 ns/cycle).
	ClockHz float64
	// ActionCycles is the FSM cost charged per signal-driving step
	// (paper: "1–2 cycles"; we charge the conservative 2).
	ActionCycles int
}

// DefaultConfig returns the paper's APMU parameters.
func DefaultConfig() Config {
	return Config{ClockHz: 500e6, ActionCycles: 2}
}

// cycle returns the duration of ActionCycles FSM cycles.
func (c Config) cycle() sim.Duration {
	perCycle := 1e9 / c.ClockHz // ns
	return sim.Duration(float64(c.ActionCycles) * perCycle)
}

// APMU is the agile power management unit.
type APMU struct {
	eng *sim.Engine
	cfg Config

	links []*ios.Link
	mcs   []*dram.MC
	clm   *uncore.CLM
	gpmu  *pmu.GPMU

	inCC1 *signal.Signal // AND over all cores' InCC1 wires
	inL0s *signal.Signal // AND over all links' InL0s wires

	// inPC1A is the status wire to the GPMU.
	inPC1A *signal.Signal

	state   pmu.PkgState // PC0, ACC1 or PC1A
	exiting bool         // PC1A exit flow in flight

	entryEv sim.Event

	// Preallocated FSM action callbacks (entry, exit, PwrOk continuation)
	// so steady-state PC1A cycling schedules without allocating.
	entryFn      func()
	wakeFn       func()
	pwrokFn      func()
	entryArmedAt sim.Time

	onTransition []func(old, new pmu.PkgState)

	// Bookkeeping.
	lastChange   sim.Time
	residency    map[pmu.PkgState]sim.Duration
	entries      map[pmu.PkgState]uint64
	lastEntryLat sim.Duration // ACC1(IOs idle) → PC1A
	lastExitLat  sim.Duration // wake → ACC1 restored
	exitStart    sim.Time
	pc1aStart    sim.Time
}

// New wires an APMU into the system: it builds the InCC1 and InL0s AND
// trees over the given cores and links, and hooks every wake source.
func New(eng *sim.Engine, cfg Config, cores []*cpu.Core, links []*ios.Link, mcs []*dram.MC, clm *uncore.CLM, gpmu *pmu.GPMU) *APMU {
	a := &APMU{
		eng:       eng,
		cfg:       cfg,
		links:     links,
		mcs:       mcs,
		clm:       clm,
		gpmu:      gpmu,
		inPC1A:    signal.New("APMU.InPC1A", false),
		state:     pmu.PC0,
		residency: make(map[pmu.PkgState]sim.Duration),
		entries:   make(map[pmu.PkgState]uint64),
	}

	coreWires := make([]*signal.Signal, len(cores))
	for i, c := range cores {
		coreWires[i] = c.InCC1()
	}
	a.inCC1 = signal.NewAndTree("InCC1", coreWires...).Output()

	linkWires := make([]*signal.Signal, len(links))
	for i, l := range links {
		linkWires[i] = l.InL0s()
	}
	a.inL0s = signal.NewAndTree("InL0s", linkWires...).Output()

	a.entryFn = func() {
		a.entryEv = sim.Event{}
		// Conditions may have decayed during the FSM cycle.
		if a.state != pmu.ACC1 || !a.inCC1.Level() || !a.inL0s.Level() {
			return
		}
		// Branch (i): ① clock-gate the CLM, ② begin the non-blocking
		// voltage ramp to retention.
		a.clm.ClockGate()
		a.clm.SetRet()
		// Branch (ii): ③ allow the MCs to enter CKE-off.
		for _, mc := range a.mcs {
			mc.AllowCKEOff().Set()
		}
		// Set InPC1A: the system is now in PC1A (the voltage ramp
		// completes in the background).
		a.inPC1A.Set()
		a.lastEntryLat = a.eng.Now() - a.entryArmedAt
		a.pc1aStart = a.eng.Now()
		a.setState(pmu.PC1A)
	}
	a.wakeFn = func() {
		// Branch (i): ④ unset Ret — CLM FIVRs ramp up; PwrOk continues
		// the flow.
		a.clm.UnsetRet()
		// Branch (ii): ⑥ unset Allow_CKE_OFF — MCs reactivate.
		for _, mc := range a.mcs {
			mc.AllowCKEOff().Unset()
		}
		a.inPC1A.Unset()
	}
	a.pwrokFn = func() {
		a.clm.ClockUngate()
		a.exiting = false
		a.lastExitLat = a.eng.Now() - a.exitStart
		a.setState(pmu.ACC1)
		if !a.inCC1.Level() {
			// Core interrupt: ACC1 → PC0, unset AllowL0s.
			a.leaveACC1()
			return
		}
		// IO-only or timer wake: cores are still idle. Remain in ACC1;
		// when the IOs drain back into L0s the AND tree rises and entry
		// re-arms. If they are somehow already idle and in standby, the
		// level check below re-arms immediately.
		if a.inL0s.Level() {
			a.armEntry()
		}
	}

	a.inCC1.Subscribe(a.onInCC1)
	a.inL0s.Subscribe(a.onInL0s)
	if gpmu != nil {
		gpmu.WakeUp().Subscribe(func(level bool) {
			if level {
				a.wake("gpmu-wakeup")
			}
		})
	}
	clm.OnPwrOk(a.onPwrOk)

	// A freshly built system may already be fully idle.
	if a.inCC1.Level() {
		a.enterACC1()
	}
	return a
}

// State returns the APMU's package state (PC0, ACC1 or PC1A).
func (a *APMU) State() pmu.PkgState { return a.state }

// Exiting reports whether the PC1A exit flow is in flight: the state is
// still PC1A (the CLM is ramping back up) but the InPC1A wire has
// already been dropped so downstream agents can wake concurrently.
func (a *APMU) Exiting() bool { return a.exiting }

// InPC1A returns the status wire to the GPMU.
func (a *APMU) InPC1A() *signal.Signal { return a.inPC1A }

// Residency returns accumulated time in the given state.
func (a *APMU) Residency(s pmu.PkgState) sim.Duration {
	r := a.residency[s]
	if s == a.state {
		r += a.eng.Now() - a.lastChange
	}
	return r
}

// Entries returns how many times the given state was entered.
func (a *APMU) Entries(s pmu.PkgState) uint64 { return a.entries[s] }

// LastEntryLatency returns the most recent measured blocking entry
// latency (all-IOs-idle to PC1A), paper Sec. 5.5.1.
func (a *APMU) LastEntryLatency() sim.Duration { return a.lastEntryLat }

// LastExitLatency returns the most recent measured exit latency (wake
// event to uncore restored), paper Sec. 5.5.2.
func (a *APMU) LastExitLatency() sim.Duration { return a.lastExitLat }

// OnTransition registers a package-state-change callback.
func (a *APMU) OnTransition(fn func(old, new pmu.PkgState)) {
	a.onTransition = append(a.onTransition, fn)
}

func (a *APMU) setState(s pmu.PkgState) {
	if s == a.state {
		return
	}
	old := a.state
	now := a.eng.Now()
	a.residency[old] += now - a.lastChange
	a.lastChange = now
	a.state = s
	a.entries[s]++
	for _, fn := range a.onTransition {
		fn(old, s)
	}
}

// onInCC1 reacts to the all-cores-idle AND tree.
func (a *APMU) onInCC1(level bool) {
	if level {
		// "All Cores in CC1 / Set AllowL0s" — PC0 → ACC1 edge.
		if a.state == pmu.PC0 {
			a.enterACC1()
		}
		return
	}
	// A core is waking: a core interrupt.
	switch a.state {
	case pmu.PC1A:
		a.wake("core-interrupt")
	case pmu.ACC1:
		if !a.exiting {
			a.leaveACC1()
		}
		// If exiting, the exit completion handler will observe the low
		// InCC1 and fall through to PC0.
	}
}

// onInL0s reacts to the all-IOs-in-standby AND tree.
func (a *APMU) onInL0s(level bool) {
	if level {
		// "&InL0s" condition of Fig. 4: arm PC1A entry.
		a.armEntry()
		return
	}
	// An IO link detected traffic and began exiting L0s.
	if a.state == pmu.PC1A {
		a.wake("io-traffic")
	} else if a.entryEv.Pending() {
		a.entryEv.Cancel()
		a.entryEv = sim.Event{}
	}
}

// enterACC1: the system has left PC0 because every core reached CC1.
// The APMU sets AllowL0s; each IO controller then autonomously enters
// L0s once its link is idle.
func (a *APMU) enterACC1() {
	a.setState(pmu.ACC1)
	for _, l := range a.links {
		l.AllowL0s().Set()
	}
	// The links may already be in standby from a previous episode (IO
	// wake that never reached the cores), in which case the AND tree is
	// already high and no edge will fire.
	if a.inL0s.Level() {
		a.armEntry()
	}
}

// leaveACC1: a core interrupt arrived before PC1A was entered. Unset
// AllowL0s: links return to L0.
func (a *APMU) leaveACC1() {
	a.entryEv.Cancel()
	a.entryEv = sim.Event{}
	for _, l := range a.links {
		l.AllowL0s().Unset()
	}
	a.setState(pmu.PC0)
}

// armEntry schedules the Fig. 4 entry actions after one FSM action slot.
func (a *APMU) armEntry() {
	if a.state != pmu.ACC1 || a.exiting || a.entryEv.Pending() {
		return
	}
	a.entryArmedAt = a.eng.Now()
	a.entryEv = a.eng.Schedule(a.cfg.cycle(), a.entryFn)
}

// wake begins the Fig. 4 exit flow. reason is for tracing only.
func (a *APMU) wake(reason string) {
	if a.state != pmu.PC1A || a.exiting {
		return
	}
	_ = reason
	a.exiting = true
	a.exitStart = a.eng.Now()
	// One FSM action slot to drive the exit signals.
	a.eng.Schedule(a.cfg.cycle(), a.wakeFn)
}

// onPwrOk: ⑤ the CLM rails are back at operational voltage; clock-ungate
// and settle in ACC1 (or fall through to PC0 if a core interrupt caused
// the wake).
func (a *APMU) onPwrOk() {
	if !a.exiting {
		return
	}
	a.eng.Schedule(a.cfg.cycle(), a.pwrokFn)
}

// Describe returns a one-line summary for experiment logs.
func (a *APMU) Describe() string {
	return fmt.Sprintf("APMU state=%s entries(PC1A)=%d residency(PC1A)=%v",
		a.state, a.Entries(pmu.PC1A), a.Residency(pmu.PC1A))
}
