package core

import (
	"testing"

	"agilepkgc/internal/cpu"
	"agilepkgc/internal/dram"
	"agilepkgc/internal/ios"
	"agilepkgc/internal/pmu"
	"agilepkgc/internal/sim"
	"agilepkgc/internal/uncore"
)

// rig is a small APC system: N cores in Cshallow, PCIe+DMI+UPI links,
// two MCs, a CLM, a GPMU with PC6 disabled, and the APMU.
type rig struct {
	eng   *sim.Engine
	cores []*cpu.Core
	links []*ios.Link
	mcs   []*dram.MC
	clm   *uncore.CLM
	gpmu  *pmu.GPMU
	apmu  *APMU
}

func newRig(nCores int) *rig {
	eng := sim.NewEngine()
	r := &rig{eng: eng}
	for i := 0; i < nCores; i++ {
		r.cores = append(r.cores, cpu.NewCore(eng, i, cpu.DefaultParams(),
			cpu.ShallowGovernor{}, cpu.PerformancePolicy{Nominal: 2.2}, nil))
	}
	r.links = []*ios.Link{
		ios.NewLink(eng, "pcie0", ios.DefaultParams(ios.PCIe, 1.4), nil),
		ios.NewLink(eng, "dmi", ios.DefaultParams(ios.DMI, 1.4), nil),
		ios.NewLink(eng, "upi0", ios.DefaultParams(ios.UPI, 1.7), nil),
	}
	r.mcs = []*dram.MC{
		dram.NewMC(eng, "mc0", dram.DefaultParams(), dram.PPD, nil, nil),
		dram.NewMC(eng, "mc1", dram.DefaultParams(), dram.PPD, nil, nil),
	}
	r.clm = uncore.New(eng, uncore.DefaultParams(), nil, nil)
	r.gpmu = pmu.New(eng, pmu.DefaultConfig(false), r.cores, r.links, r.mcs, r.clm)
	r.apmu = New(eng, DefaultConfig(), r.cores, r.links, r.mcs, r.clm, r.gpmu)
	return r
}

func TestConfigCycle(t *testing.T) {
	c := DefaultConfig()
	if c.cycle() != 4*sim.Nanosecond {
		t.Fatalf("cycle = %v, want 4ns (2 cycles at 500MHz)", c.cycle())
	}
}

// An idle system must settle into PC1A with the full Table 2 device
// configuration: links in L0s/L0p, DRAM CKE-off, CLM retention, every
// PLL still locked.
func TestIdleSystemReachesPC1A(t *testing.T) {
	r := newRig(4)
	r.eng.Run(sim.Microsecond)
	if r.apmu.State() != pmu.PC1A {
		t.Fatalf("state %v, want PC1A", r.apmu.State())
	}
	for _, l := range r.links {
		if l.State() != ios.L0s {
			t.Errorf("link %s in %v, want standby", l.Name(), l.State())
		}
	}
	r.eng.Run(200 * sim.Microsecond)
	for _, mc := range r.mcs {
		if mc.Mode() != dram.PowerDown {
			t.Errorf("MC %s in %v, want CKE-off", mc.Name(), mc.Mode())
		}
	}
	if !r.clm.Gated() {
		t.Error("CLM clock must be gated in PC1A")
	}
	if !r.clm.AtRetentionVoltage() {
		t.Error("CLM must reach retention voltage")
	}
	if !r.clm.PLL().Locked() {
		t.Error("PC1A keeps all PLLs locked — that is the whole point")
	}
	if !r.apmu.InPC1A().Level() {
		t.Error("InPC1A wire must be high")
	}
}

// Paper Sec. 5.5.1: entry latency ≈ 18 ns — 16 ns of IO idle window plus
// 1–2 FSM cycles. Measured from ACC1 with idle IOs.
func TestEntryLatencyMatchesPaper(t *testing.T) {
	r := newRig(4)
	r.eng.Run(sim.Microsecond)
	if r.apmu.State() != pmu.PC1A {
		t.Fatal("setup failed")
	}
	got := r.apmu.LastEntryLatency()
	if got > 8*sim.Nanosecond {
		t.Fatalf("FSM entry action latency %v, want ≤ 2 cycles (4ns) scheduled once; total blocking entry is IO window 16ns + this", got)
	}
	// The full picture: PC0→PC1A took 16ns (L0s entry) + FSM cycle(s).
	// Verify via transition timestamps on a fresh rig.
	r2 := newRig(2)
	var acc1At, pc1aAt sim.Time = -1, -1
	r2.apmu.OnTransition(func(old, new pmu.PkgState) {
		switch new {
		case pmu.ACC1:
			if acc1At < 0 {
				acc1At = r2.eng.Now()
			}
		case pmu.PC1A:
			if pc1aAt < 0 {
				pc1aAt = r2.eng.Now()
			}
		}
	})
	// Cores start idle; APMU constructed in ACC1 already. Drive one core
	// through a job so we observe a full PC0→ACC1→PC1A sequence.
	r2.cores[0].Enqueue(cpu.Work{Duration: sim.Microsecond})
	r2.eng.Run(sim.Millisecond)
	entry := pc1aAt - acc1At
	if entry < 16*sim.Nanosecond || entry > 24*sim.Nanosecond {
		t.Fatalf("ACC1→PC1A = %v, want ~18-20ns (16ns L0s window + FSM cycles)", entry)
	}
}

// Paper Sec. 5.5.2: exit ≤ 150 ns, dominated by the CLM voltage ramp;
// worst-case entry+exit ≤ 200 ns.
func TestExitLatencyMatchesPaper(t *testing.T) {
	r := newRig(4)
	r.eng.Run(10 * sim.Microsecond)
	if r.apmu.State() != pmu.PC1A {
		t.Fatal("setup failed")
	}
	// Wake via core interrupt.
	r.cores[0].Enqueue(cpu.Work{Duration: sim.Microsecond})
	r.eng.Run(engPlus(r.eng, sim.Microsecond))
	exit := r.apmu.LastExitLatency()
	if exit > 160*sim.Nanosecond {
		t.Fatalf("exit latency %v, want ≤ ~158ns (150ns ramp + FSM cycles)", exit)
	}
	if exit < 150*sim.Nanosecond {
		t.Fatalf("exit latency %v implausibly fast: the ramp alone is 150ns", exit)
	}
	total := r.apmu.LastEntryLatency() + 16*sim.Nanosecond + exit
	if total > 200*sim.Nanosecond {
		t.Fatalf("entry+exit = %v, exceeds the paper's 200ns budget", total)
	}
}

func engPlus(e *sim.Engine, d sim.Duration) sim.Time { return e.Now() + d }

// A wake mid-ramp (before retention is reached) must still recover
// correctly, and faster than a full ramp (preemptive FIVR commands).
func TestWakeDuringEntryRamp(t *testing.T) {
	r2 := newRig(2)
	r2.eng.Run(10 * sim.Microsecond) // in PC1A, fully settled? ramp done
	// Exit and catch the next entry, then wake 40ns in.
	var tEnter sim.Time = -1
	r2.apmu.OnTransition(func(old, new pmu.PkgState) {
		if new == pmu.PC1A && tEnter < 0 {
			tEnter = r2.eng.Now()
			r2.eng.Schedule(40*sim.Nanosecond, func() {
				r2.cores[1].Enqueue(cpu.Work{Duration: sim.Microsecond})
			})
		}
	})
	r2.cores[0].Enqueue(cpu.Work{Duration: sim.Microsecond})
	r2.eng.Run(r2.eng.Now() + sim.Millisecond)
	if tEnter < 0 {
		t.Fatal("no PC1A re-entry")
	}
	// System must end up healthy: PC1A again (both cores idle) with CLM
	// settled.
	if r2.apmu.State() != pmu.PC1A {
		t.Fatalf("state %v after mid-ramp wake recovery", r2.apmu.State())
	}
	if !r2.clm.AtRetentionVoltage() {
		t.Fatal("CLM should be back at retention in steady PC1A")
	}
}

// IO traffic while in PC1A wakes the package but not the cores; the
// system returns to ACC1, serves the IO, and re-enters PC1A.
func TestIOWakeWithoutCoreWake(t *testing.T) {
	r := newRig(2)
	r.eng.Run(10 * sim.Microsecond)
	if r.apmu.State() != pmu.PC1A {
		t.Fatal("setup failed")
	}
	entriesBefore := r.apmu.Entries(pmu.PC1A)

	// A DMA-ish transaction on the PCIe link, no core involvement.
	l := r.links[0]
	l.StartTransaction()
	r.eng.Run(r.eng.Now() + 300*sim.Nanosecond)
	if r.apmu.State() == pmu.PC1A {
		t.Fatal("IO wake must exit PC1A")
	}
	l.EndTransaction()
	r.eng.Run(r.eng.Now() + 10*sim.Microsecond)
	if r.apmu.State() != pmu.PC1A {
		t.Fatalf("state %v, want PC1A re-entered after IO drained", r.apmu.State())
	}
	if r.apmu.Entries(pmu.PC1A) != entriesBefore+1 {
		t.Fatalf("PC1A entries %d, want %d", r.apmu.Entries(pmu.PC1A), entriesBefore+1)
	}
}

// GPMU timer expiration wakes PC1A via the WakeUp wire.
func TestTimerWake(t *testing.T) {
	r := newRig(2)
	r.eng.Run(10 * sim.Microsecond)
	if r.apmu.State() != pmu.PC1A {
		t.Fatal("setup failed")
	}
	entriesBefore := r.apmu.Entries(pmu.PC1A)
	resBefore := r.apmu.Residency(pmu.ACC1)
	r.gpmu.FireTimer()
	r.eng.Run(r.eng.Now() + 10*sim.Microsecond)
	if r.apmu.State() != pmu.PC1A {
		t.Fatalf("state %v, want PC1A re-entered (no core work)", r.apmu.State())
	}
	if r.apmu.Entries(pmu.PC1A) != entriesBefore+1 {
		t.Fatalf("PC1A entries %d, want %d: timer must have caused one exit+re-entry",
			r.apmu.Entries(pmu.PC1A), entriesBefore+1)
	}
	if r.apmu.Residency(pmu.ACC1) <= resBefore {
		t.Fatal("timer wake should have accrued ACC1 residency")
	}
}

// A core interrupt in ACC1 (before PC1A) returns to PC0 and deasserts
// AllowL0s.
func TestCoreInterruptInACC1(t *testing.T) {
	r := newRig(2)
	// Immediately after construction the APMU is in ACC1 and the links
	// are counting down their 16ns idle window. Interrupt at 8ns.
	r.eng.Run(8 * sim.Nanosecond)
	if r.apmu.State() != pmu.ACC1 {
		t.Fatalf("state %v, want ACC1", r.apmu.State())
	}
	r.cores[0].Enqueue(cpu.Work{Duration: sim.Microsecond})
	if r.apmu.State() != pmu.PC0 {
		t.Fatalf("state %v, want PC0 after core interrupt in ACC1", r.apmu.State())
	}
	for _, l := range r.links {
		if l.AllowL0s().Level() {
			t.Errorf("link %s AllowL0s still set in PC0", l.Name())
		}
	}
	r.eng.Run(sim.Millisecond)
	if r.apmu.State() != pmu.PC1A {
		t.Fatal("system should re-idle into PC1A after the work")
	}
}

// In PC0 (cores active), links must never enter L0s — the datacenter
// performance requirement APC preserves.
func TestNoL0sWhileCoresActive(t *testing.T) {
	r := newRig(2)
	// Keep one core busy for a long stretch.
	r.cores[0].Enqueue(cpu.Work{Duration: 500 * sim.Microsecond})
	r.eng.Run(100 * sim.Microsecond)
	for _, l := range r.links {
		if l.State() != ios.L0 {
			t.Fatalf("link %s in %v while a core is active", l.Name(), l.State())
		}
	}
}

// Memory access from a core during PC0 keeps MCs out of CKE-off.
func TestNoCKEOffWhileActive(t *testing.T) {
	r := newRig(2)
	r.cores[0].Enqueue(cpu.Work{Duration: 100 * sim.Microsecond})
	r.eng.Run(50 * sim.Microsecond)
	for _, mc := range r.mcs {
		if mc.Mode() != dram.Active {
			t.Fatalf("MC %s in %v during PC0", mc.Name(), mc.Mode())
		}
	}
}

// Many entry/exit cycles: counters consistent, no leaks, state sane.
func TestRepeatedCycleStress(t *testing.T) {
	r := newRig(4)
	r.eng.Run(10 * sim.Microsecond)
	for i := 0; i < 200; i++ {
		c := r.cores[i%4]
		c.Enqueue(cpu.Work{Duration: 3 * sim.Microsecond})
		r.eng.Run(r.eng.Now() + 50*sim.Microsecond)
	}
	if r.apmu.State() != pmu.PC1A {
		t.Fatalf("state %v after stress, want PC1A", r.apmu.State())
	}
	if r.apmu.Entries(pmu.PC1A) < 190 {
		t.Fatalf("PC1A entries %d, want ~200", r.apmu.Entries(pmu.PC1A))
	}
	// Residency sanity: total accounted time ≈ elapsed.
	var total sim.Duration
	for _, s := range []pmu.PkgState{pmu.PC0, pmu.ACC1, pmu.PC1A} {
		total += r.apmu.Residency(s)
	}
	if total > r.eng.Now() || total < r.eng.Now()-sim.Microsecond {
		t.Fatalf("residency sum %v vs elapsed %v", total, r.eng.Now())
	}
}

// PC1A residency dominates on an idle system.
func TestIdleResidencyNearTotal(t *testing.T) {
	r := newRig(10)
	r.eng.Run(100 * sim.Millisecond)
	res := r.apmu.Residency(pmu.PC1A)
	frac := float64(res) / float64(r.eng.Now())
	if frac < 0.999 {
		t.Fatalf("idle PC1A residency %.4f, want ≈1 (paper: idle server saves 41%%)", frac)
	}
}

func TestDescribe(t *testing.T) {
	r := newRig(2)
	r.eng.Run(sim.Microsecond)
	if s := r.apmu.Describe(); s == "" {
		t.Fatal("Describe empty")
	}
}
