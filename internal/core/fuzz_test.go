package core

import (
	"testing"
	"testing/quick"

	"agilepkgc/internal/cpu"
	"agilepkgc/internal/pmu"
	"agilepkgc/internal/sim"
	"agilepkgc/internal/stats"
)

// Randomized event fuzzing: arbitrary interleavings of core work, IO
// transactions, and timer pulses at nanosecond-scale spacings must never
// wedge the APMU — after quiescing, the system is back in PC1A with a
// consistent device configuration.
func TestFuzzAPMURandomEvents(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		r := newRig(4)
		rng := stats.NewRNG(seed)
		events := int(n%300) + 50
		for i := 0; i < events; i++ {
			gap := sim.Duration(rng.Uint64() % 3000) // 0-3us between events
			r.eng.Run(r.eng.Now() + gap)
			switch rng.Uint64() % 4 {
			case 0:
				core := r.cores[rng.Uint64()%4]
				core.Enqueue(cpu.Work{Duration: sim.Duration(rng.Uint64()%5000) + 100})
			case 1:
				l := r.links[rng.Uint64()%uint64(len(r.links))]
				if l.Idle() {
					l.StartTransaction()
					dur := sim.Duration(rng.Uint64()%500) + 10
					r.eng.Schedule(dur, l.EndTransaction)
				}
			case 2:
				r.gpmu.FireTimer()
			case 3:
				// MC traffic while (possibly) in CKE-off.
				r.mcs[rng.Uint64()%2].Access(nil)
			}
		}
		// Quiesce.
		r.eng.Run(r.eng.Now() + 10*sim.Millisecond)
		if r.apmu.State() != pmu.PC1A {
			t.Logf("seed %d: state %v after quiesce", seed, r.apmu.State())
			return false
		}
		if !r.clm.AtRetentionVoltage() || !r.clm.Gated() {
			t.Logf("seed %d: CLM not settled", seed)
			return false
		}
		if !r.clm.PLL().Locked() {
			return false
		}
		for _, l := range r.links {
			if !l.InL0s().Level() {
				t.Logf("seed %d: link %s not in standby", seed, l.Name())
				return false
			}
		}
		// Residency bookkeeping consistent.
		var total sim.Duration
		for _, s := range []pmu.PkgState{pmu.PC0, pmu.ACC1, pmu.PC1A} {
			total += r.apmu.Residency(s)
		}
		return total <= r.eng.Now() && total >= r.eng.Now()-sim.Microsecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Back-to-back wake/entry races: a core interrupt landing in every
// distinct phase of the entry flow (ACC1 wait, L0s window, FSM slot,
// ramp) must always unwind cleanly.
func TestWakeInEveryEntryPhase(t *testing.T) {
	for _, delay := range []sim.Duration{
		1 * sim.Nanosecond,   // ACC1, links still counting down
		8 * sim.Nanosecond,   // mid L0s window
		17 * sim.Nanosecond,  // between InL0s and FSM action
		19 * sim.Nanosecond,  // inside the FSM slot
		25 * sim.Nanosecond,  // just after PC1A, ramp starting
		100 * sim.Nanosecond, // mid-ramp
		200 * sim.Nanosecond, // ramp done, settled PC1A
	} {
		r := newRig(2)
		// Get to a clean PC0→ACC1 edge first.
		r.eng.Run(10 * sim.Microsecond)
		r.cores[0].Enqueue(cpu.Work{Duration: sim.Microsecond})
		r.eng.Run(r.eng.Now() + 10*sim.Microsecond) // settled in PC1A again

		// Cycle once more and interrupt at the chosen phase offset from
		// the ACC1 entry.
		var acc1At sim.Time = -1
		r.apmu.OnTransition(func(old, new pmu.PkgState) {
			if new == pmu.ACC1 && acc1At < 0 {
				acc1At = r.eng.Now()
				r.eng.Schedule(delay, func() {
					r.cores[1].Enqueue(cpu.Work{Duration: sim.Microsecond})
				})
			}
		})
		r.cores[0].Enqueue(cpu.Work{Duration: sim.Microsecond})
		r.eng.Run(r.eng.Now() + sim.Millisecond)

		if r.apmu.State() != pmu.PC1A {
			t.Errorf("delay %v: state %v after recovery, want PC1A", delay, r.apmu.State())
		}
		if !r.clm.AtRetentionVoltage() {
			t.Errorf("delay %v: CLM not at retention after recovery", delay)
		}
	}
}
