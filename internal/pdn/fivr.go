// Package pdn models the power delivery network of the Skylake-class SoC:
// fully integrated voltage regulators (FIVRs) with finite slew rate,
// pre-programmed retention voltage (RVID), preemptive voltage commands,
// and a PwrOk status output — everything the paper's CLMR technique
// (Sec. 4.3, 5.2) relies on — plus fixed motherboard regulators (MBVRs).
package pdn

import (
	"fmt"

	"agilepkgc/internal/sim"
)

// Default electrical parameters, from the paper (Sec. 5.5) and its
// references [12, 51]: FIVR slew ≥ 2 mV/ns, CLM nominal ~0.8 V and
// retention ~0.5 V.
const (
	DefaultSlewVoltsPerNs = 0.002 // 2 mV/ns
	DefaultNominalVolts   = 0.80
	DefaultRetentionVolts = 0.50
)

// FIVR is a fully integrated voltage regulator with a linear-ramp model.
//
// The regulator exposes the two interfaces the APMU uses:
//
//   - SetRet / UnsetRet — the Ret control signal. Set ramps the output to
//     the pre-programmed retention voltage (RVID register); Unset ramps
//     back to the previous operational voltage.
//   - OnPwrOk — the PwrOk status signal, fired when the output reaches an
//     *operational* (non-retention) target after a ramp-up.
//
// Commands are preemptive (paper footnote 11): a new target issued during
// a ramp retargets from the present output voltage immediately.
type FIVR struct {
	eng  *sim.Engine
	name string

	slew float64 // volts per nanosecond

	// Ramp state: output voltage is v0 at time t0, moving toward target.
	v0     float64
	t0     sim.Time
	target float64

	// Saved operational voltage to return to when Ret is unset.
	operational float64
	retention   float64 // RVID: pre-programmed retention voltage
	inRet       bool

	rampDone   sim.Event
	rampDoneFn func() // preallocated ramp-completion callback
	onPwrOk    func()
	onAtRet    func()
}

// NewFIVR creates a regulator already settled at the operational voltage.
func NewFIVR(eng *sim.Engine, name string, operational, retention, slewVoltsPerNs float64) *FIVR {
	if operational <= retention {
		panic(fmt.Sprintf("pdn: operational %gV must exceed retention %gV", operational, retention))
	}
	if slewVoltsPerNs <= 0 {
		panic("pdn: slew must be positive")
	}
	f := &FIVR{
		eng:         eng,
		name:        name,
		slew:        slewVoltsPerNs,
		v0:          operational,
		target:      operational,
		operational: operational,
		retention:   retention,
	}
	f.rampDoneFn = func() {
		f.rampDone = sim.Event{}
		if f.target == f.retention && f.inRet {
			if f.onAtRet != nil {
				f.onAtRet()
			}
			return
		}
		if f.onPwrOk != nil {
			f.onPwrOk()
		}
	}
	return f
}

// Name returns the regulator's name.
func (f *FIVR) Name() string { return f.name }

// Voltage returns the present output voltage, interpolating along any
// in-flight ramp.
func (f *FIVR) Voltage() float64 {
	elapsed := float64(f.eng.Now() - f.t0) // ns
	delta := f.target - f.v0
	maxStep := f.slew * elapsed
	switch {
	case delta > 0 && maxStep < delta:
		return f.v0 + maxStep
	case delta < 0 && maxStep < -delta:
		return f.v0 - maxStep
	default:
		return f.target
	}
}

// Settled reports whether the output has reached the current target.
func (f *FIVR) Settled() bool { return f.Voltage() == f.target }

// InRetention reports whether the Ret signal is currently asserted.
func (f *FIVR) InRetention() bool { return f.inRet }

// AtRetentionVoltage reports whether the output has fully reached the
// retention level.
func (f *FIVR) AtRetentionVoltage() bool {
	return f.inRet && f.Settled() && f.target == f.retention
}

// OnPwrOk registers the PwrOk callback, invoked whenever a ramp to an
// operational (non-retention) voltage completes.
func (f *FIVR) OnPwrOk(fn func()) { f.onPwrOk = fn }

// OnAtRetention registers a callback fired when a ramp down to retention
// completes. The paper's entry flow does not wait for it (the transition
// is non-blocking), but the power model uses it to know when CLM power
// has fully dropped, and tests use it to verify slew timing.
func (f *FIVR) OnAtRetention(fn func()) { f.onAtRet = fn }

// SetRet asserts the Ret signal: ramp down to the RVID retention voltage.
// Idempotent while already asserted.
func (f *FIVR) SetRet() {
	if f.inRet {
		return
	}
	f.inRet = true
	f.retarget(f.retention)
}

// UnsetRet deasserts Ret: ramp back to the saved operational voltage.
// PwrOk fires when the ramp completes. Idempotent while deasserted.
func (f *FIVR) UnsetRet() {
	if !f.inRet {
		return
	}
	f.inRet = false
	f.retarget(f.operational)
}

// SetOperational reprograms the operational voltage (e.g. for a future
// DVFS extension) and, if not in retention, ramps to it.
func (f *FIVR) SetOperational(v float64) {
	if v <= f.retention {
		panic(fmt.Sprintf("pdn: operational %gV must exceed retention %gV", v, f.retention))
	}
	f.operational = v
	if !f.inRet {
		f.retarget(v)
	}
}

// RampTime returns how long a full swing between retention and
// operational voltage takes at the configured slew rate.
func (f *FIVR) RampTime() sim.Duration {
	return f.rampDuration(f.retention, f.operational)
}

func (f *FIVR) rampDuration(from, to float64) sim.Duration {
	dv := to - from
	if dv < 0 {
		dv = -dv
	}
	// Round up to whole nanoseconds, with a small tolerance so that an
	// exact ratio computed in floating point (e.g. 0.3 V / 0.002 V/ns)
	// does not spill into an extra nanosecond.
	ns := dv / f.slew
	d := sim.Duration(ns)
	if float64(d) < ns-1e-6 {
		d++
	}
	return d
}

// retarget preemptively begins a ramp from the present voltage.
func (f *FIVR) retarget(v float64) {
	cur := f.Voltage()
	f.rampDone.Cancel()
	f.v0 = cur
	f.t0 = f.eng.Now()
	f.target = v
	d := f.rampDuration(cur, v)
	f.rampDone = f.eng.Schedule(d, f.rampDoneFn)
}

// MBVR is a motherboard voltage regulator: a fixed rail (e.g. Vccio,
// Vccsa) that the package C-state flows never change.
type MBVR struct {
	name  string
	volts float64
}

// NewMBVR creates a fixed rail.
func NewMBVR(name string, volts float64) *MBVR {
	return &MBVR{name: name, volts: volts}
}

// Name returns the rail name.
func (m *MBVR) Name() string { return m.name }

// Voltage returns the fixed rail voltage.
func (m *MBVR) Voltage() float64 { return m.volts }
