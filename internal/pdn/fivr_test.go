package pdn

import (
	"testing"
	"testing/quick"

	"agilepkgc/internal/sim"
)

func newTestFIVR(eng *sim.Engine) *FIVR {
	return NewFIVR(eng, "clm0", DefaultNominalVolts, DefaultRetentionVolts, DefaultSlewVoltsPerNs)
}

func TestInitialState(t *testing.T) {
	eng := sim.NewEngine()
	f := newTestFIVR(eng)
	if f.Voltage() != DefaultNominalVolts {
		t.Fatalf("initial voltage %v", f.Voltage())
	}
	if !f.Settled() || f.InRetention() || f.AtRetentionVoltage() {
		t.Fatal("initial flags wrong")
	}
	if f.Name() != "clm0" {
		t.Fatal("name wrong")
	}
}

// Paper Sec 5.5: 300 mV swing at 2 mV/ns = 150 ns.
func TestRampTimeMatchesPaper(t *testing.T) {
	eng := sim.NewEngine()
	f := newTestFIVR(eng)
	if got := f.RampTime(); got != 150*sim.Nanosecond {
		t.Fatalf("RampTime = %v, want 150ns", got)
	}
}

func TestRampDownToRetention(t *testing.T) {
	eng := sim.NewEngine()
	f := newTestFIVR(eng)
	reachedAt := sim.Time(-1)
	f.OnAtRetention(func() { reachedAt = eng.Now() })

	f.SetRet()
	if !f.InRetention() {
		t.Fatal("InRetention should be true immediately after SetRet")
	}
	if f.AtRetentionVoltage() {
		t.Fatal("voltage cannot reach retention instantly")
	}

	eng.Run(75 * sim.Nanosecond) // halfway: 0.8 - 0.002*75 = 0.65
	if v := f.Voltage(); !(v > 0.649 && v < 0.651) {
		t.Fatalf("midpoint voltage %v, want ~0.65", v)
	}

	eng.Run(150 * sim.Nanosecond)
	if !f.AtRetentionVoltage() {
		t.Fatal("should be at retention after 150ns")
	}
	if reachedAt != 150*sim.Nanosecond {
		t.Fatalf("OnAtRetention at %v, want 150ns", reachedAt)
	}
}

func TestRampUpFiresPwrOk(t *testing.T) {
	eng := sim.NewEngine()
	f := newTestFIVR(eng)
	f.SetRet()
	eng.Run(200 * sim.Nanosecond)

	pwrOkAt := sim.Time(-1)
	f.OnPwrOk(func() { pwrOkAt = eng.Now() })
	f.UnsetRet()
	eng.Run(400 * sim.Nanosecond)

	if pwrOkAt != 350*sim.Nanosecond {
		t.Fatalf("PwrOk at %v, want 350ns (200 + 150 ramp)", pwrOkAt)
	}
	if f.Voltage() != DefaultNominalVolts {
		t.Fatalf("voltage %v after ramp up", f.Voltage())
	}
}

// Preemptive voltage commands (paper footnote 11): an exit during the
// entry ramp retargets from the current voltage, so the exit is faster
// than a full 150 ns swing.
func TestPreemptiveCommand(t *testing.T) {
	eng := sim.NewEngine()
	f := newTestFIVR(eng)
	pwrOkAt := sim.Time(-1)
	f.OnPwrOk(func() { pwrOkAt = eng.Now() })

	f.SetRet()
	eng.Run(50 * sim.Nanosecond) // ramped down 100 mV, at 0.7 V
	if v := f.Voltage(); !(v > 0.699 && v < 0.701) {
		t.Fatalf("voltage %v, want ~0.7", v)
	}
	f.UnsetRet() // needs only 100 mV / 2mV/ns = 50 ns back up
	eng.Run(sim.Microsecond)

	if pwrOkAt != 100*sim.Nanosecond {
		t.Fatalf("PwrOk at %v, want 100ns", pwrOkAt)
	}
}

func TestIdempotentSignals(t *testing.T) {
	eng := sim.NewEngine()
	f := newTestFIVR(eng)
	retDone := 0
	f.OnAtRetention(func() { retDone++ })
	f.SetRet()
	f.SetRet() // must not restart the ramp
	eng.Run(sim.Microsecond)
	if retDone != 1 {
		t.Fatalf("OnAtRetention fired %d times", retDone)
	}
	pwrOk := 0
	f.OnPwrOk(func() { pwrOk++ })
	f.UnsetRet()
	f.UnsetRet()
	eng.Run(2 * sim.Microsecond)
	if pwrOk != 1 {
		t.Fatalf("PwrOk fired %d times", pwrOk)
	}
}

func TestSetOperationalWhileActive(t *testing.T) {
	eng := sim.NewEngine()
	f := newTestFIVR(eng)
	f.SetOperational(0.9) // +100 mV → 50 ns ramp
	eng.Run(25 * sim.Nanosecond)
	if v := f.Voltage(); !(v > 0.849 && v < 0.851) {
		t.Fatalf("voltage %v, want ~0.85", v)
	}
	eng.Run(60 * sim.Nanosecond)
	if f.Voltage() != 0.9 {
		t.Fatalf("voltage %v, want 0.9", f.Voltage())
	}
}

func TestSetOperationalDuringRetentionDeferred(t *testing.T) {
	eng := sim.NewEngine()
	f := newTestFIVR(eng)
	f.SetRet()
	eng.Run(sim.Microsecond)
	f.SetOperational(0.85) // stored, not applied while in retention
	if !f.AtRetentionVoltage() {
		t.Fatal("changing operational VID must not leave retention")
	}
	f.UnsetRet()
	eng.Run(2 * sim.Microsecond)
	if f.Voltage() != 0.85 {
		t.Fatalf("voltage %v, want new operational 0.85", f.Voltage())
	}
}

func TestConstructorValidation(t *testing.T) {
	eng := sim.NewEngine()
	for _, fn := range []func(){
		func() { NewFIVR(eng, "x", 0.5, 0.8, 0.002) }, // operational <= retention
		func() { NewFIVR(eng, "x", 0.8, 0.5, 0) },     // zero slew
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected constructor panic")
				}
			}()
			fn()
		}()
	}
	f := newTestFIVR(eng)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("SetOperational below retention should panic")
			}
		}()
		f.SetOperational(0.4)
	}()
}

func TestMBVR(t *testing.T) {
	r := NewMBVR("vccio", 1.05)
	if r.Voltage() != 1.05 || r.Name() != "vccio" {
		t.Fatal("MBVR accessors wrong")
	}
}

// Property: voltage always stays within [retention, operational] under
// arbitrary interleavings of SetRet/UnsetRet at arbitrary times.
func TestPropertyVoltageBounded(t *testing.T) {
	f := func(ops []bool, gaps []uint8) bool {
		eng := sim.NewEngine()
		fv := newTestFIVR(eng)
		for i, set := range ops {
			g := sim.Duration(20)
			if i < len(gaps) {
				g = sim.Duration(gaps[i])
			}
			eng.Run(eng.Now() + g)
			if set {
				fv.SetRet()
			} else {
				fv.UnsetRet()
			}
			v := fv.Voltage()
			if v < DefaultRetentionVolts-1e-9 || v > DefaultNominalVolts+1e-9 {
				return false
			}
		}
		eng.Run(eng.Now() + sim.Microsecond)
		v := fv.Voltage()
		return v >= DefaultRetentionVolts-1e-9 && v <= DefaultNominalVolts+1e-9 && fv.Settled()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: after any history, UnsetRet followed by enough time always
// restores the operational voltage and fires PwrOk exactly once.
func TestPropertyRecovery(t *testing.T) {
	f := func(ops []bool) bool {
		eng := sim.NewEngine()
		fv := newTestFIVR(eng)
		for _, set := range ops {
			eng.Run(eng.Now() + 13*sim.Nanosecond)
			if set {
				fv.SetRet()
			} else {
				fv.UnsetRet()
			}
		}
		count := 0
		fv.OnPwrOk(func() { count++ })
		wasRet := fv.InRetention()
		fv.UnsetRet()
		eng.Run(eng.Now() + sim.Microsecond)
		if fv.Voltage() != DefaultNominalVolts {
			return false
		}
		// PwrOk must fire iff a ramp-up actually happened (we were in
		// retention, or mid-ramp toward it).
		if wasRet && count != 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
