package cpu

import (
	"fmt"

	"agilepkgc/internal/sim"
)

// LadderGovernor is a Linux-ladder-style stepwise governor: it promotes
// to the next deeper C-state after several consecutive idle episodes
// longer than the current state's promotion threshold, and demotes
// immediately after an episode shorter than the demotion threshold. It
// reacts slower than menu but is robust to noisy idle-length
// distributions — the historical default for periodic-tick kernels.
type LadderGovernor struct {
	// PromoteAfter is the number of consecutive long idles required to
	// go deeper.
	PromoteAfter int

	// Thresholds per rung (indexed by CState).
	promoteThresh map[CState]sim.Duration
	demoteThresh  map[CState]sim.Duration

	current CState
	streak  int
}

// NewLadderGovernor returns a ladder with SKX-appropriate rungs.
func NewLadderGovernor() *LadderGovernor {
	return &LadderGovernor{
		PromoteAfter: 4,
		promoteThresh: map[CState]sim.Duration{
			CC1:  40 * sim.Microsecond,  // long enough to justify CC1E
			CC1E: 800 * sim.Microsecond, // long enough to justify CC6
		},
		demoteThresh: map[CState]sim.Duration{
			CC1E: 15 * sim.Microsecond,
			CC6:  300 * sim.Microsecond,
		},
		current: CC1,
	}
}

// ChooseIdleState returns the current rung.
func (g *LadderGovernor) ChooseIdleState() CState { return g.current }

// RecordIdle climbs or falls the ladder.
func (g *LadderGovernor) RecordIdle(d sim.Duration) {
	// Demotion: one short episode is enough.
	if th, ok := g.demoteThresh[g.current]; ok && d < th {
		g.current = demote(g.current)
		g.streak = 0
		return
	}
	// Promotion: several long episodes.
	th, ok := g.promoteThresh[g.current]
	if !ok || d < th {
		g.streak = 0
		return
	}
	g.streak++
	if g.streak >= g.PromoteAfter {
		g.current = promote(g.current)
		g.streak = 0
	}
}

func promote(s CState) CState {
	switch s {
	case CC1:
		return CC1E
	case CC1E:
		return CC6
	default:
		return s
	}
}

func demote(s CState) CState {
	switch s {
	case CC6:
		return CC1E
	case CC1E:
		return CC1
	default:
		return s
	}
}

func (g *LadderGovernor) String() string { return "ladder(stepwise)" }

// TimerHintGovernor models a tickless kernel's key advantage: the OS
// *knows* the next timer expiration, so the idle-length prediction is
// the minimum of that bound and the EWMA of interrupt-driven idles. The
// caller supplies the next-timer distance via SetNextTimer before the
// core idles (the server model calls it with the next scheduled event).
type TimerHintGovernor struct {
	CC1ETarget sim.Duration
	CC6Target  sim.Duration

	nextTimer sim.Duration
	ewma      float64
	seen      bool
}

// NewTimerHintGovernor returns a hint-aware governor with the same
// targets as the menu governor.
func NewTimerHintGovernor() *TimerHintGovernor {
	return &TimerHintGovernor{
		CC1ETarget: 20 * sim.Microsecond,
		CC6Target:  600 * sim.Microsecond,
		nextTimer:  sim.Duration(1 << 62),
	}
}

// SetNextTimer provides the upper bound on the coming idle period.
func (g *TimerHintGovernor) SetNextTimer(d sim.Duration) { g.nextTimer = d }

// ChooseIdleState predicts min(timer bound, EWMA).
func (g *TimerHintGovernor) ChooseIdleState() CState {
	pred := g.nextTimer
	if g.seen && sim.Duration(g.ewma) < pred {
		pred = sim.Duration(g.ewma)
	}
	switch {
	case pred >= g.CC6Target:
		return CC6
	case pred >= g.CC1ETarget:
		return CC1E
	default:
		return CC1
	}
}

// RecordIdle folds the observed idle length into the EWMA.
func (g *TimerHintGovernor) RecordIdle(d sim.Duration) {
	const alpha = 0.3
	if !g.seen {
		g.ewma = float64(d)
		g.seen = true
		return
	}
	g.ewma = alpha*float64(d) + (1-alpha)*g.ewma
}

func (g *TimerHintGovernor) String() string { return "timer-hint(tickless)" }

// compile-time interface checks
var (
	_ Governor = (*LadderGovernor)(nil)
	_ Governor = (*TimerHintGovernor)(nil)
	_ Governor = ShallowGovernor{}
	_ Governor = (*MenuGovernor)(nil)
)

// GovernorByName builds a governor from a config string — used by tools
// and examples that select policies at the command line.
func GovernorByName(name string) (Governor, error) {
	switch name {
	case "shallow":
		return ShallowGovernor{}, nil
	case "menu":
		return NewMenuGovernor(), nil
	case "ladder":
		return NewLadderGovernor(), nil
	case "timer-hint":
		return NewTimerHintGovernor(), nil
	default:
		return nil, fmt.Errorf("cpu: unknown governor %q", name)
	}
}
