package cpu

import (
	"testing"

	"agilepkgc/internal/sim"
)

func TestLadderStartsShallow(t *testing.T) {
	g := NewLadderGovernor()
	if g.ChooseIdleState() != CC1 {
		t.Fatal("ladder starts at CC1")
	}
}

func TestLadderPromotion(t *testing.T) {
	g := NewLadderGovernor()
	// Four consecutive long idles climb one rung.
	for i := 0; i < 4; i++ {
		if g.ChooseIdleState() != CC1 {
			t.Fatalf("promoted too early at %d", i)
		}
		g.RecordIdle(100 * sim.Microsecond)
	}
	if g.ChooseIdleState() != CC1E {
		t.Fatalf("state %v after promotion streak, want CC1E", g.ChooseIdleState())
	}
	// Climb to CC6 with very long idles.
	for i := 0; i < 4; i++ {
		g.RecordIdle(2 * sim.Millisecond)
	}
	if g.ChooseIdleState() != CC6 {
		t.Fatalf("state %v, want CC6", g.ChooseIdleState())
	}
	// CC6 is the top rung; further promotion is a no-op.
	for i := 0; i < 8; i++ {
		g.RecordIdle(10 * sim.Millisecond)
	}
	if g.ChooseIdleState() != CC6 {
		t.Fatal("promotion past CC6")
	}
}

func TestLadderDemotionIsImmediate(t *testing.T) {
	g := NewLadderGovernor()
	for i := 0; i < 8; i++ {
		g.RecordIdle(2 * sim.Millisecond)
	}
	if g.ChooseIdleState() != CC6 {
		t.Fatal("setup failed")
	}
	g.RecordIdle(50 * sim.Microsecond) // below CC6 demotion threshold
	if g.ChooseIdleState() != CC1E {
		t.Fatalf("state %v after one short idle, want CC1E", g.ChooseIdleState())
	}
	g.RecordIdle(5 * sim.Microsecond)
	if g.ChooseIdleState() != CC1 {
		t.Fatalf("state %v, want CC1", g.ChooseIdleState())
	}
	// CC1 is the bottom rung.
	g.RecordIdle(sim.Microsecond)
	if g.ChooseIdleState() != CC1 {
		t.Fatal("demotion past CC1")
	}
}

func TestLadderStreakResetOnShortIdle(t *testing.T) {
	g := NewLadderGovernor()
	g.RecordIdle(100 * sim.Microsecond)
	g.RecordIdle(100 * sim.Microsecond)
	g.RecordIdle(100 * sim.Microsecond)
	g.RecordIdle(5 * sim.Microsecond) // breaks the streak
	g.RecordIdle(100 * sim.Microsecond)
	if g.ChooseIdleState() != CC1 {
		t.Fatal("streak should have been reset")
	}
}

func TestTimerHintBoundsPrediction(t *testing.T) {
	g := NewTimerHintGovernor()
	// No history, no timer bound: effectively deep.
	if g.ChooseIdleState() != CC6 {
		t.Fatal("unbounded prediction should be deep")
	}
	// A near timer forbids deep states regardless of history.
	g.SetNextTimer(10 * sim.Microsecond)
	if g.ChooseIdleState() != CC1 {
		t.Fatal("near timer must force CC1")
	}
	g.SetNextTimer(100 * sim.Microsecond)
	if g.ChooseIdleState() != CC1E {
		t.Fatal("mid-range timer should pick CC1E")
	}
	g.SetNextTimer(10 * sim.Millisecond)
	if g.ChooseIdleState() != CC6 {
		t.Fatal("far timer should allow CC6")
	}
}

func TestTimerHintUsesHistoryBelowTimer(t *testing.T) {
	g := NewTimerHintGovernor()
	g.SetNextTimer(10 * sim.Millisecond) // far timer
	for i := 0; i < 20; i++ {
		g.RecordIdle(30 * sim.Microsecond) // interrupts arrive early
	}
	if g.ChooseIdleState() != CC1E {
		t.Fatalf("state %v: EWMA 30us should cap the far timer", g.ChooseIdleState())
	}
}

func TestGovernorByName(t *testing.T) {
	for _, name := range []string{"shallow", "menu", "ladder", "timer-hint"} {
		g, err := GovernorByName(name)
		if err != nil || g == nil {
			t.Fatalf("GovernorByName(%q) failed: %v", name, err)
		}
		if g.String() == "" {
			t.Fatalf("%q has empty description", name)
		}
	}
	if _, err := GovernorByName("nope"); err == nil {
		t.Fatal("unknown governor should error")
	}
}

// The ladder governor drives a core end to end: alternating long idles
// walk it deeper; the exit latency grows accordingly.
func TestLadderOnCore(t *testing.T) {
	eng := sim.NewEngine()
	c := NewCore(eng, 0, DefaultParams(), NewLadderGovernor(),
		PerformancePolicy{Nominal: 2.2}, nil)
	// Many episodes with ~100us idle gaps → governor should settle at
	// CC1E (promoted once, gaps too short for CC6).
	for i := 0; i < 12; i++ {
		c.Enqueue(Work{Duration: 5 * sim.Microsecond})
		eng.Run(eng.Now() + 120*sim.Microsecond)
	}
	if s := c.State(); s != CC1E {
		t.Fatalf("core settled in %v, want CC1E", s)
	}
	if c.Wakes(CC1E) == 0 {
		t.Fatal("no CC1E wakes recorded")
	}
}
