// Package cpu models the CPU cores of the server SoC: core C-states
// (CC0 active, CC1/CC1E shallow idle, CC6 deep idle) with their exit
// latencies and per-state power, the per-core power management agent
// (PMA) that exposes the InCC1 status wire, OS idle governors (the
// datacenter shallow-only policy and a Linux-menu-like predictive
// policy), and P-state/frequency policies (performance vs powersave).
package cpu

import (
	"fmt"

	"agilepkgc/internal/power"
	"agilepkgc/internal/signal"
	"agilepkgc/internal/sim"
)

// CState enumerates core C-states. Higher is deeper.
type CState int

const (
	// CC0: executing instructions.
	CC0 CState = iota
	// CC1: clock-gated halt; the only idle state datacenter configs
	// leave enabled.
	CC1
	// CC1E: CC1 with reduced frequency/voltage.
	CC1E
	// CC6: power-gated; caches flushed. ~133 µs transition.
	CC6
)

// String names the state.
func (s CState) String() string {
	switch s {
	case CC0:
		return "CC0"
	case CC1:
		return "CC1"
	case CC1E:
		return "CC1E"
	case CC6:
		return "CC6"
	default:
		return fmt.Sprintf("CState(%d)", int(s))
	}
}

// Idle reports whether the state is an idle state (CC1 or deeper).
func (s CState) Idle() bool { return s > CC0 }

// Params collects per-core timing and power parameters.
type Params struct {
	// Exit latencies (entry costs are folded into exit, as the paper
	// and Linux cpuidle tables do).
	CC1Exit  sim.Duration
	CC1EExit sim.Duration
	CC6Exit  sim.Duration

	// Per-state power at nominal frequency. CC0 power scales linearly
	// with frequency.
	CC0Watts  float64
	CC1Watts  float64
	CC1EWatts float64
	CC6Watts  float64

	// NominalGHz is the frequency work durations are expressed at.
	NominalGHz float64

	// IdleEntryDelay models the kernel idle-entry path: after the run
	// queue empties the core stays in CC0 this long (governor
	// selection, residency bookkeeping) before the C-state is entered.
	// New work during the window cancels idle entry with no exit cost.
	IdleEntryDelay sim.Duration
}

// DefaultParams returns the SKX-calibrated core parameters (DESIGN.md):
// CC6 exit 133 µs (paper Sec. 3.1), CC1 exit 2 µs, power ladder
// 5.35 / 1.25 / 0.04 W to reproduce the paper's Sec. 5.4 deltas.
func DefaultParams() Params {
	return Params{
		CC1Exit:        2 * sim.Microsecond,
		CC1EExit:       10 * sim.Microsecond,
		CC6Exit:        133 * sim.Microsecond,
		CC0Watts:       5.35,
		CC1Watts:       1.25,
		CC1EWatts:      0.90,
		CC6Watts:       0.04,
		NominalGHz:     2.2,
		IdleEntryDelay: 1 * sim.Microsecond,
	}
}

// ExitLatency returns the exit latency of a state.
func (p Params) ExitLatency(s CState) sim.Duration {
	switch s {
	case CC1:
		return p.CC1Exit
	case CC1E:
		return p.CC1EExit
	case CC6:
		return p.CC6Exit
	default:
		return 0
	}
}

// StateWatts returns the state's power at nominal frequency.
func (p Params) StateWatts(s CState) float64 {
	switch s {
	case CC0:
		return p.CC0Watts
	case CC1:
		return p.CC1Watts
	case CC1E:
		return p.CC1EWatts
	case CC6:
		return p.CC6Watts
	default:
		return 0
	}
}

// Governor selects the C-state for an idle episode — the OS cpuidle
// governor.
type Governor interface {
	// ChooseIdleState is called when the core's run queue empties.
	ChooseIdleState() CState
	// RecordIdle reports the length of a completed idle episode, for
	// predictive governors.
	RecordIdle(d sim.Duration)
	String() string
}

// ShallowGovernor always picks CC1 — the recommended datacenter
// configuration (Cshallow baseline): deep states disabled to protect
// tail latency.
type ShallowGovernor struct{}

// ChooseIdleState always returns CC1.
func (ShallowGovernor) ChooseIdleState() CState { return CC1 }

// RecordIdle is a no-op.
func (ShallowGovernor) RecordIdle(sim.Duration) {}

func (ShallowGovernor) String() string { return "shallow(CC1-only)" }

// MenuGovernor is a simplified Linux-menu-style predictive governor used
// by the Cdeep baseline: it predicts the next idle length with an EWMA of
// recent idle episodes and picks the deepest state whose target residency
// fits the prediction.
type MenuGovernor struct {
	// Target residencies: minimum predicted idle to justify the state.
	CC1ETarget sim.Duration
	CC6Target  sim.Duration

	ewma float64 // nanoseconds
	seen bool
}

// NewMenuGovernor returns a menu governor with SKX-like target
// residencies (Linux intel_idle: C1E 20 µs, C6 600 µs).
func NewMenuGovernor() *MenuGovernor {
	return &MenuGovernor{
		CC1ETarget: 20 * sim.Microsecond,
		CC6Target:  600 * sim.Microsecond,
	}
}

// ChooseIdleState picks from the EWMA prediction. With no history it
// starts optimistic (deep), as an idle server boots into long idleness.
func (g *MenuGovernor) ChooseIdleState() CState {
	if !g.seen {
		return CC6
	}
	pred := sim.Duration(g.ewma)
	switch {
	case pred >= g.CC6Target:
		return CC6
	case pred >= g.CC1ETarget:
		return CC1E
	default:
		return CC1
	}
}

// RecordIdle folds a completed idle episode into the EWMA.
func (g *MenuGovernor) RecordIdle(d sim.Duration) {
	const alpha = 0.3
	if !g.seen {
		g.ewma = float64(d)
		g.seen = true
		return
	}
	g.ewma = alpha*float64(d) + (1-alpha)*g.ewma
}

func (g *MenuGovernor) String() string { return "menu(predictive)" }

// FreqPolicy models the P-state governor. The paper disables DVFS but
// contrasts the `performance` governor (Cshallow: pinned at nominal) with
// `powersave` (Cdeep: frequency follows utilization).
type FreqPolicy interface {
	// GHz returns the frequency for the next work item.
	GHz() float64
	// OnBusyFraction feeds the policy the core's recent busy fraction.
	OnBusyFraction(u float64)
	String() string
}

// PerformancePolicy pins the nominal frequency.
type PerformancePolicy struct{ Nominal float64 }

// GHz returns the pinned frequency.
func (p PerformancePolicy) GHz() float64 { return p.Nominal }

// OnBusyFraction is a no-op.
func (p PerformancePolicy) OnBusyFraction(float64) {}

func (p PerformancePolicy) String() string { return fmt.Sprintf("performance(%.1fGHz)", p.Nominal) }

// PowersavePolicy scales frequency with an EWMA of the busy fraction
// between Min and Max GHz — the intel_pstate powersave shape: a lightly
// loaded server runs near minimum frequency.
type PowersavePolicy struct {
	Min, Max float64
	util     float64
}

// GHz interpolates on utilization.
func (p *PowersavePolicy) GHz() float64 { return p.Min + (p.Max-p.Min)*p.util }

// OnBusyFraction updates the utilization EWMA.
func (p *PowersavePolicy) OnBusyFraction(u float64) {
	const alpha = 0.2
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	p.util = alpha*u + (1-alpha)*p.util
}

func (p *PowersavePolicy) String() string {
	return fmt.Sprintf("powersave(%.1f-%.1fGHz)", p.Min, p.Max)
}

// Work is one unit of execution for a core.
type Work struct {
	// Duration is the service time at nominal frequency.
	Duration sim.Duration
	// OnStart fires when the core begins executing the work (after any
	// C-state exit latency).
	OnStart func()
	// OnDone fires when the work completes.
	OnDone func()
}

// Core is one CPU core.
type Core struct {
	eng      *sim.Engine
	id       int
	params   Params
	governor Governor
	freq     FreqPolicy

	state CState
	// queue is the run queue with a consumed-head index: dequeuing
	// advances qHead instead of reslicing, and the backing array is
	// recycled whenever the queue drains, so steady-state enqueue/dequeue
	// never allocates.
	queue []Work
	qHead int
	// cur is the work item being executed, read back by workFn.
	cur Work

	// inIdle is the PMA's InCC1 status wire: high when the core is in
	// CC1 or deeper. It drops the moment a wake begins.
	inIdle *signal.Signal

	idleEntry sim.Event // pending idle-entry (kernel path) event
	wakeEv    sim.Event // pending C-state exit completion
	workEv    sim.Event // pending work completion

	idleStart  sim.Time
	busyStart  sim.Time
	lastWindow sim.Time // utilization window anchor
	busyInWin  sim.Duration

	ch *power.Channel

	// Preallocated event callbacks: the wake→work→idle cycle schedules
	// these fixed closures, so a core in steady state allocates nothing.
	wakeFn func()
	workFn func()
	idleFn func()

	onTransition []func(old, new CState)

	// Counters.
	wakes      [4]uint64 // indexed by the state woken from
	workDone   uint64
	interrupts uint64
}

// NewCore builds a core idling in CC1 (a freshly booted idle system).
// ch may be nil.
func NewCore(eng *sim.Engine, id int, p Params, gov Governor, freq FreqPolicy, ch *power.Channel) *Core {
	c := &Core{
		eng:      eng,
		id:       id,
		params:   p,
		governor: gov,
		freq:     freq,
		state:    CC1,
		inIdle:   signal.New(fmt.Sprintf("core%d.InCC1", id), true),
		ch:       ch,
	}
	if ch != nil {
		ch.Set(p.CC1Watts)
	}
	c.wakeFn = func() {
		c.wakeEv = sim.Event{}
		c.setState(CC0)
		c.beginWork()
	}
	c.workFn = func() {
		w := c.cur
		c.cur = Work{}
		c.workEv = sim.Event{}
		c.workDone++
		c.noteBusy(c.eng.Now() - c.busyStart)
		if w.OnDone != nil {
			w.OnDone()
		}
		if len(c.queue) > c.qHead {
			c.beginWork()
			return
		}
		c.armIdleEntry()
	}
	c.idleFn = func() {
		c.idleEntry = sim.Event{}
		c.enterIdle()
	}
	return c
}

// ID returns the core index.
func (c *Core) ID() int { return c.id }

// State returns the current C-state.
func (c *Core) State() CState { return c.state }

// InCC1 returns the PMA status wire (high in CC1 or deeper).
func (c *Core) InCC1() *signal.Signal { return c.inIdle }

// QueueLen returns the number of queued (not yet started) work items.
func (c *Core) QueueLen() int { return len(c.queue) - c.qHead }

// Busy reports whether the core is executing or waking to execute.
func (c *Core) Busy() bool { return c.state == CC0 || c.wakeEv.Pending() }

// WorkDone returns the number of completed work items.
func (c *Core) WorkDone() uint64 { return c.workDone }

// Wakes returns the number of wakes from the given state.
func (c *Core) Wakes(from CState) uint64 { return c.wakes[from] }

// Governor returns the core's idle governor.
func (c *Core) Governor() Governor { return c.governor }

// FreqPolicy returns the core's frequency policy.
func (c *Core) FreqPolicy() FreqPolicy { return c.freq }

// OnTransition registers a callback for every C-state change.
func (c *Core) OnTransition(fn func(old, new CState)) {
	c.onTransition = append(c.onTransition, fn)
}

func (c *Core) setState(s CState) {
	if s == c.state {
		return
	}
	old := c.state
	c.state = s
	if c.ch != nil {
		w := c.params.StateWatts(s)
		if s == CC0 {
			// Dynamic power scales with frequency.
			w = c.params.CC0Watts * c.freq.GHz() / c.params.NominalGHz
		}
		c.ch.Set(w)
	}
	c.inIdle.SetLevel(s.Idle())
	for _, fn := range c.onTransition {
		fn(old, s)
	}
}

// Enqueue adds work to the core's run queue, waking it if idle. This is
// the path a NIC interrupt + softirq takes to hand a request to the
// pinned application thread.
func (c *Core) Enqueue(w Work) {
	c.queue = append(c.queue, w)
	c.maybeStart()
}

// WakeInterrupt wakes the core with no associated work (timer interrupt,
// IPI). The core executes the kernel interrupt path (a short burst of
// CC0) and then re-enters idle.
func (c *Core) WakeInterrupt(kernelTime sim.Duration) {
	c.interrupts++
	c.Enqueue(Work{Duration: kernelTime})
}

// maybeStart begins waking or executing if there is work and the core is
// not already doing either.
func (c *Core) maybeStart() {
	if len(c.queue) == c.qHead || c.workEv.Pending() || c.wakeEv.Pending() {
		return
	}
	// Cancel a pending idle entry: the kernel path was preempted before
	// the C-state was entered, so there is no exit cost.
	if c.idleEntry.Pending() {
		c.idleEntry.Cancel()
		c.idleEntry = sim.Event{}
	}
	if c.state.Idle() {
		// Begin C-state exit. The InCC1 wire drops immediately: the
		// PMA signals the wake as it starts, which is what lets the
		// package exit flow run concurrently with the core wake.
		from := c.state
		c.governor.RecordIdle(c.eng.Now() - c.idleStart)
		c.wakes[from]++
		c.inIdle.Unset()
		c.wakeEv = c.eng.Schedule(c.params.ExitLatency(from), c.wakeFn)
		return
	}
	// Already in CC0 (between work items or in the idle-entry window).
	c.beginWork()
}

// beginWork starts the next queued item; the core must be in CC0.
func (c *Core) beginWork() {
	if c.state != CC0 {
		c.setState(CC0)
	}
	w := c.queue[c.qHead]
	c.queue[c.qHead] = Work{} // drop closure references
	c.qHead++
	if c.qHead == len(c.queue) {
		c.queue = c.queue[:0]
		c.qHead = 0
	}
	c.busyStart = c.eng.Now()
	if w.OnStart != nil {
		w.OnStart()
	}
	// Scale duration by current frequency.
	ghz := c.freq.GHz()
	scaled := sim.Duration(float64(w.Duration) * c.params.NominalGHz / ghz)
	if c.ch != nil {
		c.ch.Set(c.params.CC0Watts * ghz / c.params.NominalGHz)
	}
	c.cur = w
	c.workEv = c.eng.Schedule(scaled, c.workFn)
}

// armIdleEntry schedules the kernel idle-entry path.
func (c *Core) armIdleEntry() {
	if c.params.IdleEntryDelay == 0 {
		c.enterIdle()
		return
	}
	c.idleEntry = c.eng.Schedule(c.params.IdleEntryDelay, c.idleFn)
}

func (c *Core) enterIdle() {
	if len(c.queue) > c.qHead {
		c.maybeStart()
		return
	}
	target := c.governor.ChooseIdleState()
	c.idleStart = c.eng.Now()
	c.setState(target)
}

// noteBusy updates the utilization estimate fed to the frequency policy,
// over 1 ms windows.
func (c *Core) noteBusy(d sim.Duration) {
	c.busyInWin += d
	const window = sim.Millisecond
	if c.eng.Now()-c.lastWindow >= window {
		u := float64(c.busyInWin) / float64(c.eng.Now()-c.lastWindow)
		c.freq.OnBusyFraction(u)
		c.lastWindow = c.eng.Now()
		c.busyInWin = 0
	}
}
