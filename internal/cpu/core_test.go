package cpu

import (
	"testing"

	"agilepkgc/internal/power"
	"agilepkgc/internal/sim"
)

func newCore(eng *sim.Engine) *Core {
	return NewCore(eng, 0, DefaultParams(), ShallowGovernor{},
		PerformancePolicy{Nominal: 2.2}, nil)
}

func TestCStateStrings(t *testing.T) {
	if CC0.String() != "CC0" || CC1.String() != "CC1" || CC1E.String() != "CC1E" || CC6.String() != "CC6" {
		t.Fatal("state names wrong")
	}
	if CState(9).String() != "CState(9)" {
		t.Fatal("unknown format wrong")
	}
	if CC0.Idle() || !CC1.Idle() || !CC6.Idle() {
		t.Fatal("Idle() wrong")
	}
}

func TestParamsAccessors(t *testing.T) {
	p := DefaultParams()
	if p.ExitLatency(CC6) != 133*sim.Microsecond {
		t.Fatalf("CC6 exit = %v, want 133us (paper Sec 3.1)", p.ExitLatency(CC6))
	}
	if p.ExitLatency(CC0) != 0 {
		t.Fatal("CC0 has no exit latency")
	}
	if p.StateWatts(CC0) != 5.35 || p.StateWatts(CC1) != 1.25 || p.StateWatts(CC6) != 0.04 {
		t.Fatal("power ladder wrong")
	}
}

func TestStartsIdleInCC1(t *testing.T) {
	eng := sim.NewEngine()
	c := newCore(eng)
	if c.State() != CC1 || !c.InCC1().Level() || c.Busy() {
		t.Fatal("core should boot idle in CC1")
	}
}

func TestWakeRunSleepCycle(t *testing.T) {
	eng := sim.NewEngine()
	c := newCore(eng)
	var startedAt, doneAt sim.Time = -1, -1
	c.Enqueue(Work{
		Duration: 10 * sim.Microsecond,
		OnStart:  func() { startedAt = eng.Now() },
		OnDone:   func() { doneAt = eng.Now() },
	})
	// InCC1 must drop immediately (wake begins).
	if c.InCC1().Level() {
		t.Fatal("InCC1 should drop at wake start")
	}
	eng.Run(sim.Millisecond)
	if startedAt != 2*sim.Microsecond {
		t.Fatalf("work started at %v, want 2us (CC1 exit)", startedAt)
	}
	if doneAt != 12*sim.Microsecond {
		t.Fatalf("work done at %v, want 12us", doneAt)
	}
	if c.State() != CC1 {
		t.Fatalf("state %v after idle entry, want CC1", c.State())
	}
	if c.WorkDone() != 1 || c.Wakes(CC1) != 1 {
		t.Fatal("counters wrong")
	}
}

func TestIdleEntryDelay(t *testing.T) {
	eng := sim.NewEngine()
	c := newCore(eng)
	c.Enqueue(Work{Duration: 10 * sim.Microsecond})
	eng.Run(12*sim.Microsecond + 500*sim.Nanosecond) // work done at 12us; idle entry at 13us
	if c.State() != CC0 {
		t.Fatalf("state %v during idle-entry window, want CC0", c.State())
	}
	eng.Run(13 * sim.Microsecond)
	if c.State() != CC1 {
		t.Fatalf("state %v after idle-entry window, want CC1", c.State())
	}
}

func TestWorkDuringIdleEntryWindowAvoidsExitCost(t *testing.T) {
	eng := sim.NewEngine()
	c := newCore(eng)
	c.Enqueue(Work{Duration: 10 * sim.Microsecond})
	eng.Run(12*sim.Microsecond + 200*sim.Nanosecond)
	var startedAt sim.Time = -1
	c.Enqueue(Work{Duration: sim.Microsecond, OnStart: func() { startedAt = eng.Now() }})
	if startedAt != eng.Now() {
		t.Fatalf("work should start immediately in the idle-entry window, started %v", startedAt)
	}
}

func TestQueueingFIFO(t *testing.T) {
	eng := sim.NewEngine()
	c := newCore(eng)
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		c.Enqueue(Work{Duration: 5 * sim.Microsecond, OnDone: func() { order = append(order, i) }})
	}
	if c.QueueLen() != 3 { // all still queued: the core is waking
		t.Fatalf("QueueLen = %d, want 3", c.QueueLen())
	}
	eng.Run(sim.Millisecond)
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("order = %v", order)
	}
	// Back-to-back: 2us wake + 3*5us = 17us total.
	if c.WorkDone() != 3 {
		t.Fatal("not all work done")
	}
}

func TestMenuGovernorDeepensOnLongIdles(t *testing.T) {
	g := NewMenuGovernor()
	if g.ChooseIdleState() != CC6 {
		t.Fatal("menu governor starts deep")
	}
	for i := 0; i < 10; i++ {
		g.RecordIdle(10 * sim.Microsecond)
	}
	if got := g.ChooseIdleState(); got != CC1 {
		t.Fatalf("after short idles: %v, want CC1", got)
	}
	for i := 0; i < 30; i++ {
		g.RecordIdle(2 * sim.Millisecond)
	}
	if got := g.ChooseIdleState(); got != CC6 {
		t.Fatalf("after long idles: %v, want CC6", got)
	}
	for i := 0; i < 30; i++ {
		g.RecordIdle(100 * sim.Microsecond)
	}
	if got := g.ChooseIdleState(); got != CC1E {
		t.Fatalf("after medium idles: %v, want CC1E", got)
	}
}

func TestCC6WakeCosts133us(t *testing.T) {
	eng := sim.NewEngine()
	gov := NewMenuGovernor()
	c := NewCore(eng, 0, DefaultParams(), gov, PerformancePolicy{Nominal: 2.2}, nil)
	// A long boot idle then one short job: the governor records the long
	// idle and keeps predicting deep.
	eng.Run(10 * sim.Millisecond)
	c.Enqueue(Work{Duration: sim.Microsecond})
	eng.Run(20 * sim.Millisecond)
	if c.State() != CC6 {
		t.Fatalf("state %v, want CC6", c.State())
	}
	var startedAt sim.Time = -1
	t0 := eng.Now()
	c.Enqueue(Work{Duration: sim.Microsecond, OnStart: func() { startedAt = eng.Now() }})
	eng.Run(eng.Now() + sim.Millisecond)
	if startedAt-t0 != 133*sim.Microsecond {
		t.Fatalf("CC6 wake took %v, want 133us", startedAt-t0)
	}
	if c.Wakes(CC6) != 1 {
		t.Fatal("CC6 wake not counted")
	}
}

func TestShallowGovernorNeverDeep(t *testing.T) {
	g := ShallowGovernor{}
	for i := 0; i < 5; i++ {
		g.RecordIdle(sim.Second)
		if g.ChooseIdleState() != CC1 {
			t.Fatal("shallow governor must always pick CC1")
		}
	}
}

func TestPowerTracksState(t *testing.T) {
	eng := sim.NewEngine()
	m := power.NewMeter(eng)
	ch := m.Channel("core0", power.Package)
	c := NewCore(eng, 0, DefaultParams(), ShallowGovernor{}, PerformancePolicy{Nominal: 2.2}, ch)
	if ch.Watts() != 1.25 {
		t.Fatalf("CC1 power %v", ch.Watts())
	}
	c.Enqueue(Work{Duration: 10 * sim.Microsecond})
	eng.Run(5 * sim.Microsecond) // executing
	if ch.Watts() != 5.35 {
		t.Fatalf("CC0 power %v at nominal", ch.Watts())
	}
	eng.Run(sim.Millisecond)
	if ch.Watts() != 1.25 {
		t.Fatalf("idle power %v", ch.Watts())
	}
}

func TestPowersaveFrequencyScalesServiceTime(t *testing.T) {
	eng := sim.NewEngine()
	pol := &PowersavePolicy{Min: 0.8, Max: 3.0}
	c := NewCore(eng, 0, DefaultParams(), ShallowGovernor{}, pol, nil)
	// With zero utilization history, powersave runs at Min = 0.8 GHz:
	// a 10us@2.2GHz job takes 27.5us.
	var doneAt sim.Time = -1
	c.Enqueue(Work{Duration: 10 * sim.Microsecond, OnDone: func() { doneAt = eng.Now() }})
	eng.Run(sim.Millisecond)
	want := 2*sim.Microsecond + sim.Duration(float64(10*sim.Microsecond)*2.2/0.8)
	if doneAt != want {
		t.Fatalf("done at %v, want %v (0.8GHz execution)", doneAt, want)
	}
}

func TestPowersaveUtilizationRaisesFrequency(t *testing.T) {
	p := &PowersavePolicy{Min: 0.8, Max: 3.0}
	if p.GHz() != 0.8 {
		t.Fatal("powersave should start at min")
	}
	for i := 0; i < 50; i++ {
		p.OnBusyFraction(1.0)
	}
	if p.GHz() < 2.9 {
		t.Fatalf("GHz = %v after sustained load, want near max", p.GHz())
	}
	p.OnBusyFraction(2.0)  // clamped
	p.OnBusyFraction(-1.0) // clamped
	if g := p.GHz(); g < 0.8 || g > 3.0 {
		t.Fatalf("GHz = %v out of range after clamping", g)
	}
}

func TestWakeInterrupt(t *testing.T) {
	eng := sim.NewEngine()
	c := newCore(eng)
	c.WakeInterrupt(2 * sim.Microsecond)
	eng.Run(3 * sim.Microsecond) // 2us wake + executing kernel path
	if c.State() != CC0 {
		t.Fatalf("state %v, want CC0 handling interrupt", c.State())
	}
	eng.Run(sim.Millisecond)
	if c.State() != CC1 {
		t.Fatal("should re-idle after interrupt")
	}
}

func TestTransitionCallback(t *testing.T) {
	eng := sim.NewEngine()
	c := newCore(eng)
	var transitions []CState
	c.OnTransition(func(old, new CState) { transitions = append(transitions, new) })
	c.Enqueue(Work{Duration: 5 * sim.Microsecond})
	eng.Run(sim.Millisecond)
	// CC1 -> CC0 -> CC1
	if len(transitions) != 2 || transitions[0] != CC0 || transitions[1] != CC1 {
		t.Fatalf("transitions = %v", transitions)
	}
}

func TestInCC1TreeAcrossCores(t *testing.T) {
	eng := sim.NewEngine()
	cores := make([]*Core, 4)
	for i := range cores {
		cores[i] = NewCore(eng, i, DefaultParams(), ShallowGovernor{}, PerformancePolicy{Nominal: 2.2}, nil)
	}
	// All idle at boot: each InCC1 high.
	for _, c := range cores {
		if !c.InCC1().Level() {
			t.Fatal("boot idle expected")
		}
	}
	cores[2].Enqueue(Work{Duration: 10 * sim.Microsecond})
	if cores[2].InCC1().Level() {
		t.Fatal("waking core must drop InCC1")
	}
	eng.Run(sim.Millisecond)
	if !cores[2].InCC1().Level() {
		t.Fatal("InCC1 should rise after re-idle")
	}
}

func TestGovernorAndPolicyStrings(t *testing.T) {
	if (ShallowGovernor{}).String() == "" || NewMenuGovernor().String() == "" {
		t.Fatal("governor strings empty")
	}
	if (PerformancePolicy{Nominal: 2.2}).String() == "" || (&PowersavePolicy{Min: 0.8, Max: 3.0}).String() == "" {
		t.Fatal("policy strings empty")
	}
}
