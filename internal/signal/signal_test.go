package signal

import (
	"testing"
	"testing/quick"
)

func TestLevelAndName(t *testing.T) {
	s := New("InCC1", false)
	if s.Name() != "InCC1" || s.Level() {
		t.Fatal("initial state wrong")
	}
	s.Set()
	if !s.Level() {
		t.Fatal("Set failed")
	}
	s.Unset()
	if s.Level() {
		t.Fatal("Unset failed")
	}
}

func TestSubscribeEdgesOnly(t *testing.T) {
	s := New("x", false)
	var edges []bool
	s.Subscribe(func(l bool) { edges = append(edges, l) })
	s.Set()
	s.Set() // no edge
	s.Unset()
	s.Unset() // no edge
	s.SetLevel(true)
	if len(edges) != 3 || !edges[0] || edges[1] || !edges[2] {
		t.Fatalf("edges = %v, want [true false true]", edges)
	}
}

func TestMultipleSubscribersInOrder(t *testing.T) {
	s := New("x", false)
	var order []int
	s.Subscribe(func(bool) { order = append(order, 1) })
	s.Subscribe(func(bool) { order = append(order, 2) })
	s.Set()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v", order)
	}
}

func TestSubscribeDuringNotification(t *testing.T) {
	s := New("x", false)
	lateCalls := 0
	s.Subscribe(func(bool) {
		s.Subscribe(func(bool) { lateCalls++ })
	})
	s.Set()
	if lateCalls != 0 {
		t.Fatal("late subscriber saw the edge that created it")
	}
	s.Unset()
	if lateCalls != 1 {
		t.Fatal("late subscriber should see subsequent edges")
	}
}

func TestNilSubscriberPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil subscriber should panic")
		}
	}()
	New("x", false).Subscribe(nil)
}

func TestAndTreeBasic(t *testing.T) {
	a := New("a", true)
	b := New("b", true)
	c := New("c", false)
	tree := NewAndTree("all", a, b, c)
	if tree.Output().Level() {
		t.Fatal("output should be low with one low input")
	}
	c.Set()
	if !tree.Output().Level() {
		t.Fatal("output should rise when all inputs high")
	}
	a.Unset()
	if tree.Output().Level() {
		t.Fatal("output should fall when any input falls")
	}
}

func TestAndTreeAllHighInitially(t *testing.T) {
	a := New("a", true)
	b := New("b", true)
	tree := NewAndTree("all", a, b)
	if !tree.Output().Level() {
		t.Fatal("output should start high")
	}
}

func TestAndTreeEmpty(t *testing.T) {
	tree := NewAndTree("none")
	if !tree.Output().Level() {
		t.Fatal("empty AND should be high")
	}
}

func TestAndTreeEdgeNotifications(t *testing.T) {
	// The APMU subscribes to the InCC1 tree output; it must see exactly
	// one rising edge when the last core goes idle and one falling edge
	// when the first wakes.
	cores := make([]*Signal, 10)
	for i := range cores {
		cores[i] = New("core", false)
	}
	tree := NewAndTree("InCC1", cores...)
	rises, falls := 0, 0
	tree.Output().Subscribe(func(l bool) {
		if l {
			rises++
		} else {
			falls++
		}
	})
	for _, c := range cores {
		c.Set()
	}
	if rises != 1 || falls != 0 {
		t.Fatalf("after all idle: rises=%d falls=%d", rises, falls)
	}
	cores[3].Unset()
	cores[7].Unset()
	if falls != 1 {
		t.Fatalf("falls=%d, want exactly 1", falls)
	}
	cores[3].Set()
	cores[7].Set()
	if rises != 2 {
		t.Fatalf("rises=%d, want 2", rises)
	}
}

// Property: the tree output always equals the AND of the input levels,
// under any mutation sequence.
func TestPropertyAndTreeInvariant(t *testing.T) {
	f := func(ops []uint8) bool {
		n := 8
		ins := make([]*Signal, n)
		for i := range ins {
			ins[i] = New("in", i%2 == 0)
		}
		tree := NewAndTree("out", ins...)
		check := func() bool {
			want := true
			for _, in := range ins {
				want = want && in.Level()
			}
			return tree.Output().Level() == want
		}
		if !check() {
			return false
		}
		for _, op := range ops {
			idx := int(op) % n
			if op&0x80 != 0 {
				ins[idx].Set()
			} else {
				ins[idx].Unset()
			}
			if !check() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
