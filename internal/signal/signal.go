// Package signal models the routed status/control wires of the APC
// architecture (paper Fig. 3): level-triggered signals such as InCC1,
// InL0s, AllowL0s, Allow_CKE_OFF, Ret, PwrOk, ClkGate and InPC1A, plus
// the AND-gate aggregation trees the paper uses to combine per-core and
// per-IO status lines before routing them to the APMU.
//
// Signals are logical wires: propagation is instantaneous (the real
// routing delay is absorbed into the PMU FSM cycle costs, as the paper's
// latency analysis does). Subscribers run synchronously in subscription
// order, which keeps flows deterministic.
package signal

import "fmt"

// Signal is a single-driver, many-reader boolean wire.
type Signal struct {
	name  string
	level bool
	subs  []func(bool)
}

// New creates a signal with the given initial level.
func New(name string, initial bool) *Signal {
	return &Signal{name: name, level: initial}
}

// Name returns the wire's name.
func (s *Signal) Name() string { return s.name }

// Level returns the current level.
func (s *Signal) Level() bool { return s.level }

// Subscribe registers fn to run on every level change, with the new
// level. Subscribers added during a notification do not see that
// notification.
func (s *Signal) Subscribe(fn func(level bool)) {
	if fn == nil {
		panic(fmt.Sprintf("signal: nil subscriber on %s", s.name))
	}
	s.subs = append(s.subs, fn)
}

// Set drives the wire high. No-op if already high.
func (s *Signal) Set() { s.SetLevel(true) }

// Unset drives the wire low. No-op if already low.
func (s *Signal) Unset() { s.SetLevel(false) }

// SetLevel drives the wire to the given level, notifying subscribers on
// a change.
func (s *Signal) SetLevel(level bool) {
	if s.level == level {
		return
	}
	s.level = level
	// Iterate over the current subscriber set by index so that
	// subscriptions made inside a callback do not receive this edge.
	n := len(s.subs)
	for i := 0; i < n; i++ {
		s.subs[i](level)
	}
}

// AndTree aggregates many input wires with AND gates into one output
// wire, mirroring how the paper combines neighbouring cores' InCC1 (and
// neighbouring IO controllers' InL0s) to save routing resources.
type AndTree struct {
	out  *Signal
	lows int // number of inputs currently low
}

// NewAndTree builds the tree over the given inputs. The output level is
// the AND of all current input levels; with no inputs the output is high
// (vacuous truth, same as a wired-AND with no pull-downs).
func NewAndTree(name string, inputs ...*Signal) *AndTree {
	t := &AndTree{}
	for _, in := range inputs {
		if !in.Level() {
			t.lows++
		}
	}
	t.out = New(name, t.lows == 0)
	for _, in := range inputs {
		in.Subscribe(func(level bool) {
			if level {
				t.lows--
			} else {
				t.lows++
			}
			t.out.SetLevel(t.lows == 0)
		})
	}
	return t
}

// Output returns the aggregated wire.
func (t *AndTree) Output() *Signal { return t.out }
