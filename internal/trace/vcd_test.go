package trace

import (
	"strings"
	"testing"

	"agilepkgc/internal/cpu"
	"agilepkgc/internal/signal"
	"agilepkgc/internal/sim"
	"agilepkgc/internal/soc"
)

func TestVCDBasic(t *testing.T) {
	eng := sim.NewEngine()
	a := signal.New("InCC1", false)
	b := signal.New("AllowL0s", true)
	p := NewSignalProbe(eng, 1000, a, b)

	eng.Schedule(10, func() { a.Set() })
	eng.Schedule(20, func() { b.Unset() })
	eng.Schedule(20, func() { a.Unset() })
	eng.Run(100)

	if p.Changes() != 3 {
		t.Fatalf("changes = %d, want 3", p.Changes())
	}
	var sb strings.Builder
	if err := p.WriteVCD(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"$timescale 1ns $end",
		"$var wire 1 ! InCC1 $end",
		"$var wire 1 \" AllowL0s $end",
		"#0", "#10", "#20",
		"$dumpvars",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD missing %q:\n%s", want, out)
		}
	}
	// Initial values: InCC1 low, AllowL0s high.
	if !strings.Contains(out, "0!") || !strings.Contains(out, "1\"") {
		t.Errorf("initial values wrong:\n%s", out)
	}
}

func TestVCDBufferBound(t *testing.T) {
	eng := sim.NewEngine()
	s := signal.New("x", false)
	p := NewSignalProbe(eng, 5, s)
	for i := 0; i < 20; i++ {
		s.SetLevel(i%2 == 0)
	}
	if p.Changes() > 5 {
		t.Fatalf("buffer exceeded: %d", p.Changes())
	}
	if p.Dropped() == 0 {
		t.Fatal("drops not counted")
	}
}

func TestVCDDuplicateNamePanics(t *testing.T) {
	eng := sim.NewEngine()
	a := signal.New("dup", false)
	b := signal.New("dup", false)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate wire names should panic")
		}
	}()
	NewSignalProbe(eng, 10, a, b)
}

func TestVCDCapPanics(t *testing.T) {
	eng := sim.NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("zero cap should panic")
		}
	}()
	NewSignalProbe(eng, 0)
}

// Probe the real APC fabric through one PC1A entry/exit cycle and check
// the waveform tells the Fig. 4 story in order:
// AllowL0s ↑ … InL0s ↑ … InPC1A ↑ … (wake) InPC1A ↓ …
func TestVCDOnAPCFabric(t *testing.T) {
	sys := soc.New(soc.DefaultConfig(soc.CPC1A))
	wires := []*signal.Signal{
		sys.Links[0].AllowL0s(),
		sys.Links[0].InL0s(),
		sys.MCs[0].AllowCKEOff(),
		sys.APMU.InPC1A(),
	}
	p := NewSignalProbe(sys.Engine, 10000, wires...)
	sys.Engine.Run(sim.Millisecond)
	sys.Cores[0].Enqueue(cpu.Work{Duration: 2 * sim.Microsecond})
	sys.Engine.Run(sys.Engine.Now() + sim.Millisecond)

	var sb strings.Builder
	if err := p.WriteVCD(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if p.Changes() < 6 {
		t.Fatalf("only %d changes through a full cycle", p.Changes())
	}
	// The InPC1A wire must both rise and fall in the dump.
	id := "$" // 4th wire → index 3 → id "$"
	if !strings.Contains(out, "1"+id) || !strings.Contains(out, "0"+id) {
		t.Errorf("InPC1A did not toggle in VCD:\n%s", out[:min(len(out), 800)])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
