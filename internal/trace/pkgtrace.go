package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"agilepkgc/internal/pmu"
	"agilepkgc/internal/sim"
)

// PkgEvent is one package C-state transition.
type PkgEvent struct {
	At   sim.Time
	From pmu.PkgState
	To   pmu.PkgState
}

// PkgStateSource is anything that reports package C-state transitions —
// both the firmware GPMU and the APC APMU satisfy it.
type PkgStateSource interface {
	State() pmu.PkgState
	OnTransition(func(old, new pmu.PkgState))
}

// PkgTracer records package C-state transitions with residency
// accounting and a bounded event log (the newest events win, like a
// hardware trace buffer).
type PkgTracer struct {
	eng   *sim.Engine
	start sim.Time

	state     pmu.PkgState
	since     sim.Time
	residency map[pmu.PkgState]sim.Duration
	entries   map[pmu.PkgState]uint64

	ring    []PkgEvent
	ringCap int
	dropped uint64
}

// NewPkgTracer attaches to a state source. cap bounds the retained
// event log (≥1).
func NewPkgTracer(eng *sim.Engine, src PkgStateSource, ringCap int) *PkgTracer {
	if ringCap < 1 {
		panic("trace: ring capacity must be >= 1")
	}
	t := &PkgTracer{
		eng:       eng,
		start:     eng.Now(),
		state:     src.State(),
		since:     eng.Now(),
		residency: make(map[pmu.PkgState]sim.Duration),
		entries:   make(map[pmu.PkgState]uint64),
		ringCap:   ringCap,
	}
	src.OnTransition(func(old, new pmu.PkgState) { t.transition(old, new) })
	return t
}

func (t *PkgTracer) transition(old, new pmu.PkgState) {
	now := t.eng.Now()
	t.residency[old] += now - t.since
	t.since = now
	t.state = new
	t.entries[new]++
	if len(t.ring) >= t.ringCap {
		// Drop the oldest half to amortize copying.
		drop := t.ringCap / 2
		if drop == 0 {
			drop = 1
		}
		t.dropped += uint64(drop)
		t.ring = append(t.ring[:0], t.ring[drop:]...)
	}
	t.ring = append(t.ring, PkgEvent{At: now, From: old, To: new})
}

// Finalize closes the open residency interval.
func (t *PkgTracer) Finalize() {
	now := t.eng.Now()
	t.residency[t.state] += now - t.since
	t.since = now
}

// Residency returns accumulated time in state s (call Finalize first).
func (t *PkgTracer) Residency(s pmu.PkgState) sim.Duration { return t.residency[s] }

// ResidencyFraction returns the state's share of traced time.
func (t *PkgTracer) ResidencyFraction(s pmu.PkgState) float64 {
	el := t.eng.Now() - t.start
	if el == 0 {
		return 0
	}
	return float64(t.residency[s]) / float64(el)
}

// Entries returns the number of entries into state s.
func (t *PkgTracer) Entries(s pmu.PkgState) uint64 { return t.entries[s] }

// Events returns the retained transition log (oldest first).
func (t *PkgTracer) Events() []PkgEvent { return t.ring }

// Dropped returns how many events were evicted from the ring.
func (t *PkgTracer) Dropped() uint64 { return t.dropped }

// Summary renders residency fractions sorted by share.
func (t *PkgTracer) Summary() string {
	type row struct {
		s pmu.PkgState
		f float64
	}
	var rows []row
	//apcvet:ordered the sort below totally orders rows (share desc, state asc on ties)
	for s := range t.residency {
		rows = append(rows, row{s, t.ResidencyFraction(s)})
	}
	// Tie-break equal shares by state so the rendering never inherits
	// map iteration order (two states at 0.00% are common).
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].f != rows[j].f {
			return rows[i].f > rows[j].f
		}
		return rows[i].s < rows[j].s
	})
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "%s=%.2f%% ", r.s, r.f*100)
	}
	return strings.TrimSpace(b.String())
}

// WriteCSV emits the event log as CSV (time_ns,from,to) for external
// plotting.
func (t *PkgTracer) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "time_ns,from,to"); err != nil {
		return err
	}
	for _, ev := range t.ring {
		if _, err := fmt.Fprintf(w, "%d,%s,%s\n", int64(ev.At), ev.From, ev.To); err != nil {
			return err
		}
	}
	return nil
}

// WriteIdlePeriodsCSV emits the core tracer's idle-period summary
// quantiles as CSV — the data behind paper Fig. 6(c).
func (t *Tracer) WriteIdlePeriodsCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "quantile,idle_period_seconds"); err != nil {
		return err
	}
	h := t.IdlePeriods()
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99} {
		if _, err := fmt.Fprintf(w, "%g,%g\n", q, h.Quantile(q)); err != nil {
			return err
		}
	}
	return nil
}
