package trace

import (
	"strings"
	"testing"

	apc "agilepkgc/internal/core"
	"agilepkgc/internal/cpu"
	"agilepkgc/internal/pmu"
	"agilepkgc/internal/sim"
	"agilepkgc/internal/soc"
)

func newAPCSystem() *soc.System {
	return soc.New(soc.DefaultConfig(soc.CPC1A))
}

func TestPkgTracerResidency(t *testing.T) {
	sys := newAPCSystem()
	pt := NewPkgTracer(sys.Engine, sys.APMU, 1024)
	sys.Engine.Run(10 * sim.Millisecond)
	pt.Finalize()
	if f := pt.ResidencyFraction(pmu.PC1A); f < 0.999 {
		t.Fatalf("idle PC1A residency %v, want ~1", f)
	}
	if pt.Entries(pmu.PC1A) != 1 {
		t.Fatalf("PC1A entries = %d, want 1", pt.Entries(pmu.PC1A))
	}
}

func TestPkgTracerEventsAndCSV(t *testing.T) {
	sys := newAPCSystem()
	pt := NewPkgTracer(sys.Engine, sys.APMU, 1024)
	sys.Engine.Run(sim.Millisecond)
	for i := 0; i < 5; i++ {
		sys.Cores[0].Enqueue(cpu.Work{Duration: 3 * sim.Microsecond})
		sys.Engine.Run(sys.Engine.Now() + 100*sim.Microsecond)
	}
	pt.Finalize()

	evs := pt.Events()
	if len(evs) < 15 { // 5 × (PC1A→ACC1→PC0→ACC1→PC1A-ish)
		t.Fatalf("only %d events", len(evs))
	}
	// Events are time-ordered and chain (to of one == from of next).
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatal("events out of order")
		}
		if evs[i].From != evs[i-1].To {
			t.Fatalf("event chain broken at %d: %v -> %v then %v", i, evs[i-1].From, evs[i-1].To, evs[i].From)
		}
	}

	var sb strings.Builder
	if err := pt.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[0] != "time_ns,from,to" {
		t.Fatalf("csv header wrong: %q", lines[0])
	}
	if len(lines) != len(evs)+1 {
		t.Fatalf("csv rows %d, want %d", len(lines)-1, len(evs))
	}
	if pt.Summary() == "" {
		t.Fatal("summary empty")
	}
}

func TestPkgTracerRingEviction(t *testing.T) {
	sys := newAPCSystem()
	pt := NewPkgTracer(sys.Engine, sys.APMU, 8)
	sys.Engine.Run(sim.Millisecond)
	for i := 0; i < 20; i++ {
		sys.Cores[i%10].Enqueue(cpu.Work{Duration: 2 * sim.Microsecond})
		sys.Engine.Run(sys.Engine.Now() + 50*sim.Microsecond)
	}
	if len(pt.Events()) > 8 {
		t.Fatalf("ring grew past capacity: %d", len(pt.Events()))
	}
	if pt.Dropped() == 0 {
		t.Fatal("expected evictions")
	}
}

func TestPkgTracerWorksWithGPMU(t *testing.T) {
	sys := soc.New(soc.DefaultConfig(soc.Cdeep))
	pt := NewPkgTracer(sys.Engine, sys.GPMU, 256)
	sys.ForceAllCC6()
	pt.Finalize()
	if pt.Entries(pmu.PC6) == 0 {
		t.Fatal("GPMU PC6 entry not traced")
	}
	if pt.ResidencyFraction(pmu.PC6) < 0.1 {
		t.Fatalf("PC6 residency %v too small", pt.ResidencyFraction(pmu.PC6))
	}
}

func TestPkgTracerCapPanics(t *testing.T) {
	sys := newAPCSystem()
	defer func() {
		if recover() == nil {
			t.Fatal("cap 0 should panic")
		}
	}()
	NewPkgTracer(sys.Engine, sys.APMU, 0)
}

func TestIdlePeriodsCSV(t *testing.T) {
	sys := newAPCSystem()
	tr := New(sys.Engine, sys.Cores)
	for i := 0; i < 10; i++ {
		sys.Cores[0].Enqueue(cpu.Work{Duration: 5 * sim.Microsecond})
		sys.Engine.Run(sys.Engine.Now() + 80*sim.Microsecond)
	}
	tr.Finalize()
	var sb strings.Builder
	if err := tr.WriteIdlePeriodsCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[0] != "quantile,idle_period_seconds" || len(lines) != 8 {
		t.Fatalf("csv shape wrong: %d lines", len(lines))
	}
}

// Keep the apc import honest (the tracer is generic over both PMUs).
var _ PkgStateSource = (*apc.APMU)(nil)
var _ PkgStateSource = (*pmu.GPMU)(nil)
