// Package trace is the measurement layer of the evaluation: a
// SoCWatch-like C-state tracer that records per-core residencies,
// full-system-idle periods (the PC1A opportunity), and the package
// C-state residency — including the 10 µs sampling floor of the real
// SoCWatch tool, which the paper notes makes its reported PC1A
// opportunity an *under*-estimate (Sec. 6).
package trace

import (
	"agilepkgc/internal/cpu"
	"agilepkgc/internal/sim"
	"agilepkgc/internal/stats"
)

// SoCWatchFloor is the shortest idle period the real tracing tool can
// observe (paper Sec. 6: "SoCwatch does not record idle periods shorter
// than 10 us").
const SoCWatchFloor = 10 * sim.Microsecond

// Tracer observes a set of cores.
type Tracer struct {
	eng   *sim.Engine
	cores []*cpu.Core

	start sim.Time

	// Per-core residency accounting.
	coreState  []cpu.CState
	coreSince  []sim.Time
	coreRes    []map[cpu.CState]sim.Duration
	transCount uint64

	// Full-idle (all cores in CC1 or deeper) tracking.
	idleCores    int
	allIdleSince sim.Time
	inAllIdle    bool

	idlePeriods   *stats.Histogram // seconds
	trueIdle      sim.Duration
	censoredIdle  sim.Duration // only periods ≥ SoCWatchFloor
	idleCount     uint64
	censoredCount uint64

	// Distribution of the number of cores active shortly after each
	// full-idle period ends (paper Sec. 6, used by the performance
	// model).
	activeAfter stats.Summary
	wakeProbe   sim.Duration
}

// New attaches a tracer to the cores. Call it before driving load so
// that initial states are observed correctly.
func New(eng *sim.Engine, cores []*cpu.Core) *Tracer {
	t := &Tracer{
		eng:         eng,
		cores:       cores,
		start:       eng.Now(),
		coreState:   make([]cpu.CState, len(cores)),
		coreSince:   make([]sim.Time, len(cores)),
		coreRes:     make([]map[cpu.CState]sim.Duration, len(cores)),
		idlePeriods: stats.NewDurationHistogram(),
		wakeProbe:   2 * sim.Microsecond,
	}
	for i, c := range cores {
		i := i
		t.coreState[i] = c.State()
		t.coreSince[i] = eng.Now()
		t.coreRes[i] = make(map[cpu.CState]sim.Duration)
		if c.State().Idle() {
			t.idleCores++
		}
		c.OnTransition(func(old, new cpu.CState) { t.coreTransition(i, old, new) })
	}
	if t.idleCores == len(cores) && len(cores) > 0 {
		t.inAllIdle = true
		t.allIdleSince = eng.Now()
	}
	return t
}

func (t *Tracer) coreTransition(i int, old, new cpu.CState) {
	now := t.eng.Now()
	t.transCount++
	t.coreRes[i][old] += now - t.coreSince[i]
	t.coreSince[i] = now
	t.coreState[i] = new

	wasAll := t.idleCores == len(t.cores)
	if old.Idle() && !new.Idle() {
		t.idleCores--
	} else if !old.Idle() && new.Idle() {
		t.idleCores++
	}
	isAll := t.idleCores == len(t.cores)

	switch {
	case wasAll && !isAll:
		t.endAllIdle(now)
	case !wasAll && isAll:
		t.inAllIdle = true
		t.allIdleSince = now
	}
}

// Note on wake timing: core InCC1 wires drop at wake *start*, but
// cpu.Core transitions its state when the exit completes. The tracer uses
// the state-transition view, which matches hardware residency counters:
// the exit latency is attributed to the idle state being left.

func (t *Tracer) endAllIdle(now sim.Time) {
	if !t.inAllIdle {
		return
	}
	t.inAllIdle = false
	d := now - t.allIdleSince
	t.idleCount++
	t.trueIdle += d
	t.idlePeriods.Add(d.Seconds())
	if d >= SoCWatchFloor {
		t.censoredIdle += d
		t.censoredCount++
	}
	// Probe how many cores are active shortly after the wake.
	t.eng.Schedule(t.wakeProbe, func() {
		active := 0
		for _, c := range t.cores {
			if !c.InCC1().Level() {
				active++
			}
		}
		if active == 0 {
			active = 1 // the waking core already went back to sleep
		}
		t.activeAfter.Add(float64(active))
	})
}

// Finalize closes open accounting intervals at the current time. Call it
// once after the run; accessors below assume it has been called.
func (t *Tracer) Finalize() {
	now := t.eng.Now()
	for i := range t.cores {
		t.coreRes[i][t.coreState[i]] += now - t.coreSince[i]
		t.coreSince[i] = now
	}
	if t.inAllIdle {
		d := now - t.allIdleSince
		t.trueIdle += d
		t.idleCount++
		t.idlePeriods.Add(d.Seconds())
		if d >= SoCWatchFloor {
			t.censoredIdle += d
			t.censoredCount++
		}
		t.allIdleSince = now
	}
}

// Elapsed returns the traced wall time.
func (t *Tracer) Elapsed() sim.Duration { return t.eng.Now() - t.start }

// CoreResidency returns the fraction of time core i spent in state s.
func (t *Tracer) CoreResidency(i int, s cpu.CState) float64 {
	el := t.Elapsed()
	if el == 0 {
		return 0
	}
	return float64(t.coreRes[i][s]) / float64(el)
}

// MeanResidency returns the average across cores of the per-core
// residency in state s — paper Fig. 6(a)'s metric.
func (t *Tracer) MeanResidency(s cpu.CState) float64 {
	if len(t.cores) == 0 {
		return 0
	}
	var sum float64
	for i := range t.cores {
		sum += t.CoreResidency(i, s)
	}
	return sum / float64(len(t.cores))
}

// AllIdleFraction returns the true fraction of time all cores were idle
// simultaneously — the physical PC1A opportunity.
func (t *Tracer) AllIdleFraction() float64 {
	el := t.Elapsed()
	if el == 0 {
		return 0
	}
	return float64(t.trueIdle) / float64(el)
}

// CensoredAllIdleFraction applies the SoCWatch 10 µs floor — the
// opportunity as the paper's methodology would measure it (Fig. 6(b)).
func (t *Tracer) CensoredAllIdleFraction() float64 {
	el := t.Elapsed()
	if el == 0 {
		return 0
	}
	return float64(t.censoredIdle) / float64(el)
}

// IdlePeriods returns the histogram of full-idle period lengths in
// seconds (Fig. 6(c)).
func (t *Tracer) IdlePeriods() *stats.Histogram { return t.idlePeriods }

// IdlePeriodCount returns the number of completed full-idle periods —
// each one is a PC1A entry/exit pair in the projected system.
func (t *Tracer) IdlePeriodCount() uint64 { return t.idleCount }

// CensoredIdlePeriodCount returns periods the SoCWatch floor would see.
func (t *Tracer) CensoredIdlePeriodCount() uint64 { return t.censoredCount }

// Transitions returns the total number of core C-state transitions.
func (t *Tracer) Transitions() uint64 { return t.transCount }

// ActiveCoresAfterIdle returns the distribution summary of how many
// cores were active 2 µs after each full-idle period ended.
func (t *Tracer) ActiveCoresAfterIdle() *stats.Summary { return &t.activeAfter }
