package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"agilepkgc/internal/signal"
	"agilepkgc/internal/sim"
)

// SignalProbe records level changes on a set of wires (the Fig. 3 signal
// fabric: InCC1, InL0s, AllowL0s, Allow_CKE_OFF, Ret, PwrOk, InPC1A...)
// and dumps them as a Value Change Dump (VCD) file viewable in any
// waveform viewer — the natural debugging artifact for a hardware flow
// like the APMU FSM.
type SignalProbe struct {
	eng     *sim.Engine
	names   []string
	ids     map[string]string // wire name → VCD identifier
	init    map[string]bool   // level at probe attach
	chang   []sigChange
	max     int
	dropped uint64
}

type sigChange struct {
	at    sim.Time
	name  string
	level bool
}

// NewSignalProbe attaches to the given wires. maxChanges bounds memory
// (older changes are retained; once full, further changes are dropped
// and counted — waveforms are usually examined from t=0).
func NewSignalProbe(eng *sim.Engine, maxChanges int, wires ...*signal.Signal) *SignalProbe {
	if maxChanges < 1 {
		panic("trace: maxChanges must be >= 1")
	}
	p := &SignalProbe{
		eng:  eng,
		ids:  make(map[string]string),
		init: make(map[string]bool),
		max:  maxChanges,
	}
	for i, w := range wires {
		name := w.Name()
		if _, dup := p.ids[name]; dup {
			panic(fmt.Sprintf("trace: duplicate wire name %q", name))
		}
		p.names = append(p.names, name)
		p.ids[name] = vcdID(i)
		p.init[name] = w.Level()
		w.Subscribe(func(level bool) {
			if len(p.chang) >= p.max {
				p.dropped++
				return
			}
			p.chang = append(p.chang, sigChange{at: eng.Now(), name: name, level: level})
		})
	}
	return p
}

// Changes returns the number of recorded level changes.
func (p *SignalProbe) Changes() int { return len(p.chang) }

// Dropped returns how many changes exceeded the buffer.
func (p *SignalProbe) Dropped() uint64 { return p.dropped }

// WriteVCD emits the waveform in VCD format with 1 ns timescale.
func (p *SignalProbe) WriteVCD(w io.Writer) error {
	var b strings.Builder
	b.WriteString("$timescale 1ns $end\n$scope module apc $end\n")
	for _, name := range p.names {
		fmt.Fprintf(&b, "$var wire 1 %s %s $end\n", p.ids[name], sanitize(name))
	}
	b.WriteString("$upscope $end\n$enddefinitions $end\n")

	// Initial values.
	b.WriteString("#0\n$dumpvars\n")
	for _, name := range p.names {
		fmt.Fprintf(&b, "%s%s\n", bit(p.init[name]), p.ids[name])
	}
	b.WriteString("$end\n")

	// Changes, grouped by timestamp (already time-ordered — the engine
	// is single-threaded and monotonic).
	sort.SliceStable(p.chang, func(i, j int) bool { return p.chang[i].at < p.chang[j].at })
	var last sim.Time = -1
	for _, c := range p.chang {
		if c.at != last {
			fmt.Fprintf(&b, "#%d\n", int64(c.at))
			last = c.at
		}
		fmt.Fprintf(&b, "%s%s\n", bit(c.level), p.ids[c.name])
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func bit(level bool) string {
	if level {
		return "1"
	}
	return "0"
}

// vcdID maps an index to a compact printable VCD identifier.
func vcdID(i int) string {
	const chars = "!\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	if i < len(chars) {
		return string(chars[i])
	}
	return fmt.Sprintf("z%d", i)
}

// sanitize makes a wire name legal as a VCD reference.
func sanitize(name string) string {
	return strings.NewReplacer(" ", "_", "$", "_").Replace(name)
}
