package trace

import (
	"math"
	"testing"

	"agilepkgc/internal/cpu"
	"agilepkgc/internal/sim"
)

func mkCores(eng *sim.Engine, n int) []*cpu.Core {
	cores := make([]*cpu.Core, n)
	for i := range cores {
		cores[i] = cpu.NewCore(eng, i, cpu.DefaultParams(),
			cpu.ShallowGovernor{}, cpu.PerformancePolicy{Nominal: 2.2}, nil)
	}
	return cores
}

func TestIdleSystemFullResidency(t *testing.T) {
	eng := sim.NewEngine()
	cores := mkCores(eng, 4)
	tr := New(eng, cores)
	eng.Run(10 * sim.Millisecond)
	tr.Finalize()

	if f := tr.AllIdleFraction(); f != 1.0 {
		t.Fatalf("AllIdleFraction = %v on an idle system", f)
	}
	if f := tr.CensoredAllIdleFraction(); f != 1.0 {
		t.Fatalf("censored fraction = %v, the single long period passes the floor", f)
	}
	if r := tr.MeanResidency(cpu.CC1); r != 1.0 {
		t.Fatalf("CC1 residency = %v", r)
	}
	if tr.IdlePeriodCount() != 1 {
		t.Fatalf("idle periods = %d (the open one is closed by Finalize)", tr.IdlePeriodCount())
	}
}

func TestSingleBusyEpisode(t *testing.T) {
	eng := sim.NewEngine()
	cores := mkCores(eng, 2)
	tr := New(eng, cores)
	eng.Run(sim.Millisecond)
	cores[0].Enqueue(cpu.Work{Duration: 100 * sim.Microsecond})
	eng.Run(10 * sim.Millisecond)
	tr.Finalize()

	// Two idle periods: [0, wake-complete) and [re-idle, end).
	if tr.IdlePeriodCount() != 2 {
		t.Fatalf("idle periods = %d, want 2", tr.IdlePeriodCount())
	}
	// Core 0 spent ~100us of 10ms in CC0 (plus the 1us idle-entry
	// window): ~1%.
	r := tr.CoreResidency(0, cpu.CC0)
	if r < 0.005 || r > 0.02 {
		t.Fatalf("core0 CC0 residency %v, want ~0.01", r)
	}
	// Core 1 never woke.
	if tr.CoreResidency(1, cpu.CC1) != 1.0 {
		t.Fatalf("core1 CC1 residency %v", tr.CoreResidency(1, cpu.CC1))
	}
	// All-idle fraction ≈ 1 - (wake 2us + 100us + idle entry 1us)/10ms.
	f := tr.AllIdleFraction()
	want := 1.0 - 103e-6/10e-3
	if math.Abs(f-want) > 0.003 {
		t.Fatalf("AllIdleFraction %v, want ~%v", f, want)
	}
}

func TestCensoringDropsShortPeriods(t *testing.T) {
	eng := sim.NewEngine()
	cores := mkCores(eng, 1)
	tr := New(eng, cores)
	// Alternate: 3us busy, ~5us idle (below the 10us floor), many times;
	// then one long 100ms idle tail.
	for i := 0; i < 100; i++ {
		eng.Run(eng.Now() + 5*sim.Microsecond)
		cores[0].Enqueue(cpu.Work{Duration: 3 * sim.Microsecond})
		eng.Run(eng.Now() + 6*sim.Microsecond)
	}
	eng.Run(eng.Now() + 100*sim.Millisecond)
	tr.Finalize()

	trueF := tr.AllIdleFraction()
	censF := tr.CensoredAllIdleFraction()
	if censF >= trueF {
		t.Fatalf("censored %v must be < true %v when short gaps exist", censF, trueF)
	}
	if tr.CensoredIdlePeriodCount() >= tr.IdlePeriodCount() {
		t.Fatalf("censored count %d should be below total %d",
			tr.CensoredIdlePeriodCount(), tr.IdlePeriodCount())
	}
}

func TestIdlePeriodHistogram(t *testing.T) {
	eng := sim.NewEngine()
	cores := mkCores(eng, 1)
	tr := New(eng, cores)
	// Deterministic idle gaps of ~50us (within 20-200us band).
	for i := 0; i < 50; i++ {
		cores[0].Enqueue(cpu.Work{Duration: 10 * sim.Microsecond})
		eng.Run(eng.Now() + 63*sim.Microsecond) // 2 wake + 10 run + 1 entry + 50 idle
	}
	tr.Finalize()
	h := tr.IdlePeriods()
	if h.Count() == 0 {
		t.Fatal("no idle periods recorded")
	}
	frac := h.FractionBetween(20e-6, 200e-6)
	if frac < 0.9 {
		t.Fatalf("fraction of idle periods in 20-200us = %v, want ~1", frac)
	}
}

func TestTransitionsCounted(t *testing.T) {
	eng := sim.NewEngine()
	cores := mkCores(eng, 2)
	tr := New(eng, cores)
	for i := 0; i < 10; i++ {
		cores[i%2].Enqueue(cpu.Work{Duration: 5 * sim.Microsecond})
		eng.Run(eng.Now() + 100*sim.Microsecond)
	}
	tr.Finalize()
	// Each episode: CC1→CC0 and CC0→CC1 = 2 transitions.
	if tr.Transitions() != 20 {
		t.Fatalf("transitions = %d, want 20", tr.Transitions())
	}
}

func TestActiveCoresAfterIdle(t *testing.T) {
	eng := sim.NewEngine()
	cores := mkCores(eng, 4)
	tr := New(eng, cores)
	eng.Run(sim.Millisecond)
	// Wake exactly one core per episode.
	for i := 0; i < 20; i++ {
		cores[0].Enqueue(cpu.Work{Duration: 20 * sim.Microsecond})
		eng.Run(eng.Now() + 500*sim.Microsecond)
	}
	tr.Finalize()
	s := tr.ActiveCoresAfterIdle()
	if s.Count() == 0 {
		t.Fatal("no samples")
	}
	if s.Mean() < 0.99 || s.Mean() > 1.5 {
		t.Fatalf("mean active-after-idle %v, want ~1 (single-core wakes)", s.Mean())
	}
}

func TestElapsed(t *testing.T) {
	eng := sim.NewEngine()
	eng.Run(5 * sim.Millisecond)
	cores := mkCores(eng, 1)
	tr := New(eng, cores)
	eng.Run(eng.Now() + 7*sim.Millisecond)
	if tr.Elapsed() != 7*sim.Millisecond {
		t.Fatalf("Elapsed = %v, want 7ms (tracer attached late)", tr.Elapsed())
	}
}

func TestResidencySumsToOne(t *testing.T) {
	eng := sim.NewEngine()
	cores := mkCores(eng, 3)
	tr := New(eng, cores)
	for i := 0; i < 30; i++ {
		cores[i%3].Enqueue(cpu.Work{Duration: sim.Duration(5+i) * sim.Microsecond})
		eng.Run(eng.Now() + 70*sim.Microsecond)
	}
	tr.Finalize()
	for i := range cores {
		sum := 0.0
		for _, s := range []cpu.CState{cpu.CC0, cpu.CC1, cpu.CC1E, cpu.CC6} {
			sum += tr.CoreResidency(i, s)
		}
		if math.Abs(sum-1.0) > 1e-9 {
			t.Fatalf("core %d residencies sum to %v", i, sum)
		}
	}
}
