// Package msr emulates the model-specific-register surface through which
// real tools observe the quantities this simulator computes natively:
//
//   - MSR_RAPL_POWER_UNIT / MSR_PKG_ENERGY_STATUS / MSR_DRAM_ENERGY_STATUS:
//     cumulative energy as a 32-bit counter in 15.3 µJ units that *wraps*
//     — the artifact every RAPL consumer (powertop, SoCWatch, the
//     paper's measurement scripts) must handle.
//   - Per-core C-state residency counters (MSR_CORE_C1/C6_RESIDENCY) and
//     package residency counters (MSR_PKG_C2/C6_RESIDENCY), counting at
//     the TSC rate.
//
// The package exists so that measurement code in this repository can be
// written exactly like its real-world counterpart (sample counters,
// subtract, handle wrap), validating that the simulator's observables
// line up with the paper's methodology end to end.
package msr

import (
	"fmt"

	"agilepkgc/internal/cpu"
	"agilepkgc/internal/pmu"
	"agilepkgc/internal/power"
	"agilepkgc/internal/sim"
	"agilepkgc/internal/soc"
)

// Register addresses (Intel SDM vol. 4, SKX).
const (
	MSRRaplPowerUnit    = 0x606
	MSRPkgEnergyStatus  = 0x611
	MSRDramEnergyStatus = 0x619
	MSRCoreC1Residency  = 0x660 // per-core, counts at TSC rate
	MSRCoreC6Residency  = 0x3FD
	MSRPkgC2Residency   = 0x60D
	MSRPkgC6Residency   = 0x3F9
)

// EnergyUnitJoules is the default RAPL energy unit: 1/2^16 J ≈ 15.3 µJ
// (ESU=16 in MSR_RAPL_POWER_UNIT).
const EnergyUnitJoules = 1.0 / 65536

// TSCHz is the timestamp-counter frequency used by residency counters.
const TSCHz = 2.2e9

// File is a read-only MSR file for one simulated system.
type File struct {
	sys *soc.System
}

// New attaches an MSR file to a system.
func New(sys *soc.System) *File { return &File{sys: sys} }

// Read returns the register value, or an error for unknown addresses.
// Core-scoped registers take the core index; package-scoped registers
// ignore it.
func (f *File) Read(addr uint32, core int) (uint64, error) {
	switch addr {
	case MSRRaplPowerUnit:
		// Power unit 1/8 W (PU=3), energy unit 2^-16 J (ESU=16), time
		// unit 976 µs (TU=10) — the SKX layout.
		return 3 | 16<<8 | 10<<16, nil
	case MSRPkgEnergyStatus:
		return f.energyCounter(power.Package), nil
	case MSRDramEnergyStatus:
		return f.energyCounter(power.DRAM), nil
	case MSRCoreC1Residency:
		return f.coreResidency(core, cpu.CC1)
	case MSRCoreC6Residency:
		return f.coreResidency(core, cpu.CC6)
	case MSRPkgC2Residency:
		return f.pkgResidency(pmu.PC2), nil
	case MSRPkgC6Residency:
		return f.pkgResidency(pmu.PC6), nil
	default:
		return 0, fmt.Errorf("msr: unimplemented register %#x", addr)
	}
}

// energyCounter converts cumulative joules into the wrapped 32-bit
// 15.3 µJ counter.
func (f *File) energyCounter(d power.Domain) uint64 {
	units := f.sys.Meter.Energy(d) / EnergyUnitJoules
	return uint64(units) & 0xFFFFFFFF
}

func (f *File) coreResidency(core int, s cpu.CState) (uint64, error) {
	if core < 0 || core >= len(f.sys.Cores) {
		return 0, fmt.Errorf("msr: core %d out of range", core)
	}
	// cpu.Core does not retain per-state residency; the MSR layer
	// maintains it via transition subscription — see Attach.
	return 0, fmt.Errorf("msr: core residency requires an attached Monitor")
}

func (f *File) pkgResidency(s pmu.PkgState) uint64 {
	ticks := f.sys.GPMU.Residency(s).Seconds() * TSCHz
	return uint64(ticks)
}

// Monitor augments File with per-core residency counters, maintained by
// subscribing to core transitions. Create it once, before driving load.
type Monitor struct {
	*File
	eng   *sim.Engine
	state []cpu.CState
	since []sim.Time
	resid [][4]sim.Duration
}

// NewMonitor attaches residency tracking to a fresh system.
func NewMonitor(sys *soc.System) *Monitor {
	m := &Monitor{
		File:  New(sys),
		eng:   sys.Engine,
		state: make([]cpu.CState, len(sys.Cores)),
		since: make([]sim.Time, len(sys.Cores)),
		resid: make([][4]sim.Duration, len(sys.Cores)),
	}
	for i, c := range sys.Cores {
		i := i
		m.state[i] = c.State()
		m.since[i] = sys.Engine.Now()
		c.OnTransition(func(old, new cpu.CState) {
			m.resid[i][old] += m.eng.Now() - m.since[i]
			m.since[i] = m.eng.Now()
			m.state[i] = new
		})
	}
	return m
}

// Read implements the full register set including core residencies.
func (m *Monitor) Read(addr uint32, core int) (uint64, error) {
	switch addr {
	case MSRCoreC1Residency, MSRCoreC6Residency:
		if core < 0 || core >= len(m.state) {
			return 0, fmt.Errorf("msr: core %d out of range", core)
		}
		s := cpu.CC1
		if addr == MSRCoreC6Residency {
			s = cpu.CC6
		}
		d := m.resid[core][s]
		if m.state[core] == s {
			d += m.eng.Now() - m.since[core]
		}
		return uint64(d.Seconds() * TSCHz), nil
	default:
		return m.File.Read(addr, core)
	}
}

// EnergyDelta computes joules between two wrapped energy-counter
// samples, handling a single wraparound — the idiom every RAPL consumer
// implements.
func EnergyDelta(before, after uint64) float64 {
	before &= 0xFFFFFFFF
	after &= 0xFFFFFFFF
	var units uint64
	if after >= before {
		units = after - before
	} else {
		units = (1<<32 - before) + after
	}
	return float64(units) * EnergyUnitJoules
}
