package msr

import (
	"math"
	"testing"

	"agilepkgc/internal/cpu"
	"agilepkgc/internal/power"
	"agilepkgc/internal/sim"
	"agilepkgc/internal/soc"
)

func TestPowerUnitRegister(t *testing.T) {
	sys := soc.New(soc.DefaultConfig(soc.Cshallow))
	f := New(sys)
	v, err := f.Read(MSRRaplPowerUnit, 0)
	if err != nil {
		t.Fatal(err)
	}
	if esu := (v >> 8) & 0x1F; esu != 16 {
		t.Fatalf("ESU = %d, want 16 (15.3uJ units)", esu)
	}
}

func TestEnergyCounterMatchesMeter(t *testing.T) {
	sys := soc.New(soc.DefaultConfig(soc.Cshallow))
	f := New(sys)
	before, _ := f.Read(MSRPkgEnergyStatus, 0)
	sys.Engine.Run(100 * sim.Millisecond) // idle at ~44 W → 4.4 J
	after, _ := f.Read(MSRPkgEnergyStatus, 0)

	got := EnergyDelta(before, after)
	want := sys.Meter.Energy(power.Package)
	if math.Abs(got-want) > 2*EnergyUnitJoules {
		t.Fatalf("MSR energy %v J vs meter %v J", got, want)
	}
	if got < 4.0 || got > 5.0 {
		t.Fatalf("idle 100ms energy %v J, want ~4.4", got)
	}
}

func TestDramEnergyCounter(t *testing.T) {
	sys := soc.New(soc.DefaultConfig(soc.Cshallow))
	f := New(sys)
	b, _ := f.Read(MSRDramEnergyStatus, 0)
	sys.Engine.Run(100 * sim.Millisecond) // 5.5 W → 0.55 J
	a, _ := f.Read(MSRDramEnergyStatus, 0)
	got := EnergyDelta(b, a)
	if got < 0.5 || got > 0.6 {
		t.Fatalf("DRAM energy %v J, want ~0.55", got)
	}
}

func TestEnergyDeltaWraparound(t *testing.T) {
	// Counter wraps at 2^32 units ≈ 65.5 kJ.
	before := uint64(0xFFFFFF00)
	after := uint64(0x100)
	got := EnergyDelta(before, after)
	want := float64(0x200) * EnergyUnitJoules
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("wrapped delta %v, want %v", got, want)
	}
	if EnergyDelta(5, 5) != 0 {
		t.Fatal("zero delta wrong")
	}
}

func TestCoreResidencyCounters(t *testing.T) {
	sys := soc.New(soc.DefaultConfig(soc.Cshallow))
	m := NewMonitor(sys)
	sys.Cores[0].Enqueue(cpu.Work{Duration: sim.Millisecond})
	sys.Engine.Run(10 * sim.Millisecond)

	// Core 0: ~9ms CC1 of 10ms (1ms work + 2us wake + 1us entry).
	v, err := m.Read(MSRCoreC1Residency, 0)
	if err != nil {
		t.Fatal(err)
	}
	sec := float64(v) / TSCHz
	if sec < 8.5e-3 || sec > 9.5e-3 {
		t.Fatalf("core0 CC1 residency %v s, want ~9ms", sec)
	}
	// Core 1 idled the whole time.
	v1, _ := m.Read(MSRCoreC1Residency, 1)
	if s1 := float64(v1) / TSCHz; math.Abs(s1-10e-3) > 1e-4 {
		t.Fatalf("core1 CC1 residency %v s, want 10ms", s1)
	}
	// CC6 never used on Cshallow.
	v6, _ := m.Read(MSRCoreC6Residency, 0)
	if v6 != 0 {
		t.Fatalf("CC6 residency %d on Cshallow", v6)
	}
}

func TestPkgResidencyCounters(t *testing.T) {
	sys := soc.New(soc.DefaultConfig(soc.Cdeep))
	m := NewMonitor(sys)
	sys.ForceAllCC6()
	sys.Engine.Run(sys.Engine.Now() + 50*sim.Millisecond)
	v, err := m.Read(MSRPkgC6Residency, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sec := float64(v) / TSCHz; sec < 45e-3 {
		t.Fatalf("PC6 residency %v s of ~50ms deep window", sec)
	}
	v2, _ := m.Read(MSRPkgC2Residency, 0)
	if v2 == 0 {
		t.Fatal("PC2 transient residency should be nonzero")
	}
}

func TestErrors(t *testing.T) {
	sys := soc.New(soc.DefaultConfig(soc.Cshallow))
	m := NewMonitor(sys)
	if _, err := m.Read(0x123, 0); err == nil {
		t.Fatal("unknown register should error")
	}
	if _, err := m.Read(MSRCoreC1Residency, 99); err == nil {
		t.Fatal("out-of-range core should error")
	}
	f := New(sys)
	if _, err := f.Read(MSRCoreC1Residency, 0); err == nil {
		t.Fatal("bare File cannot serve core residency")
	}
}

// The paper's measurement loop, verbatim: sample both counters around a
// window, divide by wall time — the result must equal the meter's
// average power.
func TestRaplMeasurementIdiom(t *testing.T) {
	sys := soc.New(soc.DefaultConfig(soc.CPC1A))
	f := New(sys)
	sys.Engine.Run(5 * sim.Millisecond) // settle into PC1A

	p0, _ := f.Read(MSRPkgEnergyStatus, 0)
	d0, _ := f.Read(MSRDramEnergyStatus, 0)
	t0 := sys.Engine.Now()
	sys.Engine.Run(t0 + 200*sim.Millisecond)
	p1, _ := f.Read(MSRPkgEnergyStatus, 0)
	d1, _ := f.Read(MSRDramEnergyStatus, 0)

	wall := (sys.Engine.Now() - t0).Seconds()
	pkgW := EnergyDelta(p0, p1) / wall
	dramW := EnergyDelta(d0, d1) / wall
	if math.Abs(pkgW-27.56) > 0.2 {
		t.Fatalf("RAPL package power %v W, want ~27.56 (PC1A)", pkgW)
	}
	if math.Abs(dramW-1.61) > 0.05 {
		t.Fatalf("RAPL DRAM power %v W, want ~1.61 (PC1A)", dramW)
	}
}
