package power

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"agilepkgc/internal/sim"
)

func almost(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestDomainString(t *testing.T) {
	if Package.String() != "Package" || DRAM.String() != "DRAM" {
		t.Fatal("domain names wrong")
	}
	if !strings.Contains(Domain(9).String(), "9") {
		t.Fatal("unknown domain should include number")
	}
}

func TestEnergyIntegration(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMeter(eng)
	c := m.Channel("core0", Package)
	c.Set(10) // 10 W from t=0

	eng.Schedule(sim.Second, func() { c.Set(2) }) // 2 W from t=1s
	eng.Run(3 * sim.Second)

	// 10 W × 1 s + 2 W × 2 s = 14 J
	if got := m.Energy(Package); !almost(got, 14, 1e-12) {
		t.Fatalf("Energy = %v J, want 14", got)
	}
	if got := c.Energy(); !almost(got, 14, 1e-12) {
		t.Fatalf("channel Energy = %v J, want 14", got)
	}
}

func TestInstantaneousPower(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMeter(eng)
	a := m.Channel("a", Package)
	b := m.Channel("b", Package)
	d := m.Channel("d", DRAM)
	a.Set(5)
	b.Set(7)
	d.Set(3)
	if m.Power(Package) != 12 {
		t.Fatalf("Package power = %v", m.Power(Package))
	}
	if m.Power(DRAM) != 3 {
		t.Fatalf("DRAM power = %v", m.Power(DRAM))
	}
	if m.TotalPower() != 15 {
		t.Fatalf("TotalPower = %v", m.TotalPower())
	}
}

func TestDomainsIsolated(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMeter(eng)
	p := m.Channel("soc", Package)
	d := m.Channel("dimm", DRAM)
	p.Set(40)
	d.Set(5)
	eng.Run(2 * sim.Second)
	if !almost(m.Energy(Package), 80, 1e-12) {
		t.Errorf("Package energy %v, want 80", m.Energy(Package))
	}
	if !almost(m.Energy(DRAM), 10, 1e-12) {
		t.Errorf("DRAM energy %v, want 10", m.Energy(DRAM))
	}
}

func TestSnapshotInterval(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMeter(eng)
	c := m.Channel("x", Package)
	c.Set(100)
	eng.Run(sim.Second)

	snap := m.Snapshot()
	eng.Schedule(sim.Second, func() { c.Set(50) })
	eng.Run(3 * sim.Second) // 2s since snapshot: 100*1 + 50*1 = 150 J

	if got := snap.IntervalEnergy(Package); !almost(got, 150, 1e-12) {
		t.Fatalf("IntervalEnergy = %v, want 150", got)
	}
	if got := snap.AveragePower(Package); !almost(got, 75, 1e-12) {
		t.Fatalf("AveragePower = %v, want 75", got)
	}
	if snap.Elapsed() != 2*sim.Second {
		t.Fatalf("Elapsed = %v", snap.Elapsed())
	}
}

func TestSnapshotZeroElapsed(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMeter(eng)
	c := m.Channel("x", Package)
	c.Set(33)
	snap := m.Snapshot()
	if got := snap.AveragePower(Package); got != 33 {
		t.Fatalf("zero-interval average should fall back to instantaneous, got %v", got)
	}
}

func TestSnapshotAverageTotal(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMeter(eng)
	p := m.Channel("soc", Package)
	d := m.Channel("mem", DRAM)
	p.Set(20)
	d.Set(4)
	snap := m.Snapshot()
	eng.Run(sim.Second)
	if got := snap.AverageTotal(); !almost(got, 24, 1e-12) {
		t.Fatalf("AverageTotal = %v, want 24", got)
	}
}

func TestChannelRegistrationErrors(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMeter(eng)
	m.Channel("dup", Package)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate name should panic")
			}
		}()
		m.Channel("dup", DRAM)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("invalid domain should panic")
			}
		}()
		m.Channel("bad", Domain(99))
	}()
}

func TestNegativePowerPanics(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMeter(eng)
	c := m.Channel("c", Package)
	defer func() {
		if recover() == nil {
			t.Fatal("negative power should panic")
		}
	}()
	c.Set(-1)
}

func TestLookup(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMeter(eng)
	c := m.Channel("core3", Package)
	if m.Lookup("core3") != c {
		t.Fatal("Lookup failed")
	}
	if m.Lookup("nope") != nil {
		t.Fatal("Lookup of missing name should be nil")
	}
	if c.Name() != "core3" {
		t.Fatal("Name() wrong")
	}
}

func TestBreakdownSorted(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMeter(eng)
	m.Channel("small", Package).Set(1)
	m.Channel("big", Package).Set(10)
	s := m.Breakdown(Package)
	if !strings.Contains(s, "total 11.000W") {
		t.Errorf("breakdown missing total: %s", s)
	}
	if strings.Index(s, "big") > strings.Index(s, "small") {
		t.Errorf("breakdown not sorted by power:\n%s", s)
	}
}

// Property: total energy equals the sum over channels regardless of the
// update pattern, and equals watts×time for piecewise-constant schedules.
func TestPropertyEnergyConservation(t *testing.T) {
	f := func(levels []uint8) bool {
		if len(levels) == 0 || len(levels) > 50 {
			return true
		}
		eng := sim.NewEngine()
		m := NewMeter(eng)
		c := m.Channel("c", Package)
		expect := 0.0
		step := sim.Microsecond
		for i, lv := range levels {
			w := float64(lv)
			at := sim.Time(i) * step
			eng.At(at, func() { c.Set(w) })
			expect += w * step.Seconds()
		}
		eng.Run(sim.Time(len(levels)) * step)
		return almost(m.Energy(Package), expect, 1e-9) || m.Energy(Package) == expect
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: energy counters are monotone nondecreasing over time.
func TestPropertyEnergyMonotone(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMeter(eng)
	c := m.Channel("c", Package)
	prev := 0.0
	for i := 0; i < 100; i++ {
		c.Set(float64(i % 7))
		eng.Run(eng.Now() + sim.Millisecond)
		e := m.Energy(Package)
		if e < prev {
			t.Fatalf("energy decreased: %v -> %v", prev, e)
		}
		prev = e
	}
}
