// Package power implements piecewise-constant energy accounting for the
// simulated SoC, mirroring what Intel's RAPL interface exposes on real
// hardware: cumulative energy counters for the Package (SoC) and DRAM
// domains.
//
// Every modeled hardware component owns one or more Channels. A component
// calls Channel.Set whenever its power draw changes (which, in a
// discrete-event simulation, happens only at events); the meter
// integrates watts × elapsed-virtual-time into joules exactly, with no
// sampling error. This is the measurement substrate for every power
// number the experiments report.
package power

import (
	"fmt"
	"sort"
	"strings"

	"agilepkgc/internal/sim"
)

// Domain identifies a RAPL-like accounting domain.
type Domain int

const (
	// Package covers everything on the processor die: cores, CLM, IOs,
	// PLLs, PMUs. Matches RAPL.Package.
	Package Domain = iota
	// DRAM covers the memory devices. Matches RAPL.DRAM.
	DRAM
	numDomains
)

// String returns the domain name.
func (d Domain) String() string {
	switch d {
	case Package:
		return "Package"
	case DRAM:
		return "DRAM"
	default:
		return fmt.Sprintf("Domain(%d)", int(d))
	}
}

// Channel is one component's contribution to a domain. Channels are
// created via Meter.Channel and must not be copied.
type Channel struct {
	meter *Meter
	// eng duplicates meter.eng: flush runs on every power transition of
	// every component, and the direct pointer saves it a dependent load.
	eng        *sim.Engine
	name       string
	domain     Domain
	watts      float64
	lastUpdate sim.Time
	joules     float64
}

// Set changes the channel's draw to watts, accounting the energy consumed
// at the previous level first.
func (c *Channel) Set(watts float64) {
	if watts < 0 {
		panic(fmt.Sprintf("power: negative power %g on %s", watts, c.name))
	}
	c.flush()
	c.watts = watts
}

// AddEnergy deposits e joules into the channel directly: the impulse
// form of Set, for events that carry energy but no duration (a DRAM
// access burst). Prior draw is accounted first, exactly as Set does,
// and the draw itself is unchanged. This replaces the old pattern of
// raising the draw by e/1ns for one nanosecond of virtual time, which
// cost an engine event and three Set calls per impulse to deposit the
// same energy.
func (c *Channel) AddEnergy(e float64) {
	c.flush()
	c.joules += e
}

// Watts returns the current draw.
func (c *Channel) Watts() float64 { return c.watts }

// Name returns the channel's registered name.
func (c *Channel) Name() string { return c.name }

// Energy returns the channel's cumulative energy in joules up to the
// current virtual time.
func (c *Channel) Energy() float64 {
	c.flush()
	return c.joules
}

func (c *Channel) flush() {
	now := c.eng.Now()
	if now > c.lastUpdate {
		c.joules += c.watts * (now - c.lastUpdate).Seconds()
		c.lastUpdate = now
	}
}

// Meter owns all channels and answers domain-level energy queries.
type Meter struct {
	eng      *sim.Engine
	channels []*Channel
	byName   map[string]*Channel
}

// NewMeter creates a meter bound to the simulation engine.
func NewMeter(eng *sim.Engine) *Meter {
	return &Meter{eng: eng, byName: make(map[string]*Channel)}
}

// Channel registers a new channel with a unique name in the given domain,
// starting at zero watts. Registering a duplicate name panics — the SoC
// wiring is static and a duplicate indicates a construction bug.
func (m *Meter) Channel(name string, domain Domain) *Channel {
	if domain < 0 || domain >= numDomains {
		panic(fmt.Sprintf("power: invalid domain %d", domain))
	}
	if _, dup := m.byName[name]; dup {
		panic(fmt.Sprintf("power: duplicate channel %q", name))
	}
	c := &Channel{meter: m, eng: m.eng, name: name, domain: domain, lastUpdate: m.eng.Now()}
	m.channels = append(m.channels, c)
	m.byName[name] = c
	return c
}

// Lookup returns the channel with the given name, or nil.
func (m *Meter) Lookup(name string) *Channel { return m.byName[name] }

// Power returns the instantaneous draw of a domain in watts.
func (m *Meter) Power(d Domain) float64 {
	var w float64
	for _, c := range m.channels {
		if c.domain == d {
			w += c.watts
		}
	}
	return w
}

// TotalPower returns the instantaneous SoC+DRAM draw in watts.
func (m *Meter) TotalPower() float64 { return m.Power(Package) + m.Power(DRAM) }

// Energy returns cumulative joules consumed by a domain up to the current
// virtual time.
func (m *Meter) Energy(d Domain) float64 {
	var j float64
	for _, c := range m.channels {
		if c.domain == d {
			j += c.Energy()
		}
	}
	return j
}

// Snapshot captures the cumulative energy counters at the current time so
// that a later Average call measures only the interval in between —
// exactly how RAPL is used in practice (read counter, run workload, read
// counter, divide by wall time).
type Snapshot struct {
	meter *Meter
	at    sim.Time
	e     [numDomains]float64
}

// Snapshot reads the counters now.
func (m *Meter) Snapshot() Snapshot {
	return Snapshot{
		meter: m,
		at:    m.eng.Now(),
		e:     [numDomains]float64{m.Energy(Package), m.Energy(DRAM)},
	}
}

// IntervalEnergy returns joules consumed by domain d since the snapshot.
func (s Snapshot) IntervalEnergy(d Domain) float64 {
	return s.meter.Energy(d) - s.e[d]
}

// AveragePower returns the mean watts of domain d since the snapshot.
// With no elapsed time it returns the instantaneous power.
func (s Snapshot) AveragePower(d Domain) float64 {
	dt := (s.meter.eng.Now() - s.at).Seconds()
	if dt <= 0 {
		return s.meter.Power(d)
	}
	return s.IntervalEnergy(d) / dt
}

// AverageTotal returns mean SoC+DRAM watts since the snapshot.
func (s Snapshot) AverageTotal() float64 {
	return s.AveragePower(Package) + s.AveragePower(DRAM)
}

// Elapsed returns the virtual time since the snapshot.
func (s Snapshot) Elapsed() sim.Duration { return s.meter.eng.Now() - s.at }

// Breakdown renders per-channel instantaneous power for a domain, sorted
// by descending draw — handy for debugging calibration.
func (m *Meter) Breakdown(d Domain) string {
	type row struct {
		name  string
		watts float64
	}
	var rows []row
	for _, c := range m.channels {
		if c.domain == d {
			rows = append(rows, row{c.name, c.watts})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].watts != rows[j].watts {
			return rows[i].watts > rows[j].watts
		}
		return rows[i].name < rows[j].name
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%s total %.3fW\n", d, m.Power(d))
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-28s %8.3fW\n", r.name, r.watts)
	}
	return b.String()
}
