// Package dram models the memory subsystem: memory controllers (MCs) and
// the DDR4 devices behind them, with the three power regimes the paper
// uses (Sec. 3.1, 4.2.2):
//
//   - Active: MC issues refreshes, CKE high, full power.
//   - CKE-off power-down (APD/PPD): nanosecond-scale entry (~10 ns) and
//     exit (~24 ns), ≥50% DRAM power saving. This is what PC1A uses via
//     the Allow_CKE_OFF control wire.
//   - Self-refresh: DRAM refreshes itself, most of the SoC↔DRAM interface
//     can be powered off; microsecond-scale exit. Only reachable from
//     deep package C-states (PC6).
//
// Power is split across two accounting domains the way RAPL splits it:
// the controller+PHY draw belongs to the Package domain, the DRAM device
// draw to the DRAM domain.
package dram

import (
	"fmt"

	"agilepkgc/internal/power"
	"agilepkgc/internal/signal"
	"agilepkgc/internal/sim"
)

// Mode is the DRAM power regime of one memory controller's channels.
type Mode int

const (
	// Active: CKE high, pages servable.
	Active Mode = iota
	// PowerDown: CKE off (pre-charged power-down). PC1A's choice.
	PowerDown
	// SelfRefresh: device self-refreshes, interface off. PC6's choice.
	SelfRefresh
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Active:
		return "active"
	case PowerDown:
		return "CKE-off"
	case SelfRefresh:
		return "self-refresh"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// CKEKind distinguishes the two DDR4 CKE power-down flavours. The model
// treats them identically for latency (both are 10–30 ns class); PPD
// saves slightly more power because the row buffer is off.
type CKEKind int

const (
	// APD: active power-down, pages kept open.
	APD CKEKind = iota
	// PPD: pre-charged power-down, row buffer off.
	PPD
)

// String names the kind.
func (k CKEKind) String() string {
	if k == APD {
		return "APD"
	}
	return "PPD"
}

// Params collects a memory controller's timing and power parameters.
type Params struct {
	// CKEEntry/CKEExit are the CKE-off transition latencies (paper:
	// entry within 10 ns, exit within 24 ns).
	CKEEntry sim.Duration
	CKEExit  sim.Duration
	// SREntry/SRExit are the self-refresh transition latencies
	// (microsecond scale).
	SREntry sim.Duration
	SRExit  sim.Duration

	// Controller power (Package domain) per mode.
	MCActiveWatts float64
	MCCKEWatts    float64
	MCSRWatts     float64

	// Device power (DRAM domain) per mode, for this controller's DIMMs.
	DRAMActiveWatts float64
	DRAMCKEWatts    float64
	DRAMSRWatts     float64

	// AccessEnergyJoules is the dynamic energy charged to the DRAM
	// domain per memory transaction, on top of the background power.
	AccessEnergyJoules float64

	// AccessLatency is the service time of one memory transaction once
	// the channel is active.
	AccessLatency sim.Duration
}

// DefaultParams returns the paper-calibrated parameters for one of the
// two SKX memory controllers (totals across both: DRAM 5.5 W active idle,
// 1.61 W CKE-off, 0.51 W self-refresh; MC active 1.0 W total — see
// DESIGN.md for the derivation from the paper's Sec. 5.4 deltas).
func DefaultParams() Params {
	return Params{
		CKEEntry:           10 * sim.Nanosecond,
		CKEExit:            24 * sim.Nanosecond,
		SREntry:            1 * sim.Microsecond,
		SRExit:             5 * sim.Microsecond,
		MCActiveWatts:      0.50,
		MCCKEWatts:         0.35,
		MCSRWatts:          0.175,
		DRAMActiveWatts:    2.75,
		DRAMCKEWatts:       0.805,
		DRAMSRWatts:        0.255,
		AccessEnergyJoules: 3.3e-6,
		AccessLatency:      90 * sim.Nanosecond,
	}
}

// MC is one memory controller plus its attached DIMMs.
type MC struct {
	eng    *sim.Engine
	name   string
	params Params
	kind   CKEKind

	mode        Mode
	outstanding int

	// allowCKEOff mirrors the Allow_CKE_OFF control wire (paper Fig. 3,
	// purple): "when this signal is set, the memory controller enters
	// CKE off mode as soon as it completes all outstanding memory
	// transactions and returns to the active state when unset."
	allowCKEOff *signal.Signal

	// inCKEOff is a status wire: high while the channels are in CKE-off
	// or deeper. (The paper does not route this to the APMU — CKE entry
	// is non-blocking — but experiments use it for residency tracking.)
	inCKEOff *signal.Signal

	pending sim.Event

	mcCh   *power.Channel // Package domain
	dramCh *power.Channel // DRAM domain

	// Preallocated event callbacks for the access/CKE cycle, so
	// steady-state traffic schedules without allocating.
	ckeEnterFn func()
	exitDoneFn func()
	completeFn func() // Access completion for the done==nil fast path

	// batchFn completes one AccessN batch; batchQ holds the per-batch
	// transaction counts in FIFO order. Batch completions are scheduled
	// with a fixed relative latency, so they fire in schedule order and a
	// plain queue pairs each event with its count.
	batchFn   func()
	batchQ    []int
	batchHead int

	ckeEntries uint64
	srEntries  uint64
	accesses   uint64
}

// NewMC builds an active controller. Channels may be nil in tests.
func NewMC(eng *sim.Engine, name string, p Params, kind CKEKind, mcCh, dramCh *power.Channel) *MC {
	mc := &MC{
		eng:         eng,
		name:        name,
		params:      p,
		kind:        kind,
		mode:        Active,
		allowCKEOff: signal.New(name+".Allow_CKE_OFF", false),
		inCKEOff:    signal.New(name+".InCKEOff", false),
		mcCh:        mcCh,
		dramCh:      dramCh,
	}
	if mcCh != nil {
		mcCh.Set(p.MCActiveWatts)
	}
	if dramCh != nil {
		dramCh.Set(p.DRAMActiveWatts)
	}
	mc.allowCKEOff.Subscribe(mc.onAllowCKEOff)
	mc.ckeEnterFn = func() {
		mc.pending = sim.Event{}
		// Conditions may have changed during the 10 ns entry.
		if mc.mode != Active || !mc.allowCKEOff.Level() || !mc.Idle() {
			return
		}
		mc.mode = PowerDown
		mc.ckeEntries++
		mc.setPower()
		mc.inCKEOff.Set()
	}
	mc.exitDoneFn = func() {
		mc.pending = sim.Event{}
		mc.drainOrIdle()
	}
	mc.completeFn = func() { mc.complete(nil) }
	mc.batchFn = func() {
		k := mc.batchQ[mc.batchHead]
		mc.batchHead++
		if mc.batchHead == len(mc.batchQ) {
			mc.batchQ = mc.batchQ[:0]
			mc.batchHead = 0
		}
		for ; k > 0; k-- {
			mc.complete(nil)
		}
	}
	return mc
}

// Name returns the controller name.
func (mc *MC) Name() string { return mc.name }

// Mode returns the current power regime.
func (mc *MC) Mode() Mode { return mc.mode }

// Params returns the controller's configuration.
func (mc *MC) Params() Params { return mc.params }

// CKEKind returns the configured power-down flavour.
func (mc *MC) CKEKind() CKEKind { return mc.kind }

// AllowCKEOff returns the Allow_CKE_OFF control wire.
func (mc *MC) AllowCKEOff() *signal.Signal { return mc.allowCKEOff }

// InCKEOff returns the CKE-off status wire.
func (mc *MC) InCKEOff() *signal.Signal { return mc.inCKEOff }

// Idle reports whether no transactions are outstanding.
func (mc *MC) Idle() bool { return mc.outstanding == 0 }

// CKEEntries returns how many times the channels entered CKE-off.
func (mc *MC) CKEEntries() uint64 { return mc.ckeEntries }

// SREntries returns how many times the channels entered self-refresh.
func (mc *MC) SREntries() uint64 { return mc.srEntries }

// Accesses returns the number of completed memory transactions.
func (mc *MC) Accesses() uint64 { return mc.accesses }

func (mc *MC) setPower() {
	var mcw, dw float64
	switch mc.mode {
	case Active:
		mcw, dw = mc.params.MCActiveWatts, mc.params.DRAMActiveWatts
	case PowerDown:
		mcw, dw = mc.params.MCCKEWatts, mc.params.DRAMCKEWatts
	case SelfRefresh:
		mcw, dw = mc.params.MCSRWatts, mc.params.DRAMSRWatts
	}
	if mc.mcCh != nil {
		mc.mcCh.Set(mcw)
	}
	if mc.dramCh != nil {
		mc.dramCh.Set(dw)
	}
}

func (mc *MC) onAllowCKEOff(level bool) {
	if level {
		mc.maybeEnterCKEOff()
		return
	}
	if mc.mode == PowerDown {
		mc.exitToActive(mc.params.CKEExit)
	}
}

func (mc *MC) maybeEnterCKEOff() {
	if mc.mode != Active || !mc.allowCKEOff.Level() || !mc.Idle() || mc.pending.Pending() {
		return
	}
	mc.pending = mc.eng.Schedule(mc.params.CKEEntry, mc.ckeEnterFn)
}

// exitToActive returns to Active after the given latency.
func (mc *MC) exitToActive(lat sim.Duration) {
	mc.pending.Cancel()
	mc.mode = Active
	mc.inCKEOff.Unset()
	mc.setPower()
	mc.pending = mc.eng.Schedule(lat, mc.exitDoneFn)
}

func (mc *MC) drainOrIdle() {
	if mc.Idle() {
		mc.maybeEnterCKEOff()
	}
}

// Access performs one memory transaction: wakes the channels if needed,
// charges the dynamic energy, and calls done (if non-nil) when the
// transaction completes. It returns the total latency including any
// power-state exit penalty.
func (mc *MC) Access(done func()) sim.Duration {
	mc.outstanding++
	var penalty sim.Duration
	switch mc.mode {
	case PowerDown:
		penalty = mc.params.CKEExit
		mc.exitToActive(mc.params.CKEExit)
	case SelfRefresh:
		penalty = mc.params.SRExit
		mc.exitToActive(mc.params.SRExit)
	default:
		// An in-flight CKE entry is aborted by traffic.
		mc.pending.Cancel()
		mc.pending = sim.Event{}
	}
	total := penalty + mc.params.AccessLatency
	if done == nil {
		mc.eng.Schedule(total, mc.completeFn)
	} else {
		mc.eng.Schedule(total, func() { mc.complete(done) })
	}
	return total
}

// AccessN performs k transactions issued back to back at the current
// instant with no completion callbacks — the bulk form of Access that
// request execution uses. State evolution is exactly k Access(nil)
// calls: when the channel is in a power-down mode the first transaction
// pays the exit penalty and completes later than the k−1 issued against
// the then-active channel; completions that share a fire time share one
// engine event, which runs their complete sequence back to back — the
// same back-to-back order the per-access events fire in, since their
// sequence numbers are consecutive.
func (mc *MC) AccessN(k int) {
	if k <= 0 {
		return
	}
	mc.outstanding += k
	switch mc.mode {
	case PowerDown:
		mc.exitToActive(mc.params.CKEExit)
		mc.eng.Schedule(mc.params.CKEExit+mc.params.AccessLatency, mc.completeFn)
		k--
	case SelfRefresh:
		mc.exitToActive(mc.params.SRExit)
		mc.eng.Schedule(mc.params.SRExit+mc.params.AccessLatency, mc.completeFn)
		k--
	default:
		// An in-flight CKE entry is aborted by traffic.
		mc.pending.Cancel()
		mc.pending = sim.Event{}
	}
	switch {
	case k == 1:
		mc.eng.Schedule(mc.params.AccessLatency, mc.completeFn)
	case k > 1:
		mc.batchQ = append(mc.batchQ, k)
		mc.eng.Schedule(mc.params.AccessLatency, mc.batchFn)
	}
}

// complete finishes one transaction: counters, dynamic energy, the
// caller's callback, and opportunistic CKE re-entry.
func (mc *MC) complete(done func()) {
	mc.outstanding--
	mc.accesses++
	if mc.dramCh != nil {
		mc.chargeAccessEnergy()
	}
	if done != nil {
		done()
	}
	if mc.Idle() {
		mc.maybeEnterCKEOff()
	}
}

// chargeAccessEnergy deposits the per-access dynamic energy into the
// DRAM domain as a direct impulse.
func (mc *MC) chargeAccessEnergy() {
	if e := mc.params.AccessEnergyJoules; e > 0 {
		mc.dramCh.AddEnergy(e)
	}
}

// EnterSelfRefresh places the channels in self-refresh (GPMU command
// during the PC6 entry flow). The controller must be idle. done fires
// when the devices are self-refreshing.
func (mc *MC) EnterSelfRefresh(done func()) {
	if !mc.Idle() {
		panic(fmt.Sprintf("dram: EnterSelfRefresh on busy controller %s", mc.name))
	}
	if mc.mode == SelfRefresh {
		if done != nil {
			done()
		}
		return
	}
	mc.pending.Cancel()
	mc.pending = mc.eng.Schedule(mc.params.SREntry, func() {
		mc.pending = sim.Event{}
		// A transaction racing the entry window aborts it (the event is
		// also canceled directly by Access); the GPMU retries on its
		// next pass.
		if !mc.Idle() || mc.mode != Active {
			if done != nil {
				done()
			}
			return
		}
		mc.mode = SelfRefresh
		mc.srEntries++
		mc.setPower()
		mc.inCKEOff.Set() // self-refresh is CKE-off or deeper
		if done != nil {
			done()
		}
	})
}

// ExitSelfRefresh wakes the devices (GPMU command during PC6 exit); done
// fires when the channels are active again.
func (mc *MC) ExitSelfRefresh(done func()) {
	if mc.mode != SelfRefresh {
		if done != nil {
			done()
		}
		return
	}
	mc.exitToActive(mc.params.SRExit)
	if done != nil {
		mc.eng.Schedule(mc.params.SRExit, done)
	}
}
