package dram

import (
	"math"
	"testing"

	"agilepkgc/internal/power"
	"agilepkgc/internal/sim"
)

func newMC(eng *sim.Engine) *MC {
	return NewMC(eng, "mc0", DefaultParams(), PPD, nil, nil)
}

func TestModeStrings(t *testing.T) {
	if Active.String() != "active" || PowerDown.String() != "CKE-off" || SelfRefresh.String() != "self-refresh" {
		t.Fatal("mode names wrong")
	}
	if Mode(9).String() != "Mode(9)" {
		t.Fatal("unknown mode format")
	}
	if APD.String() != "APD" || PPD.String() != "PPD" {
		t.Fatal("CKE kind names wrong")
	}
}

func TestStaysActiveWithoutAllow(t *testing.T) {
	eng := sim.NewEngine()
	mc := newMC(eng)
	eng.Run(sim.Millisecond)
	if mc.Mode() != Active {
		t.Fatalf("mode %v without Allow_CKE_OFF, want active", mc.Mode())
	}
}

func TestCKEOffEntry(t *testing.T) {
	eng := sim.NewEngine()
	mc := newMC(eng)
	mc.AllowCKEOff().Set()
	eng.Run(10 * sim.Nanosecond) // paper: entry within 10 ns
	if mc.Mode() != PowerDown {
		t.Fatalf("mode %v after 10ns, want CKE-off", mc.Mode())
	}
	if !mc.InCKEOff().Level() {
		t.Fatal("InCKEOff should be high")
	}
	if mc.CKEEntries() != 1 {
		t.Fatalf("CKEEntries = %d", mc.CKEEntries())
	}
}

func TestCKEOffExitOnUnset(t *testing.T) {
	eng := sim.NewEngine()
	mc := newMC(eng)
	mc.AllowCKEOff().Set()
	eng.Run(20 * sim.Nanosecond)
	mc.AllowCKEOff().Unset()
	if mc.Mode() != Active {
		t.Fatal("mode should return to active immediately on unset")
	}
	if mc.InCKEOff().Level() {
		t.Fatal("InCKEOff should drop")
	}
	eng.Run(sim.Millisecond)
	if mc.Mode() != Active {
		t.Fatal("must not re-enter with Allow low")
	}
}

func TestAccessFromActiveNoPenalty(t *testing.T) {
	eng := sim.NewEngine()
	mc := newMC(eng)
	var doneAt sim.Time = -1
	lat := mc.Access(func() { doneAt = eng.Now() })
	if lat != DefaultParams().AccessLatency {
		t.Fatalf("latency %v, want bare access latency", lat)
	}
	eng.Run(sim.Microsecond)
	if doneAt != sim.Time(DefaultParams().AccessLatency) {
		t.Fatalf("done at %v", doneAt)
	}
	if mc.Accesses() != 1 {
		t.Fatal("access not counted")
	}
}

func TestAccessFromCKEOffPays24ns(t *testing.T) {
	eng := sim.NewEngine()
	mc := newMC(eng)
	mc.AllowCKEOff().Set()
	eng.Run(20 * sim.Nanosecond)
	lat := mc.Access(nil)
	want := DefaultParams().CKEExit + DefaultParams().AccessLatency
	if lat != want {
		t.Fatalf("latency %v, want %v (24ns exit + access)", lat, want)
	}
	if mc.Mode() != Active {
		t.Fatal("access should force active mode")
	}
}

func TestReentryAfterDrain(t *testing.T) {
	eng := sim.NewEngine()
	mc := newMC(eng)
	mc.AllowCKEOff().Set()
	eng.Run(20 * sim.Nanosecond)
	mc.Access(nil)
	mc.Access(nil) // two outstanding
	eng.Run(eng.Now() + 50*sim.Nanosecond)
	if mc.Mode() != Active {
		t.Fatal("should be active while draining")
	}
	eng.Run(eng.Now() + sim.Microsecond)
	if mc.Mode() != PowerDown {
		t.Fatalf("mode %v after drain, want CKE-off (Allow still set)", mc.Mode())
	}
	if mc.CKEEntries() != 2 {
		t.Fatalf("CKEEntries = %d, want 2", mc.CKEEntries())
	}
}

func TestSelfRefreshEntryExit(t *testing.T) {
	eng := sim.NewEngine()
	mc := newMC(eng)
	entered := false
	mc.EnterSelfRefresh(func() { entered = true })
	eng.Run(sim.Microsecond)
	if !entered || mc.Mode() != SelfRefresh {
		t.Fatalf("SR entry failed: %v %v", entered, mc.Mode())
	}
	if mc.SREntries() != 1 {
		t.Fatal("SR entry not counted")
	}
	if !mc.InCKEOff().Level() {
		t.Fatal("SR is CKE-off or deeper")
	}
	exited := false
	mc.ExitSelfRefresh(func() { exited = true })
	eng.Run(eng.Now() + 5*sim.Microsecond)
	if !exited || mc.Mode() != Active {
		t.Fatalf("SR exit failed: %v %v", exited, mc.Mode())
	}
}

func TestSelfRefreshIdempotent(t *testing.T) {
	eng := sim.NewEngine()
	mc := newMC(eng)
	mc.EnterSelfRefresh(nil)
	eng.Run(2 * sim.Microsecond)
	called := false
	mc.EnterSelfRefresh(func() { called = true }) // already in SR
	if !called {
		t.Fatal("EnterSelfRefresh on SR should call done immediately")
	}
	called = false
	mc.ExitSelfRefresh(nil)
	eng.Run(eng.Now() + 10*sim.Microsecond)
	mc.ExitSelfRefresh(func() { called = true }) // already active
	if !called {
		t.Fatal("ExitSelfRefresh on active should call done immediately")
	}
}

func TestAccessFromSelfRefreshPaysMicroseconds(t *testing.T) {
	eng := sim.NewEngine()
	mc := newMC(eng)
	mc.EnterSelfRefresh(nil)
	eng.Run(2 * sim.Microsecond)
	lat := mc.Access(nil)
	want := DefaultParams().SRExit + DefaultParams().AccessLatency
	if lat != want {
		t.Fatalf("latency %v, want %v — SR exit is microseconds, the reason PC1A avoids it", lat, want)
	}
}

func TestEnterSelfRefreshBusyPanics(t *testing.T) {
	eng := sim.NewEngine()
	mc := newMC(eng)
	mc.Access(nil)
	defer func() {
		if recover() == nil {
			t.Fatal("EnterSelfRefresh while busy must panic")
		}
	}()
	mc.EnterSelfRefresh(nil)
}

func TestSREntryAbortedByRace(t *testing.T) {
	eng := sim.NewEngine()
	mc := newMC(eng)
	mc.EnterSelfRefresh(nil)
	eng.Run(200 * sim.Nanosecond) // entry takes 1us; inject traffic mid-window
	mc.Access(nil)
	eng.Run(eng.Now() + 20*sim.Microsecond)
	if mc.Mode() == SelfRefresh {
		t.Fatal("SR entry should have been aborted by the racing access")
	}
}

func TestBackgroundPowerLadder(t *testing.T) {
	eng := sim.NewEngine()
	m := power.NewMeter(eng)
	p := DefaultParams()
	p.AccessEnergyJoules = 0 // background only
	mc := NewMC(eng, "mc0", p, PPD, m.Channel("mc0", power.Package), m.Channel("dimm0", power.DRAM))

	if m.Power(power.Package) != 0.50 || m.Power(power.DRAM) != 2.75 {
		t.Fatalf("active power %v/%v", m.Power(power.Package), m.Power(power.DRAM))
	}
	mc.AllowCKEOff().Set()
	eng.Run(20 * sim.Nanosecond)
	if m.Power(power.Package) != 0.35 || m.Power(power.DRAM) != 0.805 {
		t.Fatalf("CKE-off power %v/%v", m.Power(power.Package), m.Power(power.DRAM))
	}
	mc.AllowCKEOff().Unset()
	mc.EnterSelfRefresh(nil)
	eng.Run(eng.Now() + 2*sim.Microsecond)
	if m.Power(power.Package) != 0.175 || m.Power(power.DRAM) != 0.255 {
		t.Fatalf("SR power %v/%v", m.Power(power.Package), m.Power(power.DRAM))
	}
}

func TestAccessEnergyAccounting(t *testing.T) {
	eng := sim.NewEngine()
	m := power.NewMeter(eng)
	p := DefaultParams()
	p.DRAMActiveWatts = 0 // isolate dynamic energy
	p.MCActiveWatts = 0
	mc := NewMC(eng, "mc0", p, PPD, m.Channel("mc0", power.Package), m.Channel("dimm0", power.DRAM))

	n := 100
	for i := 0; i < n; i++ {
		mc.Access(nil)
		eng.Run(eng.Now() + sim.Microsecond)
	}
	want := float64(n) * p.AccessEnergyJoules
	got := m.Energy(power.DRAM)
	if math.Abs(got-want)/want > 0.01 {
		t.Fatalf("dynamic energy %v J, want %v J", got, want)
	}
}

func TestManyCKECycles(t *testing.T) {
	eng := sim.NewEngine()
	mc := newMC(eng)
	mc.AllowCKEOff().Set()
	for i := 0; i < 100; i++ {
		eng.Run(eng.Now() + 100*sim.Nanosecond)
		if mc.Mode() != PowerDown {
			t.Fatalf("cycle %d: not in CKE-off", i)
		}
		mc.Access(nil)
		eng.Run(eng.Now() + 500*sim.Nanosecond)
	}
	if mc.Accesses() != 100 {
		t.Fatalf("accesses = %d", mc.Accesses())
	}
	if mc.CKEEntries() < 100 {
		t.Fatalf("CKE entries = %d, want ≥100", mc.CKEEntries())
	}
}
