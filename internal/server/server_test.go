package server

import (
	"testing"

	"agilepkgc/internal/pmu"
	"agilepkgc/internal/sim"
	"agilepkgc/internal/soc"
	"agilepkgc/internal/stats"
	"agilepkgc/internal/workload"
)

func runServer(t *testing.T, kind soc.ConfigKind, spec workload.Spec, d sim.Duration) *Server {
	t.Helper()
	sys := soc.New(soc.DefaultConfig(kind))
	srv := New(sys, DefaultConfig(), spec)
	srv.Run(d)
	return srv
}

func TestServesAllRequests(t *testing.T) {
	srv := runServer(t, soc.Cshallow, workload.Memcached(50000), 50*sim.Millisecond)
	if srv.Served() == 0 {
		t.Fatal("nothing served")
	}
	if srv.Served() != srv.Generated() {
		t.Fatalf("served %d != generated %d (lost requests)", srv.Served(), srv.Generated())
	}
	// ~2500 requests in 50ms at 50k QPS.
	if srv.Served() < 2200 || srv.Served() > 2800 {
		t.Fatalf("served %d, want ~2500", srv.Served())
	}
}

func TestLatencyIncludesNetworkFloor(t *testing.T) {
	srv := runServer(t, soc.Cshallow, workload.Memcached(10000), 50*sim.Millisecond)
	h := srv.Latencies()
	// Minimum possible: network 117us + NIC + wake 2us + service floor.
	if h.Min() < 117e-6 {
		t.Fatalf("min latency %v below the network floor", h.Min())
	}
	// At low load on Cshallow, mean should be ~117 + ~5 + ~16 + wake ~2 ≈ 140us.
	if m := h.Mean(); m < 125e-6 || m > 175e-6 {
		t.Fatalf("mean latency %v, want ~140us", m)
	}
}

// Cdeep must exhibit visibly worse latency than Cshallow at low load —
// paper Fig. 5's headline.
func TestCdeepLatencyPenalty(t *testing.T) {
	shallow := runServer(t, soc.Cshallow, workload.Memcached(20000), 100*sim.Millisecond)
	deep := runServer(t, soc.Cdeep, workload.Memcached(20000), 100*sim.Millisecond)
	ms, md := shallow.Latencies().Mean(), deep.Latencies().Mean()
	if md <= ms*1.2 {
		t.Fatalf("Cdeep mean %v should be well above Cshallow %v (CC6 wakes + powersave)", md, ms)
	}
	ps, pd := shallow.Latencies().Quantile(0.99), deep.Latencies().Quantile(0.99)
	if pd <= ps {
		t.Fatalf("Cdeep p99 %v should exceed Cshallow %v", pd, ps)
	}
}

// A CPC1A system under load must still serve everything, ending in PC1A
// when idle, and its latency must be within a whisker of Cshallow —
// paper Fig. 7(c): < 0.1% degradation.
func TestPC1ALatencyImpactNegligible(t *testing.T) {
	spec := workload.Memcached(50000)
	shallow := runServer(t, soc.Cshallow, spec, 200*sim.Millisecond)
	apc := runServer(t, soc.CPC1A, spec, 200*sim.Millisecond)

	if apc.Served() != apc.Generated() {
		t.Fatal("APC system lost requests")
	}
	ms, ma := shallow.Latencies().Mean(), apc.Latencies().Mean()
	rel := (ma - ms) / ms
	if rel > 0.002 {
		t.Fatalf("PC1A latency impact %.4f%%, paper claims <0.1%% (means %v vs %v)", rel*100, ma, ms)
	}
	// And the system actually used PC1A.
	sys := apc.System()
	if sys.APMU.Entries(pmu.PC1A) == 0 {
		t.Fatal("APMU never entered PC1A under low load")
	}
	if sys.PackageState() != pmu.PC1A {
		t.Fatalf("final state %v, want PC1A after drain", sys.PackageState())
	}
}

// Power ordering under identical load: CPC1A strictly below Cshallow.
func TestPC1ASavesPowerUnderLoad(t *testing.T) {
	spec := workload.Memcached(20000)

	sysS := soc.New(soc.DefaultConfig(soc.Cshallow))
	srvS := New(sysS, DefaultConfig(), spec)
	snapS := sysS.Meter.Snapshot()
	srvS.Run(100 * sim.Millisecond)
	powS := snapS.AverageTotal()

	sysA := soc.New(soc.DefaultConfig(soc.CPC1A))
	srvA := New(sysA, DefaultConfig(), spec)
	snapA := sysA.Meter.Snapshot()
	srvA.Run(100 * sim.Millisecond)
	powA := snapA.AverageTotal()

	if powA >= powS {
		t.Fatalf("CPC1A power %.2fW should be below Cshallow %.2fW", powA, powS)
	}
	saving := (powS - powA) / powS
	if saving < 0.10 {
		t.Fatalf("saving %.1f%% at 20k QPS, expect >10%%", saving*100)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (uint64, float64) {
		srv := runServer(t, soc.CPC1A, workload.Memcached(30000), 30*sim.Millisecond)
		return srv.Served(), srv.Latencies().Mean()
	}
	s1, m1 := run()
	s2, m2 := run()
	if s1 != s2 || m1 != m2 {
		t.Fatalf("same-seed runs diverged: %d/%v vs %d/%v", s1, m1, s2, m2)
	}
}

func TestHighLoadSaturation(t *testing.T) {
	// 600k QPS at ~21us/req on 10 cores is ~126% offered load: the
	// system must saturate (served < generated) without deadlocking.
	sys := soc.New(soc.DefaultConfig(soc.Cshallow))
	srv := New(sys, DefaultConfig(), workload.Memcached(600000))
	srv.Run(50 * sim.Millisecond)
	if srv.Served() == 0 {
		t.Fatal("nothing served at saturation")
	}
	util := 0.0
	for _, c := range sys.Cores {
		_ = c
		util++
	}
	// p99 should be far above the unloaded floor.
	if srv.Latencies().Quantile(0.99) < 500e-6 {
		t.Fatalf("p99 %v at overload, want heavy queueing", srv.Latencies().Quantile(0.99))
	}
}

func TestClosedLoopServer(t *testing.T) {
	sys := soc.New(soc.DefaultConfig(soc.CPC1A))
	srv := NewClosedLoop(sys, DefaultConfig())
	cl := workload.SysbenchOLTP(sys.Engine, 16, 1e-3, 1, srv.Submit)
	cl.Start()
	srv.Run(100 * sim.Millisecond)
	cl.Stop()
	srv.Run(10 * sim.Millisecond)

	if srv.Served() == 0 || cl.Completed() == 0 {
		t.Fatal("closed-loop server served nothing")
	}
	if srv.Served() < cl.Completed() {
		t.Fatalf("served %d < completed %d", srv.Served(), cl.Completed())
	}
	if srv.Generated() != 0 {
		t.Fatal("closed-loop server has no open-loop generator")
	}
	// Latency floor still includes the network component.
	if srv.Latencies().Min() < 117e-6 {
		t.Fatalf("min latency %v below network floor", srv.Latencies().Min())
	}
}

// Timer ticks erode the PC1A opportunity: a tickful kernel must show
// strictly less PC1A residency than a tickless one at the same load.
func TestTimerTicksErodePC1A(t *testing.T) {
	residency := func(tickHz float64) float64 {
		sys := soc.New(soc.DefaultConfig(soc.CPC1A))
		cfg := DefaultConfig()
		cfg.TimerTickHz = tickHz
		cfg.TickKernelTime = 5 * sim.Microsecond
		srv := New(sys, cfg, workload.Memcached(10000))
		srv.Run(100 * sim.Millisecond)
		return float64(sys.APMU.Residency(pmu.PC1A)) / float64(sys.Engine.Now())
	}
	tickless := residency(0)
	tickful := residency(250)
	if tickful >= tickless {
		t.Fatalf("250Hz ticks should erode PC1A residency: %v vs %v", tickful, tickless)
	}
	if tickless-tickful < 0.01 {
		t.Fatalf("erosion implausibly small: %v vs %v", tickful, tickless)
	}
	// But the system still functions and reaches PC1A between ticks.
	if tickful < 0.3 {
		t.Fatalf("tickful residency %v collapsed entirely", tickful)
	}
}

// A tail slower than the old fixed 100ms drain cap must still be served:
// Run drains until every in-flight request completes.
func TestRunDrainsSlowTails(t *testing.T) {
	spec := workload.Spec{
		Name:        "slow-tail",
		Arrivals:    stats.Poisson{RateV: 100},
		Service:     stats.Deterministic{V: 0.15}, // 150ms on-core, per request
		Connections: 10,
		MemAccesses: 1,
	}
	sys := soc.New(soc.DefaultConfig(soc.Cshallow))
	srv := New(sys, DefaultConfig(), spec)
	srv.Run(20 * sim.Millisecond)
	if srv.Generated() == 0 {
		t.Fatal("no load generated")
	}
	if srv.Served() != srv.Generated() {
		t.Fatalf("served %d != generated %d: slow tail was abandoned", srv.Served(), srv.Generated())
	}
	if srv.Dropped() != 0 {
		t.Fatalf("dropped %d, want 0", srv.Dropped())
	}
}

// When the backlog genuinely cannot clear within the drain cap, Run
// surfaces the leak through Dropped instead of losing it silently.
func TestRunSurfacesDroppedRequests(t *testing.T) {
	spec := workload.Spec{
		Name:        "stuck",
		Arrivals:    stats.Poisson{RateV: 10000},
		Service:     stats.Deterministic{V: 2 * DrainCap.Seconds()}, // can never finish draining
		Connections: 10,
		MemAccesses: 1,
	}
	sys := soc.New(soc.DefaultConfig(soc.Cshallow))
	srv := New(sys, DefaultConfig(), spec)
	srv.Run(sim.Millisecond)
	if srv.Dropped() == 0 {
		t.Fatal("drain cap tripped but Dropped() == 0")
	}
	if srv.Served()+srv.Dropped() != srv.Generated() {
		t.Fatalf("served %d + dropped %d != generated %d",
			srv.Served(), srv.Dropped(), srv.Generated())
	}
	// Dropped is a snapshot of the latest Run, not an accumulator: a
	// second Run must not double-count the same stuck requests, and the
	// invariant must keep holding.
	srv.Run(sim.Millisecond)
	if srv.Served()+srv.Dropped() != srv.Generated() {
		t.Fatalf("after second Run: served %d + dropped %d != generated %d",
			srv.Served(), srv.Dropped(), srv.Generated())
	}
}

// TruncatedDrain separates "still draining at the cap" from "leaked
// forever": a request whose completion event is still queued when the
// DrainCap trips is truncated, not leaked, and the counter must say so.
func TestTruncatedDrainDistinguishesSlowFromLeaked(t *testing.T) {
	spec := workload.Spec{
		Name:        "glacial",
		Arrivals:    stats.Poisson{RateV: 10000},
		Service:     stats.Deterministic{V: 2 * DrainCap.Seconds()}, // outlives the cap
		Connections: 10,
		MemAccesses: 1,
	}
	sys := soc.New(soc.DefaultConfig(soc.Cshallow))
	srv := New(sys, DefaultConfig(), spec)
	srv.Run(sim.Millisecond)
	if srv.Dropped() == 0 {
		t.Fatal("drain cap never tripped — test is vacuous")
	}
	// The glacial requests' completion events are still pending, so
	// every dropped request is a truncation, not a leak.
	if srv.TruncatedDrain() != srv.Dropped() {
		t.Fatalf("truncated %d != dropped %d: pending completions misread as leaks",
			srv.TruncatedDrain(), srv.Dropped())
	}
}

// A clean drain reports no truncation.
func TestTruncatedDrainZeroOnCleanRuns(t *testing.T) {
	sys := soc.New(soc.DefaultConfig(soc.CPC1A))
	srv := New(sys, DefaultConfig(), workload.Memcached(20000))
	srv.Run(10 * sim.Millisecond)
	if srv.Served() != srv.Generated() {
		t.Fatalf("served %d != generated %d", srv.Served(), srv.Generated())
	}
	if srv.TruncatedDrain() != 0 {
		t.Fatalf("truncated %d on a clean drain", srv.TruncatedDrain())
	}
}

// Closed-loop servers have no generator to stop, so Run must advance
// exactly the requested window and leave draining to the caller.
func TestClosedLoopRunAdvancesExactly(t *testing.T) {
	sys := soc.New(soc.DefaultConfig(soc.CPC1A))
	srv := NewClosedLoop(sys, DefaultConfig())
	cl := workload.SysbenchOLTP(sys.Engine, 8, 1e-3, 1, srv.Submit)
	cl.Start()
	srv.Run(30 * sim.Millisecond)
	if got := sys.Engine.Now(); got != 30*sim.Millisecond {
		t.Fatalf("closed-loop Run advanced to %v, want exactly 30ms", got)
	}
	cl.Stop()
	srv.Run(20 * sim.Millisecond) // flush the tail
	if cl.Completed() == 0 {
		t.Fatal("nothing completed")
	}
}
