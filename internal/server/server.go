// Package server models the software stack of one latency-critical
// service instance running on the simulated SoC: NIC DMA over the PCIe
// link, kernel network processing, connection-pinned dispatch onto the
// application threads (one per core, as the paper's pinned Memcached
// deployment does), and end-to-end latency measurement from the client's
// perspective (client↔server network time included).
package server

import (
	"agilepkgc/internal/cpu"
	"agilepkgc/internal/sim"
	"agilepkgc/internal/soc"
	"agilepkgc/internal/stats"
	"agilepkgc/internal/workload"
)

// Config parameterizes the server software model.
type Config struct {
	// NetworkLatency is the client↔server round-trip component added to
	// every response (paper Sec. 7.3: ≈117 µs end-to-end network time).
	NetworkLatency sim.Duration
	// NICTransfer is the DMA time of one request/response on the PCIe
	// link.
	NICTransfer sim.Duration
	// KernelOverhead is per-request kernel time (interrupt, softirq,
	// socket) executed on the serving core in addition to the
	// application service time.
	KernelOverhead sim.Duration
	// BatchEpoch, when non-zero, delays request dispatch to aligned
	// epoch boundaries so cores activate and idle *together* — the
	// active-period synchronization the paper's related work (CARB,
	// µDPM, DynSleep) pursues and that Sec. 8 calls additive to APC.
	// Requests wait at most one epoch; latency grows by epoch/2 on
	// average in exchange for longer full-system-idle periods.
	BatchEpoch sim.Duration
	// TimerTickHz, when non-zero, arms a periodic per-core timer
	// interrupt (a non-tickless kernel): each tick wakes its core for
	// TickKernelTime. This is the background OS noise that erodes the
	// PC1A opportunity on real machines.
	TimerTickHz    float64
	TickKernelTime sim.Duration
	// Seed makes the request stream deterministic.
	Seed uint64
}

// DefaultConfig returns the evaluation defaults.
func DefaultConfig() Config {
	return Config{
		NetworkLatency: 117 * sim.Microsecond,
		NICTransfer:    300 * sim.Nanosecond,
		KernelOverhead: 5 * sim.Microsecond,
		Seed:           1,
	}
}

// Server binds a workload to a system.
type Server struct {
	sys *soc.System
	cfg Config
	gen *workload.Generator

	// Latencies in seconds, client-observed.
	lat *stats.Histogram

	served    uint64
	inFlight  int
	dropped   uint64
	truncated uint64

	batch        []func()
	batchSpare   []func()
	batchArmed   bool
	batchFlushes uint64
	batchFn      func()

	// freeList recycles inflight records so steady-state serving does
	// not allocate per request.
	freeList []*inflight
}

// inflight is the pooled per-request record. All five callbacks on a
// request's path through the machine (NIC in, dispatch, core start, core
// done, NIC out) are created once when the record is first allocated and
// reused for every request the record later carries, so the steady-state
// serve path schedules only preallocated closures.
type inflight struct {
	s    *Server
	req  *workload.Request
	done func()

	inWireFn  func()
	execFn    func()
	startFn   func()
	onDoneFn  func()
	outWireFn func()
}

// newInflight takes a record off the free list (or builds one, creating
// its callbacks) and binds it to a request.
func (s *Server) newInflight(req *workload.Request, done func()) *inflight {
	var r *inflight
	if n := len(s.freeList); n > 0 {
		r = s.freeList[n-1]
		s.freeList = s.freeList[:n-1]
	} else {
		r = &inflight{s: s}
		r.inWireFn = func() {
			r.s.sys.NICLink().EndTransaction()
			r.s.dispatch(r.execFn)
		}
		r.execFn = func() { r.s.execute(r) }
		r.startFn = func() {
			// 3. The request's DRAM traffic (dynamic energy; also wakes
			// CKE-parked channels).
			r.s.sys.MemAccess(r.req.MemAccesses)
		}
		r.onDoneFn = func() {
			// 4. NIC DMA out, then the client sees the response one
			// network latency after arrival processing started.
			nic := r.s.sys.NICLink()
			nic.StartTransaction()
			outWire := nic.ExitDelay() + r.s.cfg.NICTransfer
			r.s.sys.Engine.Schedule(outWire, r.outWireFn)
		}
		r.outWireFn = func() {
			s := r.s
			s.sys.NICLink().EndTransaction()
			e2e := s.sys.Engine.Now() - r.req.Arrival + s.cfg.NetworkLatency
			s.lat.Add(e2e.Seconds())
			s.served++
			s.inFlight--
			done := r.done
			r.req, r.done = nil, nil
			s.freeList = append(s.freeList, r)
			if done != nil {
				done()
			}
		}
	}
	r.req, r.done = req, done
	return r
}

// New creates a server for the given system and workload.
func New(sys *soc.System, cfg Config, spec workload.Spec) *Server {
	s := &Server{
		sys: sys,
		cfg: cfg,
		lat: stats.NewLatencyHistogram(),
	}
	s.gen = workload.NewGenerator(sys.Engine, spec, cfg.Seed, s.receive)
	if cfg.TimerTickHz > 0 {
		s.armTicks()
	}
	return s
}

// NewClosedLoop creates a server driven by a closed-loop client instead
// of an open-loop generator. The caller builds the client around the
// returned server's Submit method:
//
//	srv := server.NewClosedLoop(sys, cfg)
//	cl := workload.SysbenchOLTP(sys.Engine, 16, 1e-3, 1, srv.Submit)
//	cl.Start()
//	sys.Engine.Run(...)
func NewClosedLoop(sys *soc.System, cfg Config) *Server {
	s := &Server{
		sys: sys,
		cfg: cfg,
		lat: stats.NewLatencyHistogram(),
	}
	if cfg.TimerTickHz > 0 {
		s.armTicks()
	}
	return s
}

// armTicks schedules staggered periodic timer interrupts on every core.
func (s *Server) armTicks() {
	period := sim.Duration(float64(sim.Second) / s.cfg.TimerTickHz)
	for i, c := range s.sys.Cores {
		c := c
		var tick func()
		tick = func() {
			c.WakeInterrupt(s.cfg.TickKernelTime)
			s.sys.Engine.Schedule(period, tick)
		}
		// Stagger cores across the period so ticks do not align.
		offset := period * sim.Duration(i) / sim.Duration(len(s.sys.Cores))
		s.sys.Engine.Schedule(offset+1, tick)
	}
}

// DrainCap bounds how much extra virtual time Run spends draining
// stragglers after the generator stops. It exists only to bound
// pathological runs (a backlog that cannot clear); anything still in
// flight when it trips is surfaced via Dropped instead of silently
// abandoned. Exported because the cluster layer's fleet drain must use
// the same bound for its 1-server-fleet ≡ single-server parity contract.
const DrainCap = 10 * sim.Second

// Run generates load for the given duration of virtual time and then
// drains: the engine runs until every in-flight request completes, up to
// DrainCap of extra virtual time. Requests still in flight when the cap
// trips are counted in Dropped. On a closed-loop server (no generator)
// Run only advances time — clients issue continuously, so "drained"
// is meaningless until the caller stops them; call Run again after
// ClosedLoopClient.Stop to flush the tail.
func (s *Server) Run(d sim.Duration) {
	eng := s.sys.Engine
	stop := eng.Now() + d
	if s.gen != nil {
		s.gen.Start(stop)
	}
	eng.Run(stop)
	if s.gen == nil {
		return
	}
	// Drain stragglers: the generator is stopped, so inFlight can only
	// fall.
	deadline := eng.Now() + DrainCap
	for s.inFlight > 0 && eng.Now() < deadline {
		eng.Run(eng.Now() + sim.Millisecond)
	}
	// Snapshot, not accumulate: a request reported here may still
	// complete during a later Run call, so summing across calls would
	// double-count. At any instant served + dropped == generated.
	s.dropped = uint64(s.inFlight)
	// Distinguish "still draining at the cap" from "leaked forever":
	// if the engine still holds pending events the stragglers are making
	// progress and merely outlived the cap (truncated); an empty queue
	// means nothing can ever complete them — a genuine leak. On a ticky
	// server (TimerTickHz > 0) the tick chain keeps the queue non-empty
	// forever, so the discriminator is optimistic there: a leak that
	// coexists with an armed tick chain still reads as truncated.
	if s.inFlight > 0 && eng.Pending() > 0 {
		s.truncated = uint64(s.inFlight)
	} else {
		s.truncated = 0
	}
}

// Dropped reports requests that were still in flight when the most
// recent Run call gave up draining (the DrainCap tripped) — the requests
// older code silently lost. A non-zero value means latency and
// throughput figures exclude these requests. Always 0 on closed-loop
// servers, which do not drain.
func (s *Server) Dropped() uint64 { return s.dropped }

// TruncatedDrain reports the subset of Dropped that was still actively
// draining — the engine had pending events — when the most recent Run
// call's DrainCap tripped. Dropped − TruncatedDrain is the count leaked
// forever: requests no remaining event can ever complete. Always 0 when
// the drain finished (or on closed-loop servers, which do not drain).
func (s *Server) TruncatedDrain() uint64 { return s.truncated }

// Latencies returns the client-observed latency histogram (seconds).
func (s *Server) Latencies() *stats.Histogram { return s.lat }

// InFlight returns the number of requests currently inside the machine
// (submitted but not yet responded). Load-balancing policies and drain
// loops read it.
func (s *Server) InFlight() int { return s.inFlight }

// Served returns the number of completed requests.
func (s *Server) Served() uint64 { return s.served }

// Generated returns the number of requests emitted by the load
// generator (0 for closed-loop servers, which count via the client).
func (s *Server) Generated() uint64 {
	if s.gen == nil {
		return 0
	}
	return s.gen.Generated()
}

// System returns the underlying system.
func (s *Server) System() *soc.System { return s.sys }

// receive models the request's path through the machine.
func (s *Server) receive(req *workload.Request) { s.submit(req, nil) }

// Submit serves one request and calls done (if non-nil) when the
// response leaves the NIC — the hook closed-loop clients use.
func (s *Server) Submit(req *workload.Request, done func()) { s.submit(req, done) }

func (s *Server) submit(req *workload.Request, done func()) {
	s.inFlight++
	r := s.newInflight(req, done)
	nic := s.sys.NICLink()

	// 1. NIC DMA in: the PCIe link wakes if parked (its wake event is
	// also what triggers the PC1A exit flow for network traffic).
	nic.StartTransaction()
	inWire := nic.ExitDelay() + s.cfg.NICTransfer
	s.sys.Engine.Schedule(inWire, r.inWireFn)
}

// dispatch runs fn now, or holds it for the next epoch boundary when
// batching is enabled.
func (s *Server) dispatch(fn func()) {
	if s.cfg.BatchEpoch == 0 {
		fn()
		return
	}
	s.batch = append(s.batch, fn)
	if s.batchArmed {
		return
	}
	s.batchArmed = true
	eng := s.sys.Engine
	next := (eng.Now()/s.cfg.BatchEpoch + 1) * s.cfg.BatchEpoch
	if s.batchFn == nil {
		s.batchFn = func() {
			s.batchArmed = false
			s.batchFlushes++
			// Swap buffers rather than discarding: a dispatch during the
			// flush must land in a fresh batch, but the drained buffer can
			// be recycled for it.
			pending := s.batch
			s.batch = s.batchSpare[:0]
			for i, f := range pending {
				pending[i] = nil
				f()
			}
			s.batchSpare = pending[:0]
		}
	}
	eng.At(next, s.batchFn)
}

// BatchFlushes returns how many epoch releases occurred.
func (s *Server) BatchFlushes() uint64 { return s.batchFlushes }

// execute runs the request on its pinned core and sends the response.
func (s *Server) execute(r *inflight) {
	// 2. Kernel + application execution on the pinned core.
	core := s.sys.Cores[r.req.Conn%len(s.sys.Cores)]
	core.Enqueue(cpu.Work{
		Duration: r.req.Service + s.cfg.KernelOverhead,
		OnStart:  r.startFn,
		OnDone:   r.onDoneFn,
	})
}
