// Package soc assembles the full Skylake-class server system the paper
// evaluates on (Intel Xeon Silver 4114: 10 cores, 3 PCIe + 1 DMI + 2 UPI
// interfaces, 2 memory controllers, 6 DDR4 channels, 18 PLLs) and exposes
// the three evaluation configurations:
//
//	Cshallow — the realistic datacenter baseline: CC6/CC1E disabled,
//	           all package C-states disabled, performance governor.
//	Cdeep    — all C-states enabled (CC6 + PC6), powersave governor:
//	           good idle power, bad latency. Unrealistic for servers.
//	CPC1A    — Cshallow plus the APC architecture: the APMU enters PC1A
//	           whenever all cores are in CC1.
//
// Per-component power values are calibrated so the aggregate reproduces
// the paper's Table 1 and Sec. 5.4 measurements (derivation in
// DESIGN.md).
package soc

import (
	"fmt"

	"agilepkgc/internal/clock"
	apc "agilepkgc/internal/core"
	"agilepkgc/internal/cpu"
	"agilepkgc/internal/dram"
	"agilepkgc/internal/ios"
	"agilepkgc/internal/pmu"
	"agilepkgc/internal/power"
	"agilepkgc/internal/sim"
	"agilepkgc/internal/uncore"
)

// ConfigKind selects one of the paper's three system configurations.
type ConfigKind int

const (
	// Cshallow: CC1-only cores, no package C-states (baseline).
	Cshallow ConfigKind = iota
	// Cdeep: CC6 + PC6 enabled, powersave frequency governor.
	Cdeep
	// CPC1A: Cshallow plus AgilePkgC.
	CPC1A
)

// String names the configuration.
func (k ConfigKind) String() string {
	switch k {
	case Cshallow:
		return "Cshallow"
	case Cdeep:
		return "Cdeep"
	case CPC1A:
		return "C_PC1A"
	default:
		return fmt.Sprintf("ConfigKind(%d)", int(k))
	}
}

// ParseConfigKind maps a configuration name to its kind. It accepts the
// String() forms plus the underscore-free spellings declarative
// scenario files use ("Cshallow", "Cdeep", "CPC1A" / "C_PC1A").
func ParseConfigKind(s string) (ConfigKind, error) {
	switch s {
	case "Cshallow":
		return Cshallow, nil
	case "Cdeep":
		return Cdeep, nil
	case "CPC1A", "C_PC1A":
		return CPC1A, nil
	default:
		return 0, fmt.Errorf("soc: unknown config kind %q (want Cshallow, Cdeep or CPC1A)", s)
	}
}

// Config parameterizes a System. Zero values are filled from defaults.
type Config struct {
	Kind      ConfigKind
	CoreCount int

	// NorthCapWatts is the always-on north-cap base draw (serial ports,
	// fuse unit, clock reference, GPMU microcontroller).
	NorthCapWatts float64

	// Core, CLM, link and MC parameters; zero means calibrated default.
	CoreParams cpu.Params
	CLMParams  uncore.Params
	MCParams   dram.Params

	// PCIeWatts / DMIWatts / UPIWatts: active power per link.
	PCIeWatts float64
	DMIWatts  float64
	UPIWatts  float64

	// Counts of each interface (SKX north-cap: 3 PCIe, 1 DMI, 2 UPI).
	PCIeCount, DMICount, UPICount int

	// APMUConfig applies when Kind == CPC1A.
	APMUConfig apc.Config
	// GPMUConfig's EnablePC6 is forced by Kind unless
	// DisablePkgCStates is set.
	GPMUConfig pmu.Config

	// DisablePkgCStates keeps the GPMU out of PC6 even on Cdeep systems
	// — the paper's Sec. 5.4 measurement trick ("set the package C-state
	// limit to PC2") used to isolate per-component power deltas.
	DisablePkgCStates bool

	// Ablation switches (all false = faithful APC). They disable one of
	// the paper's four techniques each, to quantify its contribution.
	NoCLMRetention bool // skip CLMR: CLM stays at nominal voltage
	NoCKEOff       bool // skip DRAM CKE-off
	NoIOStandby    bool // skip L0s/L0p (links stay in L0)
	PLLsOffInPC1A  bool // turn PLLs off like PC6 (pay relock on exit)
}

// DefaultConfig returns the calibrated 10-core SKX configuration.
func DefaultConfig(kind ConfigKind) Config {
	return Config{
		Kind:          kind,
		CoreCount:     10,
		NorthCapWatts: 3.4,
		CoreParams:    cpu.DefaultParams(),
		CLMParams:     uncore.DefaultParams(),
		MCParams:      dram.DefaultParams(),
		PCIeWatts:     1.4,
		DMIWatts:      1.4,
		UPIWatts:      1.7,
		PCIeCount:     3,
		DMICount:      1,
		UPICount:      2,
		APMUConfig:    apc.DefaultConfig(),
		GPMUConfig:    pmu.DefaultConfig(kind == Cdeep),
	}
}

// System is an assembled server SoC + DRAM.
type System struct {
	Cfg    Config
	Engine *sim.Engine
	Meter  *power.Meter

	Cores []*cpu.Core
	Links []*ios.Link
	MCs   []*dram.MC
	CLM   *uncore.CLM
	GPMU  *pmu.GPMU
	// APMU is non-nil only for CPC1A systems.
	APMU *apc.APMU

	// PLLs holds the 8 non-core PLLs: one per IO controller (6), the
	// CLM's, and the GPMU's.
	PLLs []*clock.PLL

	rrNext int // round-robin cursor for MC interleaving
}

// New assembles a system from the configuration on a fresh engine of its
// own — the single-machine case every experiment uses.
func New(cfg Config) *System {
	return NewOnEngine(cfg, sim.NewEngine())
}

// NewOnEngine assembles a system onto an existing engine. Multiple
// systems may share one engine — that is how package cluster simulates a
// fleet under a single deterministic event order — and each keeps its
// own power meter and channel namespace, so per-server accounting never
// collides. Construction order is the only coupling between co-hosted
// systems: any events scheduled while assembling (none today) would
// interleave in construction order.
func NewOnEngine(cfg Config, eng *sim.Engine) *System {
	if cfg.CoreCount <= 0 {
		panic("soc: CoreCount must be positive")
	}
	meter := power.NewMeter(eng)
	s := &System{Cfg: cfg, Engine: eng, Meter: meter}

	// Cores with per-configuration governor and frequency policy.
	for i := 0; i < cfg.CoreCount; i++ {
		var gov cpu.Governor
		var freq cpu.FreqPolicy
		if cfg.Kind == Cdeep {
			gov = cpu.NewMenuGovernor()
			freq = &cpu.PowersavePolicy{Min: 0.8, Max: cfg.CoreParams.NominalGHz}
		} else {
			gov = cpu.ShallowGovernor{}
			freq = cpu.PerformancePolicy{Nominal: cfg.CoreParams.NominalGHz}
		}
		ch := meter.Channel(fmt.Sprintf("core%d", i), power.Package)
		s.Cores = append(s.Cores, cpu.NewCore(eng, i, cfg.CoreParams, gov, freq, ch))
	}

	// North-cap base (always on).
	meter.Channel("northcap", power.Package).Set(cfg.NorthCapWatts)

	// High-speed IO links, each with its own PLL.
	addLink := func(name string, kind ios.Kind, watts float64) {
		p := ios.DefaultParams(kind, watts)
		if cfg.NoIOStandby {
			// Ablation: standby saves nothing and is never entered; the
			// simplest faithful model is standby at active power with
			// zero exit cost.
			p.StandbyWatts = p.ActiveWatts
			p.StandbyExit = 0
			p.StandbyEntry = 0
		}
		l := ios.NewLink(eng, name, p, meter.Channel(name, power.Package))
		s.Links = append(s.Links, l)
		s.PLLs = append(s.PLLs, clock.NewPLL(eng, name+".pll", clock.DefaultRelockLatency,
			meter.Channel(name+".pll", power.Package)))
	}
	for i := 0; i < cfg.PCIeCount; i++ {
		addLink(fmt.Sprintf("pcie%d", i), ios.PCIe, cfg.PCIeWatts)
	}
	for i := 0; i < cfg.DMICount; i++ {
		addLink(fmt.Sprintf("dmi%d", i), ios.DMI, cfg.DMIWatts)
	}
	for i := 0; i < cfg.UPICount; i++ {
		addLink(fmt.Sprintf("upi%d", i), ios.UPI, cfg.UPIWatts)
	}

	// Two memory controllers.
	for i := 0; i < 2; i++ {
		mp := cfg.MCParams
		if cfg.NoCKEOff {
			mp.MCCKEWatts = mp.MCActiveWatts
			mp.DRAMCKEWatts = mp.DRAMActiveWatts
			mp.CKEExit = 0
			mp.CKEEntry = 0
		}
		mc := dram.NewMC(eng, fmt.Sprintf("mc%d", i), mp, dram.PPD,
			meter.Channel(fmt.Sprintf("mc%d", i), power.Package),
			meter.Channel(fmt.Sprintf("dimm%d", i), power.DRAM))
		s.MCs = append(s.MCs, mc)
	}

	// CLM with its PLL.
	clmp := cfg.CLMParams
	if cfg.NoCLMRetention {
		clmp.RetentionWatts = clmp.GatedWatts
	}
	s.CLM = uncore.New(eng, clmp,
		meter.Channel("clm", power.Package),
		meter.Channel("clm.pll", power.Package))
	s.PLLs = append(s.PLLs, s.CLM.PLL())

	// GPMU with its PLL.
	s.PLLs = append(s.PLLs, clock.NewPLL(eng, "gpmu.pll", clock.DefaultRelockLatency,
		meter.Channel("gpmu.pll", power.Package)))

	gcfg := cfg.GPMUConfig
	gcfg.EnablePC6 = cfg.Kind == Cdeep && !cfg.DisablePkgCStates
	s.GPMU = pmu.New(eng, gcfg, s.Cores, s.Links, s.MCs, s.CLM)
	// PC6 powers off every non-core PLL; the CLM's is handled by the
	// flow directly, so attach the rest.
	var extra []*clock.PLL
	for _, p := range s.PLLs {
		if p != s.CLM.PLL() {
			extra = append(extra, p)
		}
	}
	s.GPMU.AttachPLLs(extra...)

	if cfg.Kind == CPC1A {
		s.APMU = apc.New(eng, cfg.APMUConfig, s.Cores, s.Links, s.MCs, s.CLM, s.GPMU)
		if cfg.PLLsOffInPC1A {
			// Ablation: emulate PLLs-off by adding the relock penalty to
			// every PC1A exit — modeled by turning the PLL power down in
			// PC1A and... the faithful mechanism needs APMU cooperation;
			// the ablation experiment drives this directly instead.
			panic("soc: PLLsOffInPC1A is handled by the ablation experiment, not the assembly")
		}
	}
	return s
}

// NICLink returns the link NIC traffic uses (the first PCIe interface).
func (s *System) NICLink() *ios.Link { return s.Links[0] }

// MemAccess performs n interleaved DRAM accesses (round-robin over the
// two controllers), charging dynamic energy and waking the channels.
// Each controller receives its round-robin share as one AccessN batch:
// the controllers are independent, so regrouping the interleaved issue
// order into per-controller runs leaves every controller's state
// evolution — and the cross-controller order of everything the
// completions schedule — unchanged, while same-instant completions
// collapse into one engine event per controller.
func (s *System) MemAccess(n int) {
	m := len(s.MCs)
	if n <= 0 || m == 0 {
		return
	}
	base, rem := n/m, n%m
	for i := 0; i < m; i++ {
		k := base
		if i < rem {
			k++
		}
		s.MCs[(s.rrNext+i)%m].AccessN(k)
	}
	s.rrNext += n
}

// PackageState returns the effective package C-state: the APMU's view on
// CPC1A systems, the GPMU's otherwise.
func (s *System) PackageState() pmu.PkgState {
	if s.APMU != nil && s.GPMU.State() == pmu.PC0 {
		return s.APMU.State()
	}
	return s.GPMU.State()
}

// SoCPower and DRAMPower return instantaneous draws.
func (s *System) SoCPower() float64 { return s.Meter.Power(power.Package) }

// DRAMPower returns the instantaneous DRAM draw.
func (s *System) DRAMPower() float64 { return s.Meter.Power(power.DRAM) }

// TotalPower returns SoC + DRAM watts.
func (s *System) TotalPower() float64 { return s.Meter.TotalPower() }

// AllCoresIdle reports whether every core is in an idle C-state.
func (s *System) AllCoresIdle() bool {
	for _, c := range s.Cores {
		if !c.InCC1().Level() {
			return false
		}
	}
	return true
}

// ForceAllCC6 drives every core through a tiny job after a long idle so
// menu governors select CC6, then waits for the system to settle. Only
// meaningful on Cdeep systems; used by power-characterization
// experiments.
func (s *System) ForceAllCC6() {
	s.Engine.Run(s.Engine.Now() + 10*sim.Millisecond)
	for _, c := range s.Cores {
		c.Enqueue(cpu.Work{Duration: sim.Microsecond})
	}
	s.Engine.Run(s.Engine.Now() + 20*sim.Millisecond)
}
