package soc

import (
	"math"
	"testing"

	"agilepkgc/internal/cpu"
	"agilepkgc/internal/dram"
	"agilepkgc/internal/ios"
	"agilepkgc/internal/pmu"
	"agilepkgc/internal/sim"
)

func approx(got, want, tol float64) bool { return math.Abs(got-want) <= tol }

func TestConfigKindString(t *testing.T) {
	if Cshallow.String() != "Cshallow" || Cdeep.String() != "Cdeep" || CPC1A.String() != "C_PC1A" {
		t.Fatal("config names wrong")
	}
	if ConfigKind(9).String() != "ConfigKind(9)" {
		t.Fatal("unknown format wrong")
	}
}

func TestAssemblyCounts(t *testing.T) {
	s := New(DefaultConfig(CPC1A))
	if len(s.Cores) != 10 {
		t.Fatalf("cores = %d, want 10 (Xeon Silver 4114)", len(s.Cores))
	}
	if len(s.Links) != 6 {
		t.Fatalf("links = %d, want 6 (3 PCIe + 1 DMI + 2 UPI)", len(s.Links))
	}
	if len(s.MCs) != 2 {
		t.Fatalf("MCs = %d, want 2", len(s.MCs))
	}
	if len(s.PLLs) != 8 {
		t.Fatalf("non-core PLLs = %d, want 8 (paper Sec 5.4)", len(s.PLLs))
	}
	if s.APMU == nil {
		t.Fatal("CPC1A system must have an APMU")
	}
	if New(DefaultConfig(Cshallow)).APMU != nil {
		t.Fatal("Cshallow system must not have an APMU")
	}
	if s.NICLink().Kind() != ios.PCIe {
		t.Fatal("NIC should ride the first PCIe link")
	}
}

// Paper Table 1, PC0idle row: all cores in CC1 → SoC 44 W, DRAM 5.5 W.
func TestPC0IdlePowerMatchesTable1(t *testing.T) {
	s := New(DefaultConfig(Cshallow))
	s.Engine.Run(sim.Millisecond)
	if !s.AllCoresIdle() {
		t.Fatal("system should be idle")
	}
	socW, dramW := s.SoCPower(), s.DRAMPower()
	if !approx(socW, 44.0, 0.5) {
		t.Errorf("PC0idle SoC power %.3f W, want 44 W (Table 1)", socW)
	}
	if !approx(dramW, 5.5, 0.1) {
		t.Errorf("PC0idle DRAM power %.3f W, want 5.5 W (Table 1)", dramW)
	}
	// Uncore+DRAM share: paper Sec. 2 says >65% of SoC+DRAM power.
	coreW := 10 * 1.25
	share := (socW + dramW - coreW) / (socW + dramW)
	if share < 0.65 {
		t.Errorf("uncore+DRAM share %.2f, paper says >0.65", share)
	}
}

// Paper Table 1, PC1A row: SoC 27.5 W, DRAM 1.6 W.
func TestPC1APowerMatchesTable1(t *testing.T) {
	s := New(DefaultConfig(CPC1A))
	s.Engine.Run(sim.Millisecond)
	if s.PackageState() != pmu.PC1A {
		t.Fatalf("state %v, want PC1A", s.PackageState())
	}
	socW, dramW := s.SoCPower(), s.DRAMPower()
	if !approx(socW, 27.5, 0.5) {
		t.Errorf("PC1A SoC power %.3f W, want 27.5 W (Table 1)", socW)
	}
	if !approx(dramW, 1.6, 0.1) {
		t.Errorf("PC1A DRAM power %.3f W, want 1.6 W (Table 1)", dramW)
	}
}

// Paper Table 1, PC6 row: SoC 12 W, DRAM 0.5 W.
func TestPC6PowerMatchesTable1(t *testing.T) {
	s := New(DefaultConfig(Cdeep))
	s.ForceAllCC6()
	if s.PackageState() != pmu.PC6 {
		t.Fatalf("state %v, want PC6", s.PackageState())
	}
	socW, dramW := s.SoCPower(), s.DRAMPower()
	if !approx(socW, 12.0, 0.5) {
		t.Errorf("PC6 SoC power %.3f W, want 12 W (Table 1)", socW)
	}
	if !approx(dramW, 0.5, 0.1) {
		t.Errorf("PC6 DRAM power %.3f W, want 0.5 W (Table 1)", dramW)
	}
}

// Paper Table 1, PC0 row: all cores active ≤ 85 W SoC.
func TestPC0ActivePower(t *testing.T) {
	s := New(DefaultConfig(Cshallow))
	for _, c := range s.Cores {
		c.Enqueue(cpu.Work{Duration: sim.Millisecond})
	}
	s.Engine.Run(500 * sim.Microsecond)
	socW := s.SoCPower()
	if socW > 85.5 || socW < 80 {
		t.Errorf("PC0 all-active SoC power %.3f W, want ≤85 W and near it", socW)
	}
}

// Cshallow never leaves PC0; CPC1A reaches PC1A; Cdeep reaches PC6.
func TestPackageStatePerConfig(t *testing.T) {
	sh := New(DefaultConfig(Cshallow))
	sh.Engine.Run(10 * sim.Millisecond)
	if sh.PackageState() != pmu.PC0 {
		t.Errorf("Cshallow state %v, want PC0", sh.PackageState())
	}
	ap := New(DefaultConfig(CPC1A))
	ap.Engine.Run(10 * sim.Millisecond)
	if ap.PackageState() != pmu.PC1A {
		t.Errorf("CPC1A state %v, want PC1A", ap.PackageState())
	}
	dp := New(DefaultConfig(Cdeep))
	dp.ForceAllCC6()
	if dp.PackageState() != pmu.PC6 {
		t.Errorf("Cdeep state %v, want PC6", dp.PackageState())
	}
}

func TestMemAccessInterleaves(t *testing.T) {
	s := New(DefaultConfig(Cshallow))
	s.MemAccess(4)
	s.Engine.Run(sim.Microsecond)
	if s.MCs[0].Accesses() != 2 || s.MCs[1].Accesses() != 2 {
		t.Fatalf("accesses %d/%d, want 2/2 interleaved", s.MCs[0].Accesses(), s.MCs[1].Accesses())
	}
}

func TestAblationNoCLMRetention(t *testing.T) {
	cfg := DefaultConfig(CPC1A)
	cfg.NoCLMRetention = true
	s := New(cfg)
	s.Engine.Run(sim.Millisecond)
	if s.PackageState() != pmu.PC1A {
		t.Fatal("ablated system should still enter PC1A")
	}
	// Without CLMR the CLM stays at gated power (9.0) instead of 4.6:
	// PC1A SoC power rises by 4.4 W.
	if !approx(s.SoCPower(), 27.5+4.4, 0.5) {
		t.Errorf("no-CLMR PC1A SoC power %.3f, want ~31.9", s.SoCPower())
	}
}

func TestAblationNoCKEOff(t *testing.T) {
	cfg := DefaultConfig(CPC1A)
	cfg.NoCKEOff = true
	s := New(cfg)
	s.Engine.Run(sim.Millisecond)
	// DRAM stays at active power.
	if !approx(s.DRAMPower(), 5.5, 0.1) {
		t.Errorf("no-CKE DRAM power %.3f, want 5.5", s.DRAMPower())
	}
}

func TestAblationNoIOStandby(t *testing.T) {
	cfg := DefaultConfig(CPC1A)
	cfg.NoIOStandby = true
	s := New(cfg)
	s.Engine.Run(sim.Millisecond)
	// Links draw active power even in "standby": +30% of 9 W = +2.7 W.
	if !approx(s.SoCPower(), 27.5+2.7, 0.5) {
		t.Errorf("no-IOSM PC1A SoC power %.3f, want ~30.2", s.SoCPower())
	}
}

func TestInvalidCoreCountPanics(t *testing.T) {
	cfg := DefaultConfig(Cshallow)
	cfg.CoreCount = 0
	defer func() {
		if recover() == nil {
			t.Fatal("zero cores should panic")
		}
	}()
	New(cfg)
}

// DRAM access from PC1A pays the CKE exit (24 ns), not the multi-µs
// self-refresh exit PC6 would impose.
func TestPC1AMemoryWakePenalty(t *testing.T) {
	s := New(DefaultConfig(CPC1A))
	s.Engine.Run(sim.Millisecond)
	if s.MCs[0].Mode() != dram.PowerDown {
		t.Fatal("MC should be in CKE-off in PC1A")
	}
	lat := s.MCs[0].Access(nil)
	base := s.Cfg.MCParams.AccessLatency
	if lat != base+24*sim.Nanosecond {
		t.Fatalf("PC1A memory access latency %v, want base+24ns", lat)
	}
}

// Golden decomposition: the per-channel breakdown at PC0idle must match
// the DESIGN.md calibration table.
func TestGoldenPowerBreakdown(t *testing.T) {
	s := New(DefaultConfig(Cshallow))
	s.Engine.Run(sim.Millisecond)
	checks := map[string]float64{
		"core0":    1.25,
		"clm":      18.1,
		"northcap": 3.4,
		"pcie0":    1.4,
		"dmi0":     1.4,
		"upi0":     1.7,
		"mc0":      0.5,
		"clm.pll":  0.007,
		"gpmu.pll": 0.007,
	}
	for name, want := range checks {
		ch := s.Meter.Lookup(name)
		if ch == nil {
			t.Errorf("channel %q missing", name)
			continue
		}
		if got := ch.Watts(); math.Abs(got-want) > 1e-9 {
			t.Errorf("%s = %v W, want %v", name, got, want)
		}
	}
	dimm := s.Meter.Lookup("dimm0")
	if dimm == nil || math.Abs(dimm.Watts()-2.75) > 1e-9 {
		t.Error("dimm0 should idle at 2.75 W")
	}
}

func TestPLLsOffInPC1APanics(t *testing.T) {
	cfg := DefaultConfig(CPC1A)
	cfg.PLLsOffInPC1A = true
	defer func() {
		if recover() == nil {
			t.Fatal("PLLsOffInPC1A assembly should panic (ablation is experiment-driven)")
		}
	}()
	New(cfg)
}

func TestPackageStateCdeepActive(t *testing.T) {
	s := New(DefaultConfig(Cdeep))
	s.Cores[0].Enqueue(cpu.Work{Duration: 50 * sim.Microsecond})
	s.Engine.Run(10 * sim.Microsecond)
	if s.PackageState() != pmu.PC0 {
		t.Fatalf("state %v with a core running, want PC0", s.PackageState())
	}
}

func TestDisablePkgCStates(t *testing.T) {
	cfg := DefaultConfig(Cdeep)
	cfg.DisablePkgCStates = true
	s := New(cfg)
	s.ForceAllCC6()
	if s.PackageState() != pmu.PC0 {
		t.Fatalf("state %v with package C-states disabled, want PC0", s.PackageState())
	}
	// Cores are still deep: this is the Sec. 5.4 Pcores measurement rig.
	for _, c := range s.Cores {
		if c.State() != cpu.CC6 {
			t.Fatalf("core %d in %v, want CC6", c.ID(), c.State())
		}
	}
}
