package pmu

import (
	"testing"

	"agilepkgc/internal/cpu"
	"agilepkgc/internal/dram"
	"agilepkgc/internal/ios"
	"agilepkgc/internal/sim"
	"agilepkgc/internal/uncore"
)

// rig builds a minimal 2-core system with one PCIe link, one MC and a CLM.
type rig struct {
	eng   *sim.Engine
	cores []*cpu.Core
	link  *ios.Link
	mc    *dram.MC
	clm   *uncore.CLM
	gpmu  *GPMU
}

func newRig(t *testing.T, enablePC6 bool) *rig {
	t.Helper()
	eng := sim.NewEngine()
	gov := func() cpu.Governor {
		if enablePC6 {
			return cpu.NewMenuGovernor()
		}
		return cpu.ShallowGovernor{}
	}
	cores := []*cpu.Core{
		cpu.NewCore(eng, 0, cpu.DefaultParams(), gov(), cpu.PerformancePolicy{Nominal: 2.2}, nil),
		cpu.NewCore(eng, 1, cpu.DefaultParams(), gov(), cpu.PerformancePolicy{Nominal: 2.2}, nil),
	}
	link := ios.NewLink(eng, "pcie0", ios.DefaultParams(ios.PCIe, 1.4), nil)
	mc := dram.NewMC(eng, "mc0", dram.DefaultParams(), dram.PPD, nil, nil)
	clm := uncore.New(eng, uncore.DefaultParams(), nil, nil)
	g := New(eng, DefaultConfig(enablePC6), cores,
		[]*ios.Link{link}, []*dram.MC{mc}, clm)
	return &rig{eng: eng, cores: cores, link: link, mc: mc, clm: clm, gpmu: g}
}

// driveAllToCC6 runs one tiny job on each core and lets the menu governor
// (seeded by a long boot idle) put them in CC6.
func (r *rig) driveAllToCC6(t *testing.T) {
	t.Helper()
	r.eng.Run(10 * sim.Millisecond)
	for _, c := range r.cores {
		c.Enqueue(cpu.Work{Duration: sim.Microsecond})
	}
	r.eng.Run(r.eng.Now() + 5*sim.Millisecond)
	for _, c := range r.cores {
		if c.State() != cpu.CC6 {
			t.Fatalf("core %d in %v, want CC6", c.ID(), c.State())
		}
	}
}

func TestPkgStateStrings(t *testing.T) {
	want := map[PkgState]string{PC0: "PC0", PC2: "PC2", PC6: "PC6", ACC1: "ACC1", PC1A: "PC1A"}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%d → %q, want %q", s, s.String(), w)
		}
	}
	if PkgState(9).String() != "PkgState(9)" {
		t.Error("unknown format wrong")
	}
}

func TestPC6EntryWhenAllCoresDeep(t *testing.T) {
	r := newRig(t, true)
	r.driveAllToCC6(t)
	if r.gpmu.State() != PC6 {
		t.Fatalf("package state %v, want PC6", r.gpmu.State())
	}
	// Device states must match paper Table 2: IOs L1, DRAM SR, PLL off,
	// CLM retention.
	if r.link.State() != ios.L1 {
		t.Errorf("link in %v, want L1", r.link.State())
	}
	if r.mc.Mode() != dram.SelfRefresh {
		t.Errorf("DRAM in %v, want self-refresh", r.mc.Mode())
	}
	if r.clm.PLL().Locked() {
		t.Error("CLM PLL must be off in PC6")
	}
	if !r.clm.AtRetentionVoltage() {
		t.Error("CLM must be at retention in PC6")
	}
	if r.gpmu.Entries(PC6) != 1 || r.gpmu.Entries(PC2) != 1 {
		t.Errorf("entries PC6=%d PC2=%d", r.gpmu.Entries(PC6), r.gpmu.Entries(PC2))
	}
}

func TestNoPC6WhenDisabled(t *testing.T) {
	r := newRig(t, false) // Cshallow: CC6 and PC6 disabled
	r.eng.Run(100 * sim.Millisecond)
	if r.gpmu.State() != PC0 {
		t.Fatalf("state %v with PC6 disabled, want PC0 forever", r.gpmu.State())
	}
	if r.gpmu.Residency(PC0) != 100*sim.Millisecond {
		t.Fatalf("PC0 residency %v", r.gpmu.Residency(PC0))
	}
}

func TestNoPC6WhenCoresOnlyCC1(t *testing.T) {
	// Even with PC6 enabled, cores sitting in CC1 never trigger it —
	// the exact inefficiency the paper attacks.
	eng := sim.NewEngine()
	cores := []*cpu.Core{
		cpu.NewCore(eng, 0, cpu.DefaultParams(), cpu.ShallowGovernor{}, cpu.PerformancePolicy{Nominal: 2.2}, nil),
	}
	link := ios.NewLink(eng, "pcie0", ios.DefaultParams(ios.PCIe, 1.4), nil)
	mc := dram.NewMC(eng, "mc0", dram.DefaultParams(), dram.PPD, nil, nil)
	clm := uncore.New(eng, uncore.DefaultParams(), nil, nil)
	g := New(eng, DefaultConfig(true), cores, []*ios.Link{link}, []*dram.MC{mc}, clm)
	eng.Run(50 * sim.Millisecond)
	if g.State() != PC0 {
		t.Fatalf("state %v, want PC0: CC1 does not qualify for PC6", g.State())
	}
}

func TestPC6ExitOnCoreWake(t *testing.T) {
	r := newRig(t, true)
	r.driveAllToCC6(t)
	t0 := r.eng.Now()
	var doneAt sim.Time
	r.cores[0].Enqueue(cpu.Work{Duration: sim.Microsecond, OnDone: func() { doneAt = r.eng.Now() }})
	r.eng.Run(r.eng.Now() + 2*sim.Millisecond)
	if r.gpmu.State() != PC0 && r.gpmu.State() != PC2 && r.gpmu.State() != PC6 {
		// After the wake and the work the system re-deepens; just check
		// the work ran and the unwind happened.
	}
	if doneAt == 0 {
		t.Fatal("work never completed")
	}
	// The package exit must have taken tens of microseconds.
	exitLat := r.gpmu.LastExitLatency()
	if exitLat < 20*sim.Microsecond {
		t.Fatalf("PC6 exit latency %v, want tens of µs", exitLat)
	}
	_ = t0
	if r.gpmu.Entries(PC0) == 0 {
		t.Fatal("never returned to PC0")
	}
}

func TestPC6RoundTripLatencyOver50us(t *testing.T) {
	r := newRig(t, true)
	r.driveAllToCC6(t)
	entryStart := sim.Time(-1)
	var pc6At, pc0At sim.Time
	r.gpmu.OnTransition(func(old, new PkgState) {
		switch new {
		case PC2:
			if entryStart < 0 {
				entryStart = r.eng.Now()
			}
		case PC6:
			pc6At = r.eng.Now()
		case PC0:
			pc0At = r.eng.Now()
		}
	})
	// Wake it, let it re-enter, then wake again to measure a full cycle.
	r.cores[0].Enqueue(cpu.Work{Duration: sim.Microsecond})
	r.eng.Run(r.eng.Now() + 20*sim.Millisecond)
	if r.gpmu.State() != PC6 {
		t.Fatalf("did not re-enter PC6: %v", r.gpmu.State())
	}
	entry := pc6At - entryStart
	wakeAt := r.eng.Now()
	r.cores[1].Enqueue(cpu.Work{Duration: sim.Microsecond})
	r.eng.Run(r.eng.Now() + sim.Millisecond)
	exit := pc0At - wakeAt
	total := entry + exit
	if total < 50*sim.Microsecond {
		t.Fatalf("PC6 round trip %v (entry %v + exit %v), want >50us per Table 1", total, entry, exit)
	}
	if total > 200*sim.Microsecond {
		t.Fatalf("PC6 round trip %v implausibly slow", total)
	}
}

func TestWakeDuringEntryUnwinds(t *testing.T) {
	r := newRig(t, true)
	r.eng.Run(10 * sim.Millisecond)
	for _, c := range r.cores {
		c.Enqueue(cpu.Work{Duration: sim.Microsecond})
	}
	// Cores re-idle to CC6 at ~14us (1us wake... menu seeded deep);
	// entry flow starts after hysteresis. Interrupt mid-flow.
	entered := false
	r.gpmu.OnTransition(func(old, new PkgState) {
		if new == PC2 && !entered {
			entered = true
			// Inject a wake two steps into the entry.
			r.eng.Schedule(7*sim.Microsecond, func() {
				r.cores[0].Enqueue(cpu.Work{Duration: sim.Microsecond})
			})
		}
	})
	r.eng.Run(r.eng.Now() + 50*sim.Millisecond)
	if !entered {
		t.Fatal("entry flow never started")
	}
	if r.gpmu.Entries(PC0) == 0 {
		t.Fatal("never unwound to PC0")
	}
}

func TestFireTimerPulsesWakeUp(t *testing.T) {
	r := newRig(t, true)
	edges := 0
	r.gpmu.WakeUp().Subscribe(func(l bool) { edges++ })
	r.gpmu.FireTimer()
	if edges != 2 { // rise + fall
		t.Fatalf("WakeUp edges = %d, want 2 (pulse)", edges)
	}
}

func TestTimerWakesPC6(t *testing.T) {
	r := newRig(t, true)
	r.driveAllToCC6(t)
	if r.gpmu.State() != PC6 {
		t.Fatal("setup failed")
	}
	r.gpmu.FireTimer()
	r.eng.Run(r.eng.Now() + sim.Millisecond)
	// No core work, so the system unwinds to PC0 and may re-enter PC6.
	if r.gpmu.Entries(PC0) == 0 {
		t.Fatal("timer wake did not unwind PC6")
	}
}

func TestResidencyAccounting(t *testing.T) {
	r := newRig(t, true)
	r.driveAllToCC6(t)
	r.eng.Run(r.eng.Now() + 10*sim.Millisecond)
	pc6 := r.gpmu.Residency(PC6)
	if pc6 < 9*sim.Millisecond {
		t.Fatalf("PC6 residency %v, want ≥9ms of the last 10ms", pc6)
	}
	total := r.gpmu.Residency(PC0) + r.gpmu.Residency(PC2) + r.gpmu.Residency(PC6)
	if total > r.eng.Now() || total < r.eng.Now()-sim.Millisecond {
		t.Fatalf("residencies %v do not sum to elapsed %v", total, r.eng.Now())
	}
}
