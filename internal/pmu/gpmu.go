// Package pmu implements the firmware-based global power management unit
// (GPMU) of the server SoC and the package C-state machinery it owns:
// the PC0 → PC2 → PC6 entry/exit flow of paper Fig. 2.
//
// The GPMU is deliberately slow: it is a microcontroller running firmware
// that coordinates devices by exchanging messages, so every flow step
// costs microseconds. That firmware cost — plus the deep device states it
// selects (IO L1, DRAM self-refresh, PLLs off, CLM retention) — is why
// PC6 transitions take >50 µs and why the paper's hardware APMU with
// shallow device states is >250× faster.
package pmu

import (
	"fmt"

	"agilepkgc/internal/clock"
	"agilepkgc/internal/cpu"
	"agilepkgc/internal/dram"
	"agilepkgc/internal/ios"
	"agilepkgc/internal/signal"
	"agilepkgc/internal/sim"
	"agilepkgc/internal/uncore"
)

// PkgState enumerates package C-states across both PMUs (GPMU and APMU).
type PkgState int

const (
	// PC0: at least one core active (or the flow fully unwound).
	PC0 PkgState = iota
	// PC2: non-architectural transient between PC0 and deeper states.
	PC2
	// PC6: deep package C-state — IOs in L1, DRAM self-refreshing, PLLs
	// off, CLM in retention.
	PC6
	// ACC1: APC's transient "all cores in CC1" state (paper Fig. 4).
	ACC1
	// PC1A: APC's agile deep package C-state.
	PC1A
)

// String names the state.
func (s PkgState) String() string {
	switch s {
	case PC0:
		return "PC0"
	case PC2:
		return "PC2"
	case PC6:
		return "PC6"
	case ACC1:
		return "ACC1"
	case PC1A:
		return "PC1A"
	default:
		return fmt.Sprintf("PkgState(%d)", int(s))
	}
}

// Config parameterizes the GPMU.
type Config struct {
	// EnablePC6 allows the PC6 flow (the Cdeep baseline). Datacenter
	// configurations disable it.
	EnablePC6 bool
	// StepLatency is the firmware message/handshake cost charged per
	// flow step.
	StepLatency sim.Duration
	// Hysteresis is how long all cores must remain in CC6 before the
	// entry flow starts (demotion filter).
	Hysteresis sim.Duration
}

// DefaultConfig returns firmware costs that land the full PC6 round trip
// above 50 µs, as the paper's Table 1 reports.
func DefaultConfig(enablePC6 bool) Config {
	return Config{
		EnablePC6:   enablePC6,
		StepLatency: 6 * sim.Microsecond,
		Hysteresis:  2 * sim.Microsecond,
	}
}

// GPMU is the firmware global power management unit.
type GPMU struct {
	eng   *sim.Engine
	cfg   Config
	cores []*cpu.Core
	links []*ios.Link
	mcs   []*dram.MC
	clm   *uncore.CLM

	// extraPLLs are the non-core, non-CLM PLLs (per-IO-controller and
	// the GPMU's own) that the PC6 flow powers off — paper Sec. 5.4
	// counts 8 such PLLs including the CLM's.
	extraPLLs []*clock.PLL

	state     PkgState
	deepCount int // cores currently in CC6

	// wakeUp is the WakeUp wire into the APMU (paper Fig. 3): pulsed on
	// interrupts, timer expirations and thermal events.
	wakeUp *signal.Signal

	hystEv      sim.Event
	flowActive  bool // an entry/exit flow is running
	pendingWake bool // wake arrived mid-entry; unwind at next step

	onTransition []func(old, new PkgState)

	// Residency bookkeeping.
	lastChange sim.Time
	residency  [5]sim.Duration
	entries    [5]uint64
	pc6Latency sim.Duration // measured last entry→ready-to-exit→PC0 cost
}

// New creates a GPMU supervising the given devices.
func New(eng *sim.Engine, cfg Config, cores []*cpu.Core, links []*ios.Link, mcs []*dram.MC, clm *uncore.CLM) *GPMU {
	g := &GPMU{
		eng:    eng,
		cfg:    cfg,
		cores:  cores,
		links:  links,
		mcs:    mcs,
		clm:    clm,
		state:  PC0,
		wakeUp: signal.New("GPMU.WakeUp", false),
	}
	for _, c := range cores {
		c.OnTransition(g.coreTransition)
		if c.State() == cpu.CC6 {
			g.deepCount++
		}
		// The PMA drops InCC1 the moment a wake begins — the GPMU
		// starts unwinding the package immediately, concurrently with
		// the core's own (133 µs) CC6 exit. This is why the paper's
		// Table 1 footnote distinguishes "open the path to memory" from
		// the full resume latency.
		c.InCC1().Subscribe(func(level bool) {
			if !level {
				g.wakeFromDeep()
			}
		})
	}
	return g
}

// AttachPLLs registers additional PLLs (IO controllers, GPMU clock) to be
// powered off during PC6 and re-locked on exit.
func (g *GPMU) AttachPLLs(plls ...*clock.PLL) {
	g.extraPLLs = append(g.extraPLLs, plls...)
}

// State returns the GPMU's package state.
func (g *GPMU) State() PkgState { return g.state }

// WakeUp returns the WakeUp wire consumed by the APMU.
func (g *GPMU) WakeUp() *signal.Signal { return g.wakeUp }

// OnTransition registers a package-state-change callback.
func (g *GPMU) OnTransition(fn func(old, new PkgState)) {
	g.onTransition = append(g.onTransition, fn)
}

// Residency returns accumulated time in the given state.
func (g *GPMU) Residency(s PkgState) sim.Duration {
	if s == g.state {
		return g.residency[s] + (g.eng.Now() - g.lastChange)
	}
	return g.residency[s]
}

// Entries returns how many times the given state was entered.
func (g *GPMU) Entries(s PkgState) uint64 { return g.entries[s] }

func (g *GPMU) setState(s PkgState) {
	if s == g.state {
		return
	}
	old := g.state
	now := g.eng.Now()
	g.residency[old] += now - g.lastChange
	g.lastChange = now
	g.state = s
	g.entries[s]++
	for _, fn := range g.onTransition {
		fn(old, s)
	}
}

// FireTimer models a timer expiration or thermal event: the GPMU pulses
// the WakeUp wire (for the APMU) and unwinds its own flow if any.
func (g *GPMU) FireTimer() {
	g.wakeUp.Set()
	g.wakeUp.Unset()
	g.wakeFromDeep()
}

// coreTransition tracks CC6 occupancy and reacts to core activity.
func (g *GPMU) coreTransition(old, new cpu.CState) {
	if old == cpu.CC6 {
		g.deepCount--
	}
	if new == cpu.CC6 {
		g.deepCount++
	}
	if new == cpu.CC6 && g.deepCount == len(g.cores) {
		g.armEntry()
		return
	}
	if old == cpu.CC6 || new == cpu.CC0 {
		// A core is waking: abort/unwind any deep flow.
		g.wakeFromDeep()
	}
}

// allDeepAndQuiet reports whether every core is settled in CC6 with no
// wake in flight (a waking core keeps its CC6 state for the 133 µs exit,
// but its InCC1 wire is already low).
func (g *GPMU) allDeepAndQuiet() bool {
	if g.deepCount != len(g.cores) {
		return false
	}
	for _, c := range g.cores {
		if !c.InCC1().Level() {
			return false
		}
	}
	return true
}

// armEntry schedules the PC6 entry after the hysteresis window.
func (g *GPMU) armEntry() {
	if !g.cfg.EnablePC6 || g.state != PC0 || g.flowActive || g.hystEv.Pending() {
		return
	}
	g.hystEv = g.eng.Schedule(g.cfg.Hysteresis, func() {
		g.hystEv = sim.Event{}
		if g.allDeepAndQuiet() && g.state == PC0 && !g.flowActive {
			g.enterPC6()
		}
	})
}

// enterPC6 runs the Fig. 2 entry flow:
//
//	PC2 → IOs to L1 + DRAM to self-refresh → clock-gate uncore, PLLs
//	off → CLM voltage to retention → PC6
func (g *GPMU) enterPC6() {
	g.flowActive = true
	g.pendingWake = false
	g.setState(PC2)

	step := g.cfg.StepLatency
	g.eng.Schedule(step, func() {
		// IO traffic that arrived during the step (e.g. a NIC DMA that
		// has not yet raised a core interrupt) blocks the descent: the
		// firmware unwinds and will retry when the fabric requiesces.
		if g.ioBusy() {
			g.pendingWake = true
		}
		if g.abortEntry(PC2) {
			return
		}
		// Deep device states, fired in parallel; the firmware then waits
		// for the slowest plus its own handshake.
		var maxDev sim.Duration
		for _, l := range g.links {
			l.EnterL1(nil)
			if d := l.Params().L1EntryLat; d > maxDev {
				maxDev = d
			}
		}
		for _, mc := range g.mcs {
			mc.EnterSelfRefresh(nil)
			if d := mc.Params().SREntry; d > maxDev {
				maxDev = d
			}
		}
		g.eng.Schedule(maxDev+step, func() {
			if g.abortEntry(PC2) {
				return
			}
			// Clock-gate most of the uncore and turn off most PLLs.
			g.clm.ClockGate()
			g.clm.PLL().TurnOff()
			for _, p := range g.extraPLLs {
				p.TurnOff()
			}
			g.eng.Schedule(step, func() {
				if g.abortEntry(PC2) {
					return
				}
				// Reduce CLM voltage to retention, wait for the ramp.
				g.clm.SetRet()
				g.eng.Schedule(g.clm.RampTime()+step, func() {
					if g.abortEntry(PC2) {
						return
					}
					g.flowActive = false
					g.setState(PC6)
					if g.pendingWake {
						g.wakeFromDeep()
					}
				})
			})
		})
	})
}

// ioBusy reports whether any link or memory controller has outstanding
// traffic.
func (g *GPMU) ioBusy() bool {
	for _, l := range g.links {
		if !l.Idle() {
			return true
		}
	}
	for _, mc := range g.mcs {
		if !mc.Idle() {
			return true
		}
	}
	return false
}

// abortEntry checks for a wake that arrived mid-entry; if so it unwinds
// from the current depth.
func (g *GPMU) abortEntry(at PkgState) bool {
	if !g.pendingWake {
		return false
	}
	g.flowActive = false
	g.setState(at)
	g.exitDeep()
	return true
}

// wakeFromDeep begins unwinding whatever deep state the GPMU is in. Safe
// to call at any time.
func (g *GPMU) wakeFromDeep() {
	switch {
	case g.hystEv.Pending():
		g.hystEv.Cancel()
		g.hystEv = sim.Event{}
	case g.flowActive:
		g.pendingWake = true
	case g.state == PC6 || g.state == PC2:
		g.exitDeep()
	}
}

// exitDeep runs the Fig. 2 exit flow in reverse: PLLs on + ungate +
// voltage up, IOs out of L1, DRAM out of self-refresh, then PC0.
func (g *GPMU) exitDeep() {
	if g.flowActive {
		return
	}
	g.flowActive = true
	g.pendingWake = false
	step := g.cfg.StepLatency
	t0 := g.eng.Now()

	// Branch 1: CLM voltage up, PLL relock, then ungate.
	g.clm.UnsetRet()
	g.clm.PLL().TurnOn()
	for _, p := range g.extraPLLs {
		p.TurnOn()
	}
	clmReady := g.clm.RampTime()
	if r := g.clm.PLL().RelockLatency(); r > clmReady {
		clmReady = r
	}
	// Branch 2: IOs retrain from L1; DRAM leaves self-refresh.
	var devReady sim.Duration
	for _, l := range g.links {
		l.ExitL1(nil)
		if d := l.Params().L1ExitLat; d > devReady {
			devReady = d
		}
	}
	for _, mc := range g.mcs {
		mc.ExitSelfRefresh(nil)
		if d := mc.Params().SRExit; d > devReady {
			devReady = d
		}
	}
	wait := clmReady
	if devReady > wait {
		wait = devReady
	}
	// Firmware handshakes: one message round per unwind step (mirror of
	// the four entry steps).
	wait += 4 * step
	g.eng.Schedule(wait, func() {
		if g.clm.Gated() && g.clm.PLL().Locked() {
			g.clm.ClockUngate()
		}
		g.flowActive = false
		g.pc6Latency = g.eng.Now() - t0
		g.setState(PC0)
		// Cores may have re-deepened while we unwound (timer wake with
		// no work): re-arm entry.
		if g.allDeepAndQuiet() {
			g.armEntry()
		}
	})
}

// LastExitLatency returns the duration of the most recent deep-state
// unwind (PC6 → PC0), for the latency experiments.
func (g *GPMU) LastExitLatency() sim.Duration { return g.pc6Latency }
