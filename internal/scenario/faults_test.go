package scenario

import (
	"strings"
	"testing"
)

func faultScenario() Scenario {
	return Scenario{
		Name:     "faults",
		Config:   "CPC1A",
		Workload: Workload{Service: "memcached-bursty", QPS: 150000, Burstiness: 8},
		Cluster: &Cluster{
			Servers: 4, Racks: 2, TorLatencyUS: 5,
			Policy: "rack_power_aware", P99TargetUS: 300,
		},
	}
}

// TestFaultsZeroParity is the tentpole's acceptance parity lock at the
// scenario layer: an all-zero "faults": {} block must render
// byte-identical reports and CSV to a scenario that never mentions
// faults — i.e. to the fault-free fleet the layer shipped with.
func TestFaultsZeroParity(t *testing.T) {
	plain := faultScenario()
	zeroed := faultScenario()
	zeroed.Cluster.Faults = &Faults{}

	opt := quickOpt()
	pRep, pCSV := runArtifacts(t, plain, opt)
	zRep, zCSV := runArtifacts(t, zeroed, opt)
	if pRep != zRep {
		t.Errorf("zero-valued faults block changed the report:\nplain:\n%s\nzeroed:\n%s", pRep, zRep)
	}
	if pCSV != zCSV {
		t.Errorf("zero-valued faults block changed the CSV:\nplain:\n%s\nzeroed:\n%s", pCSV, zCSV)
	}
}

// TestFaultSweepEndToEnd drives the mtbf_us axis through the whole
// stack: crashes must occur and be survived (retries, goodput), the
// conservation invariant must hold per point, and both artifacts must
// carry the fault tables.
func TestFaultSweepEndToEnd(t *testing.T) {
	sc := faultScenario()
	sc.Cluster.Faults = &Faults{
		MTTRUS:           2000,
		RequestTimeoutUS: 2000,
		MaxRetries:       2,
	}
	sc.Sweep = &Sweep{Axis: AxisMTBF, Values: []float64{0, 5000}}
	res, err := sc.Run(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("want 2 points, got %d", len(res.Points))
	}
	for _, p := range res.Points {
		if got := p.OK + p.Failed + p.Shed; got != p.Generated {
			t.Errorf("mtbf=%g: OK %d + Failed %d + Shed %d = %d, want Generated %d",
				p.Axis, p.OK, p.Failed, p.Shed, got, p.Generated)
		}
	}
	calm, stormy := res.Points[0], res.Points[1]
	if calm.Crashes != 0 {
		t.Errorf("mtbf=0 point crashed %d times", calm.Crashes)
	}
	if stormy.Crashes == 0 {
		t.Error("mtbf=5ms point never crashed — injection inert through the scenario layer")
	}
	if stormy.Retried == 0 {
		t.Error("crashes with a retry budget produced no retries")
	}
	if stormy.GoodputQPS <= 0 {
		t.Error("no goodput under faults")
	}

	rep := res.Report()
	if !strings.Contains(rep, "\nfaults:\n") {
		t.Error("report is missing the faults table")
	}
	var b strings.Builder
	if err := res.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "goodput_qps,ok,failed,retried") {
		t.Error("CSV is missing the faults table")
	}
}

// TestFaultSweepPointsDoNotAlias locks the clone-before-mutate contract
// for fault axes: applying a point must not write through to the
// original scenario's faults block.
func TestFaultSweepPointsDoNotAlias(t *testing.T) {
	sc := faultScenario()
	sc.Cluster.Faults = &Faults{MTTRUS: 2000}
	sc.Sweep = &Sweep{Axis: AxisMTBF, Values: []float64{5000}}
	pt := sc.at(AxisMTBF, 5000)
	if pt.Cluster.Faults.MTBFUS != 5000 {
		t.Fatalf("applied point has mtbf_us %g, want 5000", pt.Cluster.Faults.MTBFUS)
	}
	if sc.Cluster.Faults.MTBFUS != 0 {
		t.Errorf("at() wrote through to the original faults block (mtbf_us %g)", sc.Cluster.Faults.MTBFUS)
	}
}

// TestFaultValidation rejects incoherent and silently-inert faults
// blocks at load time, before any simulation runs.
func TestFaultValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Scenario)
		want string
	}{
		{"negative mtbf", func(s *Scenario) {
			s.Cluster.Faults = &Faults{MTBFUS: -1}
		}, "negative cluster.faults.mtbf_us"},
		{"negative retries", func(s *Scenario) {
			s.Cluster.Faults = &Faults{MaxRetries: -1}
		}, "negative cluster.faults.max_retries"},
		{"mtbf without mttr", func(s *Scenario) {
			s.Cluster.Faults = &Faults{MTBFUS: 5000}
		}, "needs mttr_us > 0"},
		{"inert mttr", func(s *Scenario) {
			s.Cluster.Faults = &Faults{MTTRUS: 5000}
		}, "needs mtbf_us > 0"},
		{"brownout without factor", func(s *Scenario) {
			s.Cluster.Faults = &Faults{BrownoutMTBFUS: 5000, BrownoutDurationUS: 100}
		}, "brownout_factor > 1"},
		{"inert brownout factor", func(s *Scenario) {
			s.Cluster.Faults = &Faults{BrownoutFactor: 2}
		}, "need brownout_mtbf_us > 0"},
		{"partition on flat fleet", func(s *Scenario) {
			s.Cluster.Racks, s.Cluster.TorLatencyUS = 0, 0
			s.Cluster.Faults = &Faults{TorPartitionMTBFUS: 5000, TorPartitionDurationUS: 100}
		}, "needs racks > 1"},
		{"inert partition duration", func(s *Scenario) {
			s.Cluster.Faults = &Faults{TorPartitionDurationUS: 100}
		}, "needs tor_partition_mtbf_us > 0"},
		{"inert retries", func(s *Scenario) {
			s.Cluster.Faults = &Faults{MaxRetries: 3}
		}, "nothing would ever retry"},
		{"fault axis without block", func(s *Scenario) {
			s.Sweep = &Sweep{Axis: AxisMTBF, Values: []float64{0, 5000}}
		}, "needs a cluster.faults block"},
		{"mtbf axis without mttr", func(s *Scenario) {
			s.Cluster.Faults = &Faults{}
			s.Sweep = &Sweep{Axis: AxisMTBF, Values: []float64{0, 5000}}
		}, "needs mttr_us > 0"},
		{"mttr axis without mtbf", func(s *Scenario) {
			s.Cluster.Faults = &Faults{}
			s.Sweep = &Sweep{Axis: AxisMTTR, Values: []float64{1000}}
		}, "needs cluster.faults.mtbf_us > 0"},
		{"mttr axis value zero", func(s *Scenario) {
			s.Cluster.Faults = &Faults{MTBFUS: 5000}
			s.Sweep = &Sweep{Axis: AxisMTTR, Values: []float64{0, 1000}}
		}, "never ends"},
		{"fractional retries axis value", func(s *Scenario) {
			s.Cluster.Faults = &Faults{RequestTimeoutUS: 1000}
			s.Sweep = &Sweep{Axis: AxisMaxRetries, Values: []float64{1.5}}
		}, "not an integer"},
		{"retries axis with nothing to trigger it", func(s *Scenario) {
			s.Cluster.Faults = &Faults{}
			s.Sweep = &Sweep{Axis: AxisMaxRetries, Values: []float64{0, 2}}
		}, "nothing would ever retry"},
		{"racks axis spanning flat with partitions", func(s *Scenario) {
			s.Cluster.Racks, s.Cluster.TorLatencyUS = 0, 5
			s.Cluster.Faults = &Faults{TorPartitionMTBFUS: 5000, TorPartitionDurationUS: 100}
			s.Sweep = &Sweep{Axis: AxisRacks, Values: []float64{1, 2}}
		}, "no ToR uplink to cut"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := faultScenario()
			tc.mut(&sc)
			err := sc.Validate()
			if err == nil {
				t.Fatalf("validation passed, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}

	// And the well-formed variants must pass.
	ok := faultScenario()
	ok.Cluster.Faults = &Faults{
		MTBFUS: 50000, MTTRUS: 2000,
		BrownoutMTBFUS: 100000, BrownoutDurationUS: 5000, BrownoutFactor: 4,
		TorPartitionMTBFUS: 200000, TorPartitionDurationUS: 10000,
		RequestTimeoutUS: 2000, MaxRetries: 2, HedgeDelayUS: 500,
	}
	if err := ok.Validate(); err != nil {
		t.Errorf("full faults block rejected: %v", err)
	}
	empty := faultScenario()
	empty.Cluster.Faults = &Faults{}
	if err := empty.Validate(); err != nil {
		t.Errorf("empty faults block rejected: %v", err)
	}
}
