package scenario

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzLoadScenario fuzzes the JSON loader: whatever the bytes, Load
// must return cleanly — no panic — and any error that carries a byte
// offset must be wrapped with the line/column position
// (locateJSONError), so a mangled scenario file always points at the
// failing byte. The seed corpus is every shipped example scenario plus
// a few shapes the examples don't cover.
func FuzzLoadScenario(f *testing.F) {
	examples, err := filepath.Glob(filepath.Join("..", "..", "examples", "scenarios", "*.json"))
	if err != nil {
		f.Fatal(err)
	}
	if len(examples) == 0 {
		f.Fatal("no example scenarios found for the seed corpus")
	}
	for _, path := range examples {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`[]`))
	f.Add([]byte(`[{"name":"a"},{"name":"b"}]`))
	f.Add([]byte(`{"name":"x","config":"CPC1A","workload":{"service":"memcached","qps":1}}{"trailing":1}`))
	f.Add([]byte(`{"name":"x","config":"CPC1A","workload":{"service":"memcached","qps":"oops"}}`))
	f.Add([]byte(`{"name":"x","cluster":{"servers":2,"policy":"round_robin","faults":{"mtbf_us":-1}}}`))
	f.Add([]byte("{\"name\":\n\"unterminated"))
	// Tiered shapes: a valid two-tier graph, an edge into an unknown
	// tier, a hit ratio outside [0,1], fan-out on a never-miss edge,
	// and a two-edge cycle.
	f.Add([]byte(`{"name":"t","config":"CPC1A","workload":{"service":"memcached","qps":1},"tiers":[{"name":"a","servers":1,"policy":"round_robin"},{"name":"b","service":"mysql","servers":1,"policy":"round_robin"}],"edges":[{"from":"a","to":"b","hit_ratio":0.9,"ttl_us":500,"fanout":2}]}`))
	f.Add([]byte(`{"name":"t","tiers":[{"name":"a","servers":1,"policy":"round_robin"}],"edges":[{"from":"a","to":"nope","hit_ratio":0.5}]}`))
	f.Add([]byte(`{"name":"t","tiers":[{"name":"a","servers":1,"policy":"round_robin"},{"name":"b","service":"kafka","servers":1,"policy":"round_robin"}],"edges":[{"from":"a","to":"b","hit_ratio":2}]}`))
	f.Add([]byte(`{"name":"t","tiers":[{"name":"a","servers":1,"policy":"round_robin"},{"name":"b","service":"mysql","servers":1,"policy":"round_robin"}],"edges":[{"from":"a","to":"b","hit_ratio":1,"fanout":3}]}`))
	f.Add([]byte(`{"name":"t","tiers":[{"name":"a","servers":1,"policy":"round_robin"},{"name":"b","service":"mysql","servers":1,"policy":"round_robin"},{"name":"c","service":"mysql","servers":1,"policy":"round_robin"}],"edges":[{"from":"a","to":"b","hit_ratio":0.5},{"from":"b","to":"c","hit_ratio":0.5},{"from":"c","to":"b","hit_ratio":0.5}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		scs, err := Load(bytes.NewReader(data))
		if err != nil {
			// Offset-carrying decode errors must be located: the wrap
			// contract is "line L, column C (byte N)" prefixed onto the
			// original error.
			var synErr *json.SyntaxError
			var typeErr *json.UnmarshalTypeError
			if errors.As(err, &synErr) || errors.As(err, &typeErr) {
				var off int64
				if synErr != nil {
					off = synErr.Offset
				} else {
					off = typeErr.Offset
				}
				if off >= 1 && off <= int64(len(data)) && !strings.Contains(err.Error(), "line ") {
					t.Errorf("offset-carrying error not located: %v", err)
				}
			}
			return
		}
		// A loaded scenario has passed Validate; re-running it must
		// agree (Load's contract is "valid or error", never "loaded
		// but invalid").
		for i := range scs {
			if err := scs[i].Validate(); err != nil {
				t.Errorf("Load returned scenario %d that fails Validate: %v", i, err)
			}
		}
	})
}
