package scenario

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"agilepkgc/internal/cluster"
	"agilepkgc/internal/cpu"
	"agilepkgc/internal/experiments"
	"agilepkgc/internal/pmu"
	"agilepkgc/internal/power"
	"agilepkgc/internal/server"
	"agilepkgc/internal/sim"
	"agilepkgc/internal/soc"
	"agilepkgc/internal/trace"
	"agilepkgc/internal/workload"
	"agilepkgc/internal/workload/replay"
)

// Point is the measured outcome of one scenario operating point.
type Point struct {
	// Axis is the sweep-axis value this point was evaluated at (0 for
	// unswept scenarios; the value's index for the string-valued policy
	// axis).
	Axis float64 `json:"axis"`
	// AxisLabel names the axis value on string-valued axes ("policy");
	// empty on numeric axes.
	AxisLabel string `json:"axis_label,omitempty"`
	// Workload names the effective request stream.
	Workload string `json:"workload"`

	OfferedQPS float64 `json:"offered_qps,omitempty"`
	Served     uint64  `json:"served"`
	Generated  uint64  `json:"generated"`
	Dropped    uint64  `json:"dropped"`

	// Client-observed latencies, seconds.
	MeanLatency float64 `json:"mean_latency_s"`
	P50Latency  float64 `json:"p50_latency_s"`
	P99Latency  float64 `json:"p99_latency_s"`

	// Average watts over the measured window.
	SoCWatts   float64 `json:"soc_w"`
	DRAMWatts  float64 `json:"dram_w"`
	TotalWatts float64 `json:"total_w"`

	// Core residencies over the measured window.
	CC0Residency    float64 `json:"cc0_residency"`
	CC1Residency    float64 `json:"cc1_residency"`
	AllIdle         float64 `json:"all_idle"`
	AllIdleCensored float64 `json:"all_idle_censored"`

	// PC1A statistics. Nil on configurations without an APMU (Cshallow,
	// Cdeep), so JSON consumers can distinguish "not applicable" from a
	// genuine zero measurement. For fleets these are the mean residency
	// over servers and the summed entries.
	PC1AResidency *float64 `json:"pc1a_residency,omitempty"`
	PC1AEntries   *uint64  `json:"pc1a_entries,omitempty"`

	// Servers is the per-server breakdown for fleets of more than one
	// server. It stays empty for single-machine scenarios AND for
	// 1-server fleets — a 1-server fleet is byte-for-byte the single
	// machine (the parity contract), so its aggregate row already is the
	// server.
	Servers []cluster.ServerStats `json:"servers,omitempty"`

	// Racks is the per-rack-zone breakdown for multi-rack fleets. It
	// stays empty for flat fleets (racks ≤ 1), whose aggregate row
	// already is the only zone — which keeps flat output byte-identical
	// to the pre-topology fleet (TestRackFlatParity).
	Racks []cluster.RackStats `json:"racks,omitempty"`

	// Fault-layer outcomes (cluster.faults block; see
	// cluster.Measurement for the semantics — OK + Failed + Shed =
	// Generated once the fleet drains). All zero, and therefore absent
	// from the JSON, without a fault layer — the parity contract.
	OK          uint64  `json:"ok,omitempty"`
	Failed      uint64  `json:"failed,omitempty"`
	Retried     uint64  `json:"retried,omitempty"`
	Hedged      uint64  `json:"hedged,omitempty"`
	Shed        uint64  `json:"shed,omitempty"`
	Crashes     uint64  `json:"crashes,omitempty"`
	Brownouts   uint64  `json:"brownouts,omitempty"`
	Partitions  uint64  `json:"partitions,omitempty"`
	GoodputQPS  float64 `json:"goodput_qps,omitempty"`
	RecoveryP50 float64 `json:"recovery_p50_s,omitempty"`
	RecoveryP99 float64 `json:"recovery_p99_s,omitempty"`

	// TruncatedDrain is the subset of Dropped still in flight when the
	// post-run drain gave up (leaked or unreachable work), as opposed
	// to merely slow; zero on clean runs.
	TruncatedDrain uint64 `json:"truncated_drain,omitempty"`
}

// Result is a completed scenario run: the spec that produced it plus one
// Point per axis value. It implements experiments.Result and
// experiments.CSVWriter, so the CLI treats scenarios and built-in
// experiments uniformly.
type Result struct {
	Scenario Scenario `json:"scenario"`
	// Axis is the swept axis name ("" when unswept).
	Axis   string  `json:"axis,omitempty"`
	Points []Point `json:"points"`
}

// Run evaluates the scenario under the given options (duration, seed and
// parallelism; the scenario's own duration_ms/seed take precedence).
// Sweep points fan out exactly like built-in experiment sweeps: each
// point is a pure function of (options, point), so results are
// bit-identical at any parallelism.
func (s Scenario) Run(opt experiments.Options) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	opt = s.EffectiveOptions(opt)

	axis := ""
	values := []float64{0}
	swept := false
	if s.Sweep != nil {
		axis, swept = s.Sweep.Axis, true
		if axis == AxisPolicy {
			// String-valued axis: the point values are indices into the
			// policy list; at() resolves them back to names.
			values = make([]float64, len(s.Sweep.Policies))
			for i := range values {
				values[i] = float64(i)
			}
		} else {
			values = s.Sweep.Values
		}
	}

	// Resolve every point up front so a bad axis value fails before any
	// simulation runs.
	type job struct {
		axis  float64
		label string
		sc    Scenario
	}
	jobs := make([]job, len(values))
	for i, v := range values {
		pt := s
		label := ""
		if swept {
			pt = s.at(axis, v)
			if axis == AxisPolicy {
				label = s.Sweep.Policies[i]
			}
		}
		kind, err := soc.ParseConfigKind(pt.Config)
		if err != nil {
			return nil, err
		}
		pointErr := func(err error) error {
			if swept {
				return fmt.Errorf("scenario %q [%s=%g]: %w", s.Name, axis, v, err)
			}
			return fmt.Errorf("scenario %q: %w", s.Name, err)
		}
		cores := soc.DefaultConfig(kind).CoreCount
		if pt.Cluster != nil {
			cores *= pt.Cluster.Servers
		}
		if pt.Workload.Service == "trace" {
			if err := pt.Workload.Trace.preflight(); err != nil {
				return nil, pointErr(err)
			}
		} else if _, _, err := pt.Workload.spec(cores); err != nil {
			return nil, pointErr(err)
		}
		if pt.Cluster != nil {
			if err := pt.validateClusterPoint(kind); err != nil {
				return nil, pointErr(err)
			}
		} else if pt.Server.TimerTickHz != nil && *pt.Server.TimerTickHz > 0 &&
			(pt.Server.TickKernelUS == nil || *pt.Server.TickKernelUS <= 0) {
			return nil, pointErr(fmt.Errorf("timer_tick_hz needs tick_kernel_us > 0"))
		}
		jobs[i] = job{axis: v, label: label, sc: pt}
	}

	res := &Result{Scenario: s, Axis: axis}
	// Each sweep worker carries one fleet cache: consecutive cluster
	// points that keep the fleet shape (the common case — the axis sweeps
	// QPS or a policy knob) reset one fleet instead of rebuilding N
	// machines per point. Reset is byte-identical to a fresh build, so
	// results stay bit-identical at any parallelism.
	res.Points = experiments.SweepWith(opt, jobs,
		func() *cluster.Reuse { return new(cluster.Reuse) },
		func(reuse *cluster.Reuse, j job) Point {
			if j.sc.Cluster != nil {
				return runClusterOne(j.sc, j.axis, j.label, opt, reuse)
			}
			return runOne(j.sc, j.axis, opt)
		})
	return res, nil
}

// validateClusterPoint checks the parts of a cluster scenario that only
// exist once the sweep value is applied: the fleet size, that the racks
// divide it evenly, that every per-server override targets a server that
// exists, and that each member's merged configuration is coherent.
func (s *Scenario) validateClusterPoint(kind soc.ConfigKind) error {
	n := s.Cluster.Servers
	if n < 1 {
		return fmt.Errorf("cluster.servers must be at least 1")
	}
	if r := s.Cluster.Racks; r > 1 && n%r != 0 {
		return fmt.Errorf("cluster.racks %d does not divide %d servers into equal racks", r, n)
	}
	for key := range s.Cluster.ServerOverrides {
		if idx, _ := strconv.Atoi(key); idx >= n {
			return fmt.Errorf("cluster.server_overrides[%s]: fleet has only %d servers", key, n)
		}
	}
	for i, mc := range s.clusterMembers(kind, 0) {
		if mc.Server.TimerTickHz > 0 && mc.Server.TickKernelTime <= 0 {
			return fmt.Errorf("server %d: timer_tick_hz needs tick_kernel_us > 0", i)
		}
	}
	return nil
}

// clusterMembers builds the per-server configurations of an applied
// cluster point: evaluation defaults, then the scenario-level Server
// overrides, then that server's entry in cluster.server_overrides.
func (s *Scenario) clusterMembers(kind soc.ConfigKind, seed uint64) []cluster.MemberConfig {
	base := server.DefaultConfig()
	base.Seed = seed
	s.Server.apply(&base)
	members := make([]cluster.MemberConfig, s.Cluster.Servers)
	for i := range members {
		scfg := base
		if ov, ok := s.Cluster.ServerOverrides[strconv.Itoa(i)]; ok {
			ov.apply(&scfg)
		}
		members[i] = cluster.MemberConfig{SoC: soc.DefaultConfig(kind), Server: scfg}
	}
	return members
}

// runClusterOne wires one fully-applied cluster point: N systems and
// servers on one shared engine behind the balancer, measured through the
// same warmup/window sequence as runOne. With one server and
// round_robin, the assembled fleet is event-for-event the runOne wiring,
// so the resulting Point is bit-identical (TestClusterSingleServerParity
// locks this).
func runClusterOne(sc Scenario, axisValue float64, axisLabel string, opt experiments.Options, reuse *cluster.Reuse) Point {
	kind, _ := soc.ParseConfigKind(sc.Config)
	pol, _ := cluster.ParsePolicy(sc.Cluster.Policy)

	// A trace point replays a recorded stream instead of a synthetic
	// generator: the spec comes from the trace header (so packing caps
	// and report fields match the recorded workload bit for bit) and the
	// fleet's source factory binds a Replay over the open file. The file
	// is opened and closed per point — no descriptor outlives the
	// measurement, and the per-worker fleet cache stays file-agnostic.
	var spec workload.Spec
	var newSource func(*sim.Engine, workload.Spec, uint64, func(*workload.Request)) workload.Source
	if sc.Workload.Service == "trace" {
		t := sc.Workload.Trace
		f, err := os.Open(t.Path)
		if err != nil {
			// Unreachable after preflight; see the fleet-error panic below.
			panic(fmt.Sprintf("scenario %q: %v", sc.Name, err))
		}
		defer f.Close()
		rd, err := replay.NewReader(f)
		if err != nil {
			panic(fmt.Sprintf("scenario %q: %v", sc.Name, err))
		}
		spec = rd.Header().Spec()
		rp, err := replay.New(rd, replay.Options{TimeScale: t.TimeScale, Loop: t.Loop})
		if err != nil {
			panic(fmt.Sprintf("scenario %q: %v", sc.Name, err))
		}
		newSource = func(eng *sim.Engine, _ workload.Spec, _ uint64, sink func(*workload.Request)) workload.Source {
			if err := rp.Bind(eng, sink); err != nil {
				panic(fmt.Sprintf("scenario %q: %v", sc.Name, err))
			}
			return rp
		}
	} else {
		spec, _, _ = sc.Workload.spec(sc.Cluster.Servers * soc.DefaultConfig(kind).CoreCount)
	}
	// An absent racks field keeps the zero-value topology; an explicit
	// "racks": 1 goes through the Topology path as Flat(N). Both
	// assemble the identical event sequence — and therefore identical
	// output bytes — as the pre-topology cluster layer, which is exactly
	// what TestRackFlatParity locks by comparing the two.
	var topo cluster.Topology
	if r := sc.Cluster.Racks; r >= 1 {
		topo = cluster.Topology{Racks: r, ServersPerRack: sc.Cluster.Servers / r}
	}
	us := func(v float64) sim.Duration { return sim.Duration(v * float64(sim.Microsecond)) }
	fl, err := reuse.Fleet(cluster.Config{
		Policy:        pol,
		P99Target:     us(sc.Cluster.P99TargetUS),
		Topology:      topo,
		TorLatency:    us(sc.Cluster.TorLatencyUS),
		DrainHold:     us(sc.Cluster.DrainHoldUS),
		FeedbackEpoch: us(sc.Cluster.FeedbackEpochUS),
		Faults:        sc.Cluster.Faults.config(),
		Members:       sc.clusterMembers(kind, opt.Seed),
		NewSource:     newSource,
	}, spec, opt.Seed)
	if err != nil {
		// Unreachable after Validate + validateClusterPoint; a panic here
		// is a missing validation rule, not a user error.
		panic(fmt.Sprintf("scenario %q: %v", sc.Name, err))
	}
	m := fl.Measure(opt.Warmup(), opt.Duration)

	p := Point{
		Axis:            axisValue,
		AxisLabel:       axisLabel,
		Workload:        spec.Name,
		OfferedQPS:      spec.MeanQPS(),
		Served:          m.Served,
		Generated:       m.Generated,
		Dropped:         m.Dropped,
		MeanLatency:     m.MeanLatency,
		P50Latency:      m.P50Latency,
		P99Latency:      m.P99Latency,
		SoCWatts:        m.SoCWatts,
		DRAMWatts:       m.DRAMWatts,
		TotalWatts:      m.TotalWatts,
		CC0Residency:    m.CC0Residency,
		CC1Residency:    m.CC1Residency,
		AllIdle:         m.AllIdle,
		AllIdleCensored: m.AllIdleCensored,
		PC1AResidency:   m.PC1AResidency,
		PC1AEntries:     m.PC1AEntries,
		OK:              m.OK,
		Failed:          m.Failed,
		Retried:         m.Retried,
		Hedged:          m.Hedged,
		Shed:            m.Shed,
		Crashes:         m.Crashes,
		Brownouts:       m.Brownouts,
		Partitions:      m.Partitions,
		GoodputQPS:      m.GoodputQPS,
		RecoveryP50:     m.RecoveryP50,
		RecoveryP99:     m.RecoveryP99,
		TruncatedDrain:  m.TruncatedDrain,
	}
	if sc.Cluster.Servers > 1 {
		p.Servers = m.Servers
	}
	p.Racks = m.Racks
	return p
}

// runOne wires one fully-applied scenario point onto a fresh system —
// the same assembly, warmup and measurement-window sequence the built-in
// experiments use, so an unswept scenario with no overrides reproduces
// their numbers bit for bit.
func runOne(sc Scenario, axisValue float64, opt experiments.Options) Point {
	kind, _ := soc.ParseConfigKind(sc.Config)
	sys := soc.New(soc.DefaultConfig(kind))
	scfg := server.DefaultConfig()
	scfg.Seed = opt.Seed
	sc.Server.apply(&scfg)

	spec, open, _ := sc.Workload.spec(soc.DefaultConfig(kind).CoreCount)
	var srv *server.Server
	var cl *workload.ClosedLoopClient
	if open {
		srv = server.New(sys, scfg, spec)
	} else {
		srv = server.NewClosedLoop(sys, scfg)
		cl = workload.SysbenchOLTP(sys.Engine, sc.Workload.Threads,
			sc.Workload.ThinkMS*1e-3, opt.Seed, srv.Submit)
		cl.Start()
	}

	// Warmup so the measured window starts in steady state — the same
	// formula as the built-in experiments (Options.Warmup), which the
	// bit-for-bit parity contract depends on.
	srv.Run(opt.Warmup())

	tr := trace.New(sys.Engine, sys.Cores)
	snap := sys.Meter.Snapshot()
	t0 := sys.Engine.Now()
	var res0 sim.Duration
	var ent0 uint64
	if sys.APMU != nil {
		res0 = sys.APMU.Residency(pmu.PC1A)
		ent0 = sys.APMU.Entries(pmu.PC1A)
	}
	srv.Run(opt.Duration)
	tr.Finalize()
	if cl != nil {
		cl.Stop()
	}

	p := Point{
		Axis:            axisValue,
		Served:          srv.Served(),
		Generated:       srv.Generated(),
		Dropped:         srv.Dropped(),
		MeanLatency:     srv.Latencies().Mean(),
		P50Latency:      srv.Latencies().Quantile(0.50),
		P99Latency:      srv.Latencies().Quantile(0.99),
		SoCWatts:        snap.AveragePower(power.Package),
		DRAMWatts:       snap.AveragePower(power.DRAM),
		TotalWatts:      snap.AverageTotal(),
		CC0Residency:    tr.MeanResidency(cpu.CC0),
		CC1Residency:    tr.MeanResidency(cpu.CC1),
		AllIdle:         tr.AllIdleFraction(),
		AllIdleCensored: tr.CensoredAllIdleFraction(),
		TruncatedDrain:  srv.TruncatedDrain(),
	}
	if open {
		p.Workload = spec.Name
		p.OfferedQPS = spec.MeanQPS()
	} else {
		p.Workload = fmt.Sprintf("sysbench-%dthr", sc.Workload.Threads)
		p.Generated = cl.Issued()
	}
	if sys.APMU != nil {
		residency := 0.0
		if window := sys.Engine.Now() - t0; window > 0 {
			residency = float64(sys.APMU.Residency(pmu.PC1A)-res0) / float64(window)
		}
		entries := sys.APMU.Entries(pmu.PC1A) - ent0
		p.PC1AResidency, p.PC1AEntries = &residency, &entries
	}
	return p
}

// clusterAnnotated reports whether the rendered report should mention
// the fleet. A 1-server fleet with a fixed policy renders exactly like
// the single machine it is — the parity contract — so only genuinely
// multi-server (or cluster-swept) scenarios get the annotation and the
// per-server breakdown.
func (r *Result) clusterAnnotated() bool {
	c := r.Scenario.Cluster
	return c != nil && (c.Servers > 1 || clusterAxes[r.Axis])
}

// faultsAnnotated reports whether the rendered output should carry the
// fault-outcome tables. An absent block — or an all-zero one — renders
// nothing, so fault-free output keeps its exact byte shape
// (TestFaultsZeroParity); a fault axis annotates even when the base
// block is all-zero, since the sweep supplies the non-zero values.
func (r *Result) faultsAnnotated() bool {
	c := r.Scenario.Cluster
	return c != nil && (c.Faults.enabled() || faultAxes[r.Axis])
}

// fleetDesc names the fleet shape for the report header: rack topology
// when the fleet has one ("2x4 fleet"), plain size otherwise.
func fleetDesc(c *Cluster) string {
	if c.Racks > 1 {
		return fmt.Sprintf("%dx%d fleet", c.Racks, c.Servers/c.Racks)
	}
	return fmt.Sprintf("%d-server fleet", c.Servers)
}

// Report implements experiments.Result.
func (r *Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scenario %s: %s on %s", r.Scenario.Name, r.Scenario.Workload.Service, r.Scenario.Config)
	if r.clusterAnnotated() {
		c := r.Scenario.Cluster
		switch r.Axis {
		case AxisServers:
			fmt.Fprintf(&b, ", fleet (%s)", c.Policy)
		case AxisRacks:
			fmt.Fprintf(&b, ", %d-server fleet (%s)", c.Servers, c.Policy)
		case AxisPolicy:
			fmt.Fprintf(&b, ", %s", fleetDesc(c))
		default:
			fmt.Fprintf(&b, ", %s (%s)", fleetDesc(c), c.Policy)
		}
	}
	if r.Axis != "" {
		fmt.Fprintf(&b, ", sweeping %s", r.Axis)
	}
	b.WriteByte('\n')
	if r.Scenario.Description != "" {
		fmt.Fprintf(&b, "%s\n", r.Scenario.Description)
	}

	axisHdr := r.Axis
	if axisHdr == "" {
		axisHdr = "point"
	}
	header := []string{axisHdr, "workload", "served", "mean", "p99", "SoC", "DRAM", "total", "all-idle", "PC1A res", "dropped"}
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		pc1a := "-"
		if p.PC1AResidency != nil {
			pc1a = fmt.Sprintf("%.1f%%", *p.PC1AResidency*100)
		}
		rows = append(rows, []string{
			p.axisCell(),
			p.Workload,
			fmt.Sprintf("%d", p.Served),
			fmt.Sprintf("%.1fus", p.MeanLatency*1e6),
			fmt.Sprintf("%.1fus", p.P99Latency*1e6),
			fmt.Sprintf("%.1fW", p.SoCWatts),
			fmt.Sprintf("%.2fW", p.DRAMWatts),
			fmt.Sprintf("%.1fW", p.TotalWatts),
			fmt.Sprintf("%.1f%%", p.AllIdle*100),
			pc1a,
			fmt.Sprintf("%d", p.Dropped),
		})
	}
	b.WriteString(experiments.RenderTable(header, rows))

	// Per-server breakdowns, one block per multi-server point — the
	// fleet story (which servers soaked the load, which ones idled into
	// PC1A) lives here, not in the aggregate row.
	for _, p := range r.Points {
		if len(p.Servers) == 0 {
			continue
		}
		fmt.Fprintf(&b, "\nper-server [%s=%s]:\n", axisHdr, p.axisCell())
		srows := make([][]string, 0, len(p.Servers))
		for _, ss := range p.Servers {
			pc1a := "-"
			if ss.PC1AResidency != nil {
				pc1a = fmt.Sprintf("%.1f%%", *ss.PC1AResidency*100)
			}
			srows = append(srows, []string{
				fmt.Sprintf("%d", ss.Index),
				fmt.Sprintf("%d", ss.Routed),
				fmt.Sprintf("%d", ss.Served),
				fmt.Sprintf("%.1fus", ss.MeanLatency*1e6),
				fmt.Sprintf("%.1fus", ss.P99Latency*1e6),
				fmt.Sprintf("%.1fW", ss.TotalWatts),
				fmt.Sprintf("%.1f%%", ss.AllIdle*100),
				pc1a,
				fmt.Sprintf("%d", ss.Dropped),
			})
		}
		b.WriteString(experiments.RenderTable(
			[]string{"server", "routed", "served", "mean", "p99", "total", "all-idle", "PC1A res", "dropped"},
			srows))
	}

	// Per-rack power zones, one block per multi-rack point — whether
	// packing kept whole racks dark is the rack story, and it is only
	// visible at zone granularity.
	for _, p := range r.Points {
		if len(p.Racks) == 0 {
			continue
		}
		fmt.Fprintf(&b, "\nper-rack [%s=%s]:\n", axisHdr, p.axisCell())
		rrows := make([][]string, 0, len(p.Racks))
		for _, rs := range p.Racks {
			local := ""
			if rs.Local {
				local = "*"
			}
			pc1a := "-"
			if rs.PC1AResidency != nil {
				pc1a = fmt.Sprintf("%.1f%%", *rs.PC1AResidency*100)
			}
			rrows = append(rrows, []string{
				fmt.Sprintf("%d%s", rs.Index, local),
				fmt.Sprintf("%d/%d", rs.ActiveServers, rs.Servers),
				fmt.Sprintf("%d", rs.Routed),
				fmt.Sprintf("%d", rs.Served),
				fmt.Sprintf("%.1fus", rs.MeanLatency*1e6),
				fmt.Sprintf("%.1fus", rs.P99Latency*1e6),
				fmt.Sprintf("%.1fW", rs.TotalWatts),
				fmt.Sprintf("%.1f%%", rs.AllIdle*100),
				pc1a,
				fmt.Sprintf("%d", rs.Dropped),
			})
		}
		b.WriteString(experiments.RenderTable(
			[]string{"rack", "active", "routed", "served", "mean", "p99", "zone W", "all-idle", "PC1A res", "dropped"},
			rrows))
	}

	// Fault outcomes, one row per point — what the injected failures
	// cost (failed, shed) and what the robustness mechanisms bought
	// back (retries, hedges, goodput, time to recover).
	if r.faultsAnnotated() {
		b.WriteString("\nfaults:\n")
		frows := make([][]string, 0, len(r.Points))
		for _, p := range r.Points {
			rec := "-"
			if p.RecoveryP99 > 0 {
				rec = fmt.Sprintf("%.1fus", p.RecoveryP99*1e6)
			}
			frows = append(frows, []string{
				p.axisCell(),
				fmt.Sprintf("%.0f", p.GoodputQPS),
				fmt.Sprintf("%d", p.OK),
				fmt.Sprintf("%d", p.Failed),
				fmt.Sprintf("%d", p.Retried),
				fmt.Sprintf("%d", p.Hedged),
				fmt.Sprintf("%d", p.Shed),
				fmt.Sprintf("%d", p.Crashes),
				fmt.Sprintf("%d", p.Brownouts),
				fmt.Sprintf("%d", p.Partitions),
				rec,
			})
		}
		b.WriteString(experiments.RenderTable(
			[]string{axisHdr, "goodput", "ok", "failed", "retried", "hedged", "shed", "crashes", "brownouts", "partitions", "rec p99"},
			frows))
	}
	return b.String()
}

// axisCell renders the sweep-axis value for report tables: the label on
// string-valued axes, the number otherwise.
func (p Point) axisCell() string {
	if p.AxisLabel != "" {
		return p.AxisLabel
	}
	return fmt.Sprintf("%g", p.Axis)
}

// WriteCSV implements experiments.CSVWriter. Rows are fleet aggregates
// (identical in shape to single-machine rows — the parity contract);
// per-server series are in the -json output, not duplicated here. The
// axis_label column is empty except on the string-valued policy axis.
// Multi-rack points additionally emit a second, blank-line-separated
// rack-zone table; flat fleets emit nothing extra, so their CSV stays
// byte-identical to the pre-topology format (TestRackFlatParity).
func (r *Result) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "axis,axis_label,workload,offered_qps,served,generated,dropped,mean_s,p50_s,p99_s,soc_w,dram_w,total_w,cc0,cc1,all_idle,all_idle_censored,pc1a_residency,pc1a_entries"); err != nil {
		return err
	}
	haveRacks := false
	for _, p := range r.Points {
		if len(p.Racks) > 0 {
			haveRacks = true
		}
		// PC1A cells stay empty on configurations without an APMU.
		pc1aRes, pc1aEnt := "", ""
		if p.PC1AResidency != nil {
			pc1aRes = fmt.Sprintf("%g", *p.PC1AResidency)
		}
		if p.PC1AEntries != nil {
			pc1aEnt = fmt.Sprintf("%d", *p.PC1AEntries)
		}
		if _, err := fmt.Fprintf(w, "%g,%s,%s,%g,%d,%d,%d,%g,%g,%g,%g,%g,%g,%g,%g,%g,%g,%s,%s\n",
			p.Axis, p.AxisLabel, p.Workload, p.OfferedQPS, p.Served, p.Generated, p.Dropped,
			p.MeanLatency, p.P50Latency, p.P99Latency,
			p.SoCWatts, p.DRAMWatts, p.TotalWatts,
			p.CC0Residency, p.CC1Residency, p.AllIdle, p.AllIdleCensored,
			pc1aRes, pc1aEnt); err != nil {
			return err
		}
	}
	if !haveRacks {
		return r.writeFaultsCSV(w)
	}
	if _, err := fmt.Fprintln(w, "\naxis,axis_label,rack,local,servers,active_servers,routed,served,dropped,mean_s,p99_s,soc_w,dram_w,total_w,all_idle,pc1a_residency,pc1a_entries"); err != nil {
		return err
	}
	for _, p := range r.Points {
		for _, rs := range p.Racks {
			pc1aRes, pc1aEnt := "", ""
			if rs.PC1AResidency != nil {
				pc1aRes = fmt.Sprintf("%g", *rs.PC1AResidency)
			}
			if rs.PC1AEntries != nil {
				pc1aEnt = fmt.Sprintf("%d", *rs.PC1AEntries)
			}
			if _, err := fmt.Fprintf(w, "%g,%s,%d,%t,%d,%d,%d,%d,%d,%g,%g,%g,%g,%g,%g,%s,%s\n",
				p.Axis, p.AxisLabel, rs.Index, rs.Local, rs.Servers, rs.ActiveServers,
				rs.Routed, rs.Served, rs.Dropped,
				rs.MeanLatency, rs.P99Latency,
				rs.SoCWatts, rs.DRAMWatts, rs.TotalWatts,
				rs.AllIdle, pc1aRes, pc1aEnt); err != nil {
				return err
			}
		}
	}
	return r.writeFaultsCSV(w)
}

// writeFaultsCSV emits the blank-line-separated fault-outcome table.
// Nothing is written without an enabled faults block (or a fault
// axis), so fault-free CSV stays byte-identical to the pre-fault
// format (TestFaultsZeroParity).
func (r *Result) writeFaultsCSV(w io.Writer) error {
	if !r.faultsAnnotated() {
		return nil
	}
	if _, err := fmt.Fprintln(w, "\naxis,axis_label,goodput_qps,ok,failed,retried,hedged,shed,crashes,brownouts,partitions,recovery_p50_s,recovery_p99_s,truncated_drain"); err != nil {
		return err
	}
	for _, p := range r.Points {
		if _, err := fmt.Fprintf(w, "%g,%s,%g,%d,%d,%d,%d,%d,%d,%d,%d,%g,%g,%d\n",
			p.Axis, p.AxisLabel, p.GoodputQPS, p.OK, p.Failed, p.Retried, p.Hedged, p.Shed,
			p.Crashes, p.Brownouts, p.Partitions,
			p.RecoveryP50, p.RecoveryP99, p.TruncatedDrain); err != nil {
			return err
		}
	}
	return nil
}
