package scenario

import (
	"fmt"
	"io"
	"maps"
	"os"
	"slices"
	"strconv"
	"strings"

	"agilepkgc/internal/cluster"
	"agilepkgc/internal/cpu"
	"agilepkgc/internal/experiments"
	"agilepkgc/internal/pmu"
	"agilepkgc/internal/power"
	"agilepkgc/internal/server"
	"agilepkgc/internal/sim"
	"agilepkgc/internal/soc"
	"agilepkgc/internal/trace"
	"agilepkgc/internal/workload"
	"agilepkgc/internal/workload/replay"
)

// Point is the measured outcome of one scenario operating point.
type Point struct {
	// Axis is the sweep-axis value this point was evaluated at (0 for
	// unswept scenarios; the value's index for the string-valued policy
	// axis).
	Axis float64 `json:"axis"`
	// AxisLabel names the axis value on string-valued axes ("policy");
	// empty on numeric axes.
	AxisLabel string `json:"axis_label,omitempty"`
	// Workload names the effective request stream.
	Workload string `json:"workload"`

	OfferedQPS float64 `json:"offered_qps,omitempty"`
	Served     uint64  `json:"served"`
	Generated  uint64  `json:"generated"`
	Dropped    uint64  `json:"dropped"`

	// Client-observed latencies, seconds.
	MeanLatency float64 `json:"mean_latency_s"`
	P50Latency  float64 `json:"p50_latency_s"`
	P99Latency  float64 `json:"p99_latency_s"`

	// Average watts over the measured window.
	SoCWatts   float64 `json:"soc_w"`
	DRAMWatts  float64 `json:"dram_w"`
	TotalWatts float64 `json:"total_w"`

	// Core residencies over the measured window.
	CC0Residency    float64 `json:"cc0_residency"`
	CC1Residency    float64 `json:"cc1_residency"`
	AllIdle         float64 `json:"all_idle"`
	AllIdleCensored float64 `json:"all_idle_censored"`

	// PC1A statistics. Nil on configurations without an APMU (Cshallow,
	// Cdeep), so JSON consumers can distinguish "not applicable" from a
	// genuine zero measurement. For fleets these are the mean residency
	// over servers and the summed entries.
	PC1AResidency *float64 `json:"pc1a_residency,omitempty"`
	PC1AEntries   *uint64  `json:"pc1a_entries,omitempty"`

	// Servers is the per-server breakdown for fleets of more than one
	// server. It stays empty for single-machine scenarios AND for
	// 1-server fleets — a 1-server fleet is byte-for-byte the single
	// machine (the parity contract), so its aggregate row already is the
	// server.
	Servers []cluster.ServerStats `json:"servers,omitempty"`

	// Racks is the per-rack-zone breakdown for multi-rack fleets. It
	// stays empty for flat fleets (racks ≤ 1), whose aggregate row
	// already is the only zone — which keeps flat output byte-identical
	// to the pre-topology fleet (TestRackFlatParity).
	Racks []cluster.RackStats `json:"racks,omitempty"`

	// Tiers is the per-tier breakdown for multi-tier service graphs, in
	// tier order. It stays empty for cluster and single-machine
	// scenarios AND for one-tier graphs — a one-tier graph is
	// byte-for-byte the cluster block (TestTiersSingleTierParity), so
	// its aggregate row already is the tier.
	Tiers []cluster.TierMeasurement `json:"tiers,omitempty"`
	// Edges is the per-edge cache and fan-out accounting; empty without
	// edges. TierEdges would be a misnomer: an edge belongs to the
	// graph, not a tier.
	Edges []cluster.EdgeStats `json:"edges,omitempty"`
	// Client is the end-to-end client view of a multi-tier graph: a
	// root arrival counts served only when its whole miss tree
	// resolves, and its latency spans that tree. Nil without edges —
	// the fleet's own latencies already are the client view.
	Client *cluster.ClientStats `json:"client,omitempty"`

	// Fault-layer outcomes (cluster.faults block; see
	// cluster.Measurement for the semantics — OK + Failed + Shed =
	// Generated once the fleet drains). All zero, and therefore absent
	// from the JSON, without a fault layer — the parity contract.
	OK          uint64  `json:"ok,omitempty"`
	Failed      uint64  `json:"failed,omitempty"`
	Retried     uint64  `json:"retried,omitempty"`
	Hedged      uint64  `json:"hedged,omitempty"`
	Shed        uint64  `json:"shed,omitempty"`
	Crashes     uint64  `json:"crashes,omitempty"`
	Brownouts   uint64  `json:"brownouts,omitempty"`
	Partitions  uint64  `json:"partitions,omitempty"`
	GoodputQPS  float64 `json:"goodput_qps,omitempty"`
	RecoveryP50 float64 `json:"recovery_p50_s,omitempty"`
	RecoveryP99 float64 `json:"recovery_p99_s,omitempty"`

	// TruncatedDrain is the subset of Dropped still in flight when the
	// post-run drain gave up (leaked or unreachable work), as opposed
	// to merely slow; zero on clean runs.
	TruncatedDrain uint64 `json:"truncated_drain,omitempty"`
}

// Result is a completed scenario run: the spec that produced it plus one
// Point per axis value. It implements experiments.Result and
// experiments.CSVWriter, so the CLI treats scenarios and built-in
// experiments uniformly.
type Result struct {
	Scenario Scenario `json:"scenario"`
	// Axis is the swept axis name ("" when unswept).
	Axis   string  `json:"axis,omitempty"`
	Points []Point `json:"points"`
}

// Run evaluates the scenario under the given options (duration, seed and
// parallelism; the scenario's own duration_ms/seed take precedence).
// Sweep points fan out exactly like built-in experiment sweeps: each
// point is a pure function of (options, point), so results are
// bit-identical at any parallelism.
func (s Scenario) Run(opt experiments.Options) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	opt = s.EffectiveOptions(opt)

	axis := ""
	values := []float64{0}
	swept := false
	if s.Sweep != nil {
		axis, swept = s.Sweep.Axis, true
		if axis == AxisPolicy {
			// String-valued axis: the point values are indices into the
			// policy list; at() resolves them back to names.
			values = make([]float64, len(s.Sweep.Policies))
			for i := range values {
				values[i] = float64(i)
			}
		} else {
			values = s.Sweep.Values
		}
	}

	// Resolve every point up front so a bad axis value fails before any
	// simulation runs.
	type job struct {
		axis  float64
		label string
		sc    Scenario
	}
	jobs := make([]job, len(values))
	for i, v := range values {
		pt := s
		label := ""
		if swept {
			pt = s.at(axis, v)
			if axis == AxisPolicy {
				label = s.Sweep.Policies[i]
			}
		}
		kind, err := soc.ParseConfigKind(pt.Config)
		if err != nil {
			return nil, err
		}
		pointErr := func(err error) error {
			if swept {
				return fmt.Errorf("scenario %q [%s=%g]: %w", s.Name, axis, v, err)
			}
			return fmt.Errorf("scenario %q: %w", s.Name, err)
		}
		cores := soc.DefaultConfig(kind).CoreCount
		if pt.Cluster != nil {
			cores *= pt.Cluster.Servers
		} else if len(pt.Tiers) > 0 {
			cores *= pt.Tiers[0].Servers
		}
		if pt.Workload.Service == "trace" {
			if err := pt.Workload.Trace.preflight(); err != nil {
				return nil, pointErr(err)
			}
		} else if _, _, err := pt.Workload.spec(cores); err != nil {
			return nil, pointErr(err)
		}
		switch {
		case pt.Cluster != nil:
			if err := pt.validateClusterPoint(kind); err != nil {
				return nil, pointErr(err)
			}
		case len(pt.Tiers) > 0:
			if err := pt.validateTieredPoint(kind); err != nil {
				return nil, pointErr(err)
			}
		default:
			if pt.Server.TimerTickHz != nil && *pt.Server.TimerTickHz > 0 &&
				(pt.Server.TickKernelUS == nil || *pt.Server.TickKernelUS <= 0) {
				return nil, pointErr(fmt.Errorf("timer_tick_hz needs tick_kernel_us > 0"))
			}
		}
		jobs[i] = job{axis: v, label: label, sc: pt}
	}

	res := &Result{Scenario: s, Axis: axis}
	// Each sweep worker carries one fleet cache and one graph cache:
	// consecutive points that keep the shape (the common case — the axis
	// sweeps QPS or a policy knob, or an edge's hit ratio) reset one
	// fleet/graph instead of rebuilding N machines per point. Reset is
	// byte-identical to a fresh build, so results stay bit-identical at
	// any parallelism.
	res.Points = experiments.SweepWith(opt, jobs,
		func() *runScratch { return new(runScratch) },
		func(scratch *runScratch, j job) Point {
			switch {
			case j.sc.Cluster != nil:
				return runClusterOne(j.sc, j.axis, j.label, opt, &scratch.fleet)
			case len(j.sc.Tiers) > 0:
				return runTieredOne(j.sc, j.axis, j.label, opt, &scratch.graph)
			default:
				return runOne(j.sc, j.axis, opt)
			}
		})
	return res, nil
}

// runScratch is one sweep worker's reusable simulation state.
type runScratch struct {
	fleet cluster.Reuse
	graph cluster.GraphReuse
}

// validateClusterPoint checks the parts of a cluster scenario that only
// exist once the sweep value is applied: the fleet size, that the racks
// divide it evenly, that every per-server override targets a server that
// exists, and that each member's merged configuration is coherent.
func (s *Scenario) validateClusterPoint(kind soc.ConfigKind) error {
	n := s.Cluster.Servers
	if n < 1 {
		return fmt.Errorf("cluster.servers must be at least 1")
	}
	if r := s.Cluster.Racks; r > 1 && n%r != 0 {
		return fmt.Errorf("cluster.racks %d does not divide %d servers into equal racks", r, n)
	}
	for _, key := range slices.Sorted(maps.Keys(s.Cluster.ServerOverrides)) {
		if idx, _ := strconv.Atoi(key); idx >= n {
			return fmt.Errorf("cluster.server_overrides[%s]: fleet has only %d servers", key, n)
		}
	}
	for i, mc := range s.clusterMembers(kind, 0) {
		if mc.Server.TimerTickHz > 0 && mc.Server.TickKernelTime <= 0 {
			return fmt.Errorf("server %d: timer_tick_hz needs tick_kernel_us > 0", i)
		}
	}
	return nil
}

// validateTieredPoint runs the applied-point checks of
// validateClusterPoint on every tier of a service graph.
func (s *Scenario) validateTieredPoint(kind soc.ConfigKind) error {
	for ti := range s.Tiers {
		t := &s.Tiers[ti]
		n := t.Servers
		if n < 1 {
			return fmt.Errorf("tiers[%d].servers must be at least 1", ti)
		}
		if r := t.Racks; r > 1 && n%r != 0 {
			return fmt.Errorf("tiers[%d].racks %d does not divide %d servers into equal racks", ti, r, n)
		}
		for _, key := range slices.Sorted(maps.Keys(t.ServerOverrides)) {
			if idx, _ := strconv.Atoi(key); idx >= n {
				return fmt.Errorf("tiers[%d].server_overrides[%s]: tier has only %d servers", ti, key, n)
			}
		}
		for i, mc := range s.memberConfigs(&t.Cluster, kind, 0) {
			if mc.Server.TimerTickHz > 0 && mc.Server.TickKernelTime <= 0 {
				return fmt.Errorf("tiers[%d] server %d: timer_tick_hz needs tick_kernel_us > 0", ti, i)
			}
		}
	}
	return nil
}

// clusterMembers builds the per-server configurations of an applied
// cluster point: evaluation defaults, then the scenario-level Server
// overrides, then that server's entry in cluster.server_overrides.
func (s *Scenario) clusterMembers(kind soc.ConfigKind, seed uint64) []cluster.MemberConfig {
	return s.memberConfigs(s.Cluster, kind, seed)
}

// memberConfigs builds one fleet-shape block's per-server
// configurations — the cluster block's or one tier's. The scenario-level
// Server overrides are the base of every block's servers; the block's
// own ServerOverrides refine them per server.
func (s *Scenario) memberConfigs(c *Cluster, kind soc.ConfigKind, seed uint64) []cluster.MemberConfig {
	base := server.DefaultConfig()
	base.Seed = seed
	s.Server.apply(&base)
	members := make([]cluster.MemberConfig, c.Servers)
	for i := range members {
		scfg := base
		if ov, ok := c.ServerOverrides[strconv.Itoa(i)]; ok {
			ov.apply(&scfg)
		}
		members[i] = cluster.MemberConfig{SoC: soc.DefaultConfig(kind), Server: scfg}
	}
	return members
}

// runClusterOne wires one fully-applied cluster point: N systems and
// servers on one shared engine behind the balancer, measured through the
// same warmup/window sequence as runOne. With one server and
// round_robin, the assembled fleet is event-for-event the runOne wiring,
// so the resulting Point is bit-identical (TestClusterSingleServerParity
// locks this).
func runClusterOne(sc Scenario, axisValue float64, axisLabel string, opt experiments.Options, reuse *cluster.Reuse) Point {
	kind, _ := soc.ParseConfigKind(sc.Config)
	pol, _ := cluster.ParsePolicy(sc.Cluster.Policy)

	// A trace point replays a recorded stream instead of a synthetic
	// generator: the spec comes from the trace header (so packing caps
	// and report fields match the recorded workload bit for bit) and the
	// fleet's source factory binds a Replay over the open file. The file
	// is opened and closed per point — no descriptor outlives the
	// measurement, and the per-worker fleet cache stays file-agnostic.
	var spec workload.Spec
	var newSource func(*sim.Engine, workload.Spec, uint64, func(*workload.Request)) workload.Source
	if sc.Workload.Service == "trace" {
		t := sc.Workload.Trace
		f, err := os.Open(t.Path)
		if err != nil {
			// Unreachable after preflight; see the fleet-error panic below.
			panic(fmt.Sprintf("scenario %q: %v", sc.Name, err))
		}
		defer f.Close()
		rd, err := replay.NewReader(f)
		if err != nil {
			panic(fmt.Sprintf("scenario %q: %v", sc.Name, err))
		}
		spec = rd.Header().Spec()
		rp, err := replay.New(rd, replay.Options{TimeScale: t.TimeScale, Loop: t.Loop})
		if err != nil {
			panic(fmt.Sprintf("scenario %q: %v", sc.Name, err))
		}
		newSource = func(eng *sim.Engine, _ workload.Spec, _ uint64, sink func(*workload.Request)) workload.Source {
			if err := rp.Bind(eng, sink); err != nil {
				panic(fmt.Sprintf("scenario %q: %v", sc.Name, err))
			}
			return rp
		}
	} else {
		spec, _, _ = sc.Workload.spec(sc.Cluster.Servers * soc.DefaultConfig(kind).CoreCount)
	}
	// An absent racks field keeps the zero-value topology; an explicit
	// "racks": 1 goes through the Topology path as Flat(N). Both
	// assemble the identical event sequence — and therefore identical
	// output bytes — as the pre-topology cluster layer, which is exactly
	// what TestRackFlatParity locks by comparing the two.
	var topo cluster.Topology
	if r := sc.Cluster.Racks; r >= 1 {
		topo = cluster.Topology{Racks: r, ServersPerRack: sc.Cluster.Servers / r}
	}
	us := func(v float64) sim.Duration { return sim.Duration(v * float64(sim.Microsecond)) }
	fl, err := reuse.Fleet(cluster.Config{
		Policy:        pol,
		P99Target:     us(sc.Cluster.P99TargetUS),
		Topology:      topo,
		TorLatency:    us(sc.Cluster.TorLatencyUS),
		DrainHold:     us(sc.Cluster.DrainHoldUS),
		FeedbackEpoch: us(sc.Cluster.FeedbackEpochUS),
		Faults:        sc.Cluster.Faults.config(),
		Members:       sc.clusterMembers(kind, opt.Seed),
		NewSource:     newSource,
	}, spec, opt.Seed)
	if err != nil {
		// Unreachable after Validate + validateClusterPoint; a panic here
		// is a missing validation rule, not a user error.
		panic(fmt.Sprintf("scenario %q: %v", sc.Name, err))
	}
	m := fl.Measure(opt.Warmup(), opt.Duration)

	p := Point{
		Axis:            axisValue,
		AxisLabel:       axisLabel,
		Workload:        spec.Name,
		OfferedQPS:      spec.MeanQPS(),
		Served:          m.Served,
		Generated:       m.Generated,
		Dropped:         m.Dropped,
		MeanLatency:     m.MeanLatency,
		P50Latency:      m.P50Latency,
		P99Latency:      m.P99Latency,
		SoCWatts:        m.SoCWatts,
		DRAMWatts:       m.DRAMWatts,
		TotalWatts:      m.TotalWatts,
		CC0Residency:    m.CC0Residency,
		CC1Residency:    m.CC1Residency,
		AllIdle:         m.AllIdle,
		AllIdleCensored: m.AllIdleCensored,
		PC1AResidency:   m.PC1AResidency,
		PC1AEntries:     m.PC1AEntries,
		OK:              m.OK,
		Failed:          m.Failed,
		Retried:         m.Retried,
		Hedged:          m.Hedged,
		Shed:            m.Shed,
		Crashes:         m.Crashes,
		Brownouts:       m.Brownouts,
		Partitions:      m.Partitions,
		GoodputQPS:      m.GoodputQPS,
		RecoveryP50:     m.RecoveryP50,
		RecoveryP99:     m.RecoveryP99,
		TruncatedDrain:  m.TruncatedDrain,
	}
	if sc.Cluster.Servers > 1 {
		p.Servers = m.Servers
	}
	p.Racks = m.Racks
	return p
}

// tierSpec synthesizes the workload spec of a backend tier at the
// expected miss rate flowing into it. The graph's push sources never
// sample the arrival process — upstream misses drive emission — but
// the spec still names the tier's stream, sizes its connections and
// supplies the service-time distribution the balancer derives packing
// caps from.
func tierSpec(service string, rate float64, cores int) workload.Spec {
	if rate <= 0 {
		// A hit-ratio-1 point never misses; the rate only names the spec.
		rate = 1
	}
	switch service {
	case "memcached":
		return workload.Memcached(rate)
	case "mysql":
		probe := workload.MySQL(1, cores)
		return workload.MySQL(rate*probe.Service.Mean()/float64(cores), cores)
	case "kafka":
		probe := workload.Kafka(1, cores)
		return workload.Kafka(rate*probe.Service.Mean()/float64(cores), cores)
	}
	// Unreachable after Validate; a panic here is a missing rule.
	panic(fmt.Sprintf("tierSpec: unknown service %q", service))
}

// runTieredOne wires one fully-applied service-graph point: every tier
// a full fleet on one shared engine, edges carrying misses downstream
// (see cluster.Graph), measured through the same warmup/window sequence
// as runClusterOne. A one-tier graph assembles event-for-event the
// cluster-block wiring, so its Point is bit-identical
// (TestTiersSingleTierParity locks this).
func runTieredOne(sc Scenario, axisValue float64, axisLabel string, opt experiments.Options, reuse *cluster.GraphReuse) Point {
	kind, _ := soc.ParseConfigKind(sc.Config)
	cores := soc.DefaultConfig(kind).CoreCount
	rootSpec, _, _ := sc.Workload.spec(sc.Tiers[0].Servers * cores)
	us := func(v float64) sim.Duration { return sim.Duration(v * float64(sim.Microsecond)) }

	names := make(map[string]int, len(sc.Tiers))
	for i := range sc.Tiers {
		names[sc.Tiers[i].Name] = i
	}
	// Expected per-tier arrival rates — the root rate scaled by each
	// edge's miss probability and fan-out — size the backend specs. The
	// graph is a DAG, so |tiers| relaxation rounds reach the fixpoint.
	rates := make([]float64, len(sc.Tiers))
	rates[0] = rootSpec.MeanQPS()
	for range sc.Tiers {
		next := make([]float64, len(rates))
		next[0] = rates[0]
		for _, e := range sc.Edges {
			fanout := e.Fanout
			if fanout < 1 {
				fanout = 1
			}
			next[names[e.To]] += rates[names[e.From]] * (1 - e.HitRatio) * float64(fanout)
		}
		rates = next
	}

	gcfg := cluster.GraphConfig{
		Tiers: make([]cluster.TierConfig, len(sc.Tiers)),
		Edges: make([]cluster.EdgeConfig, len(sc.Edges)),
	}
	for i := range sc.Tiers {
		t := &sc.Tiers[i]
		pol, _ := cluster.ParsePolicy(t.Policy)
		var topo cluster.Topology
		if r := t.Racks; r >= 1 {
			topo = cluster.Topology{Racks: r, ServersPerRack: t.Servers / r}
		}
		spec := rootSpec
		if i > 0 {
			spec = tierSpec(t.Service, rates[i], cores)
		}
		gcfg.Tiers[i] = cluster.TierConfig{
			Name: t.Name,
			Cluster: cluster.Config{
				Policy:        pol,
				P99Target:     us(t.P99TargetUS),
				Topology:      topo,
				TorLatency:    us(t.TorLatencyUS),
				DrainHold:     us(t.DrainHoldUS),
				FeedbackEpoch: us(t.FeedbackEpochUS),
				Faults:        t.Faults.config(),
				Members:       sc.memberConfigs(&t.Cluster, kind, opt.Seed),
			},
			Spec: spec,
		}
	}
	for i, e := range sc.Edges {
		gcfg.Edges[i] = cluster.EdgeConfig{
			From:     names[e.From],
			To:       names[e.To],
			HitRatio: e.HitRatio,
			TTL:      us(e.TTLUS),
			Fanout:   e.Fanout,
		}
	}
	g, err := reuse.Graph(gcfg, opt.Seed)
	if err != nil {
		// Unreachable after Validate + validateTieredPoint; a panic here
		// is a missing validation rule, not a user error.
		panic(fmt.Sprintf("scenario %q: %v", sc.Name, err))
	}
	gm := g.Measure(opt.Warmup(), opt.Duration)

	p := Point{
		Axis:       axisValue,
		AxisLabel:  axisLabel,
		Workload:   rootSpec.Name,
		OfferedQPS: rootSpec.MeanQPS(),
	}
	if len(gcfg.Edges) == 0 {
		// One-tier graph: the parity contract — this Point must be
		// byte-identical to runClusterOne's for the same block.
		m := &gm.Tiers[0].Fleet
		p.Served = m.Served
		p.Generated = m.Generated
		p.Dropped = m.Dropped
		p.MeanLatency = m.MeanLatency
		p.P50Latency = m.P50Latency
		p.P99Latency = m.P99Latency
		p.SoCWatts = m.SoCWatts
		p.DRAMWatts = m.DRAMWatts
		p.TotalWatts = m.TotalWatts
		p.CC0Residency = m.CC0Residency
		p.CC1Residency = m.CC1Residency
		p.AllIdle = m.AllIdle
		p.AllIdleCensored = m.AllIdleCensored
		p.PC1AResidency = m.PC1AResidency
		p.PC1AEntries = m.PC1AEntries
		p.OK = m.OK
		p.Failed = m.Failed
		p.Retried = m.Retried
		p.Hedged = m.Hedged
		p.Shed = m.Shed
		p.Crashes = m.Crashes
		p.Brownouts = m.Brownouts
		p.Partitions = m.Partitions
		p.GoodputQPS = m.GoodputQPS
		p.RecoveryP50 = m.RecoveryP50
		p.RecoveryP99 = m.RecoveryP99
		p.TruncatedDrain = m.TruncatedDrain
		if sc.Tiers[0].Servers > 1 {
			p.Servers = m.Servers
		}
		p.Racks = m.Racks
		return p
	}

	// Multi-tier: the aggregate row is the client's view — an arrival
	// counts served when its whole miss tree resolves, latency spans the
	// tree — over summed power and fault counters; residencies are
	// server-count-weighted means. The per-tier story lives in p.Tiers.
	p.Served = gm.Client.Served
	p.Generated = gm.Tiers[0].Fleet.Generated
	p.MeanLatency = gm.Client.MeanLatency
	p.P50Latency = gm.Client.P50Latency
	p.P99Latency = gm.Client.P99Latency
	var pc1aSum float64
	var pc1aServers int
	var pc1aEntries uint64
	havePC1A := false
	totalServers := 0
	for ti := range gm.Tiers {
		m := &gm.Tiers[ti].Fleet
		n := sc.Tiers[ti].Servers
		totalServers += n
		p.Dropped += m.Dropped
		p.SoCWatts += m.SoCWatts
		p.DRAMWatts += m.DRAMWatts
		p.TotalWatts += m.TotalWatts
		p.CC0Residency += m.CC0Residency * float64(n)
		p.CC1Residency += m.CC1Residency * float64(n)
		p.AllIdle += m.AllIdle * float64(n)
		p.AllIdleCensored += m.AllIdleCensored * float64(n)
		if m.PC1AResidency != nil {
			havePC1A = true
			pc1aSum += *m.PC1AResidency * float64(n)
			pc1aServers += n
			pc1aEntries += *m.PC1AEntries
		}
		p.OK += m.OK
		p.Failed += m.Failed
		p.Retried += m.Retried
		p.Hedged += m.Hedged
		p.Shed += m.Shed
		p.Crashes += m.Crashes
		p.Brownouts += m.Brownouts
		p.Partitions += m.Partitions
		p.GoodputQPS += m.GoodputQPS
		// Worst-case recovery across tiers: a graph is only as healed as
		// its slowest tier.
		if m.RecoveryP50 > p.RecoveryP50 {
			p.RecoveryP50 = m.RecoveryP50
		}
		if m.RecoveryP99 > p.RecoveryP99 {
			p.RecoveryP99 = m.RecoveryP99
		}
		p.TruncatedDrain += m.TruncatedDrain
	}
	p.CC0Residency /= float64(totalServers)
	p.CC1Residency /= float64(totalServers)
	p.AllIdle /= float64(totalServers)
	p.AllIdleCensored /= float64(totalServers)
	if havePC1A {
		res := pc1aSum / float64(pc1aServers)
		p.PC1AResidency, p.PC1AEntries = &res, &pc1aEntries
	}
	p.Tiers = gm.Tiers
	p.Edges = gm.Edges
	p.Client = gm.Client
	return p
}

// runOne wires one fully-applied scenario point onto a fresh system —
// the same assembly, warmup and measurement-window sequence the built-in
// experiments use, so an unswept scenario with no overrides reproduces
// their numbers bit for bit.
func runOne(sc Scenario, axisValue float64, opt experiments.Options) Point {
	kind, _ := soc.ParseConfigKind(sc.Config)
	sys := soc.New(soc.DefaultConfig(kind))
	scfg := server.DefaultConfig()
	scfg.Seed = opt.Seed
	sc.Server.apply(&scfg)

	spec, open, _ := sc.Workload.spec(soc.DefaultConfig(kind).CoreCount)
	var srv *server.Server
	var cl *workload.ClosedLoopClient
	if open {
		srv = server.New(sys, scfg, spec)
	} else {
		srv = server.NewClosedLoop(sys, scfg)
		cl = workload.SysbenchOLTP(sys.Engine, sc.Workload.Threads,
			sc.Workload.ThinkMS*1e-3, opt.Seed, srv.Submit)
		cl.Start()
	}

	// Warmup so the measured window starts in steady state — the same
	// formula as the built-in experiments (Options.Warmup), which the
	// bit-for-bit parity contract depends on.
	srv.Run(opt.Warmup())

	tr := trace.New(sys.Engine, sys.Cores)
	snap := sys.Meter.Snapshot()
	t0 := sys.Engine.Now()
	var res0 sim.Duration
	var ent0 uint64
	if sys.APMU != nil {
		res0 = sys.APMU.Residency(pmu.PC1A)
		ent0 = sys.APMU.Entries(pmu.PC1A)
	}
	srv.Run(opt.Duration)
	tr.Finalize()
	if cl != nil {
		cl.Stop()
	}

	p := Point{
		Axis:            axisValue,
		Served:          srv.Served(),
		Generated:       srv.Generated(),
		Dropped:         srv.Dropped(),
		MeanLatency:     srv.Latencies().Mean(),
		P50Latency:      srv.Latencies().Quantile(0.50),
		P99Latency:      srv.Latencies().Quantile(0.99),
		SoCWatts:        snap.AveragePower(power.Package),
		DRAMWatts:       snap.AveragePower(power.DRAM),
		TotalWatts:      snap.AverageTotal(),
		CC0Residency:    tr.MeanResidency(cpu.CC0),
		CC1Residency:    tr.MeanResidency(cpu.CC1),
		AllIdle:         tr.AllIdleFraction(),
		AllIdleCensored: tr.CensoredAllIdleFraction(),
		TruncatedDrain:  srv.TruncatedDrain(),
	}
	if open {
		p.Workload = spec.Name
		p.OfferedQPS = spec.MeanQPS()
	} else {
		p.Workload = fmt.Sprintf("sysbench-%dthr", sc.Workload.Threads)
		p.Generated = cl.Issued()
	}
	if sys.APMU != nil {
		residency := 0.0
		if window := sys.Engine.Now() - t0; window > 0 {
			residency = float64(sys.APMU.Residency(pmu.PC1A)-res0) / float64(window)
		}
		entries := sys.APMU.Entries(pmu.PC1A) - ent0
		p.PC1AResidency, p.PC1AEntries = &residency, &entries
	}
	return p
}

// effectiveCluster returns the fleet block the rendered output should
// describe: the cluster block, or the root tier's inlined block when a
// one-tier graph is standing in for it — a one-tier graph must render
// byte-for-byte like the cluster block it is (the parity contract).
// Nil for single-machine scenarios and multi-tier graphs.
func (r *Result) effectiveCluster() *Cluster {
	if r.Scenario.Cluster != nil {
		return r.Scenario.Cluster
	}
	if len(r.Scenario.Tiers) == 1 && len(r.Scenario.Edges) == 0 {
		return &r.Scenario.Tiers[0].Cluster
	}
	return nil
}

// clusterAnnotated reports whether the rendered report should mention
// the fleet. A 1-server fleet with a fixed policy renders exactly like
// the single machine it is — the parity contract — so only genuinely
// multi-server (or cluster-swept) scenarios get the annotation and the
// per-server breakdown.
func (r *Result) clusterAnnotated() bool {
	c := r.effectiveCluster()
	return c != nil && (c.Servers > 1 || clusterAxes[r.Axis])
}

// faultsAnnotated reports whether the rendered output should carry the
// fault-outcome tables. An absent block — or an all-zero one — renders
// nothing, so fault-free output keeps its exact byte shape
// (TestFaultsZeroParity); a fault axis annotates even when the base
// block is all-zero, since the sweep supplies the non-zero values. A
// multi-tier graph annotates when any tier injects faults; the
// aggregate row then sums the tiers' counters.
func (r *Result) faultsAnnotated() bool {
	if c := r.effectiveCluster(); c != nil {
		return c.Faults.enabled() || faultAxes[r.Axis]
	}
	for i := range r.Scenario.Tiers {
		if r.Scenario.Tiers[i].Faults.enabled() {
			return true
		}
	}
	return false
}

// fleetDesc names the fleet shape for the report header: rack topology
// when the fleet has one ("2x4 fleet"), plain size otherwise.
func fleetDesc(c *Cluster) string {
	if c.Racks > 1 {
		return fmt.Sprintf("%dx%d fleet", c.Racks, c.Servers/c.Racks)
	}
	return fmt.Sprintf("%d-server fleet", c.Servers)
}

// Report implements experiments.Result.
func (r *Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scenario %s: %s on %s", r.Scenario.Name, r.Scenario.Workload.Service, r.Scenario.Config)
	if ts := r.Scenario.Tiers; len(ts) > 1 {
		names := make([]string, len(ts))
		for i := range ts {
			names[i] = fmt.Sprintf("%s:%d", ts[i].Name, ts[i].Servers)
		}
		fmt.Fprintf(&b, ", %d-tier graph (%s)", len(ts), strings.Join(names, " -> "))
	}
	if r.clusterAnnotated() {
		c := r.effectiveCluster()
		switch r.Axis {
		case AxisServers:
			fmt.Fprintf(&b, ", fleet (%s)", c.Policy)
		case AxisRacks:
			fmt.Fprintf(&b, ", %d-server fleet (%s)", c.Servers, c.Policy)
		case AxisPolicy:
			fmt.Fprintf(&b, ", %s", fleetDesc(c))
		default:
			fmt.Fprintf(&b, ", %s (%s)", fleetDesc(c), c.Policy)
		}
	}
	if r.Axis != "" {
		fmt.Fprintf(&b, ", sweeping %s", r.Axis)
	}
	b.WriteByte('\n')
	if r.Scenario.Description != "" {
		fmt.Fprintf(&b, "%s\n", r.Scenario.Description)
	}

	axisHdr := r.Axis
	if axisHdr == "" {
		axisHdr = "point"
	}
	header := []string{axisHdr, "workload", "served", "mean", "p99", "SoC", "DRAM", "total", "all-idle", "PC1A res", "dropped"}
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		pc1a := "-"
		if p.PC1AResidency != nil {
			pc1a = fmt.Sprintf("%.1f%%", *p.PC1AResidency*100)
		}
		rows = append(rows, []string{
			p.axisCell(),
			p.Workload,
			fmt.Sprintf("%d", p.Served),
			fmt.Sprintf("%.1fus", p.MeanLatency*1e6),
			fmt.Sprintf("%.1fus", p.P99Latency*1e6),
			fmt.Sprintf("%.1fW", p.SoCWatts),
			fmt.Sprintf("%.2fW", p.DRAMWatts),
			fmt.Sprintf("%.1fW", p.TotalWatts),
			fmt.Sprintf("%.1f%%", p.AllIdle*100),
			pc1a,
			fmt.Sprintf("%d", p.Dropped),
		})
	}
	b.WriteString(experiments.RenderTable(header, rows))

	// Per-server breakdowns, one block per multi-server point — the
	// fleet story (which servers soaked the load, which ones idled into
	// PC1A) lives here, not in the aggregate row.
	for _, p := range r.Points {
		if len(p.Servers) == 0 {
			continue
		}
		fmt.Fprintf(&b, "\nper-server [%s=%s]:\n", axisHdr, p.axisCell())
		srows := make([][]string, 0, len(p.Servers))
		for _, ss := range p.Servers {
			pc1a := "-"
			if ss.PC1AResidency != nil {
				pc1a = fmt.Sprintf("%.1f%%", *ss.PC1AResidency*100)
			}
			srows = append(srows, []string{
				fmt.Sprintf("%d", ss.Index),
				fmt.Sprintf("%d", ss.Routed),
				fmt.Sprintf("%d", ss.Served),
				fmt.Sprintf("%.1fus", ss.MeanLatency*1e6),
				fmt.Sprintf("%.1fus", ss.P99Latency*1e6),
				fmt.Sprintf("%.1fW", ss.TotalWatts),
				fmt.Sprintf("%.1f%%", ss.AllIdle*100),
				pc1a,
				fmt.Sprintf("%d", ss.Dropped),
			})
		}
		b.WriteString(experiments.RenderTable(
			[]string{"server", "routed", "served", "mean", "p99", "total", "all-idle", "PC1A res", "dropped"},
			srows))
	}

	// Per-rack power zones, one block per multi-rack point — whether
	// packing kept whole racks dark is the rack story, and it is only
	// visible at zone granularity.
	for _, p := range r.Points {
		if len(p.Racks) == 0 {
			continue
		}
		fmt.Fprintf(&b, "\nper-rack [%s=%s]:\n", axisHdr, p.axisCell())
		rrows := make([][]string, 0, len(p.Racks))
		for _, rs := range p.Racks {
			local := ""
			if rs.Local {
				local = "*"
			}
			pc1a := "-"
			if rs.PC1AResidency != nil {
				pc1a = fmt.Sprintf("%.1f%%", *rs.PC1AResidency*100)
			}
			rrows = append(rrows, []string{
				fmt.Sprintf("%d%s", rs.Index, local),
				fmt.Sprintf("%d/%d", rs.ActiveServers, rs.Servers),
				fmt.Sprintf("%d", rs.Routed),
				fmt.Sprintf("%d", rs.Served),
				fmt.Sprintf("%.1fus", rs.MeanLatency*1e6),
				fmt.Sprintf("%.1fus", rs.P99Latency*1e6),
				fmt.Sprintf("%.1fW", rs.TotalWatts),
				fmt.Sprintf("%.1f%%", rs.AllIdle*100),
				pc1a,
				fmt.Sprintf("%d", rs.Dropped),
			})
		}
		b.WriteString(experiments.RenderTable(
			[]string{"rack", "active", "routed", "served", "mean", "p99", "zone W", "all-idle", "PC1A res", "dropped"},
			rrows))
	}

	// Per-tier breakdowns, one block per multi-tier point — which tier
	// soaked the work and which one idled into PC1A is the service-graph
	// story, invisible in the client-view aggregate row.
	for _, p := range r.Points {
		if len(p.Tiers) == 0 {
			continue
		}
		fmt.Fprintf(&b, "\nper-tier [%s=%s]:\n", axisHdr, p.axisCell())
		trows := make([][]string, 0, len(p.Tiers))
		for _, tm := range p.Tiers {
			m := tm.Fleet
			pc1a := "-"
			if m.PC1AResidency != nil {
				pc1a = fmt.Sprintf("%.1f%%", *m.PC1AResidency*100)
			}
			trows = append(trows, []string{
				tm.Name,
				fmt.Sprintf("%d", m.Generated),
				fmt.Sprintf("%d", m.Served),
				fmt.Sprintf("%.1fus", m.MeanLatency*1e6),
				fmt.Sprintf("%.1fus", m.P99Latency*1e6),
				fmt.Sprintf("%.1fW", m.TotalWatts),
				fmt.Sprintf("%.1f%%", m.AllIdle*100),
				pc1a,
				fmt.Sprintf("%d", m.Dropped),
			})
		}
		b.WriteString(experiments.RenderTable(
			[]string{"tier", "arrivals", "served", "mean", "p99", "total", "all-idle", "PC1A res", "dropped"},
			trows))
	}

	// Per-edge cache accounting, one block per point with edges — the
	// miss stream each edge fed downstream, against its configured hit
	// ratio.
	for _, p := range r.Points {
		if len(p.Edges) == 0 {
			continue
		}
		fmt.Fprintf(&b, "\nedges [%s=%s]:\n", axisHdr, p.axisCell())
		erows := make([][]string, 0, len(p.Edges))
		for _, es := range p.Edges {
			ttl := "-"
			if es.TTL > 0 {
				ttl = fmt.Sprintf("%.0fus", float64(es.TTL)/float64(sim.Microsecond))
			}
			erows = append(erows, []string{
				fmt.Sprintf("%s->%s", es.From, es.To),
				fmt.Sprintf("%.2f", es.HitRatio),
				fmt.Sprintf("%.3f", es.MeasuredHitRate),
				ttl,
				fmt.Sprintf("%d", es.Fanout),
				fmt.Sprintf("%d", es.Lookups),
				fmt.Sprintf("%d", es.Hits),
				fmt.Sprintf("%d", es.Misses),
				fmt.Sprintf("%d", es.TTLMisses),
				fmt.Sprintf("%d", es.Issued),
			})
		}
		b.WriteString(experiments.RenderTable(
			[]string{"edge", "hit", "measured", "ttl", "fanout", "lookups", "hits", "misses", "ttl-miss", "issued"},
			erows))
	}

	// Fault outcomes, one row per point — what the injected failures
	// cost (failed, shed) and what the robustness mechanisms bought
	// back (retries, hedges, goodput, time to recover).
	if r.faultsAnnotated() {
		b.WriteString("\nfaults:\n")
		frows := make([][]string, 0, len(r.Points))
		for _, p := range r.Points {
			rec := "-"
			if p.RecoveryP99 > 0 {
				rec = fmt.Sprintf("%.1fus", p.RecoveryP99*1e6)
			}
			frows = append(frows, []string{
				p.axisCell(),
				fmt.Sprintf("%.0f", p.GoodputQPS),
				fmt.Sprintf("%d", p.OK),
				fmt.Sprintf("%d", p.Failed),
				fmt.Sprintf("%d", p.Retried),
				fmt.Sprintf("%d", p.Hedged),
				fmt.Sprintf("%d", p.Shed),
				fmt.Sprintf("%d", p.Crashes),
				fmt.Sprintf("%d", p.Brownouts),
				fmt.Sprintf("%d", p.Partitions),
				rec,
			})
		}
		b.WriteString(experiments.RenderTable(
			[]string{axisHdr, "goodput", "ok", "failed", "retried", "hedged", "shed", "crashes", "brownouts", "partitions", "rec p99"},
			frows))
	}
	return b.String()
}

// axisCell renders the sweep-axis value for report tables: the label on
// string-valued axes, the number otherwise.
func (p Point) axisCell() string {
	if p.AxisLabel != "" {
		return p.AxisLabel
	}
	return fmt.Sprintf("%g", p.Axis)
}

// WriteCSV implements experiments.CSVWriter. Rows are fleet aggregates
// (identical in shape to single-machine rows — the parity contract);
// per-server series are in the -json output, not duplicated here. The
// axis_label column is empty except on the string-valued policy axis.
// Multi-rack points additionally emit a second, blank-line-separated
// rack-zone table; flat fleets emit nothing extra, so their CSV stays
// byte-identical to the pre-topology format (TestRackFlatParity).
func (r *Result) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "axis,axis_label,workload,offered_qps,served,generated,dropped,mean_s,p50_s,p99_s,soc_w,dram_w,total_w,cc0,cc1,all_idle,all_idle_censored,pc1a_residency,pc1a_entries"); err != nil {
		return err
	}
	haveRacks := false
	for _, p := range r.Points {
		if len(p.Racks) > 0 {
			haveRacks = true
		}
		// PC1A cells stay empty on configurations without an APMU.
		pc1aRes, pc1aEnt := "", ""
		if p.PC1AResidency != nil {
			pc1aRes = fmt.Sprintf("%g", *p.PC1AResidency)
		}
		if p.PC1AEntries != nil {
			pc1aEnt = fmt.Sprintf("%d", *p.PC1AEntries)
		}
		if _, err := fmt.Fprintf(w, "%g,%s,%s,%g,%d,%d,%d,%g,%g,%g,%g,%g,%g,%g,%g,%g,%g,%s,%s\n",
			p.Axis, p.AxisLabel, p.Workload, p.OfferedQPS, p.Served, p.Generated, p.Dropped,
			p.MeanLatency, p.P50Latency, p.P99Latency,
			p.SoCWatts, p.DRAMWatts, p.TotalWatts,
			p.CC0Residency, p.CC1Residency, p.AllIdle, p.AllIdleCensored,
			pc1aRes, pc1aEnt); err != nil {
			return err
		}
	}
	if haveRacks {
		if _, err := fmt.Fprintln(w, "\naxis,axis_label,rack,local,servers,active_servers,routed,served,dropped,mean_s,p99_s,soc_w,dram_w,total_w,all_idle,pc1a_residency,pc1a_entries"); err != nil {
			return err
		}
		for _, p := range r.Points {
			for _, rs := range p.Racks {
				pc1aRes, pc1aEnt := "", ""
				if rs.PC1AResidency != nil {
					pc1aRes = fmt.Sprintf("%g", *rs.PC1AResidency)
				}
				if rs.PC1AEntries != nil {
					pc1aEnt = fmt.Sprintf("%d", *rs.PC1AEntries)
				}
				if _, err := fmt.Fprintf(w, "%g,%s,%d,%t,%d,%d,%d,%d,%d,%g,%g,%g,%g,%g,%g,%s,%s\n",
					p.Axis, p.AxisLabel, rs.Index, rs.Local, rs.Servers, rs.ActiveServers,
					rs.Routed, rs.Served, rs.Dropped,
					rs.MeanLatency, rs.P99Latency,
					rs.SoCWatts, rs.DRAMWatts, rs.TotalWatts,
					rs.AllIdle, pc1aRes, pc1aEnt); err != nil {
					return err
				}
			}
		}
	}
	if err := r.writeTiersCSV(w); err != nil {
		return err
	}
	return r.writeFaultsCSV(w)
}

// writeTiersCSV emits the blank-line-separated per-tier and per-edge
// tables of multi-tier points. Nothing is written for cluster,
// single-machine or one-tier scenarios, so their CSV stays
// byte-identical to the pre-graph format (TestTiersSingleTierParity).
func (r *Result) writeTiersCSV(w io.Writer) error {
	haveTiers := false
	for _, p := range r.Points {
		if len(p.Tiers) > 0 {
			haveTiers = true
			break
		}
	}
	if !haveTiers {
		return nil
	}
	if _, err := fmt.Fprintln(w, "\naxis,axis_label,tier,served,generated,dropped,mean_s,p50_s,p99_s,soc_w,dram_w,total_w,all_idle,pc1a_residency,pc1a_entries"); err != nil {
		return err
	}
	for _, p := range r.Points {
		for _, tm := range p.Tiers {
			m := tm.Fleet
			pc1aRes, pc1aEnt := "", ""
			if m.PC1AResidency != nil {
				pc1aRes = fmt.Sprintf("%g", *m.PC1AResidency)
			}
			if m.PC1AEntries != nil {
				pc1aEnt = fmt.Sprintf("%d", *m.PC1AEntries)
			}
			if _, err := fmt.Fprintf(w, "%g,%s,%s,%d,%d,%d,%g,%g,%g,%g,%g,%g,%g,%s,%s\n",
				p.Axis, p.AxisLabel, tm.Name, m.Served, m.Generated, m.Dropped,
				m.MeanLatency, m.P50Latency, m.P99Latency,
				m.SoCWatts, m.DRAMWatts, m.TotalWatts,
				m.AllIdle, pc1aRes, pc1aEnt); err != nil {
				return err
			}
		}
	}
	if _, err := fmt.Fprintln(w, "\naxis,axis_label,edge_from,edge_to,hit_ratio,ttl_us,fanout,lookups,hits,misses,ttl_misses,issued,measured_hit_rate"); err != nil {
		return err
	}
	for _, p := range r.Points {
		for _, es := range p.Edges {
			if _, err := fmt.Fprintf(w, "%g,%s,%s,%s,%g,%g,%d,%d,%d,%d,%d,%d,%g\n",
				p.Axis, p.AxisLabel, es.From, es.To, es.HitRatio,
				float64(es.TTL)/float64(sim.Microsecond), es.Fanout,
				es.Lookups, es.Hits, es.Misses, es.TTLMisses, es.Issued,
				es.MeasuredHitRate); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeFaultsCSV emits the blank-line-separated fault-outcome table.
// Nothing is written without an enabled faults block (or a fault
// axis), so fault-free CSV stays byte-identical to the pre-fault
// format (TestFaultsZeroParity).
func (r *Result) writeFaultsCSV(w io.Writer) error {
	if !r.faultsAnnotated() {
		return nil
	}
	if _, err := fmt.Fprintln(w, "\naxis,axis_label,goodput_qps,ok,failed,retried,hedged,shed,crashes,brownouts,partitions,recovery_p50_s,recovery_p99_s,truncated_drain"); err != nil {
		return err
	}
	for _, p := range r.Points {
		if _, err := fmt.Fprintf(w, "%g,%s,%g,%d,%d,%d,%d,%d,%d,%d,%d,%g,%g,%d\n",
			p.Axis, p.AxisLabel, p.GoodputQPS, p.OK, p.Failed, p.Retried, p.Hedged, p.Shed,
			p.Crashes, p.Brownouts, p.Partitions,
			p.RecoveryP50, p.RecoveryP99, p.TruncatedDrain); err != nil {
			return err
		}
	}
	return nil
}
