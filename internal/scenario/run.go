package scenario

import (
	"fmt"
	"io"
	"strings"

	"agilepkgc/internal/cpu"
	"agilepkgc/internal/experiments"
	"agilepkgc/internal/pmu"
	"agilepkgc/internal/power"
	"agilepkgc/internal/server"
	"agilepkgc/internal/sim"
	"agilepkgc/internal/soc"
	"agilepkgc/internal/trace"
	"agilepkgc/internal/workload"
)

// Point is the measured outcome of one scenario operating point.
type Point struct {
	// Axis is the sweep-axis value this point was evaluated at (0 for
	// unswept scenarios).
	Axis float64 `json:"axis"`
	// Workload names the effective request stream.
	Workload string `json:"workload"`

	OfferedQPS float64 `json:"offered_qps,omitempty"`
	Served     uint64  `json:"served"`
	Generated  uint64  `json:"generated"`
	Dropped    uint64  `json:"dropped"`

	// Client-observed latencies, seconds.
	MeanLatency float64 `json:"mean_latency_s"`
	P50Latency  float64 `json:"p50_latency_s"`
	P99Latency  float64 `json:"p99_latency_s"`

	// Average watts over the measured window.
	SoCWatts   float64 `json:"soc_w"`
	DRAMWatts  float64 `json:"dram_w"`
	TotalWatts float64 `json:"total_w"`

	// Core residencies over the measured window.
	CC0Residency    float64 `json:"cc0_residency"`
	CC1Residency    float64 `json:"cc1_residency"`
	AllIdle         float64 `json:"all_idle"`
	AllIdleCensored float64 `json:"all_idle_censored"`

	// PC1A statistics. Nil on configurations without an APMU (Cshallow,
	// Cdeep), so JSON consumers can distinguish "not applicable" from a
	// genuine zero measurement.
	PC1AResidency *float64 `json:"pc1a_residency,omitempty"`
	PC1AEntries   *uint64  `json:"pc1a_entries,omitempty"`
}

// Result is a completed scenario run: the spec that produced it plus one
// Point per axis value. It implements experiments.Result and
// experiments.CSVWriter, so the CLI treats scenarios and built-in
// experiments uniformly.
type Result struct {
	Scenario Scenario `json:"scenario"`
	// Axis is the swept axis name ("" when unswept).
	Axis   string  `json:"axis,omitempty"`
	Points []Point `json:"points"`
}

// Run evaluates the scenario under the given options (duration, seed and
// parallelism; the scenario's own duration_ms/seed take precedence).
// Sweep points fan out exactly like built-in experiment sweeps: each
// point is a pure function of (options, point), so results are
// bit-identical at any parallelism.
func (s Scenario) Run(opt experiments.Options) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	opt = s.EffectiveOptions(opt)

	axis := ""
	values := []float64{0}
	swept := false
	if s.Sweep != nil {
		axis, values, swept = s.Sweep.Axis, s.Sweep.Values, true
	}

	// Resolve every point up front so a bad axis value fails before any
	// simulation runs.
	type job struct {
		axis float64
		sc   Scenario
	}
	jobs := make([]job, len(values))
	for i, v := range values {
		pt := s
		if swept {
			pt = s.at(axis, v)
		}
		kind, err := soc.ParseConfigKind(pt.Config)
		if err != nil {
			return nil, err
		}
		cores := soc.DefaultConfig(kind).CoreCount
		if _, _, err := pt.Workload.spec(cores); err != nil {
			if swept {
				return nil, fmt.Errorf("scenario %q [%s=%g]: %w", s.Name, axis, v, err)
			}
			return nil, fmt.Errorf("scenario %q: %w", s.Name, err)
		}
		if pt.Server.TimerTickHz != nil && *pt.Server.TimerTickHz > 0 &&
			(pt.Server.TickKernelUS == nil || *pt.Server.TickKernelUS <= 0) {
			return nil, fmt.Errorf("scenario %q: timer_tick_hz needs tick_kernel_us > 0", s.Name)
		}
		jobs[i] = job{axis: v, sc: pt}
	}

	res := &Result{Scenario: s, Axis: axis}
	res.Points = experiments.Sweep(opt, jobs, func(j job) Point {
		return runOne(j.sc, j.axis, opt)
	})
	return res, nil
}

// runOne wires one fully-applied scenario point onto a fresh system —
// the same assembly, warmup and measurement-window sequence the built-in
// experiments use, so an unswept scenario with no overrides reproduces
// their numbers bit for bit.
func runOne(sc Scenario, axisValue float64, opt experiments.Options) Point {
	kind, _ := soc.ParseConfigKind(sc.Config)
	sys := soc.New(soc.DefaultConfig(kind))
	scfg := server.DefaultConfig()
	scfg.Seed = opt.Seed
	sc.Server.apply(&scfg)

	spec, open, _ := sc.Workload.spec(soc.DefaultConfig(kind).CoreCount)
	var srv *server.Server
	var cl *workload.ClosedLoopClient
	if open {
		srv = server.New(sys, scfg, spec)
	} else {
		srv = server.NewClosedLoop(sys, scfg)
		cl = workload.SysbenchOLTP(sys.Engine, sc.Workload.Threads,
			sc.Workload.ThinkMS*1e-3, opt.Seed, srv.Submit)
		cl.Start()
	}

	// Warmup so the measured window starts in steady state — the same
	// formula as the built-in experiments (Options.Warmup), which the
	// bit-for-bit parity contract depends on.
	srv.Run(opt.Warmup())

	tr := trace.New(sys.Engine, sys.Cores)
	snap := sys.Meter.Snapshot()
	t0 := sys.Engine.Now()
	var res0 sim.Duration
	var ent0 uint64
	if sys.APMU != nil {
		res0 = sys.APMU.Residency(pmu.PC1A)
		ent0 = sys.APMU.Entries(pmu.PC1A)
	}
	srv.Run(opt.Duration)
	tr.Finalize()
	if cl != nil {
		cl.Stop()
	}

	p := Point{
		Axis:            axisValue,
		Served:          srv.Served(),
		Generated:       srv.Generated(),
		Dropped:         srv.Dropped(),
		MeanLatency:     srv.Latencies().Mean(),
		P50Latency:      srv.Latencies().Quantile(0.50),
		P99Latency:      srv.Latencies().Quantile(0.99),
		SoCWatts:        snap.AveragePower(power.Package),
		DRAMWatts:       snap.AveragePower(power.DRAM),
		TotalWatts:      snap.AverageTotal(),
		CC0Residency:    tr.MeanResidency(cpu.CC0),
		CC1Residency:    tr.MeanResidency(cpu.CC1),
		AllIdle:         tr.AllIdleFraction(),
		AllIdleCensored: tr.CensoredAllIdleFraction(),
	}
	if open {
		p.Workload = spec.Name
		p.OfferedQPS = spec.MeanQPS()
	} else {
		p.Workload = fmt.Sprintf("sysbench-%dthr", sc.Workload.Threads)
		p.Generated = cl.Issued()
	}
	if sys.APMU != nil {
		residency := 0.0
		if window := sys.Engine.Now() - t0; window > 0 {
			residency = float64(sys.APMU.Residency(pmu.PC1A)-res0) / float64(window)
		}
		entries := sys.APMU.Entries(pmu.PC1A) - ent0
		p.PC1AResidency, p.PC1AEntries = &residency, &entries
	}
	return p
}

// Report implements experiments.Result.
func (r *Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scenario %s: %s on %s", r.Scenario.Name, r.Scenario.Workload.Service, r.Scenario.Config)
	if r.Axis != "" {
		fmt.Fprintf(&b, ", sweeping %s", r.Axis)
	}
	b.WriteByte('\n')
	if r.Scenario.Description != "" {
		fmt.Fprintf(&b, "%s\n", r.Scenario.Description)
	}

	axisHdr := r.Axis
	if axisHdr == "" {
		axisHdr = "point"
	}
	header := []string{axisHdr, "workload", "served", "mean", "p99", "SoC", "DRAM", "total", "all-idle", "PC1A res", "dropped"}
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		pc1a := "-"
		if p.PC1AResidency != nil {
			pc1a = fmt.Sprintf("%.1f%%", *p.PC1AResidency*100)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%g", p.Axis),
			p.Workload,
			fmt.Sprintf("%d", p.Served),
			fmt.Sprintf("%.1fus", p.MeanLatency*1e6),
			fmt.Sprintf("%.1fus", p.P99Latency*1e6),
			fmt.Sprintf("%.1fW", p.SoCWatts),
			fmt.Sprintf("%.2fW", p.DRAMWatts),
			fmt.Sprintf("%.1fW", p.TotalWatts),
			fmt.Sprintf("%.1f%%", p.AllIdle*100),
			pc1a,
			fmt.Sprintf("%d", p.Dropped),
		})
	}
	b.WriteString(experiments.RenderTable(header, rows))
	return b.String()
}

// WriteCSV implements experiments.CSVWriter.
func (r *Result) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "axis,workload,offered_qps,served,generated,dropped,mean_s,p50_s,p99_s,soc_w,dram_w,total_w,cc0,cc1,all_idle,all_idle_censored,pc1a_residency,pc1a_entries"); err != nil {
		return err
	}
	for _, p := range r.Points {
		// PC1A cells stay empty on configurations without an APMU.
		pc1aRes, pc1aEnt := "", ""
		if p.PC1AResidency != nil {
			pc1aRes = fmt.Sprintf("%g", *p.PC1AResidency)
		}
		if p.PC1AEntries != nil {
			pc1aEnt = fmt.Sprintf("%d", *p.PC1AEntries)
		}
		if _, err := fmt.Fprintf(w, "%g,%s,%g,%d,%d,%d,%g,%g,%g,%g,%g,%g,%g,%g,%g,%g,%s,%s\n",
			p.Axis, p.Workload, p.OfferedQPS, p.Served, p.Generated, p.Dropped,
			p.MeanLatency, p.P50Latency, p.P99Latency,
			p.SoCWatts, p.DRAMWatts, p.TotalWatts,
			p.CC0Residency, p.CC1Residency, p.AllIdle, p.AllIdleCensored,
			pc1aRes, pc1aEnt); err != nil {
			return err
		}
	}
	return nil
}
