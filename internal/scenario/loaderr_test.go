package scenario

import (
	"strings"
	"testing"
)

// TestLoadReportsSyntaxErrorPosition pins the load-error bugfix: a
// malformed scenario file must fail with the line and byte offset of
// the bad byte, not a bare "invalid character" that sends the reader
// bisecting the file.
func TestLoadReportsSyntaxErrorPosition(t *testing.T) {
	// The stray brace is on line 4.
	bad := `{
  "name": "typo",
  "config": "CPC1A",
  "workload": {{"service": "memcached", "qps": 1000}
}`
	_, err := Load(strings.NewReader(bad))
	if err == nil {
		t.Fatal("malformed JSON loaded")
	}
	for _, want := range []string{"line 4", "byte "} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not carry %q", err, want)
		}
	}
}

// TestLoadReportsTypeErrorPosition does the same for a well-formed file
// whose field has the wrong JSON type.
func TestLoadReportsTypeErrorPosition(t *testing.T) {
	bad := `{
  "name": "typed",
  "config": "CPC1A",
  "workload": {"service": "memcached",
               "qps": "twenty thousand"}
}`
	_, err := Load(strings.NewReader(bad))
	if err == nil {
		t.Fatal("mistyped JSON loaded")
	}
	for _, want := range []string{"line 5", "column ", "qps"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not carry %q", err, want)
		}
	}
}

// TestLoadErrorsWithoutOffsetsPassThrough: errors that carry no byte
// offset (unknown fields, trailing data) keep their original text.
func TestLoadErrorsWithoutOffsetsPassThrough(t *testing.T) {
	_, err := Load(strings.NewReader(`{"name": "x", "config": "CPC1A", "workload": {"service": "memcached", "qps": 1}, "no_such_field": 1}`))
	if err == nil {
		t.Fatal("unknown field loaded")
	}
	if !strings.Contains(err.Error(), "no_such_field") {
		t.Errorf("unknown-field error lost its field name: %q", err)
	}
}

// TestLocateJSONErrorColumns pins the line/column arithmetic on a
// hand-positioned error.
func TestLocateJSONErrorColumns(t *testing.T) {
	//            1234567890
	bad := "{\n  \"a\": !\n}"
	_, err := Load(strings.NewReader(bad))
	if err == nil {
		t.Fatal("malformed JSON loaded")
	}
	if !strings.Contains(err.Error(), "line 2, column 8") {
		t.Errorf("error %q does not point at line 2, column 8", err)
	}
}
