// Package scenario is the declarative layer over the simulator: a
// Scenario names a SoC configuration, a workload, a set of server-config
// overrides and an optional sweep axis, and Run wires them together the
// same way the built-in experiments do. Scenarios load from JSON (with
// unknown fields rejected) or are built programmatically, so a new
// operating point — a different QPS axis, tick rate, batching epoch or
// network latency — is data, not a new Go file.
//
// A minimal file:
//
//	{
//	  "name": "memcached-tickrate",
//	  "config": "CPC1A",
//	  "workload": {"service": "memcached", "qps": 20000},
//	  "server": {"tick_kernel_us": 2},
//	  "sweep": {"axis": "tick_hz", "values": [0, 100, 250, 1000]}
//	}
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"agilepkgc/internal/experiments"
	"agilepkgc/internal/server"
	"agilepkgc/internal/sim"
	"agilepkgc/internal/soc"
	"agilepkgc/internal/workload"
)

// Scenario is one declarative experiment specification.
type Scenario struct {
	// Name identifies the scenario in reports and output filenames.
	Name string `json:"name"`
	// Description is an optional one-line summary.
	Description string `json:"description,omitempty"`
	// Config is the SoC configuration kind: "Cshallow", "Cdeep" or
	// "CPC1A".
	Config string `json:"config"`
	// DurationMS, when non-zero, overrides the runner's measurement
	// window (milliseconds of virtual time per point).
	DurationMS float64 `json:"duration_ms,omitempty"`
	// Seed, when non-zero, overrides the runner's random seed.
	Seed uint64 `json:"seed,omitempty"`
	// Workload selects the request stream.
	Workload Workload `json:"workload"`
	// Server overrides individual server.Config knobs; unset fields keep
	// the evaluation defaults.
	Server Overrides `json:"server,omitempty"`
	// Sweep, when present, evaluates the scenario once per axis value
	// instead of once.
	Sweep *Sweep `json:"sweep,omitempty"`
}

// Workload declares the request stream. Exactly one rate field applies
// per service; see the axis list in Sweep for which fields a sweep can
// drive instead.
type Workload struct {
	// Service is one of "memcached", "memcached-bursty", "mysql",
	// "kafka" or "sysbench" (closed-loop).
	Service string `json:"service"`
	// QPS is the open-loop arrival rate (memcached family).
	QPS float64 `json:"qps,omitempty"`
	// Util is the target processor utilization, an alternative to QPS
	// for the memcached service.
	Util float64 `json:"util,omitempty"`
	// Load is the processor-load fraction (mysql and kafka).
	Load float64 `json:"load,omitempty"`
	// Burstiness is the MMPP burstiness parameter (memcached-bursty).
	Burstiness float64 `json:"burstiness,omitempty"`
	// Threads is the closed-loop client-thread count (sysbench).
	Threads int `json:"threads,omitempty"`
	// ThinkMS is the closed-loop mean think time in milliseconds
	// (sysbench).
	ThinkMS float64 `json:"think_ms,omitempty"`
}

// Overrides adjusts server.Config knobs. Pointer fields distinguish
// "unset" (keep the evaluation default) from an explicit zero.
type Overrides struct {
	NetworkLatencyUS *float64 `json:"network_latency_us,omitempty"`
	NICTransferNS    *float64 `json:"nic_transfer_ns,omitempty"`
	KernelOverheadUS *float64 `json:"kernel_overhead_us,omitempty"`
	BatchEpochUS     *float64 `json:"batch_epoch_us,omitempty"`
	TimerTickHz      *float64 `json:"timer_tick_hz,omitempty"`
	TickKernelUS     *float64 `json:"tick_kernel_us,omitempty"`
}

// validate rejects physically meaningless knob settings before they
// reach the engine (negative durations panic the scheduler; negative
// latencies silently corrupt histograms).
func (o Overrides) validate() error {
	for name, v := range map[string]*float64{
		"network_latency_us": o.NetworkLatencyUS,
		"nic_transfer_ns":    o.NICTransferNS,
		"kernel_overhead_us": o.KernelOverheadUS,
		"batch_epoch_us":     o.BatchEpochUS,
		"timer_tick_hz":      o.TimerTickHz,
		"tick_kernel_us":     o.TickKernelUS,
	} {
		if v != nil && *v < 0 {
			return fmt.Errorf("server.%s must not be negative (got %g)", name, *v)
		}
	}
	return nil
}

func (o Overrides) apply(cfg *server.Config) {
	us := func(v float64) sim.Duration { return sim.Duration(v * float64(sim.Microsecond)) }
	if o.NetworkLatencyUS != nil {
		cfg.NetworkLatency = us(*o.NetworkLatencyUS)
	}
	if o.NICTransferNS != nil {
		cfg.NICTransfer = sim.Duration(*o.NICTransferNS * float64(sim.Nanosecond))
	}
	if o.KernelOverheadUS != nil {
		cfg.KernelOverhead = us(*o.KernelOverheadUS)
	}
	if o.BatchEpochUS != nil {
		cfg.BatchEpoch = us(*o.BatchEpochUS)
	}
	if o.TimerTickHz != nil {
		cfg.TimerTickHz = *o.TimerTickHz
	}
	if o.TickKernelUS != nil {
		cfg.TickKernelTime = us(*o.TickKernelUS)
	}
}

// Sweep evaluates the scenario at each value of one axis.
type Sweep struct {
	// Axis names the swept parameter.
	Axis string `json:"axis"`
	// Values are the axis points, evaluated in order.
	Values []float64 `json:"values"`
}

// Axis names a Sweep can drive.
const (
	AxisQPS            = "qps"
	AxisUtil           = "util"
	AxisLoad           = "load"
	AxisBurstiness     = "burstiness"
	AxisThreads        = "threads"
	AxisBatchEpochUS   = "batch_epoch_us"
	AxisTickHz         = "tick_hz"
	AxisNetworkLatency = "network_latency_us"
)

var knownAxes = map[string]bool{
	AxisQPS: true, AxisUtil: true, AxisLoad: true, AxisBurstiness: true,
	AxisThreads: true, AxisBatchEpochUS: true, AxisTickHz: true,
	AxisNetworkLatency: true,
}

// serverAxes drive server.Config knobs and apply to every service.
var serverAxes = map[string]bool{
	AxisBatchEpochUS: true, AxisTickHz: true, AxisNetworkLatency: true,
}

// workloadAxes lists which workload-side axes each service actually
// reads; sweeping an axis a service ignores would silently produce N
// identical points, so Validate rejects it.
var workloadAxes = map[string]map[string]bool{
	"memcached":        {AxisQPS: true, AxisUtil: true},
	"memcached-bursty": {AxisQPS: true, AxisBurstiness: true},
	"mysql":            {AxisLoad: true},
	"kafka":            {AxisLoad: true},
	"sysbench":         {AxisThreads: true},
}

// Axes returns the supported sweep axis names, sorted.
func Axes() []string {
	out := make([]string, 0, len(knownAxes))
	for a := range knownAxes {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// at returns a copy of the scenario with one axis value applied.
func (s Scenario) at(axis string, v float64) Scenario {
	switch axis {
	case AxisQPS:
		s.Workload.QPS, s.Workload.Util = v, 0
	case AxisUtil:
		s.Workload.Util, s.Workload.QPS = v, 0
	case AxisLoad:
		s.Workload.Load = v
	case AxisBurstiness:
		s.Workload.Burstiness = v
	case AxisThreads:
		s.Workload.Threads = int(v)
	case AxisBatchEpochUS:
		s.Server.BatchEpochUS = &v
	case AxisTickHz:
		s.Server.TimerTickHz = &v
	case AxisNetworkLatency:
		s.Server.NetworkLatencyUS = &v
	}
	return s
}

// Validate checks the parts of the scenario that do not depend on axis
// values: the config kind, service name, sweep axis and value list.
// Per-point rate validation happens when the points are built, after the
// axis value is applied.
func (s *Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: missing name")
	}
	if _, err := soc.ParseConfigKind(s.Config); err != nil {
		return fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	switch s.Workload.Service {
	case "memcached", "memcached-bursty", "mysql", "kafka", "sysbench":
	case "":
		return fmt.Errorf("scenario %q: missing workload.service", s.Name)
	default:
		return fmt.Errorf("scenario %q: unknown workload.service %q", s.Name, s.Workload.Service)
	}
	if s.Sweep != nil {
		if !knownAxes[s.Sweep.Axis] {
			return fmt.Errorf("scenario %q: unknown sweep axis %q (want one of %v)",
				s.Name, s.Sweep.Axis, Axes())
		}
		if !serverAxes[s.Sweep.Axis] && !workloadAxes[s.Workload.Service][s.Sweep.Axis] {
			return fmt.Errorf("scenario %q: service %q ignores sweep axis %q — every point would be identical",
				s.Name, s.Workload.Service, s.Sweep.Axis)
		}
		if len(s.Sweep.Values) == 0 {
			return fmt.Errorf("scenario %q: sweep has no values", s.Name)
		}
		for _, v := range s.Sweep.Values {
			if v < 0 {
				return fmt.Errorf("scenario %q: negative %s value %g", s.Name, s.Sweep.Axis, v)
			}
			if s.Sweep.Axis == AxisThreads && v != float64(int(v)) {
				return fmt.Errorf("scenario %q: threads value %g is not an integer", s.Name, v)
			}
		}
	}
	if s.DurationMS < 0 {
		return fmt.Errorf("scenario %q: negative duration_ms", s.Name)
	}
	if err := s.Server.validate(); err != nil {
		return fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	return nil
}

// spec builds the workload for one fully-applied scenario point.
// Closed-loop services (sysbench) return ok=false and are handled by
// the closed-loop path in run.go.
func (w Workload) spec(cores int) (spec workload.Spec, open bool, err error) {
	switch w.Service {
	case "memcached":
		switch {
		case w.QPS > 0 && w.Util > 0:
			return spec, false, fmt.Errorf("memcached: set qps or util, not both")
		case w.QPS > 0:
			return workload.Memcached(w.QPS), true, nil
		case w.Util > 0:
			return workload.MemcachedAtUtil(w.Util, cores), true, nil
		default:
			return spec, false, fmt.Errorf("memcached: needs qps or util > 0")
		}
	case "memcached-bursty":
		if w.QPS <= 0 {
			return spec, false, fmt.Errorf("memcached-bursty: needs qps > 0")
		}
		b := w.Burstiness
		if b <= 0 {
			return spec, false, fmt.Errorf("memcached-bursty: needs burstiness > 0")
		}
		return workload.MemcachedBursty(w.QPS, b), true, nil
	case "mysql":
		if w.Load <= 0 {
			return spec, false, fmt.Errorf("mysql: needs load > 0")
		}
		return workload.MySQL(w.Load, cores), true, nil
	case "kafka":
		if w.Load <= 0 {
			return spec, false, fmt.Errorf("kafka: needs load > 0")
		}
		return workload.Kafka(w.Load, cores), true, nil
	case "sysbench":
		if w.Threads <= 0 {
			return spec, false, fmt.Errorf("sysbench: needs threads > 0")
		}
		if w.ThinkMS < 0 {
			return spec, false, fmt.Errorf("sysbench: negative think_ms")
		}
		return spec, false, nil
	default:
		return spec, false, fmt.Errorf("unknown service %q", w.Service)
	}
}

// Load decodes one scenario or a JSON array of scenarios, rejecting
// unknown fields so typos fail loudly instead of silently running the
// defaults.
func Load(r io.Reader) ([]Scenario, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	var scs []Scenario
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if len(trimmed) > 0 && trimmed[0] == '[' {
		err = dec.Decode(&scs)
	} else {
		var sc Scenario
		if err = dec.Decode(&sc); err == nil {
			scs = []Scenario{sc}
		}
	}
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("scenario: trailing data after the first value — wrap multiple scenarios in a JSON array")
	}
	for i := range scs {
		if err := scs[i].Validate(); err != nil {
			return nil, err
		}
	}
	return scs, nil
}

// LoadFile reads scenarios from a JSON file.
func LoadFile(path string) ([]Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	scs, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return scs, nil
}

// EffectiveOptions resolves the runner options the scenario actually
// executes under: the given defaults with the scenario's duration_ms and
// seed overrides applied. Run uses it internally; callers recording run
// metadata should use it too, so the recorded window and seed match the
// simulation.
func (s *Scenario) EffectiveOptions(opt experiments.Options) experiments.Options {
	if s.DurationMS > 0 {
		opt.Duration = sim.Duration(s.DurationMS * float64(sim.Millisecond))
	}
	if s.Seed != 0 {
		opt.Seed = s.Seed
	}
	return opt
}
