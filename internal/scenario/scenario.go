// Package scenario is the declarative layer over the simulator: a
// Scenario names a SoC configuration, a workload, a set of server-config
// overrides, an optional cluster block and an optional sweep axis, and
// Run wires them together the same way the built-in experiments do.
// Scenarios load from JSON (with unknown fields rejected) or are built
// programmatically, so a new operating point — a different QPS axis,
// tick rate, batching epoch, network latency or fleet shape — is data,
// not a new Go file.
//
// A minimal file:
//
//	{
//	  "name": "memcached-tickrate",
//	  "config": "CPC1A",
//	  "workload": {"service": "memcached", "qps": 20000},
//	  "server": {"tick_kernel_us": 2},
//	  "sweep": {"axis": "tick_hz", "values": [0, 100, 250, 1000]}
//	}
//
// Adding a cluster block turns the scenario into a fleet experiment: N
// servers behind a load balancer on one shared engine (see package
// cluster), with the workload rates read as fleet-aggregate values, and
// optionally racked (racks, tor_latency_us) for rack-granular routing:
//
//	{
//	  "name": "pack-vs-spread",
//	  "config": "CPC1A",
//	  "workload": {"service": "memcached", "qps": 80000},
//	  "cluster": {"servers": 4, "racks": 2, "tor_latency_us": 5,
//	              "p99_target_us": 300},
//	  "sweep": {"axis": "policy",
//	            "policies": ["round_robin", "rack_affinity", "power_aware"]}
//	}
//
// The full field reference for the JSON schema is in README.md
// ("Scenario schema reference").
package scenario

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"maps"
	"os"
	"path/filepath"
	"slices"
	"sort"
	"strconv"

	"agilepkgc/internal/cluster"
	"agilepkgc/internal/experiments"
	"agilepkgc/internal/server"
	"agilepkgc/internal/sim"
	"agilepkgc/internal/soc"
	"agilepkgc/internal/workload"
	"agilepkgc/internal/workload/replay"
)

// Scenario is one declarative experiment specification.
type Scenario struct {
	// Name identifies the scenario in reports and output filenames.
	Name string `json:"name"`
	// Description is an optional one-line summary.
	Description string `json:"description,omitempty"`
	// Config is the SoC configuration kind: "Cshallow", "Cdeep" or
	// "CPC1A".
	Config string `json:"config"`
	// DurationMS, when non-zero, overrides the runner's measurement
	// window (milliseconds of virtual time per point).
	DurationMS float64 `json:"duration_ms,omitempty"`
	// Seed, when non-zero, overrides the runner's random seed.
	Seed uint64 `json:"seed,omitempty"`
	// Workload selects the request stream.
	Workload Workload `json:"workload"`
	// Server overrides individual server.Config knobs; unset fields keep
	// the evaluation defaults. With a cluster block these are the base
	// configuration of every server, refined per server by
	// Cluster.ServerOverrides.
	Server Overrides `json:"server,omitempty"`
	// Cluster, when present, runs the scenario as a fleet behind a load
	// balancer instead of a single machine. Workload rates (qps, util,
	// load) are then fleet-aggregate values.
	Cluster *Cluster `json:"cluster,omitempty"`
	// Tiers, when present, runs the scenario as a service graph of
	// fleets on one shared engine (see cluster.Graph): tiers[0] is the
	// client-facing tier driven by the scenario workload, and every
	// later tier is a backend driven by upstream misses via Edges.
	// Mutually exclusive with Cluster — a one-tier graph IS the cluster
	// block, byte for byte (TestTiersSingleTierParity).
	Tiers []Tier `json:"tiers,omitempty"`
	// Edges wires the tiers: each edge performs a cache lookup when a
	// request resolves in its from-tier and, on a miss, issues fanout
	// requests into its to-tier. Requires Tiers.
	Edges []Edge `json:"edges,omitempty"`
	// Sweep, when present, evaluates the scenario once per axis value
	// instead of once.
	Sweep *Sweep `json:"sweep,omitempty"`
}

// Tier is one tier of a service graph: a name, the backend service
// family feeding its miss stream (non-root tiers only — the root
// tier's stream is the scenario workload), and a full fleet shape,
// inlined from Cluster.
type Tier struct {
	// Name labels the tier in reports and is what Edges reference.
	Name string `json:"name"`
	// Service is the tier's workload family — "memcached", "mysql" or
	// "kafka" — supplying the service-time distribution, connection
	// count and memory accesses of the requests upstream misses issue
	// into it. Required on every tier but the first; forbidden on the
	// first, whose stream is the scenario workload.
	Service string `json:"service,omitempty"`
	// The fleet shape, inlined: servers, policy, p99_target_us, racks,
	// tor_latency_us, drain_hold_us, feedback_epoch_us,
	// server_overrides, faults — exactly the cluster block's fields.
	Cluster
}

// Edge is one service-graph edge in scenario units: tier names instead
// of indices, TTL in microseconds.
type Edge struct {
	// From and To name the tiers; a request resolving in From looks up
	// a cache entry and, on a miss, issues Fanout requests into To.
	From string `json:"from"`
	To   string `json:"to"`
	// HitRatio is the probability a lookup that passes the TTL check
	// hits, in [0, 1].
	HitRatio float64 `json:"hit_ratio"`
	// TTLUS is the per-connection cache-entry lifetime (µs); 0 means no
	// TTL model (pure Bernoulli misses).
	TTLUS float64 `json:"ttl_us,omitempty"`
	// Fanout is how many backend requests one miss issues; 0 means 1.
	Fanout int `json:"fanout,omitempty"`
}

// Cluster declares the fleet shape: how many servers sit behind the load
// balancer, how they are racked, and how the balancer routes. See
// package cluster for the policy and topology semantics.
type Cluster struct {
	// Servers is the fleet size. It may be 0 only when the sweep axis is
	// "servers" (the sweep then drives it).
	Servers int `json:"servers"`
	// Policy is "round_robin", "least_loaded", "power_aware",
	// "rack_affinity" or "rack_power_aware". It may be empty only when
	// the sweep axis is "policy".
	Policy string `json:"policy"`
	// P99TargetUS is the latency budget (µs) the power_aware and
	// rack_power_aware policies pack against; required whenever either
	// is the policy or among the swept policies.
	P99TargetUS float64 `json:"p99_target_us,omitempty"`
	// Racks splits the fleet into racks of Servers/Racks machines each
	// (Servers must divide evenly); 0 or 1 means a flat fleet. Rack 0
	// hosts the balancer.
	Racks int `json:"racks,omitempty"`
	// TorLatencyUS is the one-way top-of-rack hop (µs) paid per
	// direction by requests routed into a rack other than rack 0.
	// Setting it requires racks > 1 (or the racks sweep axis).
	TorLatencyUS float64 `json:"tor_latency_us,omitempty"`
	// DrainHoldUS is the hysteretic drain hold (µs): once the balancer
	// drains a server (rack-first under rack_power_aware), it routes
	// nothing to it until it is empty and this much virtual time
	// passes. 0 keeps the static PR 4 routing byte for byte. Setting it
	// (or sweeping it) requires a power_aware/rack_power_aware policy —
	// on any other policy it would be silently inert.
	DrainHoldUS float64 `json:"drain_hold_us,omitempty"`
	// FeedbackEpochUS is the SLA feedback period (µs): every epoch each
	// server's packing cap is recomputed from its measured window p99
	// against p99_target_us (multiplicative decrease / additive
	// increase). 0 keeps the statically derived cap. Same policy
	// requirement as drain_hold_us.
	FeedbackEpochUS float64 `json:"feedback_epoch_us,omitempty"`
	// ServerOverrides refines individual servers on top of the
	// scenario-level Server overrides, keyed by decimal server index
	// ("0" … "N-1") — a heterogeneous fleet (one slow machine, one
	// ticky kernel) stays one JSON file.
	ServerOverrides map[string]Overrides `json:"server_overrides,omitempty"`
	// Faults, when present and non-zero, enables fault injection and
	// request robustness (see cluster.FaultConfig). An absent block —
	// or an all-zero one — keeps the fault-free event sequence byte
	// for byte.
	Faults *Faults `json:"faults,omitempty"`
}

// Faults mirrors cluster.FaultConfig in scenario units (µs). All
// fields are optional; a zero field disables the mechanism it
// parameterizes. An all-zero block is equivalent to no block at all
// (TestFaultsZeroParity locks the output bytes).
type Faults struct {
	// MTBFUS is each server's mean time between crashes (µs,
	// exponential). Non-zero requires mttr_us > 0.
	MTBFUS float64 `json:"mtbf_us,omitempty"`
	// MTTRUS is the mean repair time after a crash (µs, exponential).
	MTTRUS float64 `json:"mttr_us,omitempty"`
	// BrownoutMTBFUS is each server's mean time between brownouts (µs,
	// exponential). Non-zero requires brownout_duration_us > 0 and
	// brownout_factor > 1.
	BrownoutMTBFUS float64 `json:"brownout_mtbf_us,omitempty"`
	// BrownoutDurationUS is how long each brownout lasts (µs).
	BrownoutDurationUS float64 `json:"brownout_duration_us,omitempty"`
	// BrownoutFactor scales the service time of requests assigned to a
	// browned-out server (2 = half speed).
	BrownoutFactor float64 `json:"brownout_factor,omitempty"`
	// TorPartitionMTBFUS is each non-local rack's mean time between ToR
	// partitions (µs, exponential). Non-zero requires
	// tor_partition_duration_us > 0 and racks > 1.
	TorPartitionMTBFUS float64 `json:"tor_partition_mtbf_us,omitempty"`
	// TorPartitionDurationUS is how long each partition lasts (µs).
	TorPartitionDurationUS float64 `json:"tor_partition_duration_us,omitempty"`
	// RequestTimeoutUS bounds how long the balancer waits for a
	// response (µs); the k-th attempt waits 2^(k−1) times this.
	RequestTimeoutUS float64 `json:"request_timeout_us,omitempty"`
	// MaxRetries bounds how many times a lost or timed-out request is
	// resubmitted before it counts as failed.
	MaxRetries int `json:"max_retries,omitempty"`
	// HedgeDelayUS arms one hedged copy per request after this delay
	// (µs); the first response wins.
	HedgeDelayUS float64 `json:"hedge_delay_us,omitempty"`
}

// enabled mirrors cluster.FaultConfig.Enabled on the JSON block: it
// reports whether the block would attach the fault layer at all.
func (f *Faults) enabled() bool {
	return f != nil && (f.MTBFUS > 0 || f.BrownoutMTBFUS > 0 || f.TorPartitionMTBFUS > 0 ||
		f.RequestTimeoutUS > 0 || f.MaxRetries > 0 || f.HedgeDelayUS > 0)
}

// config converts the block to engine units. A nil block is the zero
// (disabled) configuration.
func (f *Faults) config() cluster.FaultConfig {
	if f == nil {
		return cluster.FaultConfig{}
	}
	us := func(v float64) sim.Duration { return sim.Duration(v * float64(sim.Microsecond)) }
	return cluster.FaultConfig{
		MTBF:                 us(f.MTBFUS),
		MTTR:                 us(f.MTTRUS),
		BrownoutMTBF:         us(f.BrownoutMTBFUS),
		BrownoutDuration:     us(f.BrownoutDurationUS),
		BrownoutFactor:       f.BrownoutFactor,
		TorPartitionMTBF:     us(f.TorPartitionMTBFUS),
		TorPartitionDuration: us(f.TorPartitionDurationUS),
		RequestTimeout:       us(f.RequestTimeoutUS),
		MaxRetries:           f.MaxRetries,
		HedgeDelay:           us(f.HedgeDelayUS),
	}
}

// Workload declares the request stream. Exactly one rate field applies
// per service; see the axis list in Sweep for which fields a sweep can
// drive instead.
type Workload struct {
	// Service is one of "memcached", "memcached-bursty", "mysql",
	// "kafka", "sysbench" (closed-loop) or "trace" (recorded arrivals,
	// configured by the Trace block).
	Service string `json:"service"`
	// QPS is the open-loop arrival rate (memcached family).
	QPS float64 `json:"qps,omitempty"`
	// Util is the target processor utilization, an alternative to QPS
	// for the memcached service.
	Util float64 `json:"util,omitempty"`
	// Load is the processor-load fraction (mysql and kafka).
	Load float64 `json:"load,omitempty"`
	// Burstiness is the MMPP burstiness parameter (memcached-bursty).
	Burstiness float64 `json:"burstiness,omitempty"`
	// Threads is the closed-loop client-thread count (sysbench).
	Threads int `json:"threads,omitempty"`
	// ThinkMS is the closed-loop mean think time in milliseconds
	// (sysbench).
	ThinkMS float64 `json:"think_ms,omitempty"`
	// Trace configures the "trace" service: a recorded arrival stream
	// replayed from a binary trace file (see internal/workload/replay
	// and cmd/tracegen).
	Trace *Trace `json:"trace,omitempty"`
}

// Trace points the "trace" service at a recorded arrival stream. The
// workload identity (name, rates, connections) comes from the trace
// header, so none of the synthetic rate fields apply.
type Trace struct {
	// Path is the trace file. Relative paths resolve against the
	// directory of the JSON file that named them (LoadFile), so example
	// scenarios can sit next to their traces.
	Path string `json:"path"`
	// TimeScale multiplies arrival timestamps: 0.5 replays at double
	// speed, 2 at half speed. 0 or 1 replays in recorded time, with
	// integer timestamps preserved bit for bit.
	TimeScale float64 `json:"time_scale,omitempty"`
	// Loop restarts the trace when it runs out, shifting each iteration
	// by the trace's last timestamp; without it replay simply stops
	// when the records do (the measurement window truncates the trace).
	Loop bool `json:"loop,omitempty"`
	// Truncate states the default end-of-trace behavior explicitly.
	// Setting it together with loop is a contradiction and rejected.
	Truncate bool `json:"truncate,omitempty"`
}

// Overrides adjusts server.Config knobs. Pointer fields distinguish
// "unset" (keep the evaluation default) from an explicit zero.
type Overrides struct {
	NetworkLatencyUS *float64 `json:"network_latency_us,omitempty"`
	NICTransferNS    *float64 `json:"nic_transfer_ns,omitempty"`
	KernelOverheadUS *float64 `json:"kernel_overhead_us,omitempty"`
	BatchEpochUS     *float64 `json:"batch_epoch_us,omitempty"`
	TimerTickHz      *float64 `json:"timer_tick_hz,omitempty"`
	TickKernelUS     *float64 `json:"tick_kernel_us,omitempty"`
}

// validate rejects physically meaningless knob settings before they
// reach the engine (negative durations panic the scheduler; negative
// latencies silently corrupt histograms).
func (o Overrides) validate() error {
	// Declared order, not a map walk: with several negative knobs the
	// reported one must be the same on every run (the determinism
	// pass rejects error text born from map iteration).
	for _, kv := range []struct {
		name string
		v    *float64
	}{
		{"network_latency_us", o.NetworkLatencyUS},
		{"nic_transfer_ns", o.NICTransferNS},
		{"kernel_overhead_us", o.KernelOverheadUS},
		{"batch_epoch_us", o.BatchEpochUS},
		{"timer_tick_hz", o.TimerTickHz},
		{"tick_kernel_us", o.TickKernelUS},
	} {
		if kv.v != nil && *kv.v < 0 {
			return fmt.Errorf("server.%s must not be negative (got %g)", kv.name, *kv.v)
		}
	}
	return nil
}

func (o Overrides) apply(cfg *server.Config) {
	us := func(v float64) sim.Duration { return sim.Duration(v * float64(sim.Microsecond)) }
	if o.NetworkLatencyUS != nil {
		cfg.NetworkLatency = us(*o.NetworkLatencyUS)
	}
	if o.NICTransferNS != nil {
		cfg.NICTransfer = sim.Duration(*o.NICTransferNS * float64(sim.Nanosecond))
	}
	if o.KernelOverheadUS != nil {
		cfg.KernelOverhead = us(*o.KernelOverheadUS)
	}
	if o.BatchEpochUS != nil {
		cfg.BatchEpoch = us(*o.BatchEpochUS)
	}
	if o.TimerTickHz != nil {
		cfg.TimerTickHz = *o.TimerTickHz
	}
	if o.TickKernelUS != nil {
		cfg.TickKernelTime = us(*o.TickKernelUS)
	}
}

// Sweep evaluates the scenario at each value of one axis.
type Sweep struct {
	// Axis names the swept parameter.
	Axis string `json:"axis"`
	// Values are the axis points, evaluated in order (numeric axes).
	Values []float64 `json:"values,omitempty"`
	// Policies are the axis points of the string-valued "policy" axis,
	// evaluated in order; exactly one of Values and Policies applies.
	Policies []string `json:"policies,omitempty"`
}

// Axis names a Sweep can drive.
const (
	AxisQPS            = "qps"
	AxisUtil           = "util"
	AxisLoad           = "load"
	AxisBurstiness     = "burstiness"
	AxisThreads        = "threads"
	AxisBatchEpochUS   = "batch_epoch_us"
	AxisTickHz         = "tick_hz"
	AxisNetworkLatency = "network_latency_us"
	AxisServers        = "servers"
	AxisPolicy         = "policy"
	AxisRacks          = "racks"
	AxisTorLatency     = "tor_latency_us"
	AxisDrainHold      = "drain_hold_us"
	AxisFeedbackEpoch  = "feedback_epoch_us"
	AxisMTBF           = "mtbf_us"
	AxisMTTR           = "mttr_us"
	AxisRequestTimeout = "request_timeout_us"
	AxisMaxRetries     = "max_retries"
	AxisHedgeDelay     = "hedge_delay_us"
	AxisHitRatio       = "hit_ratio"
	AxisFanout         = "fanout"
	AxisTTL            = "ttl_us"
)

var knownAxes = map[string]bool{
	AxisQPS: true, AxisUtil: true, AxisLoad: true, AxisBurstiness: true,
	AxisThreads: true, AxisBatchEpochUS: true, AxisTickHz: true,
	AxisNetworkLatency: true, AxisServers: true, AxisPolicy: true,
	AxisRacks: true, AxisTorLatency: true, AxisDrainHold: true,
	AxisFeedbackEpoch: true, AxisMTBF: true, AxisMTTR: true,
	AxisRequestTimeout: true, AxisMaxRetries: true, AxisHedgeDelay: true,
	AxisHitRatio: true, AxisFanout: true, AxisTTL: true,
}

// serverAxes drive server.Config knobs and apply to every service.
var serverAxes = map[string]bool{
	AxisBatchEpochUS: true, AxisTickHz: true, AxisNetworkLatency: true,
}

// clusterAxes drive the cluster block and require one.
var clusterAxes = map[string]bool{
	AxisServers: true, AxisPolicy: true, AxisRacks: true, AxisTorLatency: true,
	AxisDrainHold: true, AxisFeedbackEpoch: true, AxisMTBF: true, AxisMTTR: true,
	AxisRequestTimeout: true, AxisMaxRetries: true, AxisHedgeDelay: true,
}

// faultAxes drive the cluster.faults block and additionally require
// one — at() writes the value into the block, so an absent block has
// nowhere to put it.
var faultAxes = map[string]bool{
	AxisMTBF: true, AxisMTTR: true, AxisRequestTimeout: true,
	AxisMaxRetries: true, AxisHedgeDelay: true,
}

// graphAxes drive the service-graph edges and require a tiers block
// with at least one edge; each axis value applies to every edge.
var graphAxes = map[string]bool{
	AxisHitRatio: true, AxisFanout: true, AxisTTL: true,
}

// workloadAxes lists which workload-side axes each service actually
// reads; sweeping an axis a service ignores would silently produce N
// identical points, so Validate rejects it.
var workloadAxes = map[string]map[string]bool{
	"memcached":        {AxisQPS: true, AxisUtil: true},
	"memcached-bursty": {AxisQPS: true, AxisBurstiness: true},
	"mysql":            {AxisLoad: true},
	"kafka":            {AxisLoad: true},
	"sysbench":         {AxisThreads: true},
	// A trace's arrival stream is recorded: no workload axis can change
	// it, so every workload-side sweep is rejected as inert.
	"trace": {},
}

// Axes returns the supported sweep axis names, sorted.
func Axes() []string {
	out := make([]string, 0, len(knownAxes))
	//apcvet:ordered the keys are sorted below before anything observes them
	for a := range knownAxes {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// at returns a copy of the scenario with one axis value applied. For the
// string-valued policy axis, v is an index into Sweep.Policies. The
// cluster block is cloned before mutation so applied points never alias
// the original scenario's block.
func (s Scenario) at(axis string, v float64) Scenario {
	switch axis {
	case AxisQPS:
		s.Workload.QPS, s.Workload.Util = v, 0
	case AxisUtil:
		s.Workload.Util, s.Workload.QPS = v, 0
	case AxisLoad:
		s.Workload.Load = v
	case AxisBurstiness:
		s.Workload.Burstiness = v
	case AxisThreads:
		s.Workload.Threads = int(v)
	case AxisBatchEpochUS:
		s.Server.BatchEpochUS = &v
	case AxisTickHz:
		s.Server.TimerTickHz = &v
	case AxisNetworkLatency:
		s.Server.NetworkLatencyUS = &v
	case AxisServers:
		c := *s.Cluster
		c.Servers = int(v)
		s.Cluster = &c
	case AxisRacks:
		c := *s.Cluster
		c.Racks = int(v)
		s.Cluster = &c
	case AxisTorLatency:
		c := *s.Cluster
		c.TorLatencyUS = v
		s.Cluster = &c
	case AxisDrainHold:
		c := *s.Cluster
		c.DrainHoldUS = v
		s.Cluster = &c
	case AxisFeedbackEpoch:
		c := *s.Cluster
		c.FeedbackEpochUS = v
		s.Cluster = &c
	case AxisPolicy:
		c := *s.Cluster
		c.Policy = s.Sweep.Policies[int(v)]
		s.Cluster = &c
	case AxisMTBF:
		s.atFaults(func(f *Faults) { f.MTBFUS = v })
	case AxisMTTR:
		s.atFaults(func(f *Faults) { f.MTTRUS = v })
	case AxisRequestTimeout:
		s.atFaults(func(f *Faults) { f.RequestTimeoutUS = v })
	case AxisMaxRetries:
		s.atFaults(func(f *Faults) { f.MaxRetries = int(v) })
	case AxisHedgeDelay:
		s.atFaults(func(f *Faults) { f.HedgeDelayUS = v })
	case AxisHitRatio:
		s.atEdges(func(e *Edge) { e.HitRatio = v })
	case AxisFanout:
		s.atEdges(func(e *Edge) { e.Fanout = int(v) })
	case AxisTTL:
		s.atEdges(func(e *Edge) { e.TTLUS = v })
	}
	return s
}

// atEdges applies one edge-axis mutation to every edge, cloning the
// slice first so applied points never alias the original scenario's
// edges (Validate guarantees edges exist whenever an edge axis is
// swept).
func (s *Scenario) atEdges(mut func(*Edge)) {
	es := make([]Edge, len(s.Edges))
	copy(es, s.Edges)
	for i := range es {
		mut(&es[i])
	}
	s.Edges = es
}

// atFaults applies one fault-axis mutation, cloning both the cluster
// block and its faults block first so applied points never alias the
// original scenario's blocks (Validate guarantees both exist whenever
// a fault axis is swept).
func (s *Scenario) atFaults(mut func(*Faults)) {
	c := *s.Cluster
	fc := *c.Faults
	mut(&fc)
	c.Faults = &fc
	s.Cluster = &c
}

// Validate checks the parts of the scenario that do not depend on axis
// values: the config kind, service name, sweep axis and value list.
// Per-point rate validation happens when the points are built, after the
// axis value is applied.
func (s *Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: missing name")
	}
	if _, err := soc.ParseConfigKind(s.Config); err != nil {
		return fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	switch s.Workload.Service {
	case "memcached", "memcached-bursty", "mysql", "kafka", "sysbench", "trace":
	case "":
		return fmt.Errorf("scenario %q: missing workload.service", s.Name)
	default:
		return fmt.Errorf("scenario %q: unknown workload.service %q", s.Name, s.Workload.Service)
	}
	if err := s.validateTrace(); err != nil {
		return err
	}
	if s.Sweep != nil {
		if !knownAxes[s.Sweep.Axis] {
			return fmt.Errorf("scenario %q: unknown sweep axis %q (want one of %v)",
				s.Name, s.Sweep.Axis, Axes())
		}
		if clusterAxes[s.Sweep.Axis] && s.Cluster == nil {
			return fmt.Errorf("scenario %q: sweep axis %q needs a cluster block", s.Name, s.Sweep.Axis)
		}
		if graphAxes[s.Sweep.Axis] && len(s.Edges) == 0 {
			return fmt.Errorf("scenario %q: sweep axis %q needs a tiers block with edges", s.Name, s.Sweep.Axis)
		}
		if !serverAxes[s.Sweep.Axis] && !clusterAxes[s.Sweep.Axis] && !graphAxes[s.Sweep.Axis] &&
			!workloadAxes[s.Workload.Service][s.Sweep.Axis] {
			return fmt.Errorf("scenario %q: service %q ignores sweep axis %q — every point would be identical",
				s.Name, s.Workload.Service, s.Sweep.Axis)
		}
		if s.Sweep.Axis == AxisPolicy {
			if len(s.Sweep.Values) > 0 {
				return fmt.Errorf("scenario %q: the policy axis takes sweep.policies, not sweep.values", s.Name)
			}
			if len(s.Sweep.Policies) == 0 {
				return fmt.Errorf("scenario %q: sweep has no policies", s.Name)
			}
			for _, p := range s.Sweep.Policies {
				if _, err := cluster.ParsePolicy(p); err != nil {
					return fmt.Errorf("scenario %q: %w", s.Name, err)
				}
			}
		} else {
			if len(s.Sweep.Policies) > 0 {
				return fmt.Errorf("scenario %q: sweep.policies only applies to the %q axis", s.Name, AxisPolicy)
			}
			if len(s.Sweep.Values) == 0 {
				return fmt.Errorf("scenario %q: sweep has no values", s.Name)
			}
		}
		for _, v := range s.Sweep.Values {
			if v < 0 {
				return fmt.Errorf("scenario %q: negative %s value %g", s.Name, s.Sweep.Axis, v)
			}
			if (s.Sweep.Axis == AxisThreads || s.Sweep.Axis == AxisServers || s.Sweep.Axis == AxisRacks || s.Sweep.Axis == AxisMaxRetries || s.Sweep.Axis == AxisFanout) && v != float64(int(v)) {
				return fmt.Errorf("scenario %q: %s value %g is not an integer", s.Name, s.Sweep.Axis, v)
			}
			if (s.Sweep.Axis == AxisServers || s.Sweep.Axis == AxisRacks || s.Sweep.Axis == AxisFanout) && v < 1 {
				return fmt.Errorf("scenario %q: %s value %g is below 1", s.Name, s.Sweep.Axis, v)
			}
			if s.Sweep.Axis == AxisHitRatio && v > 1 {
				return fmt.Errorf("scenario %q: %s value %g is outside [0, 1]", s.Name, s.Sweep.Axis, v)
			}
		}
	}
	if err := s.validateCluster(); err != nil {
		return err
	}
	if err := s.validateTiers(); err != nil {
		return err
	}
	if s.DurationMS < 0 {
		return fmt.Errorf("scenario %q: negative duration_ms", s.Name)
	}
	if err := s.Server.validate(); err != nil {
		return fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	return nil
}

// validateCluster checks the cluster block's axis-independent parts.
// Fields a sweep drives (servers, policy) are only required when no
// sweep supplies them; per-point checks (override indices vs the applied
// fleet size) happen when the points are built.
func (s *Scenario) validateCluster() error {
	c := s.Cluster
	if c == nil {
		return nil
	}
	sweepAxis := ""
	if s.Sweep != nil {
		sweepAxis = s.Sweep.Axis
	}
	if s.Workload.Service == "sysbench" {
		return fmt.Errorf("scenario %q: cluster needs an open-loop service — closed-loop sysbench clients bind to one machine and bypass the balancer", s.Name)
	}
	return s.validateClusterBlock(c, sweepAxis, "cluster")
}

// validateClusterBlock checks one fleet-shape block — the scenario's
// cluster block (label "cluster", with sweep-driven fields relaxed) or
// a tier's inlined block (label "tiers[i]", sweepAxis empty: tier
// fields are never sweep-driven, so every field must be concrete).
func (s *Scenario) validateClusterBlock(c *Cluster, sweepAxis, label string) error {
	if c.Servers < 1 && sweepAxis != AxisServers {
		return fmt.Errorf("scenario %q: %s.servers must be at least 1", s.Name, label)
	}
	needsTarget := func(p cluster.Policy) bool {
		return p == cluster.PowerAware || p == cluster.RackPowerAware
	}
	capped := false
	if sweepAxis == AxisPolicy {
		if c.Policy != "" {
			return fmt.Errorf("scenario %q: %s.policy %q conflicts with the policy sweep — leave it empty", s.Name, label, c.Policy)
		}
		for _, p := range s.Sweep.Policies {
			if pol, err := cluster.ParsePolicy(p); err == nil && needsTarget(pol) {
				capped = true
			}
		}
	} else {
		pol, err := cluster.ParsePolicy(c.Policy)
		if err != nil {
			return fmt.Errorf("scenario %q: %w", s.Name, err)
		}
		capped = needsTarget(pol)
	}
	if c.P99TargetUS < 0 {
		return fmt.Errorf("scenario %q: negative %s.p99_target_us", s.Name, label)
	}
	if capped && c.P99TargetUS <= 0 {
		return fmt.Errorf("scenario %q: power_aware policies need %s.p99_target_us > 0", s.Name, label)
	}
	if c.Racks < 0 {
		return fmt.Errorf("scenario %q: negative %s.racks", s.Name, label)
	}
	if c.TorLatencyUS < 0 {
		return fmt.Errorf("scenario %q: negative %s.tor_latency_us", s.Name, label)
	}
	if c.DrainHoldUS < 0 {
		return fmt.Errorf("scenario %q: negative %s.drain_hold_us", s.Name, label)
	}
	if c.FeedbackEpochUS < 0 {
		return fmt.Errorf("scenario %q: negative %s.feedback_epoch_us", s.Name, label)
	}
	// The balancer-dynamics knobs only act on the cap-based packing
	// policies; anywhere else they would be silently inert, like
	// sweeping an ignored axis.
	if (c.DrainHoldUS > 0 || c.FeedbackEpochUS > 0) && !capped {
		return fmt.Errorf("scenario %q: %s.drain_hold_us/feedback_epoch_us need a power_aware or rack_power_aware policy", s.Name, label)
	}
	if (sweepAxis == AxisDrainHold || sweepAxis == AxisFeedbackEpoch) && !capped {
		return fmt.Errorf("scenario %q: the %s axis needs a power_aware or rack_power_aware policy", s.Name, sweepAxis)
	}
	// A ToR hop with nothing non-local to cross would be silently inert,
	// like sweeping an ignored axis — reject it up front.
	if c.TorLatencyUS > 0 && c.Racks <= 1 && sweepAxis != AxisRacks {
		return fmt.Errorf("scenario %q: %s.tor_latency_us needs racks > 1", s.Name, label)
	}
	if sweepAxis == AxisTorLatency && c.Racks <= 1 {
		return fmt.Errorf("scenario %q: the %s axis needs cluster.racks > 1 — a flat fleet pays no ToR hop", s.Name, AxisTorLatency)
	}
	for _, key := range slices.Sorted(maps.Keys(c.ServerOverrides)) {
		idx, err := strconv.Atoi(key)
		if err != nil || idx < 0 {
			return fmt.Errorf("scenario %q: %s.server_overrides key %q is not a server index", s.Name, label, key)
		}
		if err := c.ServerOverrides[key].validate(); err != nil {
			return fmt.Errorf("scenario %q: server_overrides[%s]: %w", s.Name, key, err)
		}
	}
	return s.validateFaultsBlock(c, sweepAxis, label)
}

// validateFaultsBlock checks one faults block (the cluster block's or a
// tier's): non-negative knobs, the same coherence rules
// cluster.FaultConfig enforces at assembly (restated here so a bad file
// fails at load, not mid-run), and the package's "silently inert knob"
// rule — a field whose mechanism can never fire is a typo, not a
// configuration.
func (s *Scenario) validateFaultsBlock(c *Cluster, sweepAxis, label string) error {
	fc := c.Faults
	if fc == nil {
		if faultAxes[sweepAxis] {
			return fmt.Errorf("scenario %q: the %s axis needs a cluster.faults block", s.Name, sweepAxis)
		}
		return nil
	}
	// Declared order (mirrors the FaultConfig field order), so the
	// first offending knob reported is deterministic.
	for _, kv := range []struct {
		name string
		v    float64
	}{
		{"mtbf_us", fc.MTBFUS}, {"mttr_us", fc.MTTRUS},
		{"brownout_mtbf_us", fc.BrownoutMTBFUS}, {"brownout_duration_us", fc.BrownoutDurationUS},
		{"brownout_factor", fc.BrownoutFactor},
		{"tor_partition_mtbf_us", fc.TorPartitionMTBFUS}, {"tor_partition_duration_us", fc.TorPartitionDurationUS},
		{"request_timeout_us", fc.RequestTimeoutUS}, {"hedge_delay_us", fc.HedgeDelayUS},
	} {
		if kv.v < 0 {
			return fmt.Errorf("scenario %q: negative %s.faults.%s", s.Name, label, kv.name)
		}
	}
	if fc.MaxRetries < 0 {
		return fmt.Errorf("scenario %q: negative %s.faults.max_retries", s.Name, label)
	}
	// Crash process: a crash with no repair never ends; a repair time
	// with no crash process never fires. The mtbf_us axis supplies the
	// crash side per point, so mttr_us alone is fine under it.
	if (fc.MTBFUS > 0 || sweepAxis == AxisMTBF) && fc.MTTRUS <= 0 && sweepAxis != AxisMTTR {
		return fmt.Errorf("scenario %q: %s.faults.mtbf_us needs mttr_us > 0", s.Name, label)
	}
	if fc.MTTRUS > 0 && fc.MTBFUS <= 0 && sweepAxis != AxisMTBF {
		return fmt.Errorf("scenario %q: %s.faults.mttr_us needs mtbf_us > 0 (or the %s axis)", s.Name, label, AxisMTBF)
	}
	if sweepAxis == AxisMTTR {
		if fc.MTBFUS <= 0 {
			return fmt.Errorf("scenario %q: the %s axis needs cluster.faults.mtbf_us > 0", s.Name, AxisMTTR)
		}
		for _, v := range s.Sweep.Values {
			if v <= 0 {
				return fmt.Errorf("scenario %q: %s value %g — a crash with no repair process never ends", s.Name, AxisMTTR, v)
			}
		}
	}
	// Brownout process: the three fields only act together.
	if fc.BrownoutMTBFUS > 0 && (fc.BrownoutDurationUS <= 0 || fc.BrownoutFactor <= 1) {
		return fmt.Errorf("scenario %q: %s.faults.brownout_mtbf_us needs brownout_duration_us > 0 and brownout_factor > 1", s.Name, label)
	}
	if (fc.BrownoutDurationUS > 0 || fc.BrownoutFactor != 0) && fc.BrownoutMTBFUS <= 0 {
		return fmt.Errorf("scenario %q: %s.faults.brownout_duration_us/brownout_factor need brownout_mtbf_us > 0", s.Name, label)
	}
	// Partition process: needs a duration and a ToR to cut.
	if fc.TorPartitionMTBFUS > 0 {
		if fc.TorPartitionDurationUS <= 0 {
			return fmt.Errorf("scenario %q: %s.faults.tor_partition_mtbf_us needs tor_partition_duration_us > 0", s.Name, label)
		}
		if c.Racks <= 1 && sweepAxis != AxisRacks {
			return fmt.Errorf("scenario %q: %s.faults.tor_partition_mtbf_us needs racks > 1 — a flat fleet has no ToR uplink to cut", s.Name, label)
		}
		if sweepAxis == AxisRacks {
			for _, v := range s.Sweep.Values {
				if v <= 1 {
					return fmt.Errorf("scenario %q: racks value %g with ToR partition faults — a flat fleet has no ToR uplink to cut", s.Name, v)
				}
			}
		}
	}
	if fc.TorPartitionDurationUS > 0 && fc.TorPartitionMTBFUS <= 0 {
		return fmt.Errorf("scenario %q: %s.faults.tor_partition_duration_us needs tor_partition_mtbf_us > 0", s.Name, label)
	}
	// Retries only fire on a timeout or an injected loss; with neither
	// the budget is inert.
	injecting := fc.MTBFUS > 0 || fc.BrownoutMTBFUS > 0 || fc.TorPartitionMTBFUS > 0 ||
		sweepAxis == AxisMTBF
	if (fc.MaxRetries > 0 || sweepAxis == AxisMaxRetries) &&
		fc.RequestTimeoutUS <= 0 && sweepAxis != AxisRequestTimeout && !injecting {
		return fmt.Errorf("scenario %q: %s.faults.max_retries needs request_timeout_us > 0 or a fault-injection process — nothing would ever retry", s.Name, label)
	}
	return nil
}

// validateTiers checks the tiers/edges service-graph blocks. Failures
// inside one tier or edge are wrapped in a blockError so load can point
// at the element's line and column in the source file.
func (s *Scenario) validateTiers() error {
	if len(s.Tiers) == 0 {
		if len(s.Edges) > 0 {
			return fmt.Errorf("scenario %q: edges need a tiers block", s.Name)
		}
		return nil
	}
	if s.Cluster != nil {
		return fmt.Errorf("scenario %q: tiers and cluster are mutually exclusive — a one-tier graph is the cluster block", s.Name)
	}
	if s.Workload.Service == "sysbench" {
		return fmt.Errorf("scenario %q: tiers need an open-loop service — closed-loop sysbench clients bind to one machine and bypass the balancer", s.Name)
	}
	sweepAxis := ""
	if s.Sweep != nil {
		sweepAxis = s.Sweep.Axis
	}
	if clusterAxes[sweepAxis] {
		// Unreachable today (clusterAxes require a cluster block, which
		// tiers exclude), kept as a guard: tier fields are never
		// sweep-driven.
		return fmt.Errorf("scenario %q: sweep axis %q drives the cluster block, which tiers replace", s.Name, sweepAxis)
	}
	names := make(map[string]int, len(s.Tiers))
	for i := range s.Tiers {
		t := &s.Tiers[i]
		if t.Name == "" {
			return blockErr("tiers", i, fmt.Errorf("scenario %q: tiers[%d] has no name", s.Name, i))
		}
		if j, dup := names[t.Name]; dup {
			return blockErr("tiers", i, fmt.Errorf("scenario %q: tiers[%d] duplicates tier name %q (tiers[%d])", s.Name, i, t.Name, j))
		}
		names[t.Name] = i
		if i == 0 && t.Service != "" {
			return blockErr("tiers", 0, fmt.Errorf("scenario %q: tiers[0] (%q) is driven by the scenario workload — drop its service field", s.Name, t.Name))
		}
		if i > 0 {
			switch t.Service {
			case "memcached", "mysql", "kafka":
			case "":
				return blockErr("tiers", i, fmt.Errorf("scenario %q: tiers[%d] (%q) needs a service — the miss stream must know what requests to issue", s.Name, i, t.Name))
			default:
				return blockErr("tiers", i, fmt.Errorf("scenario %q: tiers[%d] (%q) has unknown service %q (want memcached, mysql or kafka)", s.Name, i, t.Name, t.Service))
			}
		}
		if err := s.validateClusterBlock(&t.Cluster, "", fmt.Sprintf("tiers[%d]", i)); err != nil {
			return blockErr("tiers", i, err)
		}
	}
	for i := range s.Edges {
		e := &s.Edges[i]
		from, ok := names[e.From]
		if !ok {
			return blockErr("edges", i, fmt.Errorf("scenario %q: edges[%d].from names unknown tier %q", s.Name, i, e.From))
		}
		to, ok := names[e.To]
		if !ok {
			return blockErr("edges", i, fmt.Errorf("scenario %q: edges[%d].to names unknown tier %q", s.Name, i, e.To))
		}
		if from == to {
			return blockErr("edges", i, fmt.Errorf("scenario %q: edges[%d] loops tier %q onto itself", s.Name, i, e.From))
		}
		if to == 0 {
			return blockErr("edges", i, fmt.Errorf("scenario %q: edges[%d] feeds tier %q — tiers[0] is the client-facing tier and takes no in-edges", s.Name, i, e.To))
		}
		if e.HitRatio < 0 || e.HitRatio > 1 {
			return blockErr("edges", i, fmt.Errorf("scenario %q: edges[%d].hit_ratio %g is outside [0, 1]", s.Name, i, e.HitRatio))
		}
		if e.TTLUS < 0 {
			return blockErr("edges", i, fmt.Errorf("scenario %q: negative edges[%d].ttl_us", s.Name, i))
		}
		if e.Fanout < 0 {
			return blockErr("edges", i, fmt.Errorf("scenario %q: negative edges[%d].fanout", s.Name, i))
		}
		// An edge that can never miss makes fan-out (configured or swept)
		// silently inert — unless the sweep drives the miss model itself.
		neverMisses := e.HitRatio >= 1 && e.TTLUS == 0 &&
			sweepAxis != AxisHitRatio && sweepAxis != AxisTTL
		if e.Fanout > 1 && neverMisses {
			return blockErr("edges", i, fmt.Errorf("scenario %q: edges[%d] sets fanout %d on an edge that never misses (hit_ratio 1, no ttl)", s.Name, i, e.Fanout))
		}
		if sweepAxis == AxisFanout && neverMisses {
			return blockErr("edges", i, fmt.Errorf("scenario %q: the %s axis is inert on edges[%d] — it never misses (hit_ratio 1, no ttl)", s.Name, AxisFanout, i))
		}
		// A sweep value can recreate the never-miss shape per point:
		// hit_ratio swept to 1 (or ttl_us to 0) on a fan-out edge.
		if e.Fanout > 1 {
			if sweepAxis == AxisHitRatio && e.TTLUS == 0 {
				for _, v := range s.Sweep.Values {
					if v >= 1 {
						return blockErr("edges", i, fmt.Errorf("scenario %q: %s value %g makes edges[%d] never miss — its fanout %d would be silently inert", s.Name, AxisHitRatio, v, i, e.Fanout))
					}
				}
			}
			if sweepAxis == AxisTTL && e.HitRatio >= 1 {
				for _, v := range s.Sweep.Values {
					if v == 0 {
						return blockErr("edges", i, fmt.Errorf("scenario %q: %s value 0 makes edges[%d] never miss — its fanout %d would be silently inert", s.Name, AxisTTL, i, e.Fanout))
					}
				}
			}
		}
	}
	adj := make([][]int, len(s.Tiers))
	for _, e := range s.Edges {
		adj[names[e.From]] = append(adj[names[e.From]], names[e.To])
	}
	// An edge closes a cycle exactly when its source is already
	// reachable from its destination.
	for i := range s.Edges {
		e := &s.Edges[i]
		if reaches(adj, names[e.To], names[e.From]) {
			return blockErr("edges", i, fmt.Errorf("scenario %q: edges[%d] (%s -> %s) closes a cycle — the service graph must be acyclic", s.Name, i, e.From, e.To))
		}
	}
	// Every tier must sit on a path from the root, or it simulates
	// nothing — a silently inert tier, rejected like an ignored axis.
	seen := make([]bool, len(s.Tiers))
	seen[0] = true
	queue := []int{0}
	for len(queue) > 0 {
		t := queue[0]
		queue = queue[1:]
		for _, n := range adj[t] {
			if !seen[n] {
				seen[n] = true
				queue = append(queue, n)
			}
		}
	}
	for i, ok := range seen {
		if !ok {
			return blockErr("tiers", i, fmt.Errorf("scenario %q: tiers[%d] (%q) is unreachable from tiers[0] — it would be silently inert", s.Name, i, s.Tiers[i].Name))
		}
	}
	return nil
}

// reaches reports whether target is reachable from start in adj.
func reaches(adj [][]int, start, target int) bool {
	if start == target {
		return true
	}
	seen := make([]bool, len(adj))
	seen[start] = true
	stack := []int{start}
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, n := range adj[t] {
			if n == target {
				return true
			}
			if !seen[n] {
				seen[n] = true
				stack = append(stack, n)
			}
		}
	}
	return false
}

// validateTrace checks the workload.trace block with validateFaults'
// rigor: every field must be able to act. A trace block on a synthetic
// service would be silently ignored; a synthetic rate field on the
// trace service could never act (the stream is recorded); loop and
// truncate contradict each other; and replay is fleet-only, so a trace
// without a cluster block has no machine to drive (a 1-server fleet is
// the single-machine case).
func (s *Scenario) validateTrace() error {
	t := s.Workload.Trace
	if s.Workload.Service != "trace" {
		if t != nil {
			return fmt.Errorf("scenario %q: workload.trace only applies to the %q service — on %q it would be silently ignored",
				s.Name, "trace", s.Workload.Service)
		}
		return nil
	}
	if t == nil {
		return fmt.Errorf("scenario %q: the trace service needs a workload.trace block", s.Name)
	}
	if t.Path == "" {
		return fmt.Errorf("scenario %q: missing workload.trace.path", s.Name)
	}
	w := s.Workload
	if w.QPS != 0 || w.Util != 0 || w.Load != 0 || w.Burstiness != 0 || w.Threads != 0 || w.ThinkMS != 0 {
		return fmt.Errorf("scenario %q: synthetic rate fields (qps/util/load/burstiness/threads/think_ms) cannot apply to a recorded trace — its stream is fixed", s.Name)
	}
	if t.TimeScale < 0 {
		return fmt.Errorf("scenario %q: negative workload.trace.time_scale", s.Name)
	}
	if t.Loop && t.Truncate {
		return fmt.Errorf("scenario %q: workload.trace.loop and truncate contradict each other — pick one", s.Name)
	}
	if s.Cluster == nil {
		return fmt.Errorf("scenario %q: the trace service needs a cluster block (use servers: 1 for a single machine)", s.Name)
	}
	return nil
}

// spec builds the workload for one fully-applied scenario point.
// Closed-loop services (sysbench) return ok=false and are handled by
// the closed-loop path in run.go.
func (w Workload) spec(cores int) (spec workload.Spec, open bool, err error) {
	switch w.Service {
	case "memcached":
		switch {
		case w.QPS > 0 && w.Util > 0:
			return spec, false, fmt.Errorf("memcached: set qps or util, not both")
		case w.QPS > 0:
			return workload.Memcached(w.QPS), true, nil
		case w.Util > 0:
			return workload.MemcachedAtUtil(w.Util, cores), true, nil
		default:
			return spec, false, fmt.Errorf("memcached: needs qps or util > 0")
		}
	case "memcached-bursty":
		if w.QPS <= 0 {
			return spec, false, fmt.Errorf("memcached-bursty: needs qps > 0")
		}
		b := w.Burstiness
		if b <= 0 {
			return spec, false, fmt.Errorf("memcached-bursty: needs burstiness > 0")
		}
		return workload.MemcachedBursty(w.QPS, b), true, nil
	case "mysql":
		if w.Load <= 0 {
			return spec, false, fmt.Errorf("mysql: needs load > 0")
		}
		return workload.MySQL(w.Load, cores), true, nil
	case "kafka":
		if w.Load <= 0 {
			return spec, false, fmt.Errorf("kafka: needs load > 0")
		}
		return workload.Kafka(w.Load, cores), true, nil
	case "sysbench":
		if w.Threads <= 0 {
			return spec, false, fmt.Errorf("sysbench: needs threads > 0")
		}
		if w.ThinkMS < 0 {
			return spec, false, fmt.Errorf("sysbench: negative think_ms")
		}
		return spec, false, nil
	case "trace":
		// The runner resolves trace specs from the trace header before
		// it ever needs a synthetic spec; reaching this is a bug.
		return spec, false, fmt.Errorf("trace: spec comes from the trace header, not the workload fields")
	default:
		return spec, false, fmt.Errorf("unknown service %q", w.Service)
	}
}

// Load decodes one scenario or a JSON array of scenarios, rejecting
// unknown fields so typos fail loudly instead of silently running the
// defaults. Relative trace paths resolve against the current
// directory; use LoadFile to resolve them against the JSON file's.
func Load(r io.Reader) ([]Scenario, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return load(data, "")
}

// load decodes, validates and — for trace scenarios — preflights the
// trace file, so a missing or malformed trace fails at load with the
// line and column of the path that named it, not mid-run.
func load(data []byte, baseDir string) ([]Scenario, error) {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	var scs []Scenario
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var err error
	if len(trimmed) > 0 && trimmed[0] == '[' {
		err = dec.Decode(&scs)
	} else {
		var sc Scenario
		if err = dec.Decode(&sc); err == nil {
			scs = []Scenario{sc}
		}
	}
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", locateJSONError(data, err))
	}
	if dec.More() {
		return nil, fmt.Errorf("scenario: trailing data after the first value — wrap multiple scenarios in a JSON array")
	}
	for i := range scs {
		if err := scs[i].Validate(); err != nil {
			return nil, locateBlockError(data, err)
		}
		if err := scs[i].preflightTrace(baseDir, data); err != nil {
			return nil, err
		}
	}
	return scs, nil
}

// preflightTrace opens and header-checks the trace file behind a
// validated trace scenario, resolving a relative path against baseDir
// (the JSON file's directory) and rewriting Trace.Path to the resolved
// form so the runner opens the same file. Failures are located at the
// line and column of the path string in the JSON source.
func (s *Scenario) preflightTrace(baseDir string, data []byte) error {
	if s.Workload.Service != "trace" {
		return nil
	}
	t := s.Workload.Trace
	orig := t.Path
	if baseDir != "" && !filepath.IsAbs(t.Path) {
		t.Path = filepath.Join(baseDir, t.Path)
	}
	if err := t.preflight(); err != nil {
		return fmt.Errorf("scenario %q: workload.trace.path: %w", s.Name, locatePathError(data, orig, err))
	}
	return nil
}

// preflight verifies the trace file exists and carries a valid,
// non-empty, loop-compatible header — everything replay needs short of
// reading the records. The runner repeats it per resolved point so
// programmatically-built scenarios (which never went through Load) fail
// before any simulation runs.
func (t *Trace) preflight() error {
	f, err := os.Open(t.Path)
	if err != nil {
		return err
	}
	defer f.Close()
	rd, err := replay.NewReader(f)
	if err != nil {
		return fmt.Errorf("%s: %w", t.Path, err)
	}
	h := rd.Header()
	if h.Count == 0 {
		return fmt.Errorf("%s: empty trace — nothing to replay", t.Path)
	}
	if t.Loop && h.LastTS <= 0 {
		return fmt.Errorf("%s: cannot loop a trace whose last timestamp is 0", t.Path)
	}
	return nil
}

// blockError tags a tiers/edges validation failure with the JSON array
// it came from ("tiers" or "edges") and the failing element's index, so
// load can point at the element's line and column in the source file.
// Programmatic callers of Validate see it as a plain error.
type blockError struct {
	key   string
	index int
	err   error
}

func (e *blockError) Error() string { return e.err.Error() }
func (e *blockError) Unwrap() error { return e.err }

func blockErr(key string, index int, err error) error {
	return &blockError{key: key, index: index, err: err}
}

// locateBlockError prefixes a blockError with the line and column of
// the failing tiers/edges element in the JSON source. Like
// locatePathError it is best-effort: if the keyed array appears zero
// times or more than once in the file, the error passes through
// unchanged rather than pointing at the wrong element.
func locateBlockError(data []byte, err error) error {
	var be *blockError
	if !errors.As(err, &be) {
		return err
	}
	off, ok := locateArrayElement(data, be.key, be.index)
	if !ok {
		return err
	}
	prefix := data[:off]
	line := 1 + bytes.Count(prefix, []byte("\n"))
	col := off - int64(bytes.LastIndexByte(prefix, '\n'))
	if col < 1 {
		col = 1
	}
	return fmt.Errorf("line %d, column %d: %w", line, col, err)
}

// locateArrayElement walks the JSON token stream and returns the byte
// offset of the opening brace of element `index` of the array keyed by
// `key`. It reports ok=false when the key's array appears zero times or
// more than once (ambiguous), or the element is not an object.
func locateArrayElement(data []byte, key string, index int) (int64, bool) {
	type frame struct {
		obj       bool // object frame (vs array)
		expectKey bool // next string token is an object key
		matched   bool // array frame holding the keyed elements
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	var stack []frame
	pendingMatch := false // the next '[' is the keyed array's opening
	var matches [][]int64 // element start offsets, per matched array
	for {
		tok, err := dec.Token()
		if err != nil {
			break
		}
		switch t := tok.(type) {
		case json.Delim:
			switch t {
			case '{', '[':
				if t == '{' && len(stack) > 0 {
					if top := &stack[len(stack)-1]; !top.obj && top.matched {
						// A direct element of the keyed array: its '{' is
						// the byte just consumed.
						matches[len(matches)-1] = append(matches[len(matches)-1], dec.InputOffset()-1)
					}
				}
				isMatch := t == '[' && pendingMatch
				if isMatch {
					matches = append(matches, nil)
				}
				stack = append(stack, frame{obj: t == '{', expectKey: t == '{', matched: isMatch})
				pendingMatch = false
			case '}', ']':
				stack = stack[:len(stack)-1]
				if len(stack) > 0 {
					if top := &stack[len(stack)-1]; top.obj {
						top.expectKey = true
					}
				}
			}
		default:
			pendingMatch = false
			if len(stack) > 0 {
				if top := &stack[len(stack)-1]; top.obj {
					if top.expectKey {
						if s, isStr := tok.(string); isStr && s == key {
							pendingMatch = true
						}
						top.expectKey = false
					} else {
						top.expectKey = true
					}
				}
			}
		}
	}
	if len(matches) != 1 || index >= len(matches[0]) {
		return 0, false
	}
	return matches[0][index], true
}

// locatePathError prefixes an error with the line and column of the
// given string value in the JSON source, found by its encoded form.
// If the string cannot be located (it appears zero times or more than
// once), the error passes through unchanged.
func locatePathError(data []byte, value string, err error) error {
	quoted, merr := json.Marshal(value)
	if merr != nil {
		return err
	}
	idx := bytes.Index(data, quoted)
	if idx < 0 || bytes.Index(data[idx+1:], quoted) >= 0 {
		return err
	}
	prefix := data[:idx]
	line := 1 + bytes.Count(prefix, []byte("\n"))
	col := int64(idx) - int64(bytes.LastIndexByte(prefix, '\n'))
	if col < 1 {
		col = 1
	}
	return fmt.Errorf("line %d, column %d: %w", line, col, err)
}

// locateJSONError prefixes decoding errors that carry a byte offset
// (syntax errors, type mismatches) with the line and column of the
// failing byte, so a bad edit to an examples/scenarios/*.json file
// points at the line instead of making the reader bisect the file. The
// offset is relative to data, which is exactly what the decoder read.
// Errors without an offset pass through unchanged.
func locateJSONError(data []byte, err error) error {
	var off int64
	var synErr *json.SyntaxError
	var typeErr *json.UnmarshalTypeError
	switch {
	case errors.As(err, &synErr):
		off = synErr.Offset
	case errors.As(err, &typeErr):
		off = typeErr.Offset
	default:
		return err
	}
	if off < 1 || off > int64(len(data)) {
		return err
	}
	// The reported offset counts the bytes consumed up to and including
	// the failing one, so the failing byte is data[off-1].
	prefix := data[:off]
	line := 1 + bytes.Count(prefix, []byte("\n"))
	col := off - int64(bytes.LastIndexByte(prefix, '\n')) - 1
	if col < 1 {
		col = 1
	}
	return fmt.Errorf("line %d, column %d (byte %d): %w", line, col, off, err)
}

// LoadFile reads scenarios from a JSON file. Relative trace paths
// resolve against the file's directory, so a scenario can name a trace
// sitting next to it.
func LoadFile(path string) ([]Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	scs, err := load(data, filepath.Dir(path))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return scs, nil
}

// EffectiveOptions resolves the runner options the scenario actually
// executes under: the given defaults with the scenario's duration_ms and
// seed overrides applied. Run uses it internally; callers recording run
// metadata should use it too, so the recorded window and seed match the
// simulation.
func (s *Scenario) EffectiveOptions(opt experiments.Options) experiments.Options {
	if s.DurationMS > 0 {
		opt.Duration = sim.Duration(s.DurationMS * float64(sim.Millisecond))
	}
	if s.Seed != 0 {
		opt.Seed = s.Seed
	}
	return opt
}
