package scenario

import (
	"path/filepath"
	"testing"
)

// TestExampleScenariosParse locks the shipped example files to the
// schema: every examples/scenarios/*.json must load and validate, so a
// schema change that orphans the documented examples fails `make ci`
// instead of a reader.
func TestExampleScenariosParse(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "examples", "scenarios", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	// Guards against the directory silently moving: the repo ships at
	// least the tick-rate, batching, and two cluster files.
	if len(files) < 4 {
		t.Fatalf("expected at least 4 example scenario files, found %d: %v", len(files), files)
	}
	seen := map[string]string{}
	for _, f := range files {
		scs, err := LoadFile(f)
		if err != nil {
			t.Errorf("%s does not parse: %v", f, err)
			continue
		}
		if len(scs) == 0 {
			t.Errorf("%s holds no scenarios", f)
		}
		for _, sc := range scs {
			if prev, dup := seen[sc.Name]; dup {
				t.Errorf("scenario name %q appears in both %s and %s", sc.Name, prev, f)
			}
			seen[sc.Name] = f
			if sc.Description == "" {
				t.Errorf("%s: scenario %q ships without a description", f, sc.Name)
			}
		}
	}
}
