package scenario

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"agilepkgc/internal/experiments"
	"agilepkgc/internal/sim"
	"agilepkgc/internal/workload"
	"agilepkgc/internal/workload/replay"
)

// writeTestTrace synthesizes a small real trace file and returns its
// path.
func writeTestTrace(t *testing.T, dir string, spec workload.Spec, seed uint64, warmup, duration sim.Duration) string {
	t.Helper()
	path := filepath.Join(dir, "test.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := replay.Synthesize(f, spec, seed, warmup, duration); err != nil {
		t.Fatal(err)
	}
	return path
}

func traceScenario(path string) Scenario {
	return Scenario{
		Name:     "tr",
		Config:   "CPC1A",
		Workload: Workload{Service: "trace", Trace: &Trace{Path: path}},
		Cluster:  &Cluster{Servers: 1, Policy: "round_robin"},
	}
}

// TestTraceValidation pins the trace block's inert-combination rules:
// every rejected shape is one where a field could never act.
func TestTraceValidation(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Scenario)
		wantErr string
	}{
		{"missing block", func(s *Scenario) { s.Workload.Trace = nil }, "needs a workload.trace block"},
		{"empty path", func(s *Scenario) { s.Workload.Trace.Path = "" }, "missing workload.trace.path"},
		{"trace block on synthetic service", func(s *Scenario) {
			s.Workload.Service = "memcached"
			s.Workload.QPS = 1000
		}, "only applies"},
		{"qps on trace", func(s *Scenario) { s.Workload.QPS = 1000 }, "synthetic rate fields"},
		{"util on trace", func(s *Scenario) { s.Workload.Util = 0.5 }, "synthetic rate fields"},
		{"load on trace", func(s *Scenario) { s.Workload.Load = 0.1 }, "synthetic rate fields"},
		{"burstiness on trace", func(s *Scenario) { s.Workload.Burstiness = 4 }, "synthetic rate fields"},
		{"threads on trace", func(s *Scenario) { s.Workload.Threads = 8 }, "synthetic rate fields"},
		{"negative time scale", func(s *Scenario) { s.Workload.Trace.TimeScale = -2 }, "negative workload.trace.time_scale"},
		{"loop and truncate", func(s *Scenario) {
			s.Workload.Trace.Loop = true
			s.Workload.Trace.Truncate = true
		}, "contradict"},
		{"no cluster block", func(s *Scenario) { s.Cluster = nil }, "needs a cluster block"},
		{"workload sweep axis", func(s *Scenario) {
			s.Sweep = &Sweep{Axis: AxisQPS, Values: []float64{1000, 2000}}
		}, "ignores sweep axis"},
		{"burstiness sweep axis", func(s *Scenario) {
			s.Sweep = &Sweep{Axis: AxisBurstiness, Values: []float64{2, 4}}
		}, "ignores sweep axis"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sc := traceScenario("whatever.trace")
			c.mutate(&sc)
			err := sc.Validate()
			if err == nil {
				t.Fatal("Validate accepted the scenario")
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
	// The valid shapes: plain, looped, scaled, and cluster-axis sweeps.
	ok := traceScenario("whatever.trace")
	if err := ok.Validate(); err != nil {
		t.Errorf("plain trace scenario rejected: %v", err)
	}
	ok.Workload.Trace.Loop = true
	ok.Workload.Trace.TimeScale = 2
	ok.Cluster.Servers = 4
	ok.Sweep = &Sweep{Axis: AxisServers, Values: []float64{2, 4}}
	ok.Cluster.Servers = 0
	if err := ok.Validate(); err != nil {
		t.Errorf("looped, scaled, servers-swept trace scenario rejected: %v", err)
	}
}

// TestTraceLoadPreflight pins load-time file checking: a missing,
// malformed or empty trace fails at Load with the line and column of
// the path that named it.
func TestTraceLoadPreflight(t *testing.T) {
	dir := t.TempDir()
	goodPath := writeTestTrace(t, dir, workload.Memcached(20000), 1, sim.Millisecond, 10*sim.Millisecond)

	scenarioJSON := func(path string, extra string) string {
		return fmt.Sprintf(`{
  "name": "tr",
  "config": "CPC1A",
  "workload": {"service": "trace",
               "trace": {"path": %q%s}},
  "cluster": {"servers": 1, "policy": "round_robin"}
}`, path, extra)
	}

	t.Run("valid", func(t *testing.T) {
		scs, err := Load(strings.NewReader(scenarioJSON(goodPath, "")))
		if err != nil {
			t.Fatalf("Load: %v", err)
		}
		if scs[0].Workload.Trace.Path != goodPath {
			t.Errorf("path mangled: %q", scs[0].Workload.Trace.Path)
		}
	})
	t.Run("missing file", func(t *testing.T) {
		missing := filepath.Join(dir, "nope.trace")
		_, err := Load(strings.NewReader(scenarioJSON(missing, "")))
		if err == nil {
			t.Fatal("Load accepted a missing trace file")
		}
		if !strings.Contains(err.Error(), "line 5") {
			t.Errorf("error %q does not locate the path on line 5", err)
		}
	})
	t.Run("malformed trace", func(t *testing.T) {
		bad := filepath.Join(dir, "bad.trace")
		if err := os.WriteFile(bad, []byte("not a trace"), 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := Load(strings.NewReader(scenarioJSON(bad, "")))
		if err == nil {
			t.Fatal("Load accepted a malformed trace file")
		}
		if !strings.Contains(err.Error(), "line 5") || !strings.Contains(err.Error(), "truncated header") {
			t.Errorf("error %q does not locate line 5 with the decode failure", err)
		}
	})
	t.Run("empty trace", func(t *testing.T) {
		empty := filepath.Join(dir, "empty.trace")
		f, err := os.Create(empty)
		if err != nil {
			t.Fatal(err)
		}
		w, err := replay.NewWriter(f, replay.Meta{Name: "e", MeanQPS: 1, ServiceMean: 1e-6, Connections: 1})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Close(); err != nil {
			t.Fatal(err)
		}
		f.Close()
		_, err = Load(strings.NewReader(scenarioJSON(empty, "")))
		if err == nil || !strings.Contains(err.Error(), "empty trace") {
			t.Errorf("Load(empty trace) = %v, want 'empty trace' error", err)
		}
	})
	t.Run("relative path resolves against the JSON file", func(t *testing.T) {
		jsonPath := filepath.Join(dir, "sc.json")
		if err := os.WriteFile(jsonPath, []byte(scenarioJSON(filepath.Base(goodPath), "")), 0o644); err != nil {
			t.Fatal(err)
		}
		scs, err := LoadFile(jsonPath)
		if err != nil {
			t.Fatalf("LoadFile: %v", err)
		}
		if scs[0].Workload.Trace.Path != goodPath {
			t.Errorf("relative path resolved to %q, want %q", scs[0].Workload.Trace.Path, goodPath)
		}
	})
	t.Run("unknown trace field rejected", func(t *testing.T) {
		_, err := Load(strings.NewReader(scenarioJSON(goodPath, `, "speed": 2`)))
		if err == nil || !strings.Contains(err.Error(), "unknown field") {
			t.Errorf("Load(unknown field) = %v, want unknown-field error", err)
		}
	})
}

// TestTraceScenarioRuns is the end-to-end smoke: a loaded trace
// scenario runs, reports the recorded workload identity, and replays a
// nonzero stream. Deeper equivalence lives in the replay package's
// parity suite.
func TestTraceScenarioRuns(t *testing.T) {
	dir := t.TempDir()
	opt := experiments.Options{Duration: 10 * sim.Millisecond, Seed: 1, Parallelism: 1}
	spec := workload.Memcached(20000)
	path := writeTestTrace(t, dir, spec, opt.Seed, opt.Warmup(), opt.Duration)

	sc := traceScenario(path)
	res, err := sc.Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Points[0]
	if p.Workload != spec.Name {
		t.Errorf("point workload %q, want recorded %q", p.Workload, spec.Name)
	}
	if p.OfferedQPS != spec.MeanQPS() {
		t.Errorf("offered QPS %g, want recorded %g", p.OfferedQPS, spec.MeanQPS())
	}
	if p.Generated == 0 || p.Served == 0 {
		t.Errorf("trace scenario replayed nothing: generated %d served %d", p.Generated, p.Served)
	}
}
