package scenario

import (
	"errors"
	"strings"
	"testing"
)

// failWriter fails every write after the first n succeed — a stand-in
// for a full disk or closed pipe at an arbitrary point in the stream.
type failWriter struct {
	n   int
	err error
}

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, w.err
	}
	w.n--
	return len(p), nil
}

// TestWriteCSVPropagatesWriterErrors drives WriteCSV into a writer that
// fails at the header and at each data row: every failure point must
// surface the writer's error, never a silent short file.
func TestWriteCSVPropagatesWriterErrors(t *testing.T) {
	sc := Scenario{
		Name:     "errprop",
		Config:   "CPC1A",
		Workload: Workload{Service: "memcached", QPS: 10000},
		Sweep:    &Sweep{Axis: AxisQPS, Values: []float64{5000, 10000}},
	}
	res, err := sc.Run(quickOpt())
	if err != nil {
		t.Fatal(err)
	}

	// Count how many writes a clean run performs, then fail at every
	// prefix length.
	var ok strings.Builder
	if err := res.WriteCSV(&ok); err != nil {
		t.Fatal(err)
	}
	cw := &countingWriter{}
	if err := res.WriteCSV(cw); err != nil {
		t.Fatal(err)
	}
	total := cw.writes
	if total < 3 { // header + 2 sweep rows
		t.Fatalf("expected at least 3 writes, got %d", total)
	}
	sentinel := errors.New("disk full")
	for n := 0; n < total; n++ {
		if err := res.WriteCSV(&failWriter{n: n, err: sentinel}); !errors.Is(err, sentinel) {
			t.Errorf("failure after %d writes was swallowed: got %v", n, err)
		}
	}
}

type countingWriter struct{ writes int }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.writes++
	return len(p), nil
}

// TestWriteCSVPropagatesWriterErrorsRacks repeats the prefix-failure
// drill on a multi-rack fleet result, whose CSV adds the rack-zone
// table: the second header and every per-rack row are additional
// failure points that must propagate too.
func TestWriteCSVPropagatesWriterErrorsRacks(t *testing.T) {
	sc := rackScenario()
	sc.Sweep = &Sweep{Axis: AxisTorLatency, Values: []float64{0, 10}}
	sc.Cluster.TorLatencyUS = 0
	res, err := sc.Run(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	cw := &countingWriter{}
	if err := res.WriteCSV(cw); err != nil {
		t.Fatal(err)
	}
	// 2 headers + 2 aggregate rows + 2 points × 2 racks.
	if want := 8; cw.writes < want {
		t.Fatalf("expected at least %d writes, got %d", want, cw.writes)
	}
	sentinel := errors.New("disk full")
	for n := 0; n < cw.writes; n++ {
		if err := res.WriteCSV(&failWriter{n: n, err: sentinel}); !errors.Is(err, sentinel) {
			t.Errorf("failure after %d writes was swallowed: got %v", n, err)
		}
	}
}
