package scenario

import (
	"regexp"
	"strings"
	"testing"
)

// tieredScenario is the canonical two-tier shape the graph tests run: a
// memcached-driven cache tier in front of a mysql backend, wired by one
// lossy edge.
func tieredScenario() Scenario {
	return Scenario{
		Name:     "tiered",
		Config:   "CPC1A",
		Workload: Workload{Service: "memcached", QPS: 40000},
		Tiers: []Tier{
			{Name: "cache", Cluster: Cluster{Servers: 2, Policy: "power_aware", P99TargetUS: 300}},
			{Name: "db", Service: "mysql", Cluster: Cluster{Servers: 2, Policy: "round_robin"}},
		},
		Edges: []Edge{{From: "cache", To: "db", HitRatio: 0.8, TTLUS: 500, Fanout: 2}},
	}
}

// TestTiersSingleTierParity is the tentpole's defining contract at the
// scenario layer: a one-tier tiers scenario must produce byte-identical
// report and CSV output to the equivalent cluster scenario — the
// one-tier graph IS the cluster block.
func TestTiersSingleTierParity(t *testing.T) {
	cases := []struct {
		name    string
		cluster Cluster
		sweep   *Sweep
	}{
		{"power_aware", Cluster{Servers: 4, Policy: "power_aware", P99TargetUS: 300}, nil},
		{"racked drain", Cluster{
			Servers: 4, Policy: "rack_power_aware", P99TargetUS: 300,
			Racks: 2, TorLatencyUS: 5, DrainHoldUS: 1000, FeedbackEpochUS: 1000,
		}, nil},
		{"faults", Cluster{
			Servers: 4, Policy: "round_robin",
			Faults: &Faults{MTBFUS: 20000, MTTRUS: 2000, RequestTimeoutUS: 2000, MaxRetries: 2},
		}, nil},
		{"qps sweep", Cluster{Servers: 2, Policy: "least_loaded"},
			&Sweep{Axis: AxisQPS, Values: []float64{20000, 60000}}},
	}
	for _, c := range cases {
		clustered := Scenario{
			Name:     "parity-tiered",
			Config:   "CPC1A",
			Workload: Workload{Service: "memcached", QPS: 40000},
			Cluster:  &c.cluster,
			Sweep:    c.sweep,
		}
		tiered := clustered
		tiered.Cluster = nil
		tiered.Tiers = []Tier{{Name: "fleet", Cluster: c.cluster}}

		opt := quickOpt()
		cRep, cCSV := runArtifacts(t, clustered, opt)
		tRep, tCSV := runArtifacts(t, tiered, opt)
		if cRep != tRep {
			t.Errorf("%s: reports differ:\ncluster:\n%s\ntiers:\n%s", c.name, cRep, tRep)
		}
		if cCSV != tCSV {
			t.Errorf("%s: CSV differs:\ncluster:\n%s\ntiers:\n%s", c.name, cCSV, tCSV)
		}
	}
}

// TestTieredRunEndToEnd drives the two-tier scenario through Run and
// checks the full output surface: per-tier and per-edge breakdowns,
// the client view, cross-tier conservation, and the rendered tables.
func TestTieredRunEndToEnd(t *testing.T) {
	res, err := tieredScenario().Run(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 1 {
		t.Fatalf("want 1 point, got %d", len(res.Points))
	}
	p := res.Points[0]
	if len(p.Tiers) != 2 || len(p.Edges) != 1 || p.Client == nil {
		t.Fatalf("missing graph breakdowns: %d tiers, %d edges, client %v",
			len(p.Tiers), len(p.Edges), p.Client)
	}
	e := p.Edges[0]
	if e.From != "cache" || e.To != "db" {
		t.Errorf("edge names %s->%s, want cache->db", e.From, e.To)
	}
	// Conservation: every miss issues fanout backend requests, and the
	// backend generates exactly what the edge issued.
	if e.Issued != 2*e.Misses {
		t.Errorf("issued %d != fanout 2 x misses %d", e.Issued, e.Misses)
	}
	if got := p.Tiers[1].Fleet.Generated; got != e.Issued {
		t.Errorf("backend generated %d != edge issued %d", got, e.Issued)
	}
	if e.Hits != e.Lookups-e.Misses {
		t.Errorf("hits %d != lookups %d - misses %d", e.Hits, e.Lookups, e.Misses)
	}
	if p.Served != p.Client.Served || p.Served == 0 {
		t.Errorf("aggregate served %d should be the client view %d", p.Served, p.Client.Served)
	}
	if p.Generated != p.Tiers[0].Fleet.Generated {
		t.Errorf("aggregate generated %d should be the root tier's %d",
			p.Generated, p.Tiers[0].Fleet.Generated)
	}
	if p.TotalWatts <= p.Tiers[0].Fleet.TotalWatts {
		t.Errorf("aggregate watts %.1f should sum the tiers (root alone %.1f)",
			p.TotalWatts, p.Tiers[0].Fleet.TotalWatts)
	}

	rep := res.Report()
	for _, want := range []string{"2-tier graph", "per-tier", "edges [", "cache->db"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	var b strings.Builder
	if err := res.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"axis,axis_label,tier,served,generated",
		"axis,axis_label,edge_from,edge_to,hit_ratio",
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("CSV missing %q:\n%s", want, b.String())
		}
	}
}

// TestTieredSweepBitIdentical extends the determinism contract to graph
// sweeps: a hit-ratio sweep over a two-tier graph is bit-identical at
// any parallelism and across repeated runs (exercising the worker-pool
// GraphReuse reset path against fresh builds).
func TestTieredSweepBitIdentical(t *testing.T) {
	swept := func() Scenario {
		sc := tieredScenario()
		sc.Sweep = &Sweep{Axis: AxisHitRatio, Values: []float64{0.2, 0.5, 0.9}}
		return sc
	}
	serial, parallel := quickOpt(), quickOpt()
	serial.Parallelism = 1
	parallel.Parallelism = 8
	sRep, sCSV := runArtifacts(t, swept(), serial)
	pRep, pCSV := runArtifacts(t, swept(), parallel)
	if sRep != pRep || sCSV != pCSV {
		t.Error("tiered sweep artifacts depend on parallelism")
	}
	rRep, rCSV := runArtifacts(t, swept(), serial)
	if sRep != rRep || sCSV != rCSV {
		t.Error("repeated tiered runs with one seed differ")
	}
}

// TestTieredFanoutSweep pins the fan-out axis end to end: doubling the
// fan-out doubles what the edge issues into the backend.
func TestTieredFanoutSweep(t *testing.T) {
	sc := tieredScenario()
	sc.Edges[0].Fanout = 0
	sc.Sweep = &Sweep{Axis: AxisFanout, Values: []float64{1, 2}}
	res, err := sc.Run(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	e1, e2 := res.Points[0].Edges[0], res.Points[1].Edges[0]
	if e1.Fanout != 1 || e2.Fanout != 2 {
		t.Fatalf("fanouts %d, %d — sweep not applied", e1.Fanout, e2.Fanout)
	}
	if e1.Issued != e1.Misses || e2.Issued != 2*e2.Misses {
		t.Errorf("issued/misses: %d/%d at fanout 1, %d/%d at fanout 2",
			e1.Issued, e1.Misses, e2.Issued, e2.Misses)
	}
}

// tieredJSON is the valid two-tier file the located-error cases mutate;
// line numbers in the assertions below index into this literal.
const tieredJSON = `{
  "name": "tiered",
  "config": "CPC1A",
  "workload": {"service": "memcached", "qps": 40000},
  "tiers": [
    {"name": "cache", "servers": 2, "policy": "round_robin"},
    {"name": "db", "service": "mysql", "servers": 2, "policy": "round_robin"},
    {"name": "cold", "service": "mysql", "servers": 2, "policy": "round_robin"}
  ],
  "edges": [
    {"from": "cache", "to": "db", "hit_ratio": 0.8},
    {"from": "db", "to": "cold", "hit_ratio": 0.5}
  ]
}`

// TestTiersValidationLocated is the ISSUE's satellite contract: every
// rejected tiers/edges shape comes back with the line and column of the
// failing array element, not just a message.
func TestTiersValidationLocated(t *testing.T) {
	located := regexp.MustCompile(`line \d+, column \d+`)
	cases := []struct {
		name string
		mut  func(string) string
		want string
		line string
	}{
		{"edge to unknown tier",
			func(s string) string {
				return strings.Replace(s, `"to": "db", "hit_ratio": 0.8`, `"to": "store", "hit_ratio": 0.8`, 1)
			},
			`unknown tier "store"`, "line 11"},
		{"hit ratio outside [0,1]",
			func(s string) string { return strings.Replace(s, `"hit_ratio": 0.8`, `"hit_ratio": 1.2`, 1) },
			"outside [0, 1]", "line 11"},
		{"fan-out on a hit edge",
			func(s string) string {
				return strings.Replace(s, `"hit_ratio": 0.5`, `"hit_ratio": 1, "fanout": 3`, 1)
			},
			"never misses", "line 12"},
		{"cycle in graph",
			func(s string) string {
				return strings.Replace(s, `{"from": "db", "to": "cold", "hit_ratio": 0.5}`,
					`{"from": "db", "to": "cold", "hit_ratio": 0.5},
    {"from": "cold", "to": "db", "hit_ratio": 0.5}`, 1)
			},
			"closes a cycle", "line 12"},
		{"unreachable tier",
			func(s string) string {
				return strings.Replace(s, `,
    {"from": "db", "to": "cold", "hit_ratio": 0.5}`, "", 1)
			},
			"unreachable", "line 8"},
		{"root tier with service",
			func(s string) string {
				return strings.Replace(s, `{"name": "cache",`, `{"name": "cache", "service": "memcached",`, 1)
			},
			"drop its service field", "line 6"},
		{"backend tier without service",
			func(s string) string { return strings.Replace(s, `"db", "service": "mysql",`, `"db",`, 1) },
			"needs a service", "line 7"},
	}
	for _, c := range cases {
		_, err := Load(strings.NewReader(c.mut(tieredJSON)))
		if err == nil {
			t.Errorf("%s: loaded", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q missing %q", c.name, err, c.want)
		}
		if !located.MatchString(err.Error()) {
			t.Errorf("%s: error carries no line/column: %q", c.name, err)
		} else if !strings.Contains(err.Error(), c.line) {
			t.Errorf("%s: error %q locates the wrong element (want %s)", c.name, err, c.line)
		}
	}

	// The unmutated file is valid — the cases above fail for the reason
	// they claim, not a broken fixture.
	if _, err := Load(strings.NewReader(tieredJSON)); err != nil {
		t.Fatalf("fixture does not load: %v", err)
	}
}

// TestTiersValidation covers the programmatic rejection surface that
// needs no source location: block-level contradictions and sweep-axis
// interactions.
func TestTiersValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Scenario)
		want string
	}{
		{"tiers and cluster", func(s *Scenario) {
			s.Cluster = &Cluster{Servers: 1, Policy: "round_robin"}
		}, "mutually exclusive"},
		{"edges without tiers", func(s *Scenario) { s.Tiers = nil }, "edges need a tiers block"},
		{"unnamed tier", func(s *Scenario) { s.Tiers[1].Name = "" }, "has no name"},
		{"duplicate tier name", func(s *Scenario) { s.Tiers[1].Name = "cache" }, "duplicates"},
		{"unknown backend service", func(s *Scenario) { s.Tiers[1].Service = "redis" }, "unknown service"},
		{"sysbench tiers", func(s *Scenario) {
			s.Workload = Workload{Service: "sysbench", Threads: 4}
			s.Edges[0].HitRatio = 0.8
		}, "open-loop"},
		{"tier cluster field", func(s *Scenario) { s.Tiers[0].Servers = 0 }, "tiers[0].servers"},
		{"edge into the root", func(s *Scenario) {
			s.Edges = append(s.Edges, Edge{From: "db", To: "cache", HitRatio: 0.5})
		}, "client-facing"},
		{"self edge", func(s *Scenario) {
			s.Edges = append(s.Edges, Edge{From: "db", To: "db", HitRatio: 0.5})
		}, "onto itself"},
		{"negative ttl", func(s *Scenario) { s.Edges[0].TTLUS = -1 }, "negative edges[0].ttl_us"},
		{"negative fanout", func(s *Scenario) { s.Edges[0].Fanout = -1 }, "negative edges[0].fanout"},
		{"edge axis without edges", func(s *Scenario) {
			s.Tiers, s.Edges = s.Tiers[:1], nil
			s.Sweep = &Sweep{Axis: AxisHitRatio, Values: []float64{0.5}}
		}, "needs a tiers block with edges"},
		{"hit_ratio value above 1", func(s *Scenario) {
			s.Sweep = &Sweep{Axis: AxisHitRatio, Values: []float64{0.5, 1.5}}
		}, "outside [0, 1]"},
		{"fractional fanout value", func(s *Scenario) {
			s.Sweep = &Sweep{Axis: AxisFanout, Values: []float64{1.5}}
		}, "not an integer"},
		{"fanout value below 1", func(s *Scenario) {
			s.Sweep = &Sweep{Axis: AxisFanout, Values: []float64{0}}
		}, "below 1"},
		{"fanout axis on a hit edge", func(s *Scenario) {
			s.Edges[0].HitRatio, s.Edges[0].TTLUS, s.Edges[0].Fanout = 1, 0, 0
			s.Sweep = &Sweep{Axis: AxisFanout, Values: []float64{1, 2}}
		}, "inert"},
		{"hit_ratio value saturating a fanout edge", func(s *Scenario) {
			s.Edges[0].TTLUS = 0
			s.Sweep = &Sweep{Axis: AxisHitRatio, Values: []float64{0.5, 1}}
		}, "never miss"},
		{"ttl value 0 on a hit fanout edge", func(s *Scenario) {
			s.Edges[0].HitRatio = 1
			s.Sweep = &Sweep{Axis: AxisTTL, Values: []float64{0, 500}}
		}, "never miss"},
	}
	for _, c := range cases {
		sc := tieredScenario()
		c.mut(&sc)
		err := sc.Validate()
		if err == nil {
			t.Errorf("%s: validated", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q missing %q", c.name, err, c.want)
		}
	}

	// The base shape is valid, so every rejection above comes from its
	// mutation.
	sc := tieredScenario()
	if err := sc.Validate(); err != nil {
		t.Fatalf("base tiered scenario invalid: %v", err)
	}
}
