package scenario

import (
	"strings"
	"testing"
)

// TestRackFlatParity is the tentpole acceptance criterion: a 1-rack,
// zero-ToR-latency fleet must render byte-identical report and CSV
// output to the same fleet with no rack fields at all (the PR 3 flat
// fleet), for every pre-rack policy — the rack layer is a strict
// generalization, not a rewrite. The two runs take different assembly
// paths: "racks": 1 builds an explicit Flat(N) cluster.Topology, the
// rackless scenario keeps the zero value, so this locks the Topology
// code path against the pre-topology wiring at the byte level.
func TestRackFlatParity(t *testing.T) {
	for _, policy := range []string{"round_robin", "least_loaded", "power_aware"} {
		flat := Scenario{
			Name:     "rack-parity",
			Config:   "CPC1A",
			Workload: Workload{Service: "memcached", QPS: 40000},
			Cluster:  &Cluster{Servers: 4, Policy: policy, P99TargetUS: 300},
		}
		racked := flat
		c := *flat.Cluster
		c.Racks = 1
		c.TorLatencyUS = 0
		racked.Cluster = &c

		opt := quickOpt()
		fRep, fCSV := runArtifacts(t, flat, opt)
		rRep, rCSV := runArtifacts(t, racked, opt)
		if fRep != rRep {
			t.Errorf("%s: 1-rack fleet report diverges from flat fleet:\nflat:\n%s\nracked:\n%s",
				policy, fRep, rRep)
		}
		if fCSV != rCSV {
			t.Errorf("%s: 1-rack fleet CSV diverges from flat fleet:\nflat:\n%s\nracked:\n%s",
				policy, fCSV, rCSV)
		}
	}
}

// TestRackFlatParitySweptParallel extends the parity contract across a
// sweep and across parallelism, in one shot: a swept 1-rack fleet at
// parallelism 8 must match the rackless fleet run serially.
func TestRackFlatParitySweptParallel(t *testing.T) {
	flat := Scenario{
		Name:     "rack-parity-swept",
		Config:   "CPC1A",
		Workload: Workload{Service: "memcached-bursty", QPS: 30000, Burstiness: 4},
		Cluster:  &Cluster{Servers: 2, Policy: "least_loaded"},
		Sweep:    &Sweep{Axis: AxisQPS, Values: []float64{20000, 40000}},
	}
	racked := flat
	c := *flat.Cluster
	c.Racks = 1
	racked.Cluster = &c

	serial, parallel := quickOpt(), quickOpt()
	serial.Parallelism = 1
	parallel.Parallelism = 8
	fRep, fCSV := runArtifacts(t, flat, serial)
	rRep, rCSV := runArtifacts(t, racked, parallel)
	if fRep != rRep || fCSV != rCSV {
		t.Errorf("swept/parallel rack parity broken:\nflat:\n%s\nracked:\n%s", fRep, rRep)
	}
}

func rackScenario() Scenario {
	return Scenario{
		Name:        "rack-duel",
		Description: "2x2 fleet, rack_affinity",
		Config:      "CPC1A",
		Workload:    Workload{Service: "memcached", QPS: 40000},
		Cluster:     &Cluster{Servers: 4, Racks: 2, TorLatencyUS: 5, Policy: "rack_affinity"},
	}
}

// TestRackReportAndCSV exercises the multi-rack output surface: the
// topology in the header, the per-rack zone table, and the second CSV
// table with one row per rack.
func TestRackReportAndCSV(t *testing.T) {
	res, err := rackScenario().Run(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	p := res.Points[0]
	if len(p.Racks) != 2 {
		t.Fatalf("want 2 rack zones, got %d", len(p.Racks))
	}
	if !p.Racks[0].Local || p.Racks[1].Local {
		t.Errorf("rack locality flags wrong: %+v", p.Racks)
	}
	rep := res.Report()
	for _, want := range []string{"2x2 fleet (rack_affinity)", "per-rack", "zone W", "per-server"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	var csv strings.Builder
	if err := res.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	got := csv.String()
	if !strings.Contains(got, "rack,local,servers,active_servers") {
		t.Errorf("CSV missing rack table header:\n%s", got)
	}
	if !strings.Contains(got, ",0,true,2,") || !strings.Contains(got, ",1,false,2,") {
		t.Errorf("CSV missing per-rack rows:\n%s", got)
	}
}

// TestRacksSweep drives the topology from the sweep axis: one scenario,
// three rack shapes of the same 8-server fleet.
func TestRacksSweep(t *testing.T) {
	sc := Scenario{
		Name:     "rack-shapes",
		Config:   "CPC1A",
		Workload: Workload{Service: "memcached", QPS: 60000},
		Cluster:  &Cluster{Servers: 8, Policy: "rack_affinity", TorLatencyUS: 5},
		Sweep:    &Sweep{Axis: AxisRacks, Values: []float64{1, 2, 4}},
	}
	res, err := sc.Run(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("want 3 points, got %d", len(res.Points))
	}
	for i, wantRacks := range []int{0, 2, 4} { // flat points carry no rack zones
		if got := len(res.Points[i].Racks); got != wantRacks {
			t.Errorf("point %d: %d rack zones, want %d", i, got, wantRacks)
		}
	}
	if !strings.Contains(res.Report(), "sweeping racks") {
		t.Errorf("report missing axis annotation:\n%s", res.Report())
	}
}

// TestTorLatencySweep drives the ToR hop from the sweep axis; a deeper
// hop must not change which rack absorbs a light packed load, but must
// raise nothing on the aggregate for a zero-remote-traffic fleet.
func TestTorLatencySweep(t *testing.T) {
	sc := Scenario{
		Name:     "tor-sweep",
		Config:   "CPC1A",
		Workload: Workload{Service: "memcached", QPS: 200000},
		Cluster:  &Cluster{Servers: 4, Racks: 2, Policy: "round_robin"},
		Sweep:    &Sweep{Axis: AxisTorLatency, Values: []float64{0, 50, 200}},
	}
	res, err := sc.Run(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("want 3 points, got %d", len(res.Points))
	}
	// round_robin sends half the traffic across the ToR hop, so the
	// fleet mean latency must rise monotonically with the hop.
	for i := 1; i < 3; i++ {
		if res.Points[i].MeanLatency <= res.Points[i-1].MeanLatency {
			t.Errorf("mean latency not increasing with ToR hop: %v",
				[]float64{res.Points[0].MeanLatency, res.Points[1].MeanLatency, res.Points[2].MeanLatency})
		}
	}
}

// TestRackSerialParallelBitIdentical extends the determinism contract to
// rack sweeps and rack policies.
func TestRackSerialParallelBitIdentical(t *testing.T) {
	sc := Scenario{
		Name:     "rack-det",
		Config:   "CPC1A",
		Workload: Workload{Service: "memcached-bursty", QPS: 50000, Burstiness: 4},
		Cluster:  &Cluster{Servers: 8, Policy: "rack_power_aware", P99TargetUS: 300, TorLatencyUS: 10},
		Sweep:    &Sweep{Axis: AxisRacks, Values: []float64{2, 4}},
	}
	serial, parallel := quickOpt(), quickOpt()
	serial.Parallelism = 1
	parallel.Parallelism = 8
	sRep, sCSV := runArtifacts(t, sc, serial)
	pRep, pCSV := runArtifacts(t, sc, parallel)
	if sRep != pRep || sCSV != pCSV {
		t.Error("rack sweep artifacts depend on parallelism")
	}
}

func TestRackValidation(t *testing.T) {
	base := func() Scenario { return rackScenario() }
	cases := []struct {
		name string
		mut  func(*Scenario)
	}{
		{"negative racks", func(s *Scenario) { s.Cluster.Racks = -1 }},
		{"negative tor", func(s *Scenario) { s.Cluster.TorLatencyUS = -1 }},
		{"tor on a flat fleet", func(s *Scenario) { s.Cluster.Racks = 1 }},
		{"rack_power_aware without target", func(s *Scenario) { s.Cluster.Policy = "rack_power_aware" }},
		{"tor sweep without racks", func(s *Scenario) {
			s.Cluster.Racks = 0
			s.Cluster.TorLatencyUS = 0
			s.Sweep = &Sweep{Axis: AxisTorLatency, Values: []float64{0, 10}}
		}},
		{"fractional racks value", func(s *Scenario) {
			s.Sweep = &Sweep{Axis: AxisRacks, Values: []float64{1.5}}
		}},
		{"racks value below 1", func(s *Scenario) {
			s.Sweep = &Sweep{Axis: AxisRacks, Values: []float64{0}}
		}},
		{"racks axis without cluster", func(s *Scenario) {
			s.Cluster = nil
			s.Sweep = &Sweep{Axis: AxisRacks, Values: []float64{1, 2}}
		}},
	}
	for _, c := range cases {
		sc := base()
		c.mut(&sc)
		if err := sc.Validate(); err == nil {
			t.Errorf("%s: validated", c.name)
		}
	}

	// Swept rack_power_aware needs the target too.
	sc := base()
	sc.Cluster.Policy = ""
	sc.Sweep = &Sweep{Axis: AxisPolicy, Policies: []string{"round_robin", "rack_power_aware"}}
	if err := sc.Validate(); err == nil {
		t.Error("policy sweep including rack_power_aware validated without a target")
	}

	// Indivisible topology is a per-point error: the sweep may drive
	// either side of the division.
	sc = base()
	sc.Cluster.Racks = 3
	if err := sc.Validate(); err != nil {
		t.Errorf("divisibility check should wait for Run: %v", err)
	}
	if _, err := sc.Run(quickOpt()); err == nil ||
		!strings.Contains(err.Error(), "does not divide") {
		t.Errorf("Run should reject 3 racks over 4 servers, got %v", err)
	}
}
