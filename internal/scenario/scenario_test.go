package scenario

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"agilepkgc/internal/experiments"
	"agilepkgc/internal/power"
	"agilepkgc/internal/server"
	"agilepkgc/internal/sim"
	"agilepkgc/internal/soc"
	"agilepkgc/internal/workload"
)

func quickOpt() experiments.Options {
	return experiments.Options{Duration: 50 * sim.Millisecond, Seed: 1}
}

func ptr[T any](v T) *T { return &v }

func TestJSONRoundTrip(t *testing.T) {
	tick := 250.0
	kern := 2.0
	in := Scenario{
		Name:        "round-trip",
		Description: "desc",
		Config:      "CPC1A",
		DurationMS:  75,
		Seed:        7,
		Workload:    Workload{Service: "memcached", QPS: 12345},
		Server:      Overrides{TimerTickHz: &tick, TickKernelUS: &kern},
		Sweep:       &Sweep{Axis: AxisTickHz, Values: []float64{0, 100, 250}},
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Load(strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !reflect.DeepEqual(got[0], in) {
		t.Fatalf("round trip changed the scenario:\n in: %+v\nout: %+v", in, got)
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	cases := []string{
		`{"name":"x","config":"CPC1A","workload":{"service":"memcached","qps":1},"sweeep":{"axis":"qps","values":[1]}}`,
		`{"name":"x","config":"CPC1A","workload":{"service":"memcached","qps":1,"rate":5}}`,
		`{"name":"x","config":"CPC1A","workload":{"service":"memcached","qps":1},"server":{"tick_khz":1}}`,
	}
	for _, c := range cases {
		if _, err := Load(strings.NewReader(c)); err == nil {
			t.Errorf("unknown field accepted: %s", c)
		}
	}
}

func TestLoadRejectsTrailingData(t *testing.T) {
	// Two concatenated objects (not a JSON array): silently dropping the
	// second scenario would be a data-loss bug.
	src := `{"name":"a","config":"CPC1A","workload":{"service":"memcached","qps":1}}
	        {"name":"b","config":"CPC1A","workload":{"service":"memcached","qps":2}}`
	if _, err := Load(strings.NewReader(src)); err == nil {
		t.Error("trailing JSON accepted")
	}
}

func TestLoadArrayForm(t *testing.T) {
	src := `[
	  {"name":"a","config":"Cshallow","workload":{"service":"memcached","qps":1000}},
	  {"name":"b","config":"Cdeep","workload":{"service":"kafka","load":0.08}}
	]`
	got, err := Load(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "a" || got[1].Name != "b" {
		t.Fatalf("array form parsed wrong: %+v", got)
	}
}

func TestValidate(t *testing.T) {
	ok := Scenario{Name: "ok", Config: "CPC1A", Workload: Workload{Service: "memcached", QPS: 1000}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
	bad := []Scenario{
		{Config: "CPC1A", Workload: Workload{Service: "memcached", QPS: 1}},    // no name
		{Name: "x", Config: "Cwhat", Workload: Workload{Service: "memcached"}}, // bad config
		{Name: "x", Config: "CPC1A", Workload: Workload{Service: "postgres"}},  // bad service
		{Name: "x", Config: "CPC1A", Workload: Workload{Service: "memcached"}, Sweep: &Sweep{Axis: "zps", Values: []float64{1}}},
		{Name: "x", Config: "CPC1A", Workload: Workload{Service: "memcached"}, Sweep: &Sweep{Axis: AxisQPS}},
		// Axes the service ignores would yield N identical points.
		{Name: "x", Config: "CPC1A", Workload: Workload{Service: "memcached", QPS: 1}, Sweep: &Sweep{Axis: AxisLoad, Values: []float64{0.1, 0.2}}},
		{Name: "x", Config: "CPC1A", Workload: Workload{Service: "mysql", Load: 0.1}, Sweep: &Sweep{Axis: AxisQPS, Values: []float64{1000}}},
		{Name: "x", Config: "CPC1A", Workload: Workload{Service: "sysbench", Threads: 4}, Sweep: &Sweep{Axis: AxisBurstiness, Values: []float64{2}}},
		// Negative values would panic the scheduler or corrupt histograms.
		{Name: "x", Config: "CPC1A", Workload: Workload{Service: "memcached", QPS: 1}, Sweep: &Sweep{Axis: AxisBatchEpochUS, Values: []float64{-20}}},
		{Name: "x", Config: "CPC1A", Workload: Workload{Service: "memcached", QPS: 1}, Server: Overrides{NetworkLatencyUS: ptr(-5.0)}},
		// Fractional thread counts truncate into duplicate points.
		{Name: "x", Config: "CPC1A", Workload: Workload{Service: "sysbench"}, Sweep: &Sweep{Axis: AxisThreads, Values: []float64{4.2, 4.7}}},
	}
	for i, sc := range bad {
		if err := sc.Validate(); err == nil {
			t.Errorf("bad scenario %d accepted: %+v", i, sc)
		}
	}
}

func TestRunRejectsBadPoints(t *testing.T) {
	// Rate never supplied: neither the workload nor the sweep sets QPS.
	sc := Scenario{Name: "norate", Config: "CPC1A", Workload: Workload{Service: "memcached"}}
	if _, err := sc.Run(quickOpt()); err == nil {
		t.Error("memcached without qps/util accepted")
	}
	// Ticks enabled without a tick cost.
	hz := 250.0
	sc = Scenario{Name: "ticks", Config: "CPC1A",
		Workload: Workload{Service: "memcached", QPS: 1000},
		Server:   Overrides{TimerTickHz: &hz}}
	if _, err := sc.Run(quickOpt()); err == nil {
		t.Error("timer_tick_hz without tick_kernel_us accepted")
	}
	// The same scenario is fine once the sweep supplies the rate.
	sc = Scenario{Name: "sweptrate", Config: "CPC1A",
		Workload: Workload{Service: "memcached"},
		Sweep:    &Sweep{Axis: AxisQPS, Values: []float64{1000, 2000}}}
	if _, err := sc.Run(quickOpt()); err != nil {
		t.Errorf("sweep-supplied qps rejected: %v", err)
	}
}

// TestScenarioMatchesHandWiredRun is the bit-for-bit contract: a
// scenario with no overrides must reproduce exactly what the canonical
// hand-wired (runPoint-style) assembly measures — same warmup, same
// window, same seed, same event sequence.
func TestScenarioMatchesHandWiredRun(t *testing.T) {
	opt := quickOpt()
	const qps = 20000

	// Hand-wired: the sequence internal/experiments.runPoint uses.
	sys := soc.New(soc.DefaultConfig(soc.Cshallow))
	scfg := server.DefaultConfig()
	scfg.Seed = opt.Seed
	srv := server.New(sys, scfg, workload.Memcached(qps))
	warm := opt.Duration / 10
	if warm > 50*sim.Millisecond {
		warm = 50 * sim.Millisecond
	}
	srv.Run(warm)
	snap := sys.Meter.Snapshot()
	srv.Run(opt.Duration)
	wantMean := srv.Latencies().Mean()
	wantP99 := srv.Latencies().Quantile(0.99)
	wantServed := srv.Served()
	wantSoC := snap.AveragePower(power.Package)
	wantTotal := snap.AverageTotal()

	sc := Scenario{Name: "parity", Config: "Cshallow",
		Workload: Workload{Service: "memcached", QPS: qps}}
	res, err := sc.Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 1 {
		t.Fatalf("points = %d, want 1", len(res.Points))
	}
	p := res.Points[0]
	if p.MeanLatency != wantMean || p.P99Latency != wantP99 {
		t.Errorf("latency mismatch: scenario (%v, %v) vs hand-wired (%v, %v)",
			p.MeanLatency, p.P99Latency, wantMean, wantP99)
	}
	if p.Served != wantServed {
		t.Errorf("served %d vs hand-wired %d", p.Served, wantServed)
	}
	if p.SoCWatts != wantSoC || p.TotalWatts != wantTotal {
		t.Errorf("power mismatch: scenario (%v, %v) vs hand-wired (%v, %v)",
			p.SoCWatts, p.TotalWatts, wantSoC, wantTotal)
	}
}

// TestScenarioSerialParallelBitIdentical extends the sweep determinism
// contract to the declarative layer.
func TestScenarioSerialParallelBitIdentical(t *testing.T) {
	sc := Scenario{Name: "det", Config: "CPC1A",
		Workload: Workload{Service: "memcached"},
		Sweep:    &Sweep{Axis: AxisQPS, Values: []float64{4000, 20000, 50000}}}
	serial, parallel := quickOpt(), quickOpt()
	parallel.Parallelism = 4
	a, err := sc.Run(serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sc.Run(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("serial and parallel scenario runs differ")
	}
}

// TestSweepAxesApply spot-checks that each server-side axis actually
// moves the knob it names.
func TestSweepAxesApply(t *testing.T) {
	opt := quickOpt()
	sc := Scenario{Name: "epochs", Config: "CPC1A",
		Workload: Workload{Service: "memcached", QPS: 50000},
		Sweep:    &Sweep{Axis: AxisBatchEpochUS, Values: []float64{0, 100}}}
	res, err := sc.Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	off, on := res.Points[0], res.Points[1]
	if on.MeanLatency <= off.MeanLatency {
		t.Errorf("100us batching should raise mean latency: %v vs %v", on.MeanLatency, off.MeanLatency)
	}
	if on.AllIdle <= off.AllIdle {
		t.Errorf("batching should raise all-idle time: %v vs %v", on.AllIdle, off.AllIdle)
	}

	sc = Scenario{Name: "sysbench", Config: "CPC1A",
		Workload: Workload{Service: "sysbench", ThinkMS: 2},
		Sweep:    &Sweep{Axis: AxisThreads, Values: []float64{4, 64}}}
	res, err = sc.Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Points[1].Served <= res.Points[0].Served {
		t.Errorf("64 threads should serve more than 4: %d vs %d",
			res.Points[1].Served, res.Points[0].Served)
	}
	lo, hi := res.Points[0].PC1AResidency, res.Points[1].PC1AResidency
	if lo == nil || hi == nil {
		t.Fatal("CPC1A points should carry PC1A residency")
	}
	if *hi >= *lo {
		t.Errorf("more concurrency should erode PC1A: %v vs %v", *hi, *lo)
	}
}

// TestResultArtifacts checks the uniform output surface: report, CSV and
// JSON.
func TestResultArtifacts(t *testing.T) {
	sc := Scenario{Name: "artifacts", Config: "CPC1A",
		Workload: Workload{Service: "memcached", QPS: 10000}}
	res, err := sc.Run(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	var r experiments.Result = res
	if !strings.Contains(r.Report(), "artifacts") {
		t.Error("report missing scenario name")
	}
	var sb strings.Builder
	var cw experiments.CSVWriter = res
	if err := cw.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "axis,axis_label,workload") {
		t.Errorf("csv shape wrong: %q", sb.String())
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Scenario.Name != "artifacts" || len(back.Points) != 1 {
		t.Errorf("JSON round-trip lost data: %+v", back)
	}
	if back.Points[0].PC1AResidency == nil {
		t.Error("CPC1A point lost its PC1A residency in JSON")
	}

	// On a config without an APMU the PC1A fields must be absent, not 0.
	shallow := Scenario{Name: "no-apmu", Config: "Cshallow",
		Workload: Workload{Service: "memcached", QPS: 10000}}
	sres, err := shallow.Run(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if sres.Points[0].PC1AResidency != nil || sres.Points[0].PC1AEntries != nil {
		t.Error("Cshallow point should have nil PC1A fields")
	}
	data, err = json.Marshal(sres)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "pc1a") {
		t.Errorf("Cshallow JSON should omit pc1a keys: %s", data)
	}
}
