package scenario

import (
	"strings"
	"testing"

	"agilepkgc/internal/experiments"
)

// runArtifacts renders the full output surface of one scenario run so
// bit-identity tests can compare everything at once.
func runArtifacts(t *testing.T, sc Scenario, opt experiments.Options) (report, csv string) {
	t.Helper()
	res, err := sc.Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := res.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	return res.Report(), b.String()
}

// TestClusterSingleServerParity is the acceptance criterion that pins
// the cluster layer as a strict generalization of the single machine: a
// 1-server round_robin fleet must produce byte-identical report and CSV
// output to the equivalent single-server scenario — same name, same
// workload, same config, the only difference being the cluster block.
func TestClusterSingleServerParity(t *testing.T) {
	single := Scenario{
		Name:     "parity",
		Config:   "CPC1A",
		Workload: Workload{Service: "memcached", QPS: 20000},
	}
	fleet := single
	fleet.Cluster = &Cluster{Servers: 1, Policy: "round_robin"}

	opt := quickOpt()
	sRep, sCSV := runArtifacts(t, single, opt)
	fRep, fCSV := runArtifacts(t, fleet, opt)
	if sRep != fRep {
		t.Errorf("reports differ:\nsingle:\n%s\nfleet:\n%s", sRep, fRep)
	}
	if sCSV != fCSV {
		t.Errorf("CSV differs:\nsingle:\n%s\nfleet:\n%s", sCSV, fCSV)
	}
}

// TestClusterParityWithOverridesAndSweep extends the parity contract to
// a swept, overridden scenario: timer ticks armed, a QPS sweep — every
// feature of the single-machine path must survive the fleet wrapping
// unchanged.
func TestClusterParityWithOverridesAndSweep(t *testing.T) {
	tick := 250.0
	tickK := 2.0
	single := Scenario{
		Name:     "parity-swept",
		Config:   "CPC1A",
		Workload: Workload{Service: "memcached-bursty", QPS: 10000, Burstiness: 4},
		Server:   Overrides{TimerTickHz: &tick, TickKernelUS: &tickK},
		Sweep:    &Sweep{Axis: AxisQPS, Values: []float64{5000, 20000}},
	}
	fleet := single
	fleet.Cluster = &Cluster{Servers: 1, Policy: "round_robin"}

	opt := quickOpt()
	sRep, sCSV := runArtifacts(t, single, opt)
	fRep, fCSV := runArtifacts(t, fleet, opt)
	if sRep != fRep || sCSV != fCSV {
		t.Errorf("swept parity broken:\nsingle report:\n%s\nfleet report:\n%s", sRep, fRep)
	}
}

func clusterSweepScenario() Scenario {
	return Scenario{
		Name:     "fleet-scaling",
		Config:   "CPC1A",
		Workload: Workload{Service: "memcached", QPS: 40000},
		Cluster:  &Cluster{Policy: "power_aware", P99TargetUS: 300},
		Sweep:    &Sweep{Axis: AxisServers, Values: []float64{1, 2, 4}},
	}
}

// TestClusterSerialParallelBitIdentical extends the PR 1 determinism
// contract to fleets: a servers sweep fans out through the same worker
// pool as every other sweep, and the artifacts must not depend on the
// parallelism setting.
func TestClusterSerialParallelBitIdentical(t *testing.T) {
	serial, parallel := quickOpt(), quickOpt()
	serial.Parallelism = 1
	parallel.Parallelism = 8
	sRep, sCSV := runArtifacts(t, clusterSweepScenario(), serial)
	pRep, pCSV := runArtifacts(t, clusterSweepScenario(), parallel)
	if sRep != pRep || sCSV != pCSV {
		t.Error("fleet sweep artifacts depend on parallelism")
	}
}

// TestClusterRepeatedSeedIdentical: same seed, same fleet trace.
func TestClusterRepeatedSeedIdentical(t *testing.T) {
	aRep, aCSV := runArtifacts(t, clusterSweepScenario(), quickOpt())
	bRep, bCSV := runArtifacts(t, clusterSweepScenario(), quickOpt())
	if aRep != bRep || aCSV != bCSV {
		t.Error("repeated fleet runs with one seed differ")
	}
}

// TestClusterPolicySweep exercises the string-valued axis end to end:
// three policies, labels in the report and CSV, per-server breakdowns
// for the multi-server points.
func TestClusterPolicySweep(t *testing.T) {
	sc := Scenario{
		Name:     "policy-duel",
		Config:   "CPC1A",
		Workload: Workload{Service: "memcached", QPS: 40000},
		Cluster:  &Cluster{Servers: 4, P99TargetUS: 300},
		Sweep:    &Sweep{Axis: AxisPolicy, Policies: []string{"round_robin", "least_loaded", "power_aware"}},
	}
	res, err := sc.Run(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("want 3 policy points, got %d", len(res.Points))
	}
	for i, want := range []string{"round_robin", "least_loaded", "power_aware"} {
		p := res.Points[i]
		if p.AxisLabel != want || p.Axis != float64(i) {
			t.Errorf("point %d: axis %g label %q, want %d %q", i, p.Axis, p.AxisLabel, i, want)
		}
		if len(p.Servers) != 4 {
			t.Errorf("point %d: missing per-server breakdown", i)
		}
	}
	rep := res.Report()
	for _, want := range []string{"power_aware", "per-server", "4-server fleet"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}

	// The physics the sweep exists to show: packing beats spreading on
	// fleet power at light load.
	rr, pa := res.Points[0], res.Points[2]
	if pa.TotalWatts >= rr.TotalWatts {
		t.Errorf("power_aware (%.1fW) should beat round_robin (%.1fW) on fleet watts",
			pa.TotalWatts, rr.TotalWatts)
	}
}

// TestClusterPerServerOverrides routes a heterogeneous fleet: server 1
// gets a noisy ticky kernel, and its PC1A residency must suffer for it.
func TestClusterPerServerOverrides(t *testing.T) {
	tick := 1000.0
	tickK := 5.0
	sc := Scenario{
		Name:     "het-fleet",
		Config:   "CPC1A",
		Workload: Workload{Service: "memcached", QPS: 20000},
		Cluster: &Cluster{
			Servers: 2, Policy: "round_robin",
			ServerOverrides: map[string]Overrides{
				"1": {TimerTickHz: &tick, TickKernelUS: &tickK},
			},
		},
	}
	res, err := sc.Run(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	servers := res.Points[0].Servers
	if len(servers) != 2 {
		t.Fatalf("want 2 per-server stats, got %d", len(servers))
	}
	quiet, noisy := servers[0], servers[1]
	if quiet.PC1AResidency == nil || noisy.PC1AResidency == nil {
		t.Fatal("missing PC1A stats")
	}
	if *noisy.PC1AResidency >= *quiet.PC1AResidency {
		t.Errorf("ticky server should lose PC1A residency: quiet %.3f, noisy %.3f",
			*quiet.PC1AResidency, *noisy.PC1AResidency)
	}
}

func TestClusterValidation(t *testing.T) {
	base := func() Scenario {
		return Scenario{
			Name:     "v",
			Config:   "CPC1A",
			Workload: Workload{Service: "memcached", QPS: 1000},
			Cluster:  &Cluster{Servers: 2, Policy: "round_robin"},
		}
	}
	cases := []struct {
		name string
		mut  func(*Scenario)
	}{
		{"zero servers", func(s *Scenario) { s.Cluster.Servers = 0 }},
		{"bad policy", func(s *Scenario) { s.Cluster.Policy = "weighted" }},
		{"power_aware without target", func(s *Scenario) { s.Cluster.Policy = "power_aware" }},
		{"negative target", func(s *Scenario) { s.Cluster.P99TargetUS = -1 }},
		{"sysbench fleet", func(s *Scenario) {
			s.Workload = Workload{Service: "sysbench", Threads: 4}
		}},
		{"bad override key", func(s *Scenario) {
			s.Cluster.ServerOverrides = map[string]Overrides{"x": {}}
		}},
		{"negative override", func(s *Scenario) {
			bad := -1.0
			s.Cluster.ServerOverrides = map[string]Overrides{"0": {KernelOverheadUS: &bad}}
		}},
		{"servers axis without cluster", func(s *Scenario) {
			s.Cluster = nil
			s.Sweep = &Sweep{Axis: AxisServers, Values: []float64{1, 2}}
		}},
		{"policy axis with values", func(s *Scenario) {
			s.Cluster.Policy = ""
			s.Sweep = &Sweep{Axis: AxisPolicy, Values: []float64{1}, Policies: []string{"round_robin"}}
		}},
		{"policy axis with fixed policy", func(s *Scenario) {
			s.Sweep = &Sweep{Axis: AxisPolicy, Policies: []string{"round_robin"}}
		}},
		{"policies on numeric axis", func(s *Scenario) {
			s.Sweep = &Sweep{Axis: AxisQPS, Values: []float64{1000}, Policies: []string{"round_robin"}}
		}},
		{"unknown swept policy", func(s *Scenario) {
			s.Cluster.Policy = ""
			s.Sweep = &Sweep{Axis: AxisPolicy, Policies: []string{"weighted"}}
		}},
		{"fractional servers value", func(s *Scenario) {
			s.Sweep = &Sweep{Axis: AxisServers, Values: []float64{1.5}}
		}},
		{"servers value below 1", func(s *Scenario) {
			s.Sweep = &Sweep{Axis: AxisServers, Values: []float64{0}}
		}},
	}
	for _, c := range cases {
		sc := base()
		c.mut(&sc)
		if err := sc.Validate(); err == nil {
			t.Errorf("%s: validated", c.name)
		}
	}

	// Out-of-range override indices are a per-point error (the fleet
	// size may come from the sweep), caught by Run.
	sc := base()
	sc.Cluster.ServerOverrides = map[string]Overrides{"5": {}}
	if err := sc.Validate(); err != nil {
		t.Errorf("index-range check should wait for Run: %v", err)
	}
	if _, err := sc.Run(quickOpt()); err == nil ||
		!strings.Contains(err.Error(), "only 2 servers") {
		t.Errorf("Run should reject out-of-range override index, got %v", err)
	}
}

// TestOverridesValidateReportsFirstDeclaredField locks the validation
// error's determinism: with several negative knobs, the one reported
// follows Overrides' declared field order on every run (the loop
// iterates a slice, not a map — the apcvet determinism pass rejects
// error text born from map iteration).
func TestOverridesValidateReportsFirstDeclaredField(t *testing.T) {
	bad := -1.0
	o := Overrides{
		NetworkLatencyUS: &bad,
		KernelOverheadUS: &bad,
		TickKernelUS:     &bad,
	}
	err := o.validate()
	if err == nil {
		t.Fatal("negative overrides must not validate")
	}
	if want := "server.network_latency_us"; !strings.Contains(err.Error(), want) {
		t.Fatalf("validate reported %q; want the first declared field (%q)", err, want)
	}
}
