package scenario

import (
	"strings"
	"testing"
)

func drainScenario() Scenario {
	return Scenario{
		Name:     "drain",
		Config:   "CPC1A",
		Workload: Workload{Service: "memcached-bursty", QPS: 300000, Burstiness: 8},
		Cluster: &Cluster{
			Servers: 4, Racks: 2, TorLatencyUS: 5,
			Policy: "power_aware", P99TargetUS: 300,
		},
	}
}

// TestDrainFeedbackZeroParity is the tentpole's acceptance parity lock
// at the scenario layer: drain_hold_us = 0 plus feedback_epoch_us = 0
// must render byte-identical reports and CSV to a scenario that never
// mentions the balancer-dynamics fields — i.e. to the static-cap fleet
// the layer shipped with.
func TestDrainFeedbackZeroParity(t *testing.T) {
	static := drainScenario()
	zeroed := drainScenario()
	zeroed.Cluster.DrainHoldUS = 0
	zeroed.Cluster.FeedbackEpochUS = 0

	opt := quickOpt()
	sRep, sCSV := runArtifacts(t, static, opt)
	zRep, zCSV := runArtifacts(t, zeroed, opt)
	if sRep != zRep {
		t.Errorf("zero-valued dynamics fields changed the report:\nstatic:\n%s\nzeroed:\n%s", sRep, zRep)
	}
	if sCSV != zCSV {
		t.Errorf("zero-valued dynamics fields changed the CSV:\nstatic:\n%s\nzeroed:\n%s", sCSV, zCSV)
	}
}

// TestDrainHoldSweep drives the new axis end to end: four holds, the
// hold-0 point byte-equal in aggregate to the static fleet, and the
// longer holds visibly moving the fleet (the controller must not be a
// no-op at this operating point).
func TestDrainHoldSweep(t *testing.T) {
	sc := drainScenario()
	sc.Sweep = &Sweep{Axis: AxisDrainHold, Values: []float64{0, 200, 2000}}
	res, err := sc.Run(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("want 3 hold points, got %d", len(res.Points))
	}
	static := drainScenario()
	sres, err := static.Run(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if res.Points[0].P99Latency != sres.Points[0].P99Latency ||
		res.Points[0].TotalWatts != sres.Points[0].TotalWatts {
		t.Error("hold-0 sweep point differs from the static fleet")
	}
	if res.Points[2].P99Latency == res.Points[0].P99Latency &&
		res.Points[2].TotalWatts == res.Points[0].TotalWatts {
		t.Error("2 ms hold changed nothing — controller inert through the scenario layer")
	}
}

// TestFeedbackEpochSweep drives the feedback axis: with the static cap
// overshooting the target, a 1 ms epoch must pull the measured p99
// down toward it.
func TestFeedbackEpochSweep(t *testing.T) {
	sc := drainScenario()
	sc.Sweep = &Sweep{Axis: AxisFeedbackEpoch, Values: []float64{0, 1000}}
	res, err := sc.Run(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	off, on := res.Points[0], res.Points[1]
	if off.P99Latency <= sc.Cluster.P99TargetUS*1e-6 {
		t.Skipf("operating point no longer overshoots the target (p99 %.0fus); feedback has nothing to do",
			off.P99Latency*1e6)
	}
	if on.P99Latency >= off.P99Latency {
		t.Errorf("feedback did not reduce p99: off %.1fus, on %.1fus",
			off.P99Latency*1e6, on.P99Latency*1e6)
	}
}

func TestDrainValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Scenario)
	}{
		{"negative hold", func(s *Scenario) { s.Cluster.DrainHoldUS = -1 }},
		{"negative epoch", func(s *Scenario) { s.Cluster.FeedbackEpochUS = -1 }},
		{"hold on round_robin", func(s *Scenario) {
			s.Cluster.Policy = "round_robin"
			s.Cluster.DrainHoldUS = 200
		}},
		{"epoch on rack_affinity", func(s *Scenario) {
			s.Cluster.Policy = "rack_affinity"
			s.Cluster.FeedbackEpochUS = 1000
		}},
		{"hold axis on least_loaded", func(s *Scenario) {
			s.Cluster.Policy = "least_loaded"
			s.Sweep = &Sweep{Axis: AxisDrainHold, Values: []float64{0, 200}}
		}},
		{"epoch axis on round_robin", func(s *Scenario) {
			s.Cluster.Policy = "round_robin"
			s.Sweep = &Sweep{Axis: AxisFeedbackEpoch, Values: []float64{0, 1000}}
		}},
		{"hold axis without cluster", func(s *Scenario) {
			s.Cluster = nil
			s.Sweep = &Sweep{Axis: AxisDrainHold, Values: []float64{0, 200}}
		}},
	}
	for _, c := range cases {
		sc := drainScenario()
		c.mut(&sc)
		if err := sc.Validate(); err == nil {
			t.Errorf("%s: validated", c.name)
		}
	}

	// A policy sweep with at least one cap-based policy may carry the
	// knobs: the non-cap points ignore them, like they ignore the p99
	// target.
	sc := drainScenario()
	sc.Cluster.Policy = ""
	sc.Cluster.DrainHoldUS = 200
	sc.Sweep = &Sweep{Axis: AxisPolicy, Policies: []string{"round_robin", "power_aware"}}
	if err := sc.Validate(); err != nil {
		t.Errorf("mixed policy sweep with a hold rejected: %v", err)
	}
	if _, err := sc.Run(quickOpt()); err != nil {
		t.Errorf("mixed policy sweep with a hold failed to run: %v", err)
	}
}

// TestDrainHoldSweepLabels spot-checks the new axes render like every
// other numeric cluster axis in reports and CSV.
func TestDrainHoldSweepLabels(t *testing.T) {
	sc := drainScenario()
	sc.Sweep = &Sweep{Axis: AxisDrainHold, Values: []float64{0, 500}}
	res, err := sc.Run(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report()
	if !strings.Contains(rep, "sweeping drain_hold_us") {
		t.Errorf("report missing axis name:\n%s", rep)
	}
	var csv strings.Builder
	if err := res.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "\n500,") {
		t.Errorf("CSV missing the 500us axis row:\n%s", csv.String())
	}
}
