// Package workload generates the request streams of the paper's three
// latency-critical services — Memcached (mutilate reproducing Facebook's
// ETC mix), Kafka (event streaming), and MySQL (sysbench OLTP) — as
// open-loop stochastic arrival processes with calibrated service-time
// distributions.
//
// The evaluation depends on the *busy/idle statistics* these streams
// induce (per-request core occupancy, burstiness, utilization at a given
// QPS), not on protocol bytes, so that is what the models target. See
// DESIGN.md ("Substitutions").
package workload

import (
	"fmt"

	"agilepkgc/internal/sim"
	"agilepkgc/internal/stats"
)

// Request is one client request arriving at the server.
//
//apcvet:pooled
type Request struct {
	// ID is a monotonically increasing sequence number.
	ID uint64
	// Arrival is when the request hit the NIC.
	Arrival sim.Time
	// Service is the application service time at nominal frequency.
	Service sim.Duration
	// Conn identifies the client connection; servers pin connections to
	// cores, so it determines dispatch.
	Conn int
	// MemAccesses is how many DRAM transactions the request issues.
	MemAccesses int
}

// Spec describes one workload: its arrival process, service-time
// distribution and per-request side effects.
type Spec struct {
	// Name for reports.
	Name string
	// Arrivals generates inter-arrival gaps (seconds).
	Arrivals stats.ArrivalProcess
	// Service samples service times (seconds, at nominal frequency).
	Service stats.Dist
	// Connections is the number of client connections requests are
	// spread over.
	Connections int
	// MemAccesses per request (DRAM transactions).
	MemAccesses int
}

// MeanQPS returns the spec's long-run arrival rate.
func (s Spec) MeanQPS() float64 { return s.Arrivals.Rate() }

// ExpectedUtilization returns λ·E[S]/k for a k-core system — the
// processor load this spec induces, ignoring kernel overhead.
func (s Spec) ExpectedUtilization(cores int) float64 {
	return s.Arrivals.Rate() * s.Service.Mean() / float64(cores)
}

// String summarizes the spec.
func (s Spec) String() string {
	return fmt.Sprintf("%s: %v, service %v, %d conns, %d mem-acc/req",
		s.Name, s.Arrivals, s.Service, s.Connections, s.MemAccesses)
}

// Memcached returns the mutilate/ETC-style key-value workload at the
// given request rate. Facebook's ETC is dominated by small GETs with a
// small population of much larger requests; service times average
// ~16 µs on the 2.2 GHz SKX cores.
func Memcached(qps float64) Spec {
	return Spec{
		Name:     fmt.Sprintf("memcached-%gqps", qps),
		Arrivals: stats.Poisson{RateV: qps},
		Service: stats.Mixture{
			Components: []stats.Dist{
				stats.LogNormal{MeanV: 12e-6, Sigma: 0.45}, // GET hits
				stats.LogNormal{MeanV: 50e-6, Sigma: 0.50}, // multiget/SET
			},
			Weights: []float64{0.9, 0.1},
		},
		Connections: 200,
		MemAccesses: 4,
	}
}

// MemcachedPerRequestCoreTime is the mean core occupancy of one
// Memcached request including kernel overhead (service ≈16 µs + ≈5 µs
// softirq/syscall path) — used to convert between QPS and utilization.
const MemcachedPerRequestCoreTime = 21e-6

// MemcachedAtUtil returns the Memcached spec whose QPS induces the given
// processor utilization on a system with the given core count.
func MemcachedAtUtil(util float64, cores int) Spec {
	qps := util * float64(cores) / MemcachedPerRequestCoreTime
	return Memcached(qps)
}

// MemcachedBursty is Memcached with a two-state MMPP arrival process —
// the bursty on/off load shape user-facing traffic exhibits.
func MemcachedBursty(qps, burstiness float64) Spec {
	s := Memcached(qps)
	s.Name = fmt.Sprintf("memcached-bursty-%gqps", qps)
	s.Arrivals = stats.NewMMPP2(qps, burstiness, 2e-3)
	return s
}

// Kafka returns the event-streaming workload at the given processor load
// fraction (paper Fig. 9 uses 8% and 16%) for a system with the given
// core count. Kafka moves batches: fewer, longer requests with bursty
// producer/consumer cycles.
func Kafka(load float64, cores int) Spec {
	service := stats.LogNormal{MeanV: 120e-6, Sigma: 0.6}
	qps := load * float64(cores) / service.MeanV
	return Spec{
		Name:        fmt.Sprintf("kafka-%d%%", int(load*100+0.5)),
		Arrivals:    stats.NewMMPP2(qps, 4, 5e-3),
		Service:     service,
		Connections: 48,
		MemAccesses: 12,
	}
}

// MySQL returns the sysbench-OLTP workload at the given processor load
// fraction (paper Fig. 8 uses 8%, 16% and 42%). OLTP transactions mix
// short point reads with heavier read-write transactions, and the
// arrival stream is strongly bursty: sysbench threads issue the queries
// of one transaction back-to-back and then pause, which correlates
// activity across cores — the reason the paper still measures 20%
// all-idle time at 42% average load.
func MySQL(load float64, cores int) Spec {
	service := stats.Mixture{
		Components: []stats.Dist{
			stats.LogNormal{MeanV: 60e-6, Sigma: 0.5},  // point selects
			stats.LogNormal{MeanV: 300e-6, Sigma: 0.6}, // read-write txns
		},
		Weights: []float64{0.7, 0.3},
	}
	qps := load * float64(cores) / service.Mean()
	// Burstiness grows with load: more sysbench threads means more
	// correlated transaction trains. Near-Poisson at light load, heavily
	// clustered at 42% — which is how the paper can still measure ~20%
	// all-idle time at 42% average utilization.
	burstiness := 1 + 20*load
	return Spec{
		Name:        fmt.Sprintf("mysql-%d%%", int(load*100+0.5)),
		Arrivals:    stats.NewMMPP2(qps, burstiness, 5e-3),
		Service:     service,
		Connections: 64,
		MemAccesses: 10,
	}
}

// Source is anything that can drive a request stream into a sink under
// the engine's window protocol: Start(until) begins (or restarts)
// emission up to the given stop time, Stop cancels the pending arrival,
// Generated counts emissions, and Release hands requests back for reuse
// so steady-state emission stays allocation-free. Generator is the
// synthetic implementation; trace replay (internal/workload/replay)
// provides a recorded one. Restart semantics are part of the contract:
// a second Start replaces any pending arrival, so exactly one arrival
// chain is ever live.
type Source interface {
	Start(until sim.Time)
	Stop()
	Generated() uint64
	Release(*Request)
}

// Generator drives a Spec against a sink on the simulation engine.
type Generator struct {
	eng  *sim.Engine
	rng  *stats.RNG
	spec Spec
	sink func(*Request)

	nextID  uint64
	stopAt  sim.Time
	pending sim.Event

	// arriveFn is the single arrival closure, created once so the
	// steady-state arrival chain schedules without allocating.
	arriveFn func()
	// free holds requests handed back via Release for reuse by later
	// arrivals.
	free []*Request
}

// NewGenerator builds a generator; sink receives each request at its
// arrival instant.
func NewGenerator(eng *sim.Engine, spec Spec, seed uint64, sink func(*Request)) *Generator {
	if sink == nil {
		panic("workload: nil sink")
	}
	g := &Generator{eng: eng, rng: stats.NewRNG(seed), spec: spec, sink: sink}
	g.arriveFn = func() {
		g.pending = sim.Event{}
		if g.eng.Now() >= g.stopAt {
			return
		}
		g.emit()
		g.scheduleNext()
	}
	return g
}

// Spec returns the generator's workload description.
func (g *Generator) Spec() Spec { return g.spec }

// Reset rewinds the generator to its initial state under a (possibly
// new) spec and seed, keeping the arrival closure and the request free
// list so a reused generator emits without allocating from the first
// arrival on. The caller must have reset (or drained) the engine first:
// any pending arrival chain died with it, so Reset just forgets the
// handle. A reset generator is indistinguishable from
// NewGenerator(eng, spec, seed, sink) on the same engine.
func (g *Generator) Reset(spec Spec, seed uint64) {
	g.rng = stats.NewRNG(seed)
	g.spec = spec
	g.nextID = 0
	g.stopAt = 0
	g.pending = sim.Event{}
}

// Generated returns how many requests have been emitted.
func (g *Generator) Generated() uint64 { return g.nextID }

// Start begins emitting requests until the given stop time. Restarting
// (e.g. a measurement window after a warmup window) replaces any pending
// arrival, so exactly one arrival chain is ever live.
func (g *Generator) Start(until sim.Time) {
	g.pending.Cancel()
	g.stopAt = until
	g.scheduleNext()
}

// Stop cancels the pending arrival, ending generation immediately.
func (g *Generator) Stop() {
	g.pending.Cancel()
	g.pending = sim.Event{}
}

//apcvet:noalloc
func (g *Generator) scheduleNext() {
	gap := g.spec.Arrivals.NextGap(g.rng)
	d := sim.Duration(gap * float64(sim.Second))
	if d < 0 {
		d = 0
	}
	g.pending = g.eng.Schedule(d, g.arriveFn)
}

//apcvet:noalloc
func (g *Generator) emit() {
	svc := g.spec.Service.Sample(g.rng)
	var req *Request
	if n := len(g.free); n > 0 {
		req = g.free[n-1]
		g.free = g.free[:n-1]
	} else {
		req = new(Request) //apcvet:alloc pool miss: warm-up until the free list reaches steady-state depth
	}
	*req = Request{
		ID:          g.nextID,
		Arrival:     g.eng.Now(),
		Service:     sim.Duration(svc * float64(sim.Second)),
		Conn:        int(g.rng.Uint64() % uint64(g.spec.Connections)),
		MemAccesses: g.spec.MemAccesses,
	}
	g.nextID++
	g.sink(req)
}

// Release hands a request back to the generator for reuse by a later
// arrival, making steady-state generation allocation-free. Only the sink
// may call it, once per request, after nothing references the request
// anymore; sinks that retain requests simply never release them and the
// generator falls back to allocating.
//
//apcvet:poolput
//apcvet:noalloc
func (g *Generator) Release(req *Request) {
	g.free = append(g.free, req)
}
