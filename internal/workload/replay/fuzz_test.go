package replay

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"agilepkgc/internal/sim"
)

// FuzzTraceDecode is the decoder's adversarial gate: whatever bytes
// arrive — truncated files, corrupt checksums, out-of-order timestamps,
// length-field lies — Decode must either succeed or return a located
// *FormatError. It must never panic, never over-read (the input is all
// there is) and, on success, hand back records that re-encode to an
// equivalent trace (round-trip closure). The CI fuzz job picks this
// target up by name discovery (go test -list '^Fuzz').
func FuzzTraceDecode(f *testing.F) {
	// Seed corpus: real tracegen-shaped output plus targeted mutations
	// of every region (magic, lengths, counts, timestamps, checksum).
	valid, _ := fuzzSeedTrace(f, []Record{
		{TS: 0, Service: 16 * sim.Microsecond, Conn: 0, Mem: 4},
		{TS: 10 * sim.Microsecond, Service: 12 * sim.Microsecond, Conn: 3, Mem: 4},
		{TS: 10 * sim.Microsecond, Service: 50 * sim.Microsecond, Conn: 7, Mem: 4},
		{TS: 500 * sim.Microsecond, Service: 9 * sim.Microsecond, Conn: 1, Mem: 4},
	})
	empty, _ := fuzzSeedTrace(f, nil)
	f.Add(valid)
	f.Add(empty)
	f.Add([]byte{})
	f.Add([]byte("APCTRACE"))
	f.Add(valid[:headerSize/2])
	f.Add(valid[:headerSize+1])
	for _, off := range []int{0, 8, 12, 16, 24, 32, 40, 56, 64, headerSize, len(valid) - 1} {
		mut := append([]byte(nil), valid...)
		mut[off] ^= 0x80
		f.Add(mut)
	}
	f.Add(append(append([]byte(nil), valid...), 0x00))

	f.Fuzz(func(t *testing.T, data []byte) {
		hdr, recs, err := Decode(data)
		if err != nil {
			var fe *FormatError
			if !errors.As(err, &fe) {
				t.Fatalf("Decode error %v is not a *FormatError", err)
			}
			if fe.Offset < 0 || fe.Offset > int64(len(data)) {
				t.Fatalf("located offset %d outside the %d-byte input", fe.Offset, len(data))
			}
			return
		}
		// Accepted input: the decoded records must satisfy the format's
		// invariants and re-encode to a trace that decodes identically.
		if uint64(len(recs)) != hdr.Count {
			t.Fatalf("decoded %d records, header declares %d", len(recs), hdr.Count)
		}
		for i, rec := range recs {
			if rec.TS < 0 || rec.Service < 0 {
				t.Fatalf("record %d: negative time %d/%d", i, rec.TS, rec.Service)
			}
			if i > 0 && rec.TS < recs[i-1].TS {
				t.Fatalf("record %d: accepted out-of-order timestamp", i)
			}
		}
		var buf MemBuffer
		w, err := NewWriter(&buf, Meta{
			Name:        hdr.Name,
			MeanQPS:     hdr.MeanQPS,
			ServiceMean: hdr.ServiceMean,
			Connections: hdr.Connections,
			MemAccesses: hdr.MemAccesses,
		})
		if err != nil {
			t.Fatalf("accepted header does not re-encode: %v", err)
		}
		for i, rec := range recs {
			if err := w.Append(rec); err != nil {
				t.Fatalf("accepted record %d does not re-encode: %v", i, err)
			}
		}
		if _, err := w.Close(); err != nil {
			t.Fatalf("re-encode close: %v", err)
		}
		hdr2, recs2, err := Decode(buf.Bytes())
		if err != nil {
			t.Fatalf("re-encoded trace does not decode: %v", err)
		}
		if hdr2 != hdr {
			t.Fatalf("round trip changed the header: %+v vs %+v", hdr2, hdr)
		}
		for i := range recs {
			if recs2[i] != recs[i] {
				t.Fatalf("round trip changed record %d: %+v vs %+v", i, recs2[i], recs[i])
			}
		}
	})
}

// fuzzSeedTrace builds a seed-corpus trace through the real writer.
func fuzzSeedTrace(f *testing.F, recs []Record) ([]byte, Header) {
	f.Helper()
	var buf MemBuffer
	w, err := NewWriter(&buf, Meta{
		Name: "fuzz-seed", MeanQPS: 40000, ServiceMean: 16e-6,
		Connections: 8, MemAccesses: 4,
	})
	if err != nil {
		f.Fatal(err)
	}
	for _, rec := range recs {
		if err := w.Append(rec); err != nil {
			f.Fatal(err)
		}
	}
	hdr, err := w.Close()
	if err != nil {
		f.Fatal(err)
	}
	return buf.Bytes(), hdr
}

// TestFuzzSeedsDecode keeps the corpus honest outside fuzzing mode: the
// valid seed decodes, and a Reader over a stream that cannot seek past
// what it has (bytes.Reader over the exact input) proves the decoder
// never demands bytes beyond the failing field.
func TestFuzzSeedsDecode(t *testing.T) {
	var buf MemBuffer
	w, err := NewWriter(&buf, Meta{Name: "seed", MeanQPS: 1, ServiceMean: 1e-6, Connections: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Record{TS: 5, Service: 7, Conn: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, _, err := Decode(data); err != nil {
		t.Fatalf("valid seed rejected: %v", err)
	}
	// Every truncation point must produce a located error, not a panic
	// or an over-read.
	for n := 0; n < len(data); n++ {
		_, _, err := Decode(data[:n])
		if err == nil {
			t.Fatalf("truncation at %d of %d bytes accepted", n, len(data))
		}
		var fe *FormatError
		if !errors.As(err, &fe) {
			t.Fatalf("truncation at %d: error %v is not a *FormatError", n, err)
		}
	}
	// The reader consumes only the declared bytes even when more are
	// available to stream.
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := r.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
}
