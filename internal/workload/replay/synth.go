package replay

import (
	"io"

	"agilepkgc/internal/sim"
	"agilepkgc/internal/workload"
)

// Synthesize records the spec's synthetic generator into a trace,
// deterministically from the seed: it runs a real workload.Generator on
// a bare engine through the same two-window Start protocol a measured
// fleet drives (warmup to warmup+duration back to back) and appends
// every emission at its absolute engine time. Replaying the result
// through the same warmup/duration split reproduces the generator's
// emission sequence — IDs, instants, service demands, connections —
// exactly, which is the replay≡synthetic parity contract
// (TestReplayMatchesSynthetic locks it at the report-byte level).
//
// The two-window structure matters: Start draws a fresh inter-arrival
// gap and discards the pending one, so the emission stream depends on
// where the window boundary falls. A trace synthesized with one
// (warmup, duration) split is byte-faithful only for runs using the
// same split.
func Synthesize(ws io.WriteSeeker, spec workload.Spec, seed uint64, warmup, duration sim.Duration) (Header, error) {
	wr, err := NewWriter(ws, Meta{
		Name:        spec.Name,
		MeanQPS:     spec.MeanQPS(),
		ServiceMean: spec.Service.Mean(),
		Connections: spec.Connections,
		MemAccesses: spec.MemAccesses,
	})
	if err != nil {
		return Header{}, err
	}
	eng := sim.NewEngine()
	var gen *workload.Generator
	var werr error
	gen = workload.NewGenerator(eng, spec, seed, func(req *workload.Request) {
		if werr == nil {
			werr = wr.Append(Record{
				TS:      req.Arrival,
				Service: req.Service,
				Conn:    uint32(req.Conn),
				Mem:     uint32(req.MemAccesses),
			})
		}
		gen.Release(req)
	})
	w1 := warmup
	w2 := warmup + duration
	gen.Start(w1)
	eng.Run(w1)
	gen.Start(w2)
	eng.Run(w2)
	gen.Stop()
	if werr != nil {
		return Header{}, werr
	}
	return wr.Close()
}
