package replay_test

import (
	"testing"

	"agilepkgc/internal/cluster"
	"agilepkgc/internal/server"
	"agilepkgc/internal/sim"
	"agilepkgc/internal/soc"
	"agilepkgc/internal/workload"
	"agilepkgc/internal/workload/replay"
)

// memTrace builds an in-memory trace from explicit records.
func memTrace(t testing.TB, meta replay.Meta, recs []replay.Record) *replay.Reader {
	t.Helper()
	var buf replay.MemBuffer
	w, err := replay.NewWriter(&buf, meta)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := buf.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	r, err := replay.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

var sourceMeta = replay.Meta{
	Name: "source-test", MeanQPS: 100000, ServiceMean: 10e-6,
	Connections: 4, MemAccesses: 2,
}

// collect drives a bound Replay through explicit windows and returns
// the (arrival time, request ID) pairs the sink saw.
type arrival struct {
	at  sim.Time
	id  uint64
	svc sim.Duration
}

func bindReplay(t *testing.T, rd *replay.Reader, opts replay.Options) (*sim.Engine, *replay.Replay, *[]arrival) {
	t.Helper()
	rp, err := replay.New(rd, opts)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	got := &[]arrival{}
	sink := func(req *workload.Request) {
		*got = append(*got, arrival{at: req.Arrival, id: req.ID, svc: req.Service})
		rp.Release(req)
	}
	if err := rp.Bind(eng, sink); err != nil {
		t.Fatal(err)
	}
	return eng, rp, got
}

// TestReplayWindowRebase pins the offset-rebasing contract: a drain gap
// between measurement windows shifts engine time, but the trace stream
// must resume exactly where the previous window cut it — the gap is
// excised from the stream timeline, and the record left unconsumed at
// the boundary is the first to replay in the next window.
func TestReplayWindowRebase(t *testing.T) {
	us := func(v int64) sim.Time { return sim.Time(v) * sim.Microsecond }
	rd := memTrace(t, sourceMeta, []replay.Record{
		{TS: us(10), Service: us(1)},
		{TS: us(20), Service: us(2)},
		{TS: us(30), Service: us(3)},
		{TS: us(40), Service: us(4)},
	})
	eng, rp, got := bindReplay(t, rd, replay.Options{})

	// Window 1: [0, 25µs) — replays records at 10µs and 20µs.
	rp.Start(us(25))
	eng.Run(us(25))
	if len(*got) != 2 || (*got)[0].at != us(10) || (*got)[1].at != us(20) {
		t.Fatalf("window 1 arrivals %+v, want ts 10µs and 20µs", *got)
	}
	// Idle gap: the engine runs 100µs past the window (a drain). The
	// pending record (30µs) fires as a noop and must stay unconsumed.
	eng.Run(us(125))
	if len(*got) != 2 {
		t.Fatalf("drain gap replayed %d records, want none", len(*got)-2)
	}
	// Window 2 starts at 125µs: stream position was 25µs, so record
	// ts=30µs replays at 125+(30−25) = 130µs, ts=40µs at 140µs.
	rp.Start(us(200))
	eng.Run(us(200))
	if len(*got) != 4 {
		t.Fatalf("window 2 replayed %d records, want 2 (got %+v)", len(*got)-2, *got)
	}
	if (*got)[2].at != us(130) || (*got)[3].at != us(140) {
		t.Errorf("window 2 arrivals at %v and %v, want 130µs and 140µs", (*got)[2].at, (*got)[3].at)
	}
	if g := rp.Generated(); g != 4 {
		t.Errorf("Generated() = %d, want 4", g)
	}
	// IDs stay sequential across windows.
	for i, a := range *got {
		if a.id != uint64(i) {
			t.Errorf("arrival %d has ID %d", i, a.id)
		}
	}
}

// TestReplayLoop pins the wrap semantics: iteration j replays with
// every timestamp shifted by j·lastTS, service demands untouched.
func TestReplayLoop(t *testing.T) {
	us := func(v int64) sim.Time { return sim.Time(v) * sim.Microsecond }
	rd := memTrace(t, sourceMeta, []replay.Record{
		{TS: us(10), Service: us(1)},
		{TS: us(40), Service: us(2)},
	})
	eng, rp, got := bindReplay(t, rd, replay.Options{Loop: true})
	rp.Start(us(200))
	eng.Run(us(200))
	// Period = lastTS = 40µs: arrivals at 10,40, 50,80, 90,120, 130,160, 170,200?
	// 200 is the stop time; the record scheduled there noops (now >= stopAt).
	want := []sim.Time{us(10), us(40), us(50), us(80), us(90), us(120), us(130), us(160), us(170)}
	if len(*got) != len(want) {
		t.Fatalf("looped replay emitted %d arrivals, want %d: %+v", len(*got), len(want), *got)
	}
	for i, a := range *got {
		if a.at != want[i] {
			t.Errorf("arrival %d at %v, want %v", i, a.at, want[i])
		}
		wantSvc := us(1 + int64(i)%2)
		if a.svc != wantSvc {
			t.Errorf("arrival %d service %v, want %v", i, a.svc, wantSvc)
		}
	}
}

// TestReplayLoopRejectsZeroPeriod pins the livelock guard: a trace
// whose last timestamp is zero cannot loop (every iteration would land
// on the same instant forever).
func TestReplayLoopRejectsZeroPeriod(t *testing.T) {
	rd := memTrace(t, sourceMeta, []replay.Record{{TS: 0, Service: 1}})
	if _, err := replay.New(rd, replay.Options{Loop: true}); err == nil {
		t.Fatal("New accepted a looping zero-period trace")
	}
}

// TestReplayTimeScale pins scaling semantics: arrival timestamps
// stretch by the scale, service demands do not, and scale 1 (or 0,
// the default) takes the integer bypass.
func TestReplayTimeScale(t *testing.T) {
	us := func(v int64) sim.Time { return sim.Time(v) * sim.Microsecond }
	recs := []replay.Record{
		{TS: us(10), Service: us(3)},
		{TS: us(20), Service: us(3)},
	}
	for _, c := range []struct {
		scale float64
		want  []sim.Time
	}{
		{0, []sim.Time{us(10), us(20)}},
		{1, []sim.Time{us(10), us(20)}},
		{2, []sim.Time{us(20), us(40)}},
		{0.5, []sim.Time{us(5), us(10)}},
	} {
		rd := memTrace(t, sourceMeta, recs)
		eng, rp, got := bindReplay(t, rd, replay.Options{TimeScale: c.scale})
		rp.Start(us(100))
		eng.Run(us(100))
		if len(*got) != len(c.want) {
			t.Fatalf("scale %g emitted %d arrivals, want %d", c.scale, len(*got), len(c.want))
		}
		for i, a := range *got {
			if a.at != c.want[i] {
				t.Errorf("scale %g arrival %d at %v, want %v", c.scale, i, a.at, c.want[i])
			}
			if a.svc != us(3) {
				t.Errorf("scale %g arrival %d service %v — service demands must not scale", c.scale, i, a.svc)
			}
		}
	}
	rd := memTrace(t, sourceMeta, recs)
	if _, err := replay.New(rd, replay.Options{TimeScale: -1}); err == nil {
		t.Fatal("New accepted a negative time scale")
	}
}

// TestReplayRebind pins the reuse contract: Bind rewinds the trace and
// resets all replay state, so a rebound Replay on a fresh engine emits
// the identical stream.
func TestReplayRebind(t *testing.T) {
	us := func(v int64) sim.Time { return sim.Time(v) * sim.Microsecond }
	rd := memTrace(t, sourceMeta, []replay.Record{
		{TS: us(10), Service: us(1), Conn: 2, Mem: 5},
		{TS: us(20), Service: us(2), Conn: 3, Mem: 6},
	})
	eng, rp, got := bindReplay(t, rd, replay.Options{})
	rp.Start(us(50))
	eng.Run(us(50))
	first := append([]arrival(nil), *got...)

	eng2 := sim.NewEngine()
	var second []arrival
	if err := rp.Bind(eng2, func(req *workload.Request) {
		second = append(second, arrival{at: req.Arrival, id: req.ID, svc: req.Service})
		rp.Release(req)
	}); err != nil {
		t.Fatal(err)
	}
	rp.Start(us(50))
	eng2.Run(us(50))
	if len(second) != len(first) {
		t.Fatalf("rebound replay emitted %d arrivals, want %d", len(second), len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("arrival %d changed across rebind: %+v vs %+v", i, first[i], second[i])
		}
	}
	if rp.Generated() != uint64(len(second)) {
		t.Errorf("Generated() = %d after rebind, want %d", rp.Generated(), len(second))
	}
}

// TestReplaySteadyStateAllocs is the replay read path's alloc gate, in
// the style of TestRouteSteadyStateAllocs: once the free list, bufio
// window and event arena are primed, driving a fleet from a looping
// trace — decode, schedule, emit, release, rewind-on-wrap — allocates
// nothing.
func TestReplaySteadyStateAllocs(t *testing.T) {
	spec := workload.MemcachedBursty(300000, 8)
	var buf replay.MemBuffer
	if _, err := replay.Synthesize(&buf, spec, 1, 0, 10*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, err := buf.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	rd, err := replay.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := replay.New(rd, replay.Options{Loop: true})
	if err != nil {
		t.Fatal(err)
	}
	members := make([]cluster.MemberConfig, 8)
	for i := range members {
		members[i] = cluster.MemberConfig{SoC: soc.DefaultConfig(soc.CPC1A), Server: server.DefaultConfig()}
	}
	fl, err := cluster.New(cluster.Config{
		Policy:    cluster.PowerAware,
		P99Target: 300 * sim.Microsecond,
		Members:   members,
		NewSource: func(eng *sim.Engine, _ workload.Spec, _ uint64, sink func(*workload.Request)) workload.Source {
			if err := rp.Bind(eng, sink); err != nil {
				t.Fatal(err)
			}
			return rp
		},
	}, rd.Header().Spec(), 1)
	if err != nil {
		t.Fatal(err)
	}
	fl.Run(5 * sim.Millisecond) // prime pools, arena, bufio window, free list
	allocs := testing.AllocsPerRun(3, func() {
		fl.Run(sim.Millisecond)
	})
	if allocs > 0 {
		t.Errorf("steady-state replay Run allocates %.1f times per ms window, want 0", allocs)
	}
	if fl.Generated() == 0 {
		t.Fatal("replay fleet generated nothing")
	}
}
