package replay

import (
	"fmt"
	"io"

	"agilepkgc/internal/sim"
	"agilepkgc/internal/workload"
)

// Options configures how a Replay maps the trace onto engine time.
type Options struct {
	// TimeScale multiplies arrival timestamps (service demands are never
	// scaled): 0.5 replays the trace at double speed, 2 at half speed.
	// Zero means 1. A scale of exactly 1 bypasses float arithmetic so
	// replayed arrival instants are the recorded integers, bit for bit.
	TimeScale float64
	// Loop restarts the trace when it runs out instead of stopping:
	// iteration j replays with every timestamp shifted by j times the
	// trace's last timestamp (the wrap period), which keeps the stream
	// non-decreasing. Requires a trace whose last timestamp is positive.
	Loop bool
}

// Replay is the recorded counterpart of workload.Generator: a
// workload.Source that drives a trace's records into a sink under the
// engine's window protocol. The steady-state read path allocates
// nothing — records decode in place out of the reader's bufio window,
// requests come from a free list, and the single arrival closure is
// built once at Bind.
//
// Stream time maps onto engine time through an offset recomputed at
// every Start: the engine's clock keeps running between measurement
// windows (drain, idle gaps), but the trace's clock must not, so each
// Start re-anchors the unconsumed remainder of the stream at the
// current instant. Within back-to-back windows (warmup straight into
// measurement) the offset is stable, which is what makes a replayed
// trace reproduce its source generator's arrival instants exactly.
//
// The arrival chain peeks the next record to schedule it and consumes
// it only when it actually emits; a chain cut off by the end of a
// window (the scheduled instant lands at or past the stop time) leaves
// the record in the stream for the next window, mirroring the
// generator's noop-without-consuming behavior at a window boundary.
//
// A Replay is single-use per Bind; Bind rewinds the trace and is the
// reset path for fleet reuse. Decode failures after Bind panic: the
// scenario layer validates the header and the file's existence up
// front, so a mid-replay decode error means the file changed or
// corrupted underneath a validated run — the same unreachable-after-
// validation contract the cluster layer panics on.
type Replay struct {
	rd    *Reader
	hdr   Header
	scale float64
	loop  bool

	eng  *sim.Engine
	sink func(*workload.Request)

	nextID   uint64
	stopAt   sim.Time
	offset   sim.Time // engine time = offset + iterBase + scale(record TS)
	iterBase sim.Time // accumulated loop shift (scaled wrap periods)
	started  bool
	pending  sim.Event

	// arriveFn is the single arrival closure, created once at Bind so
	// the steady-state arrival chain schedules without allocating.
	arriveFn func()
	// free holds requests handed back via Release for reuse.
	free []*workload.Request
}

// New builds a replay over an open reader. Bind must be called before
// Start.
func New(rd *Reader, opts Options) (*Replay, error) {
	if opts.TimeScale < 0 {
		return nil, fmt.Errorf("replay: negative time scale %g", opts.TimeScale)
	}
	if opts.Loop && rd.Header().LastTS <= 0 {
		return nil, fmt.Errorf("replay: cannot loop a trace whose last timestamp is %d — the wrap period would not advance time", rd.Header().LastTS)
	}
	scale := opts.TimeScale
	if scale == 0 {
		scale = 1
	}
	return &Replay{rd: rd, hdr: rd.Header(), scale: scale, loop: opts.Loop}, nil
}

// Header returns the trace header.
func (r *Replay) Header() Header { return r.hdr }

// Bind attaches the replay to an engine and sink and rewinds the trace
// to record 0, resetting all replay state; the free list survives, so a
// rebound replay emits without allocating from the first arrival on.
// Bind is the reset path: a fleet rebuilt for the next sweep point
// rebinds the same Replay against its fresh engine.
func (r *Replay) Bind(eng *sim.Engine, sink func(*workload.Request)) error {
	if sink == nil {
		panic("replay: nil sink")
	}
	if err := r.rd.Rewind(); err != nil {
		return fmt.Errorf("replay: rewind: %w", err)
	}
	r.eng = eng
	r.sink = sink
	r.nextID = 0
	r.stopAt = 0
	r.offset = 0
	r.iterBase = 0
	r.started = false
	r.pending = sim.Event{}
	if r.arriveFn == nil {
		r.arriveFn = r.arrive
	}
	return nil
}

// arrive is the arrival chain: emit the scheduled record unless the
// window is over, then schedule the next.
//
//apcvet:noalloc
func (r *Replay) arrive() {
	r.pending = sim.Event{}
	if r.eng.Now() >= r.stopAt {
		// Window over: leave the record unconsumed for the next one.
		return
	}
	r.emit()
	r.scheduleNext()
}

// Generated returns how many records have been emitted.
func (r *Replay) Generated() uint64 { return r.nextID }

// Start begins (or restarts) replay until the given stop time,
// re-anchoring the unconsumed stream at the current instant. Restart
// semantics match the Generator's: any pending arrival is replaced, so
// exactly one arrival chain is ever live.
func (r *Replay) Start(until sim.Time) {
	r.pending.Cancel()
	r.pending = sim.Event{}
	if r.started {
		// The stream consumed exactly the previous window's span of
		// trace time (records past it were left unconsumed), so the
		// stream position is that window's stop in stream coordinates.
		streamPos := r.stopAt - r.offset
		r.offset = r.eng.Now() - streamPos
	} else {
		r.offset = r.eng.Now()
		r.started = true
	}
	r.stopAt = until
	r.scheduleNext()
}

// Stop cancels the pending arrival, ending replay immediately. The
// unconsumed remainder of the trace stays readable by a later Start.
func (r *Replay) Stop() {
	r.pending.Cancel()
	r.pending = sim.Event{}
}

// scheduleNext peeks the next record and schedules the arrival chain at
// its engine instant, wrapping the trace when looping. The record is
// not consumed until it emits.
//
//apcvet:noalloc
func (r *Replay) scheduleNext() {
	for {
		rec, err := r.rd.Peek()
		if err == io.EOF {
			if !r.loop || r.hdr.Count == 0 {
				return // trace exhausted: the chain simply ends
			}
			//apcvet:alloc loop wraparound: once per trace iteration, not per record
			if rerr := r.rd.Rewind(); rerr != nil {
				panic(fmt.Sprintf("replay: rewind for loop: %v", rerr))
			}
			r.iterBase += r.scaleTS(r.hdr.LastTS)
			continue
		}
		if err != nil {
			panic(fmt.Sprintf("replay: trace corrupted after validation: %v", err))
		}
		at := r.offset + r.iterBase + r.scaleTS(rec.TS)
		r.pending = r.eng.At(at, r.arriveFn)
		return
	}
}

// emit consumes the scheduled record and delivers it.
//
//apcvet:noalloc
func (r *Replay) emit() {
	rec, err := r.rd.Next()
	if err != nil {
		// scheduleNext peeked this record successfully; only the stream
		// changing underneath the run gets here.
		panic(fmt.Sprintf("replay: trace corrupted after validation: %v", err))
	}
	var req *workload.Request
	if n := len(r.free); n > 0 {
		req = r.free[n-1]
		r.free = r.free[:n-1]
	} else {
		req = new(workload.Request) //apcvet:alloc pool miss: warm-up until the free list reaches steady-state depth
	}
	*req = workload.Request{
		ID:          r.nextID,
		Arrival:     r.eng.Now(),
		Service:     rec.Service,
		Conn:        int(rec.Conn),
		MemAccesses: int(rec.Mem),
	}
	r.nextID++
	r.sink(req)
}

// Release hands a request back for reuse by a later arrival, keeping
// steady-state replay allocation-free. Same contract as the
// Generator's: sink only, once per request, after last use.
//
//apcvet:poolput
//apcvet:noalloc
func (r *Replay) Release(req *workload.Request) {
	r.free = append(r.free, req)
}

// scaleTS maps a stream timestamp through the time scale. Scale 1 is
// the identity on the integer values — no float round trip — which is
// what the byte-for-byte replay≡synthetic parity contract relies on.
//
//apcvet:noalloc
func (r *Replay) scaleTS(ts sim.Time) sim.Time {
	if r.scale == 1 {
		return ts
	}
	return sim.Time(float64(ts) * r.scale)
}
