package replay_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"agilepkgc/internal/experiments"
	"agilepkgc/internal/scenario"
	"agilepkgc/internal/sim"
	"agilepkgc/internal/soc"
	"agilepkgc/internal/workload"
	"agilepkgc/internal/workload/replay"
)

// parityKinds pairs each generator family's scenario workload with the
// spec constructor the scenario layer resolves it to, so the test can
// synthesize the exact stream the synthetic run will generate.
var parityKinds = []struct {
	name string
	wl   scenario.Workload
	spec func(cores int) workload.Spec
}{
	{"memcached", scenario.Workload{Service: "memcached", QPS: 40000},
		func(int) workload.Spec { return workload.Memcached(40000) }},
	{"memcached-bursty", scenario.Workload{Service: "memcached-bursty", QPS: 40000, Burstiness: 8},
		func(int) workload.Spec { return workload.MemcachedBursty(40000, 8) }},
	{"mysql", scenario.Workload{Service: "mysql", Load: 0.16},
		func(cores int) workload.Spec { return workload.MySQL(0.16, cores) }},
	{"kafka", scenario.Workload{Service: "kafka", Load: 0.16},
		func(cores int) workload.Spec { return workload.Kafka(0.16, cores) }},
}

// synthesizeFor records the spec's generator into a trace file under
// dir, through the same (warmup, duration) window split the runner
// will drive.
func synthesizeFor(t *testing.T, dir string, spec workload.Spec, seed uint64, opt experiments.Options) string {
	t.Helper()
	path := filepath.Join(dir, spec.Name+".trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := replay.Synthesize(f, spec, seed, opt.Warmup(), opt.Duration); err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	return path
}

// runBytes renders a result's CSV bytes and its report table (the
// report minus its first line — the header names the service, which is
// "trace" on one side and the generator on the other by construction;
// every measured byte below it must match).
func runBytes(t *testing.T, sc scenario.Scenario, opt experiments.Options) (csv, table string) {
	t.Helper()
	res, err := sc.Run(opt)
	if err != nil {
		t.Fatalf("Run(%s): %v", sc.Workload.Service, err)
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	report := res.Report()
	if i := strings.IndexByte(report, '\n'); i >= 0 {
		report = report[i+1:]
	}
	return buf.String(), report
}

// TestReplayMatchesSynthetic is the tentpole's parity contract: a trace
// synthesized from a generator and replayed through the scenario runner
// produces byte-identical measurements — CSV and report table — to
// running the synthetic generator directly, for every generator family
// and across seeds. Nothing is approximately equal here: the replayed
// fleet must schedule the identical event sequence.
func TestReplayMatchesSynthetic(t *testing.T) {
	const servers = 2
	cores := servers * soc.DefaultConfig(soc.CPC1A).CoreCount
	seeds := []uint64{1, 7, 42}
	for _, k := range parityKinds {
		for _, seed := range seeds {
			t.Run(k.name, func(t *testing.T) {
				opt := experiments.Options{Duration: 20 * sim.Millisecond, Seed: seed, Parallelism: 1}
				path := synthesizeFor(t, t.TempDir(), k.spec(cores), seed, opt)

				base := scenario.Scenario{
					Name:    "parity",
					Config:  "CPC1A",
					Cluster: &scenario.Cluster{Servers: servers, Policy: "round_robin"},
				}
				synth := base
				synth.Workload = k.wl
				traced := base
				traced.Workload = scenario.Workload{
					Service: "trace",
					Trace:   &scenario.Trace{Path: path},
				}

				wantCSV, wantTable := runBytes(t, synth, opt)
				gotCSV, gotTable := runBytes(t, traced, opt)
				if gotCSV != wantCSV {
					t.Errorf("seed %d: replayed CSV diverged from synthetic:\nsynthetic:\n%s\nreplay:\n%s",
						seed, wantCSV, gotCSV)
				}
				if gotTable != wantTable {
					t.Errorf("seed %d: replayed report diverged from synthetic:\nsynthetic:\n%s\nreplay:\n%s",
						seed, wantTable, gotTable)
				}
				if !strings.Contains(gotCSV, k.spec(cores).Name) {
					t.Errorf("seed %d: replayed CSV does not carry the recorded workload name %q:\n%s",
						seed, k.spec(cores).Name, gotCSV)
				}
			})
		}
	}
}

// TestReplayParitySweepParallel extends the parity contract across a
// sweep: the same trace replayed at every point of a policy sweep
// matches the synthetic sweep byte for byte, serially and at
// parallelism 4 — replay points, like synthetic ones, must be pure
// functions of (options, point).
func TestReplayParitySweepParallel(t *testing.T) {
	const servers = 4
	spec := workload.MemcachedBursty(40000, 8)
	opt := experiments.Options{Duration: 15 * sim.Millisecond, Seed: 7, Parallelism: 1}
	path := synthesizeFor(t, t.TempDir(), spec, opt.Seed, opt)

	base := scenario.Scenario{
		Name:   "parity-sweep",
		Config: "CPC1A",
		Cluster: &scenario.Cluster{
			Servers:     servers,
			P99TargetUS: 300,
		},
		Sweep: &scenario.Sweep{
			Axis:     scenario.AxisPolicy,
			Policies: []string{"round_robin", "least_loaded", "power_aware"},
		},
	}
	synth := base
	synth.Workload = scenario.Workload{Service: "memcached-bursty", QPS: 40000, Burstiness: 8}
	traced := base
	traced.Workload = scenario.Workload{Service: "trace", Trace: &scenario.Trace{Path: path}}

	wantCSV, wantTable := runBytes(t, synth, opt)
	variants := []struct {
		name string
		sc   scenario.Scenario
		par  int
	}{
		{"synthetic parallel", synth, 4},
		{"replay serial", traced, 1},
		{"replay parallel", traced, 4},
	}
	for _, v := range variants {
		o := opt
		o.Parallelism = v.par
		gotCSV, gotTable := runBytes(t, v.sc, o)
		if gotCSV != wantCSV {
			t.Errorf("%s: CSV diverged from serial synthetic:\nwant:\n%s\ngot:\n%s", v.name, wantCSV, gotCSV)
		}
		if gotTable != wantTable {
			t.Errorf("%s: report diverged from serial synthetic:\nwant:\n%s\ngot:\n%s", v.name, wantTable, gotTable)
		}
	}
}
