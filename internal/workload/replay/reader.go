package replay

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"hash/crc64"
	"io"
	"math"

	"agilepkgc/internal/sim"
)

// readerBufSize is the bufio window — the bounded read-ahead of the
// streaming path. One window holds ~2730 records; the reader never
// materializes more of the file than this.
const readerBufSize = 64 << 10

// Reader streams records out of a trace. It validates the header on
// construction, decodes records in place from the bufio window (Peek
// never copies, Next copies 24 bytes into a stack value), enforces the
// ordering contract (non-decreasing timestamps) incrementally, and
// verifies the record count, checksum and absence of trailing bytes
// when the stream ends. Every failure is a located *FormatError; the
// reader never panics and never reads past the failing field.
//
// Rewind seeks back to the first record, which is what looping replay
// and sweep-point reuse are built on; it reuses the bufio window, so a
// rewound reader allocates nothing.
type Reader struct {
	src io.ReadSeeker
	br  *bufio.Reader
	hdr Header

	dataOff int64    // byte offset of record 0
	read    uint64   // records consumed
	crc     uint64   // incremental checksum over consumed records
	prevTS  sim.Time // ordering check
	done    bool     // end-of-stream reached and verified
}

// NewReader decodes and validates the header and positions the stream
// at the first record.
func NewReader(src io.ReadSeeker) (*Reader, error) {
	r := &Reader{src: src, br: bufio.NewReaderSize(src, readerBufSize)}
	if err := r.readHeader(); err != nil {
		return nil, err
	}
	return r, nil
}

// readHeader decodes the fixed header and the name that follows it.
func (r *Reader) readHeader() error {
	var h [headerSize]byte
	if _, err := io.ReadFull(r.br, h[:]); err != nil {
		return headerErr(0, "truncated header: %v", err)
	}
	if !bytes.Equal(h[0:8], []byte(Magic)) {
		return headerErr(0, "bad magic %q (want %q)", h[0:8], Magic)
	}
	le := binary.LittleEndian
	if v := le.Uint32(h[8:12]); v != Version {
		return headerErr(8, "unsupported version %d (want %d)", v, Version)
	}
	nameLen := le.Uint32(h[12:16])
	if nameLen == 0 || nameLen > maxNameLen {
		return headerErr(12, "name length %d outside [1, %d]", nameLen, maxNameLen)
	}
	count := le.Uint64(h[16:24])
	first, last := le.Uint64(h[24:32]), le.Uint64(h[32:40])
	if !validTS(first) || !validTS(last) {
		return headerErr(24, "timestamp range does not fit a signed time")
	}
	if last < first {
		return headerErr(32, "last timestamp %d before first %d", last, first)
	}
	if count == 0 && (first != 0 || last != 0) {
		return headerErr(16, "empty trace with a non-zero timestamp range")
	}
	if count > math.MaxInt64/RecordSize {
		return headerErr(16, "record count %d implies an impossible file size", count)
	}
	meanQPS := math.Float64frombits(le.Uint64(h[40:48]))
	serviceMean := math.Float64frombits(le.Uint64(h[48:56]))
	if math.IsNaN(meanQPS) || math.IsInf(meanQPS, 0) || meanQPS < 0 {
		return headerErr(40, "mean QPS %g is not a finite non-negative rate", meanQPS)
	}
	if math.IsNaN(serviceMean) || math.IsInf(serviceMean, 0) || serviceMean < 0 {
		return headerErr(48, "service mean %g is not a finite non-negative time", serviceMean)
	}
	conns := le.Uint32(h[56:60])
	if conns == 0 || conns > math.MaxInt32 {
		return headerErr(56, "connection count %d outside [1, %d]", conns, math.MaxInt32)
	}
	mem := le.Uint32(h[60:64])
	if mem > math.MaxInt32 {
		return headerErr(60, "mem-access count %d overflows int", mem)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(r.br, name); err != nil {
		return headerErr(headerSize, "truncated name (declared %d bytes): %v", nameLen, err)
	}
	r.hdr = Header{
		Name:        string(name),
		Count:       count,
		FirstTS:     sim.Time(first),
		LastTS:      sim.Time(last),
		MeanQPS:     meanQPS,
		ServiceMean: serviceMean,
		Connections: int(conns),
		MemAccesses: int(mem),
		CRC:         le.Uint64(h[64:72]),
	}
	r.dataOff = int64(headerSize) + int64(nameLen)
	return nil
}

// Header returns the validated header.
func (r *Reader) Header() Header { return r.hdr }

// Read returns how many records have been consumed since the last
// Rewind (or construction).
func (r *Reader) Read() uint64 { return r.read }

// offset returns the byte offset of the next (unconsumed) record.
//
//apcvet:noalloc
func (r *Reader) offset() int64 { return r.dataOff + int64(r.read)*RecordSize }

// Peek decodes the next record without consuming it. At the end of the
// stream it verifies the count, the checksum and that no trailing
// bytes follow, then returns io.EOF (and keeps returning it). Any
// malformation returns a located *FormatError.
//
//apcvet:noalloc
func (r *Reader) Peek() (Record, error) {
	if r.done {
		return Record{}, io.EOF
	}
	if r.read == r.hdr.Count {
		return Record{}, r.finish() //apcvet:alloc end-of-stream verification: once per trace, not per record
	}
	buf, err := r.br.Peek(RecordSize)
	if err != nil {
		//apcvet:alloc cold error path: a truncated trace aborts the run
		return Record{}, recordErr(r.offset(), int64(r.read), "truncated record (%d of %d declared): %v", r.read, r.hdr.Count, err)
	}
	rec, err := r.decode(buf)
	if err != nil {
		return Record{}, err
	}
	return rec, nil
}

// Next consumes and returns the next record, folding its bytes into
// the incremental checksum. Errors are exactly Peek's.
//
//apcvet:noalloc
func (r *Reader) Next() (Record, error) {
	rec, err := r.Peek()
	if err != nil {
		return Record{}, err
	}
	buf, _ := r.br.Peek(RecordSize) // cannot fail: Peek above succeeded
	r.crc = crc64.Update(r.crc, crcTable, buf)
	if _, err := r.br.Discard(RecordSize); err != nil {
		//apcvet:alloc cold error path: a corrupt trace aborts the run
		return Record{}, recordErr(r.offset(), int64(r.read), "discard: %v", err)
	}
	r.prevTS = rec.TS
	r.read++
	return rec, nil
}

// decode validates one record's fields against the header and the
// ordering contract.
//
//apcvet:noalloc
func (r *Reader) decode(buf []byte) (Record, error) {
	le := binary.LittleEndian
	off, idx := r.offset(), int64(r.read)
	ts := le.Uint64(buf[0:8])
	if !validTS(ts) {
		//apcvet:alloc cold error path: a corrupt trace aborts the run
		return Record{}, recordErr(off, idx, "timestamp does not fit a signed time")
	}
	svc := le.Uint64(buf[8:16])
	if !validTS(svc) {
		//apcvet:alloc cold error path: a corrupt trace aborts the run
		return Record{}, recordErr(off+8, idx, "service time does not fit a signed duration")
	}
	rec := Record{
		TS:      sim.Time(ts),
		Service: sim.Duration(svc),
		Conn:    le.Uint32(buf[16:20]),
		Mem:     le.Uint32(buf[20:24]),
	}
	if r.read == 0 {
		if rec.TS != r.hdr.FirstTS {
			//apcvet:alloc cold error path: a corrupt trace aborts the run
			return Record{}, recordErr(off, idx, "first timestamp %d != header first %d", rec.TS, r.hdr.FirstTS)
		}
	} else if rec.TS < r.prevTS {
		//apcvet:alloc cold error path: a corrupt trace aborts the run
		return Record{}, recordErr(off, idx, "timestamp %d before predecessor %d — records must be ordered", rec.TS, r.prevTS)
	}
	if rec.TS > r.hdr.LastTS {
		//apcvet:alloc cold error path: a corrupt trace aborts the run
		return Record{}, recordErr(off, idx, "timestamp %d after header last %d", rec.TS, r.hdr.LastTS)
	}
	if int64(rec.Conn) >= int64(r.hdr.Connections) {
		//apcvet:alloc cold error path: a corrupt trace aborts the run
		return Record{}, recordErr(off+16, idx, "connection %d outside the header's %d", rec.Conn, r.hdr.Connections)
	}
	return rec, nil
}

// finish runs the end-of-stream verification: the declared count was
// consumed, the checksum matches, the last timestamp matches the
// header, and nothing trails the records.
func (r *Reader) finish() error {
	off := r.offset()
	if r.read > 0 && r.prevTS != r.hdr.LastTS {
		return recordErr(off, int64(r.read)-1, "last timestamp %d != header last %d", r.prevTS, r.hdr.LastTS)
	}
	if r.crc != r.hdr.CRC {
		return recordErr(off, int64(r.read)-1, "checksum %#x != header %#x — corrupt records", r.crc, r.hdr.CRC)
	}
	if _, err := r.br.ReadByte(); err != io.EOF {
		if err != nil {
			return recordErr(off, int64(r.read), "read past records: %v", err)
		}
		return recordErr(off, int64(r.read), "trailing bytes after the declared %d records", r.hdr.Count)
	}
	r.done = true
	return io.EOF
}

// Rewind repositions the stream at record 0 and resets the incremental
// verification state, reusing the bufio window. Looping replay and
// sweep-point reuse call it; the rewound reader is indistinguishable
// from a fresh NewReader on the same source.
func (r *Reader) Rewind() error {
	if _, err := r.src.Seek(r.dataOff, io.SeekStart); err != nil {
		return err
	}
	r.br.Reset(r.src)
	r.read, r.crc, r.prevTS, r.done = 0, 0, 0, false
	return nil
}

// Decode parses a complete in-memory trace: header plus every record,
// with the same validation the streaming reader applies (including the
// final checksum/trailing-byte check). It is the convenience entry the
// fuzz target and the dump tool drive.
func Decode(data []byte) (Header, []Record, error) {
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		return Header{}, nil, err
	}
	var recs []Record
	if r.hdr.Count > 0 && r.hdr.Count < 1<<20 {
		recs = make([]Record, 0, r.hdr.Count)
	}
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return r.hdr, recs, nil
		}
		if err != nil {
			return r.hdr, recs, err
		}
		recs = append(recs, rec)
	}
}
