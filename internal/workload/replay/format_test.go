package replay

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"

	"agilepkgc/internal/sim"
)

var testMeta = Meta{
	Name:        "unit-trace",
	MeanQPS:     12345.5,
	ServiceMean: 16e-6,
	Connections: 8,
	MemAccesses: 4,
}

// buildTrace writes the records into an in-memory trace and returns its
// bytes plus the completed header.
func buildTrace(t *testing.T, meta Meta, recs []Record) ([]byte, Header) {
	t.Helper()
	var buf MemBuffer
	w, err := NewWriter(&buf, meta)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	for i, rec := range recs {
		if err := w.Append(rec); err != nil {
			t.Fatalf("Append record %d: %v", i, err)
		}
	}
	hdr, err := w.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	return buf.Bytes(), hdr
}

// testRecords exercises the interesting shapes: a zero first timestamp,
// equal timestamps (tie-break territory) and a gap.
func testRecords() []Record {
	return []Record{
		{TS: 0, Service: 16 * sim.Microsecond, Conn: 0, Mem: 4},
		{TS: 10 * sim.Microsecond, Service: 12 * sim.Microsecond, Conn: 3, Mem: 4},
		{TS: 10 * sim.Microsecond, Service: 50 * sim.Microsecond, Conn: 7, Mem: 4},
		{TS: 500 * sim.Microsecond, Service: 9 * sim.Microsecond, Conn: 1, Mem: 4},
	}
}

func TestWriterReaderRoundTrip(t *testing.T) {
	recs := testRecords()
	data, hdr := buildTrace(t, testMeta, recs)

	if hdr.Name != testMeta.Name || hdr.Count != uint64(len(recs)) ||
		hdr.FirstTS != recs[0].TS || hdr.LastTS != recs[len(recs)-1].TS ||
		hdr.MeanQPS != testMeta.MeanQPS || hdr.ServiceMean != testMeta.ServiceMean ||
		hdr.Connections != testMeta.Connections || hdr.MemAccesses != testMeta.MemAccesses {
		t.Fatalf("writer header %+v does not reflect meta %+v and records", hdr, testMeta)
	}

	gotHdr, gotRecs, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if gotHdr != hdr {
		t.Errorf("decoded header %+v != written %+v", gotHdr, hdr)
	}
	if len(gotRecs) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(gotRecs), len(recs))
	}
	for i := range recs {
		if gotRecs[i] != recs[i] {
			t.Errorf("record %d: got %+v want %+v", i, gotRecs[i], recs[i])
		}
	}
}

func TestReaderRewind(t *testing.T) {
	data, _ := buildTrace(t, testMeta, testRecords())
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	drain := func() []Record {
		var out []Record
		for {
			rec, err := r.Next()
			if err == io.EOF {
				return out
			}
			if err != nil {
				t.Fatalf("Next: %v", err)
			}
			out = append(out, rec)
		}
	}
	first := drain()
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("Next after EOF = %v, want io.EOF", err)
	}
	if err := r.Rewind(); err != nil {
		t.Fatalf("Rewind: %v", err)
	}
	if r.Read() != 0 {
		t.Fatalf("Read() after Rewind = %d, want 0", r.Read())
	}
	second := drain()
	if len(first) != len(second) {
		t.Fatalf("rewound read returned %d records, want %d", len(second), len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("record %d changed across Rewind: %+v vs %+v", i, first[i], second[i])
		}
	}
}

func TestWriterRejects(t *testing.T) {
	var buf MemBuffer
	if _, err := NewWriter(&buf, Meta{Name: "", Connections: 1}); err == nil {
		t.Error("NewWriter accepted an empty name")
	}
	if _, err := NewWriter(&buf, Meta{Name: strings.Repeat("x", maxNameLen+1), Connections: 1}); err == nil {
		t.Error("NewWriter accepted an oversized name")
	}
	if _, err := NewWriter(&buf, Meta{Name: "x", Connections: 0}); err == nil {
		t.Error("NewWriter accepted zero connections")
	}
	if _, err := NewWriter(&buf, Meta{Name: "x", Connections: 1, MemAccesses: -1}); err == nil {
		t.Error("NewWriter accepted negative mem accesses")
	}

	w, err := NewWriter(&MemBuffer{}, testMeta)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Record{TS: -1}); err == nil {
		t.Error("Append accepted a negative timestamp")
	}
	if err := w.Append(Record{TS: 10, Service: -1}); err == nil {
		t.Error("Append accepted a negative service time")
	}
	if err := w.Append(Record{TS: 10}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := w.Append(Record{TS: 9}); err == nil {
		t.Error("Append accepted an out-of-order timestamp")
	}
	if _, err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := w.Append(Record{TS: 11}); err == nil {
		t.Error("Append succeeded on a closed writer")
	}
	if _, err := w.Close(); err == nil {
		t.Error("double Close succeeded")
	}
}

// corrupt returns a copy of data with the byte at off XORed.
func corrupt(data []byte, off int, bit byte) []byte {
	out := append([]byte(nil), data...)
	out[off] ^= bit
	return out
}

// patchU64 returns a copy with a little-endian u64 overwritten at off.
func patchU64(data []byte, off int, v uint64) []byte {
	out := append([]byte(nil), data...)
	binary.LittleEndian.PutUint64(out[off:], v)
	return out
}

// TestDecodeRejectsCorruption is the decoder's failure-mode table:
// every class of malformation FuzzTraceDecode probes randomly is pinned
// here deterministically, with the located record index checked — a
// header failure reports record −1, a record failure reports which one.
func TestDecodeRejectsCorruption(t *testing.T) {
	data, hdr := buildTrace(t, testMeta, testRecords())
	nameLen := len(testMeta.Name)
	recOff := func(i int) int { return headerSize + nameLen + i*RecordSize }

	cases := []struct {
		name    string
		data    []byte
		record  int64 // expected FormatError.Record
		msgPart string
	}{
		{"empty file", nil, -1, "truncated header"},
		{"truncated header", data[:40], -1, "truncated header"},
		{"bad magic", corrupt(data, 0, 0xff), -1, "bad magic"},
		{"bad version", corrupt(data, 8, 0xff), -1, "version"},
		{"zero name length", patchU64(data, 12, uint64(binary.LittleEndian.Uint32(data[16:24]))<<32), -1, "name length"},
		{"name length lie", corrupt(data, 14, 0x7f), -1, "name length"},
		{"truncated name", data[:headerSize+2], -1, "truncated name"},
		{"count overdeclared", patchU64(data, 16, hdr.Count+1), 4, "truncated record"},
		{"count underdeclared", patchU64(data, 16, hdr.Count-1), int64(hdr.Count) - 2, "last timestamp"},
		{"timestamp range inverted", patchU64(data, 24, uint64(hdr.LastTS)+1), -1, "before first"},
		{"negative first timestamp", patchU64(data, 24, 1<<63), -1, "signed time"},
		{"nan mean qps", patchU64(data, 40, 0x7ff8000000000001), -1, "mean QPS"},
		{"zero connections", patchU64(data, 56, uint64(binary.LittleEndian.Uint32(data[60:64]))<<32), -1, "connection count"},
		{"record timestamp out of order", patchU64(data, recOff(3), 5000), 3, "before predecessor"},
		{"record timestamp negative", patchU64(data, recOff(1), 1<<63), 1, "signed time"},
		{"record past header last", patchU64(data, recOff(3), uint64(hdr.LastTS)+1), 3, "after header last"},
		{"first record != header first", patchU64(data, recOff(0), 5), 0, "header first"},
		{"connection out of range", corrupt(data, recOff(1)+16, 0x80), 1, "connection"},
		{"service corrupted (crc)", corrupt(data, recOff(2)+8, 0x01), int64(hdr.Count) - 1, "checksum"},
		{"trailing bytes", append(append([]byte(nil), data...), 0xAA), int64(hdr.Count), "trailing bytes"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, _, err := Decode(c.data)
			if err == nil {
				t.Fatal("Decode accepted the corruption")
			}
			var fe *FormatError
			if !errors.As(err, &fe) {
				t.Fatalf("error %v is not a *FormatError", err)
			}
			if fe.Record != c.record {
				t.Errorf("located record %d, want %d (err: %v)", fe.Record, c.record, err)
			}
			if !strings.Contains(err.Error(), c.msgPart) {
				t.Errorf("error %q does not mention %q", err, c.msgPart)
			}
		})
	}
}

func TestDecodeEmptyTrace(t *testing.T) {
	data, hdr := buildTrace(t, testMeta, nil)
	gotHdr, recs, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if gotHdr != hdr || hdr.Count != 0 || len(recs) != 0 {
		t.Errorf("empty trace decoded to %+v with %d records", gotHdr, len(recs))
	}
}

func TestMemBufferSeek(t *testing.T) {
	var b MemBuffer
	if _, err := b.Write([]byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	if pos, _ := b.Seek(2, io.SeekStart); pos != 2 {
		t.Errorf("SeekStart pos %d", pos)
	}
	if pos, _ := b.Seek(3, io.SeekCurrent); pos != 5 {
		t.Errorf("SeekCurrent pos %d", pos)
	}
	if pos, _ := b.Seek(-1, io.SeekEnd); pos != 9 {
		t.Errorf("SeekEnd pos %d", pos)
	}
	var p [1]byte
	if _, err := b.Read(p[:]); err != nil || p[0] != '9' {
		t.Errorf("Read after seek = %q, %v", p[0], err)
	}
	if _, err := b.Seek(-1, io.SeekStart); err == nil {
		t.Error("negative seek accepted")
	}
	if _, err := b.Seek(0, 99); err == nil {
		t.Error("bad whence accepted")
	}
	// Overwrite in the middle, then extend past the end.
	if _, err := b.Seek(8, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Write([]byte("abcd")); err != nil {
		t.Fatal(err)
	}
	if got := string(b.Bytes()); got != "01234567abcd" {
		t.Errorf("buffer = %q", got)
	}
}

// TestHeaderSpecPanics pins the trace-backed spec's guard rails: the
// placeholder distributions expose the recorded means but refuse to be
// sampled, so a trace spec can never silently feed the synthetic
// generator.
func TestHeaderSpecPanics(t *testing.T) {
	_, hdr := buildTrace(t, testMeta, testRecords())
	spec := hdr.Spec()
	if spec.MeanQPS() != testMeta.MeanQPS || spec.Service.Mean() != testMeta.ServiceMean {
		t.Errorf("trace spec means %g/%g do not match header %g/%g",
			spec.MeanQPS(), spec.Service.Mean(), testMeta.MeanQPS, testMeta.ServiceMean)
	}
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	expectPanic("Arrivals.NextGap", func() { spec.Arrivals.NextGap(nil) })
	expectPanic("Service.Sample", func() { spec.Service.Sample(nil) })
}
