// Package replay records and replays arrival traces: the bridge from
// "reproduces the paper's figures on synthetic arrival processes" to
// "predicts PC1A residency and tail latency for a recorded production
// day". A trace is a compact fixed-width binary stream — one 24-byte
// record per arrival (timestamp, service demand, connection, memory
// accesses) behind a versioned header carrying the record count, the
// source workload's identity (name, mean rate, mean service time) and a
// CRC64 checksum — read back by a buffered streaming Reader that never
// holds more than one bufio window in memory, and driven into a fleet
// by Replay, a workload.Source whose steady-state read path allocates
// nothing.
//
// # Determinism and the parity contract
//
// Records store absolute trace-stream timestamps, and equal timestamps
// replay in record order (the engine's FIFO same-instant ordering —
// records are scheduled in file order, so index order is arrival
// order). Replay maps stream time onto engine time with a per-window
// offset recomputed at every Start, which excises the engine's drain
// gaps from the stream timeline; a trace synthesized by Synthesize
// through the same warmup/measurement window split therefore replays
// byte-identically to running the synthetic generator directly
// (TestReplayMatchesSynthetic locks report and CSV bytes).
//
// See DESIGN.md §10 for the full format specification and the
// determinism/tie-break contract.
package replay

import (
	"fmt"
	"hash/crc64"
	"math"

	"agilepkgc/internal/sim"
	"agilepkgc/internal/stats"
	"agilepkgc/internal/workload"
)

// Format constants. All multi-byte fields are little-endian.
const (
	// Magic opens every trace file.
	Magic = "APCTRACE"
	// Version is the current format version.
	Version = 1
	// headerSize is the fixed portion of the header: magic(8) version(4)
	// nameLen(4) count(8) firstTS(8) lastTS(8) meanQPS(8) serviceMean(8)
	// connections(4) memAccesses(4) crc(8). The workload name (nameLen
	// bytes of UTF-8) follows immediately; records start at
	// headerSize+nameLen.
	headerSize = 72
	// RecordSize is one arrival record: ts(8) service(8) conn(4) mem(4).
	RecordSize = 24
	// maxNameLen bounds the variable-length name so a corrupt length
	// field cannot demand an absurd allocation (the "length-field lie"
	// failure mode FuzzTraceDecode exercises).
	maxNameLen = 4096
)

// crcTable is the CRC64-ECMA table every writer and reader shares; the
// checksum covers the record bytes (not the header).
var crcTable = crc64.MakeTable(crc64.ECMA)

// Header describes one trace: the stream's shape plus the identity of
// the workload that produced it, carried so a replayed fleet derives
// the same packing caps and prints the same report fields (workload
// name, offered QPS) as the synthetic run the trace was recorded from.
type Header struct {
	// Name is the workload name reports print (e.g. "memcached-20000qps").
	Name string
	// Count is the number of records.
	Count uint64
	// FirstTS and LastTS are the first and last record timestamps
	// (stream time, nanoseconds). Looping replay uses LastTS as the
	// wrap period.
	FirstTS sim.Time
	LastTS  sim.Time
	// MeanQPS and ServiceMean are the source workload's long-run arrival
	// rate (requests/second) and mean service time (seconds), stored as
	// exact float64 bits so a trace-backed Spec reproduces the synthetic
	// spec's derived values (packing caps, offered-QPS report fields)
	// bit for bit.
	MeanQPS     float64
	ServiceMean float64
	// Connections and MemAccesses mirror workload.Spec.
	Connections int
	MemAccesses int
	// CRC is the CRC64-ECMA of the record bytes.
	CRC uint64
}

// Record is one arrival: its stream timestamp, service demand and the
// per-request fields workload.Request carries.
type Record struct {
	// TS is the arrival instant in stream time (nanoseconds). Records
	// are ordered by TS; equal timestamps keep file order.
	TS sim.Time
	// Service is the application service time at nominal frequency.
	Service sim.Duration
	// Conn identifies the client connection (dispatch pinning).
	Conn uint32
	// Mem is the request's DRAM transaction count.
	Mem uint32
}

// FormatError locates a malformed trace: the byte offset of the failing
// field, the record index it belongs to (−1 for header errors) and what
// was wrong. The decoder returns it for every failure mode — truncation,
// corrupt checksums, out-of-order timestamps, length-field lies — and
// never panics or reads past the failing field.
type FormatError struct {
	// Offset is the file byte offset of the failing field.
	Offset int64
	// Record is the index of the record holding it, −1 in the header.
	Record int64
	// Msg says what was wrong.
	Msg string
}

func (e *FormatError) Error() string {
	if e.Record < 0 {
		return fmt.Sprintf("trace: header (byte %d): %s", e.Offset, e.Msg)
	}
	return fmt.Sprintf("trace: record %d (byte %d): %s", e.Record, e.Offset, e.Msg)
}

// headerErr and recordErr build located errors.
func headerErr(off int64, format string, args ...any) *FormatError {
	return &FormatError{Offset: off, Record: -1, Msg: fmt.Sprintf(format, args...)}
}

func recordErr(off, rec int64, format string, args ...any) *FormatError {
	return &FormatError{Offset: off, Record: rec, Msg: fmt.Sprintf(format, args...)}
}

// Spec returns the trace-backed workload description: same name, rate,
// mean service time, connection and memory-access counts as the spec
// the trace was recorded from, with placeholder distributions that
// carry the recorded means but cannot be sampled (replay reads demands
// from the records, never from an RNG). Everything the fleet derives
// from a spec — packing caps via Service.Mean(), report fields via
// MeanQPS() — is a pure function of these stored bits, which is what
// makes a replayed fleet's configuration identical to the synthetic
// run's.
func (h Header) Spec() workload.Spec {
	return workload.Spec{
		Name:        h.Name,
		Arrivals:    traceArrivals{rate: h.MeanQPS},
		Service:     traceService{mean: h.ServiceMean},
		Connections: h.Connections,
		MemAccesses: h.MemAccesses,
	}
}

// traceArrivals is the arrival-process placeholder of a trace-backed
// spec: it knows the recorded long-run rate and nothing else. Replay
// never draws gaps — NextGap panicking loudly is the guard against a
// trace spec leaking into the synthetic generator.
type traceArrivals struct{ rate float64 }

func (a traceArrivals) NextGap(*stats.RNG) float64 {
	panic("replay: trace-backed spec cannot generate synthetic arrivals")
}
func (a traceArrivals) Rate() float64  { return a.rate }
func (a traceArrivals) String() string { return fmt.Sprintf("trace(%g/s)", a.rate) }

// traceService is the service-distribution placeholder: mean only.
type traceService struct{ mean float64 }

func (d traceService) Sample(*stats.RNG) float64 {
	panic("replay: trace-backed spec cannot sample service times")
}
func (d traceService) Mean() float64  { return d.mean }
func (d traceService) String() string { return fmt.Sprintf("trace(mean=%g)", d.mean) }

// validTS rejects u64 timestamp/duration fields whose value cannot be a
// sim.Time (negative after the int64 conversion).
//
//apcvet:noalloc
func validTS(v uint64) bool { return v <= math.MaxInt64 }
