package replay

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"
	"math"

	"agilepkgc/internal/sim"
)

// Meta is the workload identity a Writer stamps into the header. The
// stream-derived fields (count, first/last timestamp, checksum) are
// computed while records are appended and written at Close.
type Meta struct {
	Name        string
	MeanQPS     float64
	ServiceMean float64
	Connections int
	MemAccesses int
}

// Writer streams records into a trace file: a placeholder header goes
// out first so records append behind it without buffering the file, and
// Close seeks back to stamp the final count, timestamp range and
// checksum. The destination must therefore support seeking (os.File
// and MemBuffer both do).
type Writer struct {
	ws     io.WriteSeeker
	bw     *bufio.Writer
	meta   Meta
	count  uint64
	first  sim.Time
	last   sim.Time
	crc    uint64
	buf    [RecordSize]byte
	closed bool
}

// NewWriter writes the provisional header and returns a writer ready
// for Append. The meta fields must be coherent (non-empty name within
// the length bound, positive connection count) — they become the
// replayed fleet's spec.
func NewWriter(ws io.WriteSeeker, meta Meta) (*Writer, error) {
	if meta.Name == "" {
		return nil, fmt.Errorf("replay: trace needs a workload name")
	}
	if len(meta.Name) > maxNameLen {
		return nil, fmt.Errorf("replay: workload name longer than %d bytes", maxNameLen)
	}
	if meta.Connections < 1 {
		return nil, fmt.Errorf("replay: trace needs connections >= 1")
	}
	if meta.MemAccesses < 0 {
		return nil, fmt.Errorf("replay: negative mem accesses")
	}
	w := &Writer{ws: ws, bw: bufio.NewWriter(ws), meta: meta}
	if err := w.writeHeader(); err != nil {
		return nil, err
	}
	return w, nil
}

// writeHeader emits the header with the current stream-derived fields.
func (w *Writer) writeHeader() error {
	var h [headerSize]byte
	copy(h[0:8], Magic)
	le := binary.LittleEndian
	le.PutUint32(h[8:12], Version)
	le.PutUint32(h[12:16], uint32(len(w.meta.Name)))
	le.PutUint64(h[16:24], w.count)
	le.PutUint64(h[24:32], uint64(w.first))
	le.PutUint64(h[32:40], uint64(w.last))
	le.PutUint64(h[40:48], math.Float64bits(w.meta.MeanQPS))
	le.PutUint64(h[48:56], math.Float64bits(w.meta.ServiceMean))
	le.PutUint32(h[56:60], uint32(w.meta.Connections))
	le.PutUint32(h[60:64], uint32(w.meta.MemAccesses))
	le.PutUint64(h[64:72], w.crc)
	if _, err := w.bw.Write(h[:]); err != nil {
		return err
	}
	_, err := w.bw.WriteString(w.meta.Name)
	return err
}

// Append adds one record. Timestamps must be non-decreasing and
// non-negative — the reader enforces the same ordering, so a writer
// that breaks it would produce a file its own reader rejects.
func (w *Writer) Append(rec Record) error {
	if w.closed {
		return fmt.Errorf("replay: Append on closed writer")
	}
	if rec.TS < 0 || rec.Service < 0 {
		return fmt.Errorf("replay: negative timestamp or service time in record %d", w.count)
	}
	if w.count > 0 && rec.TS < w.last {
		return fmt.Errorf("replay: record %d timestamp %d before predecessor %d", w.count, rec.TS, w.last)
	}
	le := binary.LittleEndian
	le.PutUint64(w.buf[0:8], uint64(rec.TS))
	le.PutUint64(w.buf[8:16], uint64(rec.Service))
	le.PutUint32(w.buf[16:20], rec.Conn)
	le.PutUint32(w.buf[20:24], rec.Mem)
	if _, err := w.bw.Write(w.buf[:]); err != nil {
		return err
	}
	w.crc = crc64.Update(w.crc, crcTable, w.buf[:])
	if w.count == 0 {
		w.first = rec.TS
	}
	w.last = rec.TS
	w.count++
	return nil
}

// Count returns how many records have been appended.
func (w *Writer) Count() uint64 { return w.count }

// Close flushes the records, rewrites the header with the final count,
// timestamp range and checksum, and returns the completed header.
func (w *Writer) Close() (Header, error) {
	if w.closed {
		return Header{}, fmt.Errorf("replay: double Close")
	}
	w.closed = true
	if err := w.bw.Flush(); err != nil {
		return Header{}, err
	}
	if _, err := w.ws.Seek(0, io.SeekStart); err != nil {
		return Header{}, err
	}
	w.bw.Reset(w.ws)
	if err := w.writeHeader(); err != nil {
		return Header{}, err
	}
	if err := w.bw.Flush(); err != nil {
		return Header{}, err
	}
	// Leave the cursor after the last record so appending destinations
	// (e.g. a file handed to another writer) are not surprised.
	end := int64(headerSize) + int64(len(w.meta.Name)) + int64(w.count)*RecordSize
	if _, err := w.ws.Seek(end, io.SeekStart); err != nil {
		return Header{}, err
	}
	return Header{
		Name:        w.meta.Name,
		Count:       w.count,
		FirstTS:     w.first,
		LastTS:      w.last,
		MeanQPS:     w.meta.MeanQPS,
		ServiceMean: w.meta.ServiceMean,
		Connections: w.meta.Connections,
		MemAccesses: w.meta.MemAccesses,
		CRC:         w.crc,
	}, nil
}

// MemBuffer is an in-memory io.WriteSeeker/io.ReadSeeker, the trace
// equivalent of bytes.Buffer for destinations that must support the
// writer's header rewrite: tests and the registered trace-replay
// experiment synthesize traces into one instead of touching disk.
type MemBuffer struct {
	buf []byte
	pos int64
}

// Write implements io.Writer at the current position, growing the
// buffer as needed.
func (b *MemBuffer) Write(p []byte) (int, error) {
	if need := b.pos + int64(len(p)); need > int64(len(b.buf)) {
		if need > int64(cap(b.buf)) {
			grown := make([]byte, need, max(need, int64(2*cap(b.buf))))
			copy(grown, b.buf)
			b.buf = grown
		} else {
			b.buf = b.buf[:need]
		}
	}
	copy(b.buf[b.pos:], p)
	b.pos += int64(len(p))
	return len(p), nil
}

// Read implements io.Reader from the current position.
func (b *MemBuffer) Read(p []byte) (int, error) {
	if b.pos >= int64(len(b.buf)) {
		return 0, io.EOF
	}
	n := copy(p, b.buf[b.pos:])
	b.pos += int64(n)
	return n, nil
}

// Seek implements io.Seeker.
func (b *MemBuffer) Seek(offset int64, whence int) (int64, error) {
	var abs int64
	switch whence {
	case io.SeekStart:
		abs = offset
	case io.SeekCurrent:
		abs = b.pos + offset
	case io.SeekEnd:
		abs = int64(len(b.buf)) + offset
	default:
		return 0, fmt.Errorf("replay: invalid seek whence %d", whence)
	}
	if abs < 0 {
		return 0, fmt.Errorf("replay: negative seek position %d", abs)
	}
	b.pos = abs
	return abs, nil
}

// Bytes returns the written trace.
func (b *MemBuffer) Bytes() []byte { return b.buf }
