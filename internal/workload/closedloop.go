package workload

import (
	"fmt"

	"agilepkgc/internal/sim"
	"agilepkgc/internal/stats"
)

// ClosedLoopClient models a fixed population of synchronous client
// threads (sysbench threads, one mutilate connection in closed mode):
// each thread issues a request, waits for the response, thinks for a
// sampled delay, and repeats. Unlike the open-loop Generator, offered
// load self-throttles under server slowdown — the behaviour that
// distinguishes benchmark harnesses from production traffic.
//
// The server side signals completion by calling the Done function passed
// with each request.
type ClosedLoopClient struct {
	eng     *sim.Engine
	rng     *stats.RNG
	service stats.Dist
	think   stats.Dist
	threads int
	memAcc  int

	sink func(*Request, func())

	nextID    uint64
	completed uint64
	stopped   bool
}

// NewClosedLoopClient builds a client with the given thread count. sink
// receives each request plus a completion callback the server must call
// when the response is sent.
func NewClosedLoopClient(eng *sim.Engine, threads int, service, think stats.Dist,
	memAccesses int, seed uint64, sink func(*Request, func())) *ClosedLoopClient {
	if sink == nil {
		panic("workload: nil sink")
	}
	if threads <= 0 {
		panic("workload: non-positive thread count")
	}
	return &ClosedLoopClient{
		eng:     eng,
		rng:     stats.NewRNG(seed),
		service: service,
		think:   think,
		threads: threads,
		memAcc:  memAccesses,
		sink:    sink,
	}
}

// Start launches every thread with an initial desynchronizing think.
func (c *ClosedLoopClient) Start() {
	for i := 0; i < c.threads; i++ {
		conn := i
		c.eng.Schedule(c.sampleThink(), func() { c.issue(conn) })
	}
}

// Stop prevents threads from issuing further requests after their
// current one completes.
func (c *ClosedLoopClient) Stop() { c.stopped = true }

// Completed returns the number of finished requests.
func (c *ClosedLoopClient) Completed() uint64 { return c.completed }

// Issued returns the number of issued requests.
func (c *ClosedLoopClient) Issued() uint64 { return c.nextID }

func (c *ClosedLoopClient) sampleThink() sim.Duration {
	d := sim.Duration(c.think.Sample(c.rng) * float64(sim.Second))
	if d < 0 {
		d = 0
	}
	return d
}

func (c *ClosedLoopClient) issue(conn int) {
	if c.stopped {
		return
	}
	req := &Request{
		ID:          c.nextID,
		Arrival:     c.eng.Now(),
		Service:     sim.Duration(c.service.Sample(c.rng) * float64(sim.Second)),
		Conn:        conn,
		MemAccesses: c.memAcc,
	}
	c.nextID++
	c.sink(req, func() {
		c.completed++
		if c.stopped {
			return
		}
		c.eng.Schedule(c.sampleThink(), func() { c.issue(conn) })
	})
}

// String describes the client.
func (c *ClosedLoopClient) String() string {
	return fmt.Sprintf("closed-loop(%d threads, service %v, think %v)",
		c.threads, c.service, c.think)
}

// SysbenchOLTP returns a closed-loop MySQL client shaped like the
// paper's sysbench setup: `threads` synchronous connections running the
// OLTP mix with a think time that sets the offered load.
func SysbenchOLTP(eng *sim.Engine, threads int, thinkMean float64, seed uint64,
	sink func(*Request, func())) *ClosedLoopClient {
	service := stats.Mixture{
		Components: []stats.Dist{
			stats.LogNormal{MeanV: 60e-6, Sigma: 0.5},
			stats.LogNormal{MeanV: 300e-6, Sigma: 0.6},
		},
		Weights: []float64{0.7, 0.3},
	}
	return NewClosedLoopClient(eng, threads, service,
		stats.Exponential{MeanV: thinkMean}, 10, seed, sink)
}
