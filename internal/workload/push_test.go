package workload

import (
	"testing"

	"agilepkgc/internal/sim"
)

func TestPushSourceEmit(t *testing.T) {
	eng := sim.NewEngine()
	var got []*Request
	p := NewPushSource(eng, MySQL(0.1, 4), 3, func(r *Request) { got = append(got, r) })

	p.Start(sim.Second) // no-op; must not schedule anything
	if eng.Pending() != 0 {
		t.Fatalf("Start scheduled %d events, want 0", eng.Pending())
	}
	if id := p.Emit(7); id != 0 {
		t.Fatalf("first Emit ID = %d, want 0", id)
	}
	eng.Run(5 * sim.Microsecond)
	if next := p.Generated(); next != 1 {
		t.Fatalf("Generated = %d after one Emit", next)
	}
	if id := p.Emit(9); id != 1 {
		t.Fatalf("second Emit ID = %d, want 1", id)
	}
	if len(got) != 2 {
		t.Fatalf("sink saw %d requests, want 2", len(got))
	}
	if got[0].Conn != 7 || got[1].Conn != 9 {
		t.Errorf("connections not preserved: %d, %d", got[0].Conn, got[1].Conn)
	}
	if got[1].Arrival != 5*sim.Microsecond {
		t.Errorf("arrival %v, want the Emit instant 5µs", got[1].Arrival)
	}
	if got[0].Service <= 0 || got[0].MemAccesses == 0 {
		t.Errorf("service/mem not sampled from spec: %+v", got[0])
	}

	// Release pools the request for the next Emit.
	p.Release(got[0])
	before := got[0]
	p.Emit(1)
	if got[2] != before {
		t.Error("Emit did not reuse the released request")
	}

	// Reset rewinds the ID sequence and keeps the pool.
	p.Release(got[2])
	p.Reset(Memcached(100), 9)
	if p.Generated() != 0 {
		t.Errorf("Generated = %d after Reset, want 0", p.Generated())
	}
	if id := p.Emit(0); id != 0 {
		t.Errorf("post-Reset Emit ID = %d, want 0", id)
	}
}

func TestPushSourceNilSink(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil sink accepted")
		}
	}()
	NewPushSource(sim.NewEngine(), Memcached(1), 1, nil)
}
