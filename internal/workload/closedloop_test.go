package workload

import (
	"testing"

	"agilepkgc/internal/sim"
	"agilepkgc/internal/stats"
)

func TestClosedLoopBasics(t *testing.T) {
	eng := sim.NewEngine()
	var completions int
	cl := NewClosedLoopClient(eng, 4,
		stats.Deterministic{V: 10e-6}, stats.Deterministic{V: 90e-6},
		3, 1,
		func(r *Request, done func()) {
			// Serve instantly after the nominal service time.
			eng.Schedule(r.Service, func() {
				completions++
				done()
			})
		})
	cl.Start()
	eng.Run(10 * sim.Millisecond)
	// Each thread cycles every 100us → ~100 per thread in 10ms.
	if cl.Completed() < 350 || cl.Completed() > 450 {
		t.Fatalf("completed %d, want ~400", cl.Completed())
	}
	if cl.Issued() < cl.Completed() {
		t.Fatal("issued < completed")
	}
	if cl.String() == "" {
		t.Fatal("description empty")
	}
}

// Closed-loop self-throttling: if the server slows down, the offered
// load falls instead of queueing unboundedly — the defining property.
func TestClosedLoopSelfThrottles(t *testing.T) {
	run := func(serverDelay sim.Duration) uint64 {
		eng := sim.NewEngine()
		cl := NewClosedLoopClient(eng, 8,
			stats.Deterministic{V: 10e-6}, stats.Deterministic{V: 50e-6},
			0, 2,
			func(r *Request, done func()) {
				eng.Schedule(r.Service+serverDelay, done)
			})
		cl.Start()
		eng.Run(20 * sim.Millisecond)
		return cl.Completed()
	}
	fast := run(0)
	slow := run(500 * sim.Microsecond)
	if slow >= fast/4 {
		t.Fatalf("slow server completed %d, fast %d — expected strong throttling", slow, fast)
	}
}

func TestClosedLoopStop(t *testing.T) {
	eng := sim.NewEngine()
	cl := NewClosedLoopClient(eng, 2,
		stats.Deterministic{V: 5e-6}, stats.Deterministic{V: 5e-6},
		0, 3,
		func(r *Request, done func()) { eng.Schedule(r.Service, done) })
	cl.Start()
	eng.Run(sim.Millisecond)
	cl.Stop()
	at := cl.Issued()
	eng.Run(10 * sim.Millisecond)
	if cl.Issued() != at {
		t.Fatalf("requests issued after Stop: %d -> %d", at, cl.Issued())
	}
}

func TestClosedLoopConnStableAcrossThreads(t *testing.T) {
	eng := sim.NewEngine()
	conns := map[int]bool{}
	cl := NewClosedLoopClient(eng, 5,
		stats.Deterministic{V: 1e-6}, stats.Deterministic{V: 1e-6},
		0, 4,
		func(r *Request, done func()) {
			conns[r.Conn] = true
			eng.Schedule(r.Service, done)
		})
	cl.Start()
	eng.Run(sim.Millisecond)
	if len(conns) != 5 {
		t.Fatalf("saw %d connections, want 5 (one per thread)", len(conns))
	}
}

func TestClosedLoopPanics(t *testing.T) {
	eng := sim.NewEngine()
	for _, fn := range []func(){
		func() {
			NewClosedLoopClient(eng, 1, stats.Deterministic{V: 1}, stats.Deterministic{V: 1}, 0, 1, nil)
		},
		func() {
			NewClosedLoopClient(eng, 0, stats.Deterministic{V: 1}, stats.Deterministic{V: 1}, 0, 1,
				func(*Request, func()) {})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestSysbenchOLTPShape(t *testing.T) {
	eng := sim.NewEngine()
	var svc stats.Summary
	cl := SysbenchOLTP(eng, 16, 1e-3, 5, func(r *Request, done func()) {
		svc.Add(float64(r.Service) / float64(sim.Second))
		if r.MemAccesses != 10 {
			t.Fatal("OLTP mem accesses wrong")
		}
		eng.Schedule(r.Service, done)
	})
	cl.Start()
	eng.Run(200 * sim.Millisecond)
	// OLTP mix mean ≈ 132us.
	if svc.Mean() < 100e-6 || svc.Mean() > 170e-6 {
		t.Fatalf("service mean %v, want ~132us", svc.Mean())
	}
	// 16 threads × ~1/(1ms+132us) ≈ 14.1k/s → ~2800 in 200ms.
	if cl.Completed() < 2200 || cl.Completed() > 3400 {
		t.Fatalf("completed %d, want ~2800", cl.Completed())
	}
}
