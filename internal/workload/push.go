package workload

import (
	"agilepkgc/internal/sim"
	"agilepkgc/internal/stats"
)

// PushSource is a Source whose arrivals are driven by the caller rather
// than by an arrival process: each Emit injects one request into the
// sink at the current engine time. It is the miss-stream seam of the
// service-graph layer (internal/cluster.Graph): a cache tier's misses
// call Emit on the backend tier's source, so backend arrivals are a
// *consequence* of upstream completions, not an independent stochastic
// process. The Spec still matters — Emit samples service times and
// memory accesses from it — only the Arrivals field is ignored (kept
// for rate bookkeeping and capacity derivation by the fleet).
//
// Start/Stop are window bookkeeping only: a PushSource has no pending
// arrival chain to start or cancel. Emission is legal at any time —
// misses discovered during a drain window still owe their backend work.
type PushSource struct {
	eng  *sim.Engine
	rng  *stats.RNG
	spec Spec
	sink func(*Request)

	nextID uint64
	free   []*Request
}

// NewPushSource builds a caller-driven source; sink receives each
// emitted request at the Emit instant.
func NewPushSource(eng *sim.Engine, spec Spec, seed uint64, sink func(*Request)) *PushSource {
	if sink == nil {
		panic("workload: nil sink")
	}
	return &PushSource{eng: eng, rng: stats.NewRNG(seed), spec: spec, sink: sink}
}

// Spec returns the source's workload description.
func (p *PushSource) Spec() Spec { return p.spec }

// Reset rewinds the source to its initial state under a (possibly new)
// spec and seed, keeping the request free list so a reused source emits
// without allocating from the first request on. Mirrors Generator.Reset.
func (p *PushSource) Reset(spec Spec, seed uint64) {
	p.rng = stats.NewRNG(seed)
	p.spec = spec
	p.nextID = 0
}

// Start is part of the Source contract; a push source has nothing to
// schedule.
func (p *PushSource) Start(until sim.Time) {}

// Stop is part of the Source contract; a push source has nothing to
// cancel.
func (p *PushSource) Stop() {}

// Generated returns how many requests have been emitted.
//
//apcvet:noalloc
func (p *PushSource) Generated() uint64 { return p.nextID }

// Emit injects one request into the sink at the current engine time on
// the given client connection, sampling the service time and memory
// accesses from the spec, and returns the request's ID. The sink may
// resolve (and Release) the request synchronously — shed under
// overload, for instance — so callers must use the returned ID, never
// the request pointer.
//
//apcvet:noalloc
func (p *PushSource) Emit(conn int) uint64 {
	svc := p.spec.Service.Sample(p.rng)
	var req *Request
	if n := len(p.free); n > 0 {
		req = p.free[n-1]
		p.free = p.free[:n-1]
	} else {
		req = new(Request) //apcvet:alloc pool miss: warm-up until the free list reaches steady-state depth
	}
	id := p.nextID
	*req = Request{
		ID:          id,
		Arrival:     p.eng.Now(),
		Service:     sim.Duration(svc * float64(sim.Second)),
		Conn:        conn,
		MemAccesses: p.spec.MemAccesses,
	}
	p.nextID++
	p.sink(req)
	return id
}

// Release hands a request back for reuse by a later Emit, making
// steady-state emission allocation-free.
//
//apcvet:poolput
//apcvet:noalloc
func (p *PushSource) Release(req *Request) {
	p.free = append(p.free, req)
}
