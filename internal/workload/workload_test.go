package workload

import (
	"math"
	"testing"

	"agilepkgc/internal/sim"
	"agilepkgc/internal/stats"
)

func TestMemcachedSpec(t *testing.T) {
	s := Memcached(50000)
	if s.MeanQPS() != 50000 {
		t.Fatalf("MeanQPS = %v", s.MeanQPS())
	}
	// ETC-style mean service ≈ 16 µs.
	if m := s.Service.Mean(); m < 14e-6 || m > 18e-6 {
		t.Fatalf("mean service %v, want ~16us", m)
	}
	// 50k QPS on 10 cores at ~16us ≈ 8% utilization.
	u := s.ExpectedUtilization(10)
	if u < 0.06 || u > 0.10 {
		t.Fatalf("utilization %v, want ~0.08", u)
	}
	if s.String() == "" || s.Name == "" {
		t.Fatal("descriptions empty")
	}
}

func TestKafkaAndMySQLLoadCalibration(t *testing.T) {
	for _, load := range []float64{0.08, 0.16, 0.42} {
		m := MySQL(load, 10)
		if u := m.ExpectedUtilization(10); math.Abs(u-load) > 0.005 {
			t.Errorf("MySQL(%v) utilization %v", load, u)
		}
	}
	for _, load := range []float64{0.08, 0.16} {
		k := Kafka(load, 10)
		if u := k.ExpectedUtilization(10); math.Abs(u-load) > 0.005 {
			t.Errorf("Kafka(%v) utilization %v", load, u)
		}
	}
}

func TestMemcachedBurstyIsBurstier(t *testing.T) {
	rng := stats.NewRNG(1)
	measure := func(p stats.ArrivalProcess) float64 {
		var s stats.Summary
		for i := 0; i < 50000; i++ {
			s.Add(p.NextGap(rng))
		}
		return s.Std() / s.Mean()
	}
	cvPoisson := measure(Memcached(10000).Arrivals)
	cvBursty := measure(MemcachedBursty(10000, 8).Arrivals)
	if cvBursty <= cvPoisson {
		t.Fatalf("bursty CV %v should exceed Poisson CV %v", cvBursty, cvPoisson)
	}
}

func TestGeneratorEmitsAtRate(t *testing.T) {
	eng := sim.NewEngine()
	var got []*Request
	g := NewGenerator(eng, Memcached(100000), 7, func(r *Request) { got = append(got, r) })
	g.Start(100 * sim.Millisecond)
	eng.Run(100 * sim.Millisecond)
	// Expect ~10000 requests ±5%.
	if n := len(got); n < 9500 || n > 10500 {
		t.Fatalf("generated %d requests in 100ms at 100k QPS, want ~10000", n)
	}
	if g.Generated() != uint64(len(got)) {
		t.Fatal("Generated() mismatch")
	}
}

func TestGeneratorRequestFields(t *testing.T) {
	eng := sim.NewEngine()
	spec := Memcached(50000)
	var reqs []*Request
	g := NewGenerator(eng, spec, 3, func(r *Request) { reqs = append(reqs, r) })
	g.Start(20 * sim.Millisecond)
	eng.Run(20 * sim.Millisecond)
	if len(reqs) == 0 {
		t.Fatal("no requests")
	}
	var lastID uint64
	connSeen := map[int]bool{}
	var svc stats.Summary
	for i, r := range reqs {
		if i > 0 && r.ID != lastID+1 {
			t.Fatal("IDs not sequential")
		}
		lastID = r.ID
		if r.Conn < 0 || r.Conn >= spec.Connections {
			t.Fatalf("conn %d out of range", r.Conn)
		}
		connSeen[r.Conn] = true
		if r.Service <= 0 {
			t.Fatal("non-positive service time")
		}
		if r.MemAccesses != spec.MemAccesses {
			t.Fatal("mem accesses wrong")
		}
		svc.Add(float64(r.Service))
	}
	if len(connSeen) < spec.Connections/2 {
		t.Fatalf("only %d distinct connections used", len(connSeen))
	}
	mean := svc.Mean() / float64(sim.Second)
	if math.Abs(mean-spec.Service.Mean())/spec.Service.Mean() > 0.1 {
		t.Fatalf("empirical mean service %v vs spec %v", mean, spec.Service.Mean())
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	run := func() []sim.Time {
		eng := sim.NewEngine()
		var at []sim.Time
		g := NewGenerator(eng, Memcached(20000), 42, func(r *Request) { at = append(at, r.Arrival) })
		g.Start(10 * sim.Millisecond)
		eng.Run(10 * sim.Millisecond)
		return at
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same-seed runs diverged")
		}
	}
}

func TestGeneratorStopsAtDeadline(t *testing.T) {
	eng := sim.NewEngine()
	var last sim.Time
	g := NewGenerator(eng, Memcached(100000), 5, func(r *Request) { last = r.Arrival })
	g.Start(5 * sim.Millisecond)
	eng.Run(50 * sim.Millisecond)
	if last >= 5*sim.Millisecond {
		t.Fatalf("request emitted at %v, after deadline", last)
	}
}

func TestGeneratorNilSinkPanics(t *testing.T) {
	eng := sim.NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("nil sink should panic")
		}
	}()
	NewGenerator(eng, Memcached(1000), 1, nil)
}

// Restarting a generator (warmup window then measurement window) must
// not leave two live arrival chains.
func TestGeneratorRestartNoDuplicates(t *testing.T) {
	eng := sim.NewEngine()
	count := 0
	g := NewGenerator(eng, Memcached(100000), 9, func(*Request) { count++ })
	g.Start(10 * sim.Millisecond)
	eng.Run(10 * sim.Millisecond)
	first := count
	g.Start(eng.Now() + 10*sim.Millisecond) // restart for a second window
	eng.Run(eng.Now() + 10*sim.Millisecond)
	second := count - first
	// Both windows are 10ms at 100k QPS: ~1000 each. A duplicated chain
	// would double the second window.
	if second > first*3/2 {
		t.Fatalf("second window emitted %d vs first %d — duplicated chain?", second, first)
	}
	if second < first/2 {
		t.Fatalf("second window emitted %d vs first %d — generator stalled", second, first)
	}
}

func TestGeneratorStop(t *testing.T) {
	eng := sim.NewEngine()
	count := 0
	g := NewGenerator(eng, Memcached(100000), 9, func(*Request) { count++ })
	g.Start(100 * sim.Millisecond)
	eng.Run(5 * sim.Millisecond)
	g.Stop()
	at := count
	eng.Run(50 * sim.Millisecond)
	if count != at {
		t.Fatalf("emissions after Stop: %d -> %d", at, count)
	}
}

func TestMemcachedAtUtil(t *testing.T) {
	for _, util := range []float64{0.05, 0.10, 0.20} {
		s := MemcachedAtUtil(util, 10)
		// Per-request core time constant folds service + kernel overhead;
		// spec-level utilization (service only) is necessarily below.
		implied := s.MeanQPS() * MemcachedPerRequestCoreTime / 10
		if math.Abs(implied-util) > 1e-9 {
			t.Errorf("util %v: implied %v", util, implied)
		}
	}
}
