package stats

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// RNG wraps math/rand/v2 with a fixed, reproducible seed so every
// simulation run is deterministic. Two RNGs created with the same seed
// produce identical streams.
type RNG struct {
	*rand.Rand
}

// NewRNG creates a deterministic generator from a seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))}
}

// Fork derives an independent child stream; successive calls yield
// distinct streams. It is used to give each core / link / generator its
// own RNG while keeping whole-run determinism.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64())
}

// Dist is a distribution over positive float64 values (typically seconds
// or nanoseconds of virtual time).
type Dist interface {
	// Sample draws one value using the provided RNG.
	Sample(r *RNG) float64
	// Mean returns the distribution's expected value.
	Mean() float64
	// String describes the distribution for experiment reports.
	String() string
}

// Deterministic is a point mass at V.
type Deterministic struct{ V float64 }

func (d Deterministic) Sample(*RNG) float64 { return d.V }
func (d Deterministic) Mean() float64       { return d.V }
func (d Deterministic) String() string      { return fmt.Sprintf("det(%g)", d.V) }

// Exponential has rate 1/MeanV.
type Exponential struct{ MeanV float64 }

func (d Exponential) Sample(r *RNG) float64 { return r.ExpFloat64() * d.MeanV }
func (d Exponential) Mean() float64         { return d.MeanV }
func (d Exponential) String() string        { return fmt.Sprintf("exp(mean=%g)", d.MeanV) }

// Uniform over [Lo, Hi).
type Uniform struct{ Lo, Hi float64 }

func (d Uniform) Sample(r *RNG) float64 { return d.Lo + r.Float64()*(d.Hi-d.Lo) }
func (d Uniform) Mean() float64         { return (d.Lo + d.Hi) / 2 }
func (d Uniform) String() string        { return fmt.Sprintf("uniform[%g,%g)", d.Lo, d.Hi) }

// LogNormal is parameterized by its *actual* mean and the sigma of the
// underlying normal, which is the natural way to express "service time
// averages 16 µs with moderate skew".
type LogNormal struct {
	MeanV float64 // E[X]
	Sigma float64 // stddev of log X
}

func (d LogNormal) mu() float64 { return math.Log(d.MeanV) - d.Sigma*d.Sigma/2 }

func (d LogNormal) Sample(r *RNG) float64 {
	return math.Exp(d.mu() + d.Sigma*r.NormFloat64())
}

func (d LogNormal) Mean() float64 { return d.MeanV }
func (d LogNormal) String() string {
	return fmt.Sprintf("lognormal(mean=%g,sigma=%g)", d.MeanV, d.Sigma)
}

// BoundedPareto is a Pareto distribution with shape Alpha truncated to
// [Lo, Hi]. Heavy-tailed service times (e.g. occasional large multigets
// or slow OLTP transactions) use it.
type BoundedPareto struct {
	Alpha  float64
	Lo, Hi float64
}

func (d BoundedPareto) Sample(r *RNG) float64 {
	// Inverse-CDF sampling for the truncated Pareto.
	u := r.Float64()
	la := math.Pow(d.Lo, d.Alpha)
	ha := math.Pow(d.Hi, d.Alpha)
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/d.Alpha)
}

func (d BoundedPareto) Mean() float64 {
	if d.Alpha == 1 {
		return d.Lo * d.Hi / (d.Hi - d.Lo) * math.Log(d.Hi/d.Lo)
	}
	a := d.Alpha
	la := math.Pow(d.Lo, a)
	return la / (1 - math.Pow(d.Lo/d.Hi, a)) * a / (a - 1) *
		(1/math.Pow(d.Lo, a-1) - 1/math.Pow(d.Hi, a-1))
}

func (d BoundedPareto) String() string {
	return fmt.Sprintf("pareto(a=%g,[%g,%g])", d.Alpha, d.Lo, d.Hi)
}

// Mixture draws from one of several component distributions with the
// given weights. Weights need not sum to one; they are normalized.
type Mixture struct {
	Components []Dist
	Weights    []float64
}

func (d Mixture) Sample(r *RNG) float64 {
	total := 0.0
	for _, w := range d.Weights {
		total += w
	}
	u := r.Float64() * total
	for i, w := range d.Weights {
		if u < w {
			return d.Components[i].Sample(r)
		}
		u -= w
	}
	return d.Components[len(d.Components)-1].Sample(r)
}

func (d Mixture) Mean() float64 {
	total, m := 0.0, 0.0
	for i, w := range d.Weights {
		total += w
		m += w * d.Components[i].Mean()
	}
	return m / total
}

func (d Mixture) String() string { return fmt.Sprintf("mixture(%d)", len(d.Components)) }

// Shifted adds a constant offset to another distribution (e.g. a fixed
// protocol-processing floor under a variable service body).
type Shifted struct {
	Base   Dist
	Offset float64
}

func (d Shifted) Sample(r *RNG) float64 { return d.Offset + d.Base.Sample(r) }
func (d Shifted) Mean() float64         { return d.Offset + d.Base.Mean() }
func (d Shifted) String() string        { return fmt.Sprintf("%v+%g", d.Base, d.Offset) }

// ArrivalProcess produces a stream of inter-arrival gaps. Implementations
// must be deterministic given the RNG stream.
type ArrivalProcess interface {
	// NextGap returns the time to the next arrival.
	NextGap(r *RNG) float64
	// Rate returns the long-run average arrival rate (events/second).
	Rate() float64
	String() string
}

// Poisson is a memoryless arrival process with the given rate.
type Poisson struct{ RateV float64 }

func (p Poisson) NextGap(r *RNG) float64 { return r.ExpFloat64() / p.RateV }
func (p Poisson) Rate() float64          { return p.RateV }
func (p Poisson) String() string         { return fmt.Sprintf("poisson(%g/s)", p.RateV) }

// MMPP2 is a two-state Markov-modulated Poisson process: a bursty arrival
// model that alternates between a high-rate and a low-rate phase with
// exponentially distributed phase durations. Datacenter request streams
// are well known to be bursty; mutilate's ETC reproduction exhibits
// exactly this on/off structure.
type MMPP2 struct {
	RateHigh, RateLow float64 // arrival rate in each phase
	MeanHigh, MeanLow float64 // mean phase durations (seconds)

	inHigh    bool
	phaseLeft float64
	init      bool
}

// NewMMPP2 builds a bursty process whose long-run rate equals rate, with
// burstiness b = RateHigh/RateLow and equal expected arrivals per phase.
func NewMMPP2(rate, burstiness, meanPhase float64) *MMPP2 {
	// Choose phase rates so that time-average rate is `rate` with equal
	// time in each phase.
	high := 2 * rate * burstiness / (1 + burstiness)
	low := 2 * rate / (1 + burstiness)
	return &MMPP2{RateHigh: high, RateLow: low, MeanHigh: meanPhase, MeanLow: meanPhase}
}

func (p *MMPP2) Rate() float64 {
	wh, wl := p.MeanHigh, p.MeanLow
	return (p.RateHigh*wh + p.RateLow*wl) / (wh + wl)
}

func (p *MMPP2) String() string {
	return fmt.Sprintf("mmpp2(high=%g/s low=%g/s)", p.RateHigh, p.RateLow)
}

// NextGap advances the modulating chain and returns the next gap.
func (p *MMPP2) NextGap(r *RNG) float64 {
	if !p.init {
		p.init = true
		p.inHigh = r.Float64() < 0.5
		p.phaseLeft = p.phaseDur(r)
	}
	gap := 0.0
	for {
		rate := p.RateLow
		if p.inHigh {
			rate = p.RateHigh
		}
		g := r.ExpFloat64() / rate
		if g <= p.phaseLeft {
			p.phaseLeft -= g
			return gap + g
		}
		// Phase expires before the next arrival: switch phases and keep
		// accumulating elapsed time.
		gap += p.phaseLeft
		p.inHigh = !p.inHigh
		p.phaseLeft = p.phaseDur(r)
	}
}

func (p *MMPP2) phaseDur(r *RNG) float64 {
	if p.inHigh {
		return r.ExpFloat64() * p.MeanHigh
	}
	return r.ExpFloat64() * p.MeanLow
}
