// Package stats provides the statistical plumbing shared by the AgilePkgC
// simulator: online summaries, log-bucketed histograms with percentile
// queries, and the random distributions used by the workload generators
// (exponential, log-normal, bounded Pareto, and a two-state Markov
// modulated process for bursty request arrivals).
package stats

import (
	"fmt"
	"math"
)

// Summary accumulates count, mean, variance (Welford), min and max of a
// stream of float64 observations in O(1) space.
type Summary struct {
	n        uint64
	mean, m2 float64
	min, max float64
}

// Add incorporates one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// AddN incorporates the same observation n times.
func (s *Summary) AddN(x float64, n uint64) {
	for i := uint64(0); i < n; i++ {
		s.Add(x)
	}
}

// Count returns the number of observations.
func (s *Summary) Count() uint64 { return s.n }

// Mean returns the arithmetic mean, or 0 with no observations.
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.mean
}

// Var returns the unbiased sample variance, or 0 with fewer than two
// observations.
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation, or 0 with none.
func (s *Summary) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest observation, or 0 with none.
func (s *Summary) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// Merge folds other into s, as if every observation of other had been
// Added to s.
func (s *Summary) Merge(other *Summary) {
	if other.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *other
		return
	}
	n1, n2 := float64(s.n), float64(other.n)
	d := other.mean - s.mean
	total := n1 + n2
	s.m2 += other.m2 + d*d*n1*n2/total
	s.mean += d * n2 / total
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
	s.n += other.n
}

// String renders a one-line human-readable summary.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g min=%.4g max=%.4g",
		s.n, s.Mean(), s.Std(), s.Min(), s.Max())
}
