package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestP2Median(t *testing.T) {
	p := NewP2Quantile(0.5)
	rng := NewRNG(1)
	var data []float64
	for i := 0; i < 100000; i++ {
		x := rng.NormFloat64()*10 + 50
		p.Add(x)
		data = append(data, x)
	}
	exact := ExactQuantile(data, 0.5)
	if math.Abs(p.Value()-exact) > 0.3 {
		t.Fatalf("P² median %v vs exact %v", p.Value(), exact)
	}
}

func TestP2Tail(t *testing.T) {
	for _, q := range []float64{0.9, 0.95, 0.99} {
		p := NewP2Quantile(q)
		rng := NewRNG(2)
		var data []float64
		for i := 0; i < 200000; i++ {
			x := rng.ExpFloat64() * 100e-6 // latency-like
			p.Add(x)
			data = append(data, x)
		}
		exact := ExactQuantile(data, q)
		if math.Abs(p.Value()-exact)/exact > 0.05 {
			t.Errorf("P² q%.2f = %v vs exact %v", q, p.Value(), exact)
		}
	}
}

func TestP2SmallCounts(t *testing.T) {
	p := NewP2Quantile(0.5)
	if p.Value() != 0 {
		t.Fatal("empty estimator should read 0")
	}
	p.Add(3)
	if p.Value() != 3 {
		t.Fatalf("single observation: %v", p.Value())
	}
	p.Add(1)
	p.Add(2)
	v := p.Value()
	if v < 1 || v > 3 {
		t.Fatalf("3-observation median %v out of range", v)
	}
	if p.Count() != 3 {
		t.Fatal("count wrong")
	}
	if p.Q() != 0.5 {
		t.Fatal("Q wrong")
	}
}

func TestP2ConstructorPanics(t *testing.T) {
	for _, q := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("q=%v should panic", q)
				}
			}()
			NewP2Quantile(q)
		}()
	}
}

// Property: the estimate always lies within the observed min/max.
func TestPropertyP2Bounded(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		rng := NewRNG(seed)
		p := NewP2Quantile(0.9)
		lo, hi := math.Inf(1), math.Inf(-1)
		count := int(n%5000) + 6
		for i := 0; i < count; i++ {
			x := rng.Float64()*1000 - 500
			p.Add(x)
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		v := p.Value()
		return v >= lo-1e-9 && v <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: on sorted-uniform data the q-quantile estimate approaches q.
func TestPropertyP2Uniform(t *testing.T) {
	for _, q := range []float64{0.25, 0.5, 0.75, 0.95} {
		p := NewP2Quantile(q)
		rng := NewRNG(77)
		for i := 0; i < 100000; i++ {
			p.Add(rng.Float64())
		}
		if math.Abs(p.Value()-q) > 0.02 {
			t.Errorf("uniform q%.2f estimate %v", q, p.Value())
		}
	}
}
