package stats

import (
	"fmt"
	"sort"
)

// P2Quantile is the Jain–Chlamtac P² streaming quantile estimator: it
// tracks one quantile of a stream in O(1) space with five markers and
// parabolic interpolation, without storing observations. It is used
// where a full histogram is overkill — e.g. per-core wake-latency tails
// inside tight simulation loops.
type P2Quantile struct {
	q float64

	n       int        // observations seen
	heights [5]float64 // marker heights
	pos     [5]float64 // actual marker positions (1-based)
	want    [5]float64 // desired marker positions
	incr    [5]float64 // desired position increments
	init    []float64  // first five observations
}

// NewP2Quantile creates an estimator for quantile q in (0, 1).
func NewP2Quantile(q float64) *P2Quantile {
	if q <= 0 || q >= 1 {
		panic(fmt.Sprintf("stats: P² quantile %g out of (0,1)", q))
	}
	return &P2Quantile{q: q}
}

// Q returns the tracked quantile parameter.
func (p *P2Quantile) Q() float64 { return p.q }

// Count returns the number of observations.
func (p *P2Quantile) Count() int { return p.n }

// Add incorporates one observation.
func (p *P2Quantile) Add(x float64) {
	p.n++
	if p.n <= 5 {
		p.init = append(p.init, x)
		if p.n == 5 {
			sort.Float64s(p.init)
			copy(p.heights[:], p.init)
			p.pos = [5]float64{1, 2, 3, 4, 5}
			p.want = [5]float64{1, 1 + 2*p.q, 1 + 4*p.q, 3 + 2*p.q, 5}
			p.incr = [5]float64{0, p.q / 2, p.q, (1 + p.q) / 2, 1}
			p.init = nil
		}
		return
	}

	// Find the cell k such that heights[k] <= x < heights[k+1], with
	// boundary extension.
	var k int
	switch {
	case x < p.heights[0]:
		p.heights[0] = x
		k = 0
	case x >= p.heights[4]:
		p.heights[4] = x
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if x < p.heights[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		p.pos[i]++
	}
	for i := range p.want {
		p.want[i] += p.incr[i]
	}

	// Adjust the three interior markers.
	for i := 1; i <= 3; i++ {
		d := p.want[i] - p.pos[i]
		if (d >= 1 && p.pos[i+1]-p.pos[i] > 1) || (d <= -1 && p.pos[i-1]-p.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1.0
			}
			h := p.parabolic(i, sign)
			if p.heights[i-1] < h && h < p.heights[i+1] {
				p.heights[i] = h
			} else {
				p.heights[i] = p.linear(i, sign)
			}
			p.pos[i] += sign
		}
	}
}

func (p *P2Quantile) parabolic(i int, d float64) float64 {
	return p.heights[i] + d/(p.pos[i+1]-p.pos[i-1])*
		((p.pos[i]-p.pos[i-1]+d)*(p.heights[i+1]-p.heights[i])/(p.pos[i+1]-p.pos[i])+
			(p.pos[i+1]-p.pos[i]-d)*(p.heights[i]-p.heights[i-1])/(p.pos[i]-p.pos[i-1]))
}

func (p *P2Quantile) linear(i int, d float64) float64 {
	j := i + int(d)
	return p.heights[i] + d*(p.heights[j]-p.heights[i])/(p.pos[j]-p.pos[i])
}

// Value returns the current quantile estimate. With fewer than five
// observations it falls back to the exact order statistic.
func (p *P2Quantile) Value() float64 {
	if p.n == 0 {
		return 0
	}
	if p.n < 5 {
		c := make([]float64, len(p.init))
		copy(c, p.init)
		sort.Float64s(c)
		idx := int(p.q * float64(len(c)))
		if idx >= len(c) {
			idx = len(c) - 1
		}
		return c[idx]
	}
	return p.heights[2]
}
