package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Var() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty summary should be all zeros")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.Count() != 8 {
		t.Fatalf("Count = %d", s.Count())
	}
	if !almost(s.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", s.Mean())
	}
	// Population variance is 4; sample variance is 32/7.
	if !almost(s.Var(), 32.0/7.0, 1e-12) {
		t.Errorf("Var = %v, want %v", s.Var(), 32.0/7.0)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
}

func TestSummarySingle(t *testing.T) {
	var s Summary
	s.Add(3.5)
	if s.Var() != 0 || s.Std() != 0 {
		t.Error("single observation should have zero variance")
	}
	if s.Min() != 3.5 || s.Max() != 3.5 || s.Mean() != 3.5 {
		t.Error("single observation stats wrong")
	}
}

func TestSummaryAddN(t *testing.T) {
	var a, b Summary
	for i := 0; i < 5; i++ {
		a.Add(2.0)
	}
	b.AddN(2.0, 5)
	if a.Count() != b.Count() || a.Mean() != b.Mean() || a.Var() != b.Var() {
		t.Error("AddN differs from repeated Add")
	}
}

func TestSummaryMerge(t *testing.T) {
	f := func(xs, ys []float64) bool {
		var all, a, b Summary
		for _, x := range xs {
			x = math.Mod(x, 1000)
			all.Add(x)
			a.Add(x)
		}
		for _, y := range ys {
			y = math.Mod(y, 1000)
			all.Add(y)
			b.Add(y)
		}
		a.Merge(&b)
		if a.Count() != all.Count() {
			return false
		}
		if all.Count() == 0 {
			return true
		}
		return almost(a.Mean(), all.Mean(), 1e-9) &&
			almost(a.Var(), all.Var(), 1e-6) &&
			a.Min() == all.Min() && a.Max() == all.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryMergeEmpty(t *testing.T) {
	var a, b Summary
	a.Add(1)
	a.Merge(&b) // merge empty into non-empty
	if a.Count() != 1 {
		t.Fatal("merging empty changed count")
	}
	b.Merge(&a) // merge non-empty into empty
	if b.Count() != 1 || b.Mean() != 1 {
		t.Fatal("merging into empty failed")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(1e-6, 10, 0.01)
	rng := NewRNG(1)
	var data []float64
	for i := 0; i < 100000; i++ {
		x := rng.ExpFloat64() * 0.001
		data = append(data, x)
		h.Add(x)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		exact := ExactQuantile(data, q)
		got := h.Quantile(q)
		if !almost(got, exact, 0.03) {
			t.Errorf("q%.2f: hist %v vs exact %v", q, got, exact)
		}
	}
}

func TestHistogramMeanExact(t *testing.T) {
	h := NewLatencyHistogram()
	var s Summary
	rng := NewRNG(7)
	for i := 0; i < 10000; i++ {
		x := rng.Float64() * 0.01
		h.Add(x)
		s.Add(x)
	}
	if !almost(h.Mean(), s.Mean(), 1e-12) {
		t.Errorf("histogram mean %v != summary mean %v", h.Mean(), s.Mean())
	}
	if h.Min() != s.Min() || h.Max() != s.Max() {
		t.Error("exact min/max not tracked")
	}
}

func TestHistogramUnderOverflow(t *testing.T) {
	h := NewHistogram(1, 10, 0.05)
	h.Add(0.5) // underflow
	h.Add(50)  // overflow
	h.Add(5)   // in range
	if h.Count() != 3 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Quantile(0) != 0.5 {
		t.Errorf("q0 should be exact min, got %v", h.Quantile(0))
	}
	if h.Quantile(1) != 50 {
		t.Errorf("q1 should be exact max, got %v", h.Quantile(1))
	}
}

func TestHistogramFractionBetween(t *testing.T) {
	h := NewDurationHistogram()
	// Paper Fig 6(c): fraction of idle periods between 20us and 200us.
	for i := 0; i < 600; i++ {
		h.Add(50e-6)
	}
	for i := 0; i < 400; i++ {
		h.Add(1e-3)
	}
	got := h.FractionBetween(20e-6, 200e-6)
	if !almost(got, 0.6, 0.01) {
		t.Errorf("FractionBetween = %v, want 0.6", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewLatencyHistogram()
	b := NewLatencyHistogram()
	all := NewLatencyHistogram()
	rng := NewRNG(3)
	for i := 0; i < 5000; i++ {
		x := rng.ExpFloat64() * 1e-4
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
		all.Add(x)
	}
	a.Merge(b)
	if a.Count() != all.Count() {
		t.Fatal("merged count wrong")
	}
	if !almost(a.Quantile(0.9), all.Quantile(0.9), 1e-9) {
		t.Error("merged quantile differs")
	}
}

func TestHistogramMergeGeometryPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on geometry mismatch")
		}
	}()
	NewHistogram(1, 10, 0.01).Merge(NewHistogram(1, 100, 0.01))
}

func TestHistogramPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 10, 0.01) },
		func() { NewHistogram(5, 5, 0.01) },
		func() { NewHistogram(1, 10, 0) },
		func() { NewHistogram(1, 10, 1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for invalid constructor args")
				}
			}()
			f()
		}()
	}
}

func TestHistogramPercentileOf(t *testing.T) {
	h := NewHistogram(1e-6, 1, 0.01)
	for i := 1; i <= 100; i++ {
		h.Add(float64(i) * 1e-3)
	}
	got := h.PercentileOf(0.05)
	if !almost(got, 0.49, 0.05) {
		t.Errorf("PercentileOf(0.05) = %v, want ~0.49", got)
	}
}

func TestExactQuantile(t *testing.T) {
	data := []float64{5, 1, 3, 2, 4}
	if ExactQuantile(data, 0.5) != 3 {
		t.Errorf("median = %v", ExactQuantile(data, 0.5))
	}
	if ExactQuantile(data, 0) != 1 || ExactQuantile(data, 1) != 5 {
		t.Error("extremes wrong")
	}
	if ExactQuantile(nil, 0.5) != 0 {
		t.Error("empty should be 0")
	}
	// Input must not be reordered.
	if data[0] != 5 {
		t.Error("ExactQuantile mutated input")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(99), NewRNG(99)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	c, d := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if c.Uint64() == d.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatal("different seeds produced overlapping streams")
	}
}

func TestRNGFork(t *testing.T) {
	r := NewRNG(5)
	a := r.Fork()
	b := r.Fork()
	if a.Uint64() == b.Uint64() {
		t.Fatal("forked streams identical")
	}
}

func TestDistMeans(t *testing.T) {
	rng := NewRNG(11)
	dists := []Dist{
		Deterministic{V: 3},
		Exponential{MeanV: 2e-5},
		Uniform{Lo: 1, Hi: 3},
		LogNormal{MeanV: 16e-6, Sigma: 0.5},
		BoundedPareto{Alpha: 1.5, Lo: 1e-6, Hi: 1e-3},
		Shifted{Base: Exponential{MeanV: 5}, Offset: 2},
		Mixture{
			Components: []Dist{Deterministic{V: 1}, Deterministic{V: 3}},
			Weights:    []float64{1, 1},
		},
	}
	for _, d := range dists {
		var s Summary
		for i := 0; i < 200000; i++ {
			x := d.Sample(rng)
			if x < 0 {
				t.Fatalf("%v produced negative sample %v", d, x)
			}
			s.Add(x)
		}
		if !almost(s.Mean(), d.Mean(), 0.05) {
			t.Errorf("%v: empirical mean %v vs analytic %v", d, s.Mean(), d.Mean())
		}
	}
}

func TestBoundedParetoRange(t *testing.T) {
	d := BoundedPareto{Alpha: 1.2, Lo: 2, Hi: 100}
	rng := NewRNG(13)
	for i := 0; i < 10000; i++ {
		x := d.Sample(rng)
		if x < d.Lo || x > d.Hi {
			t.Fatalf("sample %v outside [%v, %v]", x, d.Lo, d.Hi)
		}
	}
}

func TestPoissonRate(t *testing.T) {
	p := Poisson{RateV: 5000}
	rng := NewRNG(17)
	var total float64
	n := 100000
	for i := 0; i < n; i++ {
		total += p.NextGap(rng)
	}
	rate := float64(n) / total
	if !almost(rate, 5000, 0.02) {
		t.Errorf("empirical rate %v, want 5000", rate)
	}
}

func TestMMPP2Rate(t *testing.T) {
	p := NewMMPP2(10000, 4, 0.01)
	if !almost(p.Rate(), 10000, 1e-9) {
		t.Fatalf("analytic rate %v, want 10000", p.Rate())
	}
	rng := NewRNG(19)
	var total float64
	n := 200000
	for i := 0; i < n; i++ {
		g := p.NextGap(rng)
		if g < 0 {
			t.Fatal("negative gap")
		}
		total += g
	}
	rate := float64(n) / total
	if !almost(rate, 10000, 0.05) {
		t.Errorf("empirical rate %v, want ~10000", rate)
	}
}

func TestMMPP2Burstiness(t *testing.T) {
	// A bursty process must have a higher coefficient of variation of
	// inter-arrival gaps than Poisson (CV=1).
	rng := NewRNG(23)
	p := NewMMPP2(10000, 10, 0.005)
	var s Summary
	for i := 0; i < 100000; i++ {
		s.Add(p.NextGap(rng))
	}
	cv := s.Std() / s.Mean()
	if cv <= 1.05 {
		t.Errorf("MMPP CV = %v, want > 1.05 (burstier than Poisson)", cv)
	}
}

func TestMixtureWeighting(t *testing.T) {
	d := Mixture{
		Components: []Dist{Deterministic{V: 0}, Deterministic{V: 1}},
		Weights:    []float64{3, 1},
	}
	rng := NewRNG(29)
	ones := 0
	n := 100000
	for i := 0; i < n; i++ {
		if d.Sample(rng) == 1 {
			ones++
		}
	}
	frac := float64(ones) / float64(n)
	if !almost(frac, 0.25, 0.05) {
		t.Errorf("weight-1 component frequency %v, want 0.25", frac)
	}
}

// Property: histogram quantiles are monotone in q.
func TestPropertyQuantileMonotone(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		h := NewLatencyHistogram()
		rng := NewRNG(seed)
		for i := 0; i < int(n%2000)+10; i++ {
			h.Add(rng.ExpFloat64() * 1e-4)
		}
		prev := 0.0
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestHistogramReset: a reset histogram must behave exactly like a
// fresh one — same counts, same quantiles — so windowed consumers can
// reuse the bucket allocation.
func TestHistogramReset(t *testing.T) {
	h := NewLatencyHistogram()
	for i := 1; i <= 1000; i++ {
		h.Add(float64(i) * 1e-6)
	}
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("reset histogram retains state: count %d sum %g", h.Count(), h.Sum())
	}
	fresh := NewLatencyHistogram()
	for _, x := range []float64{1e-6, 5e-5, 2e-3, 0.5, 20 /* overflow */, 1e-8 /* underflow */} {
		h.Add(x)
		fresh.Add(x)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if h.Quantile(q) != fresh.Quantile(q) {
			t.Errorf("q%.2f: reset %g, fresh %g", q, h.Quantile(q), fresh.Quantile(q))
		}
	}
	if h.Count() != fresh.Count() || h.Min() != fresh.Min() || h.Max() != fresh.Max() {
		t.Error("reset histogram diverges from a fresh one")
	}
}
