package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram is a log-bucketed histogram over positive float64 values,
// supporting approximate percentile queries with bounded relative error.
// It is used for end-to-end latency distributions and for the
// full-system-idle period distribution of paper Fig. 6(c).
//
// Buckets grow geometrically: bucket i covers [min*g^i, min*g^(i+1)) with
// growth factor g chosen from the requested relative precision. Values
// below min land in an underflow bucket; values at or above max land in
// an overflow bucket.
type Histogram struct {
	min, max  float64
	logMin    float64
	invLogG   float64
	growth    float64
	counts    []uint64
	under     uint64
	over      uint64
	total     uint64
	sum       float64
	exactMin  float64
	exactMax  float64
	haveExact bool
}

// NewHistogram builds a histogram covering [min, max) with the given
// relative precision per bucket (e.g. 0.01 for 1%). min must be > 0 and
// max > min.
func NewHistogram(min, max, precision float64) *Histogram {
	if min <= 0 || max <= min {
		panic(fmt.Sprintf("stats: invalid histogram range [%g, %g)", min, max))
	}
	if precision <= 0 || precision >= 1 {
		panic(fmt.Sprintf("stats: invalid precision %g", precision))
	}
	g := 1 + precision
	n := int(math.Ceil(math.Log(max/min) / math.Log(g)))
	if n < 1 {
		n = 1
	}
	return &Histogram{
		min:     min,
		max:     max,
		logMin:  math.Log(min),
		invLogG: 1 / math.Log(g),
		growth:  g,
		counts:  make([]uint64, n),
	}
}

// NewLatencyHistogram is a convenience constructor sized for latencies
// from 100 ns to 10 s with 1% relative precision (values in seconds).
func NewLatencyHistogram() *Histogram {
	return NewHistogram(100e-9, 10, 0.01)
}

// NewDurationHistogram is sized for idle-period durations from 1 ns to
// 100 s with 2% precision (values in seconds).
func NewDurationHistogram() *Histogram {
	return NewHistogram(1e-9, 100, 0.02)
}

// Add records one observation.
func (h *Histogram) Add(x float64) { h.AddN(x, 1) }

// AddN records an observation with multiplicity n.
func (h *Histogram) AddN(x float64, n uint64) {
	if n == 0 {
		return
	}
	h.total += n
	h.sum += x * float64(n)
	if !h.haveExact {
		h.exactMin, h.exactMax, h.haveExact = x, x, true
	} else {
		if x < h.exactMin {
			h.exactMin = x
		}
		if x > h.exactMax {
			h.exactMax = x
		}
	}
	switch {
	case x < h.min:
		h.under += n
	case x >= h.max:
		h.over += n
	default:
		i := int((math.Log(x) - h.logMin) * h.invLogG)
		if i < 0 {
			i = 0
		}
		if i >= len(h.counts) {
			i = len(h.counts) - 1
		}
		h.counts[i] += n
	}
}

// Reset discards every observation while keeping the bucket layout, so
// windowed consumers (the cluster layer's per-epoch latency windows)
// can reuse one histogram instead of allocating ~2k buckets per window.
func (h *Histogram) Reset() {
	clear(h.counts)
	h.under, h.over, h.total = 0, 0, 0
	h.sum = 0
	h.exactMin, h.exactMax, h.haveExact = 0, 0, false
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.total }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the exact mean of all observations (tracked separately
// from the buckets).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Min and Max return the exact extremes observed.
func (h *Histogram) Min() float64 {
	if !h.haveExact {
		return 0
	}
	return h.exactMin
}

func (h *Histogram) Max() float64 {
	if !h.haveExact {
		return 0
	}
	return h.exactMax
}

// Quantile returns an approximation of the q-th quantile (0 ≤ q ≤ 1).
// The result has the histogram's relative precision for in-range values;
// underflow returns the exact minimum and overflow the exact maximum.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(h.total)))
	if target == 0 {
		target = 1
	}
	cum := h.under
	if target <= cum {
		return h.exactMin
	}
	for i, c := range h.counts {
		cum += c
		if target <= cum {
			// Midpoint of bucket i in log space.
			lo := h.min * math.Pow(h.growth, float64(i))
			return lo * math.Sqrt(h.growth)
		}
	}
	return h.exactMax
}

// FractionBetween returns the fraction of observations with lo ≤ x < hi.
func (h *Histogram) FractionBetween(lo, hi float64) float64 {
	if h.total == 0 || hi <= lo {
		return 0
	}
	var n uint64
	if lo < h.min {
		n += h.under
	}
	for i := range h.counts {
		bLo := h.min * math.Pow(h.growth, float64(i))
		bHi := bLo * h.growth
		mid := bLo * math.Sqrt(h.growth)
		if mid >= lo && mid < hi {
			n += h.counts[i]
		}
		_ = bHi
	}
	if hi > h.max {
		n += h.over
	}
	return float64(n) / float64(h.total)
}

// Merge folds other into h. Both histograms must have identical bucket
// geometry.
func (h *Histogram) Merge(other *Histogram) {
	if h.min != other.min || h.max != other.max || len(h.counts) != len(other.counts) {
		panic("stats: merging histograms with different geometry")
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.under += other.under
	h.over += other.over
	h.total += other.total
	h.sum += other.sum
	if other.haveExact {
		if !h.haveExact {
			h.exactMin, h.exactMax, h.haveExact = other.exactMin, other.exactMax, true
		} else {
			if other.exactMin < h.exactMin {
				h.exactMin = other.exactMin
			}
			if other.exactMax > h.exactMax {
				h.exactMax = other.exactMax
			}
		}
	}
}

// Percentiles returns a formatted string with the standard percentile
// set, useful for experiment reports.
func (h *Histogram) Percentiles() string {
	var b strings.Builder
	for _, p := range []float64{0.50, 0.90, 0.95, 0.99, 0.999} {
		fmt.Fprintf(&b, "p%g=%.4g ", p*100, h.Quantile(p))
	}
	return strings.TrimSpace(b.String())
}

// PercentileOf returns the fraction of observations strictly below x
// (approximately, at bucket resolution).
func (h *Histogram) PercentileOf(x float64) float64 {
	if h.total == 0 {
		return 0
	}
	var n uint64
	if x >= h.min {
		n += h.under
	}
	for i := range h.counts {
		mid := h.min * math.Pow(h.growth, float64(i)) * math.Sqrt(h.growth)
		if mid < x {
			n += h.counts[i]
		}
	}
	if x > h.max {
		n += h.over
	}
	return float64(n) / float64(h.total)
}

// ExactQuantile computes a quantile exactly from a slice (for tests and
// small data sets). The slice is copied, not modified.
func ExactQuantile(data []float64, q float64) float64 {
	if len(data) == 0 {
		return 0
	}
	c := make([]float64, len(data))
	copy(c, data)
	sort.Float64s(c)
	if q <= 0 {
		return c[0]
	}
	if q >= 1 {
		return c[len(c)-1]
	}
	idx := int(math.Ceil(q*float64(len(c)))) - 1
	if idx < 0 {
		idx = 0
	}
	return c[idx]
}
