// Package integration tests whole-system invariants that no single
// module can check alone: the interplay of cores, links, memory
// controllers, the CLM, both PMUs, the workload and the power meter.
package integration

import (
	"math"
	"testing"
	"testing/quick"

	apc "agilepkgc/internal/core"
	"agilepkgc/internal/cpu"
	"agilepkgc/internal/dram"
	"agilepkgc/internal/ios"
	"agilepkgc/internal/pmu"
	"agilepkgc/internal/power"
	"agilepkgc/internal/server"
	"agilepkgc/internal/sim"
	"agilepkgc/internal/soc"
	"agilepkgc/internal/stats"
	"agilepkgc/internal/trace"
	"agilepkgc/internal/workload"
)

// invariantProbe attaches periodic whole-system checks to a CPC1A run.
type invariantProbe struct {
	t      *testing.T
	sys    *soc.System
	checks uint64
}

func (p *invariantProbe) arm(period sim.Duration) {
	var tick func()
	tick = func() {
		p.check()
		p.sys.Engine.Schedule(period, tick)
	}
	p.sys.Engine.Schedule(period, tick)
}

func (p *invariantProbe) check() {
	p.checks++
	s := p.sys
	anyCoreActive := false
	for _, c := range s.Cores {
		if !c.InCC1().Level() {
			anyCoreActive = true
		}
	}

	// Invariant 1: IO standby is forbidden while any core is awake —
	// the datacenter performance rule APC preserves.
	if anyCoreActive {
		for _, l := range s.Links {
			if l.State() == ios.L0s {
				p.t.Errorf("t=%v: link %s in L0s while a core is active", s.Engine.Now(), l.Name())
			}
		}
	}

	// Invariant 2: settled PC1A implies the full device configuration.
	// During the exit flow the state is still PC1A but InPC1A has
	// already dropped (Fig. 4's concurrent-exit requirement).
	if s.APMU != nil && s.APMU.State() == pmu.PC1A {
		if !s.CLM.PLL().Locked() {
			p.t.Errorf("t=%v: PC1A with CLM PLL off", s.Engine.Now())
		}
		if !s.APMU.Exiting() {
			if !s.CLM.Gated() {
				p.t.Errorf("t=%v: settled PC1A with CLM clock running", s.Engine.Now())
			}
			if !s.APMU.InPC1A().Level() && s.Engine.Now() > 0 {
				// The InPC1A wire rises with entry (same event), so a
				// settled PC1A must have it high — except in the same
				// nanosecond the wake landed, covered by Exiting above.
				p.t.Errorf("t=%v: settled PC1A but InPC1A low", s.Engine.Now())
			}
		}
	}

	// Invariant 3: InPC1A is never high outside PC1A.
	if s.APMU != nil && s.APMU.State() != pmu.PC1A && s.APMU.InPC1A().Level() {
		p.t.Errorf("t=%v: InPC1A high outside PC1A", s.Engine.Now())
	}

	// Invariant 4: the LLC is accessible whenever any core runs (a core
	// in CC0 may issue memory traffic at any time).
	if anyCoreActive {
		for _, c := range s.Cores {
			if c.State() == cpu.CC0 && !s.CLM.Accessible() && s.APMU != nil &&
				s.APMU.State() == pmu.PC0 {
				p.t.Errorf("t=%v: core in CC0 with CLM inaccessible in PC0", s.Engine.Now())
			}
		}
	}

	// Invariant 5: instantaneous power stays within physical bounds.
	tot := s.TotalPower()
	if tot < 10 || tot > 120 {
		p.t.Errorf("t=%v: implausible total power %.1fW", s.Engine.Now(), tot)
	}
}

func TestInvariantsUnderMemcached(t *testing.T) {
	sys := soc.New(soc.DefaultConfig(soc.CPC1A))
	probe := &invariantProbe{t: t, sys: sys}
	probe.arm(50 * sim.Microsecond)
	srv := server.New(sys, server.DefaultConfig(), workload.Memcached(80000))
	srv.Run(200 * sim.Millisecond)
	if probe.checks < 1000 {
		t.Fatalf("probe ran only %d times", probe.checks)
	}
	if srv.Served() != srv.Generated() {
		t.Fatalf("lost requests: %d/%d", srv.Served(), srv.Generated())
	}
}

func TestInvariantsUnderBurstyKafka(t *testing.T) {
	sys := soc.New(soc.DefaultConfig(soc.CPC1A))
	probe := &invariantProbe{t: t, sys: sys}
	probe.arm(100 * sim.Microsecond)
	srv := server.New(sys, server.DefaultConfig(), workload.Kafka(0.16, 10))
	srv.Run(200 * sim.Millisecond)
	if srv.Served() == 0 {
		t.Fatal("nothing served")
	}
}

// Energy conservation: the meter's integrated energy equals average
// power times elapsed time, and per-domain energies are consistent with
// snapshots taken mid-run.
func TestEnergyConservation(t *testing.T) {
	sys := soc.New(soc.DefaultConfig(soc.CPC1A))
	srv := server.New(sys, server.DefaultConfig(), workload.Memcached(30000))
	start := sys.Meter.Snapshot()
	srv.Run(50 * sim.Millisecond)
	mid := sys.Meter.Snapshot()
	srv.Run(50 * sim.Millisecond)

	e1 := start.IntervalEnergy(power.Package) + start.IntervalEnergy(power.DRAM)
	e2 := mid.IntervalEnergy(power.Package) + mid.IntervalEnergy(power.DRAM)
	if e2 >= e1 {
		t.Fatalf("second-half energy %v should be less than whole-run energy %v", e2, e1)
	}
	avg := start.AverageTotal()
	elapsed := start.Elapsed().Seconds()
	if math.Abs(avg*elapsed-e1)/e1 > 1e-9 {
		t.Fatalf("energy %.6f J != avg power × time %.6f J", e1, avg*elapsed)
	}
	// Bounds: between PC1A floor and PC0 ceiling.
	if avg < 29 || avg > 99 {
		t.Fatalf("average power %.1fW outside [PC1A, PC0] envelope", avg)
	}
}

// Timer storms (thermal events, tick storms) must never wedge the APMU:
// fire GPMU wakeups at aggressive rates while load runs.
func TestTimerStormFailureInjection(t *testing.T) {
	sys := soc.New(soc.DefaultConfig(soc.CPC1A))
	var storm func()
	storm = func() {
		sys.GPMU.FireTimer()
		sys.Engine.Schedule(37*sim.Microsecond, storm)
	}
	sys.Engine.Schedule(sim.Microsecond, storm)

	srv := server.New(sys, server.DefaultConfig(), workload.Memcached(50000))
	srv.Run(100 * sim.Millisecond)
	if srv.Served() != srv.Generated() {
		t.Fatalf("storm lost requests: %d/%d", srv.Served(), srv.Generated())
	}
	// The system must still be able to reach PC1A afterwards.
	if sys.PackageState() != pmu.PC1A {
		t.Fatalf("state %v after storm + drain, want PC1A", sys.PackageState())
	}
	// And it must have cycled PC1A many times during the storm.
	if sys.APMU.Entries(pmu.PC1A) < 100 {
		t.Fatalf("PC1A entries %d during storm, want many", sys.APMU.Entries(pmu.PC1A))
	}
}

// Link flapping: DMA bursts arriving exactly around PC1A entry must
// never deadlock or corrupt the FSM.
func TestLinkFlapFailureInjection(t *testing.T) {
	sys := soc.New(soc.DefaultConfig(soc.CPC1A))
	rng := stats.NewRNG(7)
	link := sys.Links[1] // not the NIC
	var flap func()
	flap = func() {
		link.StartTransaction()
		sys.Engine.Schedule(sim.Duration(rng.Uint64()%300)+50, func() {
			link.EndTransaction()
		})
		sys.Engine.Schedule(sim.Duration(rng.Uint64()%20000)+100, flap)
	}
	sys.Engine.Schedule(10*sim.Microsecond, flap)

	srv := server.New(sys, server.DefaultConfig(), workload.Memcached(20000))
	srv.Run(100 * sim.Millisecond)
	if srv.Served() != srv.Generated() {
		t.Fatalf("flapping lost requests: %d/%d", srv.Served(), srv.Generated())
	}
	if sys.APMU.Entries(pmu.PC1A) == 0 {
		t.Fatal("no PC1A entries despite idleness between flaps")
	}
}

// CC6-disabled invariant: a Cshallow/CPC1A system must never see a core
// in CC6 or CC1E, whatever the load pattern.
func TestNoDeepCoreStatesInShallowConfigs(t *testing.T) {
	for _, kind := range []soc.ConfigKind{soc.Cshallow, soc.CPC1A} {
		sys := soc.New(soc.DefaultConfig(kind))
		for _, c := range sys.Cores {
			c.OnTransition(func(old, new cpu.CState) {
				if new == cpu.CC6 || new == cpu.CC1E {
					t.Errorf("%v: core entered %v with deep states disabled", kind, new)
				}
			})
		}
		srv := server.New(sys, server.DefaultConfig(), workload.MemcachedBursty(30000, 6))
		srv.Run(100 * sim.Millisecond)
	}
}

// Cdeep end-to-end: PC6 residency accrues at idle, and its unwinding
// always lands back in a servable system.
func TestCdeepServesAfterPC6(t *testing.T) {
	sys := soc.New(soc.DefaultConfig(soc.Cdeep))
	srv := server.New(sys, server.DefaultConfig(), workload.Memcached(2000))
	srv.Run(300 * sim.Millisecond)
	if srv.Served() != srv.Generated() {
		t.Fatalf("lost requests: %d/%d", srv.Served(), srv.Generated())
	}
	if sys.GPMU.Entries(pmu.PC6) == 0 {
		t.Fatal("2K QPS on Cdeep should reach PC6 between requests")
	}
	if sys.GPMU.Residency(pmu.PC6) == 0 {
		t.Fatal("no PC6 residency accrued")
	}
}

// Property: for any modest load level, the three configurations preserve
// the paper's power ordering at idle-heavy operating points:
// Cdeep ≤ CPC1A ≤ Cshallow (Cdeep trades latency for power).
func TestPropertyPowerOrdering(t *testing.T) {
	f := func(seed uint64) bool {
		qps := 2000 + float64(seed%30000)
		measure := func(kind soc.ConfigKind) float64 {
			sys := soc.New(soc.DefaultConfig(kind))
			scfg := server.DefaultConfig()
			scfg.Seed = seed
			srv := server.New(sys, scfg, workload.Memcached(qps))
			snap := sys.Meter.Snapshot()
			srv.Run(30 * sim.Millisecond)
			return snap.AverageTotal()
		}
		shallow := measure(soc.Cshallow)
		apcW := measure(soc.CPC1A)
		return apcW < shallow
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Determinism across the whole stack: identical seeds produce identical
// served counts, latencies, energies and PC1A entry counts.
func TestWholeSystemDeterminism(t *testing.T) {
	run := func() (uint64, float64, float64, uint64) {
		sys := soc.New(soc.DefaultConfig(soc.CPC1A))
		srv := server.New(sys, server.DefaultConfig(), workload.MemcachedBursty(40000, 4))
		snap := sys.Meter.Snapshot()
		srv.Run(50 * sim.Millisecond)
		return srv.Served(), srv.Latencies().Mean(), snap.IntervalEnergy(power.Package),
			sys.APMU.Entries(pmu.PC1A)
	}
	s1, l1, e1, n1 := run()
	s2, l2, e2, n2 := run()
	if s1 != s2 || l1 != l2 || e1 != e2 || n1 != n2 {
		t.Fatalf("runs diverged: (%d %v %v %d) vs (%d %v %v %d)", s1, l1, e1, n1, s2, l2, e2, n2)
	}
}

// The tracer agrees with the APMU about the PC1A opportunity: on a CPC1A
// system, PC1A residency ≈ all-idle residency minus transition slivers.
func TestTracerAPMUAgreement(t *testing.T) {
	sys := soc.New(soc.DefaultConfig(soc.CPC1A))
	tr := trace.New(sys.Engine, sys.Cores)
	srv := server.New(sys, server.DefaultConfig(), workload.Memcached(30000))
	srv.Run(200 * sim.Millisecond)
	tr.Finalize()

	allIdle := tr.AllIdleFraction()
	pc1a := float64(sys.APMU.Residency(pmu.PC1A)) / float64(sys.Engine.Now())
	if pc1a > allIdle {
		t.Fatalf("PC1A residency %v exceeds all-idle fraction %v", pc1a, allIdle)
	}
	if allIdle-pc1a > 0.05 {
		t.Fatalf("PC1A residency %v lags all-idle %v by more than transition slivers", pc1a, allIdle)
	}
}

// DRAM access counters line up with the workload's configured accesses.
func TestMemoryTrafficAccounting(t *testing.T) {
	sys := soc.New(soc.DefaultConfig(soc.CPC1A))
	spec := workload.Memcached(20000)
	srv := server.New(sys, server.DefaultConfig(), spec)
	srv.Run(100 * sim.Millisecond)
	var accesses uint64
	for _, mc := range sys.MCs {
		accesses += mc.Accesses()
	}
	want := srv.Served() * uint64(spec.MemAccesses)
	if accesses != want {
		t.Fatalf("DRAM accesses %d, want %d (%d served × %d)", accesses, want, srv.Served(), spec.MemAccesses)
	}
	// Both controllers interleave evenly.
	d := int64(sys.MCs[0].Accesses()) - int64(sys.MCs[1].Accesses())
	if d < -4 || d > 4 {
		t.Fatalf("interleave skew %d", d)
	}
}

// CKE-off must engage only during system idleness, and the self-refresh
// path must stay untouched on CPC1A systems.
func TestDRAMModesPerConfig(t *testing.T) {
	sys := soc.New(soc.DefaultConfig(soc.CPC1A))
	srv := server.New(sys, server.DefaultConfig(), workload.Memcached(30000))
	srv.Run(100 * sim.Millisecond)
	for _, mc := range sys.MCs {
		if mc.SREntries() != 0 {
			t.Errorf("MC %s entered self-refresh %d times on a CPC1A system", mc.Name(), mc.SREntries())
		}
		if mc.CKEEntries() == 0 {
			t.Errorf("MC %s never used CKE-off", mc.Name())
		}
	}
	_ = dram.PowerDown
	_ = apc.DefaultConfig
}
