package cluster

// Service graphs (DESIGN.md §11): N tiers — each a full Fleet with its
// own servers, racks, policy, faults and overrides — wired by edges
// carrying a deterministic hit-ratio/TTL miss model and fan-out RPC,
// all on ONE shared engine. A request arrives at the root tier (tier
// 0); when a tier resolves it, each outgoing edge performs a cache
// lookup: a hit needs nothing further, a miss issues Fanout backend
// requests into the edge's target tier, and the client's response
// completes only when every request in the resulting tree has resolved
// (fan-out join). Because every tier's events interleave in the shared
// engine's (time, sequence) order, a graph run is exactly as
// deterministic as a single fleet's, and sweeps over graphs stay
// serial≡parallel bit-identical.
//
// The miss model is two-factor and fully seeded:
//
//   - TTL (per edge, optional): the edge tracks, per client
//     connection, when that connection's cache entry was last filled.
//     A lookup with no entry is a compulsory miss; one whose entry is
//     older than TTL is a TTL miss. Any miss refills the entry. With
//     TTL zero the table is bypassed entirely.
//   - Hit ratio (per edge): lookups that pass the TTL check hit with
//     probability HitRatio, drawn from the edge's own salted RNG
//     stream — the same dedicated-stream discipline as fault
//     injection, so adding an edge never perturbs another stream.
//
// Conservation holds across tiers: for every edge,
// Issued = Fanout · Misses, and a non-root tier's Generated count is
// exactly the sum of Issued over its incoming edges. At the client,
// Served + Failed + still-pending joins = root Generated.
//
// The defining contract, as with every optional layer before it: a
// one-tier graph builds its fleet with the caller's seed on a fresh
// engine and drives it through the exact Run/Measure sequence Fleet
// uses, and with no edges the onResolve hook stays nil — so a
// single-tier graph is byte-identical to the plain cluster fleet
// (TestGraphSingleTierParity).

import (
	"fmt"

	"agilepkgc/internal/server"
	"agilepkgc/internal/sim"
	"agilepkgc/internal/stats"
	"agilepkgc/internal/workload"
)

// Seed salts for the graph's dedicated RNG streams, following the
// fault-layer convention (faults.go): non-root tiers and edges derive
// their seeds from the caller's, so tier 0 sees exactly the seed a
// plain fleet would.
const (
	graphTierSeedSalt = 0xc4a51dead00d0010 // + tier index, non-root tier fleets
	graphEdgeSeedSalt = 0xc4a51dead00d0020 // + edge index, per-edge hit/miss RNG
)

// TierConfig is one tier of a service graph: a complete fleet
// configuration plus the workload spec describing its request stream.
// For the root tier the spec drives the synthetic generator (or the
// custom Cluster.NewSource); for non-root tiers the arrival process is
// ignored — arrivals are upstream misses — and the spec contributes
// the service-time distribution, connection count and memory accesses
// of the tier's requests (and the rate estimate its packing caps are
// derived from).
type TierConfig struct {
	// Name labels the tier in measurements and reports.
	Name string
	// Cluster is the tier's fleet configuration. Only the root tier may
	// set NewSource; non-root tiers are driven by the graph.
	Cluster Config
	// Spec is the tier's workload description (see type comment).
	Spec workload.Spec
}

// EdgeConfig is one edge of the service graph: requests resolving in
// tier From look up a cache entry and, on a miss, issue Fanout
// requests into tier To.
type EdgeConfig struct {
	From, To int
	// HitRatio is the probability a lookup that passes the TTL check
	// hits; in [0, 1].
	HitRatio float64
	// TTL is the cache-entry lifetime of the per-connection fill table;
	// zero disables the table (pure Bernoulli misses).
	TTL sim.Duration
	// Fanout is how many backend requests one miss issues; 0 is
	// normalized to 1.
	Fanout int
}

// GraphConfig declares a service graph: tiers plus edges. Tier 0 is
// the root (client-facing) tier; edges must form a DAG rooted there.
type GraphConfig struct {
	Tiers []TierConfig
	Edges []EdgeConfig
}

// validate rejects incoherent graphs: per-tier fleet validation, edge
// indices in range, probabilities in [0,1], fan-out on an edge that
// can never miss (silently inert configuration, same philosophy as the
// scenario layer), cycles, and tiers no miss stream can ever reach.
func (cfg GraphConfig) validate() error {
	if len(cfg.Tiers) == 0 {
		return fmt.Errorf("cluster: graph needs at least one tier")
	}
	for i, tc := range cfg.Tiers {
		if i > 0 && tc.Cluster.NewSource != nil {
			return fmt.Errorf("cluster: tier %d (%s): only the root tier may set NewSource (non-root tiers are driven by upstream misses)", i, tc.Name)
		}
		if _, err := validateConfig(tc.Cluster, tc.Spec); err != nil {
			return fmt.Errorf("tier %d (%s): %w", i, tc.Name, err)
		}
	}
	adj := make([][]int, len(cfg.Tiers))
	for i, ec := range cfg.Edges {
		if ec.From < 0 || ec.From >= len(cfg.Tiers) {
			return fmt.Errorf("cluster: edge %d: from-tier %d out of range", i, ec.From)
		}
		if ec.To < 0 || ec.To >= len(cfg.Tiers) {
			return fmt.Errorf("cluster: edge %d: to-tier %d out of range", i, ec.To)
		}
		if ec.From == ec.To {
			return fmt.Errorf("cluster: edge %d: tier %d feeds itself", i, ec.From)
		}
		if ec.To == 0 {
			return fmt.Errorf("cluster: edge %d: tier 0 is the client-facing tier and cannot be an edge target", i)
		}
		if ec.HitRatio < 0 || ec.HitRatio > 1 {
			return fmt.Errorf("cluster: edge %d: hit ratio %g outside [0, 1]", i, ec.HitRatio)
		}
		if ec.TTL < 0 {
			return fmt.Errorf("cluster: edge %d: negative TTL", i)
		}
		if ec.Fanout < 0 {
			return fmt.Errorf("cluster: edge %d: negative fan-out", i)
		}
		if ec.Fanout > 1 && ec.HitRatio >= 1 && ec.TTL == 0 {
			return fmt.Errorf("cluster: edge %d: fan-out %d on an edge that never misses (hit ratio 1, no TTL)", i, ec.Fanout)
		}
		adj[ec.From] = append(adj[ec.From], ec.To)
	}
	// Cycle check: a cycle would let one arrival generate unbounded
	// downstream work. DFS coloring over every tier (cycles among
	// non-root tiers are unreachable from 0 but just as fatal).
	color := make([]int, len(cfg.Tiers)) // 0 white, 1 gray, 2 black
	var dfs func(int) bool
	dfs = func(u int) bool {
		color[u] = 1
		for _, v := range adj[u] {
			if color[v] == 1 || (color[v] == 0 && dfs(v)) {
				return true
			}
		}
		color[u] = 2
		return false
	}
	for u := range cfg.Tiers {
		if color[u] == 0 && dfs(u) {
			return fmt.Errorf("cluster: graph has a cycle through tier %d", u)
		}
	}
	// Reachability: a non-root tier no edge path reaches from the root
	// would sit idle forever — a silently inert tier.
	reached := make([]bool, len(cfg.Tiers))
	reached[0] = true
	queue := []int{0}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if !reached[v] {
				reached[v] = true
				queue = append(queue, v)
			}
		}
	}
	for i := range cfg.Tiers {
		if !reached[i] {
			return fmt.Errorf("cluster: tier %d (%s) is unreachable from tier 0 (no edge path delivers misses to it)", i, cfg.Tiers[i].Name)
		}
	}
	return nil
}

// joinReq tracks one request's position in the fan-out tree: how many
// of its downstream children are still outstanding, whether any part
// of the subtree failed, and — at the root — the client arrival the
// end-to-end latency is measured from. Records are pooled
// (Graph.freeJoin) so steady-state joining allocates nothing.
//
//apcvet:pooled
type joinReq struct {
	parent  *joinReq
	arrival sim.Time
	pending int
	failed  bool
}

// gtier is one tier at runtime: its fleet, the push source feeding it
// (nil at the root), its outgoing edges and the join records of its
// in-flight requests, keyed by request ID. The map's deleted cells are
// reused by later inserts, so the pending set is allocation-free at
// steady state.
type gtier struct {
	name    string
	fl      *Fleet
	push    *workload.PushSource
	out     []*gedge
	pending map[uint64]*joinReq
}

// gedge is one edge at runtime: its target tier, its dedicated RNG
// stream, the per-connection TTL fill table, and the conservation
// counters.
type gedge struct {
	cfg    EdgeConfig
	fanout int
	to     *gtier
	rng    *stats.RNG
	fill   map[int]sim.Time

	lookups   uint64
	misses    uint64
	ttlMisses uint64
	issued    uint64
}

// Graph is a service graph of fleets on one shared engine.
type Graph struct {
	eng   *sim.Engine
	cfg   GraphConfig
	tiers []*gtier
	edges []*gedge

	clientServed uint64
	clientFailed uint64
	clientLat    *stats.Histogram

	freeJoin []*joinReq
}

// NewGraph assembles a service graph on a fresh engine: each tier's
// fleet is built in tier order (tier 0 with the caller's seed — the
// single-tier parity anchor — and every later tier with a salted
// derivative), then the edges are wired in config order.
func NewGraph(cfg GraphConfig, seed uint64) (*Graph, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	g := &Graph{eng: sim.NewEngine()}
	if err := g.build(cfg, seed); err != nil {
		return nil, err
	}
	return g, nil
}

// build assembles (or, on Reset, reassembles) the graph in a fixed
// order — tiers first, in index order, then edges — so a rebuilt graph
// schedules the identical initial event sequence a fresh one would.
func (g *Graph) build(cfg GraphConfig, seed uint64) error {
	g.cfg = cfg
	fresh := g.tiers == nil
	if fresh {
		g.tiers = make([]*gtier, len(cfg.Tiers))
		for i := range g.tiers {
			g.tiers[i] = &gtier{}
		}
		g.edges = make([]*gedge, len(cfg.Edges))
		for i := range g.edges {
			g.edges[i] = &gedge{}
		}
	}
	wired := len(cfg.Edges) > 0
	g.clientServed, g.clientFailed = 0, 0
	if wired {
		if g.clientLat == nil {
			g.clientLat = stats.NewLatencyHistogram()
		} else {
			g.clientLat.Reset()
		}
	}
	for i, tc := range cfg.Tiers {
		t := g.tiers[i]
		t.name = tc.Name
		t.out = t.out[:0]
		tseed := seed
		fcfg := tc.Cluster
		if i > 0 {
			tseed = seed ^ (graphTierSeedSalt + uint64(i))
			// Non-root tiers are fed by upstream misses: install the push
			// source, reusing its request pool across resets.
			fcfg.NewSource = func(eng *sim.Engine, spec workload.Spec, s uint64, sink func(*workload.Request)) workload.Source {
				if t.push == nil {
					t.push = workload.NewPushSource(eng, spec, s, sink)
				} else {
					t.push.Reset(spec, s)
				}
				return t.push
			}
		}
		if t.fl == nil {
			fl, err := NewOn(g.eng, fcfg, tc.Spec, tseed)
			if err != nil {
				return err
			}
			t.fl = fl
		} else if err := t.fl.resetOn(fcfg, tc.Spec, tseed); err != nil {
			return err
		}
		if wired {
			// The hook is what turns completions into lookups; without
			// edges it stays nil and the tier is a plain fleet, byte for
			// byte.
			tier := t
			t.fl.onResolve = func(id uint64, arrival sim.Time, conn int, ok bool) {
				g.resolve(tier, id, arrival, conn, ok)
			}
			if t.pending == nil {
				t.pending = make(map[uint64]*joinReq)
			} else {
				for k := range t.pending {
					delete(t.pending, k)
				}
			}
		}
	}
	for i, ec := range cfg.Edges {
		e := g.edges[i]
		fanout := ec.Fanout
		if fanout < 1 {
			fanout = 1
		}
		e.cfg, e.fanout = ec, fanout
		e.to = g.tiers[ec.To]
		e.rng = stats.NewRNG(seed ^ (graphEdgeSeedSalt + uint64(i)))
		if e.cfg.TTL > 0 {
			if e.fill == nil {
				e.fill = make(map[int]sim.Time)
			} else {
				for k := range e.fill {
					delete(e.fill, k)
				}
			}
		}
		e.lookups, e.misses, e.ttlMisses, e.issued = 0, 0, 0, 0
		g.tiers[ec.From].out = append(g.tiers[ec.From].out, e)
	}
	return nil
}

// Reset rewinds the graph to the state NewGraph(cfg, seed) would have
// produced, reusing the engine arena, every tier's fleet (under
// Fleet.Reset's shape rules), the push sources' request pools, the
// join pool and the pending maps. Mirrors Fleet.Reset: a reset graph
// is byte-identical to a fresh one.
func (g *Graph) Reset(cfg GraphConfig, seed uint64) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	if len(cfg.Tiers) != len(g.tiers) || len(cfg.Edges) != len(g.edges) {
		return fmt.Errorf("cluster: graph Reset needs the original shape (%d tiers, %d edges; got %d, %d)",
			len(g.tiers), len(g.edges), len(cfg.Tiers), len(cfg.Edges))
	}
	// Pre-check every tier's topology shape so a mismatch is reported
	// before any state is torn down.
	for i, tc := range cfg.Tiers {
		topo := tc.Cluster.Topology
		if topo == (Topology{}) {
			topo = Flat(len(tc.Cluster.Members))
		}
		fl := g.tiers[i].fl
		if topo != fl.topo || len(tc.Cluster.Members) != len(fl.members) {
			return fmt.Errorf("cluster: graph Reset: tier %d needs the original topology %v (got %v)", i, fl.topo, topo)
		}
	}
	g.eng.Reset()
	return g.build(cfg, seed)
}

// GraphReuse caches one graph across the points of a sweep, exactly as
// Reuse does for fleets: reset in place when the shape matches, rebuilt
// when it cannot be. The zero value is ready.
type GraphReuse struct {
	g *Graph
}

// Graph returns a graph for (cfg, seed): the cached one reset in place
// when possible, a newly built one otherwise.
func (r *GraphReuse) Graph(cfg GraphConfig, seed uint64) (*Graph, error) {
	if r.g != nil && r.g.Reset(cfg, seed) == nil {
		return r.g, nil
	}
	g, err := NewGraph(cfg, seed)
	if err != nil {
		return nil, err
	}
	r.g = g
	return g, nil
}

// Engine returns the shared engine (for tests).
func (g *Graph) Engine() *sim.Engine { return g.eng }

// Tiers returns the tier count.
func (g *Graph) Tiers() int { return len(g.tiers) }

// TierFleet returns tier i's fleet (for tests and benchmarks; the
// fleet must keep being driven through the graph's Run).
func (g *Graph) TierFleet(i int) *Fleet { return g.tiers[i].fl }

// newJoin takes a join record off the pool or allocates one.
//
//apcvet:noalloc
func (g *Graph) newJoin() *joinReq {
	if n := len(g.freeJoin); n > 0 {
		jr := g.freeJoin[n-1]
		g.freeJoin = g.freeJoin[:n-1]
		*jr = joinReq{}
		return jr
	}
	return new(joinReq) //apcvet:alloc pool miss: the record amortizes over every join it later carries
}

// putJoin returns a closed join record to the pool; the caller must
// not touch it afterwards (the next newJoin may reissue it).
//
//apcvet:poolput
//apcvet:noalloc
func (g *Graph) putJoin(jr *joinReq) {
	g.freeJoin = append(g.freeJoin, jr)
}

// resolve is the onResolve hook of every tier: one request of tier t
// reached its final state. It closes the request's join record,
// performs the outgoing lookups and, on misses, issues the fan-out
// children — synchronously, at this engine instant, so downstream
// arrivals carry zero artificial delay beyond what the target tier's
// own delivery path (ToR hops, queues) imposes.
//
//apcvet:noalloc
func (g *Graph) resolve(t *gtier, id uint64, arrival sim.Time, conn int, ok bool) {
	jr := t.pending[id]
	if jr != nil {
		delete(t.pending, id)
	} else {
		// Root-tier requests enter the graph here, at their own
		// resolution: nothing upstream registered them.
		jr = g.newJoin()
		jr.arrival = arrival
	}
	// Guard reference: hold the join open until every child is issued,
	// so a child resolving synchronously (a shed, for instance) cannot
	// complete the join mid-loop.
	jr.pending++
	if !ok {
		// A failed request produced no response, so no lookups happen
		// downstream of it; the failure propagates up the join tree.
		jr.failed = true
	} else {
		now := g.eng.Now()
		for _, e := range t.out {
			e.lookups++
			miss, ttlMiss := false, false
			if e.cfg.TTL > 0 {
				ft, present := e.fill[conn]
				if !present {
					miss = true // compulsory: first lookup on this connection
				} else if now-ft >= e.cfg.TTL {
					miss, ttlMiss = true, true
				}
			}
			if !miss && e.rng.Float64() >= e.cfg.HitRatio {
				miss = true
			}
			if !miss {
				continue
			}
			e.misses++
			if ttlMiss {
				e.ttlMisses++
			}
			if e.cfg.TTL > 0 {
				e.fill[conn] = now
			}
			for k := 0; k < e.fanout; k++ {
				e.issued++
				jr.pending++
				child := g.newJoin()
				child.parent = jr
				child.arrival = now
				// Emit's ID is the source's Generated() count; register the
				// child BEFORE emitting, because the target tier can resolve
				// the request synchronously (shedding under overload).
				childID := e.to.push.Generated()
				e.to.pending[childID] = child
				e.to.push.Emit(conn)
			}
		}
	}
	jr.pending--
	if jr.pending == 0 {
		g.finish(jr)
	}
}

// finish completes a join whose subtree has fully resolved, bubbling
// the completion up the parent chain; at the root it records the
// client-observed outcome (success only when every request in the tree
// succeeded, latency from root arrival to last resolution).
//
//apcvet:noalloc
func (g *Graph) finish(jr *joinReq) {
	for {
		parent, failed := jr.parent, jr.failed
		if parent == nil {
			if failed {
				g.clientFailed++
			} else {
				g.clientServed++
				g.clientLat.Add((g.eng.Now() - jr.arrival).Seconds())
			}
			g.putJoin(jr)
			return
		}
		g.putJoin(jr)
		parent.pending--
		if failed {
			parent.failed = true
		}
		if parent.pending > 0 {
			return
		}
		jr = parent
	}
}

// inFlight sums every tier's in-flight count, so the drain loop cannot
// declare the graph empty while any tier still holds work.
func (g *Graph) inFlight() int {
	n := 0
	for _, t := range g.tiers {
		n += t.fl.inFlightTotal()
	}
	return n
}

// Run generates root-tier load for d of virtual time, then drains every
// tier, mirroring Fleet.Run event for event — the sequence the
// single-tier parity contract depends on. Non-root sources have no
// arrival chain to start, so the Start loop degenerates to the fleet's
// single Start on one-tier graphs. Misses discovered during the drain
// still issue their backend requests: the drain loop keeps going until
// every tier is empty or the cap trips.
func (g *Graph) Run(d sim.Duration) {
	stop := g.eng.Now() + d
	for _, t := range g.tiers {
		t.fl.gen.Start(stop)
	}
	g.eng.Run(stop)
	deadline := g.eng.Now() + server.DrainCap
	for g.inFlight() > 0 && g.eng.Now() < deadline {
		g.eng.Run(g.eng.Now() + sim.Millisecond)
	}
	trunc := g.inFlight() > 0 && g.eng.Pending() > 0
	for _, t := range g.tiers {
		for _, m := range t.fl.members {
			m.dropped = uint64(t.fl.load(m))
			if trunc {
				m.truncated = m.dropped
			} else {
				m.truncated = 0
			}
		}
	}
}

// TierMeasurement is one tier's outcome: its name plus the full fleet
// measurement, per-server and per-rack detail included.
type TierMeasurement struct {
	Name  string      `json:"name"`
	Fleet Measurement `json:"fleet"`
}

// EdgeStats is one edge's measured outcome with its configuration,
// satisfying the conservation identity Issued = Fanout · Misses and
// Hits = Lookups − Misses.
type EdgeStats struct {
	From string `json:"from"`
	To   string `json:"to"`

	HitRatio float64      `json:"hit_ratio"`
	TTL      sim.Duration `json:"ttl_ns,omitempty"`
	Fanout   int          `json:"fanout"`

	Lookups   uint64 `json:"lookups"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	TTLMisses uint64 `json:"ttl_misses,omitempty"`
	Issued    uint64 `json:"issued"`

	// MeasuredHitRate is Hits/Lookups — below the configured HitRatio
	// when TTL expiry and compulsory misses bite.
	MeasuredHitRate float64 `json:"measured_hit_rate"`
}

// ClientStats is the end-to-end view at the graph's client: a request
// is served only when its whole fan-out tree succeeded, and its
// latency runs from root arrival to the last resolution in the tree.
type ClientStats struct {
	Served uint64 `json:"served"`
	Failed uint64 `json:"failed"`

	MeanLatency float64 `json:"mean_latency_s"`
	P50Latency  float64 `json:"p50_latency_s"`
	P99Latency  float64 `json:"p99_latency_s"`
	P999Latency float64 `json:"p999_latency_s"`
}

// GraphMeasurement is the graph-wide outcome of one measured window.
// Edges and Client are nil on edgeless (single-tier) graphs,
// preserving the parity contract in the marshalled form too.
type GraphMeasurement struct {
	Tiers  []TierMeasurement `json:"tiers"`
	Edges  []EdgeStats       `json:"edges,omitempty"`
	Client *ClientStats      `json:"client,omitempty"`
}

// Measure runs the graph through the standard warmup → instrument →
// measure sequence: warmup once, every tier's instrumentation attached
// at the same instant, one shared measured window, every tier
// collected against it. On a one-tier graph this is exactly
// Fleet.Measure. Call at most once per build or Reset.
func (g *Graph) Measure(warmup, duration sim.Duration) GraphMeasurement {
	g.Run(warmup)
	for _, t := range g.tiers {
		t.fl.measureBegin()
	}
	t0 := g.eng.Now()
	g.Run(duration)
	window := g.eng.Now() - t0

	out := GraphMeasurement{Tiers: make([]TierMeasurement, len(g.tiers))}
	for i, t := range g.tiers {
		out.Tiers[i].Name = t.name
		t.fl.measureCollect(&out.Tiers[i].Fleet, window)
	}
	if len(g.edges) > 0 {
		out.Edges = make([]EdgeStats, len(g.edges))
		for i, e := range g.edges {
			out.Edges[i] = EdgeStats{
				From:      g.tiers[e.cfg.From].name,
				To:        e.to.name,
				HitRatio:  e.cfg.HitRatio,
				TTL:       e.cfg.TTL,
				Fanout:    e.fanout,
				Lookups:   e.lookups,
				Hits:      e.lookups - e.misses,
				Misses:    e.misses,
				TTLMisses: e.ttlMisses,
				Issued:    e.issued,
			}
			if e.lookups > 0 {
				out.Edges[i].MeasuredHitRate = float64(e.lookups-e.misses) / float64(e.lookups)
			}
		}
		cs := &ClientStats{
			Served:      g.clientServed,
			Failed:      g.clientFailed,
			MeanLatency: g.clientLat.Mean(),
			P50Latency:  g.clientLat.Quantile(0.50),
			P99Latency:  g.clientLat.Quantile(0.99),
			P999Latency: g.clientLat.Quantile(0.999),
		}
		out.Client = cs
	}
	return out
}
