package cluster

import (
	"reflect"
	"testing"

	"agilepkgc/internal/server"
	"agilepkgc/internal/sim"
	"agilepkgc/internal/soc"
	"agilepkgc/internal/workload"
)

// uniformMembers builds an n-server fleet config of identical
// default-calibration machines.
func uniformMembers(n int, kind soc.ConfigKind) []MemberConfig {
	members := make([]MemberConfig, n)
	for i := range members {
		members[i] = MemberConfig{SoC: soc.DefaultConfig(kind), Server: server.DefaultConfig()}
	}
	return members
}

func TestPolicyParseRoundTrip(t *testing.T) {
	for _, p := range []Policy{RoundRobin, LeastLoaded, PowerAware, RackAffinity, RackPowerAware} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePolicy("weighted"); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestNewValidation(t *testing.T) {
	spec := workload.Memcached(10000)
	cases := []struct {
		name string
		cfg  Config
		spec workload.Spec
	}{
		{"no members", Config{Policy: RoundRobin}, spec},
		{"power_aware without target", Config{Policy: PowerAware, Members: uniformMembers(2, soc.CPC1A)}, spec},
		{"rack_power_aware without target", Config{Policy: RackPowerAware, Members: uniformMembers(2, soc.CPC1A)}, spec},
		{"bogus policy", Config{Policy: Policy(99), Members: uniformMembers(2, soc.CPC1A)}, spec},
		{"closed-loop spec", Config{Policy: RoundRobin, Members: uniformMembers(2, soc.CPC1A)}, workload.Spec{}},
		{"topology size mismatch", Config{
			Policy: RoundRobin, Topology: Topology{Racks: 2, ServersPerRack: 3},
			Members: uniformMembers(4, soc.CPC1A)}, spec},
		{"zero servers per rack", Config{
			Policy: RoundRobin, Topology: Topology{Racks: 2},
			Members: uniformMembers(2, soc.CPC1A)}, spec},
		{"negative ToR latency", Config{
			Policy: RoundRobin, Topology: Topology{Racks: 2, ServersPerRack: 1},
			TorLatency: -sim.Microsecond, Members: uniformMembers(2, soc.CPC1A)}, spec},
	}
	for _, c := range cases {
		if _, err := New(c.cfg, c.spec, 1); err == nil {
			t.Errorf("%s: New accepted an invalid config", c.name)
		}
	}
}

func TestRoundRobinEvenSpread(t *testing.T) {
	fl, err := New(Config{Policy: RoundRobin, Members: uniformMembers(4, soc.CPC1A)},
		workload.Memcached(40000), 1)
	if err != nil {
		t.Fatal(err)
	}
	m := fl.Measure(5*sim.Millisecond, 50*sim.Millisecond)
	if m.Generated == 0 || m.Served == 0 {
		t.Fatalf("no traffic: %+v", m)
	}
	var min, max uint64 = ^uint64(0), 0
	for _, ss := range m.Servers {
		if ss.Routed < min {
			min = ss.Routed
		}
		if ss.Routed > max {
			max = ss.Routed
		}
	}
	if max-min > 1 {
		t.Errorf("round_robin spread uneven: min %d max %d", min, max)
	}
}

func TestLeastLoadedUsesAllServers(t *testing.T) {
	fl, err := New(Config{Policy: LeastLoaded, Members: uniformMembers(4, soc.CPC1A)},
		workload.Memcached(40000), 1)
	if err != nil {
		t.Fatal(err)
	}
	m := fl.Measure(5*sim.Millisecond, 50*sim.Millisecond)
	for _, ss := range m.Servers {
		if ss.Routed == 0 {
			t.Errorf("least_loaded starved server %d", ss.Index)
		}
	}
}

// TestPowerAwarePacks is the policy's reason to exist: at light aggregate
// load it concentrates traffic on the low-indexed servers so the
// high-indexed ones idle into deep package C-states.
func TestPowerAwarePacks(t *testing.T) {
	fl, err := New(Config{
		Policy:    PowerAware,
		P99Target: 300 * sim.Microsecond,
		Members:   uniformMembers(4, soc.CPC1A),
	}, workload.Memcached(40000), 1)
	if err != nil {
		t.Fatal(err)
	}
	m := fl.Measure(5*sim.Millisecond, 50*sim.Millisecond)
	first, last := m.Servers[0], m.Servers[3]
	if first.Routed <= 10*last.Routed {
		t.Errorf("power_aware did not pack: server0 routed %d, server3 routed %d",
			first.Routed, last.Routed)
	}
	if last.AllIdle <= first.AllIdle {
		t.Errorf("drained server not idler than packed one: server0 all-idle %.3f, server3 %.3f",
			first.AllIdle, last.AllIdle)
	}
	if first.PC1AResidency == nil || last.PC1AResidency == nil {
		t.Fatal("CPC1A members missing PC1A stats")
	}
	if *last.PC1AResidency <= *first.PC1AResidency {
		t.Errorf("drained server should sit deeper in PC1A: server0 %.3f, server3 %.3f",
			*first.PC1AResidency, *last.PC1AResidency)
	}
}

// TestFleetDeterminism is the cluster half of the repo's determinism
// contract: same seed, same fleet, bit-identical measurement — for every
// policy.
func TestFleetDeterminism(t *testing.T) {
	for _, pol := range []Policy{RoundRobin, LeastLoaded, PowerAware, RackAffinity, RackPowerAware} {
		run := func() Measurement {
			fl, err := New(Config{
				Policy:     pol,
				P99Target:  300 * sim.Microsecond,
				Topology:   Topology{Racks: 3, ServersPerRack: 1},
				TorLatency: 5 * sim.Microsecond,
				Members:    uniformMembers(3, soc.CPC1A),
			}, workload.MemcachedBursty(30000, 4), 7)
			if err != nil {
				t.Fatal(err)
			}
			return fl.Measure(5*sim.Millisecond, 30*sim.Millisecond)
		}
		a, b := run(), run()
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%v: repeated runs differ:\n%+v\n%+v", pol, a, b)
		}
	}
}

// TestDroppedSaturatedServer drives a heterogeneous fleet where
// round_robin keeps feeding a server that cannot keep up (its per-server
// kernel overhead makes every request take ~1s of core time). The
// backlog cannot clear within server.DrainCap, so the fleet's Dropped
// leak counter must surface those requests — concentrated on the slow
// server — and the fleet-wide accounting must still balance.
func TestDroppedSaturatedServer(t *testing.T) {
	slow := server.DefaultConfig()
	slow.KernelOverhead = sim.Second
	members := uniformMembers(2, soc.CPC1A)
	members[1].Server = slow

	fl, err := New(Config{Policy: RoundRobin, Members: members},
		workload.Memcached(10000), 1)
	if err != nil {
		t.Fatal(err)
	}
	fl.Run(100 * sim.Millisecond)

	if fl.Dropped() == 0 {
		t.Fatal("saturated server dropped nothing")
	}
	var served, dropped uint64
	healthyDropped := uint64(0)
	for i, m := range fl.members {
		served += m.srv.Served()
		dropped += m.dropped
		if i == 0 {
			healthyDropped = m.dropped
		}
	}
	if healthyDropped != 0 {
		t.Errorf("healthy server dropped %d requests", healthyDropped)
	}
	if got := fl.Generated(); got != served+dropped {
		t.Errorf("request accounting leaks: generated %d != served %d + dropped %d",
			got, served, dropped)
	}
	if dropped != fl.Dropped() {
		t.Errorf("Dropped() = %d, per-member sum %d", fl.Dropped(), dropped)
	}
}

// TestPowerAwareCapDerivation pins the cap formula's shape: more slack
// admits more in-flight requests, and the cap never drops below 1.
func TestPowerAwareCapDerivation(t *testing.T) {
	mc := MemberConfig{SoC: soc.DefaultConfig(soc.CPC1A), Server: server.DefaultConfig()}
	spec := workload.Memcached(10000)
	tight := powerAwareCap(mc, spec, 150*sim.Microsecond, 0)
	loose := powerAwareCap(mc, spec, sim.Millisecond, 0)
	if tight < 1 {
		t.Errorf("cap below 1: %d", tight)
	}
	if loose <= tight {
		t.Errorf("more latency slack should admit more load: tight %d, loose %d", tight, loose)
	}
	// A rack round trip eats into the same slack, so a remote member's
	// cap can never exceed a local one's.
	if remote := powerAwareCap(mc, spec, sim.Millisecond, 100*sim.Microsecond); remote > loose {
		t.Errorf("ToR round trip should not widen the cap: local %d, remote %d", loose, remote)
	}
	if c := powerAwareCap(mc, spec, sim.Nanosecond, 0); c != mc.SoC.CoreCount {
		// An unreachable target leaves no queueing slack: one request
		// per core.
		t.Errorf("no-slack cap = %d, want %d", c, mc.SoC.CoreCount)
	}
}
