package cluster

import (
	"math/rand"
	"testing"
)

// scanNode is the reference aggregate: the index-order scan the tree
// replaces, computed from scratch over [lo, hi).
func scanNode(members []*member, lo, hi int) treeNode {
	n := emptyNode
	for i := lo; i < hi && i < len(members); i++ {
		if i < 0 {
			continue
		}
		n = combine(n, leafFor(members[i], i))
	}
	return n
}

// scanFirst is the reference for firstSpare/firstActSpare: the lowest
// index in [lo, hi) whose leaf satisfies pred, or -1.
func scanFirst(members []*member, lo, hi int, pred func(treeNode) bool) int {
	for i := lo; i < hi && i < len(members); i++ {
		if i < 0 {
			continue
		}
		if n := leafFor(members[i], i); n.eligCnt == 1 && pred(n) {
			return i
		}
	}
	return -1
}

// TestTreeMatchesScan pins the segment tree to its definition: after
// every random mutation, every query over every range must equal the
// index-order scan it replaces — including the lowest-index tie-breaking
// of the min-load and first-fit answers.
func TestTreeMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 2, 3, 5, 8, 13} {
		members := make([]*member, n)
		for i := range members {
			members[i] = &member{idx: i, cap: 1 + rng.Intn(4), cores: 2}
		}
		var tr memberTree
		tr.build(members)
		for step := 0; step < 400; step++ {
			m := members[rng.Intn(n)]
			switch rng.Intn(6) {
			case 0:
				m.load = rng.Intn(6)
			case 1:
				m.cap = 1 + rng.Intn(4)
			case 2:
				m.state = memberState(rng.Intn(3))
			case 3:
				m.down = rng.Intn(2) == 0
			case 4:
				m.cut = rng.Intn(2) == 0
			case 5:
				m.load = 0
			}
			tr.update(m.idx)

			lo, hi := rng.Intn(n+1), rng.Intn(n+2)
			if got, want := tr.query(lo, hi), scanNode(members, lo, hi); got != want {
				t.Fatalf("n=%d step=%d query(%d,%d) = %+v, scan = %+v", n, step, lo, hi, got, want)
			}
			if got, want := tr.root(), scanNode(members, 0, n); got != want {
				t.Fatalf("n=%d step=%d root = %+v, scan = %+v", n, step, got, want)
			}
			spare := func(nd treeNode) bool { return nd.hasSpare }
			actSpare := func(nd treeNode) bool { return nd.hasActSpare }
			if got, want := tr.firstSpare(lo, hi), scanFirst(members, lo, hi, spare); got != want {
				t.Fatalf("n=%d step=%d firstSpare(%d,%d) = %d, scan = %d", n, step, lo, hi, got, want)
			}
			if got, want := tr.firstActSpare(lo, hi), scanFirst(members, lo, hi, actSpare); got != want {
				t.Fatalf("n=%d step=%d firstActSpare(%d,%d) = %d, scan = %d", n, step, lo, hi, got, want)
			}
		}
	}
}
