package cluster

import (
	"reflect"
	"strings"
	"testing"

	"agilepkgc/internal/server"
	"agilepkgc/internal/sim"
	"agilepkgc/internal/soc"
	"agilepkgc/internal/stats"
	"agilepkgc/internal/workload"
)

// faultFleet assembles the standard fault-test fleet: the drain-test
// topology (bursty 2×2 racked) with the given fault configuration.
func faultFleet(t *testing.T, pol Policy, fc FaultConfig, hold, epoch sim.Duration) *Fleet {
	t.Helper()
	fl, err := New(Config{
		Policy:        pol,
		P99Target:     300 * sim.Microsecond,
		Topology:      Topology{Racks: 2, ServersPerRack: 2},
		TorLatency:    5 * sim.Microsecond,
		DrainHold:     hold,
		FeedbackEpoch: epoch,
		Faults:        fc,
		Members:       uniformMembers(4, soc.CPC1A),
	}, workload.MemcachedBursty(150000, 8), 1)
	if err != nil {
		t.Fatal(err)
	}
	return fl
}

func TestFaultConfigValidation(t *testing.T) {
	spec := workload.Memcached(50000)
	base := func() Config {
		return Config{Policy: RoundRobin, Members: uniformMembers(2, soc.CPC1A)}
	}
	cases := []struct {
		name string
		fc   FaultConfig
	}{
		{"negative MTBF", FaultConfig{MTBF: -1, MTTR: 1}},
		{"MTBF without MTTR", FaultConfig{MTBF: sim.Millisecond}},
		{"negative MaxRetries", FaultConfig{MaxRetries: -1}},
		{"brownout without duration", FaultConfig{BrownoutMTBF: sim.Millisecond, BrownoutFactor: 2}},
		{"brownout factor below 1", FaultConfig{BrownoutMTBF: sim.Millisecond,
			BrownoutDuration: sim.Millisecond, BrownoutFactor: 0.5}},
		{"partition without duration", FaultConfig{TorPartitionMTBF: sim.Millisecond}},
		{"partition on flat fleet", FaultConfig{TorPartitionMTBF: sim.Millisecond,
			TorPartitionDuration: sim.Millisecond}},
	}
	for _, tc := range cases {
		cfg := base()
		cfg.Faults = tc.fc
		if _, err := New(cfg, spec, 1); err == nil {
			t.Errorf("%s: New accepted the config", tc.name)
		}
	}
	// The same partition config is valid on a racked fleet.
	cfg := base()
	cfg.Topology = Topology{Racks: 2, ServersPerRack: 1}
	cfg.TorLatency = 5 * sim.Microsecond
	cfg.Faults = FaultConfig{TorPartitionMTBF: sim.Millisecond, TorPartitionDuration: sim.Millisecond}
	if _, err := New(cfg, spec, 1); err != nil {
		t.Errorf("racked partition config rejected: %v", err)
	}
}

// TestFaultsDisabledAttachesNothing pins the parity mechanism: a zero
// FaultConfig must leave Fleet.flt nil, so routing takes the PR 5 path.
func TestFaultsDisabledAttachesNothing(t *testing.T) {
	fl := drainFleet(t, PowerAware, 500*sim.Microsecond, 0)
	if fl.flt != nil {
		t.Fatal("zero FaultConfig attached a fault layer")
	}
	if (FaultConfig{}).Enabled() {
		t.Fatal("zero FaultConfig reports Enabled")
	}
}

// TestCrashNeverRoutedAndRecovers is the availability property test:
// requests are never assigned to a crashed (or cut) member, crashed
// members' in-flight requests are retried, and every admitted arrival
// resolves exactly one way — ok, failed or shed.
func TestCrashNeverRoutedAndRecovers(t *testing.T) {
	for _, pol := range []Policy{RoundRobin, PowerAware, RackPowerAware} {
		fl := faultFleet(t, pol, FaultConfig{
			MTBF:           5 * sim.Millisecond,
			MTTR:           2 * sim.Millisecond,
			RequestTimeout: 2 * sim.Millisecond,
			MaxRetries:     2,
		}, 0, 0)
		fl.testOnRoute = func(m *member) {
			if !m.alive() {
				t.Errorf("%v: routed to a dead member (down %v, cut %v)", pol, m.down, m.cut)
			}
		}
		m := fl.Measure(5*sim.Millisecond, 50*sim.Millisecond)
		if m.Crashes == 0 {
			t.Fatalf("%v: no crashes injected — property test is vacuous", pol)
		}
		if m.Retried == 0 {
			t.Errorf("%v: crashes lost no in-flight requests to retry", pol)
		}
		if m.OK == 0 || m.GoodputQPS == 0 {
			t.Errorf("%v: fleet produced no goodput under crashes", pol)
		}
		if m.RecoveryP99 == 0 {
			t.Errorf("%v: retried requests succeeded but recovery quantiles are empty", pol)
		}
		if got := m.OK + m.Failed + m.Shed; got != m.Generated {
			t.Errorf("%v: ok %d + failed %d + shed %d = %d, want generated %d — requests leaked",
				pol, m.OK, m.Failed, m.Shed, got, m.Generated)
		}
	}
}

// TestCrashReleasesDrainHold locks the ISSUE's drain interaction: a
// held member that crashes releases its hold immediately, and the
// now-stale hold-expiry event is discarded by the hold-start stamp.
func TestCrashReleasesDrainHold(t *testing.T) {
	const hold = 5 * sim.Millisecond
	// MTBF far beyond the test horizon: the crash below is injected by
	// hand, and the repair it schedules draws from the real MTTR.
	fl := faultFleet(t, PowerAware, FaultConfig{
		MTBF: 1000 * sim.Second,
		MTTR: sim.Millisecond,
	}, hold, 0)
	fs := fl.flt
	m := fl.members[3]

	// Drain the empty member: it holds immediately, expiry in one hold.
	fl.drainMember(m)
	if m.state != stHeld {
		t.Fatalf("empty member did not hold (state %d)", m.state)
	}
	start := m.holdStart

	// Crash it mid-hold: the hold must be released (state active, so the
	// repaired member is routable the instant repair lands); the pending
	// expiry is discarded at fire time by the hold-start stamp.
	fl.eng.Run(fl.eng.Now() + hold/2)
	fs.crash(m)
	if m.state != stActive || !m.down {
		t.Fatalf("crash did not release the hold (state %d, down %v)", m.state, m.down)
	}

	// Re-drain after the crash (as the controller may) and let the STALE
	// expiry fire: the member must stay held until its OWN hold elapses.
	m.down = false
	fl.touch(m)
	fl.drainMember(m)
	if m.state != stHeld {
		t.Fatalf("re-drain did not hold (state %d)", m.state)
	}
	if m.holdStart == start {
		t.Fatal("re-drain did not restamp the hold start — the stale expiry would fire as genuine")
	}
	fl.eng.Run(fl.eng.Now() + hold*3/4) // past the first expiry, before the second
	if m.state != stHeld {
		t.Errorf("stale hold expiry re-activated the member early (state %d)", m.state)
	}
	fl.eng.Run(fl.eng.Now() + hold)
	if m.state != stActive {
		t.Errorf("second hold never expired (state %d)", m.state)
	}
}

// TestBrownoutDegradesLatency checks a brownout does what it claims:
// the same fleet with brownout injection has strictly worse mean
// latency than without, and the brownout counters surface it.
func TestBrownoutDegradesLatency(t *testing.T) {
	run := func(fc FaultConfig) Measurement {
		fl := faultFleet(t, RoundRobin, fc, 0, 0)
		return fl.Measure(5*sim.Millisecond, 50*sim.Millisecond)
	}
	base := run(FaultConfig{RequestTimeout: 50 * sim.Millisecond})
	degraded := run(FaultConfig{
		RequestTimeout:   50 * sim.Millisecond,
		BrownoutMTBF:     2 * sim.Millisecond,
		BrownoutDuration: sim.Millisecond,
		BrownoutFactor:   8,
	})
	if degraded.Brownouts == 0 {
		t.Fatal("no brownouts injected — comparison is vacuous")
	}
	if base.Brownouts != 0 {
		t.Fatal("baseline saw brownouts")
	}
	if degraded.MeanLatency <= base.MeanLatency {
		t.Errorf("brownouts did not degrade mean latency: %v <= %v",
			degraded.MeanLatency, base.MeanLatency)
	}
}

// TestPartitionCutsRackAndHeals: ToR partitions only hit non-local
// racks, cut members take no traffic while partitioned, and the fleet
// keeps producing goodput through retries.
func TestPartitionCutsRackAndHeals(t *testing.T) {
	fl := faultFleet(t, RackPowerAware, FaultConfig{
		TorPartitionMTBF:     10 * sim.Millisecond,
		TorPartitionDuration: 2 * sim.Millisecond,
		RequestTimeout:       2 * sim.Millisecond,
		MaxRetries:           2,
	}, 0, 0)
	fl.testOnRoute = func(m *member) {
		if !m.alive() {
			t.Errorf("routed to a cut member (rack %d)", m.rack)
		}
	}
	m := fl.Measure(5*sim.Millisecond, 80*sim.Millisecond)
	if m.Partitions == 0 {
		t.Fatal("no partitions injected — property test is vacuous")
	}
	if len(m.Racks) != 2 {
		t.Fatalf("expected 2 rack zones, got %d", len(m.Racks))
	}
	if m.Racks[0].Partitions != 0 {
		t.Errorf("local rack 0 was partitioned %d times", m.Racks[0].Partitions)
	}
	if m.Racks[1].Partitions != m.Partitions {
		t.Errorf("rack partition counts (%d) do not sum to the fleet's (%d)",
			m.Racks[1].Partitions, m.Partitions)
	}
	if m.OK == 0 {
		t.Error("no goodput under partitions")
	}
	if got := m.OK + m.Failed + m.Shed; got != m.Generated {
		t.Errorf("ok+failed+shed %d != generated %d", got, m.Generated)
	}
}

// TestTimeoutExhaustsRetryBudget: a fleet whose every request outlives
// the timeout fails every request after exactly MaxRetries retries.
func TestTimeoutExhaustsRetryBudget(t *testing.T) {
	const retries = 2
	spec := workload.Spec{
		Name:        "glacial",
		Arrivals:    stats.Poisson{RateV: 2000},
		Service:     stats.Deterministic{V: 0.1}, // 100 ms >> any timeout here
		Connections: 16,
		MemAccesses: 1,
	}
	fl, err := New(Config{
		Policy:  RoundRobin,
		Faults:  FaultConfig{RequestTimeout: sim.Millisecond, MaxRetries: retries},
		Members: uniformMembers(2, soc.CPC1A),
	}, spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	m := fl.Measure(0, 20*sim.Millisecond)
	fs := fl.flt
	if fs.failed == 0 || fs.ok != 0 {
		t.Fatalf("want all-failures, got ok %d failed %d", fs.ok, fs.failed)
	}
	// Every failure consumed its full retry budget; sheds consumed none.
	if want := retries * (fs.failed); fs.retried != want {
		t.Errorf("retried %d, want exactly %d (%d failures × %d retries)",
			fs.retried, want, fs.failed, retries)
	}
	if got := m.OK + m.Failed + m.Shed; got != m.Generated {
		t.Errorf("ok+failed+shed %d != generated %d", got, m.Generated)
	}
}

// TestHedgeRaceFirstResponseWins: hedged copies are submitted after the
// delay, the losing copy's response is ignored (machine completions
// exceed client successes), and no request is double-counted.
func TestHedgeRaceFirstResponseWins(t *testing.T) {
	fl, err := New(Config{
		Policy:  LeastLoaded,
		Faults:  FaultConfig{HedgeDelay: 50 * sim.Microsecond},
		Members: uniformMembers(2, soc.CPC1A),
	}, workload.Memcached(50000), 1)
	if err != nil {
		t.Fatal(err)
	}
	m := fl.Measure(5*sim.Millisecond, 30*sim.Millisecond)
	if m.Hedged == 0 {
		t.Fatal("no hedges fired — property test is vacuous")
	}
	if m.Failed != 0 || m.Shed != 0 {
		t.Fatalf("hedge-only fleet failed %d / shed %d requests", m.Failed, m.Shed)
	}
	if m.OK != m.Generated {
		t.Errorf("ok %d != generated %d: hedging lost or duplicated requests", m.OK, m.Generated)
	}
	// Each hedge's loser still completes inside its machine: the
	// machine-view served count exceeds client successes by exactly the
	// number of races both copies finished.
	if m.Served < m.OK {
		t.Errorf("served %d < ok %d — a client success nobody served", m.Served, m.OK)
	}
}

// TestShedWhenNoLiveCapacity: when every member is down, arrivals are
// shed at the balancer instead of queueing forever.
func TestShedWhenNoLiveCapacity(t *testing.T) {
	fl := faultFleet(t, RoundRobin, FaultConfig{
		MTBF: 1,                 // crash essentially immediately...
		MTTR: 1000 * sim.Second, // ...and never repair within the run
	}, 0, 0)
	m := fl.Measure(0, 20*sim.Millisecond)
	if m.Crashes == 0 {
		t.Fatal("no crashes — test is vacuous")
	}
	if m.Shed == 0 {
		t.Error("fleet with zero live capacity shed nothing")
	}
	if got := m.OK + m.Failed + m.Shed; got != m.Generated {
		t.Errorf("ok+failed+shed %d != generated %d", got, m.Generated)
	}
}

// TestFaultDeterminism extends the fleet determinism contract to the
// full fault stack: crashes, brownouts, partitions, timeouts, retries
// and hedging layered over the drain controller and feedback loop —
// same seed, bit-identical measurement.
func TestFaultDeterminism(t *testing.T) {
	fc := FaultConfig{
		MTBF:                 8 * sim.Millisecond,
		MTTR:                 2 * sim.Millisecond,
		BrownoutMTBF:         6 * sim.Millisecond,
		BrownoutDuration:     sim.Millisecond,
		BrownoutFactor:       4,
		TorPartitionMTBF:     15 * sim.Millisecond,
		TorPartitionDuration: 2 * sim.Millisecond,
		RequestTimeout:       2 * sim.Millisecond,
		MaxRetries:           2,
		HedgeDelay:           sim.Millisecond,
	}
	run := func() Measurement {
		fl := faultFleet(t, RackPowerAware, fc, 500*sim.Microsecond, 2*sim.Millisecond)
		return fl.Measure(5*sim.Millisecond, 40*sim.Millisecond)
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Error("repeated fault runs differ")
	}
	if a.Crashes == 0 || a.Brownouts == 0 || a.Partitions == 0 || a.Retried == 0 {
		t.Errorf("determinism test under-exercised: crashes %d brownouts %d partitions %d retried %d",
			a.Crashes, a.Brownouts, a.Partitions, a.Retried)
	}
}

// TestRackDroppedAggregation covers the rack-zone fold of the drain
// leak counters (cluster.go rackStats): per-rack Dropped and
// TruncatedDrain must sum the members', and the fleet total must sum
// the racks'.
func TestRackDroppedAggregation(t *testing.T) {
	spec := workload.Spec{
		Name:        "glacial",
		Arrivals:    stats.Poisson{RateV: 5000},
		Service:     stats.Deterministic{V: 3 * server.DrainCap.Seconds()},
		Connections: 8,
		MemAccesses: 1,
	}
	fl, err := New(Config{
		Policy:     RoundRobin,
		Topology:   Topology{Racks: 2, ServersPerRack: 1},
		TorLatency: 5 * sim.Microsecond,
		Members:    uniformMembers(2, soc.CPC1A),
	}, spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	m := fl.Measure(0, sim.Millisecond)
	if m.Dropped == 0 {
		t.Fatal("drain cap never tripped — aggregation test is vacuous")
	}
	var rackDropped, rackTrunc uint64
	for _, rs := range m.Racks {
		rackDropped += rs.Dropped
		rackTrunc += rs.TruncatedDrain
		var wantD, wantT uint64
		for _, ss := range m.Servers {
			if ss.Rack == rs.Index {
				wantD += ss.Dropped
				wantT += ss.TruncatedDrain
			}
		}
		if rs.Dropped != wantD || rs.TruncatedDrain != wantT {
			t.Errorf("rack %d: dropped %d truncated %d, want %d/%d from its servers",
				rs.Index, rs.Dropped, rs.TruncatedDrain, wantD, wantT)
		}
	}
	if rackDropped != m.Dropped || rackTrunc != m.TruncatedDrain {
		t.Errorf("rack sums %d/%d != fleet %d/%d", rackDropped, rackTrunc, m.Dropped, m.TruncatedDrain)
	}
	// These stragglers are still progressing (their service events are
	// pending), so they are truncated, not leaked.
	if m.TruncatedDrain != m.Dropped {
		t.Errorf("truncated %d != dropped %d: pending completions misread as leaks",
			m.TruncatedDrain, m.Dropped)
	}
}

// TestStaleHoldExpiryDiscarded covers the stale-expiry filter directly:
// a member re-admitted and re-drained within one hold must ignore the
// first hold's expiry event and honor only its own.
func TestStaleHoldExpiryDiscarded(t *testing.T) {
	const hold = 4 * sim.Millisecond
	fl := drainFleet(t, PowerAware, hold, 0)
	m := fl.members[3]

	fl.drainMember(m) // empty → held; expiry scheduled at now+hold
	if m.state != stHeld {
		t.Fatalf("empty member did not hold (state %d)", m.state)
	}
	// Emergency re-admission mid-hold (what pickLiveAvoid does when no
	// eligible member is left), then an immediate re-drain.
	fl.eng.Run(fl.eng.Now() + hold/2)
	m.state = stActive
	fl.touch(m)
	fl.drainMember(m) // second hold; expiry at now+hold
	if m.state != stHeld {
		t.Fatalf("re-drain did not hold (state %d)", m.state)
	}
	fl.eng.Run(fl.eng.Now() + 3*hold/4) // first expiry fires in here
	if m.state != stHeld {
		t.Error("stale hold expiry re-activated the member before its own hold elapsed")
	}
	fl.eng.Run(fl.eng.Now() + hold/2) // second expiry fires in here
	if m.state != stActive {
		t.Error("the member's own hold expiry never re-activated it")
	}
}

// TestFaultValidateReportsFirstDeclaredField locks the validation
// error's determinism: with several negative knobs, the one reported
// is the first in FaultConfig's declared field order on every run (the
// loop iterates a slice, not a map — the apcvet determinism pass
// rejects error text born from map iteration).
func TestFaultValidateReportsFirstDeclaredField(t *testing.T) {
	fc := FaultConfig{
		MTBF:             -sim.Second,
		TorPartitionMTBF: -sim.Second,
		HedgeDelay:       -sim.Second,
	}
	err := fc.validate(Topology{Racks: 2, ServersPerRack: 2})
	if err == nil {
		t.Fatal("negative fault durations must not validate")
	}
	if want := "negative Faults.MTBF"; !strings.Contains(err.Error(), want) {
		t.Fatalf("validate reported %q; want the first declared field (%q)", err, want)
	}
}
