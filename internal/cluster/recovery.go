package cluster

// Request robustness for the fault layer (DESIGN.md §8): per-request
// timeouts with bounded retries and exponential backoff, hedged
// requests, and explicit load shedding. This is the balancer-side half
// of faults.go — the machinery that turns injected faults into the
// production outcomes (Failed/Retried/Hedged/Shed, goodput, time to
// recover) instead of silent infinite queueing.
//
// The layer separates the *logical request* — what the client sent and
// is waiting on — from its *attempts* — the copies actually submitted
// to members. A logical request resolves exactly once, as ok, failed or
// shed; attempts multiply under retries and hedging and each shows up
// in its member's Routed count, which is why Routed can exceed
// Generated when the fault layer is active.
//
// Lifecycle of a logical request:
//
//	arrival ──► (shed?) ──► attempt 1 ──┬─► response wins ──► ok
//	                  hedge timer ──► attempt 2 ┘
//	     timeout / crash / partition ──► retry (budget left) ──► ...
//	                                └─► failed (budget exhausted)
//
// Every decision happens at an engine event and scans members in index
// order; the winner of a hedge race is decided by the engine's
// deterministic (time, sequence) order, and losers are abandoned by
// flagging their attempts and cancelling their timers via sim.Event
// Cancel — never by racing state. Serial and parallel sweeps therefore
// stay bit-identical with faults enabled.

import (
	"agilepkgc/internal/sim"
	"agilepkgc/internal/workload"
)

// shedSlack is the overload threshold: an arrival is shed when the live
// members' aggregate backlog reaches shedSlack× their aggregate
// capacity. Past that point queueing delay is already several times the
// no-load service time and admitting more load only manufactures
// timeouts, so overload is measured (Shed) rather than simulated as
// unbounded queueing.
const shedSlack = 4

// maxTimeoutShift bounds the exponential-backoff exponent so a large
// MaxRetries cannot shift the timeout past the int64 horizon.
const maxTimeoutShift = 20

// logicalReq is one client request as the balancer tracks it: the
// original arrival plus the retry/hedge bookkeeping. It resolves
// exactly once (done), as a success, a failure, or — before it is ever
// created — a shed. Records are pooled (faultState.freeLR): the timeout
// and hedge callbacks are created once at record birth, and the record
// returns to the pool at resolution. Zombie attempts may still point at
// a recycled record, which is why every late reader guards with at.lost
// before dereferencing lr.
//
//apcvet:pooled
type logicalReq struct {
	fs *faultState

	id      uint64
	arrival sim.Time
	service sim.Duration
	conn    int
	mem     int

	tries       int  // attempts submitted (retries included, hedges not)
	retriesLeft int  // remaining retry budget
	hedged      bool // hedged copy submitted
	suffered    bool // lost an attempt or timed out at least once
	done        bool // resolved (ok or failed)

	live    []*attempt // outstanding copies (at most 2: primary + hedge)
	timeout sim.Event  // pending per-attempt timeout
	hedge   sim.Event  // pending hedge trigger

	timeoutFn func() // preallocated: fs.timeoutFire(this)
	hedgeFn   func() // preallocated: fs.hedgeFire(this)
}

// attempt is one submitted copy of a logical request, tracked on both
// the request (live) and the member it went to (member.live, indexed by
// liveIdx for O(1) detach). A lost attempt's eventual completion inside
// the machine is ignored — the zombie keeps the machine's power and
// occupancy honest but produces no client-visible response. Records are
// pooled (faultState.freeAT) with their delivery/completion callbacks
// created once at birth; the submitted request itself is the embedded
// req value, valid until the record is freed — in complete for every
// attempt the server saw, or at transit arrival for copies dropped on
// the hop.
//
//apcvet:pooled
type attempt struct {
	fs      *faultState
	lr      *logicalReq
	m       *member
	liveIdx int // index in m.live; -1 once detached
	lost    bool

	req       workload.Request
	doneFn    func() // preallocated: fs.complete(this)
	transitFn func() // preallocated: fs.transitArrive(this)
}

// newLogical takes a record off the pool (resetting it, keeping its
// identity-bound callbacks and live backing array) or builds one.
//
//apcvet:noalloc
func (fs *faultState) newLogical() *logicalReq {
	if n := len(fs.freeLR); n > 0 {
		lr := fs.freeLR[n-1]
		fs.freeLR = fs.freeLR[:n-1]
		*lr = logicalReq{fs: lr.fs, live: lr.live[:0], timeoutFn: lr.timeoutFn, hedgeFn: lr.hedgeFn}
		return lr
	}
	lr := &logicalReq{fs: fs}                       //apcvet:alloc pool miss: record + callbacks amortize over every request the record later carries
	lr.timeoutFn = func() { lr.fs.timeoutFire(lr) } //apcvet:alloc created once per record at pool miss; reused for every later request
	lr.hedgeFn = func() { lr.fs.hedgeFire(lr) }     //apcvet:alloc created once per record at pool miss; reused for every later request
	return lr
}

// freeLogical recycles a resolved record. Its timers are already
// cancelled; a caller that still reads lr.done after this returns sees
// true until some later arrival reuses the record, which cannot happen
// within the current engine event.
//
//apcvet:poolput
//apcvet:noalloc
func (fs *faultState) freeLogical(lr *logicalReq) {
	fs.freeLR = append(fs.freeLR, lr)
}

// newAttempt binds a pooled (or fresh) attempt record to one copy of lr
// aimed at m.
//
//apcvet:noalloc
func (fs *faultState) newAttempt(lr *logicalReq, m *member) *attempt {
	var at *attempt
	if n := len(fs.freeAT); n > 0 {
		at = fs.freeAT[n-1]
		fs.freeAT = fs.freeAT[:n-1]
	} else {
		at = &attempt{fs: fs}                             //apcvet:alloc pool miss: record + callbacks amortize over every request the record later carries
		at.doneFn = func() { at.fs.complete(at) }         //apcvet:alloc created once per record at pool miss; reused for every later request
		at.transitFn = func() { at.fs.transitArrive(at) } //apcvet:alloc created once per record at pool miss; reused for every later request
	}
	at.lr, at.m, at.lost, at.liveIdx = lr, m, false, -1
	return at
}

// freeAttempt recycles an attempt record once nothing can call back
// into it: after its completion ran, or after its transit delivery was
// dropped (the one path where completion never fires).
//
//apcvet:poolput
//apcvet:noalloc
func (fs *faultState) freeAttempt(at *attempt) {
	at.lr, at.m = nil, nil
	fs.freeAT = append(fs.freeAT, at)
}

// route is the fault layer's arrival path, replacing Fleet.route's body
// when the layer is attached. The generator's request is copied into
// the logical record and released immediately — the fault layer issues
// its own per-attempt requests.
//
//apcvet:noalloc
func (fs *faultState) route(req *workload.Request) {
	if fs.shouldShed() {
		fs.shed++
		id, arr, conn := req.ID, req.Arrival, req.Conn
		fs.f.gen.Release(req)
		if fs.f.onResolve != nil {
			// A shed is a resolution too: without this a service graph
			// waiting on the request would wait forever.
			fs.f.onResolve(id, arr, conn, false)
		}
		return
	}
	lr := fs.newLogical()
	lr.id = req.ID
	lr.arrival = fs.f.eng.Now()
	lr.service = req.Service
	lr.conn = req.Conn
	lr.mem = req.MemAccesses
	lr.retriesLeft = fs.cfg.MaxRetries
	fs.f.gen.Release(req)
	fs.dispatch(lr)
	if fs.cfg.HedgeDelay > 0 && !lr.done {
		lr.hedge = fs.f.eng.Schedule(fs.cfg.HedgeDelay, lr.hedgeFn)
	}
}

// dispatch submits the next attempt of lr and arms its timeout. The
// k-th attempt waits RequestTimeout·2^(k−1) — the backoff rides on the
// timeout itself, since the balancer has nothing else to wait for.
//
//apcvet:noalloc
func (fs *faultState) dispatch(lr *logicalReq) {
	m := fs.pickLive()
	if m == nil {
		fs.fail(lr, nil)
		return
	}
	if lr.tries > 0 {
		m.retried++
	}
	lr.tries++
	fs.submitTo(lr, m)
	if fs.cfg.RequestTimeout > 0 {
		d := fs.cfg.RequestTimeout
		if shift := lr.tries - 1; shift > 0 {
			if shift > maxTimeoutShift {
				shift = maxTimeoutShift
			}
			if d > maxDuration>>shift {
				d = maxDuration
			} else {
				d <<= sim.Duration(shift)
			}
		}
		lr.timeout.Cancel()
		lr.timeout = fs.f.eng.Schedule(d, lr.timeoutFn)
	}
}

// pickLive routes an attempt: the configured policy when any member is
// eligible, otherwise an emergency re-admission of the least-loaded
// live member — waking a member the drain controller was resting beats
// failing the request.
//
//apcvet:noalloc
func (fs *faultState) pickLive() *member {
	if fs.f.tree.root().eligCnt > 0 {
		return fs.f.pick()
	}
	return fs.pickLiveAvoid(nil)
}

// pickLiveAvoid returns the least-loaded live member other than avoid
// (lowest index on ties), preferring eligible members and re-admitting
// a resting one only when no eligible member exists. Returns nil when
// every other member is dead or cut — hedging to the same machine is
// pointless and retrying has nowhere to go.
//
//apcvet:noalloc
func (fs *faultState) pickLiveAvoid(avoid *member) *member {
	f := fs.f
	var best *member
	for _, m := range f.members {
		if m == avoid || !m.eligible() {
			continue
		}
		if best == nil || f.load(m) < f.load(best) {
			best = m
		}
	}
	if best != nil {
		return best
	}
	for _, m := range f.members {
		if m == avoid || !m.alive() {
			continue
		}
		if best == nil || f.load(m) < f.load(best) {
			best = m
		}
	}
	if best != nil && best.state != stActive {
		// Emergency re-admission: the hold is void; a stale hold expiry
		// no-ops because any future re-hold stamps a new holdStart.
		best.state = stActive
		fs.f.touch(best)
	}
	return best
}

// submitTo sends one copy of lr to m — the fault-layer mirror of
// Fleet.route's delivery half, plus attempt tracking and the brownout
// service-time penalty.
//
//apcvet:noalloc
func (fs *faultState) submitTo(lr *logicalReq, m *member) {
	f := fs.f
	if f.testOnRoute != nil {
		f.testOnRoute(m)
	}
	m.routed++
	at := fs.newAttempt(lr, m)
	at.liveIdx = len(m.live)
	m.live = append(m.live, at)
	lr.live = append(lr.live, at)
	at.req = workload.Request{
		ID:          lr.id,
		Arrival:     f.eng.Now(),
		Service:     lr.service,
		Conn:        lr.conn,
		MemAccesses: lr.mem,
	}
	if m.brown {
		at.req.Service = sim.Duration(float64(at.req.Service) * fs.cfg.BrownoutFactor)
	}
	m.load++
	f.touch(m)
	if m.tor > 0 {
		m.transit++
		f.eng.Schedule(m.tor, at.transitFn)
	} else {
		m.srv.Submit(&at.req, at.doneFn)
	}
	if f.ctrl != nil && f.ctrl.hold > 0 {
		f.maybeDrain()
	}
}

// transitArrive delivers one attempt at the end of its ToR hop. Copies
// that lost their race — or whose member died — while riding the hop
// are never submitted, so their occupancy claim is released and the
// record freed here (completion will never fire for them).
//
//apcvet:noalloc
func (fs *faultState) transitArrive(at *attempt) {
	m := at.m
	m.transit--
	// at.lost short-circuits before lr is dereferenced: a lost copy's
	// logical request may already be resolved and recycled.
	if at.lost || at.lr.done {
		m.load--
		fs.f.touch(m)
		fs.freeAttempt(at)
		return
	}
	if !m.alive() {
		// The fault hit while this copy rode the hop; failLive already
		// catches in-transit attempts, so this is a defensive backstop,
		// not a known path.
		fs.detach(at)
		at.lost = true
		m.load--
		fs.f.touch(m)
		fs.lose(at)
		fs.freeAttempt(at)
		return
	}
	m.srv.Submit(&at.req, at.doneFn)
}

// complete observes one attempt's response leaving its member's NIC.
// Zombie completions — attempts already lost to a fault, a timeout or a
// hedge race — still feed the drain controller's empty detection (the
// machine really did finish work) but produce no client-visible
// response. The first live completion wins the logical request.
//
//apcvet:noalloc
func (fs *faultState) complete(at *attempt) {
	f, m := fs.f, at.m
	m.load--
	f.touch(m)
	// at.lost short-circuits before lr is dereferenced: a zombie's
	// logical request may already be resolved and recycled.
	lr := at.lr
	win := !at.lost && !lr.done
	if f.ctrl != nil {
		if m.win != nil && win {
			// Client-observed latency of the winning response, recorded at
			// the member that produced it — the signal the feedback loop
			// packs against.
			e2e := f.eng.Now() - lr.arrival + m.netLat
			m.win.Add(e2e.Seconds())
		}
		if f.ctrl.hold > 0 && m.state == stDraining && m.load == 0 {
			f.holdMember(m)
		}
	}
	if !win {
		fs.freeAttempt(at)
		return
	}
	fs.detach(at)
	lr.done = true
	lr.timeout.Cancel()
	lr.hedge.Cancel()
	for _, o := range lr.live {
		if o != at {
			// The hedge race's loser: abandoned, its response ignored.
			o.lost = true
			fs.detach(o)
		}
	}
	lr.live = lr.live[:0]
	e2e := f.eng.Now() - lr.arrival + m.netLat
	sec := e2e.Seconds()
	fs.lat.Add(sec)
	if lr.suffered {
		fs.recovery.Add(sec)
	}
	m.ok++
	fs.ok++
	id, arr, conn := lr.id, lr.arrival, lr.conn
	fs.freeAttempt(at)
	fs.freeLogical(lr)
	if f.onResolve != nil {
		f.onResolve(id, arr, conn, true)
	}
}

// timeoutFire abandons every outstanding copy of lr — their eventual
// responses are ignored — and retries or fails it.
//
//apcvet:noalloc
func (fs *faultState) timeoutFire(lr *logicalReq) {
	if lr.done {
		return
	}
	lr.timeout = sim.Event{}
	lr.suffered = true
	var last *member
	for _, at := range lr.live {
		last = at.m
		at.lost = true
		fs.detach(at)
	}
	lr.live = lr.live[:0]
	fs.retryOrFail(lr, last)
}

// lose handles one attempt lost to a fault (crash, partition): if a
// hedged copy is still racing the request rides on it; otherwise the
// request retries or fails at this instant.
//
//apcvet:noalloc
func (fs *faultState) lose(at *attempt) {
	lr := at.lr
	if lr.done {
		return
	}
	lr.suffered = true
	for i, o := range lr.live {
		if o == at {
			lr.live = append(lr.live[:i], lr.live[i+1:]...)
			break
		}
	}
	if len(lr.live) > 0 {
		return
	}
	fs.retryOrFail(lr, at.m)
}

// retryOrFail spends one retry credit or resolves the request as
// failed. m attributes the failure to the member whose attempt died
// last (nil when no attempt was ever submitted).
//
//apcvet:noalloc
func (fs *faultState) retryOrFail(lr *logicalReq, m *member) {
	if lr.retriesLeft > 0 {
		lr.retriesLeft--
		fs.retried++
		fs.dispatch(lr)
		return
	}
	fs.fail(lr, m)
}

// fail resolves lr as failed: its retry budget is exhausted (or nowhere
// live remains to send it). lr.live is empty on every path here — the
// callers (timeout, loss, a dispatch that found no member) abandoned or
// never created the outstanding copies.
//
//apcvet:noalloc
func (fs *faultState) fail(lr *logicalReq, m *member) {
	lr.done = true
	lr.timeout.Cancel()
	lr.hedge.Cancel()
	lr.live = lr.live[:0]
	fs.failed++
	if m != nil {
		m.failed++
	}
	id, arr, conn := lr.id, lr.arrival, lr.conn
	fs.freeLogical(lr)
	if fs.f.onResolve != nil {
		fs.f.onResolve(id, arr, conn, false)
	}
}

// hedgeFire submits the hedged copy: a second attempt to a different
// live member, racing the first — whichever response arrives first wins
// in complete, and the loser is abandoned there.
//
//apcvet:noalloc
func (fs *faultState) hedgeFire(lr *logicalReq) {
	if lr.done || lr.hedged {
		return
	}
	lr.hedge = sim.Event{}
	if len(lr.live) == 0 {
		return // mid-retry; the fresh attempt restarts the race alone
	}
	m := fs.pickLiveAvoid(lr.live[0].m)
	if m == nil {
		return
	}
	lr.hedged = true
	fs.hedged++
	m.hedged++
	fs.submitTo(lr, m)
}

// detach removes the attempt from its member's live set (swap-remove;
// order within the set never matters, loss handling iterates a
// snapshot).
//
//apcvet:noalloc
func (fs *faultState) detach(at *attempt) {
	i := at.liveIdx
	if i < 0 {
		return
	}
	live := at.m.live
	last := len(live) - 1
	live[i] = live[last]
	live[i].liveIdx = i
	live[last] = nil
	at.m.live = live[:last]
	at.liveIdx = -1
}

// shouldShed reports whether this arrival must be dropped at the
// balancer: no live member exists, or the live members' aggregate
// backlog has reached shedSlack× their aggregate capacity (each
// member's capacity is its packing cap or its core count, whichever is
// larger). Shedding is the fault layer's graceful-degradation valve —
// without it a long partition turns into unbounded queueing and every
// admitted request times out anyway.
//
//apcvet:noalloc
func (fs *faultState) shouldShed() bool {
	f := fs.f
	if f.aliveCnt == 0 {
		return true
	}
	return f.aliveLoad >= shedSlack*f.aliveCap
}
