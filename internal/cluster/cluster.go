// Package cluster simulates a fleet of servers behind one load
// balancer — the layer above internal/server that makes datacenter-level
// questions (watts per QPS across N machines, does packing load onto few
// servers deepen PC1A residency on the drained ones?) expressible.
//
// A Fleet is N independent soc.System + server.Server instances driven
// from ONE deterministic sim.Engine: every NIC DMA, C-state transition
// and response on every machine is an event in a single (time, sequence)
// order, so a fleet run is exactly as reproducible as a single-machine
// run — same seed, bit-identical traces. The aggregate request stream is
// produced by one workload.Source — the synthetic workload.Generator
// seeded from the caller's seed by default, or a custom source (e.g.
// trace replay, Config.NewSource) — and a routing policy assigns each
// arrival to a member:
//
//	round_robin      — arrival i goes to server i mod N.
//	least_loaded     — fewest in-flight requests; ties break to the
//	                   lowest server index (deterministic).
//	power_aware      — pack onto the lowest-indexed server whose
//	                   in-flight count is below a per-server cap derived
//	                   from the p99 latency target, so high-indexed
//	                   servers stay idle and sink into deep package
//	                   C-states. When every server is at its cap the
//	                   policy degrades to least_loaded rather than
//	                   queueing at the balancer.
//	rack_affinity    — pack onto the fewest racks, then the fewest
//	                   servers within the chosen rack, with each server's
//	                   natural capacity (one in-flight request per core)
//	                   as the bin size; all ties break by index.
//	rack_power_aware — power_aware's derived in-flight cap applied
//	                   rack-first: stay on already-active racks while any
//	                   of their servers has cap headroom, and only then
//	                   wake a new rack.
//
// Fleets are optionally shaped into a Topology of racks: rack 0 hosts
// the balancer, and every request routed into another rack pays a
// configurable top-of-rack hop (Config.TorLatency) in each direction —
// the inbound hop as a scheduled transit event on the shared engine, the
// return hop folded into the member's recorded network round trip. A
// flat topology (one rack, zero ToR latency) schedules no extra events,
// so it reproduces the rackless fleet byte for byte (the scenario
// layer's TestRackFlatParity locks this).
//
// Each member keeps its own power meter; fleet power is the sum of the
// per-server meters' energy integrals over the measured window, and each
// rack additionally aggregates its members into a rack-zone integral
// (RackStats) — the pool/zone granularity production power tooling
// manages. A 1-server round_robin fleet is, by construction, byte-for-
// byte the single-server simulation (the scenario layer's parity test
// enforces this), which pins the cluster layer as a strict
// generalization.
package cluster

import (
	"fmt"
	"math"
	"sort"

	"agilepkgc/internal/cpu"
	"agilepkgc/internal/pmu"
	"agilepkgc/internal/power"
	"agilepkgc/internal/server"
	"agilepkgc/internal/sim"
	"agilepkgc/internal/soc"
	"agilepkgc/internal/stats"
	"agilepkgc/internal/trace"
	"agilepkgc/internal/workload"
)

// Policy selects how the load balancer assigns arrivals to servers.
type Policy int

const (
	// RoundRobin cycles arrivals across servers in index order.
	RoundRobin Policy = iota
	// LeastLoaded routes to the server with the fewest in-flight
	// requests (lowest index wins ties).
	LeastLoaded
	// PowerAware packs arrivals onto the fewest servers that keep p99
	// latency under Config.P99Target, leaving the rest idle.
	PowerAware
	// RackAffinity packs arrivals onto the fewest racks, then the fewest
	// servers, using one-in-flight-per-core as each server's capacity.
	RackAffinity
	// RackPowerAware applies PowerAware's derived in-flight cap
	// rack-first: already-active racks absorb load before a new rack
	// wakes.
	RackPowerAware
)

// String returns the policy's scenario-file spelling.
func (p Policy) String() string {
	switch p {
	case RoundRobin:
		return "round_robin"
	case LeastLoaded:
		return "least_loaded"
	case PowerAware:
		return "power_aware"
	case RackAffinity:
		return "rack_affinity"
	case RackPowerAware:
		return "rack_power_aware"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy maps a scenario-file spelling to its Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "round_robin":
		return RoundRobin, nil
	case "least_loaded":
		return LeastLoaded, nil
	case "power_aware":
		return PowerAware, nil
	case "rack_affinity":
		return RackAffinity, nil
	case "rack_power_aware":
		return RackPowerAware, nil
	default:
		return 0, fmt.Errorf("cluster: unknown policy %q (want one of %v)", s, PolicyNames())
	}
}

// PolicyNames returns the supported policy spellings, sorted.
func PolicyNames() []string {
	names := []string{
		RoundRobin.String(), LeastLoaded.String(), PowerAware.String(),
		RackAffinity.String(), RackPowerAware.String(),
	}
	sort.Strings(names)
	return names
}

// Topology shapes the fleet into racks: Racks × ServersPerRack members,
// rack r holding the contiguous server-index block
// [r·ServersPerRack, (r+1)·ServersPerRack). Rack 0 is the local rack —
// the balancer hangs off its top-of-rack switch — so only traffic into
// racks 1..Racks-1 pays Config.TorLatency. The zero value means a flat
// fleet: one rack holding every member.
type Topology struct {
	Racks          int `json:"racks"`
	ServersPerRack int `json:"servers_per_rack"`
}

// Flat returns the single-rack topology holding n servers.
func Flat(n int) Topology { return Topology{Racks: 1, ServersPerRack: n} }

// Servers returns the member count the topology shapes.
func (t Topology) Servers() int { return t.Racks * t.ServersPerRack }

// RackOf returns the rack index holding the given server index.
func (t Topology) RackOf(server int) int { return server / t.ServersPerRack }

// IsFlat reports whether the topology has a single rack (no ToR hops,
// no rack-zone accounting).
func (t Topology) IsFlat() bool { return t.Racks <= 1 }

// String renders the topology as "racks×servers-per-rack".
func (t Topology) String() string { return fmt.Sprintf("%dx%d", t.Racks, t.ServersPerRack) }

// validate checks the topology against the fleet size.
func (t Topology) validate(members int) error {
	if t.Racks < 1 || t.ServersPerRack < 1 {
		return fmt.Errorf("cluster: topology %s needs at least 1 rack and 1 server per rack", t)
	}
	if t.Servers() != members {
		return fmt.Errorf("cluster: topology %s shapes %d servers but the fleet has %d members",
			t, t.Servers(), members)
	}
	return nil
}

// MemberConfig configures one server of the fleet.
type MemberConfig struct {
	// SoC is the machine configuration (kind, core count, power params).
	SoC soc.Config
	// Server is the software-stack configuration (network latency,
	// kernel overhead, batching, timer ticks).
	Server server.Config
}

// Config parameterizes a Fleet.
type Config struct {
	// Policy is the routing policy.
	Policy Policy
	// P99Target is the latency budget the power_aware and
	// rack_power_aware policies pack against; required (> 0) for those
	// policies, ignored otherwise.
	P99Target sim.Duration
	// Topology shapes the members into racks. The zero value means flat:
	// one rack holding every member.
	Topology Topology
	// TorLatency is the one-way top-of-rack hop paid per direction by
	// requests routed into a rack other than rack 0 (where the balancer
	// sits). Inert on flat topologies, which have no non-local rack.
	TorLatency sim.Duration
	// DrainHold, when non-zero, turns on the hysteretic drain controller
	// for the power_aware and rack_power_aware policies (ignored by the
	// others, which derive no cap): once the controller decides a server
	// (or, rack-first under rack_power_aware, a whole rack) is surplus,
	// the balancer stops routing to it until its in-flight count reaches
	// zero AND this much additional virtual time passes, so drained
	// members accumulate consolidated idle stretches instead of flapping
	// at the packing frontier. Zero keeps the static PR 4 behavior —
	// byte-identical event sequence, no controller events. See drain.go.
	DrainHold sim.Duration
	// FeedbackEpoch, when non-zero, arms the SLA feedback loop for the
	// power_aware and rack_power_aware policies: every epoch of virtual
	// time each member's packing cap is recomputed from its measured
	// window p99 against P99Target (multiplicative decrease, additive
	// increase, integer caps, members updated in index order), replacing
	// the static derived cap after the first epoch. Zero keeps the
	// static cap for the whole run. See drain.go.
	FeedbackEpoch sim.Duration
	// Faults configures fault injection (crashes, brownouts, ToR
	// partitions) and request robustness (timeouts, retries, hedging,
	// shedding). The zero value disables the whole layer — no state, no
	// events, byte-identical output. See faults.go and recovery.go.
	Faults FaultConfig
	// Members configures each server; the slice index is the server id
	// routing policies and reports use.
	Members []MemberConfig
	// NewSource, when non-nil, replaces the synthetic workload generator:
	// build calls it with the fleet's engine, spec, seed and routing sink
	// and drives whatever Source it returns through the same Start/drain
	// window protocol. Trace replay (internal/workload/replay) plugs in
	// here. The factory runs once per build or Reset — it must return a
	// source bound to the engine it is handed, never a stale one — and
	// the spec should describe the replayed stream (rate, service mean)
	// since the packing caps are derived from it. Nil keeps the synthetic
	// generator path byte for byte.
	NewSource func(eng *sim.Engine, spec workload.Spec, seed uint64, sink func(*workload.Request)) workload.Source
}

// member is one server plus the balancer's bookkeeping for it. Policy
// decisions read the balancer's tracked occupancy count (load — requests
// inside the machine plus requests still riding the ToR hop toward it);
// the balancer adds only what the server cannot know: its rack, how many
// arrivals were assigned to it and how many it leaked at drain time.
type member struct {
	sys     *soc.System
	srv     *server.Server
	idx     int          // position in Fleet.members (tree leaf index)
	rack    int          // topology rack index
	tor     sim.Duration // one-way ToR hop (0 on the local rack)
	cap     int          // packing cap (policy-dependent; see capFor)
	cores   int          // len(sys.Cores), cached for the shed capacity
	transit int          // routed, still riding the ToR hop
	// load tracks srv.InFlight() + transit incrementally (+1 on every
	// route/submit, −1 when a response leaves the NIC or a transit copy
	// is dropped at arrival), so policy reads are O(1) instead of asking
	// the server. agg caches the contribution last folded into the
	// incremental policy structures (see tree.go).
	load    int
	agg     memberAgg
	routed  uint64
	dropped uint64
	// truncated is the subset of dropped that was still actively
	// draining when Run's cap tripped (engine had pending events) — the
	// fleet mirror of server.(*Server).TruncatedDrain.
	truncated uint64

	// Fault-layer state (inert, all zero, without one; see faults.go and
	// recovery.go).
	down      bool       // crashed, awaiting repair
	brown     bool       // browned out: assigned requests run slower
	cut       bool       // behind a partitioned ToR uplink
	live      []*attempt // outstanding fault-layer attempts on this member
	ok        uint64     // winning responses produced
	failed    uint64     // logical failures attributed to this member
	retried   uint64     // retry attempts routed here
	hedged    uint64     // hedged copies routed here
	crashes   uint64     // crash faults injected
	brownouts uint64     // brownout faults injected

	// Controller state (inert unless the fleet has one; see drain.go).
	state        memberState
	holdStart    sim.Time         // when the current hold began (stale-expiry filter)
	holdExpireFn func()           // preallocated hold-expiry callback (see holdMember)
	drains       uint64           // completed drains (entries into the held state)
	capMax       int              // feedback additive-increase ceiling
	netLat       sim.Duration     // effective client RTT component (ToR return folded in)
	win          *stats.Histogram // current-epoch latency window (feedback only)
}

// Fleet is N servers behind one load balancer on one engine.
type Fleet struct {
	eng  *sim.Engine
	cfg  Config
	topo Topology
	spec workload.Spec
	gen  workload.Source

	members []*member
	byRack  [][]*member
	rr      int

	// Incremental policy structures (tree.go): a segment tree over the
	// members plus per-rack and fleet-level occupancy counters, kept in
	// sync by touch, so routing and drain decisions stop rescanning the
	// member list on every arrival.
	tree      memberTree
	rackCnt   []rackCounters
	aliveCnt  int
	aliveLoad int // Σ load over alive members
	aliveCap  int // Σ max(cap, cores) over alive members

	// freeRouted recycles the fault-free path's per-arrival records so
	// steady-state routing allocates nothing (see routedReq).
	freeRouted []*routedReq

	// ctrl is the balancer-dynamics controller; nil when both DrainHold
	// and FeedbackEpoch are zero (or the policy derives no cap), which
	// is what keeps the zero-configuration fleet byte-identical to the
	// static-cap wiring.
	ctrl *controller

	// flt is the fault layer; nil unless Config.Faults enables it, which
	// keeps the fault-free fleet byte-identical — routing pays exactly
	// one nil check. See faults.go and recovery.go.
	flt *faultState

	// meas is the instrumentation scratch Measure reuses across calls
	// and Reset cycles (see MeasureInto).
	meas measScratch

	// onResolve, when non-nil, observes the final resolution of every
	// request the balancer accepted: success (the completion callback
	// fired, or the fault layer recorded an OK) or failure (exhausted
	// retries, shed). It fires after the fleet's own bookkeeping, with
	// the request already released, so it receives plain fields. The
	// service-graph layer (graph.go) hangs the miss/fan-out machinery
	// off this hook; nil — one predictable branch — everywhere else,
	// which is what keeps a graphless fleet byte-identical.
	onResolve func(id uint64, arrival sim.Time, conn int, ok bool)

	// testOnRoute, when non-nil, observes every routing decision before
	// it takes effect — the seam the drain property tests assert
	// eligibility invariants through. Always nil outside tests.
	testOnRoute func(*member)
}

// measScratch holds the per-member instrumentation buffers of one
// measurement pass. They are fleet-owned and recycled, so a sweep that
// reuses a fleet (Reuse) pays for instrumentation storage once, not per
// point.
type measScratch struct {
	tracers []*trace.Tracer
	snaps   []power.Snapshot
	res0    []sim.Duration
	ent0    []uint64
	served0 []uint64
	ok0     uint64
	merged  *stats.Histogram
	rackH   []*stats.Histogram
}

// grow resizes every per-member buffer to n, reusing capacity.
func (s *measScratch) grow(n int) {
	if cap(s.tracers) < n {
		s.tracers = make([]*trace.Tracer, n)
		s.snaps = make([]power.Snapshot, n)
		s.res0 = make([]sim.Duration, n)
		s.ent0 = make([]uint64, n)
		s.served0 = make([]uint64, n)
		return
	}
	s.tracers = s.tracers[:n]
	s.snaps = s.snaps[:n]
	s.res0 = s.res0[:n]
	s.ent0 = s.ent0[:n]
	s.served0 = s.served0[:n]
	for i := range s.res0 {
		s.res0[i], s.ent0[i] = 0, 0
	}
}

// New assembles a fleet on a fresh engine: every member's SoC and server
// are built in index order on the shared engine, then one aggregate
// generator (seeded with seed) feeds the balancer. The workload must be
// open-loop: closed-loop clients bind to a single server's Submit and
// bypass the balancer entirely.
func New(cfg Config, spec workload.Spec, seed uint64) (*Fleet, error) {
	return NewOn(sim.NewEngine(), cfg, spec, seed)
}

// NewOn assembles a fleet on a caller-supplied engine, so several
// fleets can share one deterministic event order — the service-graph
// layer (graph.go) builds each tier this way, and New is exactly
// NewOn(sim.NewEngine(), ...). The caller owns the engine's clock:
// fleets built on a shared engine must be run through a shared driver
// (Graph.Run), never their own Run loops concurrently.
func NewOn(eng *sim.Engine, cfg Config, spec workload.Spec, seed uint64) (*Fleet, error) {
	topo, err := validateConfig(cfg, spec)
	if err != nil {
		return nil, err
	}
	f := &Fleet{eng: eng}
	f.build(cfg, topo, spec, seed)
	return f, nil
}

// validateConfig rejects incoherent fleet configurations and returns the
// normalized topology (Flat(n) for the zero value). It is the shared
// front door of New and Reset.
func validateConfig(cfg Config, spec workload.Spec) (Topology, error) {
	if len(cfg.Members) == 0 {
		return Topology{}, fmt.Errorf("cluster: fleet needs at least one member")
	}
	switch cfg.Policy {
	case RoundRobin, LeastLoaded, RackAffinity:
	case PowerAware, RackPowerAware:
		if cfg.P99Target <= 0 {
			return Topology{}, fmt.Errorf("cluster: %v needs P99Target > 0", cfg.Policy)
		}
	default:
		return Topology{}, fmt.Errorf("cluster: unknown policy %v", cfg.Policy)
	}
	if spec.Arrivals == nil {
		return Topology{}, fmt.Errorf("cluster: open-loop workload required (spec has no arrival process)")
	}
	topo := cfg.Topology
	if topo == (Topology{}) {
		topo = Flat(len(cfg.Members))
	}
	if err := topo.validate(len(cfg.Members)); err != nil {
		return Topology{}, err
	}
	if cfg.TorLatency < 0 {
		return Topology{}, fmt.Errorf("cluster: negative TorLatency")
	}
	if cfg.DrainHold < 0 {
		return Topology{}, fmt.Errorf("cluster: negative DrainHold")
	}
	if cfg.FeedbackEpoch < 0 {
		return Topology{}, fmt.Errorf("cluster: negative FeedbackEpoch")
	}
	if err := cfg.Faults.validate(topo); err != nil {
		return Topology{}, err
	}
	return topo, nil
}

// build assembles (or, on a reset fleet, reassembles) every layer of the
// fleet on f.eng in exactly New's order — members in index order, then
// the incremental policy structures, controller, fault layer, and
// generator — so a rebuilt fleet schedules the identical initial event
// sequence a fresh one would.
func (f *Fleet) build(cfg Config, topo Topology, spec workload.Spec, seed uint64) {
	f.cfg, f.topo, f.spec = cfg, topo, spec
	fresh := f.members == nil
	if fresh {
		f.byRack = make([][]*member, topo.Racks)
	}
	for i, mc := range cfg.Members {
		rack := topo.RackOf(i)
		var tor sim.Duration
		if rack != 0 {
			tor = cfg.TorLatency
		}
		// The return hop rides the member's recorded network round trip
		// (the client sees the response one ToR hop later); the inbound
		// hop is a scheduled transit event in route. With tor == 0 both
		// vanish, which is what keeps flat fleets byte-identical to the
		// rackless wiring.
		eff := mc
		eff.Server.NetworkLatency += tor
		var m *member
		if fresh {
			m = &member{idx: i, rack: rack}
			f.members = append(f.members, m)
			f.byRack[rack] = append(f.byRack[rack], m)
		} else {
			m = f.members[i]
			m.reset()
		}
		m.tor = tor
		m.cap = capFor(cfg.Policy, mc, spec, cfg.P99Target, 2*tor)
		m.netLat = eff.Server.NetworkLatency
		m.sys = soc.NewOnEngine(eff.SoC, f.eng)
		m.srv = server.NewClosedLoop(m.sys, eff.Server)
		m.cores = len(m.sys.Cores)
	}
	f.rr = 0
	f.ctrl, f.flt = nil, nil
	f.initTree()
	f.initController()
	f.initFaults(seed)
	switch {
	case cfg.NewSource != nil:
		f.gen = cfg.NewSource(f.eng, spec, seed, f.route)
	default:
		// Synthetic path: reuse the cached generator (its arrival closure
		// and request pool) when the previous point had one; a fleet that
		// last ran a custom source rebuilds it.
		if g, ok := f.gen.(*workload.Generator); ok {
			g.Reset(spec, seed)
		} else {
			f.gen = workload.NewGenerator(f.eng, spec, seed, f.route)
		}
	}
}

// reset zeroes a member's per-run state ahead of a rebuild. Everything
// configuration-derived (tor, cap, netLat, the system and server) is
// overwritten by build, and the controller fields it leaves alone
// (holdExpireFn, win) are refreshed by initController.
func (m *member) reset() {
	m.transit, m.load = 0, 0
	m.agg = memberAgg{}
	m.routed, m.dropped, m.truncated = 0, 0, 0
	m.down, m.brown, m.cut = false, false, false
	m.live = m.live[:0]
	m.ok, m.failed, m.retried, m.hedged, m.crashes, m.brownouts = 0, 0, 0, 0, 0, 0
	m.state = stActive
	m.holdStart = 0
	m.drains = 0
	m.capMax = 0
}

// Reset rewinds the fleet to the state New(cfg, spec, seed) would have
// produced, reusing everything whose shape survives: the engine's event
// arena and queue storage, the member and rack structures, the segment
// tree, the pooled per-arrival records, the generator's request pool,
// and the measurement scratch. Only the topology shape is pinned — cfg
// must keep the member count and rack layout of the original fleet
// (policy, targets, per-member configs and fault setup may all change,
// since every derived value is recomputed) — because the balancer's
// rack wiring is positional. The per-member SoCs and servers are rebuilt
// rather than rewound: their device state is deep, and reconstructing
// them on the reused engine is what the arena makes cheap.
//
// A reset fleet is byte-identical to a fresh one
// (TestFleetResetDeterministic): the engine restarts at time zero with
// slot numbering matching a fresh engine's, and build reassembles the
// layers in New's exact order.
func (f *Fleet) Reset(cfg Config, spec workload.Spec, seed uint64) error {
	topo, err := validateConfig(cfg, spec)
	if err != nil {
		return err
	}
	if topo != f.topo || len(cfg.Members) != len(f.members) {
		return fmt.Errorf("cluster: Reset needs the original topology %v (got %v)", f.topo, topo)
	}
	f.eng.Reset()
	f.build(cfg, topo, spec, seed)
	return nil
}

// resetOn is Reset without the engine rewind, for fleets sharing an
// engine: the graph resets the shared engine exactly once, then rebuilds
// each tier's fleet in order through this.
func (f *Fleet) resetOn(cfg Config, spec workload.Spec, seed uint64) error {
	topo, err := validateConfig(cfg, spec)
	if err != nil {
		return err
	}
	if topo != f.topo || len(cfg.Members) != len(f.members) {
		return fmt.Errorf("cluster: Reset needs the original topology %v (got %v)", f.topo, topo)
	}
	f.build(cfg, topo, spec, seed)
	return nil
}

// Reuse caches one fleet across the points of a sweep, resetting it
// when the next point's shape matches and rebuilding only when it
// cannot. One Reuse serves one sweep worker — it is not safe for
// concurrent use — and because Reset is byte-identical to a fresh
// build, sweeps that reuse fleets stay bit-identical at any
// parallelism. The zero value is ready.
type Reuse struct {
	fl *Fleet
}

// Fleet returns a fleet for (cfg, spec, seed): the cached one reset in
// place when the topology shape allows, a newly built one otherwise.
func (r *Reuse) Fleet(cfg Config, spec workload.Spec, seed uint64) (*Fleet, error) {
	if r.fl != nil && r.fl.Reset(cfg, spec, seed) == nil {
		return r.fl, nil
	}
	fl, err := New(cfg, spec, seed)
	if err != nil {
		return nil, err
	}
	r.fl = fl
	return fl, nil
}

// capFor derives the per-server packing cap each policy bins against.
// rack_affinity uses the server's natural capacity — one in-flight
// request per core — since it has no latency budget to spend; the
// power-aware policies use the p99-derived cap with the rack round trip
// (torRTT, both ToR hops) added to the latency floor, so remote racks
// get proportionally less queueing headroom.
func capFor(pol Policy, mc MemberConfig, spec workload.Spec, target sim.Duration, torRTT sim.Duration) int {
	if pol == RackAffinity {
		if mc.SoC.CoreCount < 1 {
			return 1
		}
		return mc.SoC.CoreCount
	}
	return powerAwareCap(mc, spec, target, torRTT)
}

// maxPackCap bounds the derived packing cap. Real fleets never hold
// anywhere near 2³⁰ in-flight requests per server, so any cap at or
// above the bound behaves as "unlimited"; its real job is keeping the
// cap arithmetic inside int64 (and the cap inside int32, for 32-bit
// builds) when the p99 target is extreme.
const maxPackCap = 1 << 30

// maxDuration is the largest representable span of virtual time, used
// by the overflow guards below.
const maxDuration = sim.Duration(math.MaxInt64)

// powerAwareCap derives the per-server in-flight cap the power_aware
// policies pack against. A request's latency floor is network RTT + both
// NIC transfers + kernel + mean service time (+ the rack round trip for
// non-local racks); each in-flight request beyond one-per-core adds
// roughly meanCoreTime/cores of queueing delay. The cap spends the slack
// between the floor and the p99 target on queueing:
//
//	cap = cores + (target − floor) / (meanCoreTime / cores)
//
// clamped to [1, maxPackCap] so a server can always make progress. The
// derivation uses only configuration and workload means, so it is a
// deterministic function of the inputs — no online estimation on this
// path (the FeedbackEpoch controller adjusts the cap later, but only at
// its own engine events).
//
// The quotient is computed overflow-safely: the naive
// slack·cores/meanCoreTime wraps negative inside int64 when the target
// is extreme (e.g. a p99_target_us near 2⁶³ ns / cores) or the mean
// core time tiny, and the old `cap < 1` clamp then silently turned an
// effectively infinite latency budget into the tightest possible cap of
// 1 — the exact opposite of the configuration's intent
// (TestPowerAwareCapExtremeTargets locks the fix).
func powerAwareCap(mc MemberConfig, spec workload.Spec, target sim.Duration, torRTT sim.Duration) int {
	cores := mc.SoC.CoreCount
	if cores <= 0 || target <= 0 {
		return 1
	}
	meanService := sim.Duration(spec.Service.Mean() * float64(sim.Second))
	meanCoreTime := meanService + mc.Server.KernelOverhead
	floor := mc.Server.NetworkLatency + 2*mc.Server.NICTransfer +
		mc.Server.KernelOverhead + meanService + torRTT
	cap := cores
	if slack := target - floor; slack > 0 && meanCoreTime > 0 {
		c := sim.Duration(cores)
		switch {
		case slack/meanCoreTime >= maxPackCap/c:
			// The quotient alone saturates the cap; computing the exact
			// value (which may not even fit int64) is pointless.
			cap = maxPackCap
		case slack <= maxDuration/c:
			// slack·cores cannot overflow: the exact legacy formula.
			cap += int(slack * c / meanCoreTime)
		default:
			// slack·cores would overflow but the quotient is small, so
			// meanCoreTime is huge. Decompose exactly — ⌊slack·c/m⌋ =
			// (slack/m)·c + ⌊(slack%m)·c/m⌋ — with the remainder term
			// (a value below cores) evaluated in float64, where its
			// sub-integer precision is irrelevant at this magnitude.
			q, r := slack/meanCoreTime, slack%meanCoreTime
			cap += int(q)*cores + int(float64(r)/float64(meanCoreTime)*float64(cores))
		}
	}
	if cap < 1 {
		cap = 1
	}
	if cap > maxPackCap {
		cap = maxPackCap
	}
	return cap
}

// load is the balancer's view of a member's occupancy: requests inside
// the machine plus requests still riding the ToR hop toward it. Without
// the transit term a remote rack would look idle for a whole hop after
// every assignment and the balancer would dogpile it. The count is
// tracked incrementally on the member (±1 at every route, delivery drop
// and completion), which TestMemberLoadTracksServer pins against the
// server's own counter.
//
//apcvet:noalloc
func (f *Fleet) load(m *member) int { return m.load }

// routedReq is the pooled per-arrival record of the fault-free path: its
// two callbacks (ToR transit delivery, completion) are created once when
// the record is first allocated and reused for every request it later
// carries, so steady-state routing schedules only preallocated closures.
//
//apcvet:pooled
type routedReq struct {
	f   *Fleet
	m   *member
	req *workload.Request

	doneFn    func()
	transitFn func()
}

// newRouted takes a record off the free list (or builds one, creating
// its callbacks) and binds it to this arrival's assignment.
//
//apcvet:noalloc
func (f *Fleet) newRouted(m *member, req *workload.Request) *routedReq {
	var r *routedReq
	if n := len(f.freeRouted); n > 0 {
		r = f.freeRouted[n-1]
		f.freeRouted = f.freeRouted[:n-1]
	} else {
		r = &routedReq{f: f} //apcvet:alloc pool miss: the record and its two callbacks amortize over every request the record later carries
		//apcvet:alloc created once per record at pool miss; reused for every later request
		r.doneFn = func() {
			f, m, req := r.f, r.m, r.req
			m.load--
			f.touch(m)
			if f.ctrl != nil {
				f.onComplete(m, req)
			}
			f.putRouted(r)
			id, arr, conn := req.ID, req.Arrival, req.Conn
			f.gen.Release(req)
			if f.onResolve != nil {
				f.onResolve(id, arr, conn, true)
			}
		}
		//apcvet:alloc created once per record at pool miss; reused for every later request
		r.transitFn = func() {
			r.m.transit--
			r.m.srv.Submit(r.req, r.doneFn)
		}
	}
	r.m, r.req = m, req
	return r
}

// putRouted unbinds a completed record and returns it to the free
// list; the caller must have copied any request fields it still needs
// before calling (the pool may reissue the record at the very next
// arrival).
//
//apcvet:poolput
//apcvet:noalloc
func (f *Fleet) putRouted(r *routedReq) {
	r.m, r.req = nil, nil
	f.freeRouted = append(f.freeRouted, r)
}

// route assigns one arrival to a member according to the policy and
// delivers it — immediately for local-rack members, one ToR hop later
// for remote racks. With a controller attached the completion is
// observed (drain-to-empty detection, feedback latency window) and the
// drain decision runs after the assignment, on the post-routing state.
//
//apcvet:noalloc
func (f *Fleet) route(req *workload.Request) {
	if f.flt != nil {
		f.flt.route(req)
		return
	}
	m := f.pick()
	if f.testOnRoute != nil {
		f.testOnRoute(m)
	}
	m.routed++
	r := f.newRouted(m, req)
	m.load++
	f.touch(m)
	if m.tor > 0 {
		m.transit++
		f.eng.Schedule(m.tor, r.transitFn)
	} else {
		m.srv.Submit(req, r.doneFn)
	}
	if f.ctrl != nil && f.ctrl.hold > 0 {
		f.maybeDrain()
	}
}

// pick implements the routing policies. All tie-breaks are by rack then
// server index, so routing is a deterministic function of the servers'
// in-flight state. Members the controller is draining or holding are
// ineligible (eligible is vacuously true for every member when no
// controller is attached).
//
//apcvet:noalloc
func (f *Fleet) pick() *member {
	switch f.cfg.Policy {
	case LeastLoaded:
		return f.leastLoaded()
	case PowerAware:
		if i := f.tree.firstSpare(0, len(f.members)); i >= 0 {
			return f.members[i]
		}
		// Every server is at its cap: the latency target is not
		// holdable at this load, so degrade to least_loaded instead of
		// queueing arrivals at the balancer.
		return f.leastLoaded()
	case RackAffinity, RackPowerAware:
		return f.rackPick()
	default: // RoundRobin
		// Skip ineligible members (crashed or partitioned — possible only
		// with a fault layer; without one the first candidate always
		// wins, preserving the fault-free event sequence exactly).
		for range f.members {
			m := f.members[f.rr%len(f.members)]
			f.rr++
			if m.eligible() {
				return m
			}
		}
		return f.leastLoaded()
	}
}

// rackPick packs rack-first: among racks with cap headroom, an active
// rack (any member busy or in transit) beats waking a new one, and the
// lowest index wins ties; within the chosen rack an already-active
// server below its cap beats waking an idle one, again lowest index
// first. When no rack has headroom the latency target is not holdable,
// so the policy degrades to least_loaded like power_aware does. Only
// eligible members count — a rack the controller is draining has none,
// so it neither attracts traffic nor offers headroom.
//
//apcvet:noalloc
func (f *Fleet) rackPick() *member {
	chosen, chosenActive := -1, false
	for r := range f.rackCnt {
		rc := &f.rackCnt[r]
		if rc.spare == 0 {
			continue
		}
		if chosen == -1 || (rc.active > 0 && !chosenActive) {
			chosen, chosenActive = r, rc.active > 0
		}
		if chosenActive {
			break // lowest-indexed active rack with headroom is final
		}
	}
	if chosen == -1 {
		return f.leastLoaded()
	}
	// Within the chosen rack (a contiguous index block): the lowest-
	// indexed already-active member below its cap, else the lowest-
	// indexed member with headroom (necessarily idle — an active one
	// would have matched the first query).
	lo := chosen * f.topo.ServersPerRack
	hi := lo + len(f.byRack[chosen])
	if i := f.tree.firstActSpare(lo, hi); i >= 0 {
		return f.members[i]
	}
	return f.members[f.tree.firstSpare(lo, hi)]
}

// leastLoaded returns the eligible member with the fewest
// in-flight-or-in-transit requests, lowest index on ties. At least one
// member is always eligible: the drain controller never drains server 0
// (nor rack 0), so the overload fallback cannot violate a hold.
//
//apcvet:noalloc
func (f *Fleet) leastLoaded() *member {
	if root := f.tree.root(); root.eligCnt > 0 {
		return f.members[root.minIdx]
	}
	// Unreachable (server 0 is never drained); defensively fall back
	// rather than dropping the request.
	return f.members[0]
}

// Engine returns the shared engine all members run on.
func (f *Fleet) Engine() *sim.Engine { return f.eng }

// Servers returns the fleet size.
func (f *Fleet) Servers() int { return len(f.members) }

// Topology returns the rack shape the fleet was assembled with (Flat(N)
// when the configuration left it zero).
func (f *Fleet) Topology() Topology { return f.topo }

// Generated returns how many requests the aggregate generator emitted.
func (f *Fleet) Generated() uint64 { return f.gen.Generated() }

// Dropped returns the fleet-wide leak counter: requests still in flight
// when the most recent Run call gave up draining (per-server values are
// in Measurement.Servers). Mirrors server.(*Server).Dropped for a fleet.
func (f *Fleet) Dropped() uint64 {
	var n uint64
	for _, m := range f.members {
		n += m.dropped
	}
	return n
}

// inFlightTotal sums the servers' in-flight counters plus requests still
// riding a ToR hop, so the drain loop cannot declare the fleet empty
// while a request is between the balancer and a remote rack.
func (f *Fleet) inFlightTotal() int {
	n := 0
	for _, m := range f.members {
		n += f.load(m)
	}
	return n
}

// Run generates aggregate load for d of virtual time, then drains until
// every in-flight request on every server completes, up to
// server.DrainCap of extra virtual time — the same window/drain sequence
// as server.(*Server).Run, which the 1-server parity contract depends
// on. Requests still in flight when the cap trips are snapshotted into
// the per-member dropped counters.
func (f *Fleet) Run(d sim.Duration) {
	stop := f.eng.Now() + d
	f.gen.Start(stop)
	f.eng.Run(stop)
	deadline := f.eng.Now() + server.DrainCap
	for f.inFlightTotal() > 0 && f.eng.Now() < deadline {
		f.eng.Run(f.eng.Now() + sim.Millisecond)
	}
	// Same leaked-vs-truncated discriminator as server.(*Server).Run: a
	// non-empty event queue means the stragglers are progressing and
	// merely outlived the cap. The feedback loop's perpetual epoch tick
	// (and fault-injection timers) keep the queue non-empty, so on those
	// configurations the discriminator is optimistic, like the
	// single-server one is under timer ticks.
	trunc := f.inFlightTotal() > 0 && f.eng.Pending() > 0
	for _, m := range f.members {
		m.dropped = uint64(f.load(m))
		if trunc {
			m.truncated = m.dropped
		} else {
			m.truncated = 0
		}
	}
}

// ServerStats is the measured outcome of one fleet member.
type ServerStats struct {
	// Index is the server id (position in Config.Members); Rack is the
	// topology rack holding it (always 0 on flat fleets).
	Index int `json:"index"`
	Rack  int `json:"rack"`
	// Routed counts arrivals the balancer assigned to this server.
	Routed uint64 `json:"routed"`
	// Served counts completed requests; Dropped counts requests still in
	// flight when the fleet drain gave up.
	Served  uint64 `json:"served"`
	Dropped uint64 `json:"dropped"`
	// Drains counts completed hysteretic drains: times the controller
	// drained this server to empty and held it (see drain.go). Always 0
	// — and omitted from JSON — without a drain controller, which keeps
	// controller-free output byte-identical to the static-cap fleet.
	Drains uint64 `json:"drains,omitempty"`
	// TruncatedDrain is the subset of Dropped still actively draining
	// when the fleet drain cap tripped; Dropped − TruncatedDrain leaked
	// forever. 0 (and omitted) on clean drains.
	TruncatedDrain uint64 `json:"truncated_drain,omitempty"`

	// Fault-layer counters (see faults.go); all 0 — and omitted — when
	// the fault layer is off, preserving byte parity.
	OK        uint64 `json:"ok,omitempty"`
	Failed    uint64 `json:"failed,omitempty"`
	Retried   uint64 `json:"retried,omitempty"`
	Hedged    uint64 `json:"hedged,omitempty"`
	Crashes   uint64 `json:"crashes,omitempty"`
	Brownouts uint64 `json:"brownouts,omitempty"`

	// Client-observed latencies of this server's requests, seconds.
	MeanLatency float64 `json:"mean_latency_s"`
	P99Latency  float64 `json:"p99_latency_s"`

	// Average watts over the measured window, from this server's own
	// meter.
	SoCWatts   float64 `json:"soc_w"`
	DRAMWatts  float64 `json:"dram_w"`
	TotalWatts float64 `json:"total_w"`

	// Core residencies over the measured window.
	CC0Residency    float64 `json:"cc0_residency"`
	CC1Residency    float64 `json:"cc1_residency"`
	AllIdle         float64 `json:"all_idle"`
	AllIdleCensored float64 `json:"all_idle_censored"`

	// PC1A statistics; nil on configurations without an APMU.
	PC1AResidency *float64 `json:"pc1a_residency,omitempty"`
	PC1AEntries   *uint64  `json:"pc1a_entries,omitempty"`
}

// RackStats aggregates one rack's members into the power-zone view:
// counters and watts are sums over the rack (energy is additive, so the
// watts are the rack-zone meter integral over the window), residencies
// are unweighted means, and latency quantiles come from merging the
// members' histograms.
type RackStats struct {
	// Index is the rack id; Local marks rack 0, whose top-of-rack switch
	// the balancer hangs off (its members pay no ToR hop).
	Index int  `json:"index"`
	Local bool `json:"local"`
	// Servers is the member count; ActiveServers counts members the
	// balancer actually routed to — the packing footprint.
	Servers       int `json:"servers"`
	ActiveServers int `json:"active_servers"`

	Routed  uint64 `json:"routed"`
	Served  uint64 `json:"served"`
	Dropped uint64 `json:"dropped"`
	// TruncatedDrain and the fault counters sum the members'; Partitions
	// counts ToR partitions injected on this rack. All 0 (and omitted)
	// without a fault layer.
	TruncatedDrain uint64 `json:"truncated_drain,omitempty"`
	Failed         uint64 `json:"failed,omitempty"`
	Crashes        uint64 `json:"crashes,omitempty"`
	Partitions     uint64 `json:"partitions,omitempty"`

	MeanLatency float64 `json:"mean_latency_s"`
	P99Latency  float64 `json:"p99_latency_s"`

	SoCWatts   float64 `json:"soc_w"`
	DRAMWatts  float64 `json:"dram_w"`
	TotalWatts float64 `json:"total_w"`

	AllIdle float64 `json:"all_idle"`

	PC1AResidency *float64 `json:"pc1a_residency,omitempty"`
	PC1AEntries   *uint64  `json:"pc1a_entries,omitempty"`
}

// Measurement is the fleet-wide outcome of one measured window:
// aggregates over all servers plus the per-server breakdown (and the
// per-rack breakdown on multi-rack topologies). Counters are sums; watts
// are sums of per-server meter averages (energy is additive);
// residencies are unweighted means (every member measures the same
// window); latency quantiles come from the merged per-server histograms.
type Measurement struct {
	Served    uint64 `json:"served"`
	Generated uint64 `json:"generated"`
	Dropped   uint64 `json:"dropped"`
	// Drains sums the members' completed hysteretic drains; 0 (and
	// omitted) without a drain controller.
	Drains uint64 `json:"drains,omitempty"`
	// TruncatedDrain sums the members': the subset of Dropped still
	// actively draining when the drain cap tripped.
	TruncatedDrain uint64 `json:"truncated_drain,omitempty"`

	// Fault-layer outcome (see faults.go and recovery.go); all 0 (and
	// omitted) when the fault layer is off. OK+Failed+Shed+still-pending
	// = Generated: every arrival resolves exactly one way.
	OK         uint64 `json:"ok,omitempty"`
	Failed     uint64 `json:"failed,omitempty"`
	Retried    uint64 `json:"retried,omitempty"`
	Hedged     uint64 `json:"hedged,omitempty"`
	Shed       uint64 `json:"shed,omitempty"`
	Crashes    uint64 `json:"crashes,omitempty"`
	Brownouts  uint64 `json:"brownouts,omitempty"`
	Partitions uint64 `json:"partitions,omitempty"`
	// GoodputQPS is successful responses per second of measured window —
	// the fault layer's headline rate (throughput that reached clients).
	GoodputQPS float64 `json:"goodput_qps,omitempty"`
	// RecoveryP50/P99 are quantiles (seconds) of the client-observed
	// latency of requests that suffered at least one loss or timeout and
	// still succeeded — the time to recover from a fault. 0 when no
	// request suffered.
	RecoveryP50 float64 `json:"recovery_p50_s,omitempty"`
	RecoveryP99 float64 `json:"recovery_p99_s,omitempty"`

	// ServedWindow counts only the requests completed inside the
	// measured window (Served also includes warmup), and Window is that
	// window's actual extent including the drain tail — the pair
	// throughput rates must be computed from, since the power averages
	// cover the same interval.
	ServedWindow uint64       `json:"served_window"`
	Window       sim.Duration `json:"window_ns"`

	MeanLatency float64 `json:"mean_latency_s"`
	P50Latency  float64 `json:"p50_latency_s"`
	P99Latency  float64 `json:"p99_latency_s"`
	P999Latency float64 `json:"p999_latency_s"`

	SoCWatts   float64 `json:"soc_w"`
	DRAMWatts  float64 `json:"dram_w"`
	TotalWatts float64 `json:"total_w"`

	CC0Residency    float64 `json:"cc0_residency"`
	CC1Residency    float64 `json:"cc1_residency"`
	AllIdle         float64 `json:"all_idle"`
	AllIdleCensored float64 `json:"all_idle_censored"`

	// Fleet PC1A statistics: residency is the mean over members,
	// entries the sum. Nil when the members have no APMU.
	PC1AResidency *float64 `json:"pc1a_residency,omitempty"`
	PC1AEntries   *uint64  `json:"pc1a_entries,omitempty"`

	Servers []ServerStats `json:"servers"`
	// Racks is the per-rack-zone breakdown; nil on flat topologies,
	// where the fleet aggregate already is the only zone.
	Racks []RackStats `json:"racks,omitempty"`
}

// Measure runs the fleet through the standard warmup → instrument →
// measure sequence the single-server experiments use (warmup first, then
// tracers and power snapshots attached, then the measured window) and
// returns the fleet-wide measurement. Call it at most once per fleet
// build or Reset — the tracers it attaches stay attached. The returned
// value's slices are freshly allocated, so callers may retain it across
// further use of the fleet.
func (f *Fleet) Measure(warmup, duration sim.Duration) Measurement {
	var out Measurement
	f.MeasureInto(&out, warmup, duration)
	return out
}

// MeasureInto is Measure writing into a caller-owned Measurement: out's
// Servers and Racks backing arrays are reused across calls (everything
// else in *out is overwritten), and all per-member instrumentation
// state comes from the fleet's reusable scratch. Callers that retain
// measurements across sweep points want Measure; callers that consume
// them point-by-point use this and allocate nothing but the histograms'
// first growth.
func (f *Fleet) MeasureInto(out *Measurement, warmup, duration sim.Duration) {
	f.Run(warmup)
	f.measureBegin()
	t0 := f.eng.Now()
	f.Run(duration)
	f.measureCollect(out, f.eng.Now()-t0)
}

// measureBegin attaches the per-member tracers and records every
// baseline (power snapshots, served counts, PC1A residency, fault OKs)
// at the instant the measured window opens. Split from measureCollect
// so a multi-fleet driver (Graph.Measure) can open every tier's window,
// run the shared engine once, and collect each tier against the common
// window.
func (f *Fleet) measureBegin() {
	n := len(f.members)
	s := &f.meas
	s.grow(n)
	tracers, snaps := s.tracers, s.snaps
	res0, ent0, served0 := s.res0, s.ent0, s.served0
	for i, m := range f.members {
		tracers[i] = trace.New(f.eng, m.sys.Cores)
		snaps[i] = m.sys.Meter.Snapshot()
		served0[i] = m.srv.Served()
		if m.sys.APMU != nil {
			res0[i] = m.sys.APMU.Residency(pmu.PC1A)
			ent0[i] = m.sys.APMU.Entries(pmu.PC1A)
		}
	}
	s.ok0 = 0
	if f.flt != nil {
		s.ok0 = f.flt.ok
	}
}

// measureCollect finalizes the tracers measureBegin attached and folds
// the window's deltas into *out, exactly as the tail of the historical
// MeasureInto did.
func (f *Fleet) measureCollect(out *Measurement, window sim.Duration) {
	n := len(f.members)
	s := &f.meas
	tracers, snaps := s.tracers, s.snaps
	res0, ent0, served0 := s.res0, s.ent0, s.served0
	ok0 := s.ok0
	for _, tr := range tracers {
		tr.Finalize()
	}

	*out = Measurement{Servers: out.Servers[:0], Racks: out.Racks[:0]}
	out.Generated = f.gen.Generated()
	out.Window = window
	for i, m := range f.members {
		out.ServedWindow += m.srv.Served() - served0[i]
	}
	if s.merged == nil {
		s.merged = stats.NewLatencyHistogram()
	} else {
		s.merged.Reset()
	}
	merged := s.merged
	haveAPMU := false
	pc1aRes := 0.0
	var pc1aEnt uint64
	for i, m := range f.members {
		tr := tracers[i]
		ss := ServerStats{
			Index:           i,
			Rack:            m.rack,
			Routed:          m.routed,
			Served:          m.srv.Served(),
			Dropped:         m.dropped,
			Drains:          m.drains,
			TruncatedDrain:  m.truncated,
			OK:              m.ok,
			Failed:          m.failed,
			Retried:         m.retried,
			Hedged:          m.hedged,
			Crashes:         m.crashes,
			Brownouts:       m.brownouts,
			MeanLatency:     m.srv.Latencies().Mean(),
			P99Latency:      m.srv.Latencies().Quantile(0.99),
			SoCWatts:        snaps[i].AveragePower(power.Package),
			DRAMWatts:       snaps[i].AveragePower(power.DRAM),
			TotalWatts:      snaps[i].AverageTotal(),
			CC0Residency:    tr.MeanResidency(cpu.CC0),
			CC1Residency:    tr.MeanResidency(cpu.CC1),
			AllIdle:         tr.AllIdleFraction(),
			AllIdleCensored: tr.CensoredAllIdleFraction(),
		}
		if m.sys.APMU != nil {
			r := 0.0
			if window > 0 {
				r = float64(m.sys.APMU.Residency(pmu.PC1A)-res0[i]) / float64(window)
			}
			e := m.sys.APMU.Entries(pmu.PC1A) - ent0[i]
			ss.PC1AResidency, ss.PC1AEntries = &r, &e
			haveAPMU = true
			pc1aRes += r
			pc1aEnt += e
		}
		out.Servers = append(out.Servers, ss)
		out.Served += ss.Served
		out.Dropped += ss.Dropped
		out.Drains += ss.Drains
		out.TruncatedDrain += ss.TruncatedDrain
		out.Crashes += ss.Crashes
		out.Brownouts += ss.Brownouts
		out.SoCWatts += ss.SoCWatts
		out.DRAMWatts += ss.DRAMWatts
		out.TotalWatts += ss.TotalWatts
		out.CC0Residency += ss.CC0Residency
		out.CC1Residency += ss.CC1Residency
		out.AllIdle += ss.AllIdle
		out.AllIdleCensored += ss.AllIdleCensored
		merged.Merge(m.srv.Latencies())
	}
	fn := float64(n)
	out.CC0Residency /= fn
	out.CC1Residency /= fn
	out.AllIdle /= fn
	out.AllIdleCensored /= fn
	out.MeanLatency = merged.Mean()
	out.P50Latency = merged.Quantile(0.50)
	out.P99Latency = merged.Quantile(0.99)
	out.P999Latency = merged.Quantile(0.999)
	if haveAPMU {
		pc1aRes /= fn
		out.PC1AResidency, out.PC1AEntries = &pc1aRes, &pc1aEnt
	}
	if fs := f.flt; fs != nil {
		// The fleet-level counters are authoritative: the per-member
		// values are attribution detail and can undercount (a failure
		// with no live member to pin it on, a retry that found nowhere
		// to go) — fs counts every resolution exactly once.
		out.OK = fs.ok
		out.Failed = fs.failed
		out.Retried = fs.retried
		out.Hedged = fs.hedged
		out.Shed = fs.shed
		for _, n := range fs.partitions {
			out.Partitions += n
		}
		if window > 0 {
			out.GoodputQPS = float64(fs.ok-ok0) / window.Seconds()
		}
		if fs.recovery.Count() > 0 {
			out.RecoveryP50 = fs.recovery.Quantile(0.50)
			out.RecoveryP99 = fs.recovery.Quantile(0.99)
		}
		// The fleet-level quantiles switch to the client's view: what a
		// machine measured for a response the client abandoned (or never
		// got) is not a latency anyone observed. Per-server stats keep
		// the machine view — that is what each machine did.
		out.MeanLatency = fs.lat.Mean()
		out.P50Latency = fs.lat.Quantile(0.50)
		out.P99Latency = fs.lat.Quantile(0.99)
		out.P999Latency = fs.lat.Quantile(0.999)
	}
	if !f.topo.IsFlat() {
		out.Racks = f.rackStats(out.Servers, out.Racks)
	}
}

// rackStats folds the per-server stats into per-rack power zones,
// reusing the racks slice's capacity and the fleet's per-rack histogram
// scratch.
func (f *Fleet) rackStats(servers []ServerStats, racks []RackStats) []RackStats {
	nr := f.topo.Racks
	out := racks[:0]
	s := &f.meas
	if cap(s.rackH) < nr {
		s.rackH = make([]*stats.Histogram, nr)
	} else {
		s.rackH = s.rackH[:nr]
	}
	hists := s.rackH
	for r := 0; r < nr; r++ {
		out = append(out, RackStats{Index: r, Local: r == 0, Servers: len(f.byRack[r])})
		if f.flt != nil {
			out[r].Partitions = f.flt.partitions[r]
		}
		if hists[r] == nil {
			hists[r] = stats.NewLatencyHistogram()
		} else {
			hists[r].Reset()
		}
	}
	for i, ss := range servers {
		rs := &out[ss.Rack]
		if ss.Routed > 0 {
			rs.ActiveServers++
		}
		rs.Routed += ss.Routed
		rs.Served += ss.Served
		rs.Dropped += ss.Dropped
		rs.TruncatedDrain += ss.TruncatedDrain
		rs.Failed += ss.Failed
		rs.Crashes += ss.Crashes
		rs.SoCWatts += ss.SoCWatts
		rs.DRAMWatts += ss.DRAMWatts
		rs.TotalWatts += ss.TotalWatts
		rs.AllIdle += ss.AllIdle
		if ss.PC1AResidency != nil {
			if rs.PC1AResidency == nil {
				rs.PC1AResidency = new(float64)
				rs.PC1AEntries = new(uint64)
			}
			*rs.PC1AResidency += *ss.PC1AResidency
			*rs.PC1AEntries += *ss.PC1AEntries
		}
		hists[ss.Rack].Merge(f.members[i].srv.Latencies())
	}
	for r := range out {
		rs := &out[r]
		if rs.Servers > 0 {
			rs.AllIdle /= float64(rs.Servers)
			if rs.PC1AResidency != nil {
				*rs.PC1AResidency /= float64(rs.Servers)
			}
		}
		rs.MeanLatency = hists[r].Mean()
		rs.P99Latency = hists[r].Quantile(0.99)
	}
	return out
}
