package cluster

import (
	"reflect"
	"testing"

	"agilepkgc/internal/sim"
	"agilepkgc/internal/soc"
	"agilepkgc/internal/workload"
)

func TestTopologyShape(t *testing.T) {
	topo := Topology{Racks: 2, ServersPerRack: 4}
	if topo.Servers() != 8 {
		t.Errorf("2x4 holds %d servers", topo.Servers())
	}
	if topo.String() != "2x4" {
		t.Errorf("String() = %q", topo.String())
	}
	for i, want := range []int{0, 0, 0, 0, 1, 1, 1, 1} {
		if got := topo.RackOf(i); got != want {
			t.Errorf("RackOf(%d) = %d, want %d", i, got, want)
		}
	}
	if Flat(5).IsFlat() != true || topo.IsFlat() {
		t.Error("IsFlat misclassifies")
	}
}

// rackFleet builds a racks×perRack CPC1A fleet under the given policy.
func rackFleet(t *testing.T, pol Policy, racks, perRack int, tor sim.Duration, spec workload.Spec) *Fleet {
	t.Helper()
	fl, err := New(Config{
		Policy:     pol,
		P99Target:  300 * sim.Microsecond,
		Topology:   Topology{Racks: racks, ServersPerRack: perRack},
		TorLatency: tor,
		Members:    uniformMembers(racks*perRack, soc.CPC1A),
	}, spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	return fl
}

// TestRackAffinityPacksOntoLocalRack is the policy's reason to exist: at
// light aggregate load every request fits the local rack, so the remote
// racks see zero traffic and sink whole-rack-deep into PC1A.
func TestRackAffinityPacksOntoLocalRack(t *testing.T) {
	fl := rackFleet(t, RackAffinity, 2, 4, 5*sim.Microsecond, workload.Memcached(40000))
	m := fl.Measure(5*sim.Millisecond, 50*sim.Millisecond)
	if len(m.Racks) != 2 {
		t.Fatalf("want 2 rack zones, got %d", len(m.Racks))
	}
	local, remote := m.Racks[0], m.Racks[1]
	if !local.Local || remote.Local {
		t.Errorf("rack locality flags wrong: %+v %+v", local, remote)
	}
	if local.Routed == 0 || remote.Routed != 0 {
		t.Errorf("rack_affinity should keep light load on the local rack: local %d, remote %d",
			local.Routed, remote.Routed)
	}
	if remote.TotalWatts >= local.TotalWatts {
		t.Errorf("drained rack zone should burn less: local %.1fW, remote %.1fW",
			local.TotalWatts, remote.TotalWatts)
	}
	if local.PC1AResidency == nil || remote.PC1AResidency == nil {
		t.Fatal("missing rack PC1A stats")
	}
	if *remote.PC1AResidency <= *local.PC1AResidency {
		t.Errorf("drained rack should sit deeper in PC1A: local %.3f, remote %.3f",
			*local.PC1AResidency, *remote.PC1AResidency)
	}
	if local.Servers != 4 || remote.Servers != 4 || remote.ActiveServers != 0 {
		t.Errorf("rack census wrong: %+v %+v", local, remote)
	}
}

// TestRackAffinitySpillsUnderLoad: when the local rack's natural
// capacity (one in-flight per core) saturates, the policy wakes the next
// rack instead of queueing at the balancer.
func TestRackAffinitySpillsUnderLoad(t *testing.T) {
	fl := rackFleet(t, RackAffinity, 2, 2, 5*sim.Microsecond, workload.Memcached(900000))
	m := fl.Measure(5*sim.Millisecond, 30*sim.Millisecond)
	if m.Racks[1].Routed == 0 {
		t.Error("saturating load never spilled to the second rack")
	}
	if m.Racks[0].Routed <= m.Racks[1].Routed {
		t.Errorf("spill should still favor the local rack: local %d, remote %d",
			m.Racks[0].Routed, m.Racks[1].Routed)
	}
}

// TestRackPowerAwarePacksRackFirst: with the derived cap applied
// rack-first, a 2×2 fleet at moderate load keeps the second rack
// strictly colder than round_robin leaves it.
func TestRackPowerAwarePacksRackFirst(t *testing.T) {
	spec := func() workload.Spec { return workload.Memcached(60000) }
	packed := rackFleet(t, RackPowerAware, 2, 2, 5*sim.Microsecond, spec())
	spread := rackFleet(t, RoundRobin, 2, 2, 5*sim.Microsecond, spec())
	pm := packed.Measure(5*sim.Millisecond, 50*sim.Millisecond)
	sm := spread.Measure(5*sim.Millisecond, 50*sim.Millisecond)
	if pm.Racks[1].Routed >= sm.Racks[1].Routed {
		t.Errorf("rack_power_aware remote rack load %d not below round_robin's %d",
			pm.Racks[1].Routed, sm.Racks[1].Routed)
	}
	if pm.TotalWatts >= sm.TotalWatts {
		t.Errorf("rack packing should save fleet watts: packed %.1fW, spread %.1fW",
			pm.TotalWatts, sm.TotalWatts)
	}
}

// TestTorLatencyTaxesRemoteRacks: the same spread workload pays two ToR
// hops per remote-rack request, so mean latency on rack 1 must exceed
// rack 0's by roughly the round trip.
func TestTorLatencyTaxesRemoteRacks(t *testing.T) {
	tor := 20 * sim.Microsecond
	fl := rackFleet(t, RoundRobin, 2, 2, tor, workload.Memcached(20000))
	m := fl.Measure(5*sim.Millisecond, 50*sim.Millisecond)
	gap := m.Racks[1].MeanLatency - m.Racks[0].MeanLatency
	rtt := (2 * tor).Seconds()
	if gap < rtt*0.8 || gap > rtt*1.2 {
		t.Errorf("remote rack latency gap %.1fus, want ≈ ToR round trip %.1fus",
			gap*1e6, rtt*1e6)
	}
}

// TestTorTransitDrains: requests caught mid-ToR-hop at the window edge
// must be drained, not leaked — generated always equals served when the
// fleet is healthy.
func TestTorTransitDrains(t *testing.T) {
	fl := rackFleet(t, RoundRobin, 2, 1, 500*sim.Microsecond, workload.Memcached(50000))
	fl.Run(20 * sim.Millisecond)
	if fl.Dropped() != 0 {
		t.Fatalf("healthy fleet dropped %d requests", fl.Dropped())
	}
	var served uint64
	for _, m := range fl.members {
		served += m.srv.Served()
	}
	if served != fl.Generated() {
		t.Errorf("ToR transit leaked requests: generated %d, served %d", fl.Generated(), served)
	}
}

// TestFlatTopologyMatchesRackless locks the tentpole's parity anchor at
// the package level: an explicit 1-rack, zero-ToR topology must measure
// bit-identically to the same fleet with no topology at all, for every
// policy that exists in both worlds.
func TestFlatTopologyMatchesRackless(t *testing.T) {
	for _, pol := range []Policy{RoundRobin, LeastLoaded, PowerAware} {
		run := func(topo Topology) Measurement {
			fl, err := New(Config{
				Policy:    pol,
				P99Target: 300 * sim.Microsecond,
				Topology:  topo,
				Members:   uniformMembers(4, soc.CPC1A),
			}, workload.MemcachedBursty(40000, 4), 3)
			if err != nil {
				t.Fatal(err)
			}
			return fl.Measure(5*sim.Millisecond, 30*sim.Millisecond)
		}
		rackless, flat := run(Topology{}), run(Flat(4))
		if !reflect.DeepEqual(rackless, flat) {
			t.Errorf("%v: explicit flat topology diverges from rackless fleet:\n%+v\n%+v",
				pol, rackless, flat)
		}
	}
}
