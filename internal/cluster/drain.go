package cluster

// Balancer dynamics for the cap-based packing policies (power_aware and
// rack_power_aware): a hysteretic drain controller and an SLA feedback
// loop (DESIGN.md §7).
//
// The static per-server cap of PR 4 packs correctly but lets the
// packing frontier flap: the highest-indexed server carrying load is
// re-admitted the instant a burst needs it and abandoned the instant it
// passes, so its idle periods stay too short for PC1A to pay off. The
// drain controller adds hysteresis — a drained member takes no traffic
// until it is empty AND a virtual-time hold expires — and the feedback
// loop replaces the statically derived cap with one recomputed from the
// measured window p99 every FeedbackEpoch.
//
// Both mechanisms preserve the deterministic-routing contract: every
// decision is a pure function of balancer-visible state at an engine
// event, timers are engine events in virtual time (no wall clock), the
// only randomness remains the workload generator's seeded stream, and
// members are scanned in index order so all ties break low. With
// DrainHold == 0 and FeedbackEpoch == 0 no controller is attached, no
// events are scheduled and no closures are allocated — the fleet
// assembles the byte-identical event sequence of the static-cap layer
// (TestDrainControllerOffParity and the scenario-level
// TestDrainFeedbackZeroParity lock this).

import (
	"agilepkgc/internal/sim"
	"agilepkgc/internal/stats"
	"agilepkgc/internal/workload"
)

// memberState is the drain controller's per-member state machine:
//
//	          surplus decision            in-flight hits 0
//	active ───────────────────► draining ─────────────────► held
//	  ▲                                                       │
//	  └───────────────────────────────────────────────────────┘
//	                     DrainHold elapses
//
// Draining and held members are ineligible for routing; the drain
// decision never fires for server 0 (or rack 0), so at least one member
// is always active. The zero value is active, so fleets without a
// controller never leave the first state.
type memberState uint8

const (
	stActive   memberState = iota // eligible for routing
	stDraining                    // surplus; no new traffic, emptying
	stHeld                        // empty; hold timer running
)

// eligible reports whether the balancer may route to the member:
// active (not draining or held) and reachable (not crashed, not behind
// a partitioned ToR — fields that stay false without a fault layer).
//
//apcvet:noalloc
func (m *member) eligible() bool { return m.state == stActive && !m.down && !m.cut }

// maxFeedbackCapFactor bounds the feedback loop's additive increase: a
// member's cap never grows beyond this multiple of its statically
// derived cap, so a long under-target stretch cannot inflate the cap
// into a value that takes the rest of the run to decay from.
const maxFeedbackCapFactor = 4

// controller holds the fleet-level balancer-dynamics configuration.
// Fleet.ctrl stays nil unless the policy derives a cap and at least one
// mechanism is enabled.
type controller struct {
	hold      sim.Duration // hysteretic drain hold (0 = drain off)
	epoch     sim.Duration // feedback recompute period (0 = feedback off)
	targetSec float64      // P99Target in seconds (feedback comparison)
}

// initController attaches the controller when the configuration asks
// for one. Non-cap policies (round_robin, least_loaded, rack_affinity)
// ignore both knobs, mirroring how they ignore P99Target — a mixed
// policy sweep can carry the fields without invalidating its non-packing
// points.
func (f *Fleet) initController() {
	if (f.cfg.Policy != PowerAware && f.cfg.Policy != RackPowerAware) ||
		(f.cfg.DrainHold == 0 && f.cfg.FeedbackEpoch == 0) {
		// No controller this build. A previous build (before a
		// Fleet.Reset) may have left feedback windows behind; drop them
		// so completions stop recording into them.
		for _, m := range f.members {
			m.win = nil
		}
		return
	}
	f.ctrl = &controller{
		hold:      f.cfg.DrainHold,
		epoch:     f.cfg.FeedbackEpoch,
		targetSec: f.cfg.P99Target.Seconds(),
	}
	for _, m := range f.members {
		// Clamp before multiplying: a saturated static cap times the
		// factor would overflow a 32-bit int.
		if m.cap > maxPackCap/maxFeedbackCapFactor {
			m.capMax = maxPackCap
		} else {
			m.capMax = m.cap * maxFeedbackCapFactor
		}
		if f.ctrl.epoch > 0 {
			// Reuse the window histogram across fleet resets: the bucket
			// layout is fixed, and ~2k buckets per member per sweep point
			// is exactly the churn Fleet.Reset exists to avoid.
			if m.win == nil {
				m.win = stats.NewLatencyHistogram()
			} else {
				m.win.Reset()
			}
		} else {
			m.win = nil
		}
		m := m
		m.holdExpireFn = func() {
			if m.state == stHeld && f.eng.Now() == m.holdStart+f.ctrl.hold {
				m.state = stActive
				f.touch(m)
			}
		}
	}
	if f.ctrl.epoch > 0 {
		f.armFeedback()
	}
}

// onComplete observes one finished request on m: it is called at the
// exact instant the response leaves the member's NIC. The feedback loop
// records the client-observed latency into the member's epoch window
// (the same end-to-end value the server's own histogram records), and
// the drain controller promotes a draining member that just emptied
// into the held state.
//
//apcvet:noalloc
func (f *Fleet) onComplete(m *member, req *workload.Request) {
	if m.win != nil {
		e2e := f.eng.Now() - req.Arrival + m.netLat
		m.win.Add(e2e.Seconds())
	}
	if f.ctrl.hold > 0 && m.state == stDraining && m.load == 0 {
		f.holdMember(m)
	}
}

// maybeDrain runs after each routing decision and drains at most one
// surplus unit. Under rack_power_aware the decision is rack-first, like
// the policy's packing: a whole surplus rack is drained atomically when
// one exists, and only otherwise is the packing frontier thinned one
// member at a time. A unit is surplus when the cap headroom of the
// active members below it covers its current load, so draining it
// cannot force over-cap queueing at today's load; under a burst that
// headroom is gone and nothing drains. Scanning from the top and
// requiring an active member below means server 0 (and rack 0) is
// never drained and the fleet always keeps a routable member.
//
//apcvet:noalloc
func (f *Fleet) maybeDrain() {
	if f.cfg.Policy == RackPowerAware && f.maybeDrainWholeRack() {
		return
	}
	f.maybeDrainFrontier()
}

// maybeDrainFrontier is the member-granular drain decision: the
// highest-indexed active member is drained when the active members
// below it have cap headroom for its load. Only the frontier's top is a
// candidate per arrival, so the active set shrinks one member at a time
// and always from the top — the mirror image of how the packer grows it.
// Both the candidate and the headroom sum come from the segment tree
// (tree.go), turning the per-arrival scan into two O(log n) queries.
//
//apcvet:noalloc
func (f *Fleet) maybeDrainFrontier() {
	i := f.tree.query(1, len(f.members)).maxEligIdx
	if i < 0 {
		return
	}
	m := f.members[i]
	below := f.tree.query(0, i)
	if below.eligCnt > 0 && below.headroom >= int64(m.load) {
		f.drainMember(m)
	}
}

// maybeDrainWholeRack is the rack-first drain decision: the
// highest-indexed rack whose members are all active is surplus when the
// active members of lower racks have cap headroom for its whole load;
// its members are then drained together so the entire power zone idles
// as one. It reports whether it drained a rack. Racks already mid-drain
// (any member draining or held) are skipped — their members re-activate
// individually as their holds expire.
//
//apcvet:noalloc
func (f *Fleet) maybeDrainWholeRack() bool {
	for r := len(f.byRack) - 1; r > 0; r-- {
		rack := f.byRack[r]
		if f.rackCnt[r].elig != len(rack) {
			continue // not all active: skip, like the scan's break did
		}
		lo := r * f.topo.ServersPerRack
		load := f.tree.query(lo, lo+len(rack)).loadSum
		below := f.tree.query(0, lo)
		if below.eligCnt > 0 && below.headroom >= load {
			for _, m := range rack {
				f.drainMember(m)
			}
			return true
		}
		return false
	}
	return false
}

// drainMember moves an active member into the draining state; a member
// that is already empty holds immediately.
//
//apcvet:noalloc
func (f *Fleet) drainMember(m *member) {
	m.state = stDraining
	f.touch(m)
	if m.load == 0 {
		f.holdMember(m)
	}
}

// holdMember starts the hysteresis hold on an empty member: for
// DrainHold of virtual time the balancer will not route to it, so the
// idle period it just entered is at least that long — long enough for
// the package to sink into PC1A instead of flapping at the frontier.
// The expiry callback is preallocated per member (initController); the
// holdStart stamp filters stale expiries, so a member drained again
// after a crash release or emergency re-admission cannot be woken by an
// earlier hold's timer (a stale event's fire time no longer equals
// holdStart + hold; if the re-hold started at the very same instant the
// two expiries coincide and both are correct).
//
//apcvet:noalloc
func (f *Fleet) holdMember(m *member) {
	m.state = stHeld
	m.drains++
	m.holdStart = f.eng.Now()
	f.touch(m)
	f.eng.Schedule(f.ctrl.hold, m.holdExpireFn)
}

// armFeedback schedules the SLA feedback loop: one engine event per
// FeedbackEpoch of virtual time, forever. The recompute cost is paid
// here — O(members) per epoch — never on the per-request routing path.
func (f *Fleet) armFeedback() {
	var tick func()
	tick = func() {
		f.recomputeCaps()
		f.eng.Schedule(f.ctrl.epoch, tick)
	}
	f.eng.Schedule(f.ctrl.epoch, tick)
}

// recomputeCaps is the per-epoch cap update: AIMD on each member's
// packing cap, driven by the member's own measured window p99 against
// the fleet's P99Target. Over target: multiplicative decrease to 3/4
// (floor 1) sheds queueing depth quickly. At or under target: additive
// increase by one (ceiling capMax) packs one request deeper per epoch.
// A window with no completions carries no signal and leaves the cap
// unchanged. Members are updated in index order and the arithmetic is
// pure integers, so the loop is as deterministic as the router.
//
//apcvet:noalloc
func (f *Fleet) recomputeCaps() {
	for _, m := range f.members {
		if m.win.Count() == 0 {
			continue
		}
		if m.win.Quantile(0.99) > f.ctrl.targetSec {
			m.cap = m.cap * 3 / 4
			if m.cap < 1 {
				m.cap = 1
			}
		} else if m.cap < m.capMax {
			m.cap++
		}
		f.touch(m)
		m.win.Reset()
	}
}
