package cluster

import (
	"reflect"
	"testing"

	"agilepkgc/internal/sim"
	"agilepkgc/internal/soc"
	"agilepkgc/internal/workload"
)

// twoTierConfig is the canonical test graph: a 4-server memcached
// cache tier in front of a 2-server MySQL backend, misses at the given
// hit ratio with the given TTL and fan-out.
func twoTierConfig(hitRatio float64, ttl sim.Duration, fanout int) GraphConfig {
	backend := workload.MySQL(0.1, 4)
	return GraphConfig{
		Tiers: []TierConfig{
			{
				Name: "cache",
				Cluster: Config{
					Policy: PowerAware, P99Target: 300 * sim.Microsecond,
					Members: uniformMembers(4, soc.CPC1A),
				},
				Spec: workload.Memcached(120000),
			},
			{
				Name: "db",
				Cluster: Config{
					Policy: PowerAware, P99Target: 2 * sim.Millisecond,
					Members: uniformMembers(2, soc.CPC1A),
				},
				Spec: backend,
			},
		},
		Edges: []EdgeConfig{{From: 0, To: 1, HitRatio: hitRatio, TTL: ttl, Fanout: fanout}},
	}
}

// TestGraphSingleTierParity is the defining contract: a one-tier graph
// — no edges, no hook, the caller's seed on tier 0 — must measure
// byte-identically to the plain fleet it wraps, structure for
// structure, across policies and with the fault layer attached.
func TestGraphSingleTierParity(t *testing.T) {
	specs := []struct {
		name string
		cfg  Config
	}{
		{"power_aware", Config{
			Policy: PowerAware, P99Target: 300 * sim.Microsecond,
			Members: uniformMembers(4, soc.CPC1A),
		}},
		{"racked drain", Config{
			Policy: RackPowerAware, P99Target: 300 * sim.Microsecond,
			Topology: Topology{Racks: 2, ServersPerRack: 2}, TorLatency: 5 * sim.Microsecond,
			DrainHold: sim.Millisecond,
			Members:   uniformMembers(4, soc.CPC1A),
		}},
		{"faults", Config{
			Policy: LeastLoaded,
			Faults: FaultConfig{
				MTBF: 20 * sim.Millisecond, MTTR: 2 * sim.Millisecond,
				RequestTimeout: sim.Millisecond, MaxRetries: 2,
			},
			Members: uniformMembers(3, soc.CPC1A),
		}},
	}
	spec := workload.Memcached(80000)
	for _, c := range specs {
		t.Run(c.name, func(t *testing.T) {
			fl, err := New(c.cfg, spec, 7)
			if err != nil {
				t.Fatal(err)
			}
			want := fl.Measure(2*sim.Millisecond, 20*sim.Millisecond)

			g, err := NewGraph(GraphConfig{
				Tiers: []TierConfig{{Name: "only", Cluster: c.cfg, Spec: spec}},
			}, 7)
			if err != nil {
				t.Fatal(err)
			}
			gm := g.Measure(2*sim.Millisecond, 20*sim.Millisecond)
			if len(gm.Tiers) != 1 || gm.Edges != nil || gm.Client != nil {
				t.Fatalf("one-tier graph measurement carries graph-only state: %+v", gm)
			}
			if !reflect.DeepEqual(gm.Tiers[0].Fleet, want) {
				t.Errorf("one-tier graph diverges from the plain fleet:\ngraph: %+v\nfleet: %+v", gm.Tiers[0].Fleet, want)
			}
		})
	}
}

// TestGraphConservation locks the cross-tier accounting identities: on
// every edge Issued = Fanout·Misses and Hits = Lookups−Misses; the
// backend's Generated count is exactly the edge's Issued; and the
// client's Served+Failed never exceeds the root's resolutions.
func TestGraphConservation(t *testing.T) {
	for _, fanout := range []int{1, 3} {
		g, err := NewGraph(twoTierConfig(0.8, 0, fanout), 3)
		if err != nil {
			t.Fatal(err)
		}
		m := g.Measure(2*sim.Millisecond, 30*sim.Millisecond)
		e := m.Edges[0]
		if e.Lookups == 0 || e.Misses == 0 {
			t.Fatalf("fanout %d: no lookups/misses: %+v", fanout, e)
		}
		if e.Issued != uint64(fanout)*e.Misses {
			t.Errorf("fanout %d: Issued = %d, want Fanout·Misses = %d", fanout, e.Issued, uint64(fanout)*e.Misses)
		}
		if e.Hits != e.Lookups-e.Misses {
			t.Errorf("fanout %d: Hits = %d, want %d", fanout, e.Hits, e.Lookups-e.Misses)
		}
		if got := m.Tiers[1].Fleet.Generated; got != e.Issued {
			t.Errorf("fanout %d: backend Generated = %d, want edge Issued = %d", fanout, got, e.Issued)
		}
		cl := m.Client
		if cl.Served == 0 {
			t.Fatalf("fanout %d: no client completions: %+v", fanout, cl)
		}
		if cl.Served+cl.Failed > m.Tiers[0].Fleet.Generated {
			t.Errorf("fanout %d: client resolutions %d exceed root generated %d",
				fanout, cl.Served+cl.Failed, m.Tiers[0].Fleet.Generated)
		}
		// The empirical hit rate must track the configured ratio (no TTL,
		// so the only misses are Bernoulli draws at 0.8).
		if e.MeasuredHitRate < 0.7 || e.MeasuredHitRate > 0.9 {
			t.Errorf("fanout %d: measured hit rate %.3f far from configured 0.8", fanout, e.MeasuredHitRate)
		}
		// Client latency must reflect the join: at least the cache tier's
		// own latency.
		if cl.P99Latency <= 0 || cl.MeanLatency <= 0 {
			t.Errorf("fanout %d: degenerate client latency: %+v", fanout, cl)
		}
	}
}

// TestGraphTTLMisses: with a finite TTL, connections re-miss when
// their entry expires, and the TTL misses are counted as a subset of
// the misses.
func TestGraphTTLMisses(t *testing.T) {
	g, err := NewGraph(twoTierConfig(1.0, 500*sim.Microsecond, 1), 3)
	if err != nil {
		t.Fatal(err)
	}
	m := g.Measure(2*sim.Millisecond, 30*sim.Millisecond)
	e := m.Edges[0]
	if e.TTLMisses == 0 {
		t.Fatalf("no TTL misses despite 500µs TTL: %+v", e)
	}
	if e.TTLMisses > e.Misses {
		t.Errorf("TTLMisses %d exceeds Misses %d", e.TTLMisses, e.Misses)
	}
	// Hit ratio 1: every miss is a compulsory (first lookup per
	// connection) or TTL miss, so non-TTL misses are bounded by the
	// connection count.
	if compulsory := e.Misses - e.TTLMisses; compulsory > uint64(workload.Memcached(0).Connections) {
		t.Errorf("more compulsory misses (%d) than connections (%d)", compulsory, workload.Memcached(0).Connections)
	}
}

// TestGraphDeterministicAndResetParity: the same (config, seed) must
// measure identically run to run, and a dirty graph Reset must be
// byte-identical to a fresh build — the property that lets sweeps
// reuse graphs at any parallelism.
func TestGraphDeterministicAndResetParity(t *testing.T) {
	cfg := twoTierConfig(0.9, 200*sim.Microsecond, 2)

	fresh := func() GraphMeasurement {
		g, err := NewGraph(cfg, 11)
		if err != nil {
			t.Fatal(err)
		}
		return g.Measure(2*sim.Millisecond, 20*sim.Millisecond)
	}
	want := fresh()
	if !reflect.DeepEqual(fresh(), want) {
		t.Fatal("two fresh identical graphs measured differently")
	}

	// Dirty the graph with a different point, then reset to the
	// original and compare.
	var r GraphReuse
	dirty := twoTierConfig(0.5, 0, 1)
	if _, err := r.Graph(dirty, 5); err != nil {
		t.Fatal(err)
	}
	g, err := r.Graph(dirty, 5)
	if err != nil {
		t.Fatal(err)
	}
	g.Run(10 * sim.Millisecond)
	g2, err := r.Graph(cfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	if g2 != g {
		t.Fatal("GraphReuse rebuilt instead of resetting a same-shape graph")
	}
	got := g2.Measure(2*sim.Millisecond, 20*sim.Millisecond)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("reset graph diverges from fresh build:\nreset: %+v\nfresh: %+v", got, want)
	}
}

// TestGraphValidation rejects every incoherent shape with a useful
// error.
func TestGraphValidation(t *testing.T) {
	tier := func(name string, servers int) TierConfig {
		return TierConfig{
			Name: name,
			Cluster: Config{
				Policy: PowerAware, P99Target: 300 * sim.Microsecond,
				Members: uniformMembers(servers, soc.CPC1A),
			},
			Spec: workload.Memcached(10000),
		}
	}
	cases := []struct {
		name string
		cfg  GraphConfig
	}{
		{"no tiers", GraphConfig{}},
		{"edge from out of range", GraphConfig{
			Tiers: []TierConfig{tier("a", 1), tier("b", 1)},
			Edges: []EdgeConfig{{From: 2, To: 1, HitRatio: 0.5}},
		}},
		{"edge to out of range", GraphConfig{
			Tiers: []TierConfig{tier("a", 1), tier("b", 1)},
			Edges: []EdgeConfig{{From: 0, To: 5, HitRatio: 0.5}},
		}},
		{"self edge", GraphConfig{
			Tiers: []TierConfig{tier("a", 1), tier("b", 1)},
			Edges: []EdgeConfig{{From: 1, To: 1, HitRatio: 0.5}},
		}},
		{"edge into root", GraphConfig{
			Tiers: []TierConfig{tier("a", 1), tier("b", 1)},
			Edges: []EdgeConfig{{From: 1, To: 0, HitRatio: 0.5}},
		}},
		{"hit ratio above 1", GraphConfig{
			Tiers: []TierConfig{tier("a", 1), tier("b", 1)},
			Edges: []EdgeConfig{{From: 0, To: 1, HitRatio: 1.5}},
		}},
		{"negative hit ratio", GraphConfig{
			Tiers: []TierConfig{tier("a", 1), tier("b", 1)},
			Edges: []EdgeConfig{{From: 0, To: 1, HitRatio: -0.1}},
		}},
		{"negative ttl", GraphConfig{
			Tiers: []TierConfig{tier("a", 1), tier("b", 1)},
			Edges: []EdgeConfig{{From: 0, To: 1, HitRatio: 0.5, TTL: -1}},
		}},
		{"fanout on never-miss edge", GraphConfig{
			Tiers: []TierConfig{tier("a", 1), tier("b", 1)},
			Edges: []EdgeConfig{{From: 0, To: 1, HitRatio: 1, Fanout: 3}},
		}},
		{"cycle", GraphConfig{
			Tiers: []TierConfig{tier("a", 1), tier("b", 1), tier("c", 1)},
			Edges: []EdgeConfig{
				{From: 0, To: 1, HitRatio: 0.5},
				{From: 1, To: 2, HitRatio: 0.5},
				{From: 2, To: 1, HitRatio: 0.5},
			},
		}},
		{"unreachable tier", GraphConfig{
			Tiers: []TierConfig{tier("a", 1), tier("b", 1)},
		}},
		{"non-root custom source", func() GraphConfig {
			b := tier("b", 1)
			b.Cluster.NewSource = func(eng *sim.Engine, spec workload.Spec, seed uint64, sink func(*workload.Request)) workload.Source {
				return workload.NewPushSource(eng, spec, seed, sink)
			}
			return GraphConfig{
				Tiers: []TierConfig{tier("a", 1), b},
				Edges: []EdgeConfig{{From: 0, To: 1, HitRatio: 0.5}},
			}
		}()},
		{"invalid tier fleet", GraphConfig{
			Tiers: []TierConfig{{Name: "a", Cluster: Config{Policy: PowerAware}, Spec: workload.Memcached(1)}},
		}},
	}
	for _, c := range cases {
		if _, err := NewGraph(c.cfg, 1); err == nil {
			t.Errorf("%s: NewGraph accepted an invalid config", c.name)
		}
	}
}

// TestGraphFanoutRaisesBackendLoad: more fan-out means more backend
// requests for the same miss stream — the knob is not inert.
func TestGraphFanoutRaisesBackendLoad(t *testing.T) {
	gen := func(fanout int) uint64 {
		g, err := NewGraph(twoTierConfig(0.8, 0, fanout), 3)
		if err != nil {
			t.Fatal(err)
		}
		m := g.Measure(2*sim.Millisecond, 20*sim.Millisecond)
		return m.Tiers[1].Fleet.Generated
	}
	one, three := gen(1), gen(3)
	if three != 3*one {
		t.Errorf("backend Generated: fanout 3 gave %d, want exactly 3× fanout 1's %d "+
			"(same seed, same miss stream)", three, one)
	}
}
