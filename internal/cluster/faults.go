package cluster

// Fault injection for the fleet (DESIGN.md §8): per-server crashes and
// brownouts, and rack-level ToR partitions, driven by the shared engine
// from dedicated RNG streams. The request-robustness side — timeouts,
// retries, hedging, shedding — lives in recovery.go.
//
// The design contract mirrors drain.go's: with a zero FaultConfig no
// fault state is allocated, no events are scheduled and the routing hot
// path pays one nil check, so the fleet assembles the byte-identical
// event sequence of the fault-free layer (the scenario-level
// TestFaultsZeroParity locks report/CSV bytes). With faults enabled
// everything remains deterministic: fault timers draw from their own
// seeded streams (never the workload generator's), fire as engine
// events, and scan members in index order.
//
// What a fault means physically:
//
//	crash      — the machine stops answering: it takes no new traffic
//	             until repaired, and every response it owed is lost
//	             (the client-side attempt fails at the crash instant).
//	             Work already inside the machine keeps draining in the
//	             hardware model — the simulator does not claw back
//	             enqueued core events — so the power trace is that of a
//	             machine finishing its backlog, not a dark box.
//	brownout   — the machine runs degraded: requests assigned while the
//	             brownout is active execute with their service time
//	             scaled by BrownoutFactor.
//	partition  — a rack's top-of-rack uplink is gone: every member of
//	             the rack is unreachable, requests in flight to or on
//	             the rack are lost, and the packing policies re-pack
//	             onto the surviving racks until the partition heals.
//	             Rack 0 (the balancer's own rack) never partitions.
//
// A crash also interacts with the drain controller: a draining or held
// member that crashes releases its hold immediately (the surplus
// decision is void once the machine is gone), and the hold-start stamp
// keeps the stale hold-expiry event from ever resurrecting it.

import (
	"fmt"

	"agilepkgc/internal/sim"
	"agilepkgc/internal/stats"
)

// FaultConfig parameterizes fault injection and request robustness.
// The zero value disables everything; see Enabled.
type FaultConfig struct {
	// MTBF is each server's mean time between crash failures
	// (exponentially distributed, independent per server). Zero
	// disables crash injection; non-zero requires MTTR > 0.
	MTBF sim.Duration
	// MTTR is the mean repair time after a crash (exponential). While
	// down the server takes no traffic.
	MTTR sim.Duration

	// BrownoutMTBF is each server's mean time between brownouts
	// (exponential). Zero disables brownout injection; non-zero
	// requires BrownoutDuration > 0 and BrownoutFactor > 1.
	BrownoutMTBF sim.Duration
	// BrownoutDuration is how long each brownout lasts.
	BrownoutDuration sim.Duration
	// BrownoutFactor scales the service time of requests assigned to a
	// browned-out server (2 = half speed).
	BrownoutFactor float64

	// TorPartitionMTBF is each non-local rack's mean time between ToR
	// partitions (exponential). Zero disables partition injection;
	// non-zero requires TorPartitionDuration > 0 and a multi-rack
	// topology.
	TorPartitionMTBF sim.Duration
	// TorPartitionDuration is how long each partition lasts.
	TorPartitionDuration sim.Duration

	// RequestTimeout, when non-zero, bounds how long the balancer waits
	// for a response before abandoning the outstanding copies of a
	// request. The k-th attempt waits RequestTimeout·2^(k−1) — the
	// exponential backoff rides on the timeout itself.
	RequestTimeout sim.Duration
	// MaxRetries bounds how many times an abandoned or lost request is
	// resubmitted before it is counted as Failed.
	MaxRetries int
	// HedgeDelay, when non-zero, arms one hedged copy per request: if
	// no response arrived after this delay, a second copy goes to a
	// different live server and the first response wins (the loser's
	// timers are cancelled via engine Cancel; its response is ignored).
	HedgeDelay sim.Duration
}

// injecting reports whether any fault-injection process is armed.
func (fc FaultConfig) injecting() bool {
	return fc.MTBF > 0 || fc.BrownoutMTBF > 0 || fc.TorPartitionMTBF > 0
}

// Enabled reports whether the fault layer attaches at all: any
// injection process or any request-robustness knob. A disabled config
// allocates nothing and schedules nothing — the parity contract.
func (fc FaultConfig) Enabled() bool {
	return fc.injecting() || fc.RequestTimeout > 0 || fc.MaxRetries > 0 || fc.HedgeDelay > 0
}

// validate rejects incoherent fault configurations before they reach
// the engine.
func (fc FaultConfig) validate(topo Topology) error {
	// Declared order, not a map walk, so the first offending field
	// reported is the same on every run.
	for _, kv := range []struct {
		name string
		d    sim.Duration
	}{
		{"MTBF", fc.MTBF}, {"MTTR", fc.MTTR},
		{"BrownoutMTBF", fc.BrownoutMTBF}, {"BrownoutDuration", fc.BrownoutDuration},
		{"TorPartitionMTBF", fc.TorPartitionMTBF}, {"TorPartitionDuration", fc.TorPartitionDuration},
		{"RequestTimeout", fc.RequestTimeout}, {"HedgeDelay", fc.HedgeDelay},
	} {
		if kv.d < 0 {
			return fmt.Errorf("cluster: negative Faults.%s", kv.name)
		}
	}
	if fc.MaxRetries < 0 {
		return fmt.Errorf("cluster: negative Faults.MaxRetries")
	}
	if fc.BrownoutFactor < 0 {
		return fmt.Errorf("cluster: negative Faults.BrownoutFactor")
	}
	if fc.MTBF > 0 && fc.MTTR <= 0 {
		return fmt.Errorf("cluster: Faults.MTBF needs MTTR > 0 — a crash with no repair process never ends")
	}
	if fc.BrownoutMTBF > 0 && (fc.BrownoutDuration <= 0 || fc.BrownoutFactor <= 1) {
		return fmt.Errorf("cluster: Faults.BrownoutMTBF needs BrownoutDuration > 0 and BrownoutFactor > 1")
	}
	if fc.TorPartitionMTBF > 0 {
		if fc.TorPartitionDuration <= 0 {
			return fmt.Errorf("cluster: Faults.TorPartitionMTBF needs TorPartitionDuration > 0")
		}
		if topo.IsFlat() {
			return fmt.Errorf("cluster: ToR partitions need a multi-rack topology — a flat fleet has no ToR uplink to cut")
		}
	}
	return nil
}

// Distinct seeds derive the fault streams from Options.Seed so fault
// timing is reproducible but statistically independent of the workload
// generator's stream (which NewGenerator seeds with the raw seed).
const (
	crashSeedSalt     = 0xc4a51dead00d0001
	brownSeedSalt     = 0xc4a51dead00d0002
	partitionSeedSalt = 0xc4a51dead00d0003
)

// faultState is the per-fleet fault layer: injection processes plus the
// request-robustness bookkeeping in recovery.go. Fleet.flt stays nil
// unless FaultConfig.Enabled() — the parity contract.
type faultState struct {
	f   *Fleet
	cfg FaultConfig

	// Dedicated RNG streams, one per fault family. Draws happen in
	// engine-event order, which is deterministic, so the schedules are
	// a pure function of (seed, config).
	crashRNG *stats.RNG
	brownRNG *stats.RNG
	partRNG  *stats.RNG

	// lat collects client-observed latencies of successful logical
	// requests (first arrival → winning response, retries and hedges
	// included); it replaces the merged machine histograms in the
	// fleet-level quantiles when the fault layer is attached, since a
	// machine cannot observe a response the client never got.
	lat *stats.Histogram
	// recovery collects the subset of lat from requests that suffered
	// at least one loss or timeout — the client-visible time to recover
	// from a fault.
	recovery *stats.Histogram

	ok      uint64 // successful logical requests
	failed  uint64 // logical requests that exhausted their retry budget
	retried uint64 // retry attempts submitted
	hedged  uint64 // hedged copies submitted
	shed    uint64 // arrivals dropped at the balancer (overload/no capacity)

	partitioned []bool   // per-rack: ToR currently cut
	partitions  []uint64 // per-rack: partition count

	// Record pools (see recovery.go): steady-state fault-layer routing
	// reuses logical-request and attempt records instead of allocating
	// per arrival.
	freeLR []*logicalReq
	freeAT []*attempt
}

// expDur draws one exponential duration with the given mean from the
// stream, floored at one engine tick so a pathological draw cannot
// schedule into the current instant's past.
func expDur(rng *stats.RNG, mean sim.Duration) sim.Duration {
	d := sim.Duration(rng.ExpFloat64() * float64(mean))
	if d < 1 {
		d = 1
	}
	return d
}

// initFaults attaches the fault layer when the configuration asks for
// one and arms the injection processes. Members are armed in index
// order and racks in rack order, so stream consumption is fixed.
func (f *Fleet) initFaults(seed uint64) {
	if !f.cfg.Faults.Enabled() {
		return
	}
	fs := &faultState{
		f:           f,
		cfg:         f.cfg.Faults,
		crashRNG:    stats.NewRNG(seed ^ crashSeedSalt),
		brownRNG:    stats.NewRNG(seed ^ brownSeedSalt),
		partRNG:     stats.NewRNG(seed ^ partitionSeedSalt),
		lat:         stats.NewLatencyHistogram(),
		recovery:    stats.NewLatencyHistogram(),
		partitioned: make([]bool, f.topo.Racks),
		partitions:  make([]uint64, f.topo.Racks),
	}
	f.flt = fs
	if fs.cfg.MTBF > 0 {
		for _, m := range f.members {
			fs.armCrash(m)
		}
	}
	if fs.cfg.BrownoutMTBF > 0 {
		for _, m := range f.members {
			fs.armBrownout(m)
		}
	}
	if fs.cfg.TorPartitionMTBF > 0 {
		for r := 1; r < f.topo.Racks; r++ {
			fs.armPartition(r)
		}
	}
}

// alive reports whether the balancer can reach the member at all:
// neither crashed nor behind a partitioned ToR. Distinct from eligible,
// which additionally excludes members the drain controller is resting.
//
//apcvet:noalloc
func (m *member) alive() bool { return !m.down && !m.cut }

// armCrash schedules the member's next crash.
func (fs *faultState) armCrash(m *member) {
	fs.f.eng.Schedule(expDur(fs.crashRNG, fs.cfg.MTBF), func() { fs.crash(m) })
}

// crash takes the member down: it is unreachable until repair, every
// response it owed is lost at this instant (failLive retries or fails
// each one), and any drain hold is released — the controller's surplus
// decision is void once the machine is gone, and the hold-start stamp
// keeps the already-scheduled hold expiry from firing on the repaired
// member's next drain.
func (fs *faultState) crash(m *member) {
	m.down = true
	m.crashes++
	if m.state != stActive {
		m.state = stActive
	}
	fs.f.touch(m)
	fs.failLive(m)
	fs.f.eng.Schedule(expDur(fs.crashRNG, fs.cfg.MTTR), func() { fs.repair(m) })
}

// repair brings the member back: it is immediately routable again (its
// packing cap is unchanged — the feedback loop, if armed, re-learns it)
// and the next crash is drawn from the same stream.
func (fs *faultState) repair(m *member) {
	m.down = false
	fs.f.touch(m)
	fs.armCrash(m)
}

// armBrownout schedules the member's next brownout.
func (fs *faultState) armBrownout(m *member) {
	fs.f.eng.Schedule(expDur(fs.brownRNG, fs.cfg.BrownoutMTBF), func() { fs.brownout(m) })
}

// brownout degrades the member for the configured duration: requests
// assigned while it is active run BrownoutFactor× slower. The member
// stays routable — a brownout is a performance fault, not an
// availability fault — so the cap policies keep packing onto it and
// pay the tail, which is exactly the production failure mode.
func (fs *faultState) brownout(m *member) {
	m.brown = true
	m.brownouts++
	fs.f.eng.Schedule(fs.cfg.BrownoutDuration, func() {
		m.brown = false
		fs.armBrownout(m)
	})
}

// armPartition schedules rack r's next ToR partition.
func (fs *faultState) armPartition(r int) {
	fs.f.eng.Schedule(expDur(fs.partRNG, fs.cfg.TorPartitionMTBF), func() { fs.partition(r) })
}

// partition cuts rack r's ToR uplink: every member becomes unreachable,
// and every response the rack owed is lost — it cannot cross the cut.
// Members keep serving their internal backlog; only the client-visible
// outcome is lost.
func (fs *faultState) partition(r int) {
	fs.partitioned[r] = true
	fs.partitions[r]++
	for _, m := range fs.f.byRack[r] {
		m.cut = true
		fs.f.touch(m)
		fs.failLive(m)
	}
	fs.f.eng.Schedule(fs.cfg.TorPartitionDuration, func() { fs.heal(r) })
}

// heal restores rack r's uplink and draws the next partition.
func (fs *faultState) heal(r int) {
	fs.partitioned[r] = false
	for _, m := range fs.f.byRack[r] {
		m.cut = false
		fs.f.touch(m)
	}
	fs.armPartition(r)
}

// failLive loses every outstanding attempt on the member — in flight
// inside the machine or still riding the ToR hop toward it — in
// submission order, retrying or failing each logical request at this
// instant.
func (fs *faultState) failLive(m *member) {
	pending := m.live
	m.live = nil
	for _, at := range pending {
		at.liveIdx = -1
		if at.lost || at.lr.done {
			continue
		}
		at.lost = true
		fs.lose(at)
	}
}
