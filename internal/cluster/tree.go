package cluster

// Incremental policy data structures (DESIGN.md §9): a segment tree over
// the members plus per-rack and fleet-level occupancy counters, so the
// routing policies and the drain controller stop rescanning the fleet on
// every arrival.
//
// The tree is purely an accelerator: every query is defined as — and
// tested against (TestTreeMatchesScan) — the index-order scan it
// replaces, with identical tie-breaking, so goldens and parity suites
// hold byte-for-byte. Leaves mirror the members in index order; internal
// nodes aggregate. A member's leaf is recomputed by Fleet.touch whenever
// any input of a routing decision changes (load, cap, drain state,
// crash/partition flags) — O(log n) per update — and each policy
// decision is then O(log n) (or O(racks) for rack selection) instead of
// O(n), with the drain surplus scan dropping from O(n²) to O(log n).
//
// Aggregates per node, all over *eligible* members only (active in the
// drain controller's sense and reachable — see member.eligible):
//
//	eligCnt     — how many
//	minLoad/minIdx — least-loaded, lowest index on ties (left-first)
//	hasSpare    — any with load < cap
//	hasActSpare — any with 0 < load < cap
//	headroom    — Σ max(cap−load, 0)
//	loadSum     — Σ load
//	maxEligIdx  — highest index
type treeNode struct {
	eligCnt     int
	minLoad     int
	minIdx      int // -1 when eligCnt == 0
	maxEligIdx  int // -1 when eligCnt == 0
	hasSpare    bool
	hasActSpare bool
	headroom    int64
	loadSum     int64
}

// emptyNode is the neutral element of combine.
var emptyNode = treeNode{minIdx: -1, maxEligIdx: -1}

// combine merges the aggregates of a left and right sibling. Left wins
// min-load ties, which is what preserves the scans' lowest-index
// tie-breaking exactly.
//
//apcvet:noalloc
func combine(a, b treeNode) treeNode {
	n := treeNode{
		eligCnt:     a.eligCnt + b.eligCnt,
		hasSpare:    a.hasSpare || b.hasSpare,
		hasActSpare: a.hasActSpare || b.hasActSpare,
		headroom:    a.headroom + b.headroom,
		loadSum:     a.loadSum + b.loadSum,
	}
	switch {
	case a.eligCnt == 0:
		n.minLoad, n.minIdx = b.minLoad, b.minIdx
	case b.eligCnt == 0 || a.minLoad <= b.minLoad:
		n.minLoad, n.minIdx = a.minLoad, a.minIdx
	default:
		n.minLoad, n.minIdx = b.minLoad, b.minIdx
	}
	if b.maxEligIdx >= 0 {
		n.maxEligIdx = b.maxEligIdx
	} else {
		n.maxEligIdx = a.maxEligIdx
	}
	return n
}

// memberTree is the segment tree. nodes[1] is the root; member i's leaf
// is nodes[base+i]; leaves beyond the member count stay neutral.
type memberTree struct {
	members []*member
	base    int
	nodes   []treeNode
}

// build (re)initializes the tree over the given members.
func (t *memberTree) build(members []*member) {
	t.members = members
	t.base = 1
	for t.base < len(members) {
		t.base <<= 1
	}
	need := 2 * t.base
	if cap(t.nodes) < need {
		t.nodes = make([]treeNode, need)
	} else {
		t.nodes = t.nodes[:need]
	}
	for i := range t.nodes {
		t.nodes[i] = emptyNode
	}
	for i, m := range members {
		t.nodes[t.base+i] = leafFor(m, i)
	}
	for i := t.base - 1; i >= 1; i-- {
		t.nodes[i] = combine(t.nodes[2*i], t.nodes[2*i+1])
	}
}

// leafFor derives member idx's leaf from its current routing state.
//
//apcvet:noalloc
func leafFor(m *member, idx int) treeNode {
	if !m.eligible() {
		return emptyNode
	}
	ld := m.load
	h := int64(m.cap - ld)
	if h < 0 {
		h = 0
	}
	return treeNode{
		eligCnt:     1,
		minLoad:     ld,
		minIdx:      idx,
		maxEligIdx:  idx,
		hasSpare:    ld < m.cap,
		hasActSpare: ld > 0 && ld < m.cap,
		headroom:    h,
		loadSum:     int64(ld),
	}
}

// update recomputes member idx's leaf and its root path. The loop is
// combine unrolled onto pointers — the tree is written on every load
// change (twice per request), so the root path must not copy 56-byte
// nodes through a call boundary the way query's combine does.
//
//apcvet:noalloc
func (t *memberTree) update(idx int) {
	i := t.base + idx
	t.nodes[i] = leafFor(t.members[idx], idx)
	for i >>= 1; i >= 1; i >>= 1 {
		l, r := &t.nodes[2*i], &t.nodes[2*i+1]
		n := &t.nodes[i]
		n.eligCnt = l.eligCnt + r.eligCnt
		n.hasSpare = l.hasSpare || r.hasSpare
		n.hasActSpare = l.hasActSpare || r.hasActSpare
		n.headroom = l.headroom + r.headroom
		n.loadSum = l.loadSum + r.loadSum
		switch {
		case l.eligCnt == 0:
			n.minLoad, n.minIdx = r.minLoad, r.minIdx
		case r.eligCnt == 0 || l.minLoad <= r.minLoad:
			n.minLoad, n.minIdx = l.minLoad, l.minIdx
		default:
			n.minLoad, n.minIdx = r.minLoad, r.minIdx
		}
		if r.maxEligIdx >= 0 {
			n.maxEligIdx = r.maxEligIdx
		} else {
			n.maxEligIdx = l.maxEligIdx
		}
	}
}

// root returns the whole-fleet aggregate.
//
//apcvet:noalloc
func (t *memberTree) root() treeNode { return t.nodes[1] }

// query returns the combined aggregate over the index range [lo, hi).
//
//apcvet:noalloc
func (t *memberTree) query(lo, hi int) treeNode {
	if lo < 0 {
		lo = 0
	}
	if hi > t.base {
		hi = t.base
	}
	if lo >= hi {
		return emptyNode
	}
	left, right := emptyNode, emptyNode
	for lo, hi = lo+t.base, hi+t.base; lo < hi; lo, hi = lo>>1, hi>>1 {
		if lo&1 == 1 {
			left = combine(left, t.nodes[lo])
			lo++
		}
		if hi&1 == 1 {
			hi--
			right = combine(t.nodes[hi], right)
		}
	}
	return combine(left, right)
}

// firstSpare returns the lowest index in [lo, hi) whose member is
// eligible with load < cap, or -1 — the tree form of the power_aware
// first-fit scan.
//
//apcvet:noalloc
func (t *memberTree) firstSpare(lo, hi int) int {
	return t.first(lo, hi, func(n treeNode) bool { return n.hasSpare })
}

// firstActSpare returns the lowest index in [lo, hi) whose member is
// eligible with 0 < load < cap, or -1 — the already-active preference of
// the rack packer.
//
//apcvet:noalloc
func (t *memberTree) firstActSpare(lo, hi int) int {
	return t.first(lo, hi, func(n treeNode) bool { return n.hasActSpare })
}

// first descends left-first for the lowest index in [lo, hi) whose leaf
// satisfies pred, pruning subtrees whose aggregate does not.
//
//apcvet:noalloc
func (t *memberTree) first(lo, hi int, pred func(treeNode) bool) int {
	if hi > t.base {
		hi = t.base
	}
	if lo < 0 {
		lo = 0
	}
	if lo >= hi {
		return -1
	}
	return t.firstIn(1, 0, t.base, lo, hi, pred)
}

//apcvet:noalloc
func (t *memberTree) firstIn(node, nodeLo, nodeHi, lo, hi int, pred func(treeNode) bool) int {
	if nodeHi <= lo || hi <= nodeLo || !pred(t.nodes[node]) {
		return -1
	}
	if node >= t.base {
		return nodeLo
	}
	mid := (nodeLo + nodeHi) / 2
	if i := t.firstIn(2*node, nodeLo, mid, lo, hi, pred); i >= 0 {
		return i
	}
	return t.firstIn(2*node+1, mid, nodeHi, lo, hi, pred)
}

// rackCounters is the per-rack occupancy summary the rack policies
// select racks from in O(1) per rack, maintained by Fleet.touch.
type rackCounters struct {
	size     int // members in the rack
	elig     int // eligible members
	active   int // eligible with load > 0
	spare    int // eligible with load < cap
	actSpare int // eligible with 0 < load < cap
}

// memberAgg caches one member's last-applied contribution to the rack
// and fleet counters, so touch can diff instead of rescanning.
type memberAgg struct {
	elig     bool
	active   bool
	spare    bool
	actSpare bool
	alive    bool
	load     int
	capacity int // max(cap, cores): the shed threshold's capacity
}

// computeAgg derives the member's current contribution.
//
//apcvet:noalloc
func (m *member) computeAgg() memberAgg {
	a := memberAgg{alive: m.alive(), load: m.load, capacity: m.cap}
	if m.cores > a.capacity {
		a.capacity = m.cores
	}
	if m.eligible() {
		a.elig = true
		a.active = m.load > 0
		a.spare = m.load < m.cap
		a.actSpare = m.load > 0 && m.load < m.cap
	}
	return a
}

// touch folds a member's state change (load, cap, drain state, fault
// flags) into the tree, its rack's counters, and the fleet-wide alive
// counters. It must run after every such change and before the next
// policy decision.
//
//apcvet:noalloc
func (f *Fleet) touch(m *member) {
	old := m.agg
	neu := m.computeAgg()
	m.agg = neu

	rc := &f.rackCnt[m.rack]
	rc.elig += b2i(neu.elig) - b2i(old.elig)
	rc.active += b2i(neu.active) - b2i(old.active)
	rc.spare += b2i(neu.spare) - b2i(old.spare)
	rc.actSpare += b2i(neu.actSpare) - b2i(old.actSpare)

	if old.alive {
		f.aliveCnt--
		f.aliveLoad -= old.load
		f.aliveCap -= old.capacity
	}
	if neu.alive {
		f.aliveCnt++
		f.aliveLoad += neu.load
		f.aliveCap += neu.capacity
	}

	f.tree.update(m.idx)
}

// initTree builds the incremental structures after the members exist;
// every member starts eligible, empty and alive.
func (f *Fleet) initTree() {
	f.tree.build(f.members)
	if cap(f.rackCnt) < f.topo.Racks {
		f.rackCnt = make([]rackCounters, f.topo.Racks)
	} else {
		f.rackCnt = f.rackCnt[:f.topo.Racks]
		for i := range f.rackCnt {
			f.rackCnt[i] = rackCounters{}
		}
	}
	f.aliveCnt, f.aliveLoad, f.aliveCap = 0, 0, 0
	for _, m := range f.members {
		f.rackCnt[m.rack].size++
		m.agg = memberAgg{}
		f.touch(m)
	}
}

//apcvet:noalloc
func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
