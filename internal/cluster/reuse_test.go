package cluster

import (
	"reflect"
	"testing"

	"agilepkgc/internal/sim"
	"agilepkgc/internal/soc"
	"agilepkgc/internal/workload"
)

// resetCases are the configurations the Reset contract is pinned on:
// every balancer mechanism (packing, racks, drain hysteresis, SLA
// feedback, fault injection and robustness) appears in at least one.
var resetCases = []struct {
	name string
	cfg  Config
}{
	{"flat round_robin", Config{
		Policy:  RoundRobin,
		Members: nil, // filled by resetConfig
	}},
	{"flat power_aware", Config{
		Policy:    PowerAware,
		P99Target: 300 * sim.Microsecond,
	}},
	{"racked controller", Config{
		Policy:        RackPowerAware,
		P99Target:     300 * sim.Microsecond,
		Topology:      Topology{Racks: 2, ServersPerRack: 2},
		TorLatency:    5 * sim.Microsecond,
		DrainHold:     sim.Millisecond,
		FeedbackEpoch: sim.Millisecond,
	}},
	{"racked faults", Config{
		Policy:     RackAffinity,
		Topology:   Topology{Racks: 2, ServersPerRack: 2},
		TorLatency: 5 * sim.Microsecond,
		Faults: FaultConfig{
			MTBF:           20 * sim.Millisecond,
			MTTR:           2 * sim.Millisecond,
			RequestTimeout: 2 * sim.Millisecond,
			MaxRetries:     2,
			HedgeDelay:     500 * sim.Microsecond,
		},
	}},
}

// resetConfig fills in the four members every reset case uses.
func resetConfig(cfg Config) Config {
	cfg.Members = uniformMembers(4, soc.CPC1A)
	return cfg
}

// dirtyConfig is a same-shape point that exercises every mechanism the
// target case may have off (and vice versa), so the reset under test
// starts from a thoroughly used fleet rather than a fresh one.
func dirtyConfig(topo Topology) Config {
	return Config{
		Policy:        PowerAware,
		P99Target:     250 * sim.Microsecond,
		Topology:      topo,
		TorLatency:    3 * sim.Microsecond,
		DrainHold:     sim.Millisecond,
		FeedbackEpoch: sim.Millisecond,
		Members:       uniformMembers(4, soc.CPC1A),
	}
}

// TestFleetResetDeterministic is the Reset contract: a reset fleet is
// byte-identical to a fresh one. Each case first runs a different
// same-shape point on the fleet (different policy, spec, seed and
// controller/fault setup), resets to the target point, and requires the
// measurement to equal a fresh fleet's exactly — including the reused
// MeasureInto output buffers.
func TestFleetResetDeterministic(t *testing.T) {
	const warmup, window = 3 * sim.Millisecond, 15 * sim.Millisecond
	specFn := func() workload.Spec { return workload.MemcachedBursty(40000, 4) }
	for _, c := range resetCases {
		cfg := resetConfig(c.cfg)

		fresh, err := New(cfg, specFn(), 7)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		want := fresh.Measure(warmup, window)

		var r Reuse
		dirty, err := r.Fleet(dirtyConfig(cfg.Topology), workload.MemcachedBursty(60000, 8), 3)
		if err != nil {
			t.Fatalf("%s: dirty point: %v", c.name, err)
		}
		var got Measurement
		dirty.MeasureInto(&got, warmup, window) // dirty the output buffers too

		fl, err := r.Fleet(cfg, specFn(), 7)
		if err != nil {
			t.Fatalf("%s: reset point: %v", c.name, err)
		}
		if fl != dirty {
			t.Fatalf("%s: Reuse rebuilt instead of resetting a same-shape fleet", c.name)
		}
		fl.MeasureInto(&got, warmup, window)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s: reset fleet diverged from fresh fleet:\nfresh: %+v\nreset: %+v",
				c.name, want, got)
		}
	}
}

// TestFleetResetShapeGuard pins the one thing Reset refuses: changing
// the fleet's topology shape, which the positional rack wiring cannot
// absorb.
func TestFleetResetShapeGuard(t *testing.T) {
	spec := workload.Memcached(10000)
	fl, err := New(resetConfig(Config{Policy: RoundRobin}), spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	bad := Config{
		Policy:   RoundRobin,
		Topology: Topology{Racks: 2, ServersPerRack: 2},
		Members:  uniformMembers(4, soc.CPC1A),
	}
	if err := fl.Reset(bad, spec, 1); err == nil {
		t.Error("Reset accepted a topology reshape")
	}
	if err := fl.Reset(resetConfig(Config{Policy: Policy(99)}), spec, 1); err == nil {
		t.Error("Reset accepted an invalid config")
	}
	// A Reuse falls back to a rebuild for the same reshape.
	r := Reuse{fl: fl}
	fl2, err := r.Fleet(bad, spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fl2 == fl {
		t.Error("Reuse handed back the old fleet for a reshaped point")
	}
}

// TestMemberLoadTracksServer pins the balancer's incremental occupancy
// count against ground truth: at every routing decision, each member's
// tracked load equals the server's own in-flight count plus the
// requests still riding the ToR hop toward it.
func TestMemberLoadTracksServer(t *testing.T) {
	fl, err := New(Config{
		Policy:     RackPowerAware,
		P99Target:  300 * sim.Microsecond,
		Topology:   Topology{Racks: 2, ServersPerRack: 2},
		TorLatency: 5 * sim.Microsecond,
		DrainHold:  sim.Millisecond,
		Members:    uniformMembers(4, soc.CPC1A),
	}, workload.MemcachedBursty(60000, 8), 7)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	fl.testOnRoute = func(*member) {
		checked++
		for _, m := range fl.members {
			if m.load != m.srv.InFlight()+m.transit {
				t.Fatalf("member %d: tracked load %d != in-flight %d + transit %d",
					m.idx, m.load, m.srv.InFlight(), m.transit)
			}
		}
	}
	fl.Run(20 * sim.Millisecond)
	if checked == 0 {
		t.Fatal("no routing decisions observed")
	}
}

// TestRouteSteadyStateAllocs is the tentpole's contract on the hot
// path: once pools and arenas are primed, driving the fleet — routing,
// ToR transit, service, completion, drain and feedback decisions, and
// the fault layer's request-robustness envelope — allocates nothing,
// for every policy.
func TestRouteSteadyStateAllocs(t *testing.T) {
	policies := []Policy{RoundRobin, LeastLoaded, PowerAware, RackAffinity, RackPowerAware}
	for _, pol := range policies {
		for _, faults := range []bool{false, true} {
			name := pol.String()
			cfg := Config{
				Policy:     pol,
				P99Target:  300 * sim.Microsecond,
				Topology:   Topology{Racks: 2, ServersPerRack: 2},
				TorLatency: 5 * sim.Microsecond,
				Members:    uniformMembers(4, soc.CPC1A),
			}
			if pol == PowerAware || pol == RackPowerAware {
				cfg.DrainHold = sim.Millisecond
				cfg.FeedbackEpoch = sim.Millisecond
			}
			if faults {
				name += "+faults"
				cfg.Faults = FaultConfig{
					RequestTimeout: 2 * sim.Millisecond,
					MaxRetries:     2,
					HedgeDelay:     500 * sim.Microsecond,
				}
			}
			fl, err := New(cfg, workload.MemcachedBursty(60000, 8), 7)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			fl.Run(5 * sim.Millisecond) // prime pools, arena, histograms
			allocs := testing.AllocsPerRun(3, func() {
				fl.Run(sim.Millisecond)
			})
			if allocs > 0 {
				t.Errorf("%s: steady-state Run allocates %.1f times per ms window, want 0",
					name, allocs)
			}
		}
	}
}

// TestRouteSteadyStateAllocsTiered extends the zero-alloc contract to
// the service-graph layer: a two-tier graph — miss decisions, the TTL
// fill table, fan-out emission through the push source, join records
// and pending-map churn on top of both tiers' full routing paths —
// still allocates nothing at steady state.
func TestRouteSteadyStateAllocsTiered(t *testing.T) {
	g, err := NewGraph(twoTierConfig(0.8, 500*sim.Microsecond, 2), 7)
	if err != nil {
		t.Fatal(err)
	}
	// The prime is longer than the single-fleet test's: the backend
	// tier's heavy-tailed MySQL service times keep deepening the join
	// pool and latency histograms for a few more milliseconds.
	g.Run(20 * sim.Millisecond) // prime pools, maps, arena, histograms
	allocs := testing.AllocsPerRun(3, func() {
		g.Run(sim.Millisecond)
	})
	if allocs > 0 {
		t.Errorf("two-tier graph: steady-state Run allocates %.1f times per ms window, want 0", allocs)
	}
}
