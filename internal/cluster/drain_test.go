package cluster

import (
	"reflect"
	"testing"

	"agilepkgc/internal/server"
	"agilepkgc/internal/sim"
	"agilepkgc/internal/soc"
	"agilepkgc/internal/workload"
)

// drainFleet assembles the standard controller-test fleet: a bursty
// 2×2 racked power-aware fleet whose packing frontier actually moves.
func drainFleet(t *testing.T, pol Policy, hold, epoch sim.Duration) *Fleet {
	t.Helper()
	fl, err := New(Config{
		Policy:        pol,
		P99Target:     300 * sim.Microsecond,
		Topology:      Topology{Racks: 2, ServersPerRack: 2},
		TorLatency:    5 * sim.Microsecond,
		DrainHold:     hold,
		FeedbackEpoch: epoch,
		Members:       uniformMembers(4, soc.CPC1A),
	}, workload.MemcachedBursty(150000, 8), 1)
	if err != nil {
		t.Fatal(err)
	}
	return fl
}

// TestDrainNeverReadmitsBeforeEmpty is the hysteresis property test:
// once the controller decides to drain a member, no request may be
// routed to it until it has fully emptied (and, with the hold, not even
// then — only an expired hold makes it eligible again). The route seam
// asserts the stronger invariant the state machine maintains: every
// routed request lands on an *active* member, for both cap policies.
func TestDrainNeverReadmitsBeforeEmpty(t *testing.T) {
	for _, pol := range []Policy{PowerAware, RackPowerAware} {
		fl := drainFleet(t, pol, 500*sim.Microsecond, 0)
		routedWhileDraining := 0
		fl.testOnRoute = func(m *member) {
			if m.state == stDraining {
				routedWhileDraining++
			}
			if m.state != stActive {
				t.Errorf("%v: routed to member in state %d (load %d)", pol, m.state, fl.load(m))
			}
		}
		fl.Run(50 * sim.Millisecond)
		if routedWhileDraining != 0 {
			t.Errorf("%v: %d requests re-admitted before the member drained empty",
				pol, routedWhileDraining)
		}
		// The property must not hold vacuously: the controller actually
		// drained members during the run.
		var drains uint64
		for _, m := range fl.members {
			drains += m.drains
		}
		if drains == 0 {
			t.Errorf("%v: controller never drained a member — property test is vacuous", pol)
		}
		// And the drain decision never touched the anchor: server 0 (and
		// with it rack 0) must always stay routable.
		if fl.members[0].drains != 0 || !fl.members[0].eligible() {
			t.Errorf("%v: server 0 was drained (drains %d, state %d)",
				pol, fl.members[0].drains, fl.members[0].state)
		}
	}
}

// TestDrainHoldGuaranteesIdleStretch checks the hold does what it is
// for: a drained member's post-drain idle period is at least the hold
// long, so with a hold of H every drained member accumulates idle
// stretches the static policy's flapping frontier never sees.
func TestDrainHoldGuaranteesIdleStretch(t *testing.T) {
	const hold = 2 * sim.Millisecond
	fl := drainFleet(t, PowerAware, hold, 0)
	// Record, per member, when each hold started and when the member
	// next received a request; the gap must be >= hold.
	holdStart := make(map[*member]sim.Time)
	violations := 0
	fl.testOnRoute = func(m *member) {
		if start, held := holdStart[m]; held {
			if fl.eng.Now()-start < hold {
				violations++
			}
			delete(holdStart, m)
		}
	}
	// Poll hold entries through the state machine by wrapping Run in
	// small slices: a member newly in stHeld gets its start recorded.
	stop := fl.eng.Now() + 50*sim.Millisecond
	fl.gen.Start(stop)
	for fl.eng.Now() < stop {
		fl.eng.Run(fl.eng.Now() + 10*sim.Microsecond)
		for _, m := range fl.members {
			if m.state == stHeld {
				if _, seen := holdStart[m]; !seen {
					holdStart[m] = fl.eng.Now()
				}
			}
		}
	}
	if violations != 0 {
		t.Errorf("%d requests arrived at held members before the hold expired", violations)
	}
}

// TestDrainControllerOffParity locks the tentpole's parity contract at
// the fleet level: DrainHold = 0 and FeedbackEpoch = 0 must attach no
// controller and change nothing — same measurement, same engine event
// count — against a config that never mentions the fields. Non-cap
// policies must ignore the knobs entirely, mirroring P99Target.
func TestDrainControllerOffParity(t *testing.T) {
	measure := func(cfg Config) (Measurement, uint64, *Fleet) {
		fl, err := New(cfg, workload.MemcachedBursty(100000, 4), 3)
		if err != nil {
			t.Fatal(err)
		}
		m := fl.Measure(5*sim.Millisecond, 30*sim.Millisecond)
		return m, fl.eng.EventsFired(), fl
	}
	base := Config{
		Policy:    PowerAware,
		P99Target: 300 * sim.Microsecond,
		Members:   uniformMembers(4, soc.CPC1A),
	}
	zeroed := base
	zeroed.DrainHold, zeroed.FeedbackEpoch = 0, 0
	am, ae, afl := measure(base)
	bm, be, bfl := measure(zeroed)
	if !reflect.DeepEqual(am, bm) || ae != be {
		t.Errorf("explicit zero knobs changed the fleet: events %d vs %d", ae, be)
	}
	if afl.ctrl != nil || bfl.ctrl != nil {
		t.Error("zero-valued knobs attached a controller")
	}

	// round_robin ignores the knobs like it ignores P99Target.
	rr := Config{Policy: RoundRobin, Members: uniformMembers(4, soc.CPC1A)}
	rrDyn := rr
	rrDyn.DrainHold, rrDyn.FeedbackEpoch = sim.Millisecond, sim.Millisecond
	rrDyn.P99Target = 300 * sim.Microsecond
	cm, ce, cfl := measure(rr)
	dm, de, dfl := measure(rrDyn)
	if !reflect.DeepEqual(cm, dm) || ce != de {
		t.Error("round_robin did not ignore the balancer-dynamics knobs")
	}
	if cfl.ctrl != nil || dfl.ctrl != nil {
		t.Error("non-cap policy attached a controller")
	}
}

// TestDrainDeterminism extends the fleet determinism contract to the
// controller: same seed, same holds, bit-identical measurement — with
// both mechanisms armed at once.
func TestDrainDeterminism(t *testing.T) {
	for _, pol := range []Policy{PowerAware, RackPowerAware} {
		run := func() Measurement {
			fl := drainFleet(t, pol, 500*sim.Microsecond, 2*sim.Millisecond)
			return fl.Measure(5*sim.Millisecond, 30*sim.Millisecond)
		}
		a, b := run(), run()
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%v: repeated controller runs differ", pol)
		}
		if a.Drains == 0 {
			t.Errorf("%v: determinism test exercised no drains", pol)
		}
	}
}

// TestFeedbackAdjustsCaps pins the AIMD loop's two directions: a fleet
// whose measured p99 blows through a tight target must shrink its caps
// below the derived static value, and a lightly loaded fleet under a
// generous target must grow them (bounded by capMax).
func TestFeedbackAdjustsCaps(t *testing.T) {
	build := func(target sim.Duration, qps float64) *Fleet {
		fl, err := New(Config{
			Policy:        PowerAware,
			P99Target:     target,
			FeedbackEpoch: sim.Millisecond,
			Members:       uniformMembers(2, soc.CPC1A),
		}, workload.MemcachedBursty(qps, 8), 1)
		if err != nil {
			t.Fatal(err)
		}
		return fl
	}

	// Tight target, heavy bursts: p99 cannot be held, caps must fall.
	overloaded := build(150*sim.Microsecond, 400000)
	static0 := overloaded.members[0].cap
	overloaded.Run(50 * sim.Millisecond)
	if got := overloaded.members[0].cap; got >= static0 {
		t.Errorf("over-target fleet kept cap %d (static %d); want multiplicative decrease", got, static0)
	}

	// Generous target, light load: every epoch under target adds one.
	light := build(5*sim.Millisecond, 20000)
	lstatic := light.members[0].cap
	light.Run(50 * sim.Millisecond)
	if got := light.members[0].cap; got <= lstatic {
		t.Errorf("under-target fleet kept cap %d (static %d); want additive increase", got, lstatic)
	}
	if got, max := light.members[0].cap, light.members[0].capMax; got > max {
		t.Errorf("cap %d exceeded its ceiling %d", got, max)
	}
}

// TestPowerAwareCapExtremeTargets is the overflow regression test: the
// old slack·cores/meanCoreTime wrapped negative inside int64 for
// extreme p99 targets, and the cap<1 clamp silently turned "effectively
// unlimited latency budget" into the tightest possible cap of 1.
func TestPowerAwareCapExtremeTargets(t *testing.T) {
	mc := MemberConfig{SoC: soc.DefaultConfig(soc.CPC1A), Server: server.DefaultConfig()}
	spec := workload.Memcached(10000)

	// The largest representable target: the naive product overflows by
	// a factor of ~cores.
	if got := powerAwareCap(mc, spec, maxDuration, 0); got != maxPackCap {
		t.Errorf("max target: cap = %d, want saturated %d", got, maxPackCap)
	}
	// A merely absurd target (300 days) still saturates rather than
	// wrapping.
	if got := powerAwareCap(mc, spec, 26000000*sim.Second, 0); got != maxPackCap {
		t.Errorf("absurd target: cap = %d, want saturated %d", got, maxPackCap)
	}
	// Just past the overflow threshold with a huge mean core time: the
	// quotient path must stay exact, not collapse to 1.
	slowSrv := mc
	slowSrv.Server.KernelOverhead = 1000 * sim.Second
	target := maxDuration - sim.Second
	got := powerAwareCap(slowSrv, spec, target, 0)
	if got <= 1 {
		t.Errorf("huge mean core time: cap = %d; overflow clamp regressed", got)
	}
	// Monotonicity survives the guards: a bigger budget never shrinks
	// the cap across the legacy/saturation boundary.
	prev := 0
	for _, tgt := range []sim.Duration{
		sim.Millisecond, sim.Second, 1000 * sim.Second,
		26000000 * sim.Second, maxDuration,
	} {
		c := powerAwareCap(mc, spec, tgt, 0)
		if c < prev {
			t.Errorf("cap not monotone in target: %v -> %d (prev %d)", tgt, c, prev)
		}
		prev = c
	}
	// Ordinary targets still use the exact legacy arithmetic.
	want := mc.SoC.CoreCount + int((300*sim.Microsecond-
		(mc.Server.NetworkLatency+2*mc.Server.NICTransfer+mc.Server.KernelOverhead+
			sim.Duration(spec.Service.Mean()*float64(sim.Second))))*
		sim.Duration(mc.SoC.CoreCount)/
		(sim.Duration(spec.Service.Mean()*float64(sim.Second))+mc.Server.KernelOverhead))
	if got := powerAwareCap(mc, spec, 300*sim.Microsecond, 0); got != want {
		t.Errorf("ordinary target: cap = %d, want legacy %d", got, want)
	}
}
