package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeUnits(t *testing.T) {
	if Second != 1e9 {
		t.Fatalf("Second = %d, want 1e9", Second)
	}
	if Millisecond != 1e6 || Microsecond != 1e3 || Nanosecond != 1 {
		t.Fatalf("unit constants wrong: %d %d %d", Millisecond, Microsecond, Nanosecond)
	}
	if got := (2 * Second).Seconds(); got != 2.0 {
		t.Errorf("Seconds() = %v, want 2", got)
	}
	if got := (5 * Microsecond).Micros(); got != 5.0 {
		t.Errorf("Micros() = %v, want 5", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{42, "42ns"},
		{12 * Microsecond, "12.000us"},
		{15 * Millisecond, "15.000ms"},
		{25 * Second, "25.000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestScheduleAndRunOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	e.Run(100)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events out of order: %v", order)
	}
	if e.Now() != 100 {
		t.Fatalf("Now() = %v after Run(100)", e.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.Run(5)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var hits []Time
	e.Schedule(10, func() {
		hits = append(hits, e.Now())
		e.Schedule(5, func() { hits = append(hits, e.Now()) })
	})
	e.Run(100)
	if len(hits) != 2 || hits[0] != 10 || hits[1] != 15 {
		t.Fatalf("nested scheduling wrong: %v", hits)
	}
}

func TestScheduleZeroDelay(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Schedule(10, func() {
		e.Schedule(0, func() { ran = true })
	})
	e.Run(10)
	if !ran {
		t.Fatal("zero-delay event did not run within Run(10)")
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	ev := e.Schedule(10, func() { ran = true })
	if !ev.Pending() {
		t.Fatal("event should be pending")
	}
	if !ev.Cancel() {
		t.Fatal("first Cancel should return true")
	}
	if ev.Cancel() {
		t.Fatal("second Cancel should return false")
	}
	e.Run(100)
	if ran {
		t.Fatal("canceled event ran")
	}
	if ev.Pending() {
		t.Fatal("canceled event still pending")
	}
}

func TestCancelZeroValue(t *testing.T) {
	var ev Event
	if ev.Cancel() {
		t.Fatal("zero Event Cancel should be false")
	}
	if ev.Pending() {
		t.Fatal("zero Event should not be pending")
	}
}

func TestCancelAfterFire(t *testing.T) {
	e := NewEngine()
	ev := e.Schedule(1, func() {})
	e.Run(5)
	if ev.Cancel() {
		t.Fatal("Cancel after fire should return false")
	}
}

func TestRunDoesNotExecuteFutureEvents(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Schedule(50, func() { ran = true })
	e.Run(49)
	if ran {
		t.Fatal("event at 50 ran during Run(49)")
	}
	if e.Now() != 49 {
		t.Fatalf("Now() = %v, want 49", e.Now())
	}
	e.Run(50)
	if !ran {
		t.Fatal("event at 50 did not run during Run(50)")
	}
}

func TestStep(t *testing.T) {
	e := NewEngine()
	n := 0
	e.Schedule(10, func() { n++ })
	e.Schedule(20, func() { n++ })
	if !e.Step() {
		t.Fatal("Step should execute first event")
	}
	if e.Now() != 10 || n != 1 {
		t.Fatalf("after first Step: now=%v n=%d", e.Now(), n)
	}
	if !e.Step() {
		t.Fatal("Step should execute second event")
	}
	if e.Step() {
		t.Fatal("Step on empty queue should return false")
	}
}

func TestStepSkipsCanceled(t *testing.T) {
	e := NewEngine()
	ev := e.Schedule(10, func() { t.Fatal("canceled event ran") })
	ran := false
	e.Schedule(20, func() { ran = true })
	ev.Cancel()
	if !e.Step() {
		t.Fatal("Step should find the live event")
	}
	if !ran || e.Now() != 20 {
		t.Fatalf("Step skipped to wrong event: ran=%v now=%v", ran, e.Now())
	}
}

func TestRunUntilQuiescent(t *testing.T) {
	e := NewEngine()
	count := 0
	var chain func()
	chain = func() {
		count++
		if count < 5 {
			e.Schedule(1, chain)
		}
	}
	e.Schedule(1, chain)
	n := e.RunUntilQuiescent(100)
	if n != 5 || count != 5 {
		t.Fatalf("RunUntilQuiescent executed %d (count %d), want 5", n, count)
	}
}

func TestRunUntilQuiescentLimit(t *testing.T) {
	e := NewEngine()
	var loop func()
	loop = func() { e.Schedule(1, loop) }
	e.Schedule(1, loop)
	n := e.RunUntilQuiescent(50)
	if n != 50 {
		t.Fatalf("limit not respected: %d", n)
	}
}

func TestEventsFired(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 7; i++ {
		e.Schedule(Time(i), func() {})
	}
	e.Run(100)
	if e.EventsFired() != 7 {
		t.Fatalf("EventsFired = %d, want 7", e.EventsFired())
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	NewEngine().Schedule(-1, func() {})
}

func TestAtPastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {})
	e.Run(10)
	defer func() {
		if recover() == nil {
			t.Fatal("At in the past did not panic")
		}
	}()
	e.At(5, func() {})
}

func TestRunPastPanics(t *testing.T) {
	e := NewEngine()
	e.Run(10)
	defer func() {
		if recover() == nil {
			t.Fatal("Run into the past did not panic")
		}
	}()
	e.Run(5)
}

func TestNilFuncPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil fn did not panic")
		}
	}()
	NewEngine().Schedule(1, nil)
}

func TestPendingCount(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 4; i++ {
		e.Schedule(Time(10+i), func() {})
	}
	if e.Pending() != 4 {
		t.Fatalf("Pending = %d, want 4", e.Pending())
	}
	e.Run(11)
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d after two fired, want 2", e.Pending())
	}
}

// Property: for any set of delays, events fire in nondecreasing time
// order and the engine clock equals each event's scheduled time when it
// fires.
func TestPropertyOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		e := NewEngine()
		var fireTimes []Time
		for _, d := range delays {
			d := Time(d)
			e.At(d, func() {
				if e.Now() != d {
					t.Errorf("fired at %v, scheduled %v", e.Now(), d)
				}
				fireTimes = append(fireTimes, e.Now())
			})
		}
		e.Run(Time(1 << 17))
		if len(fireTimes) != len(delays) {
			return false
		}
		return sort.SliceIsSorted(fireTimes, func(i, j int) bool { return fireTimes[i] < fireTimes[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: canceling a random subset leaves exactly the complement to run.
func TestPropertyCancelSubset(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		total := int(n%64) + 1
		ran := make([]bool, total)
		evs := make([]Event, total)
		for i := 0; i < total; i++ {
			i := i
			evs[i] = e.Schedule(Time(rng.Intn(1000)), func() { ran[i] = true })
		}
		canceled := make([]bool, total)
		for i := 0; i < total; i++ {
			if rng.Intn(2) == 0 {
				evs[i].Cancel()
				canceled[i] = true
			}
		}
		e.Run(2000)
		for i := 0; i < total; i++ {
			if ran[i] == canceled[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Determinism: two identical runs produce identical event sequences.
func TestDeterminism(t *testing.T) {
	run := func() []Time {
		e := NewEngine()
		rng := rand.New(rand.NewSource(42))
		var log []Time
		var gen func()
		gen = func() {
			log = append(log, e.Now())
			if len(log) < 500 {
				e.Schedule(Time(rng.Intn(100)), gen)
				if rng.Intn(3) == 0 {
					e.Schedule(Time(rng.Intn(100)), func() { log = append(log, e.Now()) })
				}
			}
		}
		e.Schedule(0, gen)
		e.RunUntilQuiescent(10000)
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("different lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func BenchmarkScheduleFire(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Schedule(1, func() {})
		e.Step()
	}
}

// TestEngineReset pins the Reset contract: a reset engine replays a
// schedule exactly as a fresh one would, every outstanding handle goes
// stale, and the reused arena reissues slots in the order a fresh
// engine's arena would.
func TestEngineReset(t *testing.T) {
	type fire struct {
		at  Time
		tag int
	}
	drive := func(e *Engine) []fire {
		var log []fire
		evs := make([]Event, 0, 8)
		for i := 0; i < 6; i++ {
			i := i
			evs = append(evs, e.Schedule(Duration(10*i), func() { log = append(log, fire{e.Now(), i}) }))
		}
		evs[2].Cancel()
		evs[4].Cancel()
		e.Schedule(25, func() { log = append(log, fire{e.Now(), 100}) })
		e.RunUntilQuiescent(100)
		return log
	}

	e := NewEngine()
	first := drive(e)
	stale := e.Schedule(5, func() { t.Error("pre-reset event fired after Reset") })

	e.Reset()
	if e.Now() != 0 || e.Pending() != 0 || e.EventsFired() != 0 {
		t.Fatalf("Reset left state behind: now=%v pending=%d fired=%d",
			e.Now(), e.Pending(), e.EventsFired())
	}
	if stale.Pending() {
		t.Error("pre-reset handle still pending after Reset")
	}
	if stale.Cancel() {
		t.Error("pre-reset handle cancelable after Reset")
	}

	second := drive(e)
	if len(first) != len(second) {
		t.Fatalf("replay length differs: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("replay diverged at %d: %+v vs %+v", i, first[i], second[i])
		}
	}
}
