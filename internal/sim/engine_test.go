package sim

// Tests for the pooled 4-ary-heap engine: equivalence against a
// reference container/heap implementation with the documented
// (time, seq) lazy-cancel semantics, generation safety of recycled
// handles, and the zero-allocation guarantee on the steady-state
// schedule→fire cycle.

import (
	"container/heap"
	"math/rand"
	"testing"
)

// refEvent / refQueue reimplement the original container/heap engine
// semantics (lazy cancellation, (time, seq) ordering) as an oracle.
type refEvent struct {
	at       Time
	seq      uint64
	id       int
	canceled bool
}

type refQueue []*refEvent

func (q refQueue) Len() int { return len(q) }
func (q refQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q refQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *refQueue) Push(x any)   { *q = append(*q, x.(*refEvent)) }
func (q *refQueue) Pop() any     { old := *q; n := len(old); ev := old[n-1]; *q = old[:n-1]; return ev }
func (q *refQueue) popLive() *refEvent {
	for q.Len() > 0 {
		ev := heap.Pop(q).(*refEvent)
		if !ev.canceled {
			return ev
		}
	}
	return nil
}

// TestEquivalenceWithReferenceHeap drives the real engine and the
// reference heap through identical random schedule/cancel/step
// interleavings (including same-instant bursts and cancellations of
// both heap and ring events) and requires identical fire order.
func TestEquivalenceWithReferenceHeap(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))

		e := NewEngine()
		ref := refQueue{}
		var refSeq uint64
		refNow := Time(0)

		var gotOrder, wantOrder []int
		type livePair struct {
			ev  Event
			ref *refEvent
		}
		var live []livePair
		nextID := 0

		schedule := func(d Duration) {
			id := nextID
			nextID++
			ev := e.Schedule(d, func() { gotOrder = append(gotOrder, id) })
			re := &refEvent{at: refNow + d, seq: refSeq, id: id}
			refSeq++
			heap.Push(&ref, re)
			live = append(live, livePair{ev, re})
		}

		for op := 0; op < 400; op++ {
			switch rng.Intn(5) {
			case 0, 1: // schedule with a random delay
				schedule(Duration(rng.Intn(50)))
			case 2: // same-instant burst
				n := 1 + rng.Intn(4)
				for i := 0; i < n; i++ {
					schedule(0)
				}
			case 3: // cancel a random event (live or stale)
				if len(live) > 0 {
					p := live[rng.Intn(len(live))]
					got := p.ev.Cancel()
					want := !p.ref.canceled && !fired(wantOrder, p.ref.id)
					if got != want {
						t.Fatalf("trial %d: Cancel(id %d) = %v, reference says %v",
							trial, p.ref.id, got, want)
					}
					if got {
						p.ref.canceled = true
					}
				}
			case 4: // step both
				stepped := e.Step()
				re := ref.popLive()
				if stepped != (re != nil) {
					t.Fatalf("trial %d: Step=%v but reference has live=%v", trial, stepped, re != nil)
				}
				if re != nil {
					refNow = re.at
					wantOrder = append(wantOrder, re.id)
				}
			}
		}
		// Drain both.
		for e.Step() {
		}
		for re := ref.popLive(); re != nil; re = ref.popLive() {
			wantOrder = append(wantOrder, re.id)
		}
		if len(gotOrder) != len(wantOrder) {
			t.Fatalf("trial %d: fired %d events, reference fired %d", trial, len(gotOrder), len(wantOrder))
		}
		for i := range gotOrder {
			if gotOrder[i] != wantOrder[i] {
				t.Fatalf("trial %d: fire order diverges at %d: got %d want %d",
					trial, i, gotOrder[i], wantOrder[i])
			}
		}
	}
}

func fired(order []int, id int) bool {
	for _, v := range order {
		if v == id {
			return true
		}
	}
	return false
}

// TestStaleHandleCannotTouchRecycledSlot checks the generation guard: a
// handle to a fired or canceled event must stay dead even after its
// arena slot is recycled for a new event.
func TestStaleHandleCannotTouchRecycledSlot(t *testing.T) {
	e := NewEngine()
	h1 := e.Schedule(5, func() {})
	e.Run(10)
	if h1.Pending() {
		t.Fatal("fired event still pending")
	}
	// The freed slot is recycled by the next Schedule.
	ran := false
	h2 := e.Schedule(5, func() { ran = true })
	if h1.Pending() {
		t.Fatal("stale handle reports recycled slot as pending")
	}
	if h1.Cancel() {
		t.Fatal("stale handle canceled a recycled slot's event")
	}
	if !h2.Pending() {
		t.Fatal("new event should be pending")
	}
	e.Run(20)
	if !ran {
		t.Fatal("new event did not fire")
	}

	// Same via Cancel: cancel, recycle, poke the stale handle.
	h3 := e.Schedule(5, func() {})
	h3.Cancel()
	ran = false
	h4 := e.Schedule(5, func() { ran = true })
	if h3.Pending() || h3.Cancel() {
		t.Fatal("canceled handle came back to life after slot reuse")
	}
	e.Run(e.Now() + 10)
	if !ran {
		t.Fatal("event after canceled-slot reuse did not fire")
	}
	_ = h4
}

// TestCancelRemovesFromQueue checks the true-removal satellite: canceled
// events leave Pending() immediately instead of lingering as graveyard
// entries.
func TestCancelRemovesFromQueue(t *testing.T) {
	e := NewEngine()
	var evs []Event
	for i := 0; i < 100; i++ {
		evs = append(evs, e.Schedule(Time(10+i), func() {}))
	}
	for i := 0; i < 100; i += 2 {
		evs[i].Cancel()
	}
	if got := e.Pending(); got != 50 {
		t.Fatalf("Pending = %d after canceling half, want 50", got)
	}
	fired := 0
	for e.Step() {
		fired++
	}
	if fired != 50 {
		t.Fatalf("fired %d events, want 50", fired)
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after drain, want 0", e.Pending())
	}
}

// TestSameInstantRingInterleavesWithHeap checks the (time, seq) contract
// across the ring fast path: events already in the heap for instant T
// precede events scheduled *at* T for T, and FIFO order holds within
// each.
func TestSameInstantRingInterleavesWithHeap(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(10, func() { // seq 0, fires first at t=10
		order = append(order, 0)
		e.Schedule(0, func() { order = append(order, 3) }) // ring, seq 3
		e.Schedule(0, func() { order = append(order, 4) }) // ring, seq 4
	})
	e.Schedule(10, func() { order = append(order, 1) }) // heap, seq 1
	e.Schedule(10, func() { order = append(order, 2) }) // heap, seq 2
	e.Run(10)
	want := []int{0, 1, 2, 3, 4}
	if len(order) != len(want) {
		t.Fatalf("fired %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fired %v, want %v", order, want)
		}
	}
}

// TestCancelRingEvent cancels a same-instant event between scheduling
// and firing.
func TestCancelRingEvent(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(10, func() {
		e.Schedule(0, func() { order = append(order, 1) })
		bad := e.Schedule(0, func() { t.Fatal("canceled ring event ran") })
		e.Schedule(0, func() { order = append(order, 2) })
		bad.Cancel()
		if e.Pending() != 2 {
			t.Fatalf("Pending = %d inside handler, want 2", e.Pending())
		}
	})
	e.Run(20)
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v, want [1 2]", order)
	}
}

// TestScheduleFireAllocFree is the allocs/op regression gate for the
// pooled engine: after warmup, the schedule→fire cycle must not allocate
// on either the heap path or the same-instant ring path.
func TestScheduleFireAllocFree(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	for i := 0; i < 1000; i++ { // warm the arena, heap, and ring
		e.Schedule(Duration(i%3), fn)
	}
	for e.Step() {
	}

	if avg := testing.AllocsPerRun(2000, func() {
		e.Schedule(1, fn)
		e.Step()
	}); avg != 0 {
		t.Errorf("heap path: %v allocs/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(2000, func() {
		e.Schedule(0, fn)
		e.Step()
	}); avg != 0 {
		t.Errorf("ring path: %v allocs/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(2000, func() {
		ev := e.Schedule(5, fn)
		ev.Cancel()
	}); avg != 0 {
		t.Errorf("schedule+cancel: %v allocs/op, want 0", avg)
	}
}

// BenchmarkScheduleFireSameInstant measures the ring fast path.
func BenchmarkScheduleFireSameInstant(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Schedule(0, fn)
		e.Step()
	}
}

// BenchmarkScheduleCancel measures schedule followed by true removal.
func BenchmarkScheduleCancel(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Schedule(Duration(i%64)+1, fn).Cancel()
	}
}

// BenchmarkChurn1k measures schedule→fire with 1024 events resident, the
// depth a loaded 36-core simulation actually sees.
func BenchmarkChurn1k(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	for i := 0; i < 1024; i++ {
		e.Schedule(Duration(1+i), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(1025, fn)
		e.Step()
	}
}
