// Package sim provides a deterministic discrete-event simulation engine.
//
// All of the AgilePkgC models (cores, IO links, voltage regulators, power
// management units, workloads) are written against this engine. Time is
// virtual and advances only when events fire; between events the modeled
// hardware is in a piecewise-constant state, which is exactly the
// semantics the power accounting in package power relies on.
//
// The engine is single-threaded and deterministic: events scheduled for
// the same instant fire in scheduling order (FIFO), so repeated runs with
// the same seed produce identical traces.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
//
// One nanosecond is fine-grained enough for every mechanism in the paper:
// the agile PMU runs at 500 MHz (2 ns per cycle), FIVR voltage slews at
// 2 mV/ns, and the shortest IO transition (L0p exit) is about 10 ns.
type Time int64

// Duration is a span of virtual time in nanoseconds. It is a separate
// name from Time only for documentation; arithmetic mixes them freely.
type Duration = Time

// Convenient duration units.
const (
	Nanosecond  Duration = 1
	Microsecond Duration = 1000 * Nanosecond
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
)

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros returns the time as a floating-point number of microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t < 10*Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < 10*Millisecond:
		return fmt.Sprintf("%.3fus", t.Micros())
	case t < 10*Second:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.3fs", t.Seconds())
	}
}

// Event is a scheduled callback. Events are created by Engine.Schedule /
// Engine.At and may be canceled before they fire.
type Event struct {
	at       Time
	seq      uint64
	fn       func()
	canceled bool
	fired    bool
	index    int // heap index, -1 when not queued
}

// At returns the virtual time the event is scheduled for.
func (ev *Event) At() Time { return ev.at }

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled event is a no-op. Cancel returns true if the event was
// pending and is now canceled.
func (ev *Event) Cancel() bool {
	if ev == nil || ev.fired || ev.canceled {
		return false
	}
	ev.canceled = true
	return true
}

// Pending reports whether the event is still scheduled to fire.
func (ev *Event) Pending() bool { return ev != nil && !ev.fired && !ev.canceled }

// Engine is a discrete-event simulator. The zero value is not usable; use
// NewEngine.
type Engine struct {
	now    Time
	queue  eventQueue
	seq    uint64
	nextID uint64

	// Stats
	fired uint64
}

// NewEngine returns an engine positioned at time zero with an empty queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// EventsFired returns the total number of events executed so far. It is
// useful for benchmarking and for asserting that flows have quiesced.
func (e *Engine) EventsFired() uint64 { return e.fired }

// Pending returns the number of events currently queued (including
// canceled events not yet discarded).
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule arranges for fn to run after delay d. A negative delay panics:
// the hardware being modeled cannot signal into the past.
func (e *Engine) Schedule(d Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	return e.At(e.now+d, fn)
}

// At arranges for fn to run at absolute time t, which must not be in the
// past. Events scheduled for the same instant run in scheduling order.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	ev := &Event{at: t, seq: e.seq, fn: fn, index: -1}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// Step executes the next pending event, advancing time to it. It returns
// false if the queue is empty.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.canceled {
			continue
		}
		e.now = ev.at
		ev.fired = true
		e.fired++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty or the next event is after
// `until`; it then advances time to exactly `until`. Running to a time in
// the past panics.
func (e *Engine) Run(until Time) {
	if until < e.now {
		panic(fmt.Sprintf("sim: run until %v before now %v", until, e.now))
	}
	for {
		ev := e.queue.peekLive()
		if ev == nil || ev.at > until {
			break
		}
		e.Step()
	}
	e.now = until
}

// RunUntilQuiescent executes events until none remain or the limit on the
// number of events is reached. It returns the number of events executed.
// It is intended for flow tests ("after the wake event, the system settles
// in PC0") where the natural end is an empty queue.
func (e *Engine) RunUntilQuiescent(maxEvents int) int {
	n := 0
	for n < maxEvents && e.Step() {
		n++
	}
	return n
}

// eventQueue is a min-heap ordered by (time, sequence).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// peekLive returns the earliest non-canceled event without removing it,
// discarding canceled events it encounters at the top.
func (q *eventQueue) peekLive() *Event {
	for len(*q) > 0 {
		ev := (*q)[0]
		if !ev.canceled {
			return ev
		}
		heap.Pop(q)
	}
	return nil
}
