// Package sim provides a deterministic discrete-event simulation engine.
//
// All of the AgilePkgC models (cores, IO links, voltage regulators, power
// management units, workloads) are written against this engine. Time is
// virtual and advances only when events fire; between events the modeled
// hardware is in a piecewise-constant state, which is exactly the
// semantics the power accounting in package power relies on.
//
// The engine is single-threaded and deterministic: events scheduled for
// the same instant fire in scheduling order (FIFO), so repeated runs with
// the same seed produce identical traces. Independent engines are fully
// isolated and may run concurrently on separate goroutines; that is how
// package experiments fans sweep points across cores.
//
// # Implementation
//
// The queue is an inlined 4-ary min-heap ordered by (time, sequence) over
// a pooled arena of event nodes: scheduling recycles nodes from a free
// list, so the steady-state Schedule→fire cycle performs zero heap
// allocations and no interface boxing. Events scheduled for the current
// instant bypass the heap entirely through a FIFO ring (the common
// cascade pattern where an event schedules immediate follow-ups).
// Cancel releases the node immediately but leaves the heap entry behind
// as a generation-stale tombstone that the scheduler discards when it
// surfaces; sift operations therefore never maintain back-pointers into
// the arena, which keeps them branch- and store-light. Pending() counts
// only live events. Handles are generation-checked: a stale Event (fired
// or canceled) can never cancel a recycled node. See DESIGN.md for the
// full ordering contract.
package sim

import "fmt"

// Time is a point in virtual time, in nanoseconds since simulation start.
//
// One nanosecond is fine-grained enough for every mechanism in the paper:
// the agile PMU runs at 500 MHz (2 ns per cycle), FIVR voltage slews at
// 2 mV/ns, and the shortest IO transition (L0p exit) is about 10 ns.
type Time int64

// Duration is a span of virtual time in nanoseconds. It is a separate
// name from Time only for documentation; arithmetic mixes them freely.
type Duration = Time

// Convenient duration units.
const (
	Nanosecond  Duration = 1
	Microsecond Duration = 1000 * Nanosecond
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
)

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros returns the time as a floating-point number of microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t < 10*Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < 10*Millisecond:
		return fmt.Sprintf("%.3fus", t.Micros())
	case t < 10*Second:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.3fs", t.Seconds())
	}
}

// Event is a handle to a scheduled callback, returned by Engine.Schedule
// and Engine.At. It is a small value (copy it freely); the zero Event is
// valid and permanently not pending, so model structs can hold an Event
// field and Cancel it unconditionally.
//
// Handles are generation-checked against the engine's node arena: once
// the event fires or is canceled its node may be recycled for a future
// event, but this handle keeps reporting Pending() == false and
// Cancel() == false forever.
type Event struct {
	eng  *Engine
	at   Time
	gen  uint32
	slot int32
}

// At returns the virtual time the event was scheduled for.
func (ev Event) At() Time { return ev.at }

// Cancel prevents the event from firing and removes it from the queue.
// Canceling an already-fired, already-canceled, or zero Event is a no-op.
// Cancel returns true if the event was pending and is now canceled.
func (ev Event) Cancel() bool {
	if ev.eng == nil {
		return false
	}
	return ev.eng.cancel(ev.slot, ev.gen)
}

// Pending reports whether the event is still scheduled to fire.
func (ev Event) Pending() bool {
	if ev.eng == nil {
		return false
	}
	n := &ev.eng.nodes[ev.slot]
	return n.gen == ev.gen
}

// node is one slot of the engine's pooled event arena. A node is live
// while its event is queued (in the heap or the same-instant ring) and is
// recycled through the free list once the event fires or is canceled;
// recycling bumps gen so stale handles — and the canceled event's
// abandoned heap entry — die. pos records only which queue holds the
// node, never a position: sift operations would otherwise have to write
// a back-pointer into the arena on every level they touch.
type node struct {
	fn  func()
	gen uint32
	pos int32 // posHeap, posRing, or posFree
}

const (
	posFree int32 = -1
	posRing int32 = -2
	posHeap int32 = -3
)

// heapItem is one entry of the 4-ary min-heap. The ordering key
// (at, seq) is stored inline so sift comparisons never chase into the
// node arena; gen lets the scheduler discard entries whose event was
// canceled (the node was released, so its generation moved on).
type heapItem struct {
	at   Time
	seq  uint64
	slot int32
	gen  uint32
}

// ringEntry is one entry of the same-instant FIFO ring. seq is stored so
// the scheduler can interleave ring entries with heap entries that share
// the current instant; gen detects entries whose event was canceled.
type ringEntry struct {
	seq  uint64
	slot int32
	gen  uint32
}

// Engine is a discrete-event simulator. The zero value is not usable; use
// NewEngine.
type Engine struct {
	now Time
	seq uint64

	heap     []heapItem
	heapLive int // heap entries whose event is not canceled
	nodes    []node
	free     []int32

	// ring holds events scheduled for exactly the current instant, in
	// FIFO order; ringHead indexes the next entry, ringLive counts the
	// non-canceled ones. Every ring entry's time is e.now (time cannot
	// advance past an instant while events at it remain).
	ring     []ringEntry
	ringHead int
	ringLive int

	// Stats
	fired uint64
}

// NewEngine returns an engine positioned at time zero with an empty queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// EventsFired returns the total number of events executed so far. It is
// useful for benchmarking and for asserting that flows have quiesced.
func (e *Engine) EventsFired() uint64 { return e.fired }

// Pending returns the number of events currently queued. Canceled events
// are never counted.
func (e *Engine) Pending() int { return e.heapLive + e.ringLive }

// Reset returns the engine to its initial state — time zero, empty
// queue, zero counters — while keeping the node arena and queue storage,
// so a simulation can be rebuilt on the engine without re-growing any
// backing array. Every outstanding Event handle goes permanently stale,
// exactly as if each pending event had been canceled. The free list is
// stacked so slots are reissued in arena order: a rebuilt simulation
// sees the same slot numbering a fresh engine would produce, which keeps
// reset-vs-fresh runs easy to diff event-for-event.
func (e *Engine) Reset() {
	e.now, e.seq, e.fired = 0, 0, 0
	e.heap = e.heap[:0]
	e.heapLive = 0
	e.ring = e.ring[:0]
	e.ringHead, e.ringLive = 0, 0
	e.free = e.free[:0]
	for i := len(e.nodes) - 1; i >= 0; i-- {
		nd := &e.nodes[i]
		nd.fn = nil
		nd.gen++
		nd.pos = posFree
		e.free = append(e.free, int32(i))
	}
}

// Schedule arranges for fn to run after delay d. A negative delay panics:
// the hardware being modeled cannot signal into the past.
func (e *Engine) Schedule(d Duration, fn func()) Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	return e.At(e.now+d, fn)
}

// At arranges for fn to run at absolute time t, which must not be in the
// past. Events scheduled for the same instant run in scheduling order.
func (e *Engine) At(t Time, fn func()) Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	slot := e.alloc()
	nd := &e.nodes[slot]
	nd.fn = fn
	seq := e.seq
	e.seq++
	if t == e.now {
		// Same-instant fast path: FIFO ring, no heap traffic. All ring
		// entries share time e.now and increasing seq, so ring order is
		// exactly (time, seq) order.
		if e.ringHead == len(e.ring) {
			e.ring = e.ring[:0]
			e.ringHead = 0
		}
		nd.pos = posRing
		e.ring = append(e.ring, ringEntry{seq: seq, slot: slot, gen: nd.gen})
		e.ringLive++
	} else {
		nd.pos = posHeap
		e.heapPush(heapItem{at: t, seq: seq, slot: slot, gen: nd.gen})
		e.heapLive++
	}
	return Event{eng: e, at: t, gen: nd.gen, slot: slot}
}

// alloc pops a free node slot, growing the arena when the free list is
// empty. Node generations start at 1 so a live node never matches a
// zero handle.
func (e *Engine) alloc() int32 {
	if n := len(e.free); n > 0 {
		slot := e.free[n-1]
		e.free = e.free[:n-1]
		return slot
	}
	e.nodes = append(e.nodes, node{gen: 1, pos: posFree})
	return int32(len(e.nodes) - 1)
}

// release recycles a node after its event fired or was canceled, bumping
// the generation so outstanding handles go stale.
func (e *Engine) release(slot int32) {
	nd := &e.nodes[slot]
	nd.fn = nil
	nd.gen++
	nd.pos = posFree
	e.free = append(e.free, slot)
}

// cancel releases the event in slot if gen still matches. The queue
// entry itself is left behind; releasing bumps the node's generation, so
// the entry no longer matches and is skipped when it surfaces.
func (e *Engine) cancel(slot int32, gen uint32) bool {
	nd := &e.nodes[slot]
	if nd.gen != gen {
		return false
	}
	inRing := nd.pos == posRing
	e.release(slot) // before compaction, so the dead entry no longer matches
	if inRing {
		e.ringLive--
		return true
	}
	e.heapLive--
	// Bound tombstone buildup: park/idle timers in the device models are
	// canceled far more often than they fire, and letting their dead
	// entries pile up would deepen every subsequent sift. Compact once
	// half the heap is dead (the 64 floor keeps tiny heaps out of the
	// amortization).
	if len(e.heap) >= 64 && e.heapLive*2 <= len(e.heap) {
		e.compactHeap()
	}
	return true
}

// compactHeap drops canceled entries and re-heapifies. The heap order of
// the surviving events is unchanged — pops depend only on (time, seq),
// not on array layout — so compaction is invisible to the simulation.
func (e *Engine) compactHeap() {
	w := 0
	for _, it := range e.heap {
		if e.nodes[it.slot].gen == it.gen {
			e.heap[w] = it
			w++
		}
	}
	e.heap = e.heap[:w]
	for i := (w - 2) >> 2; i >= 0; i-- {
		e.heapDown(i)
	}
}

// Step executes the next pending event, advancing time to it. It returns
// false if the queue is empty.
func (e *Engine) Step() bool {
	return e.step(1<<63 - 1)
}

// step fires the earliest event with time <= limit, in exact (time, seq)
// order across the heap and the same-instant ring. It is the single
// scheduling pass shared by Step and Run.
func (e *Engine) step(limit Time) bool {
	// Find the live ring head, skipping entries canceled in place.
	ringSeq, haveRing := uint64(0), false
	for e.ringHead < len(e.ring) {
		en := &e.ring[e.ringHead]
		if e.nodes[en.slot].gen == en.gen {
			ringSeq, haveRing = en.seq, true
			break
		}
		e.ringHead++
	}
	if !haveRing && e.ringHead > 0 {
		e.ring = e.ring[:0]
		e.ringHead = 0
	}

	// Discard canceled entries that have surfaced at the heap top, so the
	// ring/heap comparison below sees only live events.
	for len(e.heap) > 0 && e.nodes[e.heap[0].slot].gen != e.heap[0].gen {
		e.heapPopTop()
	}

	// Ring entries are at e.now, so they beat any strictly-later heap
	// entry; a heap entry at the same instant wins on lower seq (it was
	// scheduled earlier, before time reached this instant).
	if len(e.heap) > 0 && (!haveRing || (e.heap[0].at == e.now && e.heap[0].seq < ringSeq)) {
		top := e.heap[0]
		if top.at > limit {
			return false
		}
		e.heapPopTop()
		e.heapLive--
		e.now = top.at
		e.fire(top.slot)
		return true
	}
	if !haveRing {
		return false
	}
	slot := e.ring[e.ringHead].slot
	e.ringHead++
	e.ringLive--
	e.fire(slot)
	return true
}

// fire releases the node (so the event's handle is no longer Pending
// while its callback runs, and the slot can be rescheduled immediately)
// and runs the callback.
func (e *Engine) fire(slot int32) {
	fn := e.nodes[slot].fn
	e.release(slot)
	e.fired++
	fn()
}

// Run executes events until the queue is empty or the next event is after
// `until`; it then advances time to exactly `until`. Running to a time in
// the past panics.
func (e *Engine) Run(until Time) {
	if until < e.now {
		panic(fmt.Sprintf("sim: run until %v before now %v", until, e.now))
	}
	for e.step(until) {
	}
	e.now = until
}

// RunUntilQuiescent executes events until none remain or the limit on the
// number of events is reached. It returns the number of events executed.
// It is intended for flow tests ("after the wake event, the system settles
// in PC0") where the natural end is an empty queue.
func (e *Engine) RunUntilQuiescent(maxEvents int) int {
	n := 0
	for n < maxEvents && e.Step() {
		n++
	}
	return n
}

// less orders heap items by (time, seq).
func less(a, b heapItem) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// heapPush inserts an item and sifts it up.
func (e *Engine) heapPush(it heapItem) {
	e.heap = append(e.heap, it)
	e.heapUp(len(e.heap) - 1)
}

// heapPopTop removes the minimum item (index 0).
func (e *Engine) heapPopTop() {
	n := len(e.heap) - 1
	last := e.heap[n]
	e.heap = e.heap[:n]
	if n > 0 {
		e.heap[0] = last
		e.heapDown(0)
	}
}

// heapUp sifts the item at index i toward the root of the 4-ary heap.
func (e *Engine) heapUp(i int) {
	it := e.heap[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !less(it, e.heap[p]) {
			break
		}
		e.heap[i] = e.heap[p]
		i = p
	}
	e.heap[i] = it
}

// heapDown sifts the item at index i toward the leaves of the 4-ary heap.
func (e *Engine) heapDown(i int) {
	it := e.heap[i]
	n := len(e.heap)
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		m := c
		for j := c + 1; j < end; j++ {
			if less(e.heap[j], e.heap[m]) {
				m = j
			}
		}
		if !less(e.heap[m], it) {
			break
		}
		e.heap[i] = e.heap[m]
		i = m
	}
	e.heap[i] = it
}
