package uncore

import (
	"testing"

	"agilepkgc/internal/power"
	"agilepkgc/internal/sim"
)

func newCLM(eng *sim.Engine) *CLM {
	return New(eng, DefaultParams(), nil, nil)
}

func TestInitialAccessible(t *testing.T) {
	eng := sim.NewEngine()
	c := newCLM(eng)
	if !c.Accessible() || c.Gated() || c.InRetention() {
		t.Fatal("CLM should start accessible")
	}
	if c.Voltage() != DefaultParams().NominalVolts {
		t.Fatalf("voltage %v", c.Voltage())
	}
}

func TestRampTimeMatchesPaper(t *testing.T) {
	eng := sim.NewEngine()
	c := newCLM(eng)
	if c.RampTime() != 150*sim.Nanosecond {
		t.Fatalf("RampTime = %v, want 150ns (300 mV at 2 mV/ns)", c.RampTime())
	}
}

func TestGateThenRetention(t *testing.T) {
	eng := sim.NewEngine()
	c := newCLM(eng)
	c.ClockGate()
	if c.Accessible() {
		t.Fatal("gated CLM must not be accessible")
	}
	c.SetRet()
	if !c.InRetention() {
		t.Fatal("Ret should be asserted")
	}
	if c.AtRetentionVoltage() {
		t.Fatal("ramp cannot complete instantly")
	}
	eng.Run(150 * sim.Nanosecond)
	if !c.AtRetentionVoltage() {
		t.Fatal("should be at retention after 150ns")
	}
}

func TestPwrOkRequiresBothRails(t *testing.T) {
	eng := sim.NewEngine()
	c := newCLM(eng)
	c.ClockGate()
	c.SetRet()
	eng.Run(200 * sim.Nanosecond)

	pwrOkAt := sim.Time(-1)
	c.OnPwrOk(func() { pwrOkAt = eng.Now() })
	c.UnsetRet()
	eng.Run(eng.Now() + sim.Microsecond)
	if pwrOkAt != 350*sim.Nanosecond {
		t.Fatalf("PwrOk at %v, want 350ns (200 + 150 ramp, both rails)", pwrOkAt)
	}
	c.ClockUngate()
	if !c.Accessible() {
		t.Fatal("CLM should be accessible after ungate at nominal voltage")
	}
}

func TestPwrOkFiresOncePerExit(t *testing.T) {
	eng := sim.NewEngine()
	c := newCLM(eng)
	count := 0
	c.OnPwrOk(func() { count++ })
	for i := 0; i < 3; i++ {
		c.ClockGate()
		c.SetRet()
		eng.Run(eng.Now() + 500*sim.Nanosecond)
		c.UnsetRet()
		eng.Run(eng.Now() + 500*sim.Nanosecond)
		c.ClockUngate()
	}
	if count != 3 {
		t.Fatalf("PwrOk fired %d times, want 3", count)
	}
}

func TestIdempotentRet(t *testing.T) {
	eng := sim.NewEngine()
	c := newCLM(eng)
	c.ClockGate()
	c.SetRet()
	c.SetRet()
	eng.Run(sim.Microsecond)
	c.UnsetRet()
	c.UnsetRet()
	eng.Run(2 * sim.Microsecond)
	if c.InRetention() {
		t.Fatal("should not be in retention")
	}
	if c.Voltage() != DefaultParams().NominalVolts {
		t.Fatalf("voltage %v", c.Voltage())
	}
}

func TestPowerRegimes(t *testing.T) {
	eng := sim.NewEngine()
	m := power.NewMeter(eng)
	ch := m.Channel("clm", power.Package)
	c := New(eng, DefaultParams(), ch, nil)

	if w := ch.Watts(); w != 18.1 {
		t.Fatalf("accessible power %v, want 18.1", w)
	}
	c.ClockGate()
	if w := ch.Watts(); w != 9.0 {
		t.Fatalf("gated power %v, want 9.0", w)
	}
	c.SetRet()
	if w := ch.Watts(); w != 9.0 {
		t.Fatalf("power during ramp %v, want 9.0 until retention reached", w)
	}
	eng.Run(150 * sim.Nanosecond)
	if w := ch.Watts(); w != 4.6 {
		t.Fatalf("retention power %v, want 4.6", w)
	}
	c.UnsetRet()
	if w := ch.Watts(); w != 9.0 {
		t.Fatalf("ramp-up power %v, want 9.0 (gated, leaving retention)", w)
	}
	eng.Run(eng.Now() + 150*sim.Nanosecond)
	c.ClockUngate()
	if w := ch.Watts(); w != 18.1 {
		t.Fatalf("restored power %v, want 18.1", w)
	}
}

// PC6-style flow: PLL off during retention forces a relock before the
// clock can be ungated.
func TestPC6StylePLLOff(t *testing.T) {
	eng := sim.NewEngine()
	c := newCLM(eng)
	c.ClockGate()
	c.SetRet()
	eng.Run(sim.Microsecond)
	c.PLL().TurnOff()

	c.UnsetRet()
	c.PLL().TurnOn()
	eng.Run(eng.Now() + 150*sim.Nanosecond)
	if c.PLL().Locked() {
		t.Fatal("PLL cannot be locked 150ns into a 3us relock")
	}
	eng.Run(eng.Now() + c.Params().PLLRelock)
	c.ClockUngate()
	if !c.Accessible() {
		t.Fatal("CLM should be accessible after relock + ungate")
	}
}

// PC1A-style flow: PLL stays locked, so ungate is possible immediately
// after PwrOk — no relock anywhere.
func TestPC1AStylePLLStaysLocked(t *testing.T) {
	eng := sim.NewEngine()
	c := newCLM(eng)
	c.ClockGate()
	c.SetRet()
	eng.Run(sim.Microsecond)
	if !c.PLL().Locked() {
		t.Fatal("PC1A keeps the PLL locked")
	}
	done := false
	c.OnPwrOk(func() {
		c.ClockUngate()
		done = true
	})
	c.UnsetRet()
	eng.Run(eng.Now() + 150*sim.Nanosecond)
	if !done || !c.Accessible() {
		t.Fatal("CLM should be accessible 150ns after the wake began")
	}
}

func TestUngateWithPLLOffPanics(t *testing.T) {
	eng := sim.NewEngine()
	c := newCLM(eng)
	c.ClockGate()
	c.PLL().TurnOff()
	defer func() {
		if recover() == nil {
			t.Fatal("ungating with PLL off must panic")
		}
	}()
	c.ClockUngate()
}
