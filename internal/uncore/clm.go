// Package uncore models the CLM domain of the Skylake-class SoC: the
// caching-and-home agents (CHA), the sliced last-level cache (LLC) and
// snoop filters distributed across the core tiles, and the mesh
// network-on-chip connecting them — the components powered by the two
// Vccclm FIVRs (paper Fig. 1(c), Sec. 4.3).
//
// The CLM has three power regimes in this model:
//
//	accessible   clock running, nominal voltage — LLC servable
//	clock-gated  clock stopped, nominal voltage — dynamic power gone
//	retention    clock stopped, retention voltage — leakage slashed,
//	             LLC/SF state preserved
//
// The paper's CLMR technique (and the PC6 flow) moves between these using
// the ClkGate wire, the Ret wire to the FIVRs, and the PwrOk status.
package uncore

import (
	"agilepkgc/internal/clock"
	"agilepkgc/internal/pdn"
	"agilepkgc/internal/power"
	"agilepkgc/internal/sim"
)

// Params collects the CLM electrical and power parameters.
type Params struct {
	// ActiveWatts is the accessible-state draw (clock running).
	ActiveWatts float64
	// GatedWatts is the clock-gated draw at nominal voltage: dynamic
	// power removed, full leakage remains.
	GatedWatts float64
	// RetentionWatts is the draw with the clock gated and the Vccclm
	// rails at retention.
	RetentionWatts float64

	// NominalVolts / RetentionVolts / SlewVoltsPerNs parameterize the
	// two CLM FIVRs.
	NominalVolts   float64
	RetentionVolts float64
	SlewVoltsPerNs float64

	// PLLRelock is the CLM PLL re-lock latency (PC6 pays it; PC1A keeps
	// the PLL locked).
	PLLRelock sim.Duration
}

// DefaultParams returns the paper-calibrated CLM parameters (DESIGN.md):
// 18.1 W accessible, 4.6 W in retention; gated-at-nominal sits between
// (leakage-only at 0.8 V).
func DefaultParams() Params {
	return Params{
		ActiveWatts:    18.1,
		GatedWatts:     9.0,
		RetentionWatts: 4.6,
		NominalVolts:   pdn.DefaultNominalVolts,
		RetentionVolts: pdn.DefaultRetentionVolts,
		SlewVoltsPerNs: pdn.DefaultSlewVoltsPerNs,
		PLLRelock:      clock.DefaultRelockLatency,
	}
}

// CLM is the CHA/LLC/mesh domain with its two FIVRs, PLL and clock tree.
type CLM struct {
	eng    *sim.Engine
	params Params

	fivr0, fivr1 *pdn.FIVR
	pll          *clock.PLL
	tree         *clock.Tree

	ch *power.Channel

	onPwrOk   []func()
	settled   [2]bool
	retention bool
}

// New builds an accessible CLM. clmCh and pllCh may be nil (tests).
func New(eng *sim.Engine, p Params, clmCh, pllCh *power.Channel) *CLM {
	c := &CLM{eng: eng, params: p, ch: clmCh}
	c.fivr0 = pdn.NewFIVR(eng, "Vccclm0", p.NominalVolts, p.RetentionVolts, p.SlewVoltsPerNs)
	c.fivr1 = pdn.NewFIVR(eng, "Vccclm1", p.NominalVolts, p.RetentionVolts, p.SlewVoltsPerNs)
	c.pll = clock.NewPLL(eng, "clm-pll", p.PLLRelock, pllCh)
	c.tree = clock.NewTree("clm", c.pll)
	c.settled = [2]bool{true, true}

	c.fivr0.OnPwrOk(func() { c.fivrSettled(0) })
	c.fivr1.OnPwrOk(func() { c.fivrSettled(1) })
	c.fivr0.OnAtRetention(func() { c.updatePower() })
	c.fivr1.OnAtRetention(func() { c.updatePower() })

	c.updatePower()
	return c
}

// PLL returns the CLM PLL (the GPMU turns it off in PC6).
func (c *CLM) PLL() *clock.PLL { return c.pll }

// Params returns the CLM configuration.
func (c *CLM) Params() Params { return c.params }

// Accessible reports whether the LLC can serve requests: clock running
// and both rails at operational voltage.
func (c *CLM) Accessible() bool {
	return c.tree.Running() && c.fivr0.Settled() && !c.fivr0.InRetention() &&
		c.fivr1.Settled() && !c.fivr1.InRetention()
}

// Gated reports whether the clock tree is gated.
func (c *CLM) Gated() bool { return c.tree.Gated() }

// InRetention reports whether the Ret wire is asserted.
func (c *CLM) InRetention() bool { return c.retention }

// AtRetentionVoltage reports whether both rails have fully reached the
// retention level.
func (c *CLM) AtRetentionVoltage() bool {
	return c.fivr0.AtRetentionVoltage() && c.fivr1.AtRetentionVoltage()
}

// Voltage returns the present Vccclm0 voltage (both rails track).
func (c *CLM) Voltage() float64 { return c.fivr0.Voltage() }

// RampTime returns the full retention↔nominal ramp duration (150 ns with
// default parameters — paper Sec. 5.5).
func (c *CLM) RampTime() sim.Duration { return c.fivr0.RampTime() }

// OnPwrOk registers a callback fired when *both* rails reach operational
// voltage after a ramp-up — the PwrOk wire into the APMU.
func (c *CLM) OnPwrOk(fn func()) { c.onPwrOk = append(c.onPwrOk, fn) }

// ClockGate stops the CLM clock tree (the ClkGate wire). The 1–2 cycle
// latency is charged by the PMU flow driving the wire.
func (c *CLM) ClockGate() {
	c.tree.Gate()
	c.updatePower()
}

// ClockUngate restarts the clock tree; the PLL must be locked.
func (c *CLM) ClockUngate() {
	c.tree.Ungate()
	c.updatePower()
}

// SetRet asserts Ret on both FIVRs: a non-blocking ramp to retention.
func (c *CLM) SetRet() {
	if c.retention {
		return
	}
	c.retention = true
	c.settled = [2]bool{false, false}
	c.fivr0.SetRet()
	c.fivr1.SetRet()
	c.updatePower()
}

// UnsetRet deasserts Ret: both rails ramp back up; PwrOk fires when both
// arrive.
func (c *CLM) UnsetRet() {
	if !c.retention {
		return
	}
	c.retention = false
	c.fivr0.UnsetRet()
	c.fivr1.UnsetRet()
	c.updatePower()
}

func (c *CLM) fivrSettled(i int) {
	c.settled[i] = true
	if c.settled[0] && c.settled[1] {
		c.updatePower()
		for _, fn := range c.onPwrOk {
			fn()
		}
	}
}

// updatePower recomputes the CLM draw from the clock and voltage state.
// While a rail is ramping the draw is approximated by the target regime —
// the ramp lasts 150 ns, short enough that the error is negligible
// relative to the millisecond-scale residencies being measured, and the
// approximation is conservative for PC1A savings (power drops only when
// the ramp *completes* on entry, but rises immediately on exit).
func (c *CLM) updatePower() {
	if c.ch == nil {
		return
	}
	switch {
	case !c.tree.Gated() && !c.retention:
		c.ch.Set(c.params.ActiveWatts)
	case c.retention && c.AtRetentionVoltage():
		c.ch.Set(c.params.RetentionWatts)
	default:
		// Clock gated at (or ramping near) nominal voltage.
		c.ch.Set(c.params.GatedWatts)
	}
}
