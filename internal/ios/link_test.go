package ios

import (
	"testing"

	"agilepkgc/internal/power"
	"agilepkgc/internal/sim"
)

func newPCIe(eng *sim.Engine) *Link {
	return NewLink(eng, "pcie0", DefaultParams(PCIe, 1.4), nil)
}

func TestStateAndKindStrings(t *testing.T) {
	names := map[LState]string{
		L0: "L0", L0sEntry: "L0s-entry", L0s: "L0s",
		L0sExit: "L0s-exit", L1: "L1", L1Exit: "L1-exit",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
	if PCIe.String() != "PCIe" || DMI.String() != "DMI" || UPI.String() != "UPI" {
		t.Error("kind names wrong")
	}
	if LState(99).String() != "LState(99)" || Kind(99).String() != "Kind(99)" {
		t.Error("unknown formats wrong")
	}
}

func TestDefaultParams(t *testing.T) {
	p := DefaultParams(PCIe, 2.0)
	if p.StandbyExit != 64*sim.Nanosecond || p.StandbyEntry != 16*sim.Nanosecond {
		t.Errorf("PCIe L0s latencies wrong: %v / %v", p.StandbyExit, p.StandbyEntry)
	}
	if p.StandbyWatts != 1.4 || p.L1Watts != 0.7 {
		t.Errorf("power ladder wrong: %v / %v", p.StandbyWatts, p.L1Watts)
	}
	u := DefaultParams(UPI, 1.0)
	if u.StandbyExit != 10*sim.Nanosecond {
		t.Errorf("UPI L0p exit = %v, want 10ns", u.StandbyExit)
	}
}

func TestNoStandbyWithoutAllowL0s(t *testing.T) {
	eng := sim.NewEngine()
	l := newPCIe(eng)
	eng.Run(sim.Millisecond)
	if l.State() != L0 {
		t.Fatalf("link entered %v without AllowL0s — datacenter config disables L0s", l.State())
	}
	if l.InL0s().Level() {
		t.Fatal("InL0s should be low")
	}
}

func TestAutonomousStandbyEntry(t *testing.T) {
	eng := sim.NewEngine()
	l := newPCIe(eng)
	l.AllowL0s().Set()
	if l.State() != L0sEntry {
		t.Fatalf("state %v, want L0s-entry immediately after AllowL0s on idle link", l.State())
	}
	eng.Run(16 * sim.Nanosecond) // L0S_ENTRY_LAT = exit/4 = 16ns
	if l.State() != L0s {
		t.Fatalf("state %v after entry window, want L0s", l.State())
	}
	if !l.InL0s().Level() {
		t.Fatal("InL0s should be high in L0s")
	}
	if l.StandbyEntries() != 1 {
		t.Fatalf("StandbyEntries = %d", l.StandbyEntries())
	}
}

func TestTrafficWakesFromStandby(t *testing.T) {
	eng := sim.NewEngine()
	l := newPCIe(eng)
	wokeAt := sim.Time(-1)
	l.OnWake(func() { wokeAt = eng.Now() })
	l.AllowL0s().Set()
	eng.Run(100 * sim.Nanosecond)
	if l.State() != L0s {
		t.Fatal("setup failed")
	}

	l.StartTransaction()
	if l.InL0s().Level() {
		t.Fatal("InL0s must drop immediately on wake (concurrent exit requirement)")
	}
	if wokeAt != 100*sim.Nanosecond {
		t.Fatalf("wake at %v, want immediately at 100ns", wokeAt)
	}
	if l.State() != L0sExit {
		t.Fatalf("state %v, want L0s-exit", l.State())
	}
	if l.ExitDelay() != 64*sim.Nanosecond {
		t.Fatalf("ExitDelay = %v, want 64ns", l.ExitDelay())
	}
	eng.Run(164 * sim.Nanosecond)
	if l.State() != L0 {
		t.Fatalf("state %v after exit latency, want L0", l.State())
	}
	if l.Wakes() != 1 {
		t.Fatalf("Wakes = %d", l.Wakes())
	}
}

func TestNoReentryWhileBusy(t *testing.T) {
	eng := sim.NewEngine()
	l := newPCIe(eng)
	l.AllowL0s().Set()
	eng.Run(100 * sim.Nanosecond)
	l.StartTransaction()
	eng.Run(sim.Microsecond)
	if l.State() != L0 {
		t.Fatal("link must stay in L0 with an outstanding transaction")
	}
	l.EndTransaction()
	eng.Run(eng.Now() + 16*sim.Nanosecond)
	if l.State() != L0s {
		t.Fatalf("state %v, want L0s after last transaction completes", l.State())
	}
}

func TestEntryAbortedByTraffic(t *testing.T) {
	eng := sim.NewEngine()
	l := newPCIe(eng)
	l.AllowL0s().Set() // L0sEntry armed
	eng.Run(8 * sim.Nanosecond)
	l.StartTransaction() // abort during entry window
	if l.State() != L0 {
		t.Fatalf("state %v, want L0 (entry aborted)", l.State())
	}
	if l.Wakes() != 0 {
		t.Fatal("aborting entry is not a wake event")
	}
	eng.Run(sim.Millisecond)
	if l.StandbyEntries() != 0 {
		t.Fatal("link should not have completed standby entry")
	}
}

func TestAllowL0sDeassertExitsStandby(t *testing.T) {
	eng := sim.NewEngine()
	l := newPCIe(eng)
	l.AllowL0s().Set()
	eng.Run(100 * sim.Nanosecond)
	l.AllowL0s().Unset() // e.g. a core woke: PC1A exit path
	if l.State() != L0sExit {
		t.Fatalf("state %v, want exiting", l.State())
	}
	if l.Wakes() != 0 {
		t.Fatal("policy-driven exit is not a traffic wake")
	}
	eng.Run(sim.Microsecond)
	if l.State() != L0 {
		t.Fatal("should settle in L0")
	}
	eng.Run(sim.Millisecond)
	if l.State() != L0 {
		t.Fatal("must not re-enter standby with AllowL0s low")
	}
}

func TestAllowL0sDeassertDuringEntry(t *testing.T) {
	eng := sim.NewEngine()
	l := newPCIe(eng)
	l.AllowL0s().Set()
	eng.Run(8 * sim.Nanosecond)
	l.AllowL0s().Unset()
	if l.State() != L0 {
		t.Fatalf("state %v, want L0 (entry canceled)", l.State())
	}
}

func TestUPIUsesL0p(t *testing.T) {
	eng := sim.NewEngine()
	l := NewLink(eng, "upi0", DefaultParams(UPI, 1.7), nil)
	if l.StandbyName() != "L0p" {
		t.Fatal("UPI standby should be L0p")
	}
	l.AllowL0s().Set()
	eng.Run(3 * sim.Nanosecond)
	if l.State() != L0s {
		t.Fatalf("UPI should reach partial-width standby in 3ns, state %v", l.State())
	}
	l.StartTransaction()
	if l.ExitDelay() != 10*sim.Nanosecond {
		t.Fatalf("L0p exit = %v, want 10ns", l.ExitDelay())
	}
}

func TestL1EntryExit(t *testing.T) {
	eng := sim.NewEngine()
	l := newPCIe(eng)
	entered := false
	l.EnterL1(func() { entered = true })
	eng.Run(2 * sim.Microsecond)
	if !entered || l.State() != L1 {
		t.Fatalf("L1 entry failed: entered=%v state=%v", entered, l.State())
	}
	if !l.InL0s().Level() {
		t.Fatal("InL0s covers 'L0s or deeper'; must be high in L1")
	}

	exited := false
	l.ExitL1(func() { exited = true })
	if l.State() != L1Exit {
		t.Fatal("should be exiting L1")
	}
	eng.Run(eng.Now() + 5*sim.Microsecond)
	if !exited || l.State() != L0 {
		t.Fatalf("L1 exit failed: exited=%v state=%v", exited, l.State())
	}
}

func TestL1FromStandby(t *testing.T) {
	eng := sim.NewEngine()
	l := newPCIe(eng)
	l.AllowL0s().Set()
	eng.Run(100 * sim.Nanosecond)
	done := false
	l.EnterL1(func() { done = true })
	eng.Run(eng.Now() + 2*sim.Microsecond)
	if !done || l.State() != L1 {
		t.Fatal("L1 entry from L0s failed")
	}
}

func TestTrafficWakesFromL1(t *testing.T) {
	eng := sim.NewEngine()
	l := newPCIe(eng)
	l.EnterL1(nil)
	eng.Run(2 * sim.Microsecond)
	wakes := 0
	l.OnWake(func() { wakes++ })
	l.StartTransaction()
	if wakes != 1 {
		t.Fatal("traffic in L1 must generate a wake event")
	}
	if l.ExitDelay() != 5*sim.Microsecond {
		t.Fatalf("L1 exit delay = %v, want 5us", l.ExitDelay())
	}
	eng.Run(eng.Now() + 5*sim.Microsecond)
	if l.State() != L0 {
		t.Fatal("link should retrain to L0")
	}
}

func TestEnterL1BusyPanics(t *testing.T) {
	eng := sim.NewEngine()
	l := newPCIe(eng)
	l.StartTransaction()
	defer func() {
		if recover() == nil {
			t.Fatal("EnterL1 on busy link must panic")
		}
	}()
	l.EnterL1(nil)
}

func TestEndTransactionUnderflowPanics(t *testing.T) {
	eng := sim.NewEngine()
	l := newPCIe(eng)
	defer func() {
		if recover() == nil {
			t.Fatal("EndTransaction on idle link must panic")
		}
	}()
	l.EndTransaction()
}

func TestPowerLadder(t *testing.T) {
	eng := sim.NewEngine()
	m := power.NewMeter(eng)
	ch := m.Channel("pcie0", power.Package)
	l := NewLink(eng, "pcie0", DefaultParams(PCIe, 2.0), ch)

	if m.Power(power.Package) != 2.0 {
		t.Fatalf("L0 power %v", m.Power(power.Package))
	}
	l.AllowL0s().Set()
	eng.Run(100 * sim.Nanosecond)
	if m.Power(power.Package) != 1.4 {
		t.Fatalf("L0s power %v, want 1.4 (70%%)", m.Power(power.Package))
	}
	l.AllowL0s().Unset()
	eng.Run(sim.Microsecond)
	if m.Power(power.Package) != 2.0 {
		t.Fatalf("back-to-L0 power %v", m.Power(power.Package))
	}
	l.EnterL1(nil)
	eng.Run(eng.Now() + 3*sim.Microsecond)
	if m.Power(power.Package) != 0.7 {
		t.Fatalf("L1 power %v, want 0.7 (35%%)", m.Power(power.Package))
	}
}

func TestRepeatedCycles(t *testing.T) {
	eng := sim.NewEngine()
	l := newPCIe(eng)
	l.AllowL0s().Set()
	for i := 0; i < 50; i++ {
		eng.Run(eng.Now() + 100*sim.Nanosecond)
		if l.State() != L0s {
			t.Fatalf("cycle %d: state %v, want L0s", i, l.State())
		}
		l.StartTransaction()
		eng.Run(eng.Now() + 200*sim.Nanosecond)
		l.EndTransaction()
	}
	if l.StandbyEntries() != 50 || l.Wakes() != 50 {
		t.Fatalf("entries=%d wakes=%d, want 50/50", l.StandbyEntries(), l.Wakes())
	}
}
