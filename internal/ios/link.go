// Package ios models the high-speed IO interfaces of the server SoC —
// PCIe, DMI, and UPI links — including the link power states (L-states)
// their Link Training and Status State Machines (LTSSMs) manage:
//
//	L0   active: full bandwidth, minimum latency
//	L0s  standby: lanes asleep, PLL and reference clock on, exit < 64 ns
//	L0p  partial width (UPI): half the lanes awake, exit ≈ 10 ns
//	L1   power-off: PLL off, link retrain on exit, exit in microseconds
//	NDA  no device attached (deeper than L1, not modeled dynamically)
//
// The package implements the paper's IOSM interface (Sec. 4.2.1, 5.1):
// an AllowL0s control input that overrides the
// active-state-link-PM-control register, an InL0s status output driven by
// the LTSSM, autonomous L0s entry after an idle window equal to a quarter
// of the exit latency (L0S_ENTRY_LAT = 1), and wake events on traffic
// arrival.
package ios

import (
	"fmt"

	"agilepkgc/internal/power"
	"agilepkgc/internal/signal"
	"agilepkgc/internal/sim"
)

// LState enumerates link power states.
type LState int

const (
	// L0 is the active state.
	L0 LState = iota
	// L0sEntry: idle conditions met, lanes draining before standby.
	L0sEntry
	// L0s: standby (or L0p partial-width for UPI).
	L0s
	// L0sExit: waking, lanes retraining to L0.
	L0sExit
	// L1: link powered off; retraining required.
	L1
	// L1Exit: waking from L1.
	L1Exit
)

// String names the state.
func (s LState) String() string {
	switch s {
	case L0:
		return "L0"
	case L0sEntry:
		return "L0s-entry"
	case L0s:
		return "L0s"
	case L0sExit:
		return "L0s-exit"
	case L1:
		return "L1"
	case L1Exit:
		return "L1-exit"
	default:
		return fmt.Sprintf("LState(%d)", int(s))
	}
}

// Kind is the link flavor; it determines the standby state used and the
// associated latencies.
type Kind int

const (
	// PCIe uses L0s (exit < 64 ns).
	PCIe Kind = iota
	// DMI is the chipset link; electrically PCIe, uses L0s.
	DMI
	// UPI is the socket interconnect; it has no L0s and uses L0p
	// (partial width, exit ≈ 10 ns) instead — paper footnote 3.
	UPI
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case PCIe:
		return "PCIe"
	case DMI:
		return "DMI"
	case UPI:
		return "UPI"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Params collects a link's timing and power parameters.
type Params struct {
	Kind Kind

	// StandbyExit is the L0s (or L0p) exit latency.
	StandbyExit sim.Duration
	// StandbyEntry is the idle window before autonomous standby entry;
	// the paper programs L0S_ENTRY_LAT so this is StandbyExit/4.
	StandbyEntry sim.Duration
	// L1Exit is the L1 exit (retrain) latency.
	L1ExitLat sim.Duration
	// L1Entry is the time to drain and power off into L1.
	L1EntryLat sim.Duration

	// ActiveWatts, StandbyWatts and L1Watts are the controller+PHY power
	// in L0, L0s/L0p, and L1.
	ActiveWatts  float64
	StandbyWatts float64
	L1Watts      float64
}

// DefaultParams returns the paper-calibrated parameters for a link kind.
// activeWatts scales the whole power ladder; standby is 70% and L1 35%
// of active, which makes the six-link SoC total 10 W / 7 W / 3.5 W as
// derived in DESIGN.md from the paper's Sec. 5.4 measurements.
func DefaultParams(k Kind, activeWatts float64) Params {
	p := Params{
		Kind:         k,
		ActiveWatts:  activeWatts,
		StandbyWatts: activeWatts * 0.70,
		L1Watts:      activeWatts * 0.35,
		L1ExitLat:    5 * sim.Microsecond,
		L1EntryLat:   2 * sim.Microsecond,
	}
	switch k {
	case UPI:
		p.StandbyExit = 10 * sim.Nanosecond // L0p
		p.StandbyEntry = 3 * sim.Nanosecond
	default:
		p.StandbyExit = 64 * sim.Nanosecond // L0s
		p.StandbyEntry = 16 * sim.Nanosecond
	}
	return p
}

// Link is one high-speed IO interface: controller + PHY + LTSSM.
type Link struct {
	eng    *sim.Engine
	name   string
	params Params

	state       LState
	outstanding int // in-flight transactions

	// allowL0s mirrors the AllowL0s control wire (paper Fig. 3, light
	// blue): the APMU sets it only when all cores are idle, because
	// datacenter configs otherwise disable L0s entirely.
	allowL0s *signal.Signal
	// inL0s is the InL0s status wire (orange): high while the LTSSM is
	// in L0s or deeper, low in L0 or while exiting.
	inL0s *signal.Signal

	// onWake fires when traffic arrives while the link is in standby or
	// deeper — the PC1A exit trigger ("as soon as the link starts the
	// transition from L0s to L0").
	onWake []func()

	pending  sim.Event // entry/exit completion event
	onL1Done func()    // completion hook for an in-flight L1 exit
	ch       *power.Channel

	// Preallocated L0s entry/exit completion callbacks: the standby
	// cycle runs once per idle episode, so it must not allocate.
	entryDoneFn func()
	exitDoneFn  func()

	// Counters for experiments.
	standbyEntries uint64
	wakes          uint64
}

// NewLink builds a link in L0. ch may be nil to skip power accounting.
func NewLink(eng *sim.Engine, name string, p Params, ch *power.Channel) *Link {
	l := &Link{
		eng:      eng,
		name:     name,
		params:   p,
		state:    L0,
		allowL0s: signal.New(name+".AllowL0s", false),
		inL0s:    signal.New(name+".InL0s", false),
		ch:       ch,
	}
	if ch != nil {
		ch.Set(p.ActiveWatts)
	}
	l.allowL0s.Subscribe(l.onAllowL0s)
	l.entryDoneFn = func() {
		l.pending = sim.Event{}
		l.state = L0s
		l.standbyEntries++
		l.setPower(l.params.StandbyWatts)
		l.inL0s.Set()
	}
	l.exitDoneFn = func() {
		l.pending = sim.Event{}
		l.state = L0
		l.maybeArmStandby()
	}
	return l
}

// Name returns the link name.
func (l *Link) Name() string { return l.name }

// Kind returns the link kind.
func (l *Link) Kind() Kind { return l.params.Kind }

// State returns the LTSSM state.
func (l *Link) State() LState { return l.state }

// Params returns the link's configuration.
func (l *Link) Params() Params { return l.params }

// AllowL0s returns the control wire; the APMU (or a test) drives it.
func (l *Link) AllowL0s() *signal.Signal { return l.allowL0s }

// InL0s returns the status wire routed to the APMU's AND tree.
func (l *Link) InL0s() *signal.Signal { return l.inL0s }

// OnWake registers a callback for standby-exit wake events.
func (l *Link) OnWake(fn func()) { l.onWake = append(l.onWake, fn) }

// Idle reports whether the link has no outstanding transactions.
func (l *Link) Idle() bool { return l.outstanding == 0 }

// StandbyEntries returns how many times the link entered L0s/L0p.
func (l *Link) StandbyEntries() uint64 { return l.standbyEntries }

// Wakes returns how many standby wake events occurred.
func (l *Link) Wakes() uint64 { return l.wakes }

// StandbyName returns "L0s" or "L0p" according to the link kind.
func (l *Link) StandbyName() string {
	if l.params.Kind == UPI {
		return "L0p"
	}
	return "L0s"
}

func (l *Link) setPower(w float64) {
	if l.ch != nil {
		l.ch.Set(w)
	}
}

// onAllowL0s reacts to the AllowL0s control wire.
func (l *Link) onAllowL0s(level bool) {
	if level {
		l.maybeArmStandby()
		return
	}
	// Deasserted: leave standby if we are in or entering it.
	switch l.state {
	case L0sEntry:
		l.pending.Cancel()
		l.pending = sim.Event{}
		l.state = L0
	case L0s:
		l.beginStandbyExit(false)
	}
}

// maybeArmStandby schedules autonomous L0s entry if conditions hold:
// AllowL0s set, link idle, currently in L0.
func (l *Link) maybeArmStandby() {
	if l.state != L0 || !l.allowL0s.Level() || !l.Idle() {
		return
	}
	l.state = L0sEntry
	l.pending = l.eng.Schedule(l.params.StandbyEntry, l.entryDoneFn)
}

// beginStandbyExit starts the L0s→L0 transition. The InL0s wire drops
// immediately (the paper: "the IO controller should unset the signal
// once a wakeup event is detected to allow the other system components to
// exit ... concurrently"). If traffic is true, this is a wake event.
func (l *Link) beginStandbyExit(traffic bool) {
	l.state = L0sExit
	l.inL0s.Unset()
	l.setPower(l.params.ActiveWatts)
	if traffic {
		l.wakes++
		for _, fn := range l.onWake {
			fn()
		}
	}
	l.pending = l.eng.Schedule(l.params.StandbyExit, l.exitDoneFn)
}

// StartTransaction marks the beginning of a bus transaction. A
// transaction arriving in standby wakes the link; data moves only once
// the link is back in L0, so EndTransaction is typically scheduled by the
// caller after the transfer time.
func (l *Link) StartTransaction() {
	l.outstanding++
	switch l.state {
	case L0sEntry:
		// Entry aborted by traffic: back to L0 with no penalty (lanes
		// were still draining).
		l.pending.Cancel()
		l.pending = sim.Event{}
		l.state = L0
	case L0s:
		l.beginStandbyExit(true)
	case L1:
		l.beginL1Exit(true)
	}
}

// EndTransaction marks a transaction complete. When the last completes
// and standby is allowed, the LTSSM re-arms its idle timer.
func (l *Link) EndTransaction() {
	if l.outstanding == 0 {
		panic(fmt.Sprintf("ios: EndTransaction on idle link %s", l.name))
	}
	l.outstanding--
	if l.outstanding == 0 && l.state == L0 {
		l.maybeArmStandby()
	}
}

// ExitDelay returns the time until the link can move data, given its
// present state — used by traffic models to delay transfers during
// wakeups.
func (l *Link) ExitDelay() sim.Duration {
	switch l.state {
	case L0s, L0sExit:
		return l.params.StandbyExit
	case L1, L1Exit:
		return l.params.L1ExitLat
	default:
		return 0
	}
}

// EnterL1 forces the link into L1 — the deep state PC6 uses (GPMU
// command, not autonomous). The transition drains for L1EntryLat first.
// Calling it on a non-idle link panics: the GPMU only runs the PC6 flow
// with the fabric quiesced.
func (l *Link) EnterL1(done func()) {
	if !l.Idle() {
		panic(fmt.Sprintf("ios: EnterL1 on busy link %s", l.name))
	}
	switch l.state {
	case L1:
		if done != nil {
			done()
		}
		return
	case L0sEntry:
		l.pending.Cancel()
		l.pending = sim.Event{}
	case L0s:
		// Going deeper: drop straight through; InL0s stays high (L1 is
		// "L0s or deeper").
	case L0sExit:
		l.pending.Cancel()
		l.pending = sim.Event{}
	}
	l.eng.Schedule(l.params.L1EntryLat, func() {
		l.state = L1
		l.setPower(l.params.L1Watts)
		l.inL0s.Set() // L1 is deeper than L0s
		if done != nil {
			done()
		}
	})
}

// ExitL1 begins the L1→L0 retrain (GPMU command during PC6 exit).
func (l *Link) ExitL1(done func()) {
	if l.state != L1 {
		if done != nil {
			done()
		}
		return
	}
	l.beginL1Exit(false)
	if done != nil {
		prev := l.onL1Done
		l.onL1Done = func() {
			if prev != nil {
				prev()
			}
			done()
		}
	}
}

func (l *Link) beginL1Exit(traffic bool) {
	l.state = L1Exit
	l.inL0s.Unset()
	l.setPower(l.params.ActiveWatts)
	if traffic {
		l.wakes++
		for _, fn := range l.onWake {
			fn()
		}
	}
	l.pending = l.eng.Schedule(l.params.L1ExitLat, func() {
		l.pending = sim.Event{}
		l.state = L0
		if l.onL1Done != nil {
			fn := l.onL1Done
			l.onL1Done = nil
			fn()
		}
		l.maybeArmStandby()
	})
}
