package experiments

import (
	"fmt"
	"strings"

	"agilepkgc/internal/pmu"
	"agilepkgc/internal/sim"
	"agilepkgc/internal/soc"
	"agilepkgc/internal/workload"
)

// Fig7Idle reproduces panel (a): idle SoC+DRAM power for the three
// configurations.
type Fig7Idle struct {
	Cshallow float64
	Cdeep    float64
	CPC1A    float64
	// SavingsVsShallow = 1 − CPC1A/Cshallow (paper: 41%).
	SavingsVsShallow float64
}

// Fig7Point is one QPS point of panels (b) and (c).
type Fig7Point struct {
	QPS float64

	// (b) power.
	ShallowWatts float64
	PC1AWatts    float64
	SavingsFrac  float64

	// (c) performance.
	ShallowMean   float64 // seconds
	PC1AMean      float64
	ImpactFrac    float64 // (PC1A − shallow)/shallow
	PC1AEntries   uint64
	PC1AResidency float64
}

// Fig7Result bundles the three panels.
type Fig7Result struct {
	Idle   Fig7Idle
	Points []Fig7Point
}

// DefaultFig7QPS is the swept axis (0 is reported via Idle).
var DefaultFig7QPS = []float64{4000, 10000, 20000, 50000, 100000}

// Paper values.
const (
	PaperFig7IdleSavings = 0.41
	PaperFig7Save4K      = 0.37
	PaperFig7Save50K     = 0.14
	PaperFig7MaxImpact   = 0.001
)

func init() {
	Define(80, "fig7", "PC1A power savings and performance impact (QPS sweep, paper Fig. 7)",
		func(o Options) (Result, error) { return Fig7(o, DefaultFig7QPS), nil })
}

// Fig7 measures PC1A power savings and performance impact on Memcached
// across the given request-rate axis.
func Fig7(opt Options, qpsList []float64) *Fig7Result {
	res := &Fig7Result{}

	// Panel (a): idle systems.
	idlePower := func(kind soc.ConfigKind) float64 {
		s := soc.New(soc.DefaultConfig(kind))
		if kind == soc.Cdeep {
			s.ForceAllCC6()
		} else {
			s.Engine.Run(10 * sim.Millisecond)
		}
		return s.TotalPower()
	}
	res.Idle.Cshallow = idlePower(soc.Cshallow)
	res.Idle.Cdeep = idlePower(soc.Cdeep)
	res.Idle.CPC1A = idlePower(soc.CPC1A)
	res.Idle.SavingsVsShallow = 1 - res.Idle.CPC1A/res.Idle.Cshallow

	// Panels (b) and (c): load sweep.
	res.Points = Sweep(opt, qpsList, func(qps float64) Fig7Point {
		spec := workload.Memcached(qps)
		sh := runPoint(soc.Cshallow, spec, opt)
		ap := runPoint(soc.CPC1A, spec, opt)

		elapsed := opt.Duration.Seconds()
		p := Fig7Point{
			QPS:          qps,
			ShallowWatts: sh.avgTotalW,
			PC1AWatts:    ap.avgTotalW,
			ShallowMean:  sh.srv.Latencies().Mean(),
			PC1AMean:     ap.srv.Latencies().Mean(),
		}
		p.SavingsFrac = (p.ShallowWatts - p.PC1AWatts) / p.ShallowWatts
		p.ImpactFrac = (p.PC1AMean - p.ShallowMean) / p.ShallowMean
		if ap.sys.APMU != nil {
			p.PC1AEntries = ap.sys.APMU.Entries(pmu.PC1A)
			p.PC1AResidency = float64(ap.sys.APMU.Residency(pmu.PC1A)) / float64(elapsed*float64(sim.Second))
		}
		return p
	})
	return res
}

// Report implements Result.
func (r *Fig7Result) Report() string { return r.String() }

// String renders the three panels against the paper.
func (r *Fig7Result) String() string {
	var b strings.Builder
	b.WriteString("Fig 7(a): idle SoC+DRAM power (paper: CPC1A 41% below Cshallow)\n")
	ta := &table{header: []string{"Config", "Idle power", "Paper"}}
	ta.add("Cshallow", fmt.Sprintf("%.1fW", r.Idle.Cshallow), "49.5W")
	ta.add("Cdeep", fmt.Sprintf("%.1fW", r.Idle.Cdeep), "12.5W")
	ta.add("C_PC1A", fmt.Sprintf("%.1fW", r.Idle.CPC1A), "29.1W")
	b.WriteString(ta.String())
	fmt.Fprintf(&b, "C_PC1A saves %s vs Cshallow (paper: 41%%)\n", pct(r.Idle.SavingsVsShallow))

	b.WriteString("\nFig 7(b): power vs request rate (paper: 37% @4K, 14% @50K)\n")
	tb := &table{header: []string{"QPS", "Cshallow", "C_PC1A", "Savings", "PC1A residency"}}
	for _, p := range r.Points {
		tb.add(fmt.Sprintf("%.0fK", p.QPS/1000),
			fmt.Sprintf("%.1fW", p.ShallowWatts), fmt.Sprintf("%.1fW", p.PC1AWatts),
			pct(p.SavingsFrac), pct(p.PC1AResidency))
	}
	b.WriteString(tb.String())

	b.WriteString("\nFig 7(c): average latency impact (paper: <0.1% worst case)\n")
	tc := &table{header: []string{"QPS", "Cshallow mean", "C_PC1A mean", "Impact", "PC1A transitions"}}
	for _, p := range r.Points {
		tc.add(fmt.Sprintf("%.0fK", p.QPS/1000),
			us(p.ShallowMean), us(p.PC1AMean),
			fmt.Sprintf("%+.4f%%", p.ImpactFrac*100),
			fmt.Sprintf("%d", p.PC1AEntries))
	}
	b.WriteString(tc.String())
	return b.String()
}
