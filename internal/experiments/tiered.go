package experiments

// tiered-cache lifts the energy-proportionality argument across a
// service graph: a memcached cache tier absorbs the client stream and
// forwards only its misses to a mysql backend fleet. Sweeping the
// edge's hit ratio starves the backend of traffic — its idle periods
// lengthen and its PC1A residency climbs — while the cache tier, which
// sees the full client load at every point, stays flat. The artifact
// is the fleet-level analogue of the paper's per-SoC low-load story:
// the deeper the cache, the closer the backend gets to the all-idle
// package state.

import (
	"fmt"
	"io"
	"strings"

	"agilepkgc/internal/cluster"
	"agilepkgc/internal/server"
	"agilepkgc/internal/sim"
	"agilepkgc/internal/soc"
	"agilepkgc/internal/workload"
)

// DefaultTieredHitRatios is the hit-ratio sweep the registered
// tiered-cache artifact runs.
var DefaultTieredHitRatios = []float64{0.5, 0.7, 0.9, 0.99}

// Fixed operating point of the tiered-cache experiment.
const (
	// DefaultTieredQPS is the client arrival rate into the cache tier.
	DefaultTieredQPS = 60000.0
	// DefaultTieredCacheServers / DefaultTieredBackendServers size the
	// two fleets: the cache tier is wide (it sees the full stream), the
	// backend narrow (it sees only misses).
	DefaultTieredCacheServers   = 4
	DefaultTieredBackendServers = 2
	// DefaultTieredTTL is the cache entry lifetime on the edge: long
	// against the per-connection inter-arrival time (~3.3ms at 60k QPS
	// over 200 connections), so the swept Bernoulli hit ratio — not TTL
	// churn — decides the miss stream, while expiries stay visible in
	// the ttl_misses column.
	DefaultTieredTTL = 20 * sim.Millisecond
	// DefaultTieredBackendP99Target budgets the mysql tier's packing:
	// its heavy-tailed service times need a looser target than the
	// cache tier's DefaultClusterP99Target.
	DefaultTieredBackendP99Target = 2 * sim.Millisecond
)

func init() {
	Define(210, "tiered-cache",
		"backend PC1A residency vs cache hit ratio through a two-tier service graph",
		func(o Options) (Result, error) { return TieredCache(o, DefaultTieredHitRatios) })
}

// TieredPoint is one measured operating point of the two-tier graph.
type TieredPoint struct {
	HitRatio float64             `json:"hit_ratio"`
	Cache    cluster.Measurement `json:"cache"`
	Backend  cluster.Measurement `json:"backend"`
	Edge     cluster.EdgeStats   `json:"edge"`
	Client   cluster.ClientStats `json:"client"`
}

// tieredMembers builds n default CPC1A machines, the same fleet
// material measureFleet uses.
func tieredMembers(n int, seed uint64) []cluster.MemberConfig {
	members := make([]cluster.MemberConfig, n)
	for i := range members {
		scfg := server.DefaultConfig()
		scfg.Seed = seed
		members[i] = cluster.MemberConfig{SoC: soc.DefaultConfig(soc.CPC1A), Server: scfg}
	}
	return members
}

// tieredGraphConfig assembles the two-tier graph at one hit ratio. The
// backend spec's rate is the expected miss stream — it names the
// operating point; the graph's push source takes its arrival instants
// from the cache tier's misses, not from the spec.
func tieredGraphConfig(hitRatio float64, seed uint64) cluster.GraphConfig {
	cores := soc.DefaultConfig(soc.CPC1A).CoreCount
	missRate := DefaultTieredQPS * (1 - hitRatio)
	probe := workload.MySQL(1, cores)
	backendSpec := workload.MySQL(missRate*probe.Service.Mean()/float64(cores), cores)
	return cluster.GraphConfig{
		Tiers: []cluster.TierConfig{
			{
				Name: "cache",
				Cluster: cluster.Config{
					Policy:    cluster.PowerAware,
					P99Target: DefaultClusterP99Target,
					Topology:  cluster.Flat(DefaultTieredCacheServers),
					Members:   tieredMembers(DefaultTieredCacheServers, seed),
				},
				Spec: workload.Memcached(DefaultTieredQPS),
			},
			{
				Name: "db",
				Cluster: cluster.Config{
					Policy:    cluster.PowerAware,
					P99Target: DefaultTieredBackendP99Target,
					Topology:  cluster.Flat(DefaultTieredBackendServers),
					Members:   tieredMembers(DefaultTieredBackendServers, seed),
				},
				Spec: backendSpec,
			},
		},
		Edges: []cluster.EdgeConfig{
			{From: 0, To: 1, HitRatio: hitRatio, TTL: DefaultTieredTTL},
		},
	}
}

// TieredCacheResult is the tiered-cache artifact.
type TieredCacheResult struct {
	QPS            float64       `json:"qps"`
	CacheServers   int           `json:"cache_servers"`
	BackendServers int           `json:"backend_servers"`
	TTL            sim.Duration  `json:"ttl_ns"`
	Duration       sim.Duration  `json:"duration_ns"`
	Points         []TieredPoint `json:"points"`
}

// TieredCache measures the two-tier graph at each hit ratio. Each point
// is an independent graph on its own engine, reset-reused through the
// worker pool like every other sweep.
func TieredCache(opt Options, hitRatios []float64) (*TieredCacheResult, error) {
	if len(hitRatios) == 0 {
		return nil, fmt.Errorf("tiered-cache: no hit ratios")
	}
	for _, h := range hitRatios {
		if h < 0 || h >= 1 {
			return nil, fmt.Errorf("tiered-cache: hit ratio %g is outside [0, 1)", h)
		}
	}
	res := &TieredCacheResult{
		QPS:            DefaultTieredQPS,
		CacheServers:   DefaultTieredCacheServers,
		BackendServers: DefaultTieredBackendServers,
		TTL:            DefaultTieredTTL,
		Duration:       opt.Duration,
	}
	newGraphReuse := func() *cluster.GraphReuse { return new(cluster.GraphReuse) }
	res.Points = SweepWith(opt, hitRatios, newGraphReuse, func(reuse *cluster.GraphReuse, h float64) TieredPoint {
		g, err := reuse.Graph(tieredGraphConfig(h, opt.Seed), opt.Seed)
		if err != nil {
			// All inputs are compile-time constants; an error is a bug.
			panic(err)
		}
		gm := g.Measure(opt.Warmup(), opt.Duration)
		return TieredPoint{
			HitRatio: h,
			Cache:    gm.Tiers[0].Fleet,
			Backend:  gm.Tiers[1].Fleet,
			Edge:     gm.Edges[0],
			Client:   *gm.Client,
		}
	})
	return res, nil
}

// Report implements Result.
func (r *TieredCacheResult) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tiered cache: %.0f QPS Memcached through %d cache servers, misses to %d mysql backends (power_aware, %v TTL)\n",
		r.QPS, r.CacheServers, r.BackendServers, r.TTL)
	b.WriteString("(higher hit ratio starves the backend; its PC1A residency climbs while the cache tier stays flat)\n")
	t := &table{header: []string{"hit", "measured", "client p99", "backend QPS", "cache W", "backend W", "cache PC1A", "backend PC1A", "backend all-idle"}}
	for _, p := range r.Points {
		t.add(
			fmt.Sprintf("%.2f", p.HitRatio),
			fmt.Sprintf("%.3f", p.Edge.MeasuredHitRate),
			fmt.Sprintf("%.1fus", p.Client.P99Latency*1e6),
			fmt.Sprintf("%.0f", backendQPS(p.Backend)),
			fmt.Sprintf("%.1fW", p.Cache.TotalWatts),
			fmt.Sprintf("%.1fW", p.Backend.TotalWatts),
			residencyCell(p.Cache.PC1AResidency),
			residencyCell(p.Backend.PC1AResidency),
			pct(p.Backend.AllIdle),
		)
	}
	b.WriteString(t.String())
	return b.String()
}

// backendQPS is the miss stream's measured rate over the window.
func backendQPS(m cluster.Measurement) float64 {
	if m.Window <= 0 {
		return 0
	}
	return float64(m.ServedWindow) / m.Window.Seconds()
}

// residencyCell renders an optional PC1A residency for the report.
func residencyCell(res *float64) string {
	if res == nil {
		return "-"
	}
	return pct(*res)
}

// WriteCSV implements CSVWriter: one row per hit ratio with both tiers'
// aggregates and the edge counters.
func (r *TieredCacheResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "hit_ratio,measured_hit_rate,lookups,hits,misses,ttl_misses,issued,client_served,client_p50_s,client_p99_s,cache_total_w,cache_pc1a_residency,backend_total_w,backend_pc1a_residency,backend_all_idle"); err != nil {
		return err
	}
	for _, p := range r.Points {
		if _, err := fmt.Fprintf(w, "%g,%g,%d,%d,%d,%d,%d,%d,%g,%g,%g,%s,%g,%s,%g\n",
			p.HitRatio, p.Edge.MeasuredHitRate,
			p.Edge.Lookups, p.Edge.Hits, p.Edge.Misses, p.Edge.TTLMisses, p.Edge.Issued,
			p.Client.Served, p.Client.P50Latency, p.Client.P99Latency,
			p.Cache.TotalWatts, pc1aCell(p.Cache.PC1AResidency),
			p.Backend.TotalWatts, pc1aCell(p.Backend.PC1AResidency),
			p.Backend.AllIdle); err != nil {
			return err
		}
	}
	return nil
}
