package experiments

import (
	"reflect"
	"sync/atomic"
	"testing"

	"agilepkgc/internal/sim"
)

// fastOptions keeps serial-vs-parallel comparison runs cheap.
func fastOptions() Options {
	return Options{Duration: 20 * sim.Millisecond, Seed: 1}
}

func TestRunPointsOrderAndCoverage(t *testing.T) {
	for _, par := range []int{1, 2, 7, 64} {
		got := RunPoints(par, 20, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("par=%d: out[%d] = %d, want %d", par, i, v, i*i)
			}
		}
	}
	if got := RunPoints(4, 0, func(i int) int { return i }); len(got) != 0 {
		t.Fatalf("n=0 returned %v", got)
	}
}

// TestRunPointsBoundedWorkers checks that no more than par points are in
// flight at once.
func TestRunPointsBoundedWorkers(t *testing.T) {
	const par = 3
	var inFlight, peak atomic.Int64
	RunPoints(par, 24, func(i int) struct{} {
		n := inFlight.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		for j := 0; j < 1000; j++ { // linger so overlap is observable
			_ = j
		}
		inFlight.Add(-1)
		return struct{}{}
	})
	if got := peak.Load(); got > par {
		t.Fatalf("observed %d concurrent points, worker pool bound is %d", got, par)
	}
}

// TestSweepRace drives real sweep experiments under the race detector
// (go test -race): every point builds its own engine, so the only shared
// write is each worker's disjoint result slot.
func TestSweepRace(t *testing.T) {
	opt := fastOptions()
	opt.Parallelism = 8
	Fig5(opt, []float64{4000, 20000, 50000, 100000})
	Fig7(opt, []float64{4000, 50000})
	Batching(opt, 50000, DefaultBatchingEpochs)
}

// TestSerialParallelBitIdentical is the determinism contract of the
// sweep layer: the same seed must produce byte-for-byte identical
// results at any parallelism.
func TestSerialParallelBitIdentical(t *testing.T) {
	serial := fastOptions()
	parallel := fastOptions()
	parallel.Parallelism = 4

	if !reflect.DeepEqual(Fig5(serial, []float64{4000, 50000}), Fig5(parallel, []float64{4000, 50000})) {
		t.Error("Fig5 serial and parallel results differ")
	}
	if !reflect.DeepEqual(Fig7(serial, []float64{4000, 50000}), Fig7(parallel, []float64{4000, 50000})) {
		t.Error("Fig7 serial and parallel results differ")
	}
	if !reflect.DeepEqual(Fig9(serial), Fig9(parallel)) {
		t.Error("Fig9 serial and parallel results differ")
	}
	if !reflect.DeepEqual(Remote(serial, DefaultRemoteQPS, []float64{0, 10000}), Remote(parallel, DefaultRemoteQPS, []float64{0, 10000})) {
		t.Error("Remote serial and parallel results differ")
	}
}
