package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the sweep fan-out layer. Every sweep-style experiment
// (Fig5–Fig9, Sensitivity, Batching, Remote) evaluates a list of
// independent (config, load) points, and each point builds its own
// sim.Engine with its own seed — there is no shared mutable state
// between points. RunPoints exploits that: it fans the points across a
// bounded worker pool and writes each result into its slot by index, so
// the returned slice is in deterministic point order regardless of
// which worker finished first or in what order. Because every point is
// a pure function of (Options, point), a parallel sweep is bit-identical
// to the serial one with the same seed.

// Parallelism resolves an Options.Parallelism knob to a worker count:
// values above 1 are used as-is, 0 and 1 mean serial, and negative
// means one worker per available CPU.
func (o Options) parallelism() int {
	switch {
	case o.Parallelism < 0:
		return runtime.GOMAXPROCS(0)
	case o.Parallelism == 0:
		return 1
	default:
		return o.Parallelism
	}
}

// RunPoints evaluates fn(0..n-1) on at most par concurrent goroutines
// and returns the results in index order. With par <= 1 it runs inline
// with no goroutines at all, keeping serial sweeps trivially
// deterministic and cheap to reason about.
func RunPoints[T any](par, n int, fn func(i int) T) []T {
	return runPoints(par, n,
		func() struct{} { return struct{}{} },
		func(_ struct{}, i int) T { return fn(i) })
}

// runPoints is the worker-pool core: newS builds one scratch value per
// worker goroutine (exactly one for serial runs), which fn receives
// alongside each point index. Scratch reuse is what lets sweeps recycle
// heavy per-point state (a fleet, its engine arena) without sharing
// anything between workers.
func runPoints[S, T any](par, n int, newS func() S, fn func(s S, i int) T) []T {
	out := make([]T, n)
	if par <= 1 || n <= 1 {
		s := newS()
		for i := range out {
			out[i] = fn(s, i)
		}
		return out
	}
	if par > n {
		par = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(par)
	for w := 0; w < par; w++ {
		go func() {
			defer wg.Done()
			s := newS()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(s, i)
			}
		}()
	}
	wg.Wait()
	return out
}

// Sweep evaluates fn over points with the parallelism configured in
// opt, returning results in point order. It is the one-liner every
// sweep experiment uses:
//
//	res.Points = Sweep(opt, qpsList, func(qps float64) Fig5Point {...})
func Sweep[P, T any](opt Options, points []P, fn func(P) T) []T {
	return RunPoints(opt.parallelism(), len(points), func(i int) T {
		return fn(points[i])
	})
}

// SweepWith is Sweep with per-worker scratch: newS runs once per worker
// goroutine (once total for serial sweeps) and fn receives that
// worker's scratch alongside each point. The cluster sweeps thread a
// *cluster.Reuse through here so consecutive points on a worker reset
// one fleet instead of building a new one; because a reset fleet is
// byte-identical to a fresh build, every point remains a pure function
// of (Options, point) and parallel sweeps stay bit-identical to serial
// ones.
func SweepWith[S, P, T any](opt Options, points []P, newS func() S, fn func(S, P) T) []T {
	return runPoints(opt.parallelism(), len(points), newS, func(s S, i int) T {
		return fn(s, points[i])
	})
}
