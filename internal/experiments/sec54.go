package experiments

import (
	"fmt"
	"strings"

	"agilepkgc/internal/clock"
	"agilepkgc/internal/power"
	"agilepkgc/internal/sim"
	"agilepkgc/internal/soc"
)

// Sec54Result reproduces the paper's Sec. 5.4 power-decomposition
// methodology: the four measured deltas between PC1A and PC6, and the
// PC1A power they predict via Eq. 2 / Eq. 3.
type Sec54Result struct {
	PcoresDiff float64 // paper: ≈12.1 W
	PIOsDiff   float64 // paper: ≈3.5 W
	PdramDiff  float64 // paper: ≈1.1 W
	PPLLsDiff  float64 // paper: ≈0.056 W

	PsocPC6  float64 // paper: 11.9 W
	PdramPC6 float64 // paper: 0.51 W

	// Derived via Eq. 2/3.
	PsocPC1A  float64 // paper: ≈27.5 W
	PdramPC1A float64 // paper: ≈1.6 W
}

// Paper values.
const (
	PaperPcoresDiff = 12.1
	PaperPIOsDiff   = 3.5
	PaperPdramDiff  = 1.1
	PaperPPLLsDiff  = 0.056
	PaperPsocPC6    = 11.9
	PaperPdramPC6   = 0.51
)

func init() {
	Define(30, "sec54", "component power deltas Pcores/PIOs/Pdram/PPLLs (paper Sec. 5.4)",
		func(o Options) (Result, error) { return Sec54(o), nil })
}

// Sec54 runs the paper's paired measurement configurations.
func Sec54(opt Options) *Sec54Result {
	r := &Sec54Result{}
	settle := 5 * sim.Millisecond

	// Pcores_diff: all cores in CC1 vs all cores in CC6, with uncore
	// power savings disabled (package C-state limit PC2). RAPL.Package
	// difference.
	{
		cc1 := soc.New(soc.DefaultConfig(soc.Cshallow))
		cc1.Engine.Run(settle)
		p1 := cc1.SoCPower()

		cfg := soc.DefaultConfig(soc.Cdeep)
		cfg.DisablePkgCStates = true
		cc6 := soc.New(cfg)
		cc6.ForceAllCC6()
		p6 := cc6.SoCPower()
		r.PcoresDiff = p1 - p6
	}

	// PIOs_diff and Pdram_diff: config 1 = PCIe/DMI in L0s, UPI in L0p,
	// MCs in CKE-off; config 2 = links in L1, DRAM in self-refresh.
	// Measured per the paper as Package / DRAM counter differences with
	// the cores held constant (we read the IO and DRAM channels, which
	// is the same subtraction with zero noise).
	{
		ioPower := func(s *soc.System) (pkg, dramW float64) {
			for _, l := range s.Links {
				pkg += s.Meter.Lookup(l.Name()).Watts()
			}
			for i := range s.MCs {
				pkg += s.Meter.Lookup(fmt.Sprintf("mc%d", i)).Watts()
				dramW += s.Meter.Lookup(fmt.Sprintf("dimm%d", i)).Watts()
			}
			return
		}
		// Config 1: shallow IO states.
		s1 := soc.New(soc.DefaultConfig(soc.Cshallow))
		for _, l := range s1.Links {
			l.AllowL0s().Set()
		}
		for _, mc := range s1.MCs {
			mc.AllowCKEOff().Set()
		}
		s1.Engine.Run(settle)
		pkg1, dram1 := ioPower(s1)

		// Config 2: deep IO states.
		s2 := soc.New(soc.DefaultConfig(soc.Cshallow))
		for _, l := range s2.Links {
			l.EnterL1(nil)
		}
		for _, mc := range s2.MCs {
			mc.EnterSelfRefresh(nil)
		}
		s2.Engine.Run(settle)
		pkg2, dram2 := ioPower(s2)

		r.PIOsDiff = pkg1 - pkg2
		r.PdramDiff = dram1 - dram2
	}

	// PPLLs_diff: 8 non-core PLLs × per-ADPLL power, all on in PC1A and
	// off in PC6.
	{
		s := soc.New(soc.DefaultConfig(soc.CPC1A))
		r.PPLLsDiff = float64(len(s.PLLs)) * clock.ADPLLPowerWatts
	}

	// PC6 baseline powers.
	{
		s := soc.New(soc.DefaultConfig(soc.Cdeep))
		s.ForceAllCC6()
		r.PsocPC6 = s.Meter.Power(power.Package)
		r.PdramPC6 = s.Meter.Power(power.DRAM)
	}

	// Eq. 2 and Eq. 3.
	r.PsocPC1A = r.PsocPC6 + r.PcoresDiff + r.PIOsDiff + r.PPLLsDiff
	r.PdramPC1A = r.PdramPC6 + r.PdramDiff
	return r
}

// Report implements Result.
func (r *Sec54Result) Report() string { return r.String() }

// String renders the decomposition against the paper.
func (r *Sec54Result) String() string {
	var b strings.Builder
	b.WriteString("Sec 5.4: PC1A power decomposition (Eq. 2 / Eq. 3)\n")
	t := &table{header: []string{"Component", "Measured", "Paper"}}
	t.add("Pcores_diff (CC1 vs CC6)", fmt.Sprintf("%.2f W", r.PcoresDiff), "12.1 W")
	t.add("PIOs_diff (L0s/CKE vs L1/SR)", fmt.Sprintf("%.2f W", r.PIOsDiff), "3.5 W")
	t.add("Pdram_diff (CKE vs SR)", fmt.Sprintf("%.2f W", r.PdramDiff), "1.1 W")
	t.add("PPLLs_diff (8 ADPLLs)", fmt.Sprintf("%.3f W", r.PPLLsDiff), "0.056 W")
	t.add("Psoc_PC6", fmt.Sprintf("%.2f W", r.PsocPC6), "11.9 W")
	t.add("Pdram_PC6", fmt.Sprintf("%.2f W", r.PdramPC6), "0.51 W")
	t.add("Psoc_PC1A (Eq. 2)", fmt.Sprintf("%.2f W", r.PsocPC1A), "27.5 W")
	t.add("Pdram_PC1A (Eq. 3)", fmt.Sprintf("%.2f W", r.PdramPC1A), "1.6 W")
	b.WriteString(t.String())
	return b.String()
}
