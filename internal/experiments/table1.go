package experiments

import (
	"fmt"
	"strings"

	"agilepkgc/internal/cpu"
	"agilepkgc/internal/pmu"
	"agilepkgc/internal/sim"
	"agilepkgc/internal/soc"
)

// Table1Result reproduces paper Table 1: SoC + DRAM power and transition
// latency for each package C-state on the 10-core reference server.
type Table1Result struct {
	// Measured steady-state watts.
	PC0SoC, PC0DRAM         float64
	PC0IdleSoC, PC0IdleDRAM float64
	PC6SoC, PC6DRAM         float64
	PC1ASoC, PC1ADRAM       float64

	// Measured transition latencies (entry+exit).
	PC6Latency  sim.Duration
	PC1ALatency sim.Duration
}

// Paper Table 1 values for comparison.
const (
	PaperPC0SoC      = 85.0
	PaperPC0DRAM     = 7.0
	PaperPC0IdleSoC  = 44.0
	PaperPC0IdleDRAM = 5.5
	PaperPC6SoC      = 12.0
	PaperPC6DRAM     = 0.5
	PaperPC1ASoC     = 27.5
	PaperPC1ADRAM    = 1.6
)

func init() {
	Define(10, "table1", "power and latency per package C-state (paper Table 1)",
		func(o Options) (Result, error) { return Table1(o), nil })
}

// Table1 measures every row of paper Table 1 on freshly assembled
// systems.
func Table1(opt Options) *Table1Result {
	r := &Table1Result{}
	settle := 10 * sim.Millisecond

	// PC0: all cores active (Cshallow, saturating work), DRAM pumped
	// with sustained access traffic (the paper's 7 W row is a loaded
	// system).
	{
		s := soc.New(soc.DefaultConfig(soc.Cshallow))
		for _, c := range s.Cores {
			c.Enqueue(cpu.Work{Duration: 100 * sim.Millisecond})
		}
		stop := false
		var pump func()
		pump = func() {
			if stop {
				return
			}
			s.MemAccess(4)
			s.Engine.Schedule(9*sim.Microsecond, pump)
		}
		pump()
		s.Engine.Run(settle)
		snap := s.Meter.Snapshot()
		s.Engine.Run(s.Engine.Now() + settle)
		r.PC0SoC = s.SoCPower()
		r.PC0DRAM = snap.AveragePower(1)
		stop = true
	}

	// PC0idle: all cores in CC1 (Cshallow, idle).
	{
		s := soc.New(soc.DefaultConfig(soc.Cshallow))
		s.Engine.Run(settle)
		r.PC0IdleSoC, r.PC0IdleDRAM = s.SoCPower(), s.DRAMPower()
	}

	// PC6 (Cdeep, forced deep): steady power plus a measured entry+exit
	// round trip.
	{
		s := soc.New(soc.DefaultConfig(soc.Cdeep))
		var pc2At, pc6At, pc0At sim.Time = -1, -1, -1
		s.GPMU.OnTransition(func(old, new pmu.PkgState) {
			switch new {
			case pmu.PC2:
				pc2At = s.Engine.Now()
			case pmu.PC6:
				pc6At = s.Engine.Now()
			case pmu.PC0:
				pc0At = s.Engine.Now()
			}
		})
		s.ForceAllCC6()
		r.PC6SoC, r.PC6DRAM = s.SoCPower(), s.DRAMPower()
		entry := pc6At - pc2At

		wakeAt := s.Engine.Now()
		s.Cores[0].Enqueue(cpu.Work{Duration: sim.Microsecond})
		s.Engine.Run(s.Engine.Now() + 5*sim.Millisecond)
		exit := pc0At - wakeAt
		r.PC6Latency = entry + exit
	}

	// PC1A (CPC1A, idle): steady power plus entry+exit latency. The
	// blocking entry is the 16 ns L0s window plus the FSM action; exit
	// is measured by the APMU.
	{
		s := soc.New(soc.DefaultConfig(soc.CPC1A))
		s.Engine.Run(settle)
		r.PC1ASoC, r.PC1ADRAM = s.SoCPower(), s.DRAMPower()

		s.Cores[0].Enqueue(cpu.Work{Duration: sim.Microsecond})
		s.Engine.Run(s.Engine.Now() + sim.Millisecond)
		r.PC1ALatency = 16*sim.Nanosecond + s.APMU.LastEntryLatency() + s.APMU.LastExitLatency()
	}
	return r
}

// Speedup returns the PC6/PC1A transition-latency ratio (paper: >250×).
func (r *Table1Result) Speedup() float64 {
	return float64(r.PC6Latency) / float64(r.PC1ALatency)
}

// Report implements Result.
func (r *Table1Result) Report() string { return r.String() }

// String renders the table against the paper's values.
func (r *Table1Result) String() string {
	t := &table{header: []string{"Package/cores C-state", "Latency", "SoC power", "DRAM power", "Paper (SoC+DRAM, latency)"}}
	t.add("PC0 / >=1 CC0", "0ns",
		fmt.Sprintf("%.1fW", r.PC0SoC), fmt.Sprintf("%.1fW", r.PC0DRAM),
		"<=85W + 7W, 0ns")
	t.add("PC0idle / all CC1", "0ns",
		fmt.Sprintf("%.1fW", r.PC0IdleSoC), fmt.Sprintf("%.1fW", r.PC0IdleDRAM),
		"44W + 5.5W, 0ns")
	t.add("PC6 / all CC6", r.PC6Latency.String(),
		fmt.Sprintf("%.1fW", r.PC6SoC), fmt.Sprintf("%.1fW", r.PC6DRAM),
		"12W + 0.5W, >50us")
	t.add("PC1A / all CC1", r.PC1ALatency.String(),
		fmt.Sprintf("%.1fW", r.PC1ASoC), fmt.Sprintf("%.1fW", r.PC1ADRAM),
		"27.5W + 1.6W, <200ns")
	var b strings.Builder
	b.WriteString("Table 1: power and transition latency per package C-state\n")
	b.WriteString(t.String())
	fmt.Fprintf(&b, "\nPC1A vs PC6 transition speedup: %.0fx (paper: >250x)\n", r.Speedup())
	return b.String()
}
